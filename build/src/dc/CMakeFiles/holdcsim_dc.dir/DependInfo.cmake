
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dc/datacenter.cc" "src/dc/CMakeFiles/holdcsim_dc.dir/datacenter.cc.o" "gcc" "src/dc/CMakeFiles/holdcsim_dc.dir/datacenter.cc.o.d"
  "/root/repo/src/dc/dc_config.cc" "src/dc/CMakeFiles/holdcsim_dc.dir/dc_config.cc.o" "gcc" "src/dc/CMakeFiles/holdcsim_dc.dir/dc_config.cc.o.d"
  "/root/repo/src/dc/metrics.cc" "src/dc/CMakeFiles/holdcsim_dc.dir/metrics.cc.o" "gcc" "src/dc/CMakeFiles/holdcsim_dc.dir/metrics.cc.o.d"
  "/root/repo/src/dc/validation.cc" "src/dc/CMakeFiles/holdcsim_dc.dir/validation.cc.o" "gcc" "src/dc/CMakeFiles/holdcsim_dc.dir/validation.cc.o.d"
  "/root/repo/src/dc/workload_config.cc" "src/dc/CMakeFiles/holdcsim_dc.dir/workload_config.cc.o" "gcc" "src/dc/CMakeFiles/holdcsim_dc.dir/workload_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/holdcsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/holdcsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/holdcsim_network.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/holdcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holdcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
