# Empty dependencies file for holdcsim_dc.
# This may be replaced when dependencies are built.
