file(REMOVE_RECURSE
  "libholdcsim_dc.a"
)
