file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_dc.dir/datacenter.cc.o"
  "CMakeFiles/holdcsim_dc.dir/datacenter.cc.o.d"
  "CMakeFiles/holdcsim_dc.dir/dc_config.cc.o"
  "CMakeFiles/holdcsim_dc.dir/dc_config.cc.o.d"
  "CMakeFiles/holdcsim_dc.dir/metrics.cc.o"
  "CMakeFiles/holdcsim_dc.dir/metrics.cc.o.d"
  "CMakeFiles/holdcsim_dc.dir/validation.cc.o"
  "CMakeFiles/holdcsim_dc.dir/validation.cc.o.d"
  "CMakeFiles/holdcsim_dc.dir/workload_config.cc.o"
  "CMakeFiles/holdcsim_dc.dir/workload_config.cc.o.d"
  "libholdcsim_dc.a"
  "libholdcsim_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
