file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_server.dir/core.cc.o"
  "CMakeFiles/holdcsim_server.dir/core.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/dvfs.cc.o"
  "CMakeFiles/holdcsim_server.dir/dvfs.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/local_scheduler.cc.o"
  "CMakeFiles/holdcsim_server.dir/local_scheduler.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/power_controller.cc.o"
  "CMakeFiles/holdcsim_server.dir/power_controller.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/power_profile.cc.o"
  "CMakeFiles/holdcsim_server.dir/power_profile.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/power_state.cc.o"
  "CMakeFiles/holdcsim_server.dir/power_state.cc.o.d"
  "CMakeFiles/holdcsim_server.dir/server.cc.o"
  "CMakeFiles/holdcsim_server.dir/server.cc.o.d"
  "libholdcsim_server.a"
  "libholdcsim_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
