file(REMOVE_RECURSE
  "libholdcsim_server.a"
)
