# Empty compiler generated dependencies file for holdcsim_server.
# This may be replaced when dependencies are built.
