
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/core.cc" "src/server/CMakeFiles/holdcsim_server.dir/core.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/core.cc.o.d"
  "/root/repo/src/server/dvfs.cc" "src/server/CMakeFiles/holdcsim_server.dir/dvfs.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/dvfs.cc.o.d"
  "/root/repo/src/server/local_scheduler.cc" "src/server/CMakeFiles/holdcsim_server.dir/local_scheduler.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/local_scheduler.cc.o.d"
  "/root/repo/src/server/power_controller.cc" "src/server/CMakeFiles/holdcsim_server.dir/power_controller.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/power_controller.cc.o.d"
  "/root/repo/src/server/power_profile.cc" "src/server/CMakeFiles/holdcsim_server.dir/power_profile.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/power_profile.cc.o.d"
  "/root/repo/src/server/power_state.cc" "src/server/CMakeFiles/holdcsim_server.dir/power_state.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/power_state.cc.o.d"
  "/root/repo/src/server/server.cc" "src/server/CMakeFiles/holdcsim_server.dir/server.cc.o" "gcc" "src/server/CMakeFiles/holdcsim_server.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holdcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/holdcsim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
