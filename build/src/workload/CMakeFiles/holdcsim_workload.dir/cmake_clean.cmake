file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_workload.dir/arrival.cc.o"
  "CMakeFiles/holdcsim_workload.dir/arrival.cc.o.d"
  "CMakeFiles/holdcsim_workload.dir/job.cc.o"
  "CMakeFiles/holdcsim_workload.dir/job.cc.o.d"
  "CMakeFiles/holdcsim_workload.dir/job_generator.cc.o"
  "CMakeFiles/holdcsim_workload.dir/job_generator.cc.o.d"
  "CMakeFiles/holdcsim_workload.dir/service.cc.o"
  "CMakeFiles/holdcsim_workload.dir/service.cc.o.d"
  "CMakeFiles/holdcsim_workload.dir/trace.cc.o"
  "CMakeFiles/holdcsim_workload.dir/trace.cc.o.d"
  "libholdcsim_workload.a"
  "libholdcsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
