# Empty compiler generated dependencies file for holdcsim_workload.
# This may be replaced when dependencies are built.
