file(REMOVE_RECURSE
  "libholdcsim_workload.a"
)
