
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cc" "src/workload/CMakeFiles/holdcsim_workload.dir/arrival.cc.o" "gcc" "src/workload/CMakeFiles/holdcsim_workload.dir/arrival.cc.o.d"
  "/root/repo/src/workload/job.cc" "src/workload/CMakeFiles/holdcsim_workload.dir/job.cc.o" "gcc" "src/workload/CMakeFiles/holdcsim_workload.dir/job.cc.o.d"
  "/root/repo/src/workload/job_generator.cc" "src/workload/CMakeFiles/holdcsim_workload.dir/job_generator.cc.o" "gcc" "src/workload/CMakeFiles/holdcsim_workload.dir/job_generator.cc.o.d"
  "/root/repo/src/workload/service.cc" "src/workload/CMakeFiles/holdcsim_workload.dir/service.cc.o" "gcc" "src/workload/CMakeFiles/holdcsim_workload.dir/service.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/holdcsim_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/holdcsim_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holdcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
