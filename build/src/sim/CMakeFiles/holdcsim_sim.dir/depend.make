# Empty dependencies file for holdcsim_sim.
# This may be replaced when dependencies are built.
