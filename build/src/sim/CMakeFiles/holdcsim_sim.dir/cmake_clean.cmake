file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_sim.dir/config.cc.o"
  "CMakeFiles/holdcsim_sim.dir/config.cc.o.d"
  "CMakeFiles/holdcsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/holdcsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/holdcsim_sim.dir/logging.cc.o"
  "CMakeFiles/holdcsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/holdcsim_sim.dir/random.cc.o"
  "CMakeFiles/holdcsim_sim.dir/random.cc.o.d"
  "CMakeFiles/holdcsim_sim.dir/simulator.cc.o"
  "CMakeFiles/holdcsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/holdcsim_sim.dir/stats.cc.o"
  "CMakeFiles/holdcsim_sim.dir/stats.cc.o.d"
  "libholdcsim_sim.a"
  "libholdcsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
