file(REMOVE_RECURSE
  "libholdcsim_sim.a"
)
