file(REMOVE_RECURSE
  "libholdcsim_network.a"
)
