# Empty compiler generated dependencies file for holdcsim_network.
# This may be replaced when dependencies are built.
