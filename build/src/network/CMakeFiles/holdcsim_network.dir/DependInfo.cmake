
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/alr.cc" "src/network/CMakeFiles/holdcsim_network.dir/alr.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/alr.cc.o.d"
  "/root/repo/src/network/flow_manager.cc" "src/network/CMakeFiles/holdcsim_network.dir/flow_manager.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/flow_manager.cc.o.d"
  "/root/repo/src/network/linecard.cc" "src/network/CMakeFiles/holdcsim_network.dir/linecard.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/linecard.cc.o.d"
  "/root/repo/src/network/network.cc" "src/network/CMakeFiles/holdcsim_network.dir/network.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/network.cc.o.d"
  "/root/repo/src/network/port.cc" "src/network/CMakeFiles/holdcsim_network.dir/port.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/port.cc.o.d"
  "/root/repo/src/network/routing.cc" "src/network/CMakeFiles/holdcsim_network.dir/routing.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/routing.cc.o.d"
  "/root/repo/src/network/switch.cc" "src/network/CMakeFiles/holdcsim_network.dir/switch.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/switch.cc.o.d"
  "/root/repo/src/network/switch_power.cc" "src/network/CMakeFiles/holdcsim_network.dir/switch_power.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/switch_power.cc.o.d"
  "/root/repo/src/network/topology.cc" "src/network/CMakeFiles/holdcsim_network.dir/topology.cc.o" "gcc" "src/network/CMakeFiles/holdcsim_network.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holdcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
