file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_network.dir/alr.cc.o"
  "CMakeFiles/holdcsim_network.dir/alr.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/flow_manager.cc.o"
  "CMakeFiles/holdcsim_network.dir/flow_manager.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/linecard.cc.o"
  "CMakeFiles/holdcsim_network.dir/linecard.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/network.cc.o"
  "CMakeFiles/holdcsim_network.dir/network.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/port.cc.o"
  "CMakeFiles/holdcsim_network.dir/port.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/routing.cc.o"
  "CMakeFiles/holdcsim_network.dir/routing.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/switch.cc.o"
  "CMakeFiles/holdcsim_network.dir/switch.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/switch_power.cc.o"
  "CMakeFiles/holdcsim_network.dir/switch_power.cc.o.d"
  "CMakeFiles/holdcsim_network.dir/topology.cc.o"
  "CMakeFiles/holdcsim_network.dir/topology.cc.o.d"
  "libholdcsim_network.a"
  "libholdcsim_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
