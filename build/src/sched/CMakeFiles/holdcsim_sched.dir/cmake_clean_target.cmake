file(REMOVE_RECURSE
  "libholdcsim_sched.a"
)
