
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adaptive_policy.cc" "src/sched/CMakeFiles/holdcsim_sched.dir/adaptive_policy.cc.o" "gcc" "src/sched/CMakeFiles/holdcsim_sched.dir/adaptive_policy.cc.o.d"
  "/root/repo/src/sched/dispatch_policy.cc" "src/sched/CMakeFiles/holdcsim_sched.dir/dispatch_policy.cc.o" "gcc" "src/sched/CMakeFiles/holdcsim_sched.dir/dispatch_policy.cc.o.d"
  "/root/repo/src/sched/global_scheduler.cc" "src/sched/CMakeFiles/holdcsim_sched.dir/global_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/holdcsim_sched.dir/global_scheduler.cc.o.d"
  "/root/repo/src/sched/provisioning.cc" "src/sched/CMakeFiles/holdcsim_sched.dir/provisioning.cc.o" "gcc" "src/sched/CMakeFiles/holdcsim_sched.dir/provisioning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/holdcsim_server.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/holdcsim_network.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/holdcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holdcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
