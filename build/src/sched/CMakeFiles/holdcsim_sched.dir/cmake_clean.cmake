file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_sched.dir/adaptive_policy.cc.o"
  "CMakeFiles/holdcsim_sched.dir/adaptive_policy.cc.o.d"
  "CMakeFiles/holdcsim_sched.dir/dispatch_policy.cc.o"
  "CMakeFiles/holdcsim_sched.dir/dispatch_policy.cc.o.d"
  "CMakeFiles/holdcsim_sched.dir/global_scheduler.cc.o"
  "CMakeFiles/holdcsim_sched.dir/global_scheduler.cc.o.d"
  "CMakeFiles/holdcsim_sched.dir/provisioning.cc.o"
  "CMakeFiles/holdcsim_sched.dir/provisioning.cc.o.d"
  "libholdcsim_sched.a"
  "libholdcsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
