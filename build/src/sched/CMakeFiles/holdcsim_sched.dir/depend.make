# Empty dependencies file for holdcsim_sched.
# This may be replaced when dependencies are built.
