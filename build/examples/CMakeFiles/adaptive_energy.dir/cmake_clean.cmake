file(REMOVE_RECURSE
  "CMakeFiles/adaptive_energy.dir/adaptive_energy.cpp.o"
  "CMakeFiles/adaptive_energy.dir/adaptive_energy.cpp.o.d"
  "adaptive_energy"
  "adaptive_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
