# Empty dependencies file for adaptive_energy.
# This may be replaced when dependencies are built.
