# Empty compiler generated dependencies file for holdcsim_cli.
# This may be replaced when dependencies are built.
