file(REMOVE_RECURSE
  "CMakeFiles/holdcsim_cli.dir/holdcsim_cli.cpp.o"
  "CMakeFiles/holdcsim_cli.dir/holdcsim_cli.cpp.o.d"
  "holdcsim_cli"
  "holdcsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
