# Empty dependencies file for resource_provisioning.
# This may be replaced when dependencies are built.
