file(REMOVE_RECURSE
  "CMakeFiles/resource_provisioning.dir/resource_provisioning.cpp.o"
  "CMakeFiles/resource_provisioning.dir/resource_provisioning.cpp.o.d"
  "resource_provisioning"
  "resource_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
