# Empty dependencies file for joint_server_network.
# This may be replaced when dependencies are built.
