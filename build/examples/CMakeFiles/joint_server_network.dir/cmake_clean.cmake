file(REMOVE_RECURSE
  "CMakeFiles/joint_server_network.dir/joint_server_network.cpp.o"
  "CMakeFiles/joint_server_network.dir/joint_server_network.cpp.o.d"
  "joint_server_network"
  "joint_server_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_server_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
