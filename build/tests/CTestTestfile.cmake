# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_event[1]_include.cmake")
include("/root/repo/build/tests/test_sim_random[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim_config[1]_include.cmake")
include("/root/repo/build/tests/test_workload_arrival[1]_include.cmake")
include("/root/repo/build/tests/test_workload_job[1]_include.cmake")
include("/root/repo/build/tests/test_workload_trace[1]_include.cmake")
include("/root/repo/build/tests/test_server_core[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_network_topology[1]_include.cmake")
include("/root/repo/build/tests/test_network_switch[1]_include.cmake")
include("/root/repo/build/tests/test_network_comm[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_dc[1]_include.cmake")
include("/root/repo/build/tests/test_power_governors[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_workload_config[1]_include.cmake")
