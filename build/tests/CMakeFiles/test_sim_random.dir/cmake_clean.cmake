file(REMOVE_RECURSE
  "CMakeFiles/test_sim_random.dir/test_sim_random.cc.o"
  "CMakeFiles/test_sim_random.dir/test_sim_random.cc.o.d"
  "test_sim_random"
  "test_sim_random.pdb"
  "test_sim_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
