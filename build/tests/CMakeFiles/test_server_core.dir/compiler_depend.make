# Empty compiler generated dependencies file for test_server_core.
# This may be replaced when dependencies are built.
