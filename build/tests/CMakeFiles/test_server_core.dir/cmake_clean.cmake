file(REMOVE_RECURSE
  "CMakeFiles/test_server_core.dir/test_server_core.cc.o"
  "CMakeFiles/test_server_core.dir/test_server_core.cc.o.d"
  "test_server_core"
  "test_server_core.pdb"
  "test_server_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
