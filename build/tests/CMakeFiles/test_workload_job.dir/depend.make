# Empty dependencies file for test_workload_job.
# This may be replaced when dependencies are built.
