file(REMOVE_RECURSE
  "CMakeFiles/test_workload_job.dir/test_workload_job.cc.o"
  "CMakeFiles/test_workload_job.dir/test_workload_job.cc.o.d"
  "test_workload_job"
  "test_workload_job.pdb"
  "test_workload_job[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
