file(REMOVE_RECURSE
  "CMakeFiles/test_network_comm.dir/test_network_comm.cc.o"
  "CMakeFiles/test_network_comm.dir/test_network_comm.cc.o.d"
  "test_network_comm"
  "test_network_comm.pdb"
  "test_network_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
