file(REMOVE_RECURSE
  "CMakeFiles/test_power_governors.dir/test_power_governors.cc.o"
  "CMakeFiles/test_power_governors.dir/test_power_governors.cc.o.d"
  "test_power_governors"
  "test_power_governors.pdb"
  "test_power_governors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
