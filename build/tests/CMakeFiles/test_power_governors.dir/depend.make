# Empty dependencies file for test_power_governors.
# This may be replaced when dependencies are built.
