file(REMOVE_RECURSE
  "CMakeFiles/test_workload_config.dir/test_workload_config.cc.o"
  "CMakeFiles/test_workload_config.dir/test_workload_config.cc.o.d"
  "test_workload_config"
  "test_workload_config.pdb"
  "test_workload_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
