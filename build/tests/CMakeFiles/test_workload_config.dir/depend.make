# Empty dependencies file for test_workload_config.
# This may be replaced when dependencies are built.
