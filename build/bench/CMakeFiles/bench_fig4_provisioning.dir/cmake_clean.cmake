file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_provisioning.dir/bench_fig4_provisioning.cpp.o"
  "CMakeFiles/bench_fig4_provisioning.dir/bench_fig4_provisioning.cpp.o.d"
  "bench_fig4_provisioning"
  "bench_fig4_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
