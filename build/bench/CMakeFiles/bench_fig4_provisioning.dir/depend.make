# Empty dependencies file for bench_fig4_provisioning.
# This may be replaced when dependencies are built.
