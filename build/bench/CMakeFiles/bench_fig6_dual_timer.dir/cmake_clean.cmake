file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dual_timer.dir/bench_fig6_dual_timer.cpp.o"
  "CMakeFiles/bench_fig6_dual_timer.dir/bench_fig6_dual_timer.cpp.o.d"
  "bench_fig6_dual_timer"
  "bench_fig6_dual_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dual_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
