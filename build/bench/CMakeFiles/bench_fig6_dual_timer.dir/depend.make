# Empty dependencies file for bench_fig6_dual_timer.
# This may be replaced when dependencies are built.
