# Empty compiler generated dependencies file for bench_fig13_switch_validation.
# This may be replaced when dependencies are built.
