file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_governors.dir/bench_ablation_governors.cpp.o"
  "CMakeFiles/bench_ablation_governors.dir/bench_ablation_governors.cpp.o.d"
  "bench_ablation_governors"
  "bench_ablation_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
