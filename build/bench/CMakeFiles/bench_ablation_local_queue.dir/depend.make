# Empty dependencies file for bench_ablation_local_queue.
# This may be replaced when dependencies are built.
