# Empty compiler generated dependencies file for bench_fig12_server_validation.
# This may be replaced when dependencies are built.
