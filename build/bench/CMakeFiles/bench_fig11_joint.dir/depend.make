# Empty dependencies file for bench_fig11_joint.
# This may be replaced when dependencies are built.
