file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_joint.dir/bench_fig11_joint.cpp.o"
  "CMakeFiles/bench_fig11_joint.dir/bench_fig11_joint.cpp.o.d"
  "bench_fig11_joint"
  "bench_fig11_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
