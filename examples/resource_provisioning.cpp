/**
 * @file
 * Case-study IV-A as a runnable example: dynamic resource
 * provisioning under a fluctuating (Wikipedia-like) trace.
 *
 * A 50-server farm starts fully active; the provisioning policy
 * parks servers when load per server drops below the minimum
 * threshold and reactivates them when it exceeds the maximum. The
 * program prints a time series of offered jobs vs. active servers
 * (the paper's Figure 4 data).
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "sched/provisioning.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

int
main()
{
    DataCenterConfig cfg;
    cfg.nServers = 50;
    cfg.nCores = 4;
    cfg.dispatch = DataCenterConfig::Dispatch::leastLoaded;
    cfg.seed = 7;
    DataCenter dc(cfg);

    // Wikipedia-like diurnal arrivals, 20 simulated minutes.
    WikipediaTraceParams wp;
    wp.duration = 1200 * sec;
    wp.baseRate = 2500.0;     // jobs/s across the farm
    wp.diurnalPeriod = 600 * sec;
    wp.diurnalAmplitude = 0.6;
    auto arrivals = makeWikipediaTrace(wp, dc.makeRng("wiki"));

    // Each job: one task of 3-10 ms (paper IV-A).
    auto service = std::make_shared<UniformService>(
        3 * msec, 10 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    dc.pumpTrace(arrivals, jobs);

    ProvisioningConfig pc;
    pc.minLoadPerServer = 0.4;
    pc.maxLoadPerServer = 1.2;
    pc.checkInterval = 250 * msec;
    ProvisioningPolicy prov(dc.scheduler(), pc);
    prov.start();

    GaugeSampler active_jobs(dc.sim(),
                             [&] {
                                 return static_cast<double>(
                                     dc.scheduler().activeJobs());
                             },
                             5 * sec, "activeJobs");
    GaugeSampler active_servers(
        dc.sim(),
        [&] { return static_cast<double>(prov.activeServers()); },
        5 * sec, "activeServers");
    active_jobs.start();
    active_servers.start();

    dc.runUntil(wp.duration);
    prov.stop();
    active_jobs.stop();
    active_servers.stop();
    dc.run(); // drain remaining jobs
    dc.finishStats();

    std::printf("# time_s  active_jobs  active_servers\n");
    for (std::size_t i = 0; i < active_jobs.series().size(); ++i) {
        std::printf("%8.1f  %11.0f  %14.0f\n",
                    toSeconds(active_jobs.series()[i].when),
                    active_jobs.series()[i].value,
                    active_servers.series()[i].value);
    }
    auto fleet = dc.energy();
    std::printf("# jobs=%llu  park_events=%llu  activate_events=%llu  "
                "energy=%.0f J\n",
                static_cast<unsigned long long>(
                    dc.scheduler().jobsCompleted()),
                static_cast<unsigned long long>(prov.parkEvents()),
                static_cast<unsigned long long>(prov.activateEvents()),
                fleet.total.total());
    return 0;
}
