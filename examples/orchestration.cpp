/**
 * @file
 * Container orchestration walk-through: a 16-server fat tree runs a
 * 4-replica deployment under bursty (MMPP) load with delay-timer
 * power management on. The script then exercises the full control
 * plane at fixed simulated times:
 *
 *   t =  5 s  drain server 0 for maintenance -- every container on
 *             it live-migrates over the fabric (iterative dirty-page
 *             pre-copy rounds as real flows, then a stop-and-copy
 *             downtime window);
 *   t = 10 s  rolling deploy to image v2 -- one surge replica per
 *             reconcile pass, stale replicas drained as fresh ones
 *             come up.
 *
 * Containers request 2 cores each under a 2x overcommit cap, so
 * bin-packing co-locates them and the interference model inflates
 * their tasks' service times. A quarter of each container's memory is
 * disaggregated: once migration moves the compute away from its
 * memory home, the remote-memory latency multiplier kicks in.
 *
 * The migration byte count is a deterministic function of the
 * dirty-page model (round r ships memBytes * dirtyFrac^r), NOT of
 * flow timing, so re-running under a different network model tier
 * changes durations but never orch.* placement/migration counts:
 *
 *   orchestration          # exact tier
 *   orchestration fluid    # fluid tier; same counts, same bytes
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/orchestration
 */

#include <cstdio>
#include <cstring>
#include <memory>

#include "dc/datacenter.hh"
#include "workload/service.hh"

using namespace holdcsim;

int
main(int argc, char **argv)
{
    const char *model = argc > 1 ? argv[1] : "exact";

    DataCenterConfig cfg;
    cfg.nCores = 4;
    cfg.seed = 42;
    cfg.fabric = DataCenterConfig::Fabric::fatTree;
    cfg.fabricParam = 4; // 16 servers
    cfg.linkRate = 1e9;
    cfg.netConfig.netModel.kind = parseNetModelKind(model);
    // Power management on: idle servers suspend after 200 ms.
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 200 * msec;

    cfg.orch.enabled = true;
    cfg.orch.placement = "bin_pack";
    cfg.orch.reconcilePeriod = 500 * msec;
    cfg.orch.overcommit = 2.0;
    cfg.orch.interference = 0.3;
    cfg.orch.remoteMemPenaltyPerUs = 0.002;
    cfg.orch.replicas = 4;
    cfg.orch.maxReplicas = 8;
    cfg.orch.containerCores = 2.0;
    cfg.orch.containerMemBytes = static_cast<Bytes>(64) << 20;
    cfg.orch.remoteMemFrac = 0.25;
    cfg.orch.migrationDirtyFrac = 0.25;
    cfg.orch.migrationStopCopyBytes = static_cast<Bytes>(4) << 20;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();

    // Diurnal-style bursty load: 1.5 s bursts at 4x the quiet rate.
    auto service = std::make_shared<ExponentialService>(
        20 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    const Tick horizon = 20 * sec;
    dc.pump(std::make_unique<Mmpp2Arrival>(400.0, 100.0, 1.5, 3.0,
                                           dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), horizon);

    std::printf("orchestration demo: 16-server fat tree, %s network "
                "tier, 4 replicas @ 2 cores under 2x overcommit\n",
                model);

    // t = 5 s: maintenance drain of the bin-packed server.
    dc.runUntil(5 * sec);
    std::size_t packed = orch.container(0).server;
    std::size_t moves = orch.drainServer(packed);
    std::printf("t=5s   draining server %zu: %zu live migrations "
                "started\n", packed, moves);

    // t = 10 s: rolling deploy to v2 (migrations long finished).
    dc.runUntil(10 * sec);
    orch.beginRollingUpdate(0, 2);
    std::printf("t=10s  rolling update to v2 begun\n");

    dc.runUntil(horizon);
    dc.run();
    std::printf("t=%.0fs update %s; %u replicas running\n",
                toSeconds(dc.sim().curTick()),
                orch.updateInProgress(0) ? "STILL IN FLIGHT" : "done",
                orch.runningReplicas(0));

    // The lines the CI job diffs across network tiers: every count
    // and the byte total must be tier-independent (timing-derived
    // stats like downtime seconds are not, and are printed last).
    const Orchestrator::Stats &s = orch.stats();
    std::printf("orch.placements %llu\n",
                static_cast<unsigned long long>(s.placements));
    std::printf("orch.migrations_started %llu\n",
                static_cast<unsigned long long>(s.migrationsStarted));
    std::printf("orch.migrations_completed %llu\n",
                static_cast<unsigned long long>(s.migrationsCompleted));
    std::printf("orch.migrations_aborted %llu\n",
                static_cast<unsigned long long>(s.migrationsAborted));
    std::printf("orch.migrated_bytes %llu\n",
                static_cast<unsigned long long>(s.migratedBytes));
    std::printf("orch.autoscale_up %llu\n",
                static_cast<unsigned long long>(s.autoscaleUps));
    std::printf("orch.total_downtime_s %.6f\n",
                toSeconds(s.totalDowntime));
    std::printf("orch.interference_inflated_s %.3f\n",
                s.interferenceInflatedSec);
    std::printf("orch.remote_mem_inflated_s %.3f\n",
                s.remoteMemInflatedSec);
    std::printf("jobs_completed %llu\n",
                static_cast<unsigned long long>(
                    dc.scheduler().jobsCompleted()));
    return 0;
}
