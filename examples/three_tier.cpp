/**
 * @file
 * A three-tier web service on typed servers (paper section III-C:
 * "servers in the simulated environment can be configured to perform
 * different tasks ... a web request can be modeled as two sequential
 * tasks, one serviced by the application server and another
 * corresponding to queries sent to database servers").
 *
 * The fleet is partitioned into web, application and database tiers
 * via task-type restrictions; each request is a chain
 * web -> app -> db whose inter-tier results cross a star fabric.
 * The example prints per-tier utilization, the full stats dump and
 * the end-to-end latency breakdown.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "sim/timer_wheel.hh"
#include "telemetry/profiler.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

constexpr int webTier = 1;
constexpr int appTier = 2;
constexpr int dbTier = 3;

} // namespace

int
main(int argc, char **argv)
{
    // --profile[=FILE] attaches a kernel profiler and dumps its JSON
    // summary to FILE (stdout when omitted); used by
    // bench/run_kernel_profile.sh. --queue=heap|calendar selects the
    // event-queue backend so the script can record before/after
    // events-per-host-second. --timer-mode=wheel coalesces the
    // governor timers onto a shared wheel (bucket width set by
    // --wheel-granularity-us; 0 = exact 1-tick buckets).
    bool profile_on = false;
    std::string profile_out;
    auto backend = EventQueue::Backend::calendar;
    bool use_wheel = false;
    Tick wheel_granularity = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--profile") {
            profile_on = true;
        } else if (arg.rfind("--profile=", 0) == 0) {
            profile_on = true;
            profile_out = arg.substr(10);
        } else if (arg == "--queue=heap") {
            backend = EventQueue::Backend::binaryHeap;
        } else if (arg == "--queue=calendar") {
            backend = EventQueue::Backend::calendar;
        } else if (arg == "--timer-mode=wheel") {
            use_wheel = true;
        } else if (arg == "--timer-mode=events") {
            use_wheel = false;
        } else if (arg.rfind("--wheel-granularity-us=", 0) == 0) {
            double us = std::stod(arg.substr(23));
            wheel_granularity =
                us <= 0.0 ? 1
                          : static_cast<Tick>(
                                us * static_cast<double>(usec));
        } else {
            std::fprintf(stderr,
                         "usage: three_tier [--profile[=FILE]] "
                         "[--queue=heap|calendar] "
                         "[--timer-mode=events|wheel] "
                         "[--wheel-granularity-us=N]\n");
            return 2;
        }
    }

    // 12 servers behind one switch; tiers are assigned by task type
    // (DataCenter builds untyped servers, so build this fleet by
    // hand to show the lower-level API).
    Simulator sim(backend);
    std::unique_ptr<TimerWheel> wheel;
    if (use_wheel) {
        wheel = std::make_unique<TimerWheel>(sim, wheel_granularity);
        sim.setTimerWheel(wheel.get());
    }
    ServerPowerProfile profile;
    Topology topo = Topology::star(12, 1e9, 5 * usec);
    Network net(sim, std::move(topo),
                SwitchPowerProfile::cisco2960_24());

    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    for (unsigned i = 0; i < 12; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 4;
        // 4 web, 4 app, 4 db servers.
        cfg.taskTypes = {i < 4 ? webTier : i < 8 ? appTier : dbTier};
        auto server = std::make_unique<Server>(sim, cfg, profile);
        servers.push_back(server.get());
        owned.push_back(std::move(server));
    }

    GlobalScheduler sched(sim, servers,
                          std::make_unique<LeastLoadedPolicy>(), {},
                          &net);

    // Request = 1 ms web + 4 ms app + 8 ms db, shipping 64 kB
    // between tiers.
    auto web = std::make_shared<ExponentialService>(1 * msec,
                                                    Rng(17, "web"));
    auto app = std::make_shared<ExponentialService>(4 * msec,
                                                    Rng(17, "app"));
    auto db = std::make_shared<ExponentialService>(8 * msec,
                                                   Rng(17, "db"));
    ChainJobGenerator requests({web, app, db},
                               {webTier, appTier, dbTier}, 64 * 1024);

    PoissonArrival arrivals(600.0, Rng(17, "arrivals"));
    const std::size_t n_requests = 20'000;
    std::size_t injected = 0;
    EventFunctionWrapper inject(
        [&] {
            sched.submitJob(requests.makeJob(sim.curTick()));
            if (++injected < n_requests)
                sim.schedule(inject, arrivals.nextArrival());
        },
        "inject");
    sim.schedule(inject, arrivals.nextArrival());

    KernelProfiler profiler;
    if (profile_on)
        sim.setProbe(&profiler);
    auto wall_start = std::chrono::steady_clock::now();
    sim.run();
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

    std::printf("simulated time     : %.2f s\n",
                toSeconds(sim.curTick()));
    std::printf("requests completed : %llu\n",
                static_cast<unsigned long long>(
                    sched.jobsCompleted()));
    const auto &lat = sched.jobLatency();
    std::printf("request latency ms : mean %.2f  p50 %.2f  p95 %.2f  "
                "p99 %.2f\n",
                lat.mean() * 1e3, lat.p50() * 1e3, lat.p95() * 1e3,
                lat.p99() * 1e3);
    std::printf("inter-tier flows   : %llu\n",
                static_cast<unsigned long long>(
                    sched.transfersStarted()));

    const char *tier_names[] = {"web", "app", "db "};
    for (int tier = 0; tier < 3; ++tier) {
        std::uint64_t tasks = 0;
        double busy = 0.0;
        for (int s = tier * 4; s < (tier + 1) * 4; ++s) {
            servers[s]->finishStats();
            tasks += servers[s]->tasksCompleted();
            for (unsigned c = 0; c < 4; ++c) {
                busy += servers[s]->core(c).residency().fraction(
                    static_cast<int>(CoreCState::c0Active));
            }
        }
        std::printf("tier %s            : %llu tasks, core "
                    "utilization %.1f%%\n",
                    tier_names[tier],
                    static_cast<unsigned long long>(tasks),
                    100.0 * busy / 16.0);
    }

    if (profile_on) {
        if (profile_out.empty()) {
            profiler.dumpJson(std::cout, wall_s, &sim.eventQueue(),
                              wheel.get());
        } else {
            std::ofstream os(profile_out);
            if (!os)
                fatal("cannot open '", profile_out, "' for writing");
            profiler.dumpJson(os, wall_s, &sim.eventQueue(),
                              wheel.get());
        }
        std::printf("kernel events      : %llu (%.0f events/s host)\n",
                    static_cast<unsigned long long>(
                        profiler.eventsObserved()),
                    wall_s > 0.0 ? static_cast<double>(
                                       profiler.eventsObserved()) /
                                       wall_s
                                 : 0.0);
    }
    return 0;
}
