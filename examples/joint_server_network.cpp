/**
 * @file
 * Case-study IV-D as a runnable example: joint server/network
 * energy optimization on a fat-tree fabric.
 *
 * Jobs are DAGs of dependent tasks whose results travel as flows
 * (100 MB per edge). The Server-Network-Aware placement wakes the
 * server whose path wakes the fewest sleeping switches; the
 * Server-Balanced baseline spreads tasks evenly. The example prints
 * server power, switch power and job-latency percentiles for both.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "dc/datacenter.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct RunResult {
    double server_w;
    double switch_w;
    double p50_s, p90_s;
};

RunResult
runOnce(bool network_aware, unsigned n_jobs,
        const std::string &trace_out = {})
{
    DataCenterConfig cfg;
    cfg.nCores = 4;
    cfg.fabric = DataCenterConfig::Fabric::fatTree;
    cfg.fabricParam = 4; // 16 servers, 20 switches
    cfg.dispatch = network_aware
                       ? DataCenterConfig::Dispatch::networkAware
                       : DataCenterConfig::Dispatch::roundRobin;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 2 * sec;
    cfg.netConfig.switchSleepDelay = 1 * sec;
    cfg.taskAntiAffinity = true; // every DAG edge becomes a flow
    cfg.linkRate = 1e10;         // 10 GbE: 100 MB flows in ~80 ms
    cfg.seed = 23;
    if (!trace_out.empty()) {
        cfg.telemetry.enabled = true;
        cfg.telemetry.traceOut = trace_out;
    }
    DataCenter dc(cfg);

    auto service = std::make_shared<ExponentialService>(
        300 * msec, dc.makeRng("service"));
    RandomDagGenerator jobs(service, /*layers=*/3, /*width=*/2,
                            /*edge_probability=*/0.5,
                            /*transfer_bytes=*/100ull << 20,
                            dc.makeRng("dag"));
    // ~4 tasks per job at 30% server utilization.
    double lambda = PoissonArrival::rateForUtilization(
                        0.3, 16, 4, 0.3) / 4.0;
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, n_jobs);
    dc.run();
    dc.finishStats();

    RunResult r;
    double seconds = toSeconds(dc.sim().curTick());
    r.server_w = dc.energy().total.total() / seconds;
    r.switch_w = dc.switchEnergy() / seconds;
    r.p50_s = dc.scheduler().jobLatency().p50();
    r.p90_s = dc.scheduler().jobLatency().p90();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace-out=FILE records the network-aware run as a Perfetto
    // timeline (server power states, task lifecycles, flows).
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else {
            std::fprintf(stderr,
                         "usage: joint_server_network "
                         "[--trace-out=FILE]\n");
            return 2;
        }
    }

    const unsigned n_jobs = 400;
    RunResult balanced = runOnce(false, n_jobs);
    RunResult aware = runOnce(true, n_jobs, trace_out);

    std::printf("policy                 server_W  switch_W  "
                "p50_s   p90_s\n");
    std::printf("server-balanced        %8.1f  %8.1f  %6.3f  %6.3f\n",
                balanced.server_w, balanced.switch_w, balanced.p50_s,
                balanced.p90_s);
    std::printf("server-network-aware   %8.1f  %8.1f  %6.3f  %6.3f\n",
                aware.server_w, aware.switch_w, aware.p50_s,
                aware.p90_s);
    std::printf("savings                %7.1f%%  %7.1f%%\n",
                100.0 * (1.0 - aware.server_w / balanced.server_w),
                100.0 * (1.0 - aware.switch_w / balanced.switch_w));
    return 0;
}
