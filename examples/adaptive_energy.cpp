/**
 * @file
 * Case-study IV-C as a runnable example: workload-adaptive
 * energy-latency optimization with hierarchical sleep states.
 *
 * Ten 10-core servers (Xeon E5-2680 profile) serve a web-search
 * workload. The WASP-style policy keeps an active pool in shallow
 * sleep (package C6) and pushes the sleep pool down to
 * suspend-to-RAM, promoting/demoting servers on the pending-jobs
 * load estimator. Compares energy and tail latency against the
 * Active-Idle baseline.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sched/adaptive_policy.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct RunResult {
    double energy_j;
    double p90_ms;
    double p95_ms;
    std::vector<double> residency;
};

RunResult
runOnce(bool adaptive, double rho)
{
    DataCenterConfig cfg;
    cfg.nServers = 10;
    cfg.nCores = 10;
    cfg.serverProfile = ServerPowerProfile::xeonE5_2680();
    cfg.seed = 11;
    DataCenter dc(cfg);

    std::unique_ptr<AdaptivePoolPolicy> wasp;
    if (adaptive) {
        AdaptiveConfig ac;
        // Thresholds just above the core count pack the active pool
        // before another server is woken (see bench_fig8_residency).
        ac.wakeupThreshold = 13.0;
        ac.sleepThreshold = 9.0;
        ac.deepSleepAfter = 200 * msec;
        ac.transitionCooldown = 2 * sec;
        ac.initialActive = std::max(1, static_cast<int>(rho * 10) + 1);
        wasp = std::make_unique<AdaptivePoolPolicy>(dc.scheduler(), ac);
        wasp->start();
    }

    const Tick duration = 60 * sec;
    auto service = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        rho, cfg.nServers, cfg.nCores, 0.005);
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), duration);
    dc.runUntil(duration);
    if (wasp)
        wasp->stop();
    dc.run();
    dc.finishStats();

    RunResult r;
    r.energy_j = dc.energy().total.total();
    r.p90_ms = dc.scheduler().jobLatency().p90() * 1e3;
    r.p95_ms = dc.scheduler().jobLatency().p95() * 1e3;
    r.residency = dc.residency();
    return r;
}

} // namespace

int
main()
{
    std::printf("# rho   baseline_J  adaptive_J  saving   "
                "base_p95_ms  adapt_p95_ms\n");
    for (double rho : {0.1, 0.3, 0.6}) {
        RunResult base = runOnce(false, rho);
        RunResult adapt = runOnce(true, rho);
        std::printf("  %.1f  %10.0f  %10.0f  %5.1f%%  %11.2f  %12.2f\n",
                    rho, base.energy_j, adapt.energy_j,
                    100.0 * (1.0 - adapt.energy_j / base.energy_j),
                    base.p95_ms, adapt.p95_ms);
        std::printf("      adaptive residency: active %.0f%% wake "
                    "%.0f%% idle %.0f%% pkgC6 %.0f%% sleep %.0f%%\n",
                    100 * adapt.residency[0], 100 * adapt.residency[1],
                    100 * adapt.residency[2], 100 * adapt.residency[3],
                    100 * adapt.residency[4]);
    }
    return 0;
}
