/**
 * @file
 * Trace-driven simulation example: replay an arrival trace file
 * against a configurable data center (INI config), print latency
 * percentiles, per-server energy and an optional power trace --
 * the workflow the paper's validation experiments use.
 *
 * Usage:
 *   trace_replay [config.ini [trace.txt]]
 *
 * Without arguments, a built-in NLANR-like synthetic trace and a
 * default configuration are used so the example is self-contained.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

int
main(int argc, char **argv)
{
    DataCenterConfig cfg;
    if (argc > 1) {
        cfg = DataCenterConfig::fromConfig(Config::load(argv[1]));
    } else {
        cfg.nServers = 10;
        cfg.nCores = 4;
        cfg.controller = DataCenterConfig::Controller::delayTimer;
        cfg.delayTimerTau = 1 * sec;
    }
    DataCenter dc(cfg);

    std::vector<Tick> arrivals;
    if (argc > 2) {
        arrivals = loadArrivalTrace(argv[2]);
    } else {
        NlanrTraceParams np;
        np.duration = 300 * sec;
        np.baseRate = 400.0;
        arrivals = makeNlanrTrace(np, dc.makeRng("nlanr"));
    }
    std::printf("# replaying %zu arrivals over %.1f s on %u servers\n",
                arrivals.size(),
                arrivals.empty() ? 0.0 : toSeconds(arrivals.back()),
                cfg.nServers);

    auto service = std::make_shared<BoundedParetoService>(
        1.5, 1 * msec, 200 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);

    GaugeSampler power(dc.sim(), [&] { return dc.serverPower(); },
                       1 * sec, "fleetPower");
    power.start();
    dc.pumpTrace(std::move(arrivals), jobs);
    dc.run();
    power.stop();
    dc.finishStats();

    const auto &lat = dc.scheduler().jobLatency();
    std::printf("jobs        : %llu\n",
                static_cast<unsigned long long>(
                    dc.scheduler().jobsCompleted()));
    std::printf("latency ms  : mean %.2f  p50 %.2f  p90 %.2f  "
                "p99 %.2f\n",
                lat.mean() * 1e3, lat.p50() * 1e3, lat.p90() * 1e3,
                lat.p99() * 1e3);

    auto fleet = dc.energy();
    std::printf("energy J    : total %.0f\n", fleet.total.total());
    for (std::size_t i = 0; i < fleet.perServer.size(); ++i) {
        std::printf("  server %2zu : cpu %7.1f  dram %6.1f  "
                    "platform %7.1f\n",
                    i, fleet.perServer[i].cpu, fleet.perServer[i].dram,
                    fleet.perServer[i].platform);
    }
    std::printf("power trace : %zu samples, mean %.1f W\n",
                power.series().size(), power.mean());
    return 0;
}
