/**
 * @file
 * Fault-tolerance study: a 100-server fleet under steady load, swept
 * across component MTTF values (1 h, 10 h, 100 h) against a no-fault
 * baseline. Servers crash and recover per an exponential lifetime
 * model (MTTR 2 min); in-flight tasks die with them and the global
 * scheduler retries each task with exponential backoff.
 *
 * Reported per configuration: fleet availability, faults injected,
 * task retries, jobs abandoned, energy wasted on killed attempts and
 * the inflation of mean/99th-percentile job latency.
 *
 * The four configurations are sweep points of the experiment engine
 * and run concurrently:
 *
 *   fault_tolerance [jobs [replicas]]
 *
 * Deterministic: every random stream (arrivals, service, failures,
 * retry jitter) derives from the experiment seed and replica seeds
 * are a pure function of (seed, replica), so the table is identical
 * for any worker count. With replicas > 1 each row reports the
 * cross-replica mean.
 *
 * A second stage demonstrates campaign-level fault tolerance: a
 * three-point sweep in which one point is pathological (its horizon
 * exceeds the per-replica simulated-event budget). The CampaignRunner
 * retries the hung point with backoff, quarantines it after the
 * retries are exhausted, and completes the campaign with the healthy
 * points' results -- no manual babysitting, no lost work.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/fault_tolerance
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dc/datacenter.hh"
#include "exp/aggregate.hh"
#include "exp/campaign.hh"
#include "exp/experiment.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct Sweep {
    const char *label;
    double mttfHours;
};

const Sweep sweep[] = {
    {"no faults", 0.0},
    {"MTTF 100h", 100.0},
    {"MTTF  10h", 10.0},
    {"MTTF   1h", 1.0},
};

MetricRow
runOnce(double mttf_hours, std::uint64_t seed)
{
    DataCenterConfig cfg;
    cfg.nServers = 100;
    cfg.nCores = 4;
    cfg.dispatch = DataCenterConfig::Dispatch::leastLoaded;
    cfg.seed = seed;
    if (mttf_hours > 0.0) {
        cfg.fault.enabled = true;
        cfg.fault.mttfHours = mttf_hours;
        cfg.fault.mttrMinutes = 2.0;
        cfg.fault.maxRetries = 4;
        cfg.fault.retryBackoffBase = 50 * msec;
        cfg.fault.retryBackoffMax = 5 * sec;
    }
    DataCenter dc(cfg);

    // 500 ms jobs at ~35% fleet utilization for 900 simulated
    // seconds.
    auto service = std::make_shared<FixedService>(500 * msec);
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        0.35, cfg.nServers, cfg.nCores, 0.5);
    const Tick horizon = 900 * sec;
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), horizon);

    dc.run();
    dc.finishStats();

    const auto &lat = dc.scheduler().jobLatency();
    ReliabilitySummary rel = fleetReliability(dc.serverPtrs());
    MetricRow row{
        {"availability",
         dc.faults() ? dc.faults()->fleetAvailability() : 1.0},
        {"faults",
         dc.faults()
             ? static_cast<double>(dc.faults()->faultsInjected())
             : 0.0},
        {"retries",
         static_cast<double>(dc.scheduler().taskRetries())},
        {"done", static_cast<double>(dc.scheduler().jobsCompleted())},
        {"failed", static_cast<double>(dc.scheduler().jobsFailed())},
        {"wasted_j", rel.wastedJoules},
        {"wasted_frac", rel.wastedFraction()},
        {"mean_lat_ms", lat.mean() * 1e3},
        {"p99_lat_ms", lat.p99() * 1e3},
    };
    return row;
}

/**
 * One cell of the campaign demo. Point 1 is pathological: its
 * horizon is 500x the healthy points', so it exhausts the
 * per-replica event budget every attempt.
 */
MetricRow
runCampaignCell(std::size_t point, std::uint64_t seed,
                const ReplicaLimits &limits)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.nCores = 2;
    cfg.seed = seed;
    DataCenter dc(cfg);
    dc.sim().setInterruptFlag(limits.cancel);
    dc.sim().setEventBudget(limits.maxEvents);

    auto service = std::make_shared<FixedService>(5 * msec);
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        0.3, cfg.nServers, cfg.nCores, 0.005);
    const Tick horizon = point == 1 ? 1000 * sec : 2 * sec;
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), horizon);
    dc.run();
    dc.finishStats();

    return MetricRow{
        {"done", static_cast<double>(dc.scheduler().jobsCompleted())},
    };
}

void
campaignDemo(unsigned n_jobs)
{
    std::printf("\ncampaign robustness demo: 3 sweep points, point 1 "
                "pathological\n");

    CampaignOptions opts;
    opts.jobs = n_jobs;
    opts.replicas = 1;
    opts.baseSeed = 7;
    // Journal completed and quarantined cells like a real campaign
    // would; rerunning with resume would skip the healthy points and
    // the quarantined one alike.
    opts.journalPath = "fault_tolerance_campaign.jsonl";
    // Generous for the healthy points, far too small for point 1's
    // 1000 s horizon.
    opts.maxEvents = 50000;
    opts.retry.maxAttempts = 2;
    // Host-side backoff; keep the demo snappy.
    opts.retry.backoffBase = 1 * msec;
    opts.retry.backoffMax = 4 * msec;

    CampaignRunner runner(opts);
    CampaignResult res = runner.run(
        3, "fault_tolerance campaign demo",
        [](std::size_t point, std::size_t, std::uint64_t seed,
           const ReplicaLimits &limits) {
            return runCampaignCell(point, seed, limits);
        });

    for (const ReplicaRecord &rec : res.records) {
        if (!rec.failed) {
            std::printf("  point %zu completed: %.0f jobs\n",
                        rec.point,
                        rec.metrics.empty() ? 0.0
                                            : rec.metrics[0].second);
        }
    }
    for (const QuarantineRecord &q : res.quarantined) {
        std::printf("  point %zu QUARANTINED after retry: %s\n",
                    q.point, q.error.c_str());
    }
    std::printf("  executed=%zu retries=%llu quarantined=%zu -- the "
                "campaign completed despite the hung point\n",
                res.executed,
                static_cast<unsigned long long>(res.retries),
                res.quarantined.size());
    std::printf("  journal (incl. the quarantine record): %s\n",
                opts.journalPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                               : ThreadPool::defaultWorkers();
    std::size_t replicas =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;
    if (replicas == 0)
        replicas = 1;

    std::printf("fault tolerance: 100 servers x 4 cores, 35%% load, "
                "MTTR 2 min, 4 retries (jobs=%u, replicas=%zu)\n\n",
                n_jobs, replicas);
    std::printf("%-10s %12s %7s %8s %8s %7s %10s %8s %9s %9s\n",
                "config", "availability", "faults", "retries",
                "done", "failed", "wasted_J", "waste_%",
                "mean_ms", "p99_ms");

    ExperimentEngine engine(n_jobs);
    auto records = engine.run(
        std::size(sweep), replicas, 7,
        [](std::size_t point, std::size_t, std::uint64_t seed) {
            return runOnce(sweep[point].mttfHours, seed);
        });
    ResultTable table;
    ExperimentEngine::tabulate(records, table);

    for (std::size_t p = 0; p < std::size(sweep); ++p) {
        auto mean = [&table, p](const char *metric) {
            return table.summary(p, metric).mean;
        };
        std::printf("%-10s %12.6f %7.0f %8.0f %8.0f %7.0f %10.1f "
                    "%8.3f %9.2f %9.2f\n",
                    sweep[p].label, mean("availability"),
                    mean("faults"), mean("retries"), mean("done"),
                    mean("failed"), mean("wasted_j"),
                    100.0 * mean("wasted_frac"), mean("mean_lat_ms"),
                    mean("p99_lat_ms"));
    }

    campaignDemo(n_jobs);
    return 0;
}
