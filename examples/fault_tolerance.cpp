/**
 * @file
 * Fault-tolerance study: a 100-server fleet under steady load, swept
 * across component MTTF values (1 h, 10 h, 100 h) against a no-fault
 * baseline. Servers crash and recover per an exponential lifetime
 * model (MTTR 2 min); in-flight tasks die with them and the global
 * scheduler retries each task with exponential backoff.
 *
 * Reported per configuration: fleet availability, faults injected,
 * task retries, jobs abandoned, energy wasted on killed attempts and
 * the inflation of mean/99th-percentile job latency.
 *
 * Deterministic: every random stream (arrivals, service, failures,
 * retry jitter) derives from the experiment seed, so two runs with
 * the same seed print identical results.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/fault_tolerance
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct RunResult {
    double availability = 1.0;
    unsigned long long faults = 0;
    unsigned long long retries = 0;
    unsigned long long jobsDone = 0;
    unsigned long long jobsFailed = 0;
    double wastedJ = 0.0;
    double wastedFrac = 0.0;
    double meanLatMs = 0.0;
    double p99LatMs = 0.0;
};

RunResult
runOnce(double mttf_hours)
{
    DataCenterConfig cfg;
    cfg.nServers = 100;
    cfg.nCores = 4;
    cfg.dispatch = DataCenterConfig::Dispatch::leastLoaded;
    cfg.seed = 7;
    if (mttf_hours > 0.0) {
        cfg.fault.enabled = true;
        cfg.fault.mttfHours = mttf_hours;
        cfg.fault.mttrMinutes = 2.0;
        cfg.fault.maxRetries = 4;
        cfg.fault.retryBackoffBase = 50 * msec;
        cfg.fault.retryBackoffMax = 5 * sec;
    }
    DataCenter dc(cfg);

    // 500 ms jobs at ~35% fleet utilization for 900 simulated
    // seconds.
    auto service = std::make_shared<FixedService>(500 * msec);
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        0.35, cfg.nServers, cfg.nCores, 0.5);
    const Tick horizon = 900 * sec;
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), horizon);

    dc.run();
    dc.finishStats();

    RunResult r;
    const auto &lat = dc.scheduler().jobLatency();
    r.jobsDone = dc.scheduler().jobsCompleted();
    r.jobsFailed = dc.scheduler().jobsFailed();
    r.retries = dc.scheduler().taskRetries();
    r.meanLatMs = lat.mean() * 1e3;
    r.p99LatMs = lat.p99() * 1e3;
    ReliabilitySummary rel = fleetReliability(dc.serverPtrs());
    r.wastedJ = rel.wastedJoules;
    r.wastedFrac = rel.wastedFraction();
    if (dc.faults()) {
        r.availability = dc.faults()->fleetAvailability();
        r.faults = dc.faults()->faultsInjected();
    }
    return r;
}

} // namespace

int
main()
{
    struct Sweep {
        const char *label;
        double mttfHours;
    };
    const Sweep sweep[] = {
        {"no faults", 0.0},
        {"MTTF 100h", 100.0},
        {"MTTF  10h", 10.0},
        {"MTTF   1h", 1.0},
    };

    std::printf("fault tolerance: 100 servers x 4 cores, 35%% load, "
                "MTTR 2 min, 4 retries\n\n");
    std::printf("%-10s %12s %7s %8s %8s %7s %10s %8s %9s %9s\n",
                "config", "availability", "faults", "retries",
                "done", "failed", "wasted_J", "waste_%",
                "mean_ms", "p99_ms");

    for (const Sweep &s : sweep) {
        RunResult r = runOnce(s.mttfHours);
        std::printf("%-10s %12.6f %7llu %8llu %8llu %7llu %10.1f "
                    "%8.3f %9.2f %9.2f\n",
                    s.label, r.availability, r.faults, r.retries,
                    r.jobsDone, r.jobsFailed, r.wastedJ,
                    100.0 * r.wastedFrac, r.meanLatMs, r.p99LatMs);
    }
    return 0;
}
