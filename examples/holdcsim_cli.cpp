/**
 * @file
 * The `holdcsim` driver: a complete experiment from one INI file
 * (paper Figure 1 -- workload model, server profile and switch
 * profile in; power/energy, network delay, job latency and state
 * transition statistics out).
 *
 * Usage:
 *   holdcsim_cli [options] [experiment.ini]
 *
 * With no configuration file a built-in demo configuration runs.
 * Telemetry options override the [telemetry] section of the file:
 *
 *   --trace-out=FILE      write a timeline trace to FILE
 *   --trace-format=FMT    json (Perfetto, default) | csv
 *   --sample-out=FILE     write time-series samples to FILE
 *   --sample-period=DUR   sampling period (e.g. 100ms, 2s, 500us)
 *   --profile             profile the DES kernel (profile.* stats)
 *   --help                this text
 *
 * Example configuration:
 *
 *   [datacenter]
 *   servers = 20
 *   cores = 4
 *   seed = 7
 *   [server]
 *   controller = delay_timer
 *   tau_ms = 800
 *   [server_power]
 *   core_active_w = 6.5
 *   [scheduler]
 *   policy = least_loaded
 *   [network]
 *   fabric = fat_tree
 *   param = 4
 *   [workload]
 *   arrival = wikipedia
 *   utilization = 0.3
 *   duration_s = 60
 *   service = exponential
 *   service_mean_ms = 5
 *   job = chain
 *   stages = 2
 *   transfer_kb = 64
 *   [telemetry]
 *   trace_out = timeline.json
 *   sample_out = series.csv
 *   sample_period_ms = 100
 *   profile = true
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "dc/datacenter.hh"
#include "dc/workload_config.hh"

using namespace holdcsim;

namespace {

const char *demo_config = R"(
[datacenter]
servers = 10
cores = 4
seed = 1
[server]
controller = delay_timer
tau_ms = 500
[scheduler]
policy = least_loaded
[workload]
arrival = poisson
utilization = 0.3
duration_s = 20
service = exponential
service_mean_ms = 5
job = single
)";

const char *usage = R"(usage: holdcsim_cli [options] [experiment.ini]

Runs a HolDCSim experiment described by an INI file (or a built-in
demo configuration) and dumps "component.stat value" lines to stdout.

options:
  --trace-out=FILE      write a timeline trace to FILE; load json
                        traces at https://ui.perfetto.dev
  --trace-format=FMT    trace backend: json (default) | csv
  --trace-categories=C  comma list of server,core,task,flow,network,
                        fault (default: all)
  --sample-out=FILE     write long-format time-series CSV to FILE
  --sample-period=DUR   sampling period: a number with an optional
                        ns/us/ms/s suffix (default unit ms)
  --profile             profile the DES kernel; adds profile.* stats
                        and a hot-events table to the dump
  --help                show this text
)";

/** Parse "100ms" / "2s" / "500us" / "250" (ms) into milliseconds. */
double
parseDurationMs(const std::string &text)
{
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    std::string unit = end ? std::string(end) : std::string();
    if (end == text.c_str() || value <= 0.0) {
        std::fprintf(stderr, "bad duration '%s'\n", text.c_str());
        std::exit(2);
    }
    if (unit.empty() || unit == "ms")
        return value;
    if (unit == "ns")
        return value * 1e-6;
    if (unit == "us")
        return value * 1e-3;
    if (unit == "s")
        return value * 1e3;
    std::fprintf(stderr, "bad duration unit '%s'\n", unit.c_str());
    std::exit(2);
}

/** If @p arg is "--<name>=V", store V in @p out and return true. */
bool
valueFlag(const std::string &arg, const std::string &name,
          std::string &out)
{
    std::string prefix = "--" + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    if (out.empty()) {
        std::fprintf(stderr, "%s needs a value\n", prefix.c_str());
        std::exit(2);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_path;
    std::string value;
    // Telemetry flags land on the parsed Config as [telemetry] keys,
    // so the CLI and the INI section stay one mechanism.
    std::vector<std::pair<std::string, std::string>> overrides;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage, stdout);
            return 0;
        } else if (valueFlag(arg, "trace-out", value)) {
            overrides.emplace_back("telemetry.trace_out", value);
        } else if (valueFlag(arg, "trace-format", value)) {
            overrides.emplace_back("telemetry.trace_format", value);
        } else if (valueFlag(arg, "trace-categories", value)) {
            overrides.emplace_back("telemetry.trace_categories", value);
        } else if (valueFlag(arg, "sample-out", value)) {
            overrides.emplace_back("telemetry.sample_out", value);
        } else if (valueFlag(arg, "sample-period", value)) {
            overrides.emplace_back(
                "telemetry.sample_period_ms",
                std::to_string(parseDurationMs(value)));
        } else if (arg == "--profile") {
            overrides.emplace_back("telemetry.profile", "true");
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n%s",
                         arg.c_str(), usage);
            return 2;
        } else if (config_path.empty()) {
            config_path = arg;
        } else {
            std::fprintf(stderr, "more than one config file given\n");
            return 2;
        }
    }

    Config cfg = config_path.empty()
                     ? Config::parseString(demo_config)
                     : Config::load(config_path);
    for (const auto &[key, val] : overrides)
        cfg.set(key, val);

    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    dc_cfg.serverProfile = serverProfileFromConfig(cfg);
    dc_cfg.switchProfile = switchProfileFromConfig(cfg);
    DataCenter dc(dc_cfg);

    ConfiguredWorkload wl = makeWorkload(cfg, dc.config(),
                                         dc_cfg.seed);
    JobGenerator &jobs = *wl.jobs;
    dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);

    if (wl.until != maxTick)
        dc.runUntil(wl.until);
    dc.run();

    dc.dumpStats(std::cout);
    return 0;
}
