/**
 * @file
 * The `holdcsim` driver: a complete experiment from one INI file
 * (paper Figure 1 -- workload model, server profile and switch
 * profile in; power/energy, network delay, job latency and state
 * transition statistics out).
 *
 * Usage:
 *   holdcsim_cli experiment.ini
 *   holdcsim_cli                 (built-in demo configuration)
 *
 * Example configuration:
 *
 *   [datacenter]
 *   servers = 20
 *   cores = 4
 *   seed = 7
 *   [server]
 *   controller = delay_timer
 *   tau_ms = 800
 *   [server_power]
 *   core_active_w = 6.5
 *   [scheduler]
 *   policy = least_loaded
 *   [network]
 *   fabric = fat_tree
 *   param = 4
 *   [workload]
 *   arrival = wikipedia
 *   utilization = 0.3
 *   duration_s = 60
 *   service = exponential
 *   service_mean_ms = 5
 *   job = chain
 *   stages = 2
 *   transfer_kb = 64
 */

#include <cstdio>
#include <iostream>

#include "dc/datacenter.hh"
#include "dc/workload_config.hh"

using namespace holdcsim;

namespace {

const char *demo_config = R"(
[datacenter]
servers = 10
cores = 4
seed = 1
[server]
controller = delay_timer
tau_ms = 500
[scheduler]
policy = least_loaded
[workload]
arrival = poisson
utilization = 0.3
duration_s = 20
service = exponential
service_mean_ms = 5
job = single
)";

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = argc > 1 ? Config::load(argv[1])
                          : Config::parseString(demo_config);

    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    dc_cfg.serverProfile = serverProfileFromConfig(cfg);
    dc_cfg.switchProfile = switchProfileFromConfig(cfg);
    DataCenter dc(dc_cfg);

    ConfiguredWorkload wl = makeWorkload(cfg, dc.config(),
                                         dc_cfg.seed);
    JobGenerator &jobs = *wl.jobs;
    dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);

    if (wl.until != maxTick)
        dc.runUntil(wl.until);
    dc.run();

    dc.dumpStats(std::cout);
    return 0;
}
