/**
 * @file
 * The `holdcsim` driver: a complete experiment from one INI file
 * (paper Figure 1 -- workload model, server profile and switch
 * profile in; power/energy, network delay, job latency and state
 * transition statistics out).
 *
 * Usage:
 *   holdcsim_cli [options] [experiment.ini]
 *
 * With no configuration file a built-in demo configuration runs.
 * Telemetry options override the [telemetry] section of the file:
 *
 *   --trace-out=FILE      write a timeline trace to FILE
 *   --trace-format=FMT    json (Perfetto, default) | csv
 *   --sample-out=FILE     write time-series samples to FILE
 *   --sample-period=DUR   sampling period (e.g. 100ms, 2s, 500us)
 *   --profile             profile the DES kernel (profile.* stats)
 *   --help                this text
 *
 * Example configuration:
 *
 *   [datacenter]
 *   servers = 20
 *   cores = 4
 *   seed = 7
 *   [server]
 *   controller = delay_timer
 *   tau_ms = 800
 *   [server_power]
 *   core_active_w = 6.5
 *   [scheduler]
 *   policy = least_loaded
 *   [network]
 *   fabric = fat_tree
 *   param = 4
 *   [workload]
 *   arrival = wikipedia
 *   utilization = 0.3
 *   duration_s = 60
 *   service = exponential
 *   service_mean_ms = 5
 *   job = chain
 *   stages = 2
 *   transfer_kb = 64
 *   [telemetry]
 *   trace_out = timeline.json
 *   sample_out = series.csv
 *   sample_period_ms = 100
 *   profile = true
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dc/datacenter.hh"
#include "dc/workload_config.hh"
#include "exp/aggregate.hh"
#include "exp/campaign.hh"
#include "exp/experiment.hh"
#include "exp/sweep.hh"
#include "mc/explorer.hh"

using namespace holdcsim;

namespace {

const char *demo_config = R"(
[datacenter]
servers = 10
cores = 4
seed = 1
[server]
controller = delay_timer
tau_ms = 500
[scheduler]
policy = least_loaded
[workload]
arrival = poisson
utilization = 0.3
duration_s = 20
service = exponential
service_mean_ms = 5
job = single
)";

const char *usage = R"(usage: holdcsim_cli [options] [experiment.ini]

Runs a HolDCSim experiment described by an INI file (or a built-in
demo configuration) and dumps "component.stat value" lines to stdout.

options:
  --trace-out=FILE      write a timeline trace to FILE; load json
                        traces at https://ui.perfetto.dev
  --trace-format=FMT    trace backend: json (default) | csv
  --trace-categories=C  comma list of server,core,task,flow,network,
                        fault,audit,orch (default: all)
  --sample-out=FILE     write long-format time-series CSV to FILE
  --sample-period=DUR   sampling period: a number with an optional
                        ns/us/ms/s suffix (default unit ms)
  --net-model=M         flow-level network model tier: exact
                        (default; global max-min re-solve), fluid
                        (partial invalidation, scales to millions of
                        flows) or hybrid (exact solver + fast path)
  --fast-path-kb=K      transfers of at most K KiB complete
                        analytically without entering the solver
                        (fluid/hybrid tiers; default 0 = off)
  --orch                run the container orchestration layer (as if
                        the config had an [orch] section): generated
                        jobs route through containers of a default
                        deployment; adds orch.* stats
  --placement=P         container placement policy: bin_pack
                        (default) | spread | affinity; implies --orch
  --autoscale           enable the orchestrator's threshold
                        autoscaler; implies --orch
  --profile             profile the DES kernel; adds profile.* stats
                        and a hot-events table to the dump
  --timer-mode=M        governor timer discipline: events (default;
                        one kernel event per timeout) | wheel
                        (coalesce onto a shared timer wheel; adds
                        profile.wheel.* stats under --profile)
  --wheel-granularity-us=N
                        wheel bucket width in us (default 0.001 =
                        1 ns, exact firing)
  --jobs=N              run experiment cells on N worker threads
                        (0 = one per hardware thread; default 1)
  --replicas=R          run R replications per sweep point, each
                        with a deterministic per-replica seed
  --sweep=KEY=A,B,C     sweep config KEY over the listed values;
                        repeatable, crossed with [sweep] sections
  --csv=FILE            write raw long-format results to FILE
                        (point,label,replica,metric,value)
  --journal=FILE        append completed cells to FILE as JSONL
                        (crash-tolerant campaign checkpoint)
  --resume              replay the journal and skip cells it already
                        holds; requires --journal
  --watchdog-sec=S      cancel a replica attempt after S wall-clock
                        seconds (retried, then quarantined; 0 = off)
  --max-events=N        cancel a replica attempt after N simulated
                        events (0 = unlimited)
  --max-attempts=N      tries per cell before quarantine (default 3)
  --explore             systematically explore fault-injection
                        schedules: enumerate the [mc] strategy's
                        schedules, run each through the simulator
                        with every invariant audited, and shrink the
                        first failure to a minimal replayable
                        reproducer (see the [mc] config section)
  --explore-budget=N    cap the number of schedules explored
                        (overrides [mc] budget; implies --explore)
  --repro-out=FILE      where --explore writes the shrunk reproducer
                        (default mc-repro.fault)
  --replay-schedule=F   replay the fault schedule in F (a fault-trace
                        file, e.g. an --explore reproducer) with
                        audits fatal; exits 3 if the failure
                        reproduces, 0 if the run passes
  --fault-schedule-out=FILE
                        after a single run, write the realized fault
                        episodes as a replayable fault trace (turns
                        any stochastic run into a deterministic one)
  --help                show this text

Any of --replicas, --sweep, --csv or a [sweep] config section (or
--jobs != 1) switches to experiment mode: the (sweep point x replica)
grid runs on the experiment engine and per-point summaries (mean,
stddev, 95% CI across replicas) are printed instead of the raw stat
dump. Replica r of every point uses replicaSeed(datacenter.seed, r),
so results are independent of --jobs.

Experiment mode is crash tolerant: with --journal every finished cell
is checkpointed, SIGINT/SIGTERM stop the campaign with the journal
flushed, and a rerun with --resume re-executes only the missing cells
-- the aggregate CSV is byte-identical to an uninterrupted run. Cells
that keep failing (crash, watchdog, event budget) are quarantined
after --max-attempts tries and the campaign completes without them.
The [campaign] config section supplies defaults for these flags.
)";

/** Parse "100ms" / "2s" / "500us" / "250" (ms) into milliseconds. */
double
parseDurationMs(const std::string &text)
{
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    std::string unit = end ? std::string(end) : std::string();
    if (end == text.c_str() || value <= 0.0) {
        std::fprintf(stderr, "bad duration '%s'\n", text.c_str());
        std::exit(2);
    }
    if (unit.empty() || unit == "ms")
        return value;
    if (unit == "ns")
        return value * 1e-6;
    if (unit == "us")
        return value * 1e-3;
    if (unit == "s")
        return value * 1e3;
    std::fprintf(stderr, "bad duration unit '%s'\n", unit.c_str());
    std::exit(2);
}

/** If @p arg is "--<name>=V", store V in @p out and return true. */
bool
valueFlag(const std::string &arg, const std::string &name,
          std::string &out)
{
    std::string prefix = "--" + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    if (out.empty()) {
        std::fprintf(stderr, "%s needs a value\n", prefix.c_str());
        std::exit(2);
    }
    return true;
}

/**
 * Like valueFlag, but also accepts the two-token "--name V" form,
 * consuming argv[i + 1] when it does.
 */
bool
valueFlag2(int argc, char **argv, int &i, const std::string &name,
           std::string &out)
{
    std::string arg = argv[i];
    if (valueFlag(arg, name, out))
        return true;
    if (arg != "--" + name)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "--%s needs a value\n", name.c_str());
        std::exit(2);
    }
    out = argv[++i];
    return true;
}

unsigned
parseUnsigned(const std::string &text, const char *what)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        std::fprintf(stderr, "bad %s '%s'\n", what, text.c_str());
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

/** Run one experiment cell: sweep point @p point under @p seed. */
MetricRow
runCell(const Config &base, const SweepSpec &spec, std::size_t point,
        std::uint64_t seed, const ReplicaLimits &limits)
{
    Config cfg = base;
    spec.apply(cfg, point);

    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    // Not via cfg.set: replica seeds use the full uint64 range,
    // which the signed config-int parser would reject.
    dc_cfg.seed = seed;
    dc_cfg.serverProfile = serverProfileFromConfig(cfg);
    dc_cfg.switchProfile = switchProfileFromConfig(cfg);
    DataCenter dc(dc_cfg);
    // Watchdog / signal cancellation and the event budget reach the
    // replica through the engine's cooperative limits.
    dc.sim().setInterruptFlag(limits.cancel);
    dc.sim().setEventBudget(limits.maxEvents);

    ConfiguredWorkload wl = makeWorkload(cfg, dc.config(),
                                         dc_cfg.seed);
    JobGenerator &jobs = *wl.jobs;
    dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);
    if (wl.until != maxTick)
        dc.runUntil(wl.until);
    dc.run();
    dc.finishStats();

    MetricRow row;
    row.emplace_back("sim_seconds", toSeconds(dc.sim().curTick()));
    row.emplace_back("events",
                     static_cast<double>(dc.sim().eventsProcessed()));
    row.emplace_back(
        "jobs_completed",
        static_cast<double>(dc.scheduler().jobsCompleted()));
    const Percentile &lat = dc.scheduler().jobLatency();
    row.emplace_back("job_latency_mean_s", lat.mean());
    row.emplace_back("job_latency_p95_s", lat.p95());
    row.emplace_back("job_latency_p99_s", lat.p99());
    FleetEnergy fe = dc.energy();
    row.emplace_back("server_energy_j", fe.total.total());
    row.emplace_back("switch_energy_j", dc.switchEnergy());
    if (dc.faults())
        row.emplace_back("fleet_availability",
                         dc.faults()->fleetAvailability());
    return row;
}

/** Print per-point replica summaries as an aligned table. */
void
printSummaries(const ResultTable &table, const SweepSpec &spec)
{
    for (std::size_t p = 0; p < table.numPoints(); ++p) {
        std::string label = spec.point(p).label();
        std::printf("point %zu%s%s\n", p, label.empty() ? "" : ": ",
                    label.c_str());
        for (const std::string &metric : table.metrics()) {
            Summary s = table.summary(p, metric);
            if (s.n == 0)
                continue;
            std::printf("  %-22s %14.6g", metric.c_str(), s.mean);
            if (s.n > 1)
                std::printf("  +/- %-12.4g (n=%llu)", s.ci95,
                            static_cast<unsigned long long>(s.n));
            std::printf("\n");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_path;
    std::string value;
    // Telemetry flags land on the parsed Config as [telemetry] keys,
    // so the CLI and the INI section stay one mechanism.
    std::vector<std::pair<std::string, std::string>> overrides;
    unsigned n_jobs = 1;
    std::size_t n_replicas = 1;
    bool engine_mode = false;
    std::vector<std::string> sweep_flags;
    std::string csv_path;
    std::string journal_path;
    bool resume = false;
    bool have_watchdog = false, have_max_events = false;
    bool have_max_attempts = false;
    double watchdog_sec = 0.0;
    std::uint64_t max_events = 0;
    unsigned max_attempts = 0;
    bool explore = false;
    std::string repro_out = "mc-repro.fault";
    std::string replay_path;
    std::string schedule_out;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage, stdout);
            return 0;
        } else if (valueFlag2(argc, argv, i, "jobs", value)) {
            n_jobs = parseUnsigned(value, "--jobs");
            engine_mode |= n_jobs != 1;
        } else if (valueFlag2(argc, argv, i, "replicas", value)) {
            n_replicas = parseUnsigned(value, "--replicas");
            if (n_replicas == 0) {
                std::fprintf(stderr, "--replicas must be >= 1\n");
                return 2;
            }
            engine_mode = true;
        } else if (valueFlag2(argc, argv, i, "sweep", value)) {
            sweep_flags.push_back(value);
            engine_mode = true;
        } else if (valueFlag2(argc, argv, i, "csv", value)) {
            csv_path = value;
            engine_mode = true;
        } else if (valueFlag2(argc, argv, i, "journal", value)) {
            journal_path = value;
            engine_mode = true;
        } else if (arg == "--resume") {
            resume = true;
            engine_mode = true;
        } else if (valueFlag2(argc, argv, i, "watchdog-sec", value)) {
            char *end = nullptr;
            watchdog_sec = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                watchdog_sec < 0.0) {
                std::fprintf(stderr, "bad --watchdog-sec '%s'\n",
                             value.c_str());
                return 2;
            }
            have_watchdog = true;
        } else if (valueFlag2(argc, argv, i, "max-events", value)) {
            char *end = nullptr;
            max_events = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "bad --max-events '%s'\n",
                             value.c_str());
                return 2;
            }
            have_max_events = true;
        } else if (valueFlag2(argc, argv, i, "max-attempts", value)) {
            max_attempts = parseUnsigned(value, "--max-attempts");
            if (max_attempts == 0) {
                std::fprintf(stderr, "--max-attempts must be >= 1\n");
                return 2;
            }
            have_max_attempts = true;
        } else if (arg == "--explore") {
            explore = true;
        } else if (valueFlag2(argc, argv, i, "explore-budget",
                              value)) {
            overrides.emplace_back("mc.budget", value);
            explore = true;
        } else if (valueFlag2(argc, argv, i, "repro-out", value)) {
            repro_out = value;
        } else if (valueFlag2(argc, argv, i, "replay-schedule",
                              value)) {
            replay_path = value;
        } else if (valueFlag2(argc, argv, i, "fault-schedule-out",
                              value)) {
            schedule_out = value;
        } else if (valueFlag(arg, "trace-out", value)) {
            overrides.emplace_back("telemetry.trace_out", value);
        } else if (valueFlag(arg, "trace-format", value)) {
            overrides.emplace_back("telemetry.trace_format", value);
        } else if (valueFlag(arg, "trace-categories", value)) {
            overrides.emplace_back("telemetry.trace_categories", value);
        } else if (valueFlag(arg, "sample-out", value)) {
            overrides.emplace_back("telemetry.sample_out", value);
        } else if (valueFlag(arg, "sample-period", value)) {
            overrides.emplace_back(
                "telemetry.sample_period_ms",
                std::to_string(parseDurationMs(value)));
        } else if (valueFlag(arg, "net-model", value)) {
            overrides.emplace_back("network.model", value);
        } else if (valueFlag(arg, "fast-path-kb", value)) {
            overrides.emplace_back("network.fast_path_kb", value);
        } else if (arg == "--orch") {
            overrides.emplace_back("orch.enabled", "true");
        } else if (valueFlag(arg, "placement", value)) {
            overrides.emplace_back("orch.placement", value);
        } else if (arg == "--autoscale") {
            overrides.emplace_back("orch.autoscale", "true");
        } else if (arg == "--profile") {
            overrides.emplace_back("telemetry.profile", "true");
        } else if (valueFlag(arg, "timer-mode", value)) {
            overrides.emplace_back("datacenter.timer_mode", value);
        } else if (valueFlag(arg, "wheel-granularity-us", value)) {
            overrides.emplace_back("datacenter.wheel_granularity_us",
                                   value);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n%s",
                         arg.c_str(), usage);
            return 2;
        } else if (config_path.empty()) {
            config_path = arg;
        } else {
            std::fprintf(stderr, "more than one config file given\n");
            return 2;
        }
    }

    Config cfg = config_path.empty()
                     ? Config::parseString(demo_config)
                     : Config::load(config_path);
    for (const auto &[key, val] : overrides)
        cfg.set(key, val);
    warnUnknownConfigKeys(cfg);

    SweepSpec spec = SweepSpec::fromConfig(cfg);
    for (const std::string &flag : sweep_flags)
        spec.addFlag(flag);
    engine_mode |= spec.numKeys() > 0;

    if (resume && journal_path.empty()) {
        DataCenterConfig probe = DataCenterConfig::fromConfig(cfg);
        if (probe.campaign.journal.empty()) {
            std::fprintf(stderr,
                         "--resume needs --journal=FILE (or a "
                         "[campaign] journal key)\n");
            return 2;
        }
    }

    if (explore) {
        // Parallel oracle runs cannot share telemetry output files.
        cfg.set("telemetry.enabled", "false");
        DataCenterConfig probe = DataCenterConfig::fromConfig(cfg);

        mc::ExplorerOptions eopts;
        eopts.jobs = n_jobs;
        eopts.journalPath = journal_path.empty()
                                ? probe.campaign.journal
                                : journal_path;
        eopts.resume = resume;
        eopts.reproPath = repro_out;
        eopts.configPath =
            config_path.empty() ? "<demo>" : config_path;
        eopts.log = &std::cout;

        CampaignRunner::installSignalHandlers();
        mc::ExplorerReport rep = mc::exploreFaultSchedules(cfg, eopts);

        std::printf("mc.schedules %zu\n", rep.schedules);
        std::printf("mc.executed %zu\n", rep.executed);
        std::printf("mc.skipped %zu\n", rep.skipped);
        std::printf("mc.failures %zu\n", rep.failures);
        std::printf("mc.found %d\n", rep.found ? 1 : 0);
        if (rep.found) {
            std::printf("mc.minimal_faults %zu\n", rep.minimal.size());
            std::printf("mc.shrink_runs %zu\n", rep.shrinkRuns);
            std::printf("mc.outcome %s\n",
                        mc::toString(rep.outcome.kind));
            if (!rep.reproPath.empty())
                std::printf("mc.repro %s\n", rep.reproPath.c_str());
        }
        return 0;
    }

    if (!replay_path.empty()) {
        mc::FaultSchedule schedule =
            mc::FaultSchedule::fromTraceFile(replay_path);
        auto seed = static_cast<std::uint64_t>(
            cfg.getInt("datacenter.seed", 1));
        mc::OracleOutcome oc =
            mc::runScheduleOracle(cfg, schedule, seed);
        std::printf("mc.replay.outcome %s\n",
                    mc::toString(oc.kind));
        if (oc.failed()) {
            std::fprintf(stderr, "schedule reproduces (%s): %s\n",
                         mc::toString(oc.kind), oc.what.c_str());
            return 3;
        }
        return 0;
    }

    if (engine_mode) {
        // Replicas of one grid cannot share telemetry output files;
        // force telemetry off rather than corrupt them.
        DataCenterConfig probe = DataCenterConfig::fromConfig(cfg);
        if (probe.telemetry.enabled) {
            std::fprintf(stderr, "warning: telemetry is disabled in "
                                 "experiment mode\n");
            cfg.set("telemetry.enabled", "false");
        }

        CampaignOptions opts;
        opts.jobs = n_jobs;
        opts.replicas = n_replicas;
        opts.baseSeed = static_cast<std::uint64_t>(
            cfg.getInt("datacenter.seed", 1));
        opts.journalPath = journal_path.empty()
                               ? probe.campaign.journal
                               : journal_path;
        opts.resume = resume;
        opts.watchdogSec = have_watchdog ? watchdog_sec
                                         : probe.campaign.watchdogSec;
        opts.maxEvents = have_max_events ? max_events
                                         : probe.campaign.maxEvents;
        opts.retry.maxAttempts = have_max_attempts
                                     ? max_attempts
                                     : probe.campaign.maxAttempts;
        opts.retry.backoffBase = probe.campaign.retryBackoffBase;
        opts.retry.backoffMax = probe.campaign.retryBackoffMax;

        // The journal key covers the config *text* (every key=value
        // incl. CLI sweeps), so a journal from a different campaign
        // is never replayed into this one.
        std::string canonical;
        for (const std::string &key : cfg.keys())
            canonical += key + "=" + cfg.getString(key, "") + "\n";
        for (const std::string &flag : sweep_flags)
            canonical += "sweep-flag=" + flag + "\n";

        CampaignRunner::installSignalHandlers();
        CampaignRunner runner(opts);
        CampaignResult res = runner.run(
            spec.numPoints(), canonical,
            [&cfg, &spec](std::size_t point, std::size_t,
                          std::uint64_t seed,
                          const ReplicaLimits &limits) {
                return runCell(cfg, spec, point, seed, limits);
            });

        ResultTable table;
        for (std::size_t p = 0; p < spec.numPoints(); ++p)
            table.setPointLabel(p, spec.point(p).label());
        ExperimentEngine::tabulate(res.records, table);

        if (!csv_path.empty()) {
            std::ofstream csv(csv_path);
            if (!csv) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             csv_path.c_str());
                return 1;
            }
            table.writeCsv(csv);
        }
        printSummaries(table, spec);

        std::printf("reliability.campaign.executed %zu\n",
                    res.executed);
        std::printf("reliability.campaign.skipped %zu\n", res.skipped);
        std::printf("reliability.campaign.retries %llu\n",
                    static_cast<unsigned long long>(res.retries));
        std::printf("reliability.campaign.watchdog_cancels %llu\n",
                    static_cast<unsigned long long>(
                        res.watchdogCancels));
        std::printf("reliability.campaign.quarantined %zu\n",
                    res.quarantined.size());
        std::printf("reliability.campaign.interrupted %d\n",
                    res.interrupted ? 1 : 0);
        for (const QuarantineRecord &q : res.quarantined) {
            std::fprintf(stderr,
                         "quarantined point %zu replica %zu: %s\n",
                         q.point, q.replica, q.error.c_str());
        }
        if (res.interrupted) {
            std::fprintf(stderr, "campaign interrupted; rerun with "
                                 "--resume to continue\n");
            return 130;
        }
        return 0;
    }

    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    dc_cfg.serverProfile = serverProfileFromConfig(cfg);
    dc_cfg.switchProfile = switchProfileFromConfig(cfg);
    DataCenter dc(dc_cfg);

    ConfiguredWorkload wl = makeWorkload(cfg, dc.config(),
                                         dc_cfg.seed);
    JobGenerator &jobs = *wl.jobs;
    dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);

    auto writeScheduleOut = [&] {
        if (schedule_out.empty() || !dc.faults())
            return;
        std::ofstream out(schedule_out);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         schedule_out.c_str());
            std::exit(1);
        }
        dc.faults()->writeScheduleTrace(out);
    };

    try {
        if (wl.until != maxTick)
            dc.runUntil(wl.until);
        dc.run();
    } catch (const SimAbortError &e) {
        // The structured abort dump already went to stderr. The
        // realized schedule is still worth exporting: it replays
        // straight into this abort.
        writeScheduleOut();
        std::fprintf(stderr, "simulation aborted: %s\n", e.what());
        return 1;
    }

    writeScheduleOut();
    dc.dumpStats(std::cout);
    return 0;
}
