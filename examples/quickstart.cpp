/**
 * @file
 * HolDCSim quickstart: simulate a small server farm under Poisson
 * load, with a delay-timer sleep policy, and print latency, energy
 * and state-residency results.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "workload/service.hh"

using namespace holdcsim;

int
main()
{
    // 1. Describe the data center: 10 four-core servers that
    //    suspend to RAM after 500 ms of idleness, with jobs spread
    //    by a load-balancing (least-loaded) global scheduler.
    DataCenterConfig cfg;
    cfg.nServers = 10;
    cfg.nCores = 4;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 500 * msec;
    cfg.dispatch = DataCenterConfig::Dispatch::leastLoaded;
    cfg.seed = 42;
    DataCenter dc(cfg);

    // 2. Describe the workload: web-search-like jobs (5 ms mean
    //    exponential service) arriving at 30% fleet utilization.
    auto service = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        0.30, cfg.nServers, cfg.nCores, 0.005);
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, /*max_jobs=*/50'000);

    // 3. Run to completion and collect statistics.
    dc.run();
    dc.finishStats();

    const auto &lat = dc.scheduler().jobLatency();
    auto fleet = dc.energy();
    auto residency = dc.residency();

    std::printf("jobs completed      : %llu\n",
                static_cast<unsigned long long>(
                    dc.scheduler().jobsCompleted()));
    std::printf("simulated time      : %.2f s\n",
                toSeconds(dc.sim().curTick()));
    std::printf("mean job latency    : %.3f ms\n", lat.mean() * 1e3);
    std::printf("90th / 95th / 99th  : %.3f / %.3f / %.3f ms\n",
                lat.p90() * 1e3, lat.p95() * 1e3, lat.p99() * 1e3);
    std::printf("fleet energy        : %.1f J (cpu %.1f, dram %.1f, "
                "platform %.1f)\n",
                fleet.total.total(), fleet.total.cpu,
                fleet.total.dram, fleet.total.platform);
    std::printf("state residency     : active %.1f%%  wake %.1f%%  "
                "idle %.1f%%  pkgC6 %.1f%%  sleep %.1f%%\n",
                100 * residency[0], 100 * residency[1],
                100 * residency[2], 100 * residency[3],
                100 * residency[4]);
    return 0;
}
