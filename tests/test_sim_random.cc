/**
 * @file
 * Statistical and determinism tests for the Rng streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hh"

using namespace holdcsim;

TEST(Rng, DeterministicForSameSeedAndStream)
{
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(42, 0), b(42, 1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}

TEST(Rng, NamedStreamsReproducible)
{
    Rng a(9, "server.3"), b(9, "server.3"), c(9, "server.4");
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(2);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly)
{
    Rng rng(3);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(0, 9)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, ExponentialMeanAndVariance)
{
    Rng rng(5);
    const double mean = 3.5;
    const int n = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < n; ++i) {
        double v = rng.exponential(mean);
        EXPECT_GT(v, 0.0);
        sum += v;
        sumsq += v * v;
    }
    double m = sum / n;
    double var = sumsq / n - m * m;
    EXPECT_NEAR(m, mean, 0.05);
    // Exponential variance = mean^2.
    EXPECT_NEAR(var, mean * mean, mean * mean * 0.05);
}

TEST(Rng, NormalMoments)
{
    Rng rng(6);
    const int n = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(10.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    double m = sum / n;
    double var = sumsq / n - m * m;
    EXPECT_NEAR(m, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        double v = rng.boundedPareto(1.1, 1.0, 1000.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 1000.0);
    }
}

TEST(Rng, BoundedParetoIsHeavyTailed)
{
    // With alpha just above 1 most mass is near the low bound but the
    // tail reaches far: the max of many draws should dwarf the median.
    Rng rng(8);
    std::vector<double> v;
    for (int i = 0; i < 50000; ++i)
        v.push_back(rng.boundedPareto(1.1, 1.0, 1000.0));
    std::sort(v.begin(), v.end());
    double median = v[v.size() / 2];
    double max = v.back();
    EXPECT_LT(median, 3.0);
    EXPECT_GT(max, 100.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(10);
    std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights)
{
    Rng rng(11);
    std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(rng.weightedIndex(w), 1u);
}

TEST(Rng, WeightedIndexNeverReturnsZeroWeightTail)
{
    // Accumulation error can leave target >= acc at the end of the
    // scan; the fallback must land on the last positive weight, not
    // on the impossible zero-weight tail.
    std::vector<double> w{0.1, 0.7, 0.2, 0.0, 0.0};
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        Rng rng(seed, "tail");
        for (int i = 0; i < 10000; ++i)
            EXPECT_LE(rng.weightedIndex(w), 2u);
    }
    // Tiny leading weight, zero tail: same guarantee under heavy
    // cancellation.
    std::vector<double> v{1e-300, 1.0, 0.0};
    Rng rng(3, "tail2");
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(rng.weightedIndex(v), 1u);
}

TEST(Rng, UniformIntAcceptsEveryDrawAtPowerOfTwoSpans)
{
    // When span divides 2^64 the raw stream needs no rejection at
    // all: uniformInt must consume exactly one draw and reduce it
    // modulo span. The old bound rejected the top `span` values.
    const std::uint64_t spans[] = {1ULL << 1, 1ULL << 16, 1ULL << 32,
                                   1ULL << 63};
    for (std::uint64_t span : spans) {
        Rng a(77, "pow2"), b(77, "pow2");
        for (int i = 0; i < 1000; ++i) {
            std::uint64_t got = a.uniformInt(0, span - 1);
            EXPECT_EQ(got, b.next() % span);
        }
    }
}

TEST(Rng, UniformIntFullRangePassesThrough)
{
    Rng a(5, "full"), b(5, "full");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, ~std::uint64_t{0}), b.next());
}

TEST(Rng, UniformIntStaysInBoundsOddSpan)
{
    Rng rng(6, "odd");
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = rng.uniformInt(10, 16); // span 7
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 16u);
    }
}

TEST(Rng, WeibullMeanMatchesShapeAndScale)
{
    // E[X] = scale * Gamma(1 + 1/shape).
    Rng rng(9, "weibull");
    const double shape = 1.5, scale = 2.0;
    const int n = 40000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.weibull(shape, scale);
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    double expected = scale * std::tgamma(1.0 + 1.0 / shape);
    EXPECT_NEAR(sum / n, expected, 0.05 * expected);
}

TEST(Rng, WeibullShapeOneIsExponential)
{
    // shape = 1 degenerates to exponential with mean = scale.
    Rng rng(9, "weibull.exp");
    const int n = 40000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.weibull(1.0, 3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, WeibullDeterministicPerStream)
{
    Rng a(11, "w"), b(11, "w");
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a.weibull(1.5, 2.0), b.weibull(1.5, 2.0));
}
