/**
 * @file
 * Unit and integration tests for the full server model: local
 * queuing, sleep/wake transitions, power controllers and energy
 * accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "server/power_controller.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct ServerFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    std::unique_ptr<Server> server;
    std::vector<TaskRef> completed;
    std::vector<Tick> completedAt;

    void
    makeServer(ServerConfig cfg = {})
    {
        server = std::make_unique<Server>(sim, cfg, prof);
        server->setTaskDoneCallback(
            [this](Server &, const TaskRef &t) {
                completed.push_back(t);
                completedAt.push_back(sim.curTick());
            });
    }

    TaskRef
    task(Tick service, JobId job = 0, int type = 0)
    {
        return TaskRef{job, 0, service, 1.0, type};
    }
};

} // namespace

TEST_F(ServerFixture, RunsSingleTask)
{
    makeServer();
    server->submit(task(5 * msec, 42));
    EXPECT_EQ(server->runningTasks(), 1u);
    EXPECT_EQ(server->observableState(), ServerState::active);
    sim.run();
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].job, 42u);
    EXPECT_EQ(server->tasksCompleted(), 1u);
    EXPECT_TRUE(server->isIdle());
}

TEST_F(ServerFixture, QueuesBeyondCoreCount)
{
    ServerConfig cfg;
    cfg.nCores = 2;
    makeServer(cfg);
    for (int i = 0; i < 5; ++i)
        server->submit(task(10 * msec, i));
    EXPECT_EQ(server->runningTasks(), 2u);
    EXPECT_EQ(server->pendingTasks(), 3u);
    EXPECT_EQ(server->load(), 5u);
    sim.run();
    EXPECT_EQ(completed.size(), 5u);
    // Two cores, five 10 ms tasks: 3 rounds.
    EXPECT_NEAR(toSeconds(sim.curTick()), 0.030, 0.002);
}

TEST_F(ServerFixture, UnifiedQueueIsFifo)
{
    ServerConfig cfg;
    cfg.nCores = 1;
    makeServer(cfg);
    for (int i = 0; i < 4; ++i)
        server->submit(task(1 * msec, i));
    sim.run();
    ASSERT_EQ(completed.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(completed[i].job, static_cast<JobId>(i));
}

TEST_F(ServerFixture, PerCoreQueueRoundRobin)
{
    ServerConfig cfg;
    cfg.nCores = 2;
    cfg.queueMode = LocalQueueMode::perCore;
    cfg.corePick = CorePickPolicy::roundRobin;
    makeServer(cfg);
    // Four long + immediate short: RR binds tasks 0,2 to core 0 and
    // 1,3 to core 1.
    for (int i = 0; i < 4; ++i)
        server->submit(task(10 * msec, i));
    EXPECT_EQ(server->runningTasks(), 2u);
    EXPECT_EQ(server->pendingTasks(), 2u);
    sim.run();
    EXPECT_EQ(completed.size(), 4u);
}

TEST_F(ServerFixture, HeterogeneousPrefersFastCore)
{
    ServerConfig cfg;
    cfg.nCores = 2;
    cfg.coreFreqGhz = {1.4, 2.8}; // slow, fast
    makeServer(cfg);
    server->submit(task(10 * msec, 7));
    // The fast core (id 1) must have been picked.
    EXPECT_TRUE(server->core(1).busy());
    EXPECT_FALSE(server->core(0).busy());
    sim.run();
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(server->core(1).tasksExecuted(), 1u);
}

TEST_F(ServerFixture, PackageEntersAndLeavesPc6)
{
    ServerConfig cfg;
    cfg.nCores = 2;
    makeServer(cfg);
    // Let the idle governor drive all cores to C6.
    sim.runUntil(10 * msec);
    EXPECT_EQ(server->pkgState(), PkgCState::pc6);
    EXPECT_EQ(server->observableState(), ServerState::pkgC6);
    server->submit(task(1 * msec));
    EXPECT_EQ(server->pkgState(), PkgCState::pc0);
    sim.run();
}

TEST_F(ServerFixture, Pc6DisallowedStopsAtPc2)
{
    ServerConfig cfg;
    cfg.allowPkgC6 = false;
    makeServer(cfg);
    sim.runUntil(10 * msec);
    EXPECT_EQ(server->pkgState(), PkgCState::pc2);
    EXPECT_EQ(server->observableState(), ServerState::idle);
}

TEST_F(ServerFixture, SetAllowPkgC6Runtime)
{
    makeServer();
    sim.runUntil(10 * msec);
    ASSERT_EQ(server->pkgState(), PkgCState::pc6);
    server->setAllowPkgC6(false);
    EXPECT_EQ(server->pkgState(), PkgCState::pc2);
    server->setAllowPkgC6(true);
    EXPECT_EQ(server->pkgState(), PkgCState::pc6);
}

TEST_F(ServerFixture, SleepRefusedWhileBusy)
{
    makeServer();
    server->submit(task(10 * msec));
    EXPECT_FALSE(server->sleep());
    EXPECT_EQ(server->sstate(), SState::s0);
    sim.run();
    EXPECT_TRUE(server->sleep());
    EXPECT_EQ(server->sstate(), SState::s3);
    EXPECT_TRUE(server->isAsleep());
}

TEST_F(ServerFixture, SubmitWhileAsleepTriggersWake)
{
    makeServer();
    ASSERT_TRUE(server->sleep());
    Tick slept = sim.curTick();
    server->submit(task(5 * msec, 3));
    EXPECT_TRUE(server->isWaking());
    EXPECT_EQ(server->observableState(), ServerState::wakingUp);
    sim.run();
    ASSERT_EQ(completed.size(), 1u);
    // Wake + entry latency, then C6 exit and the task itself.
    Tick expected = slept + prof.s3WakeLatency + prof.s3EntryLatency +
                    prof.c6ExitLatency + prof.pc6ExitLatency + 5 * msec;
    EXPECT_EQ(completedAt[0], expected);
    EXPECT_EQ(server->wakeTransitions(), 1u);
    EXPECT_EQ(server->sleepTransitions(), 1u);
}

TEST_F(ServerFixture, TasksBufferDuringWake)
{
    makeServer();
    ASSERT_TRUE(server->sleep());
    server->submit(task(5 * msec, 0));
    server->submit(task(5 * msec, 1));
    server->submit(task(5 * msec, 2));
    EXPECT_EQ(server->pendingTasks(), 3u);
    EXPECT_EQ(server->wakeTransitions(), 1u); // only one wake
    sim.run();
    EXPECT_EQ(completed.size(), 3u);
}

TEST_F(ServerFixture, DelayTimerSleepsAfterTau)
{
    makeServer();
    const Tick tau = 100 * msec;
    server->setController(
        std::make_unique<DelayTimerController>(tau));
    server->submit(task(10 * msec));
    sim.run();
    // Idle from 10 ms; timer fires at 10 ms + tau.
    EXPECT_TRUE(server->isAsleep());
    EXPECT_EQ(sim.curTick(), 10 * msec + tau);
}

TEST_F(ServerFixture, DelayTimerCancelledByNewWork)
{
    makeServer();
    const Tick tau = 100 * msec;
    server->setController(
        std::make_unique<DelayTimerController>(tau));
    server->submit(task(10 * msec));
    // New work arrives mid-countdown.
    EventFunctionWrapper more(
        [&] { server->submit(task(10 * msec, 1)); }, "more");
    sim.schedule(more, 50 * msec);
    sim.runUntil(60 * msec);
    EXPECT_FALSE(server->isAsleep());
    sim.run();
    // Finally sleeps tau after the second task ends (the second task
    // pays core C6 + package C6 exit latencies before its 10 ms).
    EXPECT_TRUE(server->isAsleep());
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_EQ(completedAt[1],
              50 * msec + prof.c6ExitLatency + prof.pc6ExitLatency +
                  10 * msec);
    EXPECT_EQ(sim.curTick(), completedAt[1] + tau);
}

TEST_F(ServerFixture, DelayTimerAttachWhileIdleArms)
{
    makeServer();
    server->setController(
        std::make_unique<DelayTimerController>(50 * msec));
    sim.run();
    EXPECT_TRUE(server->isAsleep());
    EXPECT_EQ(sim.curTick(), 50 * msec);
}

TEST_F(ServerFixture, DeepSleepControllerSuspends)
{
    makeServer();
    server->setController(
        std::make_unique<DeepSleepController>(20 * msec));
    server->submit(task(5 * msec));
    sim.run();
    EXPECT_TRUE(server->isAsleep());
    EXPECT_EQ(sim.curTick(), 25 * msec);
}

TEST_F(ServerFixture, AlwaysOnNeverSuspends)
{
    makeServer();
    server->setController(std::make_unique<AlwaysOnController>());
    server->submit(task(5 * msec));
    sim.run();
    sim.runUntil(10 * sec);
    EXPECT_FALSE(server->isAsleep());
    EXPECT_EQ(server->sstate(), SState::s0);
}

TEST_F(ServerFixture, ServesTypeFiltering)
{
    ServerConfig cfg;
    cfg.taskTypes = {2, 3};
    makeServer(cfg);
    EXPECT_TRUE(server->servesType(2));
    EXPECT_FALSE(server->servesType(1));
    EXPECT_THROW(server->submit(task(1 * msec, 0, 1)), FatalError);
    ServerConfig any;
    makeServer(any);
    EXPECT_TRUE(server->servesType(77));
}

TEST_F(ServerFixture, EnergyAccountingMatchesHandComputation)
{
    ServerConfig cfg;
    cfg.nCores = 1;
    cfg.allowPkgC6 = false;
    // Disable the idle governor so the idle core stays in C0-idle;
    // that makes the hand computation exact.
    prof.demoteC1After = maxTick;
    makeServer(cfg);
    server->submit(task(10 * msec));
    sim.run();           // task done at 10 ms
    sim.runUntil(20 * msec);
    server->finishStats();
    const auto &e = server->energy();
    double active_cpu = (prof.coreActive + prof.pkgPc0) * 0.010;
    double idle_cpu = (prof.coreC0Idle + prof.pkgPc0) * 0.010;
    EXPECT_NEAR(e.cpu, active_cpu + idle_cpu, 1e-9);
    EXPECT_NEAR(e.dram,
                prof.dramActive * 0.010 + prof.dramIdle * 0.010, 1e-9);
    EXPECT_NEAR(e.platform, prof.platformS0 * 0.020, 1e-9);
    EXPECT_NEAR(e.total(), e.cpu + e.dram + e.platform, 1e-12);
}

TEST_F(ServerFixture, SleepSavesEnergyVersusIdle)
{
    // Two identical servers; one suspends, one idles for 10 s.
    makeServer();
    ServerConfig sleeper_cfg;
    sleeper_cfg.id = 1;
    auto sleeper = std::make_unique<Server>(sim, sleeper_cfg, prof);
    ASSERT_TRUE(sleeper->sleep());
    sim.runUntil(10 * sec);
    server->finishStats();
    sleeper->finishStats();
    EXPECT_LT(sleeper->energy().total(),
              0.25 * server->energy().total());
}

TEST_F(ServerFixture, ResidencyCoversAllTime)
{
    makeServer();
    server->setController(
        std::make_unique<DelayTimerController>(100 * msec));
    for (int i = 0; i < 3; ++i) {
        server->submit(task(10 * msec, i));
        sim.run();
        sim.runUntil(sim.curTick() + 500 * msec);
    }
    server->finishStats();
    const auto &res = server->residency();
    Tick total = 0;
    for (int s = 0; s < 5; ++s)
        total += res.residency(s);
    EXPECT_EQ(total, sim.curTick());
    EXPECT_GT(res.residency(static_cast<int>(ServerState::active)), 0u);
    EXPECT_GT(res.residency(static_cast<int>(ServerState::sysSleep)),
              0u);
    EXPECT_GT(res.residency(static_cast<int>(ServerState::wakingUp)),
              0u);
}

TEST_F(ServerFixture, WakePowerIsHigh)
{
    makeServer();
    ASSERT_TRUE(server->sleep());
    Watts sleep_power = server->power();
    server->submit(task(1 * msec));
    ASSERT_TRUE(server->isWaking());
    EXPECT_GT(server->power(), 10.0 * sleep_power);
    sim.run();
}

TEST_F(ServerFixture, CallbackMaySubmitFollowUpWork)
{
    ServerConfig cfg;
    cfg.nCores = 1;
    makeServer(cfg);
    int chained = 0;
    server->setTaskDoneCallback([&](Server &srv, const TaskRef &t) {
        if (t.job < 3) {
            ++chained;
            srv.submit(TaskRef{t.job + 1, 0, 1 * msec, 1.0, 0});
        }
    });
    server->submit(task(1 * msec, 0));
    sim.run();
    EXPECT_EQ(chained, 3);
    EXPECT_EQ(server->tasksCompleted(), 4u);
}

TEST_F(ServerFixture, ConfigValidation)
{
    ServerConfig cfg;
    cfg.nCores = 0;
    EXPECT_THROW(Server(sim, cfg, prof), FatalError);
    cfg = ServerConfig{};
    cfg.nCores = 4;
    cfg.coreFreqGhz = {1.0, 2.0}; // wrong size
    EXPECT_THROW(Server(sim, cfg, prof), FatalError);
}
