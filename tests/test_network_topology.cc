/**
 * @file
 * Tests for topology builders and shortest-path/ECMP routing,
 * including the structural invariants of fat tree, flattened
 * butterfly, BCube and CamCube.
 */

#include <gtest/gtest.h>

#include <set>

#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/logging.hh"

using namespace holdcsim;

namespace {
constexpr BitsPerSec gbps = 1e9;
constexpr Tick lat = 5 * usec;
} // namespace

TEST(Topology, BasicConstruction)
{
    Topology t;
    NodeId s0 = t.addServer();
    NodeId s1 = t.addServer();
    NodeId sw = t.addSwitch();
    LinkId l0 = t.addLink(s0, sw, gbps, lat);
    LinkId l1 = t.addLink(s1, sw, gbps, lat);
    EXPECT_EQ(t.numNodes(), 3u);
    EXPECT_EQ(t.numServers(), 2u);
    EXPECT_EQ(t.numSwitches(), 1u);
    EXPECT_EQ(t.numLinks(), 2u);
    EXPECT_TRUE(t.isServer(s0));
    EXPECT_TRUE(t.isSwitch(sw));
    EXPECT_EQ(t.degree(sw), 2u);
    EXPECT_EQ(t.otherEnd(l0, s0), sw);
    EXPECT_EQ(t.otherEnd(l1, sw), s1);
    EXPECT_EQ(t.serverIndex(s1), 1u);
    EXPECT_EQ(t.switchIndex(sw), 0u);
    EXPECT_NO_THROW(t.validateConnected());
}

TEST(Topology, RejectsBadLinks)
{
    Topology t;
    NodeId a = t.addServer();
    EXPECT_THROW(t.addLink(a, a, gbps, lat), FatalError);
    EXPECT_THROW(t.addLink(a, 99, gbps, lat), FatalError);
    EXPECT_THROW(t.addLink(a, a, 0.0, lat), FatalError);
}

TEST(Topology, DisconnectedDetected)
{
    Topology t;
    t.addServer();
    t.addServer();
    EXPECT_THROW(t.validateConnected(), FatalError);
}

TEST(Topology, StarShape)
{
    auto t = Topology::star(24, gbps, lat);
    EXPECT_EQ(t.numServers(), 24u);
    EXPECT_EQ(t.numSwitches(), 1u);
    EXPECT_EQ(t.numLinks(), 24u);
    EXPECT_EQ(t.degree(t.switchNode(0)), 24u);
    t.validateConnected();
}

TEST(Topology, FatTreeK4Counts)
{
    // k=4: 16 servers, 4 core + 8 agg + 8 edge = 20 switches.
    auto t = Topology::fatTree(4, gbps, lat);
    EXPECT_EQ(t.numServers(), 16u);
    EXPECT_EQ(t.numSwitches(), 20u);
    // Links: 16 server-edge + 16 edge-agg + 16 agg-core = 48.
    EXPECT_EQ(t.numLinks(), 48u);
    t.validateConnected();
    // Every switch in a k=4 fat tree has degree 4.
    for (std::size_t i = 0; i < t.numSwitches(); ++i)
        EXPECT_EQ(t.degree(t.switchNode(i)), 4u);
    for (std::size_t i = 0; i < t.numServers(); ++i)
        EXPECT_EQ(t.degree(t.serverNode(i)), 1u);
}

TEST(Topology, FatTreeK8Counts)
{
    auto t = Topology::fatTree(8, gbps, lat);
    EXPECT_EQ(t.numServers(), 128u); // k^3/4
    EXPECT_EQ(t.numSwitches(), 80u); // 16 core + 32 agg + 32 edge
    t.validateConnected();
}

TEST(Topology, FatTreeRejectsOddK)
{
    EXPECT_THROW(Topology::fatTree(3, gbps, lat), FatalError);
    EXPECT_THROW(Topology::fatTree(0, gbps, lat), FatalError);
}

TEST(Topology, FlattenedButterflyShape)
{
    auto t = Topology::flattenedButterfly(3, 2, gbps, lat);
    EXPECT_EQ(t.numSwitches(), 9u);
    EXPECT_EQ(t.numServers(), 18u);
    // Each switch: 2 row + 2 col + 2 servers = degree 6.
    for (std::size_t i = 0; i < t.numSwitches(); ++i)
        EXPECT_EQ(t.degree(t.switchNode(i)), 6u);
    t.validateConnected();
}

TEST(Topology, BCubeShape)
{
    // BCube(4, 1): 16 servers, 2 levels x 4 switches, each 4-port.
    auto t = Topology::bcube(4, 1, gbps, lat);
    EXPECT_EQ(t.numServers(), 16u);
    EXPECT_EQ(t.numSwitches(), 8u);
    for (std::size_t i = 0; i < t.numSwitches(); ++i)
        EXPECT_EQ(t.degree(t.switchNode(i)), 4u);
    // Every server has one port per level.
    for (std::size_t i = 0; i < t.numServers(); ++i)
        EXPECT_EQ(t.degree(t.serverNode(i)), 2u);
    t.validateConnected();
}

TEST(Topology, CamCubeIsServerOnlyTorus)
{
    auto t = Topology::camCube(3, 3, 3, gbps, lat);
    EXPECT_EQ(t.numServers(), 27u);
    EXPECT_EQ(t.numSwitches(), 0u);
    // 3-D torus with all dims of size 3: degree 6 everywhere.
    for (std::size_t i = 0; i < t.numServers(); ++i)
        EXPECT_EQ(t.degree(t.serverNode(i)), 6u);
    t.validateConnected();
}

TEST(Topology, CamCubeSize2NoDuplicateLinks)
{
    auto t = Topology::camCube(2, 2, 2, gbps, lat);
    EXPECT_EQ(t.numServers(), 8u);
    // Dimension size 2: a single link per neighbor pair -> degree 3.
    for (std::size_t i = 0; i < t.numServers(); ++i)
        EXPECT_EQ(t.degree(t.serverNode(i)), 3u);
    t.validateConnected();
}

// -------------------------------------------------------------------- routing

TEST(Routing, DirectNeighborAndSelf)
{
    auto t = Topology::star(4, gbps, lat);
    StaticRouting r(t);
    auto self = r.route(t.serverNode(0), t.serverNode(0));
    EXPECT_TRUE(self.empty());
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(0)), 0u);
    auto via_hub = r.route(t.serverNode(0), t.serverNode(3));
    EXPECT_EQ(via_hub.hops(), 2u);
    EXPECT_EQ(via_hub.nodes.front(), t.serverNode(0));
    EXPECT_EQ(via_hub.nodes[1], t.switchNode(0));
    EXPECT_EQ(via_hub.nodes.back(), t.serverNode(3));
}

TEST(Routing, RouteIsConsistentLinkWalk)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    for (std::size_t i = 0; i < t.numServers(); ++i) {
        auto route = r.route(t.serverNode(0), t.serverNode(i), i);
        ASSERT_EQ(route.nodes.size(), route.links.size() + 1);
        for (std::size_t h = 0; h < route.links.size(); ++h) {
            EXPECT_EQ(t.otherEnd(route.links[h], route.nodes[h]),
                      route.nodes[h + 1]);
        }
    }
}

TEST(Routing, FatTreeHopCounts)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    // Same edge switch: 2 hops; same pod: 4; cross-pod: 6.
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(1)), 2u);
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(2)), 4u);
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(15)), 6u);
}

TEST(Routing, EcmpSpreadsAcrossCores)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    // Cross-pod routes with different flow keys should not all use
    // the same core switch.
    std::set<NodeId> middles;
    for (std::uint64_t key = 0; key < 64; ++key) {
        auto route = r.route(t.serverNode(0), t.serverNode(15), key);
        middles.insert(route.nodes[3]); // the core hop
    }
    EXPECT_GT(middles.size(), 1u);
}

TEST(Routing, SameKeySamePath)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    auto a = r.route(t.serverNode(1), t.serverNode(14), 77);
    auto b = r.route(t.serverNode(1), t.serverNode(14), 77);
    EXPECT_EQ(a.links, b.links);
}

TEST(Routing, BcubeServerRelayPaths)
{
    auto t = Topology::bcube(4, 1, gbps, lat);
    StaticRouting r(t);
    // Servers sharing a level-0 switch: 2 hops. Others relay through
    // an intermediate server: server-sw-server-sw-server = 4 hops.
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(1)), 2u);
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(5)), 4u);
    auto route = r.route(t.serverNode(0), t.serverNode(5), 0);
    int relay_servers = 0;
    for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i)
        relay_servers += t.isServer(route.nodes[i]);
    EXPECT_EQ(relay_servers, 1);
}

TEST(Routing, CamCubeManhattanDistances)
{
    auto t = Topology::camCube(4, 4, 4, gbps, lat);
    StaticRouting r(t);
    // (0,0,0) to (1,1,1): torus Manhattan distance 3.
    NodeId a = t.serverNode(0);
    NodeId b = t.serverNode((1 * 4 + 1) * 4 + 1);
    EXPECT_EQ(r.hopCount(a, b), 3u);
    // Wrap-around: (0,0,0) to (3,0,0) is one hop.
    NodeId c = t.serverNode((3 * 4 + 0) * 4 + 0);
    EXPECT_EQ(r.hopCount(a, c), 1u);
}

TEST(Routing, UnreachableAndBadArgsFatal)
{
    Topology t;
    t.addServer();
    t.addServer();
    StaticRouting r(t);
    EXPECT_THROW(r.route(0, 1), FatalError);
    EXPECT_THROW(r.route(0, 9), FatalError);
}

TEST(Routing, InvalidateRecomputes)
{
    auto t = Topology::star(4, gbps, lat);
    StaticRouting r(t);
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(1)), 2u);
    r.invalidate();
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(1)), 2u);
}

// ------------------------------------------------------- component health

TEST(Routing, LinkDownReroutesAndRepairRestores)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    NodeId src = t.serverNode(0), dst = t.serverNode(12);
    auto orig = r.route(src, dst, 5);
    ASSERT_GE(orig.links.size(), 2u);

    // Sever a fabric link in the middle of the path (the access link
    // would partition the server outright).
    LinkId mid = orig.links[1];
    r.setLinkHealth(mid, false);
    EXPECT_FALSE(r.linkHealthy(mid));
    EXPECT_TRUE(r.anyUnhealthy());

    auto alt = r.route(src, dst, 5);
    ASSERT_FALSE(alt.empty());
    for (LinkId l : alt.links)
        EXPECT_NE(l, mid);

    // Repair: the original path (same ECMP key) must come back.
    r.setLinkHealth(mid, true);
    EXPECT_FALSE(r.anyUnhealthy());
    auto back = r.route(src, dst, 5);
    EXPECT_EQ(back.links, orig.links);
}

TEST(Routing, NodeDownPartitionsReachableNeverFatals)
{
    auto t = Topology::star(4, gbps, lat);
    StaticRouting r(t);
    NodeId hub = t.switchNode(0);
    EXPECT_TRUE(r.reachable(t.serverNode(0), t.serverNode(1)));

    r.setNodeHealth(hub, false);
    EXPECT_FALSE(r.nodeHealthy(hub));
    EXPECT_FALSE(r.reachable(t.serverNode(0), t.serverNode(1)));
    // route() still fatals on a partition; reachable() is the safe
    // probe the network layer uses before committing a flow.
    EXPECT_THROW(r.route(t.serverNode(0), t.serverNode(1)),
                 FatalError);
    EXPECT_TRUE(r.reachable(t.serverNode(0), t.serverNode(0)));

    r.setNodeHealth(hub, true);
    EXPECT_TRUE(r.reachable(t.serverNode(0), t.serverNode(1)));
    EXPECT_EQ(r.hopCount(t.serverNode(0), t.serverNode(1)), 2u);
}

TEST(Routing, HealthFlipsNotPerFlowRebuildTables)
{
    auto t = Topology::fatTree(4, gbps, lat);
    StaticRouting r(t);
    r.route(t.serverNode(0), t.serverNode(15), 0);
    std::uint64_t warm = r.tableBuilds();
    EXPECT_GT(warm, 0u);

    // Steady state: hundreds of routes, zero rebuilds.
    for (std::uint64_t k = 0; k < 200; ++k)
        r.route(t.serverNode(0), t.serverNode(15), k);
    EXPECT_EQ(r.tableBuilds(), warm);

    // A health flip invalidates once; repeating the same value is a
    // no-op (idempotent setters).
    LinkId l = t.linksAt(t.serverNode(3)).at(0);
    r.setLinkHealth(l, false);
    r.setLinkHealth(l, false);
    r.route(t.serverNode(0), t.serverNode(15), 1);
    std::uint64_t after_down = r.tableBuilds();
    EXPECT_GT(after_down, warm);

    for (std::uint64_t k = 0; k < 200; ++k)
        r.route(t.serverNode(0), t.serverNode(15), k);
    EXPECT_EQ(r.tableBuilds(), after_down);
}
