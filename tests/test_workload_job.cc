/**
 * @file
 * Unit and property tests for job DAGs and job generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "sim/logging.hh"
#include "workload/job.hh"
#include "workload/job_generator.hh"
#include "workload/service.hh"

using namespace holdcsim;

TEST(Job, SingleTask)
{
    Job job(1, 100);
    TaskId t = job.addTask(TaskSpec{5 * msec, 0, 1.0});
    job.validate();
    EXPECT_EQ(job.numTasks(), 1u);
    EXPECT_EQ(job.rootTasks(), std::vector<TaskId>{t});
    EXPECT_TRUE(job.parents(t).empty());
    EXPECT_TRUE(job.children(t).empty());
    EXPECT_EQ(job.totalWork(), 5 * msec);
    EXPECT_EQ(job.arrivalTick(), 100u);
}

TEST(Job, ChainParentChildIndexes)
{
    Job job(2, 0);
    TaskId a = job.addTask(TaskSpec{1 * msec, 1, 1.0});
    TaskId b = job.addTask(TaskSpec{2 * msec, 2, 1.0});
    TaskId c = job.addTask(TaskSpec{3 * msec, 2, 1.0});
    job.addEdge(a, b, 1000);
    job.addEdge(b, c, 2000);
    job.validate();
    EXPECT_EQ(job.rootTasks(), std::vector<TaskId>{a});
    EXPECT_EQ(job.children(a), std::vector<TaskId>{b});
    EXPECT_EQ(job.parents(c), std::vector<TaskId>{b});
    EXPECT_EQ(job.edgeBytes(a, b), 1000u);
    EXPECT_EQ(job.edgeBytes(b, c), 2000u);
    EXPECT_EQ(job.edgeBytes(a, c), 0u);
    EXPECT_EQ(job.totalWork(), 6 * msec);
}

TEST(Job, TopologicalOrderRespectsEdges)
{
    Job job(3, 0);
    // Diamond: a -> {b, c} -> d
    TaskId a = job.addTask(TaskSpec{1 * msec});
    TaskId b = job.addTask(TaskSpec{1 * msec});
    TaskId c = job.addTask(TaskSpec{1 * msec});
    TaskId d = job.addTask(TaskSpec{1 * msec});
    job.addEdge(a, b, 0);
    job.addEdge(a, c, 0);
    job.addEdge(b, d, 0);
    job.addEdge(c, d, 0);
    job.validate();
    auto order = job.topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    auto pos = [&](TaskId t) {
        return std::find(order.begin(), order.end(), t) - order.begin();
    };
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(a), pos(c));
    EXPECT_LT(pos(b), pos(d));
    EXPECT_LT(pos(c), pos(d));
}

TEST(Job, CycleDetected)
{
    Job job(4, 0);
    TaskId a = job.addTask(TaskSpec{1 * msec});
    TaskId b = job.addTask(TaskSpec{1 * msec});
    job.addEdge(a, b, 0);
    job.addEdge(b, a, 0);
    EXPECT_THROW(job.validate(), FatalError);
}

TEST(Job, StructuralErrorsDetected)
{
    {
        Job job(5, 0);
        EXPECT_THROW(job.validate(), FatalError); // no tasks
    }
    {
        Job job(6, 0);
        TaskId a = job.addTask(TaskSpec{1 * msec});
        job.addEdge(a, 7, 0); // out of range
        EXPECT_THROW(job.validate(), FatalError);
    }
    {
        Job job(7, 0);
        TaskId a = job.addTask(TaskSpec{1 * msec});
        job.addEdge(a, a, 0); // self edge
        EXPECT_THROW(job.validate(), FatalError);
    }
    {
        Job job(8, 0);
        TaskId a = job.addTask(TaskSpec{1 * msec});
        TaskId b = job.addTask(TaskSpec{1 * msec});
        job.addEdge(a, b, 0);
        job.addEdge(a, b, 0); // duplicate
        EXPECT_THROW(job.validate(), FatalError);
    }
}

TEST(Job, RejectsBadTaskSpecs)
{
    Job job(9, 0);
    EXPECT_THROW(job.addTask(TaskSpec{0, 0, 1.0}), FatalError);
    EXPECT_THROW(job.addTask(TaskSpec{1 * msec, 0, 1.5}), FatalError);
}

// --------------------------------------------------------------- generators

namespace {

std::shared_ptr<ServiceModel>
fixedSvc(Tick t)
{
    return std::make_shared<FixedService>(t);
}

} // namespace

TEST(JobGenerators, SingleTaskGenerator)
{
    SingleTaskGenerator gen(fixedSvc(5 * msec), 3);
    Job j0 = gen.makeJob(10);
    Job j1 = gen.makeJob(20);
    EXPECT_NE(j0.id(), j1.id());
    EXPECT_EQ(j0.numTasks(), 1u);
    EXPECT_EQ(j0.task(0).serviceTime, 5 * msec);
    EXPECT_EQ(j0.task(0).type, 3);
}

TEST(JobGenerators, ChainGeneratorShape)
{
    ChainJobGenerator gen({fixedSvc(2 * msec), fixedSvc(8 * msec)},
                          {1, 2}, 4096);
    Job j = gen.makeJob(0);
    EXPECT_EQ(j.numTasks(), 2u);
    EXPECT_EQ(j.numEdges(), 1u);
    EXPECT_EQ(j.rootTasks().size(), 1u);
    EXPECT_EQ(j.task(0).type, 1);
    EXPECT_EQ(j.task(1).type, 2);
    EXPECT_EQ(j.edgeBytes(0, 1), 4096u);
}

TEST(JobGenerators, FanOutInShape)
{
    FanOutInGenerator gen(fixedSvc(1 * msec), fixedSvc(4 * msec),
                          fixedSvc(2 * msec), 8, 1 << 20);
    Job j = gen.makeJob(0);
    EXPECT_EQ(j.numTasks(), 10u); // root + agg + 8 workers
    EXPECT_EQ(j.numEdges(), 16u);
    ASSERT_EQ(j.rootTasks().size(), 1u);
    TaskId root = j.rootTasks()[0];
    EXPECT_EQ(j.children(root).size(), 8u);
    // The aggregator is the only task with 8 parents.
    int aggs = 0;
    for (TaskId t = 0; t < j.numTasks(); ++t)
        aggs += j.parents(t).size() == 8;
    EXPECT_EQ(aggs, 1);
}

TEST(JobGenerators, RandomDagAlwaysValidAndConnected)
{
    RandomDagGenerator gen(fixedSvc(3 * msec), 4, 5, 0.3, 100 << 20,
                           Rng(13, "dag"));
    for (int i = 0; i < 50; ++i) {
        Job j = gen.makeJob(i);
        // validate() ran inside makeJob; check single root layer and
        // that every non-root task has at least one parent.
        EXPECT_EQ(j.rootTasks().size(), 1u);
        for (TaskId t = 0; t < j.numTasks(); ++t) {
            if (t != j.rootTasks()[0]) {
                EXPECT_GE(j.parents(t).size(), 1u);
            }
        }
        EXPECT_EQ(j.topologicalOrder().size(), j.numTasks());
    }
}

TEST(JobGenerators, JobIdsUniqueWithinGenerator)
{
    SingleTaskGenerator gen(fixedSvc(1 * msec));
    std::set<JobId> ids;
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ids.insert(gen.makeJob(i).id()).second);
}
