/**
 * @file
 * Unit tests for the shared governor timer wheel: firing exactness,
 * quantization, O(1) cancellation with generation-stamped handles,
 * re-arming from callbacks, overflow-heap migration and the
 * deschedule-when-empty discipline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/timer_wheel.hh"

using namespace holdcsim;

namespace {

/** Records every firing as (token, tick). */
struct RecordingClient : TimerClient {
    std::vector<std::pair<std::uint64_t, Tick>> fired;

    void
    timerFired(std::uint64_t token, Tick deadline) override
    {
        fired.emplace_back(token, deadline);
    }
};

struct WheelFixture : ::testing::Test {
    Simulator sim;
    RecordingClient client;
};

} // namespace

TEST_F(WheelFixture, FiresExactlyAtUnitGranularity)
{
    TimerWheel wheel(sim, 1);
    wheel.arm(client, 7, 123);
    wheel.arm(client, 8, 456);
    sim.run();
    ASSERT_EQ(client.fired.size(), 2u);
    EXPECT_EQ(client.fired[0], std::make_pair(std::uint64_t{7},
                                              Tick{123}));
    EXPECT_EQ(client.fired[1], std::make_pair(std::uint64_t{8},
                                              Tick{456}));
    EXPECT_EQ(sim.curTick(), 456u);
}

TEST_F(WheelFixture, QuantizesDeadlinesUpToBucketBoundaries)
{
    TimerWheel wheel(sim, 100);
    wheel.arm(client, 1, 1);    // -> 100
    wheel.arm(client, 2, 100);  // already on a boundary
    wheel.arm(client, 3, 101);  // -> 200
    sim.run();
    ASSERT_EQ(client.fired.size(), 3u);
    // Tokens 1 and 2 share the 100-tick boundary, in arm order.
    EXPECT_EQ(client.fired[0], std::make_pair(std::uint64_t{1},
                                              Tick{100}));
    EXPECT_EQ(client.fired[1], std::make_pair(std::uint64_t{2},
                                              Tick{100}));
    EXPECT_EQ(client.fired[2], std::make_pair(std::uint64_t{3},
                                              Tick{200}));
    // One tick event per occupied boundary, not per timer.
    EXPECT_EQ(wheel.stats().tickEvents, 2u);
    EXPECT_EQ(wheel.stats().maxBatch, 2u);
}

TEST_F(WheelFixture, NeverFiresEarly)
{
    TimerWheel wheel(sim, 64);
    sim.runUntil(10); // arm off a non-boundary tick
    wheel.arm(client, 1, 1);
    sim.run();
    ASSERT_EQ(client.fired.size(), 1u);
    EXPECT_GE(client.fired[0].second, 11u);
    EXPECT_EQ(client.fired[0].second % 64, 0u);
}

TEST_F(WheelFixture, CancelPreventsFiring)
{
    TimerWheel wheel(sim, 1);
    auto h = wheel.arm(client, 1, 100);
    EXPECT_TRUE(wheel.pending(h));
    EXPECT_EQ(wheel.deadline(h), 100u);
    wheel.cancel(h);
    EXPECT_FALSE(wheel.pending(h));
    EXPECT_FALSE(h.valid());
    // The wheel descheduled its tick event: nothing left to run.
    EXPECT_FALSE(sim.hasPendingEvents());
    sim.run();
    EXPECT_TRUE(client.fired.empty());
    EXPECT_EQ(wheel.stats().cancelled, 1u);
}

TEST_F(WheelFixture, StaleHandlesAreInert)
{
    TimerWheel wheel(sim, 1);
    auto h = wheel.arm(client, 1, 10);
    sim.run(); // fires; h is now stale
    ASSERT_EQ(client.fired.size(), 1u);
    EXPECT_FALSE(wheel.pending(h));
    wheel.cancel(h); // must be a no-op, not kill a reused entry
    EXPECT_EQ(wheel.stats().cancelled, 0u);

    // The arena entry is recycled; the old handle must not alias it.
    auto h2 = wheel.arm(client, 2, 20);
    wheel.cancel(h); // stale again (same idx, older gen)
    EXPECT_TRUE(wheel.pending(h2));
    sim.run();
    ASSERT_EQ(client.fired.size(), 2u);
    EXPECT_EQ(client.fired[1].first, 2u);

    // Default-constructed handles are invalid and safe to cancel.
    TimerWheel::Handle empty;
    wheel.cancel(empty);
    EXPECT_FALSE(wheel.pending(empty));
}

TEST_F(WheelFixture, CancelDuringBatchSuppressesLaterEntries)
{
    // Two timers on one boundary; the first callback cancels the
    // second before it fires.
    TimerWheel wheel(sim, 1);
    struct Canceller : TimerClient {
        TimerWheel *wheel = nullptr;
        TimerWheel::Handle *victim = nullptr;
        int fired = 0;

        void
        timerFired(std::uint64_t, Tick) override
        {
            ++fired;
            wheel->cancel(*victim);
        }
    };
    Canceller first;
    auto victim = wheel.arm(client, 9, 50);
    first.wheel = &wheel;
    first.victim = &victim;
    // Arm the canceller second but cancel/re-arm to get seq order:
    // arm order is firing order, so re-arm the victim after.
    wheel.cancel(victim);
    wheel.arm(first, 0, 50);
    victim = wheel.arm(client, 9, 50);
    sim.run();
    EXPECT_EQ(first.fired, 1);
    EXPECT_TRUE(client.fired.empty());
}

TEST_F(WheelFixture, ReArmFromCallbackIncludingZeroDelay)
{
    TimerWheel wheel(sim, 1);
    struct Chainer : TimerClient {
        TimerWheel *wheel = nullptr;
        std::vector<Tick> fires;

        void
        timerFired(std::uint64_t token, Tick now) override
        {
            fires.push_back(now);
            if (token == 0 && fires.size() < 3) {
                // Chain: re-arm with zero delay; must fire at this
                // very tick (not a full wheel lap later).
                wheel->arm(*this, 0, 0);
            } else if (token == 1) {
                wheel->arm(*this, 2, 25);
            }
        }
    };
    Chainer c;
    c.wheel = &wheel;
    wheel.arm(c, 0, 10);
    wheel.arm(c, 1, 10);
    sim.run();
    // Token 0 fires at 10 and chains once more at tick 10 (the
    // zero-delay re-arm must fire at this tick, not a lap later);
    // token 1 fires at 10 and schedules token 2 at 35.
    ASSERT_EQ(c.fires.size(), 4u);
    EXPECT_EQ(c.fires[0], 10u);
    EXPECT_EQ(c.fires[1], 10u);
    EXPECT_EQ(c.fires[2], 10u);
    EXPECT_EQ(c.fires[3], 35u);
    EXPECT_EQ(sim.curTick(), 35u);
}

TEST_F(WheelFixture, FarDeadlinesParkInOverflowAndMigrateBack)
{
    TimerWheel wheel(sim, 1, 16); // tiny ring: horizon = 16 ticks
    EXPECT_EQ(wheel.numSlots(), 16u);
    wheel.arm(client, 1, 5);    // in the ring
    wheel.arm(client, 2, 1000); // far beyond the horizon
    wheel.arm(client, 3, 2000); // even farther
    sim.run();
    ASSERT_EQ(client.fired.size(), 3u);
    EXPECT_EQ(client.fired[0], std::make_pair(std::uint64_t{1},
                                              Tick{5}));
    EXPECT_EQ(client.fired[1], std::make_pair(std::uint64_t{2},
                                              Tick{1000}));
    EXPECT_EQ(client.fired[2], std::make_pair(std::uint64_t{3},
                                              Tick{2000}));
    EXPECT_GT(wheel.stats().overflowMigrations, 0u);
}

TEST_F(WheelFixture, CancelWhileParkedInOverflow)
{
    TimerWheel wheel(sim, 1, 16);
    wheel.arm(client, 1, 5);
    auto far = wheel.arm(client, 2, 1000);
    wheel.cancel(far);
    sim.run();
    ASSERT_EQ(client.fired.size(), 1u);
    EXPECT_EQ(client.fired[0].first, 1u);
    EXPECT_EQ(sim.curTick(), 5u); // the parked timer never woke us
    EXPECT_EQ(wheel.live(), 0u);
}

TEST_F(WheelFixture, BatchFiresInArmOrderAcrossClients)
{
    TimerWheel wheel(sim, 256); // everything lands on boundary 256
    RecordingClient other;
    wheel.arm(client, 0, 10);
    wheel.arm(other, 1, 20);
    wheel.arm(client, 2, 30);
    wheel.arm(other, 3, 40);
    sim.run();
    ASSERT_EQ(client.fired.size(), 2u);
    ASSERT_EQ(other.fired.size(), 2u);
    EXPECT_EQ(client.fired[0].first, 0u);
    EXPECT_EQ(other.fired[0].first, 1u);
    EXPECT_EQ(client.fired[1].first, 2u);
    EXPECT_EQ(other.fired[1].first, 3u);
    EXPECT_EQ(wheel.stats().tickEvents, 1u);
    EXPECT_EQ(wheel.stats().maxBatch, 4u);
}

TEST_F(WheelFixture, StatsCountArmCancelFire)
{
    TimerWheel wheel(sim, 1);
    auto a = wheel.arm(client, 0, 10);
    wheel.arm(client, 1, 20);
    wheel.arm(client, 2, 30);
    EXPECT_EQ(wheel.live(), 3u);
    wheel.cancel(a);
    EXPECT_EQ(wheel.live(), 2u);
    sim.run();
    EXPECT_EQ(wheel.live(), 0u);
    const TimerWheel::Stats &s = wheel.stats();
    EXPECT_EQ(s.armed, 3u);
    EXPECT_EQ(s.cancelled, 1u);
    EXPECT_EQ(s.fired, 2u);
    EXPECT_EQ(s.maxLive, 3u);
    // Three dispatches: cancellation is O(1) and leaves the already
    // scheduled tick in place, so boundary 10 fires an empty batch.
    EXPECT_EQ(s.tickEvents, 3u);
}

TEST_F(WheelFixture, EmptyWheelAfterLongIdleGapStaysExact)
{
    // The window must snap forward when the first timer after a long
    // quiet period is armed, or near deadlines would land in the
    // overflow heap (correct but slow) or worse, a stale slot.
    TimerWheel wheel(sim, 1, 16);
    wheel.arm(client, 1, 3);
    sim.run();
    EXPECT_EQ(sim.curTick(), 3u);
    sim.runUntil(1'000'000); // idle gap many laps long
    wheel.arm(client, 2, 4);
    sim.run();
    ASSERT_EQ(client.fired.size(), 2u);
    EXPECT_EQ(client.fired[1], std::make_pair(std::uint64_t{2},
                                              Tick{1'000'004}));
}

TEST_F(WheelFixture, RejectsZeroGranularity)
{
    EXPECT_THROW(TimerWheel(sim, 0), FatalError);
}

TEST_F(WheelFixture, RejectsOverflowingDeadline)
{
    TimerWheel wheel(sim, 1);
    sim.runUntil(100);
    EXPECT_THROW(wheel.arm(client, 0, maxTick - 10), FatalError);
}
