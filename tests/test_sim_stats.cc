/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"
#include "sim/types.hh"

using namespace holdcsim;

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.sample(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator acc;
    acc.sample(5.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    acc.sample(1.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 1.0);
}

// Extrema must be seeded from the first sample, not from an implicit
// zero: a run of all-negative (or all-positive) samples would
// otherwise report a phantom min/max of 0.

TEST(Accumulator, NegativeFirstSampleSeedsMin)
{
    Accumulator acc;
    acc.sample(-3.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
    EXPECT_DOUBLE_EQ(acc.max(), -3.0);
    acc.sample(-1.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
    EXPECT_DOUBLE_EQ(acc.max(), -1.0);
}

TEST(Accumulator, AllNegativeSamplesKeepNegativeMax)
{
    Accumulator acc;
    for (double v : {-5.0, -2.5, -9.0})
        acc.sample(v);
    EXPECT_DOUBLE_EQ(acc.min(), -9.0);
    EXPECT_DOUBLE_EQ(acc.max(), -2.5);
}

TEST(Accumulator, AllPositiveSamplesKeepPositiveMin)
{
    Accumulator acc;
    for (double v : {4.0, 2.0, 8.0})
        acc.sample(v);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 8.0);
}

TEST(Accumulator, EmptyExtremaAreZero)
{
    Accumulator acc;
    EXPECT_DOUBLE_EQ(acc.min(), 0.0);
    EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(Accumulator, ResetReseedsExtrema)
{
    Accumulator acc;
    acc.sample(100.0);
    acc.reset();
    acc.sample(-1.0);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), -1.0);
}

TEST(Percentile, QuantilesOfKnownSequence)
{
    Percentile p;
    for (int i = 1; i <= 100; ++i)
        p.sample(i);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_NEAR(p.p50(), 50.5, 1e-9);
    EXPECT_NEAR(p.p90(), 90.1, 1e-9);
    EXPECT_NEAR(p.p99(), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentile, UnsortedInputIsSorted)
{
    Percentile p;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        p.sample(v);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(p.p50(), 3.0);
}

TEST(Percentile, CdfAt)
{
    Percentile p;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        p.sample(v);
    EXPECT_DOUBLE_EQ(p.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p.cdfAt(2.0), 0.5);
    EXPECT_DOUBLE_EQ(p.cdfAt(2.5), 0.5);
    EXPECT_DOUBLE_EQ(p.cdfAt(4.0), 1.0);
}

TEST(Percentile, SamplingAfterQuantileStillWorks)
{
    Percentile p;
    p.sample(10.0);
    p.sample(20.0);
    EXPECT_DOUBLE_EQ(p.p50(), 15.0);
    p.sample(0.0); // forces a re-sort on next query
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    for (double v : {-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0})
        h.sample(v);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLo(5), 5.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage)
{
    TimeWeighted tw;
    tw.set(2.0, 0);
    tw.set(4.0, 10 * sec);  // 2.0 held for 10 s
    tw.set(0.0, 30 * sec);  // 4.0 held for 20 s
    tw.finish(40 * sec);    // 0.0 held for 10 s
    // (2*10 + 4*20 + 0*10) / 40 = 2.5
    EXPECT_DOUBLE_EQ(tw.average(), 2.5);
    EXPECT_DOUBLE_EQ(tw.integral(), 100.0);
}

TEST(TimeWeighted, SingleValueAverageIsValue)
{
    TimeWeighted tw;
    tw.set(7.0, 5 * sec);
    EXPECT_DOUBLE_EQ(tw.average(), 7.0);
}

TEST(TimeWeighted, RepeatedFinishIsIdempotent)
{
    TimeWeighted tw;
    tw.set(3.0, 0);
    tw.finish(10 * sec);
    tw.finish(10 * sec);
    EXPECT_DOUBLE_EQ(tw.integral(), 30.0);
}

TEST(StateResidency, FractionsAndTransitions)
{
    enum { idle, active, asleep };
    StateResidency sr;
    sr.enter(idle, 0);
    sr.enter(active, 10 * sec);
    sr.enter(idle, 30 * sec);
    sr.enter(asleep, 40 * sec);
    sr.finish(100 * sec);
    EXPECT_EQ(sr.totalTime(), 100 * sec);
    EXPECT_DOUBLE_EQ(sr.fraction(idle), 0.2);
    EXPECT_DOUBLE_EQ(sr.fraction(active), 0.2);
    EXPECT_DOUBLE_EQ(sr.fraction(asleep), 0.6);
    EXPECT_EQ(sr.transitionsInto(idle), 2u);
    EXPECT_EQ(sr.transitionsInto(active), 1u);
    EXPECT_EQ(sr.currentState(), asleep);
}

TEST(StateResidency, UnseenStateIsZero)
{
    StateResidency sr;
    sr.enter(0, 0);
    sr.finish(10);
    EXPECT_EQ(sr.residency(99), 0u);
    EXPECT_DOUBLE_EQ(sr.fraction(99), 0.0);
}

TEST(StateResidency, ReenteringSameStateAccumulates)
{
    StateResidency sr;
    sr.enter(1, 0);
    sr.enter(1, 10);
    sr.finish(30);
    EXPECT_EQ(sr.residency(1), 30u);
    EXPECT_EQ(sr.transitionsInto(1), 2u);
}

TEST(StatGroup, DumpFormatsLines)
{
    StatGroup g("server0");
    g.add("energy_j", 12.5);
    g.add("jobs", std::uint64_t{42});
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "server0.energy_j 12.5\nserver0.jobs 42\n");
}
