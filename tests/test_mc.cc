/**
 * @file
 * Model-checking explorer tests: canonical fault schedules and their
 * hashes, the strategy tiers' determinism and shape, ddmin shrinking
 * to 1-minimal reproducers, and the end-to-end loop -- explore a
 * seeded bug, shrink it, write the repro file, replay it to the same
 * violation -- including journal resume and pods:N byte-identity of
 * explored schedules.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dc/pod_cluster.hh"
#include "mc/explorer.hh"
#include "mc/fault_schedule.hh"
#include "mc/shrink.hh"
#include "mc/strategy.hh"
#include "sim/logging.hh"

using namespace holdcsim;
using namespace holdcsim::mc;

namespace {

ScheduledFault
serverFault(std::size_t idx, Tick down, Tick up)
{
    return {{FaultKind::server, idx, 0}, {down, up}};
}

/** 3 servers, light load, seeded pair-crash bug, fast audits. */
Config
smokeConfig()
{
    return Config::parseString(R"(
[datacenter]
servers = 3
cores = 2
seed = 7
[workload]
arrival = poisson
rate = 200
duration_s = 1
service = exponential
service_mean_ms = 5
job = single
[fault]
enabled = true
mttf_hours = 1000
[mc]
strategy = pairwise
horizon_ms = 800
budget = 200
repair_ms = 100
seed_bug = true
[audit]
enabled = true
period_ms = 10
)");
}

} // namespace

// ------------------------------------------------------------ FaultSchedule

TEST(FaultSchedule, CanonicalTextRoundTripsAndSortIsStable)
{
    FaultSchedule s;
    s.faults = {serverFault(1, 300 * msec, 400 * msec),
                serverFault(0, 100 * msec, 200 * msec)};
    s.canonicalize();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.faults[0].record.downAt, 100 * msec);

    FaultSchedule back =
        FaultSchedule::fromTraceText(s.canonicalText(), "test");
    EXPECT_TRUE(back == s);
    EXPECT_EQ(back.hash(), s.hash());
}

TEST(FaultSchedule, HashIsOrderIndependentAndDiscriminates)
{
    FaultSchedule a, b, c;
    a.faults = {serverFault(0, 100 * msec, 200 * msec),
                serverFault(1, 150 * msec, 250 * msec)};
    b.faults = {serverFault(1, 150 * msec, 250 * msec),
                serverFault(0, 100 * msec, 200 * msec)};
    c.faults = {serverFault(0, 100 * msec, 200 * msec),
                serverFault(1, 150 * msec, 250 * msec + 1)};
    a.canonicalize();
    b.canonicalize();
    c.canonicalize();
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash());
}

TEST(FaultSchedule, ReproFileParsesBackWithHeadersIgnored)
{
    FaultSchedule s;
    s.faults = {serverFault(2, 123456789, 987654321)};
    const std::string path =
        ::testing::TempDir() + "holdcsim_mc_repro.fault";
    {
        std::ofstream out(path);
        writeReproFile(out, s,
                       {"holdcsim mc minimal reproducer",
                        "verdict: violation: test"});
    }
    FaultSchedule back = FaultSchedule::fromTraceFile(path);
    EXPECT_TRUE(back == s);
    std::remove(path.c_str());

    EXPECT_THROW(FaultSchedule::fromTraceFile("/nonexistent/repro"),
                 FatalError);
}

// ---------------------------------------------------------------- strategies

namespace {

StrategySpace
smallSpace()
{
    StrategySpace space;
    space.targets = {{FaultKind::server, 0, 0},
                     {FaultKind::server, 1, 0},
                     {FaultKind::server, 2, 0}};
    space.horizon = 500 * msec;
    space.repair = 100 * msec;
    space.maxFaults = 2;
    space.boundaryTimes = {100 * msec, 250 * msec};
    space.seed = 11;
    return space;
}

void
checkWellFormed(const std::vector<FaultSchedule> &schedules,
                const StrategySpace &space)
{
    std::set<std::uint64_t> hashes;
    for (const FaultSchedule &s : schedules) {
        EXPECT_FALSE(s.empty());
        EXPECT_TRUE(hashes.insert(s.hash()).second)
            << "duplicate schedule survived dedup:\n"
            << s.canonicalText();
        for (const ScheduledFault &f : s.faults) {
            EXPECT_GT(f.record.downAt, 0u);
            EXPECT_LE(f.record.downAt, space.horizon);
            EXPECT_GT(f.record.upAt, f.record.downAt);
        }
    }
}

} // namespace

TEST(Strategy, TiersAreDeterministicDedupedAndInHorizon)
{
    for (const char *tier :
         {"boundary", "pairwise", "exhaustive", "random"}) {
        auto once = generateSchedules(tier, smallSpace());
        auto twice = generateSchedules(tier, smallSpace());
        EXPECT_FALSE(once.empty()) << tier;
        ASSERT_EQ(once.size(), twice.size()) << tier;
        for (std::size_t i = 0; i < once.size(); ++i)
            EXPECT_TRUE(once[i] == twice[i]) << tier;
        checkWellFormed(once, smallSpace());
    }
    EXPECT_THROW(generateSchedules("bogus", smallSpace()), FatalError);
}

TEST(Strategy, TierShapesMatchTheirContracts)
{
    const StrategySpace space = smallSpace();
    for (const FaultSchedule &s :
         generateSchedules("boundary", space))
        EXPECT_EQ(s.size(), 1u);
    // Pairwise: two episodes, and the exactly-coincident pair of
    // every ordered target pair must be present -- that is the tier's
    // reason to exist.
    auto pairwise = generateSchedules("pairwise", space);
    bool coincident01 = false;
    for (const FaultSchedule &s : pairwise) {
        ASSERT_EQ(s.size(), 2u);
        if (s.faults[0].target.index == 0 &&
            s.faults[1].target.index == 1 &&
            s.faults[0].record.downAt == s.faults[1].record.downAt)
            coincident01 = true;
    }
    EXPECT_TRUE(coincident01);
    // Exhaustive at maxFaults=2 covers every singleton of the grid.
    auto exhaustive = generateSchedules("exhaustive", space);
    std::size_t singletons = 0;
    for (const FaultSchedule &s : exhaustive) {
        ASSERT_LE(s.size(), space.maxFaults);
        if (s.size() == 1)
            ++singletons;
    }
    EXPECT_EQ(singletons,
              space.targets.size() * space.boundaryTimes.size());
}

TEST(Strategy, BudgetTruncatesAndSeedVariesTheRandomTier)
{
    StrategySpace space = smallSpace();
    space.budget = 5;
    for (const char *tier :
         {"boundary", "pairwise", "exhaustive", "random"})
        EXPECT_LE(generateSchedules(tier, space).size(), 5u) << tier;

    StrategySpace a = smallSpace(), b = smallSpace();
    b.seed = a.seed + 1;
    auto ra = generateSchedules("random", a);
    auto rb = generateSchedules("random", b);
    bool differ = ra.size() != rb.size();
    for (std::size_t i = 0; !differ && i < ra.size(); ++i)
        differ = !(ra[i] == rb[i]);
    EXPECT_TRUE(differ);
}

TEST(Strategy, BoundaryTimesAreSortedUniqueAndInRange)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    const Tick horizon = 1 * sec;
    auto times = boundaryTimes(cfg, horizon);
    ASSERT_FALSE(times.empty());
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_GT(times[i], 0u);
        EXPECT_LE(times[i], horizon);
        if (i > 0)
            EXPECT_LT(times[i - 1], times[i]);
    }
}

// ------------------------------------------------------------------- shrink

TEST(Shrink, FindsTheMinimalFailingPair)
{
    FaultSchedule failing;
    for (std::size_t i = 0; i < 6; ++i)
        failing.faults.push_back(serverFault(
            i, (100 + 50 * i) * msec, (300 + 50 * i) * msec));
    const ScheduledFault needleA = failing.faults[1];
    const ScheduledFault needleB = failing.faults[4];

    // Fails iff both needles survive: the 1-minimal core is exactly
    // that pair.
    auto fails = [&](const FaultSchedule &cand) {
        bool a = false, b = false;
        for (const ScheduledFault &f : cand.faults) {
            a = a || f == needleA;
            b = b || f == needleB;
        }
        return a && b;
    };
    ASSERT_TRUE(fails(failing));
    ShrinkResult res = shrinkSchedule(failing, fails);
    ASSERT_EQ(res.minimal.size(), 2u);
    EXPECT_TRUE(fails(res.minimal));
    EXPECT_GT(res.oracleRuns, 0u);
    // 1-minimality: dropping either remaining episode passes.
    for (std::size_t i = 0; i < res.minimal.size(); ++i) {
        FaultSchedule sub = res.minimal;
        sub.faults.erase(sub.faults.begin() + i);
        EXPECT_FALSE(fails(sub));
    }
}

TEST(Shrink, SingleEpisodeAndAlwaysFailingEdges)
{
    FaultSchedule one;
    one.faults = {serverFault(0, 100 * msec, 200 * msec)};
    auto any = [](const FaultSchedule &s) { return !s.empty(); };
    EXPECT_EQ(shrinkSchedule(one, any).minimal.size(), 1u);

    FaultSchedule six;
    for (std::size_t i = 0; i < 6; ++i)
        six.faults.push_back(
            serverFault(i, (100 + i) * msec, (200 + i) * msec));
    // Any non-empty subset fails: ddmin must land on one episode.
    EXPECT_EQ(shrinkSchedule(six, any).minimal.size(), 1u);
}

// ------------------------------------------------------- oracle + explorer

TEST(Oracle, CleanScheduleAndEmptySchedulePass)
{
    Config cfg = smokeConfig();
    // Without the armed pair bug nothing should trip.
    cfg.set("mc.seed_bug", "false");
    EXPECT_FALSE(runScheduleOracle(cfg, {}, 7).failed());
    FaultSchedule solo;
    solo.faults = {serverFault(0, 10 * msec, 110 * msec)};
    OracleOutcome oc = runScheduleOracle(cfg, solo, 7);
    EXPECT_FALSE(oc.failed()) << oc.what;
}

TEST(Oracle, SeededPairBugTripsOnlyOnCoincidence)
{
    Config cfg = smokeConfig();
    // Server 1 fails while server 0 is down: the armed leak fires
    // and the always-on audit reports it.
    FaultSchedule pair;
    pair.faults = {serverFault(0, 10 * msec, 110 * msec),
                   serverFault(1, 50 * msec, 150 * msec)};
    OracleOutcome bad = runScheduleOracle(cfg, pair, 7);
    EXPECT_EQ(bad.kind, OracleOutcome::Kind::violation);
    EXPECT_NE(bad.what.find("task_conservation"), std::string::npos);

    // Disjoint episodes: same faults, no coincidence, no bug.
    FaultSchedule disjoint;
    disjoint.faults = {serverFault(0, 10 * msec, 110 * msec),
                       serverFault(1, 200 * msec, 300 * msec)};
    OracleOutcome good = runScheduleOracle(cfg, disjoint, 7);
    EXPECT_FALSE(good.failed()) << good.what;

    // Identical runs produce the identical failure signature -- the
    // contract shrinking relies on.
    OracleOutcome again = runScheduleOracle(cfg, pair, 7);
    EXPECT_EQ(failureSignature(bad), failureSignature(again));
}

TEST(Explorer, FindsSeededBugShrinksItAndReplayReproduces)
{
    Config cfg = smokeConfig();
    const std::string repro =
        ::testing::TempDir() + "holdcsim_mc_e2e.fault";
    ExplorerOptions opts;
    opts.reproPath = repro;

    ExplorerReport report = exploreFaultSchedules(cfg, opts);
    ASSERT_TRUE(report.found);
    EXPECT_GT(report.failures, 0u);
    EXPECT_EQ(report.executed, report.schedules);
    // The acceptance bar: a <= 3-episode minimal reproducer (this
    // bug's core is the coincident pair).
    ASSERT_LE(report.minimal.size(), 3u);
    EXPECT_EQ(report.outcome.kind, OracleOutcome::Kind::violation);
    EXPECT_NE(report.outcome.what.find("task_conservation"),
              std::string::npos);
    EXPECT_NE(report.replayCommand.find("--replay-schedule"),
              std::string::npos);

    // The written repro replays to the same failure, from the file.
    FaultSchedule back = FaultSchedule::fromTraceFile(repro);
    EXPECT_TRUE(back == report.minimal);
    OracleOutcome replayed = runScheduleOracle(cfg, back, 7);
    EXPECT_EQ(failureSignature(replayed),
              failureSignature(report.outcome));
    std::remove(repro.c_str());

    // Deterministic given (seed, strategy, budget): a fresh
    // exploration reproduces the identical minimal schedule.
    ExplorerReport rerun = exploreFaultSchedules(cfg, {});
    ASSERT_TRUE(rerun.found);
    EXPECT_EQ(rerun.minimal.hash(), report.minimal.hash());
    EXPECT_EQ(rerun.failures, report.failures);
}

TEST(Explorer, JournalMakesExplorationResumable)
{
    Config cfg = smokeConfig();
    const std::string journal =
        ::testing::TempDir() + "holdcsim_mc_journal.jsonl";
    std::remove(journal.c_str());

    ExplorerOptions opts;
    opts.journalPath = journal;
    ExplorerReport first = exploreFaultSchedules(cfg, opts);
    ASSERT_TRUE(first.found);
    EXPECT_EQ(first.executed, first.schedules);
    EXPECT_EQ(first.skipped, 0u);

    // Resume: every schedule is already journaled, so no oracle runs
    // re-execute, yet the verdict (and the shrink) still comes out.
    opts.resume = true;
    ExplorerReport resumed = exploreFaultSchedules(cfg, opts);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.skipped, resumed.schedules);
    ASSERT_TRUE(resumed.found);
    EXPECT_EQ(resumed.minimal.hash(), first.minimal.hash());
    std::remove(journal.c_str());
}

// ----------------------------------------------- explored schedules on pods

TEST(Explorer, ExploredSchedulesStayByteIdenticalAcrossPartitions)
{
    // The pdes-equivalence face of the explorer: schedules from the
    // strategy tiers, mapped onto pod outages, must leave the
    // cluster's statistics byte-identical sequential vs pods:N --
    // fault broadcasts ride the partition mailboxes, never remote
    // state directly.
    PodClusterConfig cluster;
    cluster.pods = 4;
    cluster.requestsPerPod = 30;
    cluster.arrivalRate = 600.0;
    cluster.forwardProbability = 0.5;
    cluster.maxForwards = 2;
    cluster.statsHorizon = 1 * sec;
    cluster.seed = 42;

    StrategySpace space;
    space.targets = {{FaultKind::server, 0, 0},
                     {FaultKind::server, 1, 0},
                     {FaultKind::server, 2, 0},
                     {FaultKind::server, 3, 0}};
    space.horizon = 800 * msec;
    space.repair = 300 * msec;
    space.boundaryTimes = {150 * msec, 400 * msec};
    space.budget = 3;
    auto schedules = generateSchedules("pairwise", space);
    ASSERT_FALSE(schedules.empty());

    for (const FaultSchedule &s : schedules) {
        PodClusterConfig cfg = cluster;
        for (const ScheduledFault &f : s.faults)
            cfg.podFaults.push_back(
                {static_cast<unsigned>(f.target.index % cfg.pods),
                 f.record.downAt, f.record.upAt});
        std::string dumps[3];
        unsigned parts[3] = {0, 2, 4};
        for (int i = 0; i < 3; ++i) {
            PodCluster pc(cfg, parts[i]);
            pc.enableBoundaryAudits();
            pc.run();
            std::ostringstream os;
            pc.dumpStats(os);
            dumps[i] = os.str();
        }
        EXPECT_EQ(dumps[0], dumps[1]) << s.canonicalText();
        EXPECT_EQ(dumps[0], dumps[2]) << s.canonicalText();
        // The schedule actually bit: health transitions were
        // broadcast and every pod heard at least one.
        std::istringstream lines(dumps[0]);
        std::string line;
        unsigned health_lines = 0;
        while (std::getline(lines, line)) {
            const auto at = line.find(".health_updates ");
            if (at == std::string::npos)
                continue;
            ++health_lines;
            EXPECT_GT(std::stoul(line.substr(at + 16)), 0u)
                << line << " in " << s.canonicalText();
        }
        EXPECT_EQ(health_lines, cfg.pods) << s.canonicalText();
    }
}
