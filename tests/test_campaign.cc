/**
 * @file
 * Tests for the crash-tolerant campaign layer: journal round-trip
 * (including escaping and torn lines), resume semantics with a
 * byte-identical aggregate CSV, watchdog/event-budget quarantine,
 * retry accounting and interrupt handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/campaign.hh"
#include "exp/journal.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

/** Unique temp path per test (gtest runs tests in one process). */
std::string
tempPath(const std::string &tag)
{
    static int counter = 0;
    return testing::TempDir() + "holdcsim_campaign_" + tag + "_" +
           std::to_string(counter++) + ".jsonl";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Deterministic fake cell; values exercise full double precision. */
MetricRow
fakeCell(std::size_t point, std::uint64_t seed)
{
    Rng rng(seed, "campaign-fake");
    double acc = 0.0;
    for (int i = 0; i < 100; ++i)
        acc += rng.exponential(1.0 + static_cast<double>(point));
    return {{"acc", acc}, {"third", 1.0 / 3.0}};
}

std::string
csvOf(const CampaignResult &res, std::size_t points)
{
    ResultTable table;
    for (std::size_t p = 0; p < points; ++p)
        table.setPointLabel(p, "p" + std::to_string(p));
    ExperimentEngine::tabulate(res.records, table);
    std::ostringstream out;
    table.writeCsv(out);
    return out.str();
}

} // namespace

// ---------------------------------------------------------------- journal

TEST(CampaignJournal, ResultRoundTrip)
{
    std::string path = tempPath("roundtrip");
    std::uint64_t hash = CampaignJournal::hashConfig("cfg-a");

    ReplicaRecord rec;
    rec.point = 3;
    rec.replica = 1;
    rec.seed = 0xdeadbeefcafeULL;
    rec.metrics = {{"acc", 1.0 / 3.0}, {"neg", -2.5e-300}};
    {
        CampaignJournal j(path, hash, false);
        j.appendResult(rec);
        EXPECT_TRUE(j.hasResult(3, 1));
    }
    {
        CampaignJournal j(path, hash, true);
        EXPECT_EQ(j.loadedCount(), 1u);
        ASSERT_TRUE(j.hasResult(3, 1));
        const ReplicaRecord &back = j.result(3, 1);
        EXPECT_EQ(back.seed, rec.seed);
        ASSERT_EQ(back.metrics.size(), 2u);
        EXPECT_EQ(back.metrics[0].first, "acc");
        // Bit-exact: the journal stores shortest-round-trip decimals.
        EXPECT_EQ(back.metrics[0].second, 1.0 / 3.0);
        EXPECT_EQ(back.metrics[1].second, -2.5e-300);
    }
    std::remove(path.c_str());
}

TEST(CampaignJournal, MetricNamesWithJsonMetacharacters)
{
    std::string path = tempPath("escape");
    std::uint64_t hash = CampaignJournal::hashConfig("cfg-esc");
    ReplicaRecord rec;
    rec.point = 0;
    rec.replica = 0;
    rec.seed = 1;
    rec.metrics = {{"quote\"back\\slash\nnewline\ttab", 4.0}};
    {
        CampaignJournal j(path, hash, false);
        j.appendResult(rec);
    }
    CampaignJournal j(path, hash, true);
    ASSERT_TRUE(j.hasResult(0, 0));
    EXPECT_EQ(j.result(0, 0).metrics[0].first,
              "quote\"back\\slash\nnewline\ttab");
    std::remove(path.c_str());
}

TEST(CampaignJournal, TornFinalLineIsSkipped)
{
    std::string path = tempPath("torn");
    std::uint64_t hash = CampaignJournal::hashConfig("cfg-torn");
    ReplicaRecord rec;
    rec.point = 0;
    rec.replica = 0;
    rec.seed = 9;
    rec.metrics = {{"x", 1.0}};
    {
        CampaignJournal j(path, hash, false);
        j.appendResult(rec);
        rec.replica = 1;
        j.appendResult(rec);
    }
    // Simulate a crash mid-append: chop the last line in half.
    std::string text = slurp(path);
    std::size_t cut = text.rfind("metrics");
    ASSERT_NE(cut, std::string::npos);
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << text.substr(0, cut);
    }
    CampaignJournal j(path, hash, true);
    EXPECT_EQ(j.loadedCount(), 1u);
    EXPECT_TRUE(j.hasResult(0, 0));
    EXPECT_FALSE(j.hasResult(0, 1));
    std::remove(path.c_str());
}

TEST(CampaignJournal, ForeignConfigHashIsIgnored)
{
    std::string path = tempPath("foreign");
    ReplicaRecord rec;
    rec.point = 0;
    rec.replica = 0;
    rec.seed = 9;
    rec.metrics = {{"x", 1.0}};
    {
        CampaignJournal j(path, CampaignJournal::hashConfig("old"),
                          false);
        j.appendResult(rec);
    }
    CampaignJournal j(path, CampaignJournal::hashConfig("new"), true);
    EXPECT_EQ(j.loadedCount(), 0u);
    EXPECT_FALSE(j.hasResult(0, 0));
    std::remove(path.c_str());
}

TEST(CampaignJournal, QuarantineRoundTrip)
{
    std::string path = tempPath("quarantine");
    std::uint64_t hash = CampaignJournal::hashConfig("cfg-q");
    QuarantineRecord q;
    q.point = 2;
    q.replica = 0;
    q.seed = 77;
    q.error = "budget \"exceeded\"";
    {
        CampaignJournal j(path, hash, false);
        j.appendQuarantine(q);
    }
    CampaignJournal j(path, hash, true);
    EXPECT_TRUE(j.isQuarantined(2, 0));
    ASSERT_EQ(j.quarantines().size(), 1u);
    EXPECT_EQ(j.quarantines()[0].error, "budget \"exceeded\"");
    std::remove(path.c_str());
}

TEST(CampaignJournal, WithoutResumeTruncatesExistingFile)
{
    std::string path = tempPath("truncate");
    std::uint64_t hash = CampaignJournal::hashConfig("cfg-t");
    ReplicaRecord rec;
    rec.point = 0;
    rec.replica = 0;
    rec.seed = 1;
    rec.metrics = {{"x", 1.0}};
    {
        CampaignJournal j(path, hash, false);
        j.appendResult(rec);
    }
    CampaignJournal j(path, hash, false);
    EXPECT_EQ(j.loadedCount(), 0u);
    EXPECT_FALSE(j.hasResult(0, 0));
    std::remove(path.c_str());
}

// --------------------------------------------------------------- campaigns

TEST(Campaign, ResumeSkipsJournaledCellsAndCsvIsByteIdentical)
{
    std::string path = tempPath("resume");
    const std::size_t points = 3, replicas = 4;

    auto makeOpts = [&](bool resume) {
        CampaignOptions o;
        o.jobs = 2;
        o.replicas = replicas;
        o.baseSeed = 42;
        o.journalPath = path;
        o.resume = resume;
        return o;
    };
    auto fn = [](std::size_t point, std::size_t, std::uint64_t seed,
                 const ReplicaLimits &) { return fakeCell(point, seed); };

    // Reference: one uninterrupted campaign.
    CampaignRunner full(makeOpts(false));
    CampaignResult ref = full.run(points, "resume-test", fn);
    EXPECT_EQ(ref.executed, points * replicas);
    std::string ref_csv = csvOf(ref, points);

    // "Crash" after 5 cells: keep only the first 5 journal lines.
    std::istringstream in(slurp(path));
    std::string line, kept;
    for (int i = 0; i < 5 && std::getline(in, line); ++i)
        kept += line + "\n";
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << kept;
    }

    // Resume re-executes exactly the missing cells...
    CampaignRunner resumed(makeOpts(true));
    CampaignResult res = resumed.run(points, "resume-test", fn);
    EXPECT_EQ(res.skipped, 5u);
    EXPECT_EQ(res.executed, points * replicas - 5);
    ASSERT_EQ(res.records.size(), points * replicas);
    // ...and aggregates to a byte-identical CSV.
    EXPECT_EQ(csvOf(res, points), ref_csv);
    std::remove(path.c_str());
}

TEST(Campaign, ResumeWithCompleteJournalRunsNothing)
{
    std::string path = tempPath("noop");
    CampaignOptions opts;
    opts.replicas = 2;
    opts.baseSeed = 7;
    opts.journalPath = path;
    auto fn = [](std::size_t point, std::size_t, std::uint64_t seed,
                 const ReplicaLimits &) { return fakeCell(point, seed); };

    CampaignRunner first(opts);
    first.run(2, "noop-test", fn);

    opts.resume = true;
    CampaignRunner second(opts);
    CampaignResult res = second.run(
        2, "noop-test",
        [](std::size_t, std::size_t, std::uint64_t,
           const ReplicaLimits &) -> MetricRow {
            throw std::logic_error("must not re-run journaled cells");
        });
    EXPECT_EQ(res.executed, 0u);
    EXPECT_EQ(res.skipped, 4u);
    EXPECT_EQ(res.records.size(), 4u);
    std::remove(path.c_str());
}

TEST(Campaign, EventBudgetQuarantinesAfterRetries)
{
    CampaignOptions opts;
    opts.replicas = 1;
    opts.baseSeed = 3;
    opts.maxEvents = 50;
    opts.retry.maxAttempts = 3;
    opts.retry.backoffBase = 1; // ticks ~ nanoseconds of host sleep
    opts.retry.backoffMax = 2;

    int attempts = 0;
    CampaignRunner runner(opts);
    CampaignResult res = runner.run(
        2, "budget-test",
        [&attempts](std::size_t point, std::size_t, std::uint64_t seed,
                    const ReplicaLimits &limits) {
            if (point == 1) {
                // Pathological point: an endless event chain that
                // trips the simulated-event budget every attempt.
                ++attempts;
                Simulator sim;
                sim.setInterruptFlag(limits.cancel);
                sim.setEventBudget(limits.maxEvents);
                EventFunctionWrapper tick(
                    [&] { sim.scheduleAfter(tick, 1); }, "tick");
                sim.schedule(tick, 0);
                try {
                    sim.run();
                } catch (...) {
                    // The budget throw unwinds while the chain is
                    // still armed; disarm before destruction.
                    if (tick.scheduled())
                        sim.deschedule(tick);
                    throw;
                }
            }
            return fakeCell(point, seed);
        });

    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(res.retries, 2u);
    ASSERT_EQ(res.quarantined.size(), 1u);
    EXPECT_EQ(res.quarantined[0].point, 1u);
    // The healthy point still completed; the campaign did not abort.
    ASSERT_EQ(res.records.size(), 1u);
    EXPECT_EQ(res.records[0].point, 0u);
    EXPECT_FALSE(res.interrupted);
}

TEST(Campaign, QuarantinedCellStaysQuarantinedAcrossResume)
{
    std::string path = tempPath("requarantine");
    CampaignOptions opts;
    opts.replicas = 1;
    opts.baseSeed = 3;
    opts.journalPath = path;
    opts.retry.maxAttempts = 1;
    auto failing = [](std::size_t point, std::size_t, std::uint64_t seed,
                      const ReplicaLimits &) -> MetricRow {
        if (point == 0)
            throw std::runtime_error("always fails");
        return fakeCell(point, seed);
    };

    CampaignRunner first(opts);
    CampaignResult a = first.run(2, "requarantine-test", failing);
    ASSERT_EQ(a.quarantined.size(), 1u);

    opts.resume = true;
    CampaignRunner second(opts);
    CampaignResult b = second.run(
        2, "requarantine-test",
        [](std::size_t, std::size_t, std::uint64_t,
           const ReplicaLimits &) -> MetricRow {
            throw std::logic_error("quarantined cell re-ran");
        });
    EXPECT_EQ(b.executed, 0u);
    ASSERT_EQ(b.quarantined.size(), 1u);
    EXPECT_EQ(b.quarantined[0].point, 0u);
    std::remove(path.c_str());
}

TEST(Campaign, InterruptStopsLaunchingAndIsResumable)
{
    std::string path = tempPath("interrupt");
    const std::size_t points = 6;
    CampaignOptions opts;
    opts.jobs = 1; // sequential: deterministic interrupt landing
    opts.replicas = 1;
    opts.baseSeed = 11;
    opts.journalPath = path;

    auto fn = [](std::size_t point, std::size_t, std::uint64_t seed,
                 const ReplicaLimits &) {
        if (point == 2)
            CampaignRunner::requestInterrupt();
        return fakeCell(point, seed);
    };

    CampaignRunner::clearInterrupt();
    CampaignRunner runner(opts);
    CampaignResult partial = runner.run(points, "interrupt-test", fn);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.records.size(), points);
    CampaignRunner::clearInterrupt();

    // Reference CSV from an uninterrupted run (separate journal).
    std::string ref_path = tempPath("interrupt-ref");
    CampaignOptions ref_opts = opts;
    ref_opts.journalPath = ref_path;
    CampaignRunner ref_runner(ref_opts);
    std::string ref_csv = csvOf(
        ref_runner.run(points, "interrupt-test",
                       [](std::size_t point, std::size_t,
                          std::uint64_t seed, const ReplicaLimits &) {
                           return fakeCell(point, seed);
                       }),
        points);

    opts.resume = true;
    CampaignRunner resumed(opts);
    CampaignResult res = resumed.run(
        points, "interrupt-test",
        [](std::size_t point, std::size_t, std::uint64_t seed,
           const ReplicaLimits &) { return fakeCell(point, seed); });
    EXPECT_FALSE(res.interrupted);
    EXPECT_GT(res.skipped, 0u);
    EXPECT_EQ(res.records.size(), points);
    EXPECT_EQ(csvOf(res, points), ref_csv);
    std::remove(path.c_str());
    std::remove(ref_path.c_str());
}

TEST(Campaign, JournalSeedMismatchIsFatal)
{
    std::string path = tempPath("seed-mismatch");
    CampaignOptions opts;
    opts.replicas = 1;
    opts.baseSeed = 1;
    opts.journalPath = path;
    auto fn = [](std::size_t point, std::size_t, std::uint64_t seed,
                 const ReplicaLimits &) { return fakeCell(point, seed); };
    CampaignRunner first(opts);
    first.run(1, "seed-test", fn);

    // Same campaign text but a different base seed would replay
    // foreign seeds into the grid -- the journal key must prevent it
    // (hash covers the seed, so the record is simply not replayed).
    opts.resume = true;
    opts.baseSeed = 2;
    CampaignRunner second(opts);
    CampaignResult res = second.run(1, "seed-test", fn);
    EXPECT_EQ(res.skipped, 0u);
    EXPECT_EQ(res.executed, 1u);
    std::remove(path.c_str());
}
