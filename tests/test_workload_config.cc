/**
 * @file
 * Tests for INI-driven workload construction and power-profile
 * overrides (the paper's "configurable user script" input path).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dc/datacenter.hh"
#include "dc/workload_config.hh"
#include "sim/logging.hh"

using namespace holdcsim;

namespace {

ConfiguredWorkload
build(const std::string &ini, unsigned servers = 10,
      unsigned cores = 4)
{
    auto cfg = Config::parseString(ini);
    DataCenterConfig dc_cfg;
    dc_cfg.nServers = servers;
    dc_cfg.nCores = cores;
    return makeWorkload(cfg, dc_cfg, 3);
}

} // namespace

TEST(WorkloadConfig, PoissonRateFromUtilization)
{
    auto wl = build(R"(
[workload]
arrival = poisson
utilization = 0.3
service = fixed
service_mean_ms = 5
)");
    ASSERT_TRUE(wl.arrivals);
    auto *poisson = dynamic_cast<PoissonArrival *>(wl.arrivals.get());
    ASSERT_NE(poisson, nullptr);
    // rho * servers * cores / service = 0.3 * 40 / 0.005.
    EXPECT_NEAR(poisson->rate(), 2400.0, 1e-9);
    EXPECT_EQ(wl.until, maxTick);
    EXPECT_EQ(wl.maxJobs, static_cast<std::size_t>(-1));
}

TEST(WorkloadConfig, ExplicitRateOverridesUtilization)
{
    auto wl = build(R"(
[workload]
arrival = poisson
rate = 77
utilization = 0.3
)");
    auto *poisson = dynamic_cast<PoissonArrival *>(wl.arrivals.get());
    ASSERT_NE(poisson, nullptr);
    EXPECT_DOUBLE_EQ(poisson->rate(), 77.0);
}

TEST(WorkloadConfig, ChainJobsDivideRateByTaskCount)
{
    auto wl = build(R"(
[workload]
arrival = poisson
utilization = 0.3
service = fixed
service_mean_ms = 5
job = chain
stages = 2
)");
    auto *poisson = dynamic_cast<PoissonArrival *>(wl.arrivals.get());
    ASSERT_NE(poisson, nullptr);
    EXPECT_NEAR(poisson->rate(), 1200.0, 1e-9); // 2400 / 2 tasks
    Job j = wl.jobs->makeJob(0);
    EXPECT_EQ(j.numTasks(), 2u);
}

TEST(WorkloadConfig, MmppAverageRateMatches)
{
    auto wl = build(R"(
[workload]
arrival = mmpp
rate = 100
burst_ratio = 10
burst_fraction = 0.2
)");
    auto *mmpp = dynamic_cast<Mmpp2Arrival *>(wl.arrivals.get());
    ASSERT_NE(mmpp, nullptr);
    EXPECT_NEAR(mmpp->averageRate(), 100.0, 1e-6);
    EXPECT_DOUBLE_EQ(mmpp->burstinessRatio(), 10.0);
}

TEST(WorkloadConfig, SyntheticTracesNeedDuration)
{
    EXPECT_THROW(build("[workload]\narrival = wikipedia\n"),
                 FatalError);
    auto wl = build(R"(
[workload]
arrival = wikipedia
rate = 50
duration_s = 30
)");
    EXPECT_FALSE(wl.arrivals->exhausted());
    EXPECT_EQ(wl.until, 30 * sec);
}

TEST(WorkloadConfig, TraceFileArrivals)
{
    const char *path = "/tmp/holdcsim_test_trace.txt";
    {
        std::ofstream out(path);
        out << "0.5\n1.0\n1.5\n";
    }
    auto wl = build(std::string(R"(
[workload]
arrival = trace
trace_file = )") + path + "\n");
    auto *trace = dynamic_cast<TraceArrival *>(wl.arrivals.get());
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->remaining(), 3u);
    std::remove(path);
}

TEST(WorkloadConfig, JobShapesAndLimits)
{
    auto wl = build(R"(
[workload]
arrival = poisson
rate = 10
max_jobs = 123
job = fanout
stages = 4
transfer_kb = 16
)");
    EXPECT_EQ(wl.maxJobs, 123u);
    Job j = wl.jobs->makeJob(0);
    EXPECT_EQ(j.numTasks(), 6u); // root + agg + 4 workers
    EXPECT_EQ(j.edgeBytes(0, 2), 16u * 1024u);
}

TEST(WorkloadConfig, RejectsUnknownKinds)
{
    EXPECT_THROW(build("[workload]\narrival = bogus\n"), FatalError);
    EXPECT_THROW(build("[workload]\nservice = bogus\n"), FatalError);
    EXPECT_THROW(build("[workload]\njob = bogus\n"), FatalError);
}

// -------------------------------------------------------- profile overrides

TEST(ProfileConfig, ServerOverridesApplied)
{
    auto cfg = Config::parseString(R"(
[server_power]
core_active_w = 9.0
platform_s0_w = 60
s3_wake_ms = 250
)");
    auto p = serverProfileFromConfig(cfg);
    EXPECT_DOUBLE_EQ(p.coreActive, 9.0);
    EXPECT_DOUBLE_EQ(p.platformS0, 60.0);
    EXPECT_EQ(p.s3WakeLatency, 250 * msec);
    // Unset keys keep defaults.
    ServerPowerProfile defaults;
    EXPECT_DOUBLE_EQ(p.dramActive, defaults.dramActive);
}

TEST(ProfileConfig, ServerOverridesValidated)
{
    auto cfg = Config::parseString(
        "[server_power]\ncore_c6_w = 50\n"); // deeper > active
    EXPECT_THROW(serverProfileFromConfig(cfg), FatalError);
}

TEST(ProfileConfig, SwitchOverridesApplied)
{
    auto cfg = Config::parseString(R"(
[switch_power]
chassis_base_w = 20
port_active_w = 0.5
linecard_wake_ms = 5
)");
    auto p = switchProfileFromConfig(cfg);
    EXPECT_DOUBLE_EQ(p.chassisBase, 20.0);
    EXPECT_DOUBLE_EQ(p.portActive, 0.5);
    EXPECT_EQ(p.linecardWakeLatency, 5 * msec);
}

// ---------------------------------------------------------------- end to end

TEST(ConfigDrivenRun, FullExperimentFromIniText)
{
    auto cfg = Config::parseString(R"(
[datacenter]
servers = 4
cores = 2
seed = 5
[server]
controller = delay_timer
tau_ms = 100
[workload]
arrival = poisson
utilization = 0.2
duration_s = 5
service = exponential
service_mean_ms = 5
)");
    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    dc_cfg.serverProfile = serverProfileFromConfig(cfg);
    DataCenter dc(dc_cfg);
    ConfiguredWorkload wl = makeWorkload(cfg, dc.config(),
                                         dc_cfg.seed);
    JobGenerator &jobs = *wl.jobs;
    dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);
    dc.runUntil(wl.until);
    dc.run();
    EXPECT_GT(dc.scheduler().jobsCompleted(), 800u); // ~320/s * 5 s
    EXPECT_EQ(dc.scheduler().activeJobs(), 0u);
}
