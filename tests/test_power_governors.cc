/**
 * @file
 * Tests for the DVFS governor (per-core P-state management) and the
 * adaptive link rate controller -- the two remaining power features
 * of the paper's Table I.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/alr.hh"
#include "server/dvfs.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct DvfsFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    std::unique_ptr<Server> server;

    void
    makeServer(unsigned cores = 4)
    {
        ServerConfig cfg;
        cfg.nCores = cores;
        server = std::make_unique<Server>(sim, cfg, prof);
    }

    TaskRef
    task(Tick service)
    {
        return TaskRef{0, 0, service, 1.0, 0};
    }
};

} // namespace

TEST_F(DvfsFixture, IdleServerDropsToDeepestPState)
{
    makeServer();
    DvfsGovernor gov(*server, DvfsConfig{});
    gov.start();
    sim.runUntil(100 * msec);
    gov.stop();
    EXPECT_EQ(gov.targetPState(), prof.pstates.size() - 1);
    for (unsigned c = 0; c < server->numCores(); ++c)
        EXPECT_EQ(server->core(c).pstate(), prof.pstates.size() - 1);
    EXPECT_GE(gov.transitions(), server->numCores());
}

TEST_F(DvfsFixture, SaturatedServerRunsAtP0)
{
    makeServer(2);
    DvfsGovernor gov(*server, DvfsConfig{});
    gov.start();
    // Saturate: 6 long tasks on 2 cores.
    for (int i = 0; i < 6; ++i)
        server->submit(task(500 * msec));
    sim.runUntil(100 * msec);
    EXPECT_EQ(gov.targetPState(), 0u);
    gov.stop();
    sim.run();
}

TEST_F(DvfsFixture, ModerateLoadPicksMiddlePState)
{
    makeServer(4);
    DvfsConfig cfg;
    cfg.highWatermark = 1.0;
    cfg.lowWatermark = 0.0;
    DvfsGovernor gov(*server, cfg);
    gov.start();
    // Hold load at 2/4 = 0.5 with two long tasks.
    server->submit(task(1 * sec));
    server->submit(task(1 * sec));
    sim.runUntil(100 * msec);
    std::size_t mid = gov.targetPState();
    EXPECT_GT(mid, 0u);
    EXPECT_LT(mid, prof.pstates.size() - 1);
    gov.stop();
    sim.run();
}

TEST_F(DvfsFixture, BusyCoresRetuneOnlyAtTaskBoundaries)
{
    makeServer(1);
    DvfsConfig cfg;
    cfg.interval = 10 * msec;
    DvfsGovernor gov(*server, cfg);
    gov.start();
    server->submit(task(50 * msec));
    // While the task runs (load 1.0 on 1 core = high) the core
    // stays at its current (P0) state and must not be touched.
    sim.runUntil(30 * msec);
    EXPECT_TRUE(server->core(0).busy());
    EXPECT_EQ(server->core(0).pstate(), 0u);
    gov.stop();
    sim.run();
}

namespace {

/**
 * Run the same sparse 10 ms-task load on an ungoverned and a
 * DVFS-governed server built from @p prof; return their CPU
 * energies (ungoverned, governed).
 */
std::pair<Joules, Joules>
dvfsEnergyComparison(const ServerPowerProfile &prof)
{
    Simulator sim;
    ServerConfig cfg0, cfg1;
    cfg0.id = 0;
    cfg1.id = 1;
    Server plain(sim, cfg0, prof);
    Server governed(sim, cfg1, prof);
    DvfsConfig dcfg;
    dcfg.interval = 5 * msec;
    DvfsGovernor gov(governed, dcfg);
    gov.start();
    // Warm-up so idle cores are already demoted to a deep P-state.
    sim.runUntil(20 * msec);
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 10; ++i) {
        auto ev = std::make_unique<EventFunctionWrapper>(
            [&] {
                plain.submit(TaskRef{0, 0, 10 * msec, 1.0, 0});
                governed.submit(TaskRef{1, 0, 10 * msec, 1.0, 0});
            },
            "arrival");
        sim.schedule(*ev, 20 * msec + i * 100 * msec);
        events.push_back(std::move(ev));
    }
    sim.run();
    gov.stop();
    plain.finishStats();
    governed.finishStats();
    EXPECT_EQ(governed.tasksCompleted(), 10u);
    return {plain.energy().cpu, governed.energy().cpu};
}

} // namespace

TEST_F(DvfsFixture, GovernorSavesCpuEnergyWithLowUncorePower)
{
    // When core power dominates, running slower at lower voltage
    // wins: the classic DVFS saving.
    ServerPowerProfile low_uncore;
    low_uncore.pkgPc0 = 1.5;
    low_uncore.pkgPc2 = 1.0;
    low_uncore.pkgPc6 = 0.2;
    auto [plain, governed] = dvfsEnergyComparison(low_uncore);
    EXPECT_LT(governed, plain);
}

TEST_F(DvfsFixture, RaceToIdleWinsWithHighUncorePower)
{
    // With the default E5-2680 profile the 10 W uncore stays up for
    // as long as any core is active, so stretching task execution
    // costs more than racing to package C6 -- the well-known
    // race-to-idle effect, reproduced rather than assumed away.
    auto [plain, governed] = dvfsEnergyComparison(ServerPowerProfile{});
    EXPECT_GT(governed, plain);
}

TEST_F(DvfsFixture, RejectsBadConfig)
{
    makeServer();
    DvfsConfig cfg;
    cfg.lowWatermark = 0.9;
    cfg.highWatermark = 0.5;
    EXPECT_THROW(DvfsGovernor(*server, cfg), FatalError);
    cfg = DvfsConfig{};
    cfg.interval = 0;
    EXPECT_THROW(DvfsGovernor(*server, cfg), FatalError);
}

// ------------------------------------------------------------------- ALR

namespace {

struct AlrFixture : ::testing::Test {
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    std::unique_ptr<Network> net;

    void
    make()
    {
        net = std::make_unique<Network>(
            sim, Topology::star(4, 1e9, 5 * usec), prof);
    }
};

} // namespace

TEST_F(AlrFixture, QuietPortsDropToReducedRate)
{
    make();
    AlrController alr(sim, *net, AlrConfig{});
    alr.start();
    sim.runUntil(500 * msec);
    alr.stop();
    // No traffic at all: every port of the star switch is reduced.
    EXPECT_EQ(alr.reducedPorts(), 4u);
    EXPECT_GE(alr.transitions(), 4u);
    for (unsigned p = 0; p < 4; ++p) {
        EXPECT_DOUBLE_EQ(net->switchAt(0).port(p).rateFraction(),
                         0.1);
    }
}

TEST_F(AlrFixture, BusyPortReturnsToFullRate)
{
    make();
    AlrConfig cfg;
    cfg.interval = 20 * msec;
    AlrController alr(sim, *net, cfg);
    alr.start();
    // Let everything drop to the reduced rate first.
    sim.runUntil(100 * msec);
    ASSERT_EQ(alr.reducedPorts(), 4u);
    // Saturate server 1's downlink with bulk traffic (the reduced
    // 100 Mb/s rate is overwhelmed -> ALR snaps back to full rate).
    net->sendBulk(0, 1, 5'000'000, [](std::uint64_t) {});
    // Mid-transfer the reduced rate is saturated and ALR snaps the
    // port back to full speed (in a star the hub's port i drives
    // server i's link)...
    sim.runUntil(140 * msec);
    EXPECT_DOUBLE_EQ(net->switchAt(0).port(1).rateFraction(), 1.0);
    // ...and once the burst drains, the port reduces again.
    sim.runUntil(400 * msec);
    EXPECT_DOUBLE_EQ(net->switchAt(0).port(1).rateFraction(), 0.1);
    alr.stop();
    sim.run();
}

TEST_F(AlrFixture, ReducedRatePowerIsLower)
{
    make();
    auto &port = net->switchAt(0).port(0);
    // Keep the port in the active state for a clean comparison.
    port.flowStarted();
    Watts full = port.power();
    port.setRateFraction(0.1);
    EXPECT_LT(port.power(), full);
    EXPECT_GT(port.power(), prof.portLpi);
    port.flowEnded();
}

TEST_F(AlrFixture, RejectsBadConfig)
{
    make();
    AlrConfig cfg;
    cfg.reducedFraction = 0.0;
    EXPECT_THROW(AlrController(sim, *net, cfg), FatalError);
    cfg = AlrConfig{};
    cfg.downWatermark = 0.9;
    cfg.upWatermark = 0.5;
    EXPECT_THROW(AlrController(sim, *net, cfg), FatalError);
}
