/**
 * @file
 * Integration tests for the assembled DataCenter: configuration,
 * workload pumps, metric aggregation, validation noise models and a
 * queueing-theory sanity check on measured utilization.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "dc/datacenter.hh"
#include "dc/validation.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

std::shared_ptr<ServiceModel>
fixedSvc(Tick t)
{
    return std::make_shared<FixedService>(t);
}

} // namespace

TEST(DcConfig, Defaults)
{
    DataCenterConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(DcConfig, FromIniText)
{
    auto ini = Config::parseString(R"(
[datacenter]
servers = 20
cores = 8
seed = 99
[server]
queue_mode = per_core
core_pick = least_loaded
controller = delay_timer
tau_ms = 400
[scheduler]
policy = round_robin
global_queue = true
[network]
fabric = fat_tree
param = 4
link_rate_gbps = 10
link_latency_us = 2
model = fluid
fast_path_kb = 64
)");
    auto cfg = DataCenterConfig::fromConfig(ini);
    EXPECT_EQ(cfg.nServers, 20u);
    EXPECT_EQ(cfg.nCores, 8u);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_EQ(cfg.queueMode, LocalQueueMode::perCore);
    EXPECT_EQ(cfg.corePick, CorePickPolicy::leastLoaded);
    EXPECT_EQ(cfg.controller, DataCenterConfig::Controller::delayTimer);
    EXPECT_EQ(cfg.delayTimerTau, 400 * msec);
    EXPECT_EQ(cfg.dispatch, DataCenterConfig::Dispatch::roundRobin);
    EXPECT_TRUE(cfg.useGlobalQueue);
    EXPECT_EQ(cfg.fabric, DataCenterConfig::Fabric::fatTree);
    EXPECT_DOUBLE_EQ(cfg.linkRate, 1e10);
    EXPECT_EQ(cfg.linkLatency, 2 * usec);
    EXPECT_EQ(cfg.netConfig.netModel.kind, NetModelKind::fluid);
    EXPECT_DOUBLE_EQ(cfg.netConfig.netModel.fastPathBytes, 64 * 1024);
}

TEST(DcConfig, RejectsBadValues)
{
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[server]\nqueue_mode = bogus\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[scheduler]\npolicy = bogus\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[network]\nfabric = bogus\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[network]\nmodel = packet\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[network]\nfast_path_kb = -3\n")),
                 FatalError);
    // network_aware without fabric is inconsistent.
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[scheduler]\npolicy = network_aware\n")),
                 FatalError);
}

TEST(DataCenter, BuildsConfiguredFleet)
{
    DataCenterConfig cfg;
    cfg.nServers = 5;
    cfg.nCores = 2;
    DataCenter dc(cfg);
    EXPECT_EQ(dc.numServers(), 5u);
    EXPECT_EQ(dc.server(0).numCores(), 2u);
    EXPECT_EQ(dc.network(), nullptr);
    EXPECT_EQ(dc.awakeServers(), 5u);
}

TEST(DataCenter, FabricDictatesServerCount)
{
    DataCenterConfig cfg;
    cfg.nServers = 3; // overridden by fat tree k=4
    cfg.fabric = DataCenterConfig::Fabric::fatTree;
    cfg.fabricParam = 4;
    DataCenter dc(cfg);
    EXPECT_EQ(dc.numServers(), 16u);
    ASSERT_NE(dc.network(), nullptr);
    EXPECT_EQ(dc.network()->numSwitches(), 20u);
}

TEST(DataCenter, PoissonPumpRunsJobs)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.nCores = 2;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pump(std::make_unique<PoissonArrival>(
                200.0, dc.makeRng("arrivals")),
            gen, 500);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 500u);
    EXPECT_GT(dc.scheduler().jobLatency().mean(), 0.0);
}

TEST(DataCenter, TracePumpReplaysArrivals)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.nCores = 1;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(1 * msec));
    dc.pumpTrace({10 * msec, 20 * msec, 20 * msec, 50 * msec}, gen);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 4u);
    // Last job arrives at 50 ms onto a C6-parked core: it pays the
    // package + core exit latencies before its 1 ms of service.
    EXPECT_GE(dc.sim().curTick(), 51 * msec);
    EXPECT_LT(dc.sim().curTick(), 53 * msec);
}

TEST(DataCenter, MultiplePumpsCoexist)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    DataCenter dc(cfg);
    SingleTaskGenerator gen_a(fixedSvc(1 * msec));
    SingleTaskGenerator gen_b(fixedSvc(2 * msec));
    dc.pumpTrace({1 * msec, 2 * msec}, gen_a);
    dc.pumpTrace({1 * msec, 3 * msec}, gen_b);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 4u);
}

TEST(DataCenter, MeasuredUtilizationMatchesConfigured)
{
    // M/M/k sanity: at configured rho, the fleet's active-state
    // residency fraction should approach rho.
    const double rho = 0.3;
    const double service_s = 0.005;
    DataCenterConfig cfg;
    cfg.nServers = 10;
    cfg.nCores = 4;
    DataCenter dc(cfg);
    auto svc = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator gen(svc);
    double lambda = PoissonArrival::rateForUtilization(
        rho, cfg.nServers, cfg.nCores, service_s);
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            gen, 20000);
    dc.run();
    dc.finishStats();
    // Aggregate core busy fraction == utilization.
    double busy = 0.0;
    for (std::size_t s = 0; s < dc.numServers(); ++s) {
        for (unsigned c = 0; c < cfg.nCores; ++c) {
            busy += dc.server(s).core(c).residency().fraction(
                static_cast<int>(CoreCState::c0Active));
        }
    }
    busy /= cfg.nServers * cfg.nCores;
    EXPECT_NEAR(busy, rho, 0.03);
}

TEST(DataCenter, EnergyBreakdownAggregates)
{
    DataCenterConfig cfg;
    cfg.nServers = 3;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(10 * msec));
    dc.pumpTrace({0, 0, 0}, gen);
    dc.run();
    dc.runUntil(1 * sec);
    auto fleet = dc.energy();
    EXPECT_EQ(fleet.perServer.size(), 3u);
    EXPECT_GT(fleet.total.cpu, 0.0);
    EXPECT_GT(fleet.total.dram, 0.0);
    EXPECT_GT(fleet.total.platform, 0.0);
    double sum = 0.0;
    for (const auto &e : fleet.perServer)
        sum += e.total();
    EXPECT_NEAR(sum, fleet.total.total(), 1e-9);
}

TEST(DataCenter, ResidencyFractionsSumToOne)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 50 * msec;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 100 * msec, 400 * msec}, gen);
    dc.run();
    dc.runUntil(2 * sec);
    auto frac = dc.residency();
    double sum = 0.0;
    for (double f : frac)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(frac[static_cast<int>(ServerState::sysSleep)], 0.0);
}

TEST(DataCenter, ResetStatsDropsHistory)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0}, gen);
    dc.run();
    dc.resetStats();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 0u);
    auto fleet = dc.energy();
    EXPECT_NEAR(fleet.total.total(), 0.0, 1e-9);
    EXPECT_EQ(dc.server(0).tasksCompleted(), 0u);
}

TEST(DataCenter, NetworkAwareConfigBuilds)
{
    DataCenterConfig cfg;
    cfg.fabric = DataCenterConfig::Fabric::fatTree;
    cfg.fabricParam = 4;
    cfg.dispatch = DataCenterConfig::Dispatch::networkAware;
    cfg.netConfig.switchSleepDelay = 100 * msec;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(1 * msec));
    dc.pumpTrace({0, 1 * msec}, gen);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 2u);
    EXPECT_GT(dc.switchEnergy(), 0.0);
}

// -------------------------------------------------------- invariant auditor

TEST(Auditor, CleanRunPassesEveryAudit)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.audit.enabled = true;
    cfg.audit.period = 50 * msec;
    DataCenter dc(cfg);
    ASSERT_NE(dc.auditor(), nullptr);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 100 * msec, 200 * msec}, gen);
    dc.run();
    dc.runUntil(1 * sec);
    EXPECT_GT(dc.auditor()->auditsPassed(), 0u);
    EXPECT_EQ(dc.auditor()->violations(), 0u);
    // Built-in event_queue + task_conservation + energy_accounting.
    EXPECT_GE(dc.auditor()->checksRun(),
              3 * dc.auditor()->auditsPassed());
}

TEST(Auditor, CatchesSeededTaskConservationBug)
{
    // Negative test: deliberately break task conservation and assert
    // the next audit aborts the replica with a structured error.
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.audit.enabled = true;
    cfg.audit.period = 20 * msec;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 50 * msec, 100 * msec, 200 * msec}, gen);
    dc.scheduler().debugInjectTaskLeak();
    try {
        dc.run();
        dc.runUntil(1 * sec);
        FAIL() << "audit should have aborted the run";
    } catch (const SimAbortError &e) {
        EXPECT_NE(std::string(e.what()).find("task_conservation"),
                  std::string::npos);
    }
    EXPECT_EQ(dc.auditor()->violations(), 1u);
}

TEST(Auditor, NonFatalModeCountsAndContinues)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.audit.enabled = true;
    cfg.audit.period = 20 * msec;
    cfg.audit.fatal = false;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 100 * msec}, gen);
    dc.scheduler().debugInjectTaskLeak();
    EXPECT_NO_THROW({
        dc.run();
        dc.runUntil(500 * msec);
    });
    EXPECT_GT(dc.auditor()->violations(), 1u);
}

TEST(Auditor, DisabledByDefault)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    DataCenter dc(cfg);
    EXPECT_EQ(dc.auditor(), nullptr);
}

TEST(Auditor, AuditStatsAppearInDump)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.audit.enabled = true;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0}, gen);
    dc.run();
    std::ostringstream os;
    dc.dumpStats(os);
    EXPECT_NE(os.str().find("audit.audits_passed"), std::string::npos);
    EXPECT_NE(os.str().find("audit.violations 0"), std::string::npos);
}

// ------------------------------------------------------------ gauge sampler

TEST(GaugeSampler, RecordsPeriodicSeries)
{
    Simulator sim;
    double signal = 1.0;
    GaugeSampler sampler(sim, [&] { return signal; }, 100 * msec);
    sampler.start();
    EventFunctionWrapper bump([&] { signal = 5.0; }, "bump");
    sim.schedule(bump, 450 * msec);
    sim.runUntil(1 * sec);
    sampler.stop();
    ASSERT_EQ(sampler.series().size(), 10u);
    EXPECT_DOUBLE_EQ(sampler.series()[0].value, 1.0);
    EXPECT_DOUBLE_EQ(sampler.series()[4].value, 5.0);
    EXPECT_NEAR(sampler.mean(), (4 * 1.0 + 6 * 5.0) / 10.0, 1e-9);
}

TEST(TraceCompare, Statistics)
{
    std::vector<Sample> a{{0, 1.0}, {1, 2.0}, {2, 3.0}};
    std::vector<Sample> b{{0, 1.5}, {1, 2.5}, {2, 3.5}, {3, 9.0}};
    auto cmp = compareTraces(a, b);
    EXPECT_EQ(cmp.points, 3u);
    EXPECT_DOUBLE_EQ(cmp.meanDiff, -0.5);
    EXPECT_DOUBLE_EQ(cmp.meanAbsDiff, 0.5);
    EXPECT_NEAR(cmp.stddevDiff, 0.0, 1e-9);
}

// ---------------------------------------------------------------- validation

TEST(Validation, NoiseModelTracksTruth)
{
    double truth = 20.0;
    PhysicalPowerModel model([&] { return truth; },
                             serverMeasurementNoise(),
                             Rng(1, "phys"));
    Accumulator acc;
    for (int i = 0; i < 5000; ++i)
        acc.sample(model.sample() - truth);
    // Residual mean small, sigma in the ~1-2 W band the paper saw.
    EXPECT_LT(std::abs(acc.mean()), 0.5);
    EXPECT_GT(acc.stddev(), 0.5);
    EXPECT_LT(acc.stddev(), 3.0);
}

TEST(Validation, SwitchNoiseIsSmall)
{
    double truth = 15.0;
    PhysicalPowerModel model([&] { return truth; },
                             switchMeasurementNoise(),
                             Rng(2, "phys"));
    Accumulator acc;
    for (int i = 0; i < 5000; ++i)
        acc.sample(model.sample() - truth);
    EXPECT_LT(std::abs(acc.mean()), 0.3);
    EXPECT_LT(acc.stddev(), 0.2);
}

TEST(Validation, NeverNegative)
{
    PhysicalPowerModel model([] { return 0.05; },
                             serverMeasurementNoise(),
                             Rng(3, "phys"));
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(model.sample(), 0.0);
}

TEST(Validation, RejectsBadParams)
{
    MeasurementNoiseParams p;
    p.driftPersistence = 1.5;
    EXPECT_THROW(PhysicalPowerModel([] { return 1.0; }, p, Rng(1)),
                 FatalError);
    EXPECT_THROW(PhysicalPowerModel(nullptr,
                                    MeasurementNoiseParams{}, Rng(1)),
                 FatalError);
}
