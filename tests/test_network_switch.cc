/**
 * @file
 * Tests for the switch power hierarchy: port LPI, adaptive link
 * rate, line card sleep, whole-switch sleep and energy accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/switch.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct SwitchFixture : ::testing::Test {
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    std::unique_ptr<Switch> sw;

    void
    makeSwitch(unsigned n_ports = 24, Tick sleep_delay = maxTick)
    {
        SwitchConfig cfg;
        cfg.portRates.assign(n_ports, 1e9);
        cfg.switchSleepDelay = sleep_delay;
        sw = std::make_unique<Switch>(sim, cfg, prof);
    }

    PacketPtr
    packet(Bytes bytes)
    {
        auto p = std::make_shared<Packet>();
        p->bytes = bytes;
        return p;
    }
};

} // namespace

TEST_F(SwitchFixture, PowerAtFullActivity)
{
    makeSwitch(24);
    // All ports start active: chassis + 1 linecard + 24 ports.
    EXPECT_NEAR(sw->power(),
                prof.chassisBase + prof.linecardActive +
                    24 * prof.portActive,
                1e-9);
}

TEST_F(SwitchFixture, PortsDropToLpiWhenIdle)
{
    makeSwitch(24);
    sim.runUntil(1 * msec); // > lpiIdleThreshold
    for (unsigned p = 0; p < 24; ++p)
        EXPECT_EQ(sw->port(p).state(), PortState::lpi);
    EXPECT_NEAR(sw->power(),
                prof.chassisBase + prof.linecardActive +
                    24 * prof.portLpi,
                1e-9);
}

TEST_F(SwitchFixture, LineCardSleepsAfterThreshold)
{
    makeSwitch(24);
    sim.runUntil(prof.lpiIdleThreshold +
                 prof.linecardSleepThreshold + 1 * msec);
    EXPECT_EQ(sw->lineCard(0).state(), LineCardState::sleep);
    EXPECT_NEAR(sw->power(),
                prof.chassisBase + prof.linecardSleep +
                    24 * prof.portLpi,
                1e-9);
}

TEST_F(SwitchFixture, MultipleLineCards)
{
    SwitchConfig cfg;
    cfg.portRates.assign(30, 1e9);
    cfg.portsPerLinecard = 24;
    sw = std::make_unique<Switch>(sim, cfg, prof);
    EXPECT_EQ(sw->numLineCards(), 2u);
    EXPECT_EQ(sw->numPorts(), 30u);
    EXPECT_NEAR(sw->power(),
                prof.chassisBase + 2 * prof.linecardActive +
                    30 * prof.portActive,
                1e-9);
}

TEST_F(SwitchFixture, WholeSwitchSleepsWhenEnabled)
{
    makeSwitch(4, 100 * msec);
    sim.runUntil(1 * sec);
    EXPECT_TRUE(sw->asleep());
    EXPECT_DOUBLE_EQ(sw->power(), prof.switchSleep);
    EXPECT_EQ(sw->sleepTransitions(), 1u);
}

TEST_F(SwitchFixture, SleepDisabledByDefault)
{
    makeSwitch(4);
    sim.runUntil(10 * sec);
    EXPECT_FALSE(sw->asleep());
}

TEST_F(SwitchFixture, WakeForActivityReportsLatency)
{
    makeSwitch(4, 100 * msec);
    sim.runUntil(1 * sec);
    ASSERT_TRUE(sw->asleep());
    Tick delay = sw->wakeForActivity(2);
    EXPECT_EQ(delay, prof.switchWakeLatency +
                         prof.linecardWakeLatency +
                         prof.lpiExitLatency);
    EXPECT_FALSE(sw->asleep());
    EXPECT_EQ(sw->lineCard(0).state(), LineCardState::active);
    EXPECT_EQ(sw->port(2).state(), PortState::active);
    // Already-awake components report zero.
    EXPECT_EQ(sw->wakeForActivity(2), 0u);
}

TEST_F(SwitchFixture, FlowRefcountsKeepPortsAwake)
{
    makeSwitch(4);
    sw->flowStarted(0, 1);
    sim.runUntil(1 * sec);
    EXPECT_EQ(sw->port(0).state(), PortState::active);
    EXPECT_EQ(sw->port(1).state(), PortState::active);
    EXPECT_EQ(sw->port(2).state(), PortState::lpi);
    sw->flowEnded(0, 1);
    sim.runUntil(2 * sec);
    EXPECT_EQ(sw->port(0).state(), PortState::lpi);
    EXPECT_EQ(sw->port(1).state(), PortState::lpi);
}

TEST_F(SwitchFixture, PacketForwardingSerializes)
{
    makeSwitch(4);
    Tick delivered_at = 0;
    sw->port(1).setDeliver([&](const PacketPtr &) {
        delivered_at = sim.curTick();
    });
    ASSERT_TRUE(sw->forwardPacket(packet(1500), 1));
    sim.run();
    // Forwarding delay + 12 us serialization at 1 Gb/s.
    EXPECT_EQ(delivered_at, sw->forwardingDelay() + 12 * usec);
    EXPECT_EQ(sw->packetsForwarded(), 1u);
    EXPECT_EQ(sw->port(1).packetsSent(), 1u);
    EXPECT_EQ(sw->port(1).bytesSent(), 1500u);
}

TEST_F(SwitchFixture, PacketQueueingDelaysLaterPackets)
{
    makeSwitch(4);
    std::vector<Tick> deliveries;
    sw->port(1).setDeliver([&](const PacketPtr &) {
        deliveries.push_back(sim.curTick());
    });
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(sw->forwardPacket(packet(1500), 1));
    sim.run();
    ASSERT_EQ(deliveries.size(), 3u);
    // Head pays forwarding delay; the rest queue behind at 12 us
    // per serialization.
    EXPECT_EQ(deliveries[1] - deliveries[0], 12 * usec);
    EXPECT_EQ(deliveries[2] - deliveries[1], 12 * usec);
}

TEST_F(SwitchFixture, BufferOverflowDrops)
{
    SwitchConfig cfg;
    cfg.portRates.assign(2, 1e9);
    cfg.portBufferCapacity = 2;
    sw = std::make_unique<Switch>(sim, cfg, prof);
    sw->port(0).setDeliver([](const PacketPtr &) {});
    // 1 transmitting + 2 queued fit; the 4th drops.
    EXPECT_TRUE(sw->forwardPacket(packet(1500), 0));
    EXPECT_TRUE(sw->forwardPacket(packet(1500), 0));
    EXPECT_TRUE(sw->forwardPacket(packet(1500), 0));
    EXPECT_FALSE(sw->forwardPacket(packet(1500), 0));
    EXPECT_EQ(sw->packetsDropped(), 1u);
    sim.run();
}

TEST_F(SwitchFixture, AdaptiveLinkRatePower)
{
    makeSwitch(2);
    auto &port = sw->port(0);
    EXPECT_DOUBLE_EQ(port.power(), prof.portActive);
    port.setRateFraction(0.1);
    EXPECT_NEAR(port.power(), prof.portPowerAt(0.1), 1e-12);
    EXPECT_LT(port.power(), prof.portActive);
    EXPECT_GT(port.power(), prof.portLpi);
    // Serialization slows down accordingly.
    EXPECT_DOUBLE_EQ(port.currentRate(), 1e8);
    EXPECT_THROW(port.setRateFraction(0.0), FatalError);
    EXPECT_THROW(port.setRateFraction(1.5), FatalError);
}

TEST_F(SwitchFixture, LpiExitDelaysFirstPacket)
{
    makeSwitch(2);
    sim.runUntil(1 * msec);
    ASSERT_EQ(sw->port(0).state(), PortState::lpi);
    ASSERT_EQ(sw->lineCard(0).state(), LineCardState::active);
    Tick delivered_at = 0;
    sw->port(0).setDeliver([&](const PacketPtr &) {
        delivered_at = sim.curTick();
    });
    Tick t0 = sim.curTick();
    sw->forwardPacket(packet(1500), 0);
    sim.run();
    EXPECT_EQ(delivered_at, t0 + prof.lpiExitLatency +
                                sw->forwardingDelay() + 12 * usec);
}

TEST_F(SwitchFixture, EnergyIntegration)
{
    makeSwitch(24, 500 * msec);
    sim.runUntil(10 * sec);
    sw->finishStats();
    // Mostly asleep after ~0.5 s; energy must be far below
    // always-active but above always-sleep.
    double active_energy =
        (prof.chassisBase + prof.linecardActive +
         24 * prof.portActive) * 10.0;
    double sleep_energy = prof.switchSleep * 10.0;
    EXPECT_LT(sw->energy(), 0.3 * active_energy);
    EXPECT_GT(sw->energy(), sleep_energy);
    // Residency: awake (state 0) + asleep (state 1) covers all time.
    EXPECT_EQ(sw->residency().residency(0) +
                  sw->residency().residency(1),
              10 * sec);
}

TEST_F(SwitchFixture, PortResidencyTracksLpi)
{
    makeSwitch(2);
    sim.runUntil(1 * sec);
    sw->finishStats();
    const auto &res = sw->port(0).residency();
    EXPECT_GT(res.residency(static_cast<int>(PortState::lpi)),
              900 * msec);
}

TEST_F(SwitchFixture, ConfigValidation)
{
    SwitchConfig cfg;
    EXPECT_THROW(Switch(sim, cfg, prof), FatalError); // no ports
    cfg.portRates.assign(2, 1e9);
    cfg.portsPerLinecard = 0;
    EXPECT_THROW(Switch(sim, cfg, prof), FatalError);
    SwitchPowerProfile bad = prof;
    bad.portLpi = bad.portActive + 1;
    cfg.portsPerLinecard = 24;
    EXPECT_THROW(Switch(sim, cfg, bad), FatalError);
}
