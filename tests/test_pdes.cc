/**
 * @file
 * Conservative parallel kernel tests: window protocol mechanics,
 * topology-derived partition plans, cross-partition invariant audits
 * and -- the central contract -- statistics identity between the
 * sequential kernel and every partition count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dc/dc_config.hh"
#include "dc/pod_cluster.hh"
#include "network/partition_map.hh"
#include "network/topology.hh"
#include "sim/logging.hh"
#include "sim/pdes/partition.hh"
#include "sim/pdes/window_scheduler.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

/** Small but genuinely interacting cluster (forwards cross pods). */
PodClusterConfig
smallCluster()
{
    PodClusterConfig cfg;
    cfg.pods = 4;
    cfg.requestsPerPod = 40;
    cfg.arrivalRate = 800.0;
    cfg.forwardProbability = 0.5;
    cfg.maxForwards = 2;
    cfg.statsHorizon = 1 * sec;
    cfg.seed = 42;
    return cfg;
}

std::string
runAndDump(const PodClusterConfig &cfg, unsigned n_partitions,
           bool audits = false)
{
    PodCluster cluster(cfg, n_partitions);
    if (audits)
        cluster.enableBoundaryAudits();
    cluster.run();
    std::ostringstream os;
    cluster.dumpStats(os);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Window protocol mechanics (raw Simulators + Partitions).
// ---------------------------------------------------------------------------

TEST(WindowScheduler, DeliversCrossPartitionMessagesAtTheirTick)
{
    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);
    const Tick lookahead = 100;

    std::vector<Tick> deliveredAt;
    EventFunctionWrapper sender(
        [&] { pa.post(1, lookahead, [&, &sim = b] {
                  deliveredAt.push_back(sim.curTick());
              }); },
        "sender");
    a.schedule(sender, 10);
    // Something for b to do, far later, so the fast-forward path and
    // the delivery interleave.
    EventFunctionWrapper idle([] {}, "idle");
    b.schedule(idle, 500);

    pdes::WindowScheduler ws({&pa, &pb}, lookahead);
    ws.run();

    ASSERT_EQ(deliveredAt.size(), 1u);
    EXPECT_EQ(deliveredAt[0], 110);
    EXPECT_EQ(ws.stats().messages, 1u);
    EXPECT_GE(ws.stats().windows, 1u);
    EXPECT_EQ(ws.stats().lookahead, lookahead);
    EXPECT_EQ(b.curTick(), 500);
}

TEST(WindowScheduler, MessageChainsPingPongAcrossPartitions)
{
    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);
    const Tick lookahead = 50;

    int bounces = 0;
    std::function<void(int)> bounce = [&](int left) {
        if (left == 0)
            return;
        ++bounces;
        // The kick runs on a; each delivery flips sides.
        const bool onA = (left % 2 == 0);
        pdes::Partition &from = onA ? pa : pb;
        from.post(onA ? 1u : 0u, lookahead,
                  [&bounce, left] { bounce(left - 1); });
    };
    EventFunctionWrapper kick([&] { bounce(8); }, "kick");
    a.schedule(kick, 0);

    pdes::WindowScheduler ws({&pa, &pb}, lookahead);
    ws.run();
    EXPECT_EQ(bounces, 8);
    EXPECT_EQ(ws.stats().messages, 8u);
}

TEST(WindowScheduler, LatencyBelowLookaheadAbortsTheRun)
{
    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);

    EventFunctionWrapper sender([&] { pa.post(1, 10, [] {}); },
                                "sender");
    a.schedule(sender, 0);

    pdes::WindowScheduler ws({&pa, &pb}, 100);
    EXPECT_THROW(ws.run(), SimAbortError);
}

TEST(WindowScheduler, WorkerExceptionIsRethrownDeterministically)
{
    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);

    EventFunctionWrapper boom(
        [] { throw std::runtime_error("pod exploded"); }, "boom");
    a.schedule(boom, 5);
    EventFunctionWrapper idle([] {}, "idle");
    b.schedule(idle, 5);

    pdes::WindowScheduler ws({&pa, &pb}, 100);
    EXPECT_THROW(ws.run(), std::runtime_error);
}

TEST(WindowScheduler, InterruptFlagSurfacesAsSimInterrupted)
{
    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);

    std::atomic<bool> stop{true}; // tripped before the run starts
    EventFunctionWrapper idleA([] {}, "idleA");
    a.schedule(idleA, 10);
    EventFunctionWrapper idleB([] {}, "idleB");
    b.schedule(idleB, 10);

    pdes::WindowScheduler ws({&pa, &pb}, 100);
    ws.setInterruptFlag(&stop);
    EXPECT_THROW(ws.run(), SimInterrupted);

    // The interrupt left the calendars populated; drain them so the
    // wrappers are not destroyed while scheduled.
    if (idleA.scheduled())
        a.deschedule(idleA);
    if (idleB.scheduled())
        b.deschedule(idleB);
}

TEST(WindowScheduler, RejectsEmptyAndZeroLookahead)
{
    EXPECT_THROW(pdes::WindowScheduler({}, 100), std::invalid_argument);

    Simulator a, b;
    pdes::Partition pa(0, a), pb(1, b);
    EXPECT_THROW(pdes::WindowScheduler({&pa, &pb}, 0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Topology-derived partition plans.
// ---------------------------------------------------------------------------

TEST(PartitionMap, FatTreeSplitsIntoPodsWithLinkLookahead)
{
    const Tick lat = 5 * usec;
    auto map = PartitionMap::derive(Topology::fatTree(4, 1e9, lat));
    ASSERT_TRUE(map.splittable()) << map.reason();
    EXPECT_EQ(map.pods(), 4u);
    EXPECT_EQ(map.lookahead(), lat);
    // Every pod owns k/2 * k/2 = 4 servers of the 16.
    std::size_t servers = 0;
    for (std::size_t p = 0; p < map.pods(); ++p) {
        EXPECT_EQ(map.serversInPod(p).size(), 4u);
        servers += map.serversInPod(p).size();
    }
    EXPECT_EQ(servers, 16u);
}

TEST(PartitionMap, RefusesSingleTierAndServerOnlyTopologies)
{
    EXPECT_FALSE(
        PartitionMap::derive(Topology::star(8, 1e9, usec)).splittable());
    EXPECT_FALSE(
        PartitionMap::derive(Topology::camCube(2, 2, 2, 1e9, usec))
            .splittable());
}

TEST(PartitionMap, GroupsPodsContiguouslyOntoPartitions)
{
    auto map = PartitionMap::derive(Topology::fatTree(4, 1e9, usec));
    ASSERT_TRUE(map.splittable());
    const auto two = map.partitionOfPod(2);
    ASSERT_EQ(two.size(), 4u);
    EXPECT_EQ(two[0], 0);
    EXPECT_EQ(two[1], 0);
    EXPECT_EQ(two[2], 1);
    EXPECT_EQ(two[3], 1);
    const auto one = map.partitionOfPod(1);
    for (int p : one)
        EXPECT_EQ(p, 0);
}

TEST(DataCenterConfig, PdesKeysParseAndValidate)
{
    Config cfg;
    cfg.set("datacenter.pdes_mode", "pods:4");
    cfg.set("network.fabric", "fat_tree");
    cfg.set("network.param", "4");
    auto dc = DataCenterConfig::fromConfig(cfg);
    EXPECT_TRUE(dc.pdes.enabled());
    EXPECT_EQ(dc.pdes.partitions, 4u);
    EXPECT_NO_THROW(dc.validate());

    Config off;
    off.set("datacenter.pdes_mode", "off");
    EXPECT_FALSE(DataCenterConfig::fromConfig(off).pdes.enabled());

    // pods mode without a fabric cannot derive a partition cut.
    Config bad;
    bad.set("datacenter.pdes_mode", "pods:2");
    EXPECT_THROW(DataCenterConfig::fromConfig(bad).validate(),
                 FatalError);
}

// ---------------------------------------------------------------------------
// The central contract: statistics identity across kernels.
// ---------------------------------------------------------------------------

TEST(PodCluster, SequentialDumpIsNonTrivial)
{
    const std::string dump = runAndDump(smallCluster(), 0);
    EXPECT_NE(dump.find("pod0.jobs_completed"), std::string::npos);
    EXPECT_NE(dump.find("cluster.events_total"), std::string::npos);

    PodCluster cluster(smallCluster(), 0);
    cluster.run();
    std::uint64_t completed = 0, forwards = 0;
    for (unsigned p = 0; p < cluster.pods(); ++p) {
        completed += cluster.podStats(p).jobsCompleted;
        forwards += cluster.podStats(p).forwardedOut;
    }
    // Every injected request completes, plus the forwarded ones.
    EXPECT_EQ(completed, 4 * 40 + forwards);
    EXPECT_GT(forwards, 0u) << "pods never interacted";
    EXPECT_GT(cluster.eventsTotal(), 0u);
}

TEST(PodCluster, OnePartitionMatchesSequentialByteForByte)
{
    EXPECT_EQ(runAndDump(smallCluster(), 0), runAndDump(smallCluster(), 1));
}

TEST(PodCluster, TwoPartitionsMatchSequentialByteForByte)
{
    EXPECT_EQ(runAndDump(smallCluster(), 0), runAndDump(smallCluster(), 2));
}

TEST(PodCluster, FourPartitionsMatchSequentialByteForByte)
{
    EXPECT_EQ(runAndDump(smallCluster(), 0), runAndDump(smallCluster(), 4));
}

TEST(PodCluster, ParallelRunsAreRunToRunDeterministic)
{
    const std::string first = runAndDump(smallCluster(), 4);
    const std::string second = runAndDump(smallCluster(), 4);
    EXPECT_EQ(first, second);
}

TEST(PodCluster, DifferentSeedsProduceDifferentResults)
{
    auto other = smallCluster();
    other.seed = 43;
    EXPECT_NE(runAndDump(smallCluster(), 2), runAndDump(other, 2));
}

TEST(PodCluster, ParallelRunRecordsWindowStats)
{
    PodCluster cluster(smallCluster(), 4);
    cluster.run();
    const auto &st = cluster.pdesStats();
    EXPECT_GT(st.windows, 0u);
    EXPECT_GT(st.messages, 0u);
    EXPECT_GT(st.eventsProcessed, 0u);
    EXPECT_EQ(st.eventsProcessed, cluster.eventsTotal());
    ASSERT_EQ(st.workerBusySeconds.size(), 4u);
    EXPECT_GE(st.blockedFraction(), 0.0);
    EXPECT_LE(st.blockedFraction(), 1.0);
}

TEST(PodCluster, RejectsMorePartitionsThanPods)
{
    EXPECT_THROW(PodCluster(smallCluster(), 5), FatalError);
}

// ---------------------------------------------------------------------------
// Cross-partition invariant audits.
// ---------------------------------------------------------------------------

TEST(PodCluster, BoundaryAuditsPassOnHealthyRuns)
{
    for (unsigned parts : {0u, 2u, 4u}) {
        PodCluster cluster(smallCluster(), parts);
        cluster.enableBoundaryAudits();
        EXPECT_NO_THROW(cluster.run()) << parts << " partitions";
        ASSERT_NE(cluster.auditor(), nullptr);
        EXPECT_GT(cluster.auditor()->auditsPassed(), 0u);
        EXPECT_EQ(cluster.auditor()->violations(), 0u);
    }
}

TEST(PodCluster, AuditsDoNotPerturbStatistics)
{
    auto cfg = smallCluster();
    EXPECT_EQ(runAndDump(cfg, 2, /*audits=*/false),
              runAndDump(cfg, 2, /*audits=*/true));
}

TEST(PodCluster, TaskLeakIsCaughtAtAWindowBoundary)
{
    PodCluster cluster(smallCluster(), 2);
    cluster.enableBoundaryAudits();
    cluster.scheduler(0).debugInjectTaskLeak();
    EXPECT_THROW(cluster.run(), SimAbortError);
    EXPECT_GT(cluster.auditor()->violations(), 0u);
}

TEST(PodCluster, TaskLeakIsCaughtOnSequentialRunsToo)
{
    PodCluster cluster(smallCluster(), 0);
    cluster.enableBoundaryAudits();
    cluster.scheduler(1).debugInjectTaskLeak();
    EXPECT_THROW(cluster.run(), SimAbortError);
}

// ---------------------------------------------------------------------------
// Scripted pod faults: health broadcasts ride the mailboxes.
// ---------------------------------------------------------------------------

namespace {

/** smallCluster plus two overlapping pod outages. */
PodClusterConfig
faultedCluster()
{
    PodClusterConfig cfg = smallCluster();
    // Early enough to overlap the ~50 ms injection burst at rate 800.
    cfg.podFaults = {{1, 5 * msec, 500 * msec},
                     {3, 30 * msec, 600 * msec}};
    return cfg;
}

} // namespace

TEST(PodFaults, OutageRefusesWorkAndAnnouncesBothEdges)
{
    PodCluster cluster(faultedCluster(), 0);
    cluster.run();

    // The downed pods refused injection attempts during their
    // outages and forwards aimed at them were dropped or refused.
    const PodStats &p1 = cluster.podStats(1);
    EXPECT_GT(p1.refusedInjections, 0u);
    std::uint64_t dropped = 0, refused = 0;
    for (unsigned p = 0; p < cluster.pods(); ++p) {
        dropped += cluster.podStats(p).forwardsDropped;
        refused += cluster.podStats(p).forwardsRefused;
    }
    EXPECT_GT(dropped + refused, 0u);
    // Each of the 2 episodes broadcasts a down and an up edge to the
    // 3 peers: every pod saw all 4 transitions minus its own.
    for (unsigned p = 0; p < cluster.pods(); ++p) {
        const unsigned own = (p == 1 || p == 3) ? 2u : 0u;
        EXPECT_EQ(cluster.podStats(p).healthUpdates, 4u - own)
            << "pod " << p;
    }
    // Task conservation still holds globally: every injection
    // attempt is either refused or completes, every sent forward is
    // either refused on arrival or completes. Nothing leaks.
    std::uint64_t completed = 0, forwards = 0, refusedInj = 0;
    for (unsigned p = 0; p < cluster.pods(); ++p) {
        completed += cluster.podStats(p).jobsCompleted;
        forwards += cluster.podStats(p).forwardedOut;
        refusedInj += cluster.podStats(p).refusedInjections;
    }
    EXPECT_EQ(completed, 4 * 40 - refusedInj + forwards - refused);
}

TEST(PodFaults, FaultedRunsStayByteIdenticalAcrossKernels)
{
    const std::string seq = runAndDump(faultedCluster(), 0);
    EXPECT_NE(seq.find("pod1.refused_injections"), std::string::npos);
    EXPECT_EQ(seq, runAndDump(faultedCluster(), 1));
    EXPECT_EQ(seq, runAndDump(faultedCluster(), 2));
    EXPECT_EQ(seq, runAndDump(faultedCluster(), 4));
    // And with the boundary audits armed on every kernel.
    for (unsigned parts : {0u, 2u, 4u})
        EXPECT_EQ(seq, runAndDump(faultedCluster(), parts, true));
}

TEST(PodFaults, ValidatesTheScript)
{
    PodClusterConfig bad = smallCluster();
    bad.podFaults = {{9, 100 * msec, 200 * msec}};
    EXPECT_THROW(PodCluster(bad, 0), FatalError);
    bad.podFaults = {{1, 200 * msec, 200 * msec}};
    EXPECT_THROW(PodCluster(bad, 0), FatalError);
    bad.podFaults = {{1, 100 * msec, 300 * msec},
                     {1, 200 * msec, 400 * msec}};
    EXPECT_THROW(PodCluster(bad, 2), FatalError);
}
