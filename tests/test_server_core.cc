/**
 * @file
 * Unit tests for the core model: C-state machine, DVFS scaling and
 * the idle governor, exercised through a one-core CorePool.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "server/core.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct RecordingHost : CoreHost {
    Simulator *sim = nullptr;
    int accrues = 0;
    int changes = 0;
    Tick doneAt = 0;
    std::vector<TaskRef> done;

    void coreAccrue() override { ++accrues; }
    void coreStateChanged() override { ++changes; }
    void
    coreTaskDone(unsigned, const TaskRef &t) override
    {
        doneAt = sim->curTick();
        done.push_back(t);
    }
};

struct CoreFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    RecordingHost host;
    std::optional<CorePool> pool;
    std::optional<Core> core;

    void
    makeCore(double freq = 0.0)
    {
        if (freq == 0.0)
            freq = prof.pstates[0].freqGhz;
        host.sim = &sim;
        pool.emplace(sim, host, prof, std::vector<double>{freq});
        core.emplace(*pool, 0);
    }

    TaskRef
    task(Tick service, double intensity = 1.0)
    {
        return TaskRef{0, 0, service, intensity, 0};
    }
};

} // namespace

TEST_F(CoreFixture, ExecutesTaskForServiceTime)
{
    makeCore();
    core->startTask(task(5 * msec), 0);
    EXPECT_TRUE(core->busy());
    sim.run();
    EXPECT_FALSE(core->busy());
    // Started from C0-idle: no exit latency.
    EXPECT_EQ(host.doneAt, 5 * msec);
    ASSERT_EQ(host.done.size(), 1u);
    EXPECT_EQ(core->tasksExecuted(), 1u);
}

TEST_F(CoreFixture, IdleGovernorDemotesThroughStates)
{
    makeCore();
    // Demotion thresholds (defaults): C1 immediately, C3 after
    // 100 us in C1, C6 after 500 us more.
    sim.runUntil(1);
    EXPECT_EQ(core->cstate(), CoreCState::c1);
    sim.runUntil(prof.demoteC3After + 1);
    EXPECT_EQ(core->cstate(), CoreCState::c3);
    sim.runUntil(prof.demoteC3After + prof.demoteC6After + 1);
    EXPECT_EQ(core->cstate(), CoreCState::c6);
    // Terminal state: queue drained.
    EXPECT_FALSE(sim.hasPendingEvents());
}

TEST_F(CoreFixture, WakeLatencyDelaysCompletion)
{
    makeCore();
    sim.runUntil(10 * msec); // governor reaches C6
    ASSERT_EQ(core->cstate(), CoreCState::c6);
    Tick started = sim.curTick();
    core->startTask(task(1 * msec), 0);
    sim.run();
    EXPECT_EQ(host.doneAt, started + prof.c6ExitLatency + 1 * msec);
}

TEST_F(CoreFixture, ExtraWakeLatencyApplied)
{
    makeCore();
    Tick extra = 600 * usec;
    core->startTask(task(1 * msec), extra);
    sim.run();
    EXPECT_EQ(host.doneAt, extra + 1 * msec);
}

TEST_F(CoreFixture, PStateSlowsComputeBoundTask)
{
    makeCore();
    core->setPState(2); // 2.0 GHz vs nominal 2.8
    Tick t = core->processingTime(task(10 * msec, 1.0));
    EXPECT_NEAR(static_cast<double>(t), 10.0 * msec * 2.8 / 2.0,
                1.0);
}

TEST_F(CoreFixture, MemoryBoundTaskUnaffectedByFrequency)
{
    makeCore();
    core->setPState(4); // slowest
    Tick t = core->processingTime(task(10 * msec, 0.0));
    EXPECT_EQ(t, 10 * msec);
}

TEST_F(CoreFixture, MixedIntensityInterpolates)
{
    makeCore();
    core->setPState(2); // ratio 2.8/2.0 = 1.4
    Tick t = core->processingTime(task(10 * msec, 0.5));
    EXPECT_NEAR(static_cast<double>(t),
                10.0 * msec * (0.5 * 1.4 + 0.5), 1.0);
}

TEST_F(CoreFixture, HeterogeneousBaseFrequency)
{
    makeCore(1.4); // half the nominal 2.8 GHz
    EXPECT_DOUBLE_EQ(core->frequencyGhz(), 1.4);
    Tick t = core->processingTime(task(10 * msec, 1.0));
    EXPECT_NEAR(static_cast<double>(t), 20.0 * msec, 1.0);
}

TEST_F(CoreFixture, ProcessingTimeSaturatesInsteadOfOverflowing)
{
    makeCore();
    core->setPState(4); // slowest: ratio > 1 amplifies further
    // A service time near the Tick ceiling scaled by the P-state
    // ratio exceeds 2^64 ns; the cast must saturate, not invoke UB.
    Tick t = core->processingTime(task(maxTick - 5, 1.0));
    EXPECT_EQ(t, maxTick);
    // Just below the ceiling stays exact.
    EXPECT_EQ(core->processingTime(task(10 * msec, 0.0)), 10 * msec);
}

TEST_F(CoreFixture, PowerFollowsCState)
{
    makeCore();
    EXPECT_DOUBLE_EQ(core->power(), prof.coreC0Idle);
    core->startTask(task(1 * msec), 0);
    EXPECT_DOUBLE_EQ(core->power(), prof.coreActive);
    sim.run();
    sim.runUntil(sim.curTick() + 10 * msec);
    EXPECT_EQ(core->cstate(), CoreCState::c6);
    EXPECT_DOUBLE_EQ(core->power(), prof.coreC6);
}

TEST_F(CoreFixture, ActivePowerScalesWithPState)
{
    makeCore();
    core->setPState(1);
    core->startTask(task(1 * msec), 0);
    EXPECT_DOUBLE_EQ(core->power(),
                     prof.coreActive * prof.pstates[1].powerScale);
    sim.run();
}

TEST_F(CoreFixture, ForceDeepSleepFromIdle)
{
    makeCore();
    core->forceDeepSleep();
    EXPECT_EQ(core->cstate(), CoreCState::c6);
    // No demotion events left behind.
    EXPECT_FALSE(sim.hasPendingEvents());
}

TEST_F(CoreFixture, ResidencyTracksStates)
{
    makeCore();
    core->startTask(task(10 * msec), 0);
    sim.run();
    sim.runUntil(20 * msec);
    core->finishStats(sim.curTick());
    const auto &res = core->residency();
    EXPECT_EQ(res.residency(static_cast<int>(CoreCState::c0Active)),
              10 * msec);
    EXPECT_GT(res.residency(static_cast<int>(CoreCState::c6)), 0u);
}

TEST_F(CoreFixture, RejectsBadParameters)
{
    makeCore();
    EXPECT_THROW(core->setPState(99), FatalError);
    RecordingHost other;
    other.sim = &sim;
    EXPECT_THROW(CorePool(sim, other, prof, {-1.0}), FatalError);
}

TEST_F(CoreFixture, ProfileValidation)
{
    ServerPowerProfile bad;
    bad.coreC6 = bad.coreActive + 1.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = ServerPowerProfile{};
    bad.pstates.clear();
    EXPECT_THROW(bad.validate(), FatalError);
    bad = ServerPowerProfile{};
    bad.pstates = {{2.0, 1.0}, {2.8, 1.2}}; // wrong order
    EXPECT_THROW(bad.validate(), FatalError);
    EXPECT_NO_THROW(ServerPowerProfile::xeonE5_2680().validate());
    EXPECT_NO_THROW(
        ServerPowerProfile::xeonE5_2680RaplOnly().validate());
}
