/**
 * @file
 * Tests for the parallel experiment engine: thread-pool scheduling,
 * deterministic replica seeding (parallel == sequential), sweep
 * expansion and cross-replica aggregation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/experiment.hh"
#include "exp/sweep.hh"
#include "exp/thread_pool.hh"
#include "sim/config.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 1000);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, NestedSubmitsComplete)
{
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            for (int j = 0; j < 8; ++j)
                pool.submit([&] { ++hits; });
        });
    }
    pool.wait();
    EXPECT_EQ(hits.load(), 16 * 8);
}

TEST(ThreadPool, WorkIsActuallyStolen)
{
    // One long task pins one worker; the rest must be picked up by
    // the other workers even though round-robin parked some of them
    // on the pinned worker's deque.
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    std::atomic<bool> release{false};
    pool.submit([&] {
        while (!release)
            std::this_thread::yield();
    });
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ++hits; });
    while (hits.load() < 64)
        std::this_thread::yield();
    release = true;
    pool.wait();
    EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPool, WorkerExceptionDoesNotTerminateOrDeadlock)
{
    // Regression: an exception escaping a worker task used to unwind
    // through the worker loop (std::terminate) or leave _unfinished
    // forever nonzero (wait() deadlock). It must cost exactly the
    // throwing task and nothing else.
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 200; ++i) {
        if (i % 10 == 3)
            pool.submit([] { throw std::runtime_error("boom"); });
        else
            pool.submit([&] { ++hits; });
    }
    pool.wait();
    EXPECT_EQ(hits.load(), 180);
    EXPECT_EQ(pool.failedTasks(), 20u);
    ASSERT_TRUE(pool.firstException());
    try {
        std::rethrow_exception(pool.firstException());
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(ThreadPool, ExceptionInWaitHelpedTaskIsAbsorbed)
{
    // wait() helps drain the queue on the caller thread; a throwing
    // task picked up there must not escape into the caller either.
    ThreadPool pool(1);
    std::atomic<int> hits{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&, i] {
            if (i == 25)
                throw std::runtime_error("mid-queue");
            ++hits;
        });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(hits.load(), 49);
    EXPECT_EQ(pool.failedTasks(), 1u);
}

TEST(ThreadPool, NonThrowingRunHasNoFailures)
{
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i)
        pool.submit([] {});
    pool.wait();
    EXPECT_EQ(pool.failedTasks(), 0u);
    EXPECT_FALSE(pool.firstException());
}

TEST(ThreadPool, PinnedTasksRunOnNamedWorkerInOrder)
{
    // submitTo() is the named-worker mode: every pinned task must
    // observe currentWorker() == its target index, and pinned tasks
    // of one worker must run in submission order even while the
    // stealable deques churn.
    ThreadPool pool(4);
    std::vector<std::vector<int>> order(4);
    std::atomic<int> misplaced{0};
    for (int round = 0; round < 64; ++round) {
        for (std::size_t w = 0; w < 4; ++w) {
            pool.submitTo(w, [&, w, round] {
                if (ThreadPool::currentWorker() != w)
                    ++misplaced;
                else
                    order[w].push_back(round);
            });
        }
        pool.submit([] {});
    }
    pool.wait();
    EXPECT_EQ(misplaced.load(), 0);
    for (std::size_t w = 0; w < 4; ++w) {
        ASSERT_EQ(order[w].size(), 64u) << "worker " << w;
        for (int round = 0; round < 64; ++round)
            EXPECT_EQ(order[w][round], round) << "worker " << w;
    }
}

TEST(ThreadPool, CurrentWorkerIsNposOutsidePool)
{
    EXPECT_EQ(ThreadPool::currentWorker(), ThreadPool::npos);
    ThreadPool pool(2);
    std::atomic<bool> inside_ok{false};
    // Pinned to worker 0: pinned tasks are never stolen, so this
    // cannot end up running on the waiting thread below (where
    // currentWorker() is rightly npos).
    pool.submitTo(0, [&] {
        inside_ok = ThreadPool::currentWorker() == 0;
    });
    pool.wait();
    EXPECT_TRUE(inside_ok.load());
    // The waiter lending a hand is not a worker either.
    EXPECT_EQ(ThreadPool::currentWorker(), ThreadPool::npos);
}

TEST(ThreadPool, PinnedTaskExceptionIsAbsorbed)
{
    ThreadPool pool(2);
    pool.submitTo(1, [] { throw std::runtime_error("pinned boom"); });
    pool.wait();
    EXPECT_EQ(pool.failedTasks(), 1u);
    ASSERT_TRUE(pool.firstException());
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce)
{
    ThreadPool pool(3);
    std::vector<int> seen(500, 0);
    ThreadPool::parallelFor(pool, seen.size(),
                            [&](std::size_t i) { ++seen[i]; });
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(ThreadPool, ManySimulatorsInParallel)
{
    // The whole point of the pool: independent Simulators are
    // shared-nothing and race-free when run concurrently.
    ThreadPool pool(0);
    std::vector<std::uint64_t> events(32, 0);
    ThreadPool::parallelFor(pool, events.size(), [&](std::size_t i) {
        Simulator sim;
        std::uint64_t count = 0;
        EventFunctionWrapper tick(
            [&] {
                if (++count < 5000)
                    sim.scheduleAfter(tick, 1);
            },
            "tick");
        sim.schedule(tick, 0);
        sim.run();
        events[i] = sim.eventsProcessed();
    });
    for (std::uint64_t e : events)
        EXPECT_EQ(e, 5000u);
}

// --------------------------------------------------------- replica seeding

TEST(ReplicaSeed, ZeroKeepsBaseSeed)
{
    EXPECT_EQ(replicaSeed(42, 0), 42u);
    EXPECT_EQ(replicaSeed(7, 0), 7u);
}

TEST(ReplicaSeed, DistinctAcrossReplicasAndSeeds)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ULL, 42ULL, 0xdeadbeefULL}) {
        for (std::uint64_t r = 0; r < 64; ++r)
            seen.insert(replicaSeed(base, r));
    }
    EXPECT_EQ(seen.size(), 3u * 64u);
}

TEST(ReplicaSeed, StreamsAreUncorrelated)
{
    Rng a(replicaSeed(9, 1), "x"), b(replicaSeed(9, 2), "x");
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}

// -------------------------------------------------------------- the engine

namespace {

/** A small stochastic "simulation": deterministic given its seed. */
MetricRow
fakeRun(std::size_t point, std::size_t, std::uint64_t seed)
{
    Rng rng(seed, "fake");
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i)
        acc += rng.exponential(1.0 + static_cast<double>(point));
    return {{"acc", acc}, {"draws", 1000.0}};
}

} // namespace

TEST(ExperimentEngine, ParallelIdenticalToSequential)
{
    ExperimentEngine seq(1), par(8);
    auto a = seq.run(3, 8, 1234, fakeRun);
    auto b = par.run(3, 8, 1234, fakeRun);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point, b[i].point);
        EXPECT_EQ(a[i].replica, b[i].replica);
        EXPECT_EQ(a[i].seed, b[i].seed);
        ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
        for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
            EXPECT_EQ(a[i].metrics[m].first, b[i].metrics[m].first);
            // Bit-identical, not approximately equal.
            EXPECT_EQ(a[i].metrics[m].second, b[i].metrics[m].second);
        }
    }
}

TEST(ExperimentEngine, RecordsArriveInGridOrder)
{
    ExperimentEngine eng(4);
    auto records = eng.run(2, 3, 1, fakeRun);
    ASSERT_EQ(records.size(), 6u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].point, i / 3);
        EXPECT_EQ(records[i].replica, i % 3);
    }
}

TEST(ExperimentEngine, ThrowingReplicaFailsOnlyThatRecord)
{
    ExperimentEngine eng(4);
    auto records = eng.run(
        2, 3, 5,
        [](std::size_t point, std::size_t replica, std::uint64_t seed) {
            if (point == 1 && replica == 1)
                throw std::runtime_error("replica died");
            return fakeRun(point, replica, seed);
        });
    ASSERT_EQ(records.size(), 6u);
    int failed = 0;
    for (const ReplicaRecord &r : records) {
        if (r.failed) {
            ++failed;
            EXPECT_EQ(r.point, 1u);
            EXPECT_EQ(r.replica, 1u);
            EXPECT_EQ(r.error, "replica died");
            EXPECT_TRUE(r.metrics.empty());
        } else {
            EXPECT_FALSE(r.metrics.empty());
        }
    }
    EXPECT_EQ(failed, 1);

    // Failed replicas contribute no samples to the aggregate.
    ResultTable table;
    ExperimentEngine::tabulate(records, table);
    EXPECT_EQ(table.values(1, "acc").size(), 2u);
    EXPECT_EQ(table.values(0, "acc").size(), 3u);
}

TEST(ExperimentEngine, SameReplicaSameSeedAcrossPoints)
{
    ExperimentEngine eng(2);
    auto records = eng.run(2, 2, 99, fakeRun);
    EXPECT_EQ(records[0].seed, records[2].seed);
    EXPECT_EQ(records[1].seed, records[3].seed);
    EXPECT_NE(records[0].seed, records[1].seed);
}

// -------------------------------------------------------------------- sweep

TEST(SweepSpec, EmptySweepIsOnePoint)
{
    SweepSpec spec;
    EXPECT_EQ(spec.numPoints(), 1u);
    EXPECT_TRUE(spec.point(0).assignments.empty());
    EXPECT_EQ(spec.point(0).label(), "");
}

TEST(SweepSpec, CrossProductExpansion)
{
    SweepSpec spec;
    spec.add("a", {"1", "2", "3"});
    spec.add("b", {"x", "y"});
    ASSERT_EQ(spec.numPoints(), 6u);
    // Last key varies fastest (odometer order).
    EXPECT_EQ(spec.point(0).label(), "a=1 b=x");
    EXPECT_EQ(spec.point(1).label(), "a=1 b=y");
    EXPECT_EQ(spec.point(2).label(), "a=2 b=x");
    EXPECT_EQ(spec.point(5).label(), "a=3 b=y");
}

TEST(SweepSpec, AddFlagParsesKeyAndValues)
{
    SweepSpec spec;
    spec.addFlag("server.tau_ms=250, 500,1000");
    ASSERT_EQ(spec.numPoints(), 3u);
    EXPECT_EQ(spec.point(1).label(), "server.tau_ms=500");
}

TEST(SweepSpec, FromConfigPicksUpSweepSection)
{
    Config cfg = Config::parseString(
        "[sweep]\n"
        "datacenter.servers = 10, 20\n"
        "server.tau_ms = 100, 200\n");
    SweepSpec spec = SweepSpec::fromConfig(cfg);
    EXPECT_EQ(spec.numKeys(), 2u);
    EXPECT_EQ(spec.numPoints(), 4u);
}

TEST(SweepSpec, ApplyOverridesConfig)
{
    Config cfg = Config::parseString(
        "[datacenter]\nservers = 5\n[sweep]\ndatacenter.servers = 10, 20\n");
    SweepSpec spec = SweepSpec::fromConfig(cfg);
    Config point1 = cfg;
    spec.apply(point1, 1);
    EXPECT_EQ(point1.getInt("datacenter.servers"), 20);
    EXPECT_EQ(cfg.getInt("datacenter.servers"), 5);
}

// -------------------------------------------------------------- aggregation

TEST(Aggregate, SummaryMeanStddevCi)
{
    Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.n, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.138, 0.001);
    // t(7, 0.975) = 2.365; ci = t * s / sqrt(n)
    EXPECT_NEAR(s.ci95, 2.365 * s.stddev / std::sqrt(8.0), 1e-9);
}

TEST(Aggregate, SummaryDegenerateCases)
{
    EXPECT_EQ(summarize({}).n, 0u);
    Summary one = summarize({3.5});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 3.5);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    EXPECT_DOUBLE_EQ(one.ci95, 0.0);
}

TEST(Aggregate, ResultTableRoundTrip)
{
    ResultTable t;
    t.setPointLabel(0, "tau=250");
    t.add(0, 0, "latency", 1.5);
    t.add(0, 1, "latency", 2.5);
    t.add(0, 0, "energy", 10.0);
    EXPECT_EQ(t.numPoints(), 1u);
    auto vals = t.values(0, "latency");
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_DOUBLE_EQ(vals[0], 1.5);
    EXPECT_DOUBLE_EQ(vals[1], 2.5);
    Summary s = t.summary(0, "latency");
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    ASSERT_EQ(t.metrics().size(), 2u);
    EXPECT_EQ(t.metrics()[0], "latency");
}

TEST(Aggregate, CsvIsStableAndRoundTrippable)
{
    ResultTable t;
    t.setPointLabel(0, "p");
    t.add(0, 0, "x", 1.0 / 3.0);
    std::ostringstream a, b;
    t.writeCsv(a);
    t.writeCsv(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("point,label,replica,metric,value\n"),
              std::string::npos);
    // Full-precision value: parsing it back yields the exact double.
    std::string line = a.str().substr(a.str().find('\n') + 1);
    std::string value = line.substr(line.rfind(',') + 1);
    EXPECT_EQ(std::stod(value), 1.0 / 3.0);
}

TEST(Aggregate, EngineTabulateFillsTable)
{
    ExperimentEngine eng(4);
    auto records = eng.run(2, 4, 7, fakeRun);
    ResultTable table;
    ExperimentEngine::tabulate(records, table);
    EXPECT_EQ(table.numPoints(), 2u);
    EXPECT_EQ(table.values(0, "acc").size(), 4u);
    EXPECT_EQ(table.summary(1, "draws").mean, 1000.0);
}
