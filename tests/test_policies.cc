/**
 * @file
 * Tests for the case-study policies: provisioning (IV-A), dual
 * delay timers (IV-B), workload-adaptive pools (IV-C) and the
 * network-aware placement policy (IV-D).
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/network.hh"
#include "sched/adaptive_policy.hh"
#include "sched/dispatch_policy.hh"
#include "sched/global_scheduler.hh"
#include "sched/provisioning.hh"
#include "server/power_controller.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct PolicyFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    std::unique_ptr<GlobalScheduler> sched;

    void
    makeFleet(unsigned n, unsigned cores = 1)
    {
        for (unsigned i = 0; i < n; ++i) {
            ServerConfig cfg;
            cfg.id = i;
            cfg.nCores = cores;
            owned.push_back(
                std::make_unique<Server>(sim, cfg, prof));
            servers.push_back(owned.back().get());
        }
        sched = std::make_unique<GlobalScheduler>(
            sim, servers, std::make_unique<LeastLoadedPolicy>());
    }

    Job
    job(JobId id, Tick service)
    {
        Job j(id, sim.curTick());
        j.addTask(TaskSpec{service, 0, 1.0});
        j.validate();
        return j;
    }

    /** Submit @p per_burst jobs every @p gap, @p bursts times. */
    void
    scheduleBursts(unsigned bursts, unsigned per_burst, Tick gap,
                   Tick service, std::vector<
                       std::unique_ptr<EventFunctionWrapper>> &events)
    {
        static JobId next_id = 1000;
        for (unsigned b = 0; b < bursts; ++b) {
            auto ev = std::make_unique<EventFunctionWrapper>(
                [this, per_burst, service] {
                    for (unsigned i = 0; i < per_burst; ++i)
                        sched->submitJob(job(next_id++, service));
                },
                "burst");
            sim.schedule(*ev, b * gap);
            events.push_back(std::move(ev));
        }
    }
};

} // namespace

// ----------------------------------------------------------- provisioning

TEST_F(PolicyFixture, ProvisioningParksIdleServers)
{
    makeFleet(10);
    ProvisioningConfig cfg;
    cfg.minLoadPerServer = 0.5;
    cfg.maxLoadPerServer = 2.0;
    cfg.checkInterval = 10 * msec;
    ProvisioningPolicy prov(*sched, cfg);
    prov.start();
    // No load at all: servers are parked one per check until one
    // remains, and parked servers suspend.
    sim.runUntil(2 * sec);
    EXPECT_EQ(prov.activeServers(), 1u);
    EXPECT_GE(prov.parkEvents(), 9u);
    std::size_t asleep = 0;
    for (Server *s : servers)
        asleep += s->isAsleep();
    EXPECT_EQ(asleep, 9u);
    prov.stop();
}

TEST_F(PolicyFixture, ProvisioningActivatesUnderLoad)
{
    makeFleet(4);
    ProvisioningConfig cfg;
    cfg.minLoadPerServer = 0.5;
    cfg.maxLoadPerServer = 2.0;
    cfg.checkInterval = 10 * msec;
    ProvisioningPolicy prov(*sched, cfg);
    // Park everything but one first.
    prov.start();
    sim.runUntil(1 * sec);
    ASSERT_EQ(prov.activeServers(), 1u);
    // Now slam the single active server with long jobs.
    for (JobId i = 0; i < 12; ++i)
        sched->submitJob(job(i, 300 * msec));
    sim.runUntil(1 * sec + 100 * msec);
    EXPECT_GT(prov.activeServers(), 1u);
    EXPECT_GE(prov.activateEvents(), 1u);
    prov.stop();
    sim.run();
}

TEST_F(PolicyFixture, ProvisioningRejectsBadThresholds)
{
    makeFleet(2);
    ProvisioningConfig cfg;
    cfg.minLoadPerServer = 2.0;
    cfg.maxLoadPerServer = 1.0;
    EXPECT_THROW(ProvisioningPolicy(*sched, cfg), FatalError);
}

// ------------------------------------------------------------ dual timers

TEST_F(PolicyFixture, DualTimerPreferredPoolAbsorbsLoad)
{
    makeFleet(6);
    DualTimerConfig cfg;
    cfg.highPoolSize = 2;
    cfg.tauHigh = 2 * sec;
    cfg.tauLow = 20 * msec;
    configureDualTimers(*sched, cfg);
    // Light load: only the high pool should serve.
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    scheduleBursts(20, 2, 50 * msec, 10 * msec, events);
    // Mid-run: high-pool servers are kept awake by tauHigh > the
    // inter-burst gap while low-pool servers already suspended.
    sim.runUntil(990 * msec);
    EXPECT_FALSE(servers[0]->isAsleep());
    for (std::size_t i = 2; i < 6; ++i)
        EXPECT_TRUE(servers[i]->isAsleep());
    sim.run();
    EXPECT_EQ(servers[0]->tasksCompleted() +
                  servers[1]->tasksCompleted(),
              40u);
    // Low-pool servers never ran anything.
    for (std::size_t i = 2; i < 6; ++i)
        EXPECT_EQ(servers[i]->tasksCompleted(), 0u);
    // After draining, even the high pool suspends (tauHigh elapsed).
    EXPECT_TRUE(servers[0]->isAsleep());
}

TEST_F(PolicyFixture, DualTimerSpillsUnderBurst)
{
    makeFleet(4);
    DualTimerConfig cfg;
    cfg.highPoolSize = 1;
    cfg.tauHigh = 2 * sec;
    cfg.tauLow = 20 * msec;
    configureDualTimers(*sched, cfg);
    // 8 simultaneous jobs >> 1 high-pool core: must spill.
    for (JobId i = 0; i < 8; ++i)
        sched->submitJob(job(i, 50 * msec));
    sim.run();
    std::uint64_t spill = 0;
    for (std::size_t i = 1; i < 4; ++i)
        spill += servers[i]->tasksCompleted();
    EXPECT_GT(spill, 0u);
}

// ---------------------------------------------------------- adaptive pools

TEST_F(PolicyFixture, AdaptivePromotesUnderLoad)
{
    makeFleet(5);
    AdaptiveConfig cfg;
    cfg.wakeupThreshold = 1.5;
    cfg.sleepThreshold = 0.3;
    cfg.deepSleepAfter = 50 * msec;
    cfg.initialActive = 1;
    AdaptivePoolPolicy wasp(*sched, cfg);
    wasp.start();
    EXPECT_EQ(wasp.activePoolSize(), 1u);
    for (JobId i = 0; i < 10; ++i)
        sched->submitJob(job(i, 100 * msec));
    // Load estimator sees 10 pending on 1 server: promotions follow.
    sim.runUntil(200 * msec);
    EXPECT_GT(wasp.activePoolSize(), 1u);
    EXPECT_GE(wasp.promotions(), 1u);
    wasp.stop();
    sim.run();
}

TEST_F(PolicyFixture, AdaptiveDemotesWhenQuiet)
{
    makeFleet(4);
    AdaptiveConfig cfg;
    cfg.wakeupThreshold = 1.5;
    cfg.sleepThreshold = 0.3;
    cfg.deepSleepAfter = 30 * msec;
    cfg.checkInterval = 10 * msec;
    cfg.initialActive = 4;
    AdaptivePoolPolicy wasp(*sched, cfg);
    wasp.start();
    sim.runUntil(2 * sec);
    EXPECT_EQ(wasp.activePoolSize(), 1u);
    EXPECT_GE(wasp.demotions(), 3u);
    // Demoted servers reached system sleep through their timers.
    std::size_t asleep = 0;
    for (Server *s : servers)
        asleep += s->isAsleep();
    EXPECT_EQ(asleep, 3u);
}

TEST_F(PolicyFixture, AdaptiveSleepPoolServersStayShallowWhenActive)
{
    makeFleet(2);
    AdaptiveConfig cfg;
    cfg.initialActive = 1;
    cfg.deepSleepAfter = 10 * msec;
    cfg.checkInterval = 500 * msec; // effectively hands-off
    cfg.sleepThreshold = 0.0;       // never demote below load 0
    AdaptivePoolPolicy wasp(*sched, cfg);
    // Active-pool server 0 idles but must never suspend (tau
    // disabled); sleep-pool server 1 suspends quickly.
    sim.runUntil(300 * msec);
    EXPECT_FALSE(servers[0]->isAsleep());
    EXPECT_TRUE(servers[1]->isAsleep());
    // Server 0 still reaches package C6 (shallow sleep).
    EXPECT_EQ(servers[0]->pkgState(), PkgCState::pc6);
}

TEST_F(PolicyFixture, AdaptiveRejectsBadConfig)
{
    makeFleet(2);
    AdaptiveConfig cfg;
    cfg.wakeupThreshold = 0.2;
    cfg.sleepThreshold = 0.5;
    EXPECT_THROW(AdaptivePoolPolicy(*sched, cfg), FatalError);
    cfg = AdaptiveConfig{};
    cfg.initialActive = 0;
    EXPECT_THROW(AdaptivePoolPolicy(*sched, cfg), FatalError);
}

// ----------------------------------------------------------- network aware

TEST_F(PolicyFixture, NetworkAwarePrefersAwakePaths)
{
    // Fat tree k=4; switches sleep aggressively.
    Simulator lsim;
    auto net = std::make_unique<Network>(
        lsim, Topology::fatTree(4, 1e9, 5 * usec),
        SwitchPowerProfile::cisco2960_24(),
        NetworkConfig{.switchSleepDelay = 50 * msec});
    std::vector<std::unique_ptr<Server>> lowned;
    std::vector<Server *> lservers;
    for (unsigned i = 0; i < 16; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 1;
        lowned.push_back(std::make_unique<Server>(lsim, cfg, prof));
        lservers.push_back(lowned.back().get());
    }
    // Let all switches fall asleep.
    lsim.runUntil(1 * sec);
    ASSERT_EQ(net->sleepingSwitches(), 20u);

    // Server 0 busy; a dependent task must engage a new server: the
    // cheapest is one under the same edge switch (server 1).
    NetworkAwarePolicy policy(*net);
    for (Server *s : lservers)
        s->submit(TaskRef{99, 0, 10 * sec, 1.0, 0}); // all busy
    TaskRef t{1, 1, 1 * msec, 1.0, 0};
    DispatchContext ctx{t, std::size_t{0}};
    std::vector<std::size_t> cands;
    for (std::size_t i = 1; i < 16; ++i)
        cands.push_back(i);
    std::size_t pick = policy.pick(cands, lservers, ctx);
    EXPECT_EQ(pick, 1u); // same edge switch as server 0
    lsim.run();
}

TEST_F(PolicyFixture, NetworkAwarePrefersFreeCapacityFirst)
{
    Simulator lsim;
    auto net = std::make_unique<Network>(
        lsim, Topology::star(4, 1e9, 5 * usec),
        SwitchPowerProfile::cisco2960_24());
    std::vector<std::unique_ptr<Server>> lowned;
    std::vector<Server *> lservers;
    for (unsigned i = 0; i < 4; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 1;
        lowned.push_back(std::make_unique<Server>(lsim, cfg, prof));
        lservers.push_back(lowned.back().get());
    }
    lservers[0]->submit(TaskRef{0, 0, 10 * msec, 1.0, 0});
    NetworkAwarePolicy policy(*net);
    TaskRef t{1, 0, 1 * msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    // Server 0 is busy; an idle awake server wins regardless of
    // network cost.
    std::size_t pick = policy.pick({0, 1, 2, 3}, lservers, ctx);
    EXPECT_NE(pick, 0u);
    lsim.run();
}
