/**
 * @file
 * Parameterized property tests: invariants that must hold across
 * whole families of configurations (policies, topologies,
 * utilizations, workload generators), checked with TEST_P sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dc/datacenter.hh"
#include "dc/pod_cluster.hh"
#include "fault/fault_manager.hh"
#include "fault/fault_model.hh"
#include "network/fluid/net_model.hh"
#include "network/network.hh"
#include "network/routing.hh"
#include "sched/dispatch_policy.hh"
#include "sim/logging.hh"
#include "sim/timer_wheel.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

// ---------------------------------------------------------------------------
// Property: measured core utilization tracks the configured rho for
// every (rho, service distribution) combination.
// ---------------------------------------------------------------------------

using UtilParam = std::tuple<double, std::string>;

class UtilizationProperty
    : public ::testing::TestWithParam<UtilParam>
{};

TEST_P(UtilizationProperty, CoreBusyFractionMatchesRho)
{
    auto [rho, service_kind] = GetParam();
    DataCenterConfig cfg;
    cfg.nServers = 8;
    cfg.nCores = 4;
    cfg.seed = 77;
    DataCenter dc(cfg);

    std::shared_ptr<ServiceModel> svc;
    if (service_kind == "fixed") {
        svc = std::make_shared<FixedService>(5 * msec);
    } else if (service_kind == "exponential") {
        svc = std::make_shared<ExponentialService>(
            5 * msec, dc.makeRng("svc"));
    } else {
        svc = std::make_shared<UniformService>(2 * msec, 8 * msec,
                                               dc.makeRng("svc"));
    }
    SingleTaskGenerator gen(svc);
    double lambda = PoissonArrival::rateForUtilization(
        rho, cfg.nServers, cfg.nCores, svc->meanSeconds());
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            gen, 15000);
    dc.run();
    dc.finishStats();

    double busy = 0.0;
    for (std::size_t s = 0; s < dc.numServers(); ++s) {
        for (unsigned c = 0; c < cfg.nCores; ++c) {
            busy += dc.server(s).core(c).residency().fraction(
                static_cast<int>(CoreCState::c0Active));
        }
    }
    busy /= cfg.nServers * cfg.nCores;
    EXPECT_NEAR(busy, rho, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    RhoSweep, UtilizationProperty,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7),
                       ::testing::Values("fixed", "exponential",
                                         "uniform")),
    [](const ::testing::TestParamInfo<UtilParam> &info) {
        return std::get<1>(info.param) + "_rho" +
               std::to_string(static_cast<int>(
                   std::get<0>(info.param) * 10));
    });

// ---------------------------------------------------------------------------
// Property: structural invariants hold on every supported topology.
// ---------------------------------------------------------------------------

class TopologyProperty
    : public ::testing::TestWithParam<std::string>
{
  protected:
    Topology
    build() const
    {
        const std::string &kind = GetParam();
        if (kind == "star")
            return Topology::star(12, 1e9, 5 * usec);
        if (kind == "fat_tree")
            return Topology::fatTree(4, 1e9, 5 * usec);
        if (kind == "fbfly")
            return Topology::flattenedButterfly(3, 2, 1e9, 5 * usec);
        if (kind == "bcube")
            return Topology::bcube(3, 1, 1e9, 5 * usec);
        return Topology::camCube(3, 3, 2, 1e9, 5 * usec);
    }
};

TEST_P(TopologyProperty, ConnectedAndIndexable)
{
    Topology t = build();
    EXPECT_NO_THROW(t.validateConnected());
    EXPECT_EQ(t.numServers() + t.numSwitches(), t.numNodes());
    for (std::size_t i = 0; i < t.numServers(); ++i)
        EXPECT_EQ(t.serverIndex(t.serverNode(i)), i);
    for (std::size_t i = 0; i < t.numSwitches(); ++i)
        EXPECT_EQ(t.switchIndex(t.switchNode(i)), i);
}

TEST_P(TopologyProperty, RoutesAreValidWalks)
{
    Topology t = build();
    StaticRouting r(t);
    const std::size_t n = t.numServers();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = (i * 7 + 3) % n;
        auto route = r.route(t.serverNode(i), t.serverNode(j), i);
        // Consecutive links connect; endpoints match.
        ASSERT_EQ(route.nodes.size(), route.links.size() + 1);
        EXPECT_EQ(route.nodes.front(), t.serverNode(i));
        EXPECT_EQ(route.nodes.back(), t.serverNode(j));
        for (std::size_t h = 0; h < route.links.size(); ++h) {
            EXPECT_EQ(t.otherEnd(route.links[h], route.nodes[h]),
                      route.nodes[h + 1]);
        }
    }
}

TEST_P(TopologyProperty, HopCountsAreSymmetric)
{
    Topology t = build();
    StaticRouting r(t);
    const std::size_t n = std::min<std::size_t>(t.numServers(), 8);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(r.hopCount(t.serverNode(i), t.serverNode(j)),
                      r.hopCount(t.serverNode(j), t.serverNode(i)));
        }
    }
}

TEST_P(TopologyProperty, AllFlowsComplete)
{
    Simulator sim;
    Network net(sim, build(), SwitchPowerProfile::cisco2960_24());
    const std::size_t n = net.topology().numServers();
    int done = 0;
    int started = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = (i * 5 + 1) % n;
        if (j == i)
            continue; // self-transfers are trivially instant
        net.startFlow(i, j, 500'000, [&] { ++done; });
        ++started;
    }
    sim.run();
    EXPECT_EQ(done, started);
    EXPECT_EQ(net.flows().activeFlows(), 0u);
    // No flow can beat the line-rate lower bound (4 ms for 500 kB
    // at 1 Gb/s).
    EXPECT_GE(net.flows().flowLatency().quantile(0.0), 0.004);
}

TEST_P(TopologyProperty, AllPacketsDeliveredUnderLightLoad)
{
    Simulator sim;
    Network net(sim, build(), SwitchPowerProfile::cisco2960_24());
    const std::size_t n = net.topology().numServers();
    int got = 0;
    for (std::size_t i = 0; i < n; ++i)
        net.sendPacket(i, (i + n / 2) % n, 1500,
                       [&](const Packet &) { ++got; });
    sim.run();
    EXPECT_EQ(got, static_cast<int>(n));
    EXPECT_EQ(net.packetsDropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyProperty,
                         ::testing::Values("star", "fat_tree", "fbfly",
                                           "bcube", "camcube"),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------------
// Property: accounting invariants hold under every dispatch policy
// and controller combination.
// ---------------------------------------------------------------------------

using PolicyParam =
    std::tuple<DataCenterConfig::Dispatch, DataCenterConfig::Controller>;

class AccountingProperty
    : public ::testing::TestWithParam<PolicyParam>
{};

TEST_P(AccountingProperty, JobsEnergyAndResidencyConsistent)
{
    auto [dispatch, controller] = GetParam();
    DataCenterConfig cfg;
    cfg.nServers = 6;
    cfg.nCores = 2;
    cfg.dispatch = dispatch;
    cfg.controller = controller;
    cfg.delayTimerTau = 50 * msec;
    cfg.seed = 99;
    DataCenter dc(cfg);

    auto svc = std::make_shared<ExponentialService>(
        8 * msec, dc.makeRng("svc"));
    SingleTaskGenerator gen(svc);
    dc.pump(std::make_unique<PoissonArrival>(150.0,
                                             dc.makeRng("arrivals")),
            gen, 3000);
    dc.run();
    Tick end = dc.sim().curTick();
    dc.finishStats();

    // Every job completed exactly once.
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 3000u);
    EXPECT_EQ(dc.scheduler().jobsSubmitted(), 3000u);
    EXPECT_EQ(dc.scheduler().activeJobs(), 0u);
    std::uint64_t server_tasks = 0;
    for (std::size_t s = 0; s < dc.numServers(); ++s)
        server_tasks += dc.server(s).tasksCompleted();
    EXPECT_EQ(server_tasks, 3000u);

    // Residency partitions simulated time on every server.
    for (std::size_t s = 0; s < dc.numServers(); ++s) {
        const auto &res = dc.server(s).residency();
        Tick total = 0;
        for (int st = 0; st < 5; ++st)
            total += res.residency(st);
        EXPECT_EQ(total, end);
    }

    // Energy is bounded by min/max conceivable fleet power.
    auto fleet = dc.energy();
    double seconds = toSeconds(end);
    const auto &p = cfg.serverProfile;
    double max_power =
        cfg.nServers * (cfg.nCores * p.coreActive + p.pkgPc0 +
                        p.dramActive + p.platformS0);
    double min_power = cfg.nServers * p.platformS5;
    EXPECT_LE(fleet.total.total(), max_power * seconds * 1.001);
    EXPECT_GE(fleet.total.total(), min_power * seconds);

    // Latency can never beat the bare service time of some task.
    EXPECT_GT(dc.scheduler().jobLatency().quantile(0.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, AccountingProperty,
    ::testing::Combine(
        ::testing::Values(DataCenterConfig::Dispatch::roundRobin,
                          DataCenterConfig::Dispatch::leastLoaded,
                          DataCenterConfig::Dispatch::random),
        ::testing::Values(DataCenterConfig::Controller::alwaysOn,
                          DataCenterConfig::Controller::delayTimer)),
    [](const ::testing::TestParamInfo<PolicyParam> &info) {
        std::string d;
        switch (std::get<0>(info.param)) {
          case DataCenterConfig::Dispatch::roundRobin:
            d = "rr";
            break;
          case DataCenterConfig::Dispatch::leastLoaded:
            d = "ll";
            break;
          default:
            d = "rand";
            break;
        }
        return d + (std::get<1>(info.param) ==
                            DataCenterConfig::Controller::alwaysOn
                        ? "_alwaysOn"
                        : "_delayTimer");
    });

// ---------------------------------------------------------------------------
// Property: determinism -- identical seeds give identical results,
// different seeds differ, for every workload generator shape.
// ---------------------------------------------------------------------------

class DeterminismProperty
    : public ::testing::TestWithParam<std::string>
{
  protected:
    double
    runOnce(std::uint64_t seed)
    {
        DataCenterConfig cfg;
        cfg.nServers = 4;
        cfg.nCores = 2;
        cfg.seed = seed;
        DataCenter dc(cfg);
        auto svc = std::make_shared<ExponentialService>(
            5 * msec, dc.makeRng("svc"));
        std::unique_ptr<JobGenerator> gen;
        const std::string &kind = GetParam();
        if (kind == "single") {
            gen = std::make_unique<SingleTaskGenerator>(svc);
        } else if (kind == "chain") {
            gen = std::make_unique<ChainJobGenerator>(
                std::vector<std::shared_ptr<ServiceModel>>{svc, svc},
                std::vector<int>{0, 0}, Bytes{0});
        } else if (kind == "fanout") {
            gen = std::make_unique<FanOutInGenerator>(svc, svc, svc,
                                                      4, Bytes{0});
        } else {
            gen = std::make_unique<RandomDagGenerator>(
                svc, 3, 3, 0.4, Bytes{0}, dc.makeRng("dag"));
        }
        dc.pump(std::make_unique<PoissonArrival>(
                    100.0, dc.makeRng("arrivals")),
                *gen, 800);
        dc.run();
        return dc.scheduler().jobLatency().mean();
    }
};

TEST_P(DeterminismProperty, SameSeedSameResult)
{
    EXPECT_DOUBLE_EQ(runOnce(5), runOnce(5));
}

TEST_P(DeterminismProperty, DifferentSeedDifferentResult)
{
    EXPECT_NE(runOnce(5), runOnce(6));
}

INSTANTIATE_TEST_SUITE_P(AllShapes, DeterminismProperty,
                         ::testing::Values("single", "chain", "fanout",
                                           "dag"),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------------
// Property: synthetic traces are sorted, in-range and deterministic
// for every generator and a sweep of rates.
// ---------------------------------------------------------------------------

using TraceParam = std::tuple<std::string, double>;

class TraceProperty : public ::testing::TestWithParam<TraceParam>
{
  protected:
    std::vector<Tick>
    make(std::uint64_t seed) const
    {
        auto [kind, rate] = GetParam();
        if (kind == "wikipedia") {
            WikipediaTraceParams p;
            p.duration = 120 * sec;
            p.baseRate = rate;
            return makeWikipediaTrace(p, Rng(seed, "t"));
        }
        NlanrTraceParams p;
        p.duration = 120 * sec;
        p.baseRate = rate;
        return makeNlanrTrace(p, Rng(seed, "t"));
    }
};

TEST_P(TraceProperty, SortedInRangeDeterministic)
{
    auto a = make(3);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    ASSERT_FALSE(a.empty());
    EXPECT_LT(a.back(), 120 * sec);
    EXPECT_EQ(a, make(3));
    EXPECT_NE(a, make(4));
    // Long-run rate in the right ballpark.
    EXPECT_NEAR(traceRate(a), std::get<1>(GetParam()),
                std::get<1>(GetParam()) * 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    GeneratorsAndRates, TraceProperty,
    ::testing::Combine(::testing::Values("wikipedia", "nlanr"),
                       ::testing::Values(20.0, 100.0, 400.0)),
    [](const ::testing::TestParamInfo<TraceParam> &info) {
        return std::get<0>(info.param) + "_r" +
               std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: max-min fair-share invariants hold for EVERY network
// model backend (exact global solver and fluid partial-invalidation
// solver) on every topology -- symmetry, monotonicity and capacity
// conservation are properties of the allocation, not of the solver
// that computed it.
// ---------------------------------------------------------------------------

using FairShareParam = std::tuple<NetModelKind, std::string>;

class FairShareProperty
    : public ::testing::TestWithParam<FairShareParam>
{
  protected:
    static constexpr Bytes hugeBytes = 1'000'000'000'000;

    Topology
    build() const
    {
        const std::string &kind = std::get<1>(GetParam());
        if (kind == "star")
            return Topology::star(10, 1e9, 5 * usec);
        if (kind == "fat_tree")
            return Topology::fatTree(4, 1e9, 5 * usec);
        return Topology::bcube(3, 1, 1e9, 5 * usec);
    }

    std::unique_ptr<NetModel>
    backend(Simulator &sim, const Topology &topo) const
    {
        NetModelConfig cfg;
        cfg.kind = std::get<0>(GetParam());
        return makeNetModel(sim, topo, cfg);
    }

    /** Dense directed-link index of each hop of @p r. */
    static std::vector<std::size_t>
    directedPath(const Topology &topo, const Route &r)
    {
        std::vector<std::size_t> path;
        for (std::size_t i = 0; i < r.links.size(); ++i) {
            bool forward = topo.link(r.links[i]).a == r.nodes[i];
            path.push_back(r.links[i] * 2 + (forward ? 1 : 0));
        }
        return path;
    }
};

/** Flows over the very same path must receive the very same rate. */
TEST_P(FairShareProperty, IdenticalRoutesGetIdenticalRates)
{
    Topology topo = build();
    StaticRouting routing(topo);
    Route r = routing.route(topo.serverNode(0), topo.serverNode(1));
    // A cross flow makes the shares non-trivial.
    Route cross =
        routing.route(topo.serverNode(2), topo.serverNode(1));

    Simulator sim;
    auto model = backend(sim, topo);
    FlowId a = model->startFlow(r, hugeBytes, [] {});
    FlowId b = model->startFlow(r, hugeBytes, [] {});
    FlowId c = model->startFlow(r, hugeBytes, [] {});
    model->startFlow(cross, hugeBytes, [] {});
    sim.runUntil(0);

    double ra = model->flowRate(a);
    ASSERT_GT(ra, 0.0);
    EXPECT_NEAR(model->flowRate(b), ra, 1e-9 * ra);
    EXPECT_NEAR(model->flowRate(c), ra, 1e-9 * ra);
}

/**
 * Monotonicity. Max-min fairness is NOT per-flow monotone (a new
 * flow can move a competitor's bottleneck and thereby *raise* a
 * third flow's share), but the minimum allocated rate is: the first
 * water-filling round's share is min over links of capacity/users,
 * and adding a flow only ever increases user counts. So as flows
 * arrive, the slowest flow never speeds up.
 */
TEST_P(FairShareProperty, MinimumRateNeverRisesAsFlowsArrive)
{
    Topology topo = build();
    StaticRouting routing(topo);
    const std::size_t n = topo.numServers();

    Simulator sim;
    auto model = backend(sim, topo);
    std::vector<FlowId> ids;
    double prev_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < 2 * n; ++i) {
        Route r = routing.route(topo.serverNode(i % n),
                                topo.serverNode((i * 5 + 1) % n), i);
        if (r.empty())
            continue;
        ids.push_back(model->startFlow(r, hugeBytes, [] {}));
        sim.runUntil(sim.curTick());
        double min_rate = std::numeric_limits<double>::infinity();
        for (FlowId id : ids)
            min_rate = std::min(min_rate, model->flowRate(id));
        SCOPED_TRACE("after adding flow " + std::to_string(i));
        EXPECT_LE(min_rate, prev_min * (1.0 + 1e-6));
        prev_min = min_rate;
    }
}

/**
 * The allocation is a pure function of the active flow set: adding
 * a flow and then aborting it restores every survivor's rate.
 */
TEST_P(FairShareProperty, AbortRestoresPreviousAllocation)
{
    Topology topo = build();
    StaticRouting routing(topo);
    const std::size_t n = topo.numServers();

    Simulator sim;
    auto model = backend(sim, topo);
    std::vector<FlowId> ids;
    for (std::size_t i = 0; i < n; ++i) {
        Route r = routing.route(topo.serverNode(i),
                                topo.serverNode((i * 3 + 1) % n), i);
        if (!r.empty())
            ids.push_back(model->startFlow(r, hugeBytes, [] {}));
    }
    sim.runUntil(0);
    std::vector<double> before;
    for (FlowId id : ids)
        before.push_back(model->flowRate(id));

    Route extra =
        routing.route(topo.serverNode(0), topo.serverNode(n / 2), 99);
    FlowId intruder = model->startFlow(extra, hugeBytes, [] {});
    sim.runUntil(sim.curTick());
    ASSERT_TRUE(model->abortFlow(intruder));

    for (std::size_t f = 0; f < ids.size(); ++f) {
        SCOPED_TRACE("flow " + std::to_string(f));
        EXPECT_NEAR(model->flowRate(ids[f]), before[f],
                    1e-9 * before[f]);
    }
}

/** No directed link is ever allocated beyond its capacity. */
TEST_P(FairShareProperty, CapacityIsConserved)
{
    Topology topo = build();
    StaticRouting routing(topo);
    const std::size_t n = topo.numServers();

    Simulator sim;
    auto model = backend(sim, topo);
    std::vector<FlowId> ids;
    std::vector<std::vector<std::size_t>> paths;
    for (std::size_t i = 0; i < 3 * n; ++i) {
        Route r = routing.route(topo.serverNode(i % n),
                                topo.serverNode((i * 7 + 3) % n), i);
        if (r.empty())
            continue;
        paths.push_back(directedPath(topo, r));
        ids.push_back(model->startFlow(r, hugeBytes, [] {}));
    }
    sim.runUntil(0);

    std::vector<double> load(2 * topo.numLinks(), 0.0);
    for (std::size_t f = 0; f < ids.size(); ++f) {
        double rate = model->flowRate(ids[f]);
        EXPECT_GT(rate, 0.0) << "flow " << f << " starved";
        for (std::size_t dl : paths[f])
            load[dl] += rate;
    }
    for (LinkId l = 0; l < topo.numLinks(); ++l) {
        double cap = topo.link(l).rate;
        EXPECT_LE(load[2 * l], cap * (1.0 + 1e-6)) << "link " << l;
        EXPECT_LE(load[2 * l + 1], cap * (1.0 + 1e-6))
            << "link " << l;
        // linkUtilization agrees with the per-flow accounting.
        double busier = std::max(load[2 * l], load[2 * l + 1]);
        EXPECT_NEAR(model->linkUtilization(l), busier / cap, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndTopologies, FairShareProperty,
    ::testing::Combine(::testing::Values(NetModelKind::exact,
                                         NetModelKind::fluid),
                       ::testing::Values("star", "fat_tree", "bcube")),
    [](const ::testing::TestParamInfo<FairShareParam> &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// Property: RetryPolicy backoff is monotone non-decreasing in the
// attempt number, saturates exactly at backoffMax (no overflow at
// large shifts), and jitter never escapes its declared band.
// ---------------------------------------------------------------------------

using BackoffParam = std::tuple<Tick, Tick>; // (base, max)

class RetryBackoffProperty
    : public ::testing::TestWithParam<BackoffParam>
{};

TEST_P(RetryBackoffProperty, MonotoneAndCapped)
{
    auto [base, max] = GetParam();
    RetryPolicy p;
    p.backoffBase = base;
    p.backoffMax = max;
    p.jitterFrac = 0.0;

    Tick prev = 0;
    bool saturated = false;
    for (unsigned attempt = 1; attempt <= 96; ++attempt) {
        Tick b = p.backoff(attempt);
        EXPECT_GE(b, prev) << "attempt " << attempt;
        EXPECT_GE(b, 1u) << "attempt " << attempt;
        EXPECT_LE(b, std::max<Tick>(max, 1)) << "attempt " << attempt;
        if (saturated)
            EXPECT_EQ(b, prev) << "left the cap at attempt " << attempt;
        if (b >= max)
            saturated = true;
        prev = b;
    }
    // Doubling from any base reaches the cap within 96 attempts, and
    // huge shifts (>= 63) must saturate rather than overflow.
    EXPECT_TRUE(saturated);
    EXPECT_EQ(p.backoff(1000000), std::max<Tick>(max, 1));
    // Attempt 0 is treated as the first failure.
    EXPECT_EQ(p.backoff(0), p.backoff(1));
}

TEST_P(RetryBackoffProperty, JitterStaysInBand)
{
    auto [base, max] = GetParam();
    RetryPolicy p;
    p.backoffBase = base;
    p.backoffMax = max;
    p.jitterFrac = 0.1;

    Rng rng(1234);
    for (unsigned attempt = 1; attempt <= 40; ++attempt) {
        Tick mid = p.backoff(attempt); // null rng: midpoint
        for (int draw = 0; draw < 8; ++draw) {
            Tick b = p.backoff(attempt, &rng);
            EXPECT_GE(b, 1u);
            auto lo = static_cast<double>(mid) * (1.0 - p.jitterFrac);
            auto hi = static_cast<double>(mid) * (1.0 + p.jitterFrac);
            EXPECT_GE(static_cast<double>(b), std::floor(lo));
            EXPECT_LE(static_cast<double>(b), hi);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Bases, RetryBackoffProperty,
    ::testing::Values(BackoffParam{10 * msec, 10 * sec},
                      BackoffParam{1, 10 * sec},
                      BackoffParam{1 * usec, 500 * usec},
                      // base already above the cap: clamp from try 1
                      BackoffParam{20 * sec, 10 * sec}),
    [](const ::testing::TestParamInfo<BackoffParam> &info) {
        return "base" + std::to_string(std::get<0>(info.param)) +
               "_max" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property: a task that can never finish within its timeout burns
// exactly its attempt budget (maxRetries retries after the first
// try), then the job is abandoned -- no infinite retry loop.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Property: the shared governor timer wheel at granularity 1 is
// statistics-identical to per-entity governor events -- every core
// C-state residency, port/line-card/switch residency, energy figure
// and job latency agrees exactly, on both event-queue backends. The
// wheel only coalesces *when* timer callbacks run onto shared tick
// events; with 1-tick buckets it must never move them.
// ---------------------------------------------------------------------------

class TimerModeProperty
    : public ::testing::TestWithParam<EventQueue::Backend>
{
  protected:
    /** Every statistic the two timer disciplines must agree on.
     *  Residencies are exact Ticks; energies come from the same
     *  arithmetic sequence, so doubles must match bit-for-bit. */
    struct Signature {
        std::vector<Tick> residencies;
        std::vector<double> energies;
        std::uint64_t jobs = 0;
        double latencyMean = 0.0;
        Tick endTick = 0;
    };

    Signature
    runOnce(bool use_wheel, Tick granularity)
    {
        Simulator sim(GetParam());
        std::unique_ptr<TimerWheel> wheel;
        if (use_wheel) {
            wheel = std::make_unique<TimerWheel>(sim, granularity);
            sim.setTimerWheel(wheel.get());
        }

        // A small star fabric with aggressive sleep thresholds so
        // the run exercises every governor tier: core demotion, port
        // LPI, line card sleep and whole-switch sleep.
        NetworkConfig net_cfg;
        net_cfg.switchSleepDelay = 20 * msec;
        Network net(sim, Topology::star(8, 1e9, 5 * usec),
                    SwitchPowerProfile::cisco2960_24(), net_cfg);

        std::vector<std::unique_ptr<Server>> owned;
        std::vector<Server *> servers;
        for (unsigned i = 0; i < 8; ++i) {
            ServerConfig sc;
            sc.id = i;
            sc.nCores = 2;
            auto server = std::make_unique<Server>(
                sim, sc, ServerPowerProfile{});
            servers.push_back(server.get());
            owned.push_back(std::move(server));
        }
        GlobalScheduler sched(sim, servers,
                              std::make_unique<LeastLoadedPolicy>(),
                              {}, &net);

        // Bursty two-stage jobs with transfers: idle gaps between
        // bursts let the governors cycle through their ladders.
        auto svc = std::make_shared<ExponentialService>(
            4 * msec, Rng(42, "svc"));
        ChainJobGenerator gen({svc, svc}, {0, 0}, 32 * 1024);
        PoissonArrival arrivals(120.0, Rng(42, "arrivals"));
        std::size_t injected = 0;
        EventFunctionWrapper inject(
            [&] {
                sched.submitJob(gen.makeJob(sim.curTick()));
                if (++injected < 600)
                    sim.schedule(inject, arrivals.nextArrival());
            },
            "inject");
        sim.schedule(inject, arrivals.nextArrival());
        sim.run();
        Tick end = sim.curTick();

        Signature sig;
        sig.jobs = sched.jobsCompleted();
        sig.latencyMean = sched.jobLatency().mean();
        sig.endTick = end;
        for (Server *s : servers) {
            s->finishStats();
            for (unsigned c = 0; c < 2; ++c) {
                const auto &res = s->core(c).residency();
                for (int st = 0; st < 5; ++st)
                    sig.residencies.push_back(res.residency(st));
            }
            for (int st = 0; st < 5; ++st)
                sig.residencies.push_back(s->residency().residency(st));
            sig.energies.push_back(s->energy().total());
        }
        for (std::size_t i = 0; i < net.numSwitches(); ++i) {
            Switch &sw = net.switchAt(i);
            sw.finishStats();
            sig.residencies.push_back(sw.residency().residency(0));
            sig.residencies.push_back(sw.residency().residency(1));
            sig.residencies.push_back(sw.sleepTransitions());
            for (unsigned p = 0; p < sw.numPorts(); ++p) {
                const auto &res = sw.port(p).residency();
                for (int st = 0; st < 3; ++st)
                    sig.residencies.push_back(res.residency(st));
            }
            for (unsigned lc = 0; lc < sw.numLineCards(); ++lc) {
                const auto &res = sw.lineCard(lc).residency();
                for (int st = 0; st < 3; ++st)
                    sig.residencies.push_back(res.residency(st));
            }
            sig.energies.push_back(sw.energy());
        }
        return sig;
    }
};

TEST_P(TimerModeProperty, UnitGranularityWheelMatchesEventsExactly)
{
    Signature events = runOnce(false, 1);
    Signature wheel = runOnce(true, 1);

    ASSERT_GT(events.jobs, 0u);
    EXPECT_EQ(wheel.jobs, events.jobs);
    EXPECT_DOUBLE_EQ(wheel.latencyMean, events.latencyMean);
    EXPECT_EQ(wheel.endTick, events.endTick);
    ASSERT_EQ(wheel.residencies.size(), events.residencies.size());
    for (std::size_t i = 0; i < events.residencies.size(); ++i) {
        EXPECT_EQ(wheel.residencies[i], events.residencies[i])
            << "residency slot " << i;
    }
    ASSERT_EQ(wheel.energies.size(), events.energies.size());
    for (std::size_t i = 0; i < events.energies.size(); ++i) {
        EXPECT_DOUBLE_EQ(wheel.energies[i], events.energies[i])
            << "energy slot " << i;
    }
}

TEST_P(TimerModeProperty, CoarseWheelConservesResidencyPartitions)
{
    // 100 us buckets shift governor transitions (never earlier, at
    // most one bucket later) but must keep every residency account a
    // partition of simulated time and complete the same job count.
    Signature events = runOnce(false, 1);
    Signature coarse = runOnce(true, 100 * usec);
    EXPECT_EQ(coarse.jobs, events.jobs);
    // Core + server residency blocks partition [0, endTick] per
    // entity: 8 servers x (2 cores x 5 states + 5 server states).
    std::size_t off = 0;
    for (int server = 0; server < 8; ++server) {
        for (int core = 0; core < 2; ++core) {
            Tick sum = 0;
            for (int st = 0; st < 5; ++st)
                sum += coarse.residencies[off++];
            EXPECT_EQ(sum, coarse.endTick)
                << "server " << server << " core " << core;
        }
        Tick sum = 0;
        for (int st = 0; st < 5; ++st)
            sum += coarse.residencies[off++];
        EXPECT_EQ(sum, coarse.endTick) << "server " << server;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TimerModeProperty,
    ::testing::Values(EventQueue::Backend::calendar,
                      EventQueue::Backend::binaryHeap),
    [](const ::testing::TestParamInfo<EventQueue::Backend> &info) {
        return info.param == EventQueue::Backend::calendar
                   ? "calendar"
                   : "heap";
    });

TEST(RetryBudgetProperty, ExhaustionAbandonsTheJob)
{
    DataCenterConfig cfg;
    cfg.nServers = 1;
    cfg.nCores = 1;
    cfg.seed = 7;
    cfg.fault.enabled = true;
    cfg.fault.mttfHours = 1e5; // ~11 kyears: no faults in this run
    cfg.fault.maxRetries = 2;
    cfg.fault.taskTimeout = 50 * msec;
    cfg.fault.retryBackoffBase = 10 * msec;
    DataCenter dc(cfg);

    // 10 s of work against a 50 ms timeout: every attempt is lost.
    auto service = std::make_shared<FixedService>(10 * sec);
    SingleTaskGenerator jobs(service);
    dc.pumpTrace({0}, jobs);
    dc.run();

    EXPECT_EQ(dc.scheduler().jobsCompleted(), 0u);
    EXPECT_EQ(dc.scheduler().jobsFailed(), 1u);
    EXPECT_EQ(dc.scheduler().taskTimeouts(), 3u); // 1 try + 2 retries
    EXPECT_EQ(dc.scheduler().taskRetries(), 2u);
    // The whole ordeal fits the budget arithmetic: 3 x timeout plus
    // two bounded backoffs.
    Tick worst = 3 * cfg.fault.taskTimeout +
                 dc.scheduler().retryPolicy().backoff(1) * 12 / 10 +
                 dc.scheduler().retryPolicy().backoff(2) * 12 / 10 + sec;
    EXPECT_LE(dc.sim().curTick(), worst);
}

// ---------------------------------------------------------------------------
// Property: energy and residency books stay conserved across crash/
// repair cycles -- every server's residency still partitions wall
// time exactly, component energies sum to the fleet total, crashes
// strand a nonzero-but-bounded wasted-energy account -- and the whole
// ledger is bit-identical across both event-queue backends and both
// timer modes.
// ---------------------------------------------------------------------------

namespace {

/** Every figure the four (backend x timer mode) runs must agree on. */
struct FaultedLedger {
    std::vector<Tick> residencies;
    std::vector<double> energies;
    double wasted = 0.0;
    double fleetTotal = 0.0;
    std::uint64_t jobs = 0;
    std::uint64_t faults = 0;
    Tick endTick = 0;
};

FaultedLedger
runFaultedLedger(EventQueue::Backend backend, bool use_wheel)
{
    Simulator sim(backend);
    std::unique_ptr<TimerWheel> wheel;
    if (use_wheel) {
        wheel = std::make_unique<TimerWheel>(sim, 1);
        sim.setTimerWheel(wheel.get());
    }

    FaultedLedger ledger;
    {
        std::vector<std::unique_ptr<Server>> owned;
        std::vector<Server *> servers;
        for (unsigned i = 0; i < 4; ++i) {
            ServerConfig sc;
            sc.id = i;
            sc.nCores = 2;
            auto server = std::make_unique<Server>(
                sim, sc, ServerPowerProfile{});
            servers.push_back(server.get());
            owned.push_back(std::move(server));
        }
        GlobalScheduler sched(sim, servers,
                              std::make_unique<RoundRobinPolicy>());
        RetryPolicy rp;
        rp.maxAttempts = 4;
        rp.backoffBase = 10 * msec;
        rp.jitterFrac = 0.0;
        sched.setRetryPolicy(rp);

        // Several overlapping crash/repair cycles, including a
        // double-dip on server 0 and a blink on server 2.
        auto trace = std::make_unique<TraceFaultModel>();
        trace->addFault({FaultKind::server, 0, 0}, 100 * msec,
                        300 * msec);
        trace->addFault({FaultKind::server, 0, 0}, 600 * msec,
                        800 * msec);
        trace->addFault({FaultKind::server, 1, 0}, 200 * msec,
                        400 * msec);
        trace->addFault({FaultKind::server, 2, 0}, 50 * msec,
                        55 * msec);
        FaultManager mgr(sim, std::move(trace), servers, nullptr,
                         &sched);

        auto svc = std::make_shared<ExponentialService>(
            8 * msec, Rng(31, "svc"));
        SingleTaskGenerator gen(svc);
        PoissonArrival arrivals(300.0, Rng(31, "arrivals"));
        std::size_t injected = 0;
        EventFunctionWrapper inject(
            [&] {
                sched.submitJob(gen.makeJob(sim.curTick()));
                if (++injected < 250)
                    sim.schedule(inject, arrivals.nextArrival());
            },
            "inject");
        sim.schedule(inject, arrivals.nextArrival());
        sim.runUntil(2 * sec);

        mgr.finishStats();
        ledger.jobs = sched.jobsCompleted();
        ledger.faults = mgr.faultsInjected();
        ledger.endTick = sim.curTick();
        for (Server *s : servers) {
            s->finishStats();
            // Six server-level states: the paper's five plus the
            // appended ServerState::failed crash bucket.
            for (int st = 0; st < 6; ++st)
                ledger.residencies.push_back(
                    s->residency().residency(st));
            for (unsigned c = 0; c < 2; ++c)
                for (int st = 0; st < 5; ++st)
                    ledger.residencies.push_back(
                        s->core(c).residency().residency(st));
            const EnergyBreakdown &e = s->energy();
            ledger.energies.push_back(e.cpu);
            ledger.energies.push_back(e.dram);
            ledger.energies.push_back(e.platform);
            ledger.fleetTotal += e.total();
            ledger.wasted += s->wastedJoules();
        }
    }
    return ledger;
}

} // namespace

TEST(FaultedEnergyProperty, LedgerConservedAndModeInvariant)
{
    const FaultedLedger base =
        runFaultedLedger(EventQueue::Backend::calendar, false);

    // Conservation on the reference run. Crash/repair cycles must
    // not leak simulated time out of any residency account...
    ASSERT_GT(base.jobs, 0u);
    EXPECT_EQ(base.faults, 4u);
    for (std::size_t s = 0; s < 4; ++s) {
        Tick sum = 0;
        for (int st = 0; st < 6; ++st)
            sum += base.residencies[s * 16 + st];
        EXPECT_EQ(sum, base.endTick) << "server " << s;
        for (int c = 0; c < 2; ++c) {
            Tick cores = 0;
            for (int st = 0; st < 5; ++st)
                cores += base.residencies[s * 16 + 6 + c * 5 + st];
            EXPECT_EQ(cores, base.endTick)
                << "server " << s << " core " << c;
        }
    }
    // ...nor out of the energy books: per-component energies sum to
    // the fleet total, and the killed attempts strand a wasted-energy
    // account that is nonzero yet still inside the total.
    double components = 0.0;
    for (double e : base.energies)
        components += e;
    EXPECT_NEAR(components, base.fleetTotal,
                1e-9 * base.fleetTotal);
    EXPECT_GT(base.wasted, 0.0);
    EXPECT_LT(base.wasted, base.fleetTotal);

    // The same ledger, bit for bit, on every (backend, timer) combo.
    for (auto backend : {EventQueue::Backend::calendar,
                         EventQueue::Backend::binaryHeap}) {
        for (bool use_wheel : {false, true}) {
            if (backend == EventQueue::Backend::calendar && !use_wheel)
                continue;
            SCOPED_TRACE(std::string(backend ==
                                             EventQueue::Backend::calendar
                                         ? "calendar"
                                         : "heap") +
                         (use_wheel ? "+wheel" : "+events"));
            FaultedLedger other = runFaultedLedger(backend, use_wheel);
            EXPECT_EQ(other.jobs, base.jobs);
            EXPECT_EQ(other.faults, base.faults);
            EXPECT_EQ(other.endTick, base.endTick);
            ASSERT_EQ(other.residencies.size(),
                      base.residencies.size());
            for (std::size_t i = 0; i < base.residencies.size(); ++i)
                EXPECT_EQ(other.residencies[i], base.residencies[i])
                    << "residency slot " << i;
            ASSERT_EQ(other.energies.size(), base.energies.size());
            for (std::size_t i = 0; i < base.energies.size(); ++i)
                EXPECT_DOUBLE_EQ(other.energies[i], base.energies[i])
                    << "energy slot " << i;
            EXPECT_DOUBLE_EQ(other.wasted, base.wasted);
        }
    }
}

// ---------------------------------------------------------------------------
// Property: the event queue dispatches in total (tick, priority)
// order even under heavy fault-style churn -- events descheduled and
// rescheduled mid-run, wheel timers armed and cancelled -- on both
// backends and both timer modes.
// ---------------------------------------------------------------------------

using ChurnParam = std::tuple<EventQueue::Backend, bool>;

class EventOrderProperty
    : public ::testing::TestWithParam<ChurnParam>
{
  protected:
    struct Counter : TimerClient {
        int fired = 0;
        void timerFired(std::uint64_t, Tick) override { ++fired; }
    };
};

TEST_P(EventOrderProperty, TotalOrderSurvivesFaultCancelChurn)
{
    const auto [backend, use_wheel] = GetParam();
    Simulator sim(backend);
    std::unique_ptr<TimerWheel> wheel;
    if (use_wheel) {
        wheel = std::make_unique<TimerWheel>(sim, 1);
        sim.setTimerWheel(wheel.get());
    }

    Rng rng(2024, "churn");
    const int prios[4] = {Event::powerPriority, Event::mailboxPriority,
                          Event::defaultPriority, Event::statsPriority};
    struct Fired {
        Tick tick;
        int prio;
    };
    std::vector<Fired> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 300; ++i) {
        const int p = prios[rng.uniformInt(0, 3)];
        auto ev = std::make_unique<EventFunctionWrapper>(
            [&fired, &sim, p] { fired.push_back({sim.curTick(), p}); },
            "churn.ev" + std::to_string(i), p);
        sim.schedule(*ev,
                     1 + static_cast<Tick>(
                             rng.uniformInt(0, 1'000'000'000)));
        events.push_back(std::move(ev));
    }

    // Wheel-mode extra churn: timers armed and a third cancelled, the
    // way a fault tears down a governor ladder mid-countdown.
    Counter counter;
    int armed = 0, cancelled = 0;
    std::vector<TimerWheel::Handle> handles;
    if (use_wheel) {
        for (int i = 0; i < 90; ++i) {
            handles.push_back(wheel->arm(
                counter, static_cast<std::uint64_t>(i),
                1 + static_cast<Tick>(
                        rng.uniformInt(0, 900'000'000))));
            ++armed;
        }
        for (int i = 0; i < 90; i += 3) {
            if (wheel->pending(handles[i])) {
                wheel->cancel(handles[i]);
                ++cancelled;
            }
        }
    }

    // The churner: every 50 ms, kick a random batch of still-pending
    // events to new future times -- the deschedule/reschedule pattern
    // crash repair performs on injection and governor events.
    int rounds = 0;
    EventFunctionWrapper churn(
        [&] {
            for (int k = 0; k < 30; ++k) {
                auto &ev = *events[static_cast<std::size_t>(
                    rng.uniformInt(0, 299))];
                if (!ev.scheduled())
                    continue;
                sim.deschedule(ev);
                sim.schedule(
                    ev, sim.curTick() + 1 +
                            static_cast<Tick>(
                                rng.uniformInt(0, 200'000'000)));
            }
            if (++rounds < 10)
                sim.schedule(churn, sim.curTick() + 50 * msec);
        },
        "churn.driver");
    sim.schedule(churn, 50 * msec);
    sim.run();

    // Every event fired exactly once despite the churn...
    EXPECT_EQ(fired.size(), 300u);
    for (const auto &ev : events)
        EXPECT_FALSE(ev->scheduled());
    if (use_wheel)
        EXPECT_EQ(counter.fired, armed - cancelled);
    // ...and dispatch never went backwards in (tick, priority).
    for (std::size_t i = 1; i < fired.size(); ++i) {
        ASSERT_LE(fired[i - 1].tick, fired[i].tick) << "slot " << i;
        if (fired[i - 1].tick == fired[i].tick)
            EXPECT_LE(fired[i - 1].prio, fired[i].prio)
                << "slot " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndTimerModes, EventOrderProperty,
    ::testing::Combine(
        ::testing::Values(EventQueue::Backend::calendar,
                          EventQueue::Backend::binaryHeap),
        ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<ChurnParam> &info) {
        return std::string(std::get<0>(info.param) ==
                                   EventQueue::Backend::calendar
                               ? "calendar"
                               : "heap") +
               (std::get<1>(info.param) ? "_wheel" : "_events");
    });

// ---------------------------------------------------------------------------
// Property: the parallel kernel is statistics-invisible. For any
// partition count and any seed, a pod cluster's deterministic dump is
// byte-identical to the sequential kernel's.
// ---------------------------------------------------------------------------

using PdesParam = std::tuple<unsigned, std::uint64_t>;

class PdesIdentityProperty
    : public ::testing::TestWithParam<PdesParam>
{};

TEST_P(PdesIdentityProperty, PartitionedDumpMatchesSequential)
{
    const auto [partitions, seed] = GetParam();

    PodClusterConfig cfg;
    cfg.pods = 4;
    cfg.requestsPerPod = 30;
    cfg.arrivalRate = 600.0;
    cfg.forwardProbability = 0.4;
    cfg.statsHorizon = 1 * sec;
    cfg.seed = seed;

    auto dump = [&](unsigned parts) {
        PodCluster cluster(cfg, parts);
        cluster.run();
        std::ostringstream os;
        cluster.dumpStats(os);
        return os.str();
    };
    EXPECT_EQ(dump(0), dump(partitions));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PdesIdentityProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 99u)),
    [](const ::testing::TestParamInfo<PdesParam> &info) {
        return "parts" + std::to_string(std::get<0>(info.param)) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });
