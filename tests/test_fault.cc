/**
 * @file
 * Tests for the fault subsystem: fault models (trace + stochastic),
 * the fault manager's injection/repair cycle and availability books,
 * retry/backoff in the global scheduler, and fault-driven flow
 * aborts in the network.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "dc/datacenter.hh"
#include "fault/fault_manager.hh"
#include "fault/fault_model.hh"
#include "fault/retry_policy.hh"
#include "network/network.hh"
#include "sched/dispatch_policy.hh"
#include "sched/global_scheduler.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/timer_wheel.hh"
#include "workload/job.hh"

using namespace holdcsim;

namespace {

/** Server fleet + scheduler + optional fault manager. */
struct FaultFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    std::unique_ptr<GlobalScheduler> sched;
    std::unique_ptr<FaultManager> mgr;
    std::vector<std::pair<JobId, Tick>> finished;
    std::vector<JobId> failed;

    void
    makeFleet(unsigned n, unsigned cores = 1)
    {
        for (unsigned i = 0; i < n; ++i) {
            ServerConfig cfg;
            cfg.id = i;
            cfg.nCores = cores;
            owned.push_back(std::make_unique<Server>(sim, cfg, prof));
            servers.push_back(owned.back().get());
        }
    }

    void
    makeScheduler(const RetryPolicy &rp)
    {
        sched = std::make_unique<GlobalScheduler>(
            sim, servers, std::make_unique<RoundRobinPolicy>());
        sched->setRetryPolicy(rp);
        sched->setJobDoneCallback([this](JobId id, Tick lat) {
            finished.emplace_back(id, lat);
        });
        sched->setJobFailedCallback(
            [this](JobId id) { failed.push_back(id); });
    }

    void
    makeManager(std::unique_ptr<FaultModel> model,
                FaultManagerConfig cfg = {})
    {
        mgr = std::make_unique<FaultManager>(sim, std::move(model),
                                             servers, nullptr,
                                             sched.get(), cfg);
    }

    Job
    singleTaskJob(JobId id, Tick service)
    {
        Job j(id, 0);
        j.addTask(TaskSpec{service, 0, 1.0});
        j.validate();
        return j;
    }
};

/** Deterministic retry policy: no jitter, fixed base. */
RetryPolicy
flatPolicy(unsigned max_attempts, Tick base = 10 * msec)
{
    RetryPolicy rp;
    rp.maxAttempts = max_attempts;
    rp.backoffBase = base;
    rp.backoffMax = 100 * base;
    rp.jitterFrac = 0.0;
    return rp;
}

} // namespace

// --------------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, ExponentialBackoffWithCap)
{
    RetryPolicy rp;
    rp.backoffBase = 10 * msec;
    rp.backoffMax = 80 * msec;
    rp.jitterFrac = 0.0;
    EXPECT_EQ(rp.backoff(1), 10 * msec);
    EXPECT_EQ(rp.backoff(2), 20 * msec);
    EXPECT_EQ(rp.backoff(3), 40 * msec);
    EXPECT_EQ(rp.backoff(4), 80 * msec);
    EXPECT_EQ(rp.backoff(5), 80 * msec);
    // Shift counts far beyond the Tick width must not overflow.
    EXPECT_EQ(rp.backoff(200), 80 * msec);
}

TEST(RetryPolicy, JitterStaysWithinBounds)
{
    RetryPolicy rp;
    rp.backoffBase = 100 * msec;
    rp.backoffMax = 10 * sec;
    rp.jitterFrac = 0.1;
    Rng rng(7, "test.jitter");
    for (int i = 0; i < 200; ++i) {
        Tick b = rp.backoff(1, &rng);
        EXPECT_GE(b, 90 * msec);
        EXPECT_LE(b, 110 * msec);
    }
}

// ------------------------------------------------------------- fault models

TEST(TraceFaultModel, ReplaysSortedEpisodes)
{
    TraceFaultModel m;
    FaultTarget t{FaultKind::server, 0, 0};
    // Added out of order; the model must sort per target.
    m.addFault(t, 300 * msec, 400 * msec);
    m.addFault(t, 100 * msec, 200 * msec);

    auto first = m.nextFault(t, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->downAt, 100 * msec);
    EXPECT_EQ(first->upAt, 200 * msec);

    auto second = m.nextFault(t, 200 * msec);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->downAt, 300 * msec);

    EXPECT_FALSE(m.nextFault(t, 400 * msec).has_value());
    // A different target has no schedule at all.
    EXPECT_FALSE(
        m.nextFault({FaultKind::server, 1, 0}, 0).has_value());
}

TEST(TraceFaultModel, SkipsStaleAndClampsEpisodes)
{
    TraceFaultModel m;
    FaultTarget t{FaultKind::link, 3, 0};
    m.addFault(t, 100 * msec, 200 * msec);
    m.addFault(t, 300 * msec, 500 * msec);

    // Asking from inside the second episode clamps its start to now.
    auto rec = m.nextFault(t, 350 * msec);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->downAt, 350 * msec);
    EXPECT_EQ(rec->upAt, 500 * msec);
}

TEST(TraceFaultModel, RejectsOverlapAndEmptyEpisodes)
{
    FaultTarget t{FaultKind::server, 0, 0};
    {
        TraceFaultModel m;
        EXPECT_THROW(m.addFault(t, 200 * msec, 200 * msec),
                     FatalError);
    }
    {
        TraceFaultModel m;
        m.addFault(t, 100 * msec, 300 * msec);
        m.addFault(t, 200 * msec, 400 * msec);
        EXPECT_THROW(m.finalize(), FatalError);
    }
}

TEST(TraceFaultModel, ParsesTraceFile)
{
    std::string path = ::testing::TempDir() + "holdcsim_faults.txt";
    {
        std::ofstream f(path);
        f << "# component index down_s up_s\n";
        f << "server 2 1.0 2.5\n";
        f << "switch 0 0.5 0.75\n";
        f << "link 7 3.0 3.5\n";
        f << "linecard 1 3 4.0 5.0\n";
    }
    auto m = TraceFaultModel::fromFile(path);

    auto srv = m->nextFault({FaultKind::server, 2, 0}, 0);
    ASSERT_TRUE(srv.has_value());
    EXPECT_EQ(srv->downAt, fromSeconds(1.0));
    EXPECT_EQ(srv->upAt, fromSeconds(2.5));

    auto sw = m->nextFault({FaultKind::swtch, 0, 0}, 0);
    ASSERT_TRUE(sw.has_value());
    EXPECT_EQ(sw->downAt, fromSeconds(0.5));

    auto lc = m->nextFault({FaultKind::linecard, 1, 3}, 0);
    ASSERT_TRUE(lc.has_value());
    EXPECT_EQ(lc->downAt, fromSeconds(4.0));

    EXPECT_THROW(TraceFaultModel::fromFile("/nonexistent/faults"),
                 FatalError);
}

TEST(StochasticFaultModel, SameSeedSameSchedule)
{
    for (auto dist : {StochasticFaultModel::Distribution::exponential,
                      StochasticFaultModel::Distribution::weibull}) {
        StochasticFaultModel a(42, 1 * sec, 100 * msec, dist);
        StochasticFaultModel b(42, 1 * sec, 100 * msec, dist);
        FaultTarget t{FaultKind::server, 5, 0};
        Tick now_a = 0, now_b = 0;
        for (int i = 0; i < 10; ++i) {
            auto ra = a.nextFault(t, now_a);
            auto rb = b.nextFault(t, now_b);
            ASSERT_TRUE(ra.has_value());
            ASSERT_TRUE(rb.has_value());
            EXPECT_EQ(ra->downAt, rb->downAt);
            EXPECT_EQ(ra->upAt, rb->upAt);
            EXPECT_GT(ra->upAt, ra->downAt);
            EXPECT_GE(ra->downAt, now_a);
            now_a = ra->upAt;
            now_b = rb->upAt;
        }
    }
}

TEST(StochasticFaultModel, ComponentsDrawIndependentStreams)
{
    StochasticFaultModel m(42, 10 * sec, 1 * sec);
    auto a = m.nextFault({FaultKind::server, 0, 0}, 0);
    auto b = m.nextFault({FaultKind::server, 1, 0}, 0);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(a->downAt, b->downAt);
}

// ------------------------------------------------- explicit fault schedules

TEST(ScheduleFaultModel, HandsOutEpisodesAndRecordsThem)
{
    FaultTarget s0{FaultKind::server, 0, 0};
    FaultTarget s1{FaultKind::server, 1, 0};
    std::vector<ScheduledFault> sched = {
        {s0, {300 * msec, 400 * msec}},
        {s0, {100 * msec, 200 * msec}},
        {s1, {150 * msec, 250 * msec}},
    };
    ScheduleFaultModel m(sched);

    auto first = m.nextFault(s0, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->downAt, 100 * msec);
    auto other = m.nextFault(s1, 0);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->downAt, 150 * msec);
    auto second = m.nextFault(s0, 200 * msec);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->downAt, 300 * msec);
    EXPECT_FALSE(m.nextFault(s0, 400 * msec).has_value());

    // The hand-out log keeps episodes in hand-out order.
    ASSERT_EQ(m.consumed().size(), 3u);
    EXPECT_EQ(m.consumed()[0].record.downAt, 100 * msec);
    EXPECT_EQ(m.consumed()[1].record.downAt, 150 * msec);
    EXPECT_EQ(m.consumed()[2].record.downAt, 300 * msec);
}

TEST(ScheduleFaultModel, FatalsInsteadOfDriftingFromTheScript)
{
    FaultTarget t{FaultKind::server, 0, 0};
    // Overlapping episodes are a harness bug, not a schedule.
    EXPECT_THROW(ScheduleFaultModel({
                     {t, {100 * msec, 300 * msec}},
                     {t, {200 * msec, 400 * msec}},
                 }),
                 FatalError);
    // An episode the clock has already passed cannot replay exactly
    // as written; TraceFaultModel would clamp, this model refuses.
    ScheduleFaultModel m({{t, {100 * msec, 200 * msec}}});
    EXPECT_THROW(m.nextFault(t, 150 * msec), FatalError);
}

TEST(FaultTraceLine, RoundTripIsTickExact)
{
    // Deliberately awkward tick values: the 9-decimal seconds text
    // must reproduce them exactly (fromSeconds rounds to nearest).
    std::vector<ScheduledFault> faults = {
        {{FaultKind::server, 7, 0}, {123456789, 987654321}},
        {{FaultKind::swtch, 2, 0}, {1, 2}},
        {{FaultKind::linecard, 1, 3}, {999999999, 1000000001}},
    };
    for (const ScheduledFault &f : faults) {
        ScheduledFault parsed;
        ASSERT_TRUE(parseFaultTraceLine(formatFaultTraceLine(f),
                                        "test:1", parsed));
        EXPECT_TRUE(parsed == f) << formatFaultTraceLine(f);
    }
    ScheduledFault ignored;
    EXPECT_FALSE(parseFaultTraceLine("", "test:1", ignored));
    EXPECT_FALSE(parseFaultTraceLine("# comment", "test:1", ignored));
    EXPECT_THROW(parseFaultTraceLine("server x 1.0 2.0", "test:1",
                                     ignored),
                 FatalError);
}

// ------------------------------------------------------------ fault manager

TEST_F(FaultFixture, DowntimeResidencySumsToWallTime)
{
    makeFleet(1);
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::server, 0, 0}, 100 * msec,
                    300 * msec);
    makeManager(std::move(trace));

    sim.runUntil(1 * sec);
    mgr->finishStats();

    const auto &cs = mgr->componentStats(0);
    EXPECT_EQ(cs.faults, 1u);
    EXPECT_EQ(cs.residency.residency(1), 200 * msec);
    EXPECT_EQ(cs.residency.residency(0) + cs.residency.residency(1),
              cs.residency.totalTime());
    EXPECT_EQ(cs.residency.totalTime(), 1 * sec);
    EXPECT_DOUBLE_EQ(mgr->availability(0), 0.8);
    EXPECT_DOUBLE_EQ(mgr->fleetAvailability(), 0.8);
    EXPECT_EQ(mgr->totalDowntime(), 200 * msec);
    EXPECT_EQ(mgr->faultsInjected(), 1u);
    EXPECT_EQ(mgr->currentlyDown(), 0u);
    EXPECT_FALSE(servers[0]->failed());
    EXPECT_EQ(servers[0]->failures(), 1u);
}

TEST_F(FaultFixture, EpisodeLogExportsRealizedScheduleForReplay)
{
    makeFleet(2);
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::server, 0, 0}, 100 * msec,
                    300 * msec);
    trace->addFault({FaultKind::server, 1, 0}, 200 * msec, 10 * sec);
    makeManager(std::move(trace));

    sim.runUntil(1 * sec);

    ASSERT_EQ(mgr->episodeLog().size(), 2u);
    EXPECT_EQ(mgr->episodeLog()[0].downAt, 100 * msec);
    EXPECT_EQ(mgr->episodeLog()[0].upAt, 300 * msec);
    EXPECT_EQ(mgr->episodeLog()[1].downAt, 200 * msec);
    // Server 1 is still down: the log keeps the episode open...
    EXPECT_EQ(mgr->episodeLog()[1].upAt, maxTick);

    // ...and the exported trace closes it one tick past the clock,
    // in text TraceFaultModel (and the mc explorer) can load.
    std::ostringstream os;
    mgr->writeScheduleTrace(os);
    std::istringstream in(os.str());
    std::string line;
    std::vector<ScheduledFault> parsed;
    while (std::getline(in, line)) {
        ScheduledFault f;
        if (parseFaultTraceLine(line, "export", f))
            parsed.push_back(f);
    }
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].record.downAt, 100 * msec);
    EXPECT_EQ(parsed[0].record.upAt, 300 * msec);
    EXPECT_EQ(parsed[1].record.downAt, 200 * msec);
    EXPECT_EQ(parsed[1].record.upAt, sim.curTick() + 1);
}

TEST_F(FaultFixture, AbortDumpNamesTheActiveFaultSchedule)
{
    makeFleet(2);
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::server, 0, 0}, 100 * msec,
                    300 * msec);
    trace->addFault({FaultKind::server, 1, 0}, 200 * msec, 10 * sec);
    makeManager(std::move(trace));
    sim.runUntil(500 * msec);

    // A fault-provoked abort names the faults, not just the damage.
    std::ostringstream os;
    sim.abortDump(os, "test abort");
    const std::string dump = os.str();
    EXPECT_NE(dump.find("context.fault_schedule:"), std::string::npos);
    EXPECT_NE(dump.find("faults_injected: 2"), std::string::npos);
    EXPECT_NE(dump.find("currently_down: server.1"),
              std::string::npos);
    EXPECT_NE(dump.find("pending"), std::string::npos);

    // Deregistration on destruction: no dangling contributor.
    mgr.reset();
    std::ostringstream after;
    sim.abortDump(after, "test abort");
    EXPECT_EQ(after.str().find("context.fault_schedule:"),
              std::string::npos);
}

TEST_F(FaultFixture, CrashedTaskRetriesOnHealthyServer)
{
    makeFleet(2);
    makeScheduler(flatPolicy(3));
    auto trace = std::make_unique<TraceFaultModel>();
    // Round-robin places job 0 on server 0; kill it mid-run.
    trace->addFault({FaultKind::server, 0, 0}, 10 * msec, 50 * msec);
    makeManager(std::move(trace));

    sched->submitJob(singleTaskJob(0, 100 * msec));
    sim.run();

    // Attempt 1 died at 10 ms, backoff 10 ms, attempt 2 runs the
    // full 100 ms on the surviving server.
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].first, 0u);
    // 10 ms until the crash + 10 ms backoff + a full 100 ms re-run
    // (plus sub-ms server wake-up latency).
    EXPECT_GE(finished[0].second, 120 * msec);
    EXPECT_LT(finished[0].second, 125 * msec);
    EXPECT_TRUE(failed.empty());
    EXPECT_EQ(sched->taskRetries(), 1u);
    EXPECT_EQ(sched->jobsFailed(), 0u);
    EXPECT_EQ(servers[0]->tasksKilled(), 1u);
    EXPECT_GT(servers[0]->wastedJoules(), 0.0);
    EXPECT_EQ(servers[1]->tasksCompleted(), 1u);
}

TEST_F(FaultFixture, RetryExhaustionFailsJob)
{
    makeFleet(1);
    makeScheduler(flatPolicy(2));
    auto trace = std::make_unique<TraceFaultModel>();
    // The only server stays down far past the retry budget.
    trace->addFault({FaultKind::server, 0, 0}, 10 * msec, 10 * sec);
    makeManager(std::move(trace));

    sched->submitJob(singleTaskJob(0, 100 * msec));
    sim.run();

    EXPECT_TRUE(finished.empty());
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], 0u);
    EXPECT_EQ(sched->jobsFailed(), 1u);
    EXPECT_TRUE(sched->jobHasFailed(0));
    EXPECT_FALSE(sched->jobHasFailed(1));
    EXPECT_EQ(sched->activeJobs(), 0u);
}

TEST_F(FaultFixture, RepairedServerServesAgain)
{
    makeFleet(1);
    makeScheduler(flatPolicy(5, 100 * msec));
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::server, 0, 0}, 10 * msec, 60 * msec);
    makeManager(std::move(trace));

    sched->submitJob(singleTaskJob(0, 50 * msec));
    sim.run();

    // The 100 ms backoff outlasts the 50 ms repair, so the retry
    // lands on the same (now healthy) server.
    ASSERT_EQ(finished.size(), 1u);
    // 10 ms to the crash + 100 ms backoff + 50 ms re-run, plus the
    // wake-up of the freshly repaired machine.
    EXPECT_GE(finished[0].second, 160 * msec);
    EXPECT_LT(finished[0].second, 165 * msec);
    EXPECT_EQ(servers[0]->tasksCompleted(), 1u);
    EXPECT_EQ(servers[0]->failures(), 1u);
}

TEST_F(FaultFixture, WheelModeFaultCycleLeavesNoZombieTimers)
{
    // Same crash/retry scenario as CrashedTaskRetriesOnHealthyServer
    // but with the governor timers riding the shared wheel. A server
    // failure forces cores into deep sleep mid-ladder; the wheel
    // handles armed before the crash must all be cancelled -- a
    // zombie entry would either fire into a failed machine or keep
    // the run alive forever.
    TimerWheel wheel(sim, 1);
    sim.setTimerWheel(&wheel);
    makeFleet(2);
    makeScheduler(flatPolicy(3));
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::server, 0, 0}, 10 * msec, 50 * msec);
    trace->addFault({FaultKind::server, 1, 0}, 200 * msec,
                    300 * msec);
    makeManager(std::move(trace));

    sched->submitJob(singleTaskJob(0, 100 * msec));
    sim.run();

    ASSERT_EQ(finished.size(), 1u);
    EXPECT_TRUE(failed.empty());
    EXPECT_EQ(sched->taskRetries(), 1u);
    EXPECT_EQ(servers[0]->tasksKilled(), 1u);
    EXPECT_EQ(servers[1]->tasksCompleted(), 1u);

    // The run drained: every governor ladder ran dry, and no zombie
    // wheel entry survives the fail/repair cycles. Server 1's unused
    // 200 ms fault cycle legitimately remains queued -- injection
    // events are background -- so the check is that nothing
    // *foreground* (i.e. no wheel tick) is left: re-running must not
    // advance the clock.
    EXPECT_EQ(wheel.live(), 0u);
    const Tick done = sim.curTick();
    sim.run();
    EXPECT_EQ(sim.curTick(), done);
    EXPECT_GT(wheel.stats().fired, 0u);
    // forceDeepSleep on the crash cancelled at least one ladder.
    EXPECT_GT(wheel.stats().cancelled, 0u);

    // The fixture's servers latched &wheel (a test-body local):
    // destroy everything that might touch it before it dies.
    mgr.reset();
    sched.reset();
    servers.clear();
    owned.clear();
}

TEST_F(FaultFixture, TaskTimeoutTriggersRetry)
{
    makeFleet(2);
    RetryPolicy rp = flatPolicy(2);
    rp.taskTimeout = 30 * msec;
    makeScheduler(rp);

    // No faults at all: the timeout alone must fire and retry, and
    // the second attempt (also 50 ms > 30 ms) exhausts the budget.
    sched->submitJob(singleTaskJob(0, 50 * msec));
    sim.run();

    EXPECT_TRUE(finished.empty());
    EXPECT_EQ(sched->taskTimeouts(), 2u);
    EXPECT_EQ(sched->jobsFailed(), 1u);
}

// ------------------------------------------------------------ network faults

namespace {

struct NetFaultFixture : ::testing::Test {
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    std::unique_ptr<Network> net;

    void
    make(Topology topo)
    {
        net = std::make_unique<Network>(sim, std::move(topo), prof,
                                        NetworkConfig{});
    }

    LinkId
    accessLink(std::size_t server)
    {
        NodeId n = net->topology().serverNode(server);
        return net->topology().linksAt(n).at(0);
    }
};

} // namespace

TEST_F(NetFaultFixture, LinkFaultAbortsInFlightFlows)
{
    make(Topology::star(4, 1e9, 5 * usec));
    bool done = false, aborted = false;
    net->startFlow(0, 1, 125'000'000, [&] { done = true; },
                   [&] { aborted = true; });
    net->failLink(accessLink(1));

    EXPECT_TRUE(aborted);
    EXPECT_FALSE(done);
    EXPECT_EQ(net->flows().flowsAborted(), 1u);
    EXPECT_FALSE(net->serversReachable(0, 1));
    EXPECT_TRUE(net->serversReachable(0, 2));

    net->repairLink(accessLink(1));
    EXPECT_TRUE(net->serversReachable(0, 1));
    bool done2 = false;
    net->startFlow(0, 1, 1'000'000, [&] { done2 = true; });
    sim.run();
    EXPECT_TRUE(done2);
}

TEST_F(NetFaultFixture, UnreachableFlowAbortsAsynchronously)
{
    make(Topology::star(4, 1e9, 5 * usec));
    net->failLink(accessLink(1));

    bool aborted = false;
    FlowId id = net->startFlow(0, 1, 1'000'000, [] {},
                               [&] { aborted = true; });
    EXPECT_EQ(id, Network::invalidFlow);
    // The abort is delivered from the event loop, not re-entrantly.
    EXPECT_FALSE(aborted);
    sim.run();
    EXPECT_TRUE(aborted);
}

TEST_F(NetFaultFixture, ManagerDrivesSwitchFaults)
{
    make(Topology::star(4, 1e9, 5 * usec));
    auto trace = std::make_unique<TraceFaultModel>();
    trace->addFault({FaultKind::swtch, 0, 0}, 100 * msec, 300 * msec);
    FaultManagerConfig cfg;
    cfg.faultServers = false;
    cfg.faultSwitches = true;
    FaultManager fm(sim, std::move(trace), {}, net.get(), nullptr,
                    cfg);
    EXPECT_EQ(fm.numTargets(), 1u);

    sim.runUntil(200 * msec);
    EXPECT_TRUE(net->switchAt(0).failed());
    EXPECT_FALSE(net->serversReachable(0, 1));
    EXPECT_EQ(fm.currentlyDown(), 1u);

    sim.runUntil(1 * sec);
    EXPECT_FALSE(net->switchAt(0).failed());
    EXPECT_TRUE(net->serversReachable(0, 1));
    EXPECT_EQ(fm.currentlyDown(), 0u);
}

TEST(NetFaultWheel, SwitchFaultCancelsWheelSleepTimers)
{
    // Wheel-mode switch: LPI / line card / switch sleep countdowns
    // all live on the shared wheel. Failing the switch mid-countdown
    // must cancel them (a zombie timer would put a dead switch to
    // sleep), and the repair must restart the ladder cleanly.
    Simulator sim;
    TimerWheel wheel(sim, 1);
    sim.setTimerWheel(&wheel);
    NetworkConfig net_cfg;
    net_cfg.switchSleepDelay = 50 * msec;
    {
        Network net(sim, Topology::star(4, 1e9, 5 * usec),
                    SwitchPowerProfile::cisco2960_24(), net_cfg);
        auto trace = std::make_unique<TraceFaultModel>();
        trace->addFault({FaultKind::swtch, 0, 0}, 10 * msec,
                        200 * msec);
        FaultManagerConfig cfg;
        cfg.faultServers = false;
        cfg.faultSwitches = true;
        FaultManager fm(sim, std::move(trace), {}, &net, nullptr,
                        cfg);

        sim.runUntil(100 * msec);
        EXPECT_TRUE(net.switchAt(0).failed());
        // Injection events are background, so run() alone would stop
        // before the 200 ms repair: step past it with runUntil, which
        // drains background events too.
        sim.runUntil(400 * msec);
        EXPECT_FALSE(net.switchAt(0).failed());
        EXPECT_TRUE(net.switchAt(0).asleep());
        EXPECT_EQ(wheel.live(), 0u);
        EXPECT_FALSE(sim.hasPendingEvents());
        EXPECT_GT(wheel.stats().fired, 0u);
    }
    // Network destroyed while the wheel is alive: port/card/switch
    // dtors cancelled every handle they still held.
    EXPECT_EQ(wheel.live(), 0u);
}

// -------------------------------------------------------- DataCenter wiring

TEST(DcFault, DisabledByDefaultAndGatedStats)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.nCores = 1;
    DataCenter dc(cfg);
    EXPECT_EQ(dc.faults(), nullptr);
    std::ostringstream os;
    dc.dumpStats(os);
    EXPECT_EQ(os.str().find("reliability."), std::string::npos);
    EXPECT_EQ(os.str().find("frac_failed"), std::string::npos);
}

TEST(DcFault, ConfigKeysParse)
{
    auto ini = Config::parseString(R"(
[fault]
enabled = true
mttf_hours = 2.5
mttr_minutes = 3
distribution = weibull
weibull_shape = 1.2
fault_servers = true
fault_switches = false
max_retries = 4
retry_backoff_base_ms = 5
retry_backoff_max_ms = 500
task_timeout_ms = 2000
)");
    auto cfg = DataCenterConfig::fromConfig(ini);
    EXPECT_TRUE(cfg.fault.enabled);
    EXPECT_DOUBLE_EQ(cfg.fault.mttfHours, 2.5);
    EXPECT_DOUBLE_EQ(cfg.fault.mttrMinutes, 3.0);
    EXPECT_EQ(cfg.fault.distribution, "weibull");
    EXPECT_DOUBLE_EQ(cfg.fault.weibullShape, 1.2);
    EXPECT_EQ(cfg.fault.maxRetries, 4u);
    EXPECT_EQ(cfg.fault.retryBackoffBase, 5 * msec);
    EXPECT_EQ(cfg.fault.retryBackoffMax, 500 * msec);
    EXPECT_EQ(cfg.fault.taskTimeout, 2 * sec);

    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[fault]\nenabled = true\ndistribution = bogus\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[fault]\nenabled = true\nfault_links = true\n")),
                 FatalError);
}

TEST(DcFault, EnabledRunIsDeterministic)
{
    auto run_once = [](std::ostream &os) {
        DataCenterConfig cfg;
        cfg.nServers = 4;
        cfg.nCores = 1;
        cfg.seed = 11;
        cfg.fault.enabled = true;
        // Aggressive MTTF so a short run sees several faults.
        cfg.fault.mttfHours = 1.0 / 3600.0;  // 1 s
        cfg.fault.mttrMinutes = 0.5 / 60.0;  // 0.5 s
        cfg.fault.maxRetries = 5;
        cfg.fault.retryBackoffBase = 10 * msec;
        DataCenter dc(cfg);
        ASSERT_NE(dc.faults(), nullptr);
        for (JobId id = 0; id < 40; ++id) {
            Job j(id, 0);
            j.addTask(TaskSpec{200 * msec, 0, 1.0});
            j.validate();
            dc.scheduler().submitJob(std::move(j));
        }
        dc.run();
        dc.dumpStats(os);
    };

    std::ostringstream a, b;
    run_once(a);
    run_once(b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("reliability.fleet_availability"),
              std::string::npos);
    EXPECT_NE(a.str().find("reliability.wasted_joules"),
              std::string::npos);
}
