/**
 * @file
 * Tests for trace I/O and the synthetic trace generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"
#include "workload/trace.hh"

using namespace holdcsim;

TEST(TraceIo, RoundTrip)
{
    std::vector<Tick> in{0, 500 * msec, 1 * sec, 1 * sec + 1};
    std::ostringstream out;
    writeArrivalTrace(out, in);
    std::istringstream is(out.str());
    auto back = readArrivalTrace(is);
    ASSERT_EQ(back.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(static_cast<double>(back[i]),
                    static_cast<double>(in[i]), 2.0);
}

TEST(TraceIo, SkipsCommentsAndExtraColumns)
{
    std::istringstream is(
        "# comment\n0.5 extra tokens here\n\n1.5\n");
    auto t = readArrivalTrace(is);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], 500 * msec);
    EXPECT_EQ(t[1], 1 * sec + 500 * msec);
}

TEST(TraceIo, RejectsBackwardsTimestamps)
{
    std::istringstream is("2.0\n1.0\n");
    EXPECT_THROW(readArrivalTrace(is), FatalError);
}

TEST(TraceIo, RejectsGarbage)
{
    std::istringstream is("not-a-number\n");
    EXPECT_THROW(readArrivalTrace(is), FatalError);
}

TEST(WikipediaTrace, RateAndSortedness)
{
    WikipediaTraceParams p;
    p.duration = 600 * sec;
    p.baseRate = 80.0;
    auto trace = makeWikipediaTrace(p, Rng(1, "wiki"));
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
    EXPECT_TRUE(trace.back() < p.duration);
    // Long-run rate should be near the base rate (diurnal and noise
    // average out).
    EXPECT_NEAR(traceRate(trace), p.baseRate, p.baseRate * 0.25);
}

TEST(WikipediaTrace, DiurnalSwingVisible)
{
    WikipediaTraceParams p;
    p.duration = 3600 * sec;
    p.diurnalPeriod = 3600 * sec;
    p.baseRate = 100.0;
    p.diurnalAmplitude = 0.5;
    p.noiseLevel = 0.05;
    p.burstProbability = 0.0;
    auto trace = makeWikipediaTrace(p, Rng(2, "wiki"));
    // Count arrivals in the peak quarter (centered on sin=+1, i.e.
    // t in [T/8, 3T/8)) vs the trough quarter ([5T/8, 7T/8)).
    auto count_in = [&](Tick lo, Tick hi) {
        return std::count_if(trace.begin(), trace.end(), [&](Tick t) {
            return t >= lo && t < hi;
        });
    };
    auto peak = count_in(450 * sec, 1350 * sec);
    auto trough = count_in(2250 * sec, 3150 * sec);
    EXPECT_GT(peak, trough * 2);
}

TEST(WikipediaTrace, DeterministicForSeed)
{
    WikipediaTraceParams p;
    p.duration = 60 * sec;
    auto a = makeWikipediaTrace(p, Rng(3, "wiki"));
    auto b = makeWikipediaTrace(p, Rng(3, "wiki"));
    EXPECT_EQ(a, b);
}

TEST(WikipediaTrace, RejectsBadParams)
{
    WikipediaTraceParams p;
    p.baseRate = 0.0;
    EXPECT_THROW(makeWikipediaTrace(p, Rng(1)), FatalError);
    p = WikipediaTraceParams{};
    p.diurnalAmplitude = 2.5;
    EXPECT_THROW(makeWikipediaTrace(p, Rng(1)), FatalError);
    // Clipped amplitudes above 1 are legal: troughs pin at rate 0.
    p.diurnalAmplitude = 1.3;
    p.duration = 30 * sec;
    EXPECT_NO_THROW(makeWikipediaTrace(p, Rng(1)));
}

TEST(NlanrTrace, RateAndSortedness)
{
    NlanrTraceParams p;
    p.duration = 500 * sec;
    p.baseRate = 40.0;
    auto trace = makeNlanrTrace(p, Rng(4, "nlanr"));
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
    EXPECT_NEAR(traceRate(trace), p.baseRate, p.baseRate * 0.3);
}

TEST(NlanrTrace, HasRateLevelShifts)
{
    NlanrTraceParams p;
    p.duration = 1000 * sec;
    p.baseRate = 50.0;
    p.levelSpread = 0.8;
    p.meanLevelLength = 50 * sec;
    auto trace = makeNlanrTrace(p, Rng(5, "nlanr"));
    // Per-100s window rates should vary substantially more than
    // Poisson sampling noise alone (sigma/mu ~ 1/sqrt(5000) ~ 1.4%).
    std::vector<double> window_rates;
    for (Tick w = 0; w + 100 * sec <= p.duration; w += 100 * sec) {
        auto count = std::count_if(
            trace.begin(), trace.end(),
            [&](Tick t) { return t >= w && t < w + 100 * sec; });
        window_rates.push_back(count / 100.0);
    }
    double sum = 0, sumsq = 0;
    for (double r : window_rates) {
        sum += r;
        sumsq += r * r;
    }
    double mean = sum / window_rates.size();
    double cv =
        std::sqrt(sumsq / window_rates.size() - mean * mean) / mean;
    EXPECT_GT(cv, 0.05);
}

TEST(RescaleTrace, HitsTargetRate)
{
    NlanrTraceParams p;
    p.duration = 300 * sec;
    p.baseRate = 50.0;
    auto trace = makeNlanrTrace(p, Rng(6, "nlanr"));
    for (double target : {10.0, 120.0}) {
        auto scaled = rescaleTraceRate(trace, target, Rng(7, "scale"));
        EXPECT_TRUE(std::is_sorted(scaled.begin(), scaled.end()));
        EXPECT_NEAR(traceRate(scaled), target, target * 0.15);
    }
}

TEST(RescaleTrace, PreservesShape)
{
    // Scaling down a bursty trace must keep the burst located where
    // it was: compare first-half/second-half arrival ratio.
    std::vector<Tick> trace;
    for (int i = 0; i < 9000; ++i) // dense first half
        trace.push_back(static_cast<Tick>(i) * 10 * msec / 90);
    for (int i = 0; i < 1000; ++i) // sparse second half
        trace.push_back(1 * sec + static_cast<Tick>(i) * msec);
    std::sort(trace.begin(), trace.end());
    auto scaled = rescaleTraceRate(trace, traceRate(trace) / 5.0,
                                   Rng(8, "scale"));
    auto half = std::lower_bound(scaled.begin(), scaled.end(), 1 * sec) -
                scaled.begin();
    double first_frac = static_cast<double>(half) / scaled.size();
    EXPECT_GT(first_frac, 0.8);
}

TEST(TraceRate, EdgeCases)
{
    EXPECT_DOUBLE_EQ(traceRate({}), 0.0);
    EXPECT_DOUBLE_EQ(traceRate({5}), 0.0);
    EXPECT_DOUBLE_EQ(traceRate({0, 0}), 0.0);
    EXPECT_NEAR(traceRate({0, 1 * sec, 2 * sec}), 1.0, 1e-9);
}
