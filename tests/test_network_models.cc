/**
 * @file
 * Differential tests for the selectable network-model tiers
 * (`[network] model = exact | fluid | hybrid`).
 *
 * The contract under test:
 *
 *  - fluid vs exact: identical max-min allocations, so flow
 *    completion ticks agree within floating-point rounding. The
 *    fluid model settles only the dirty component at each change
 *    while the exact model settles every flow, so `remainingBits`
 *    accumulates through a different sequence of double additions;
 *    the divergence is bounded by ulp-level relative error. We
 *    assert agreement within 2 ticks + 1e-6 relative -- orders of
 *    magnitude looser than the observed drift, orders tighter than
 *    any behavioral difference.
 *
 *  - hybrid vs exact at fast-path threshold 0: the *same* code path
 *    (FlowManager with the fast path never taken), so completion
 *    tick sequences and solver counters must match exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "network/flow_manager.hh"
#include "network/fluid/fluid_flow_model.hh"
#include "network/fluid/net_model.hh"
#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

constexpr Tick lat = 5 * usec;

std::unique_ptr<NetModel>
makeBackend(Simulator &sim, const Topology &topo, NetModelKind kind,
            Bytes fast_path = 0)
{
    NetModelConfig cfg;
    cfg.kind = kind;
    cfg.fastPathBytes = fast_path;
    return makeNetModel(sim, topo, cfg);
}

/**
 * Random connected topology: a random tree over 2-5 switches with a
 * few redundant switch-switch links, 4-10 servers attached to random
 * switches, and link rates drawn from {0.5, 1, 2, 4} Gb/s so the
 * water filling runs multiple freeze rounds.
 */
Topology
randomTopology(Rng &rng)
{
    Topology topo;
    const unsigned n_sw = 2 + rng.uniformInt(0, 3);
    const unsigned n_srv = 4 + rng.uniformInt(0, 6);
    const double rates[] = {0.5e9, 1e9, 2e9, 4e9};
    auto rate = [&] { return rates[rng.uniformInt(0, 3)]; };

    std::vector<NodeId> sw;
    for (unsigned i = 0; i < n_sw; ++i)
        sw.push_back(topo.addSwitch());
    for (unsigned i = 1; i < n_sw; ++i)
        topo.addLink(sw[rng.uniformInt(0, i - 1)], sw[i], rate(), lat);
    // Redundant trunks exercise ECMP route diversity.
    for (unsigned i = 0; i + 1 < n_sw && i < 2; ++i) {
        unsigned a = rng.uniformInt(0, n_sw - 1);
        unsigned b = rng.uniformInt(0, n_sw - 2);
        if (b >= a)
            ++b;
        topo.addLink(sw[a], sw[b], rate(), lat);
    }
    for (unsigned i = 0; i < n_srv; ++i) {
        NodeId s = topo.addServer();
        topo.addLink(s, sw[rng.uniformInt(0, n_sw - 1)], rate(), lat);
    }
    return topo;
}

/** One scripted flow: start, size, optional abort. */
struct FlowOp {
    Tick startAt;
    Route route;
    Bytes bytes;
    Tick abortAt; // 0 = never
};

/**
 * Random churn script over @p topo: flows start within 50 ms, are
 * large enough (>= 10 MB) that none completes before 5 ms, and a
 * third are aborted within (start, start + 4 ms] -- safely before
 * any completion, so abort/complete ordering cannot differ between
 * backends inside the comparison tolerance.
 */
std::vector<FlowOp>
randomScript(const Topology &topo, Rng &rng, std::size_t n_flows)
{
    StaticRouting routing(topo);
    std::vector<FlowOp> script;
    for (std::size_t i = 0; i < n_flows; ++i) {
        FlowOp op;
        std::size_t src = rng.uniformInt(0, topo.numServers() - 1);
        std::size_t dst = rng.uniformInt(0, topo.numServers() - 2);
        if (dst >= src)
            ++dst;
        op.route = routing.route(topo.serverNode(src),
                                 topo.serverNode(dst), i);
        op.bytes = 10'000'000 + 1'000'000 * rng.uniformInt(0, 40);
        op.startAt = rng.uniformInt(0, 50) * msec;
        op.abortAt = rng.uniformInt(0, 2) == 0
                         ? op.startAt + rng.uniformInt(1, 4) * msec
                         : 0;
        script.push_back(op);
    }
    return script;
}

struct RunResult {
    std::vector<Tick> doneAt;  // maxTick when never completed
    std::vector<char> aborted;
    NetSolverStats stats;
    std::uint64_t completed = 0;
};

/** Replay @p script under one backend and record completions. */
RunResult
runScript(const Topology &topo, const std::vector<FlowOp> &script,
          NetModelKind kind, Bytes fast_path = 0)
{
    Simulator sim;
    auto model = makeBackend(sim, topo, kind, fast_path);
    RunResult res;
    res.doneAt.assign(script.size(), maxTick);
    res.aborted.assign(script.size(), 0);

    std::vector<FlowId> ids(script.size(), 0);
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (std::size_t i = 0; i < script.size(); ++i) {
        const FlowOp &op = script[i];
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&, i] {
                ids[i] = model->startFlow(
                    script[i].route, script[i].bytes,
                    [&res, i, &sim] { res.doneAt[i] = sim.curTick(); });
                model->setAbortCallback(
                    ids[i], [&res, i] { res.aborted[i] = 1; });
            },
            "start"));
        sim.schedule(*events.back(), op.startAt);
        if (op.abortAt != 0) {
            events.push_back(std::make_unique<EventFunctionWrapper>(
                [&, i] { model->abortFlow(ids[i]); }, "abort"));
            sim.schedule(*events.back(), op.abortAt);
        }
    }
    sim.run();
    res.stats = model->solverStats();
    res.completed = model->flowsCompleted();
    return res;
}

} // namespace

// ------------------------------------------------- differential equivalence

class ModelEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

/**
 * fluid completion ticks match exact within the documented
 * floating-point tolerance on random topologies under random churn.
 */
TEST_P(ModelEquivalence, FluidMatchesExactWithinTolerance)
{
    Rng rng(GetParam());
    Topology topo = randomTopology(rng);
    auto script = randomScript(topo, rng, 24);

    RunResult exact = runScript(topo, script, NetModelKind::exact);
    RunResult fluid = runScript(topo, script, NetModelKind::fluid);

    ASSERT_EQ(exact.completed, fluid.completed);
    for (std::size_t i = 0; i < script.size(); ++i) {
        SCOPED_TRACE("flow " + std::to_string(i));
        ASSERT_EQ(exact.aborted[i], fluid.aborted[i]);
        if (exact.doneAt[i] == maxTick) {
            EXPECT_EQ(fluid.doneAt[i], maxTick);
            continue;
        }
        // Documented tolerance: 2 ticks absolute + 1e-6 relative
        // (see file header).
        double tol =
            2.0 + 1e-6 * static_cast<double>(exact.doneAt[i]);
        EXPECT_NEAR(static_cast<double>(exact.doneAt[i]),
                    static_cast<double>(fluid.doneAt[i]), tol);
    }
    // The fluid model must not have solved *more* flow-updates than
    // the global model (it re-solves a subset per change).
    EXPECT_LE(fluid.stats.resolvedFlows, exact.stats.resolvedFlows);
}

/** hybrid with the fast path disabled is byte-identical to exact. */
TEST_P(ModelEquivalence, HybridThresholdZeroIsExact)
{
    Rng rng(GetParam());
    Topology topo = randomTopology(rng);
    auto script = randomScript(topo, rng, 24);

    RunResult exact = runScript(topo, script, NetModelKind::exact);
    RunResult hybrid =
        runScript(topo, script, NetModelKind::hybrid, /*fast_path=*/0);

    EXPECT_EQ(exact.doneAt, hybrid.doneAt);
    EXPECT_EQ(exact.aborted, hybrid.aborted);
    EXPECT_EQ(exact.completed, hybrid.completed);
    EXPECT_EQ(exact.stats.resolves, hybrid.stats.resolves);
    EXPECT_EQ(exact.stats.resolvedFlows, hybrid.stats.resolvedFlows);
    EXPECT_EQ(hybrid.stats.fastPathHits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

// ------------------------------------------------------------ fast path

namespace {

/** Fluid and hybrid share fast-path semantics; test both. */
class FastPath : public ::testing::TestWithParam<NetModelKind>
{};

} // namespace

TEST_P(FastPath, ShortTransferCompletesAnalytically)
{
    Topology topo = Topology::star(4, 1e9, lat);
    StaticRouting routing(topo);
    Route r = routing.route(topo.serverNode(0), topo.serverNode(1));

    Simulator sim;
    auto model = makeBackend(sim, topo, GetParam(),
                             /*fast_path=*/64 * 1024);
    const Bytes bytes = 1500;
    const Tick start_delay = 3 * usec;
    Tick done_at = 0;
    model->startFlow(r, bytes, [&] { done_at = sim.curTick(); },
                     start_delay);
    sim.run();

    EXPECT_EQ(done_at, start_delay + fastPathDuration(topo, r, bytes));
    EXPECT_EQ(model->flowsCompleted(), 1u);
    EXPECT_EQ(model->solverStats().fastPathHits, 1u);
    EXPECT_EQ(model->solverStats().resolves, 0u);
}

TEST_P(FastPath, LargeTransferStillUsesSolver)
{
    Topology topo = Topology::star(4, 1e9, lat);
    StaticRouting routing(topo);
    Route r = routing.route(topo.serverNode(0), topo.serverNode(1));

    Simulator sim;
    auto model = makeBackend(sim, topo, GetParam(),
                             /*fast_path=*/1024);
    Tick done_at = 0;
    model->startFlow(r, 125'000'000,
                     [&] { done_at = sim.curTick(); });
    sim.run();

    // 1 Gb at 1 Gb/s: about one second, via the solver.
    EXPECT_NEAR(toSeconds(done_at), 1.0, 0.01);
    EXPECT_EQ(model->solverStats().fastPathHits, 0u);
    EXPECT_GE(model->solverStats().resolves, 1u);
}

INSTANTIATE_TEST_SUITE_P(Tiers, FastPath,
                         ::testing::Values(NetModelKind::fluid,
                                           NetModelKind::hybrid),
                         [](const auto &info) {
                             return toString(info.param);
                         });

// ----------------------------------------------------- structured aborts

namespace {

class SolverAbort : public ::testing::TestWithParam<NetModelKind>
{};

} // namespace

/**
 * An infinite-capacity link makes every share infinite: the solver
 * can find no bottleneck and must abort with a structured dump
 * naming the offending flow instead of a bare panic.
 */
TEST_P(SolverAbort, NoBottleneckAbortsWithDiagnostic)
{
    Topology topo;
    NodeId a = topo.addServer(), b = topo.addServer();
    topo.addLink(a, b, std::numeric_limits<double>::infinity(), lat);
    Route r;
    r.links = {0};
    r.nodes = {a, b};

    Simulator sim;
    auto model = makeBackend(sim, topo, GetParam());
    model->startFlow(r, 1'000'000, [] {});
    try {
        sim.run();
        FAIL() << "expected SimAbortError";
    } catch (const SimAbortError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("no bottleneck"), std::string::npos)
            << what;
        EXPECT_NE(what.find("flow 0"), std::string::npos) << what;
    }
}

INSTANTIATE_TEST_SUITE_P(Tiers, SolverAbort,
                         ::testing::Values(NetModelKind::exact,
                                           NetModelKind::fluid),
                         [](const auto &info) {
                             return toString(info.param);
                         });

// ------------------------------------------------------- fluid specifics

namespace {

struct FluidFixture : ::testing::Test {
    Simulator sim;
};

} // namespace

TEST_F(FluidFixture, BulkLoadMatchesIncrementalActivation)
{
    Topology topo = Topology::star(8, 1e9, lat);
    StaticRouting routing(topo);
    std::vector<Route> routes;
    for (std::size_t i = 0; i < 12; ++i)
        routes.push_back(routing.route(topo.serverNode(i % 8),
                                       topo.serverNode((i + 3) % 8),
                                       i));

    Simulator s_bulk;
    auto bulk_model = makeBackend(s_bulk, topo, NetModelKind::fluid);
    bulk_model->beginBulkLoad();
    std::vector<FlowId> bulk_ids;
    for (const Route &r : routes)
        bulk_ids.push_back(
            bulk_model->startFlow(r, 1'000'000'000'000, [] {}));
    s_bulk.runUntil(0); // activations fire, suppressed per-flow solve
    bulk_model->endBulkLoad();

    Simulator s_inc;
    auto inc_model = makeBackend(s_inc, topo, NetModelKind::fluid);
    std::vector<FlowId> inc_ids;
    for (const Route &r : routes)
        inc_ids.push_back(
            inc_model->startFlow(r, 1'000'000'000'000, [] {}));
    s_inc.runUntil(0);

    for (std::size_t i = 0; i < routes.size(); ++i) {
        SCOPED_TRACE("flow " + std::to_string(i));
        EXPECT_DOUBLE_EQ(bulk_model->flowRate(bulk_ids[i]),
                         inc_model->flowRate(inc_ids[i]));
    }
    // The whole point: one resolve instead of one per activation.
    EXPECT_EQ(bulk_model->solverStats().resolves, 1u);
    EXPECT_EQ(inc_model->solverStats().resolves, routes.size());
}

TEST_F(FluidFixture, LinkFailureInvalidatesTouchedComponent)
{
    // Dumbbell: s0--sw0==sw1--s1, plus s2--sw0, s3--sw1. Two flows
    // share the trunk; killing one via link failure must re-share
    // the trunk for the survivor.
    Topology topo;
    NodeId sw0 = topo.addSwitch(), sw1 = topo.addSwitch();
    NodeId s0 = topo.addServer(), s1 = topo.addServer();
    NodeId s2 = topo.addServer(), s3 = topo.addServer();
    LinkId l_s0 = topo.addLink(s0, sw0, 1e9, lat);
    topo.addLink(s1, sw1, 1e9, lat);
    LinkId l_s2 = topo.addLink(s2, sw0, 1e9, lat);
    topo.addLink(s3, sw1, 1e9, lat);
    LinkId trunk = topo.addLink(sw0, sw1, 1e9, lat);
    StaticRouting routing(topo);

    auto model = makeBackend(sim, topo, NetModelKind::fluid);
    FlowId f_a = model->startFlow(routing.route(s0, s1),
                                  1'000'000'000'000, [] {});
    FlowId f_b = model->startFlow(routing.route(s2, s3),
                                  1'000'000'000'000, [] {});
    bool b_aborted = false;
    model->setAbortCallback(f_b, [&] { b_aborted = true; });
    sim.runUntil(0);
    EXPECT_NEAR(model->flowRate(f_a), 0.5e9, 1e3);
    EXPECT_NEAR(model->flowRate(f_b), 0.5e9, 1e3);
    EXPECT_NEAR(model->linkUtilization(trunk), 1.0, 1e-6);

    // s2's access link fails: flow b dies, flow a gets the trunk.
    EXPECT_EQ(model->abortFlowsOn(l_s2), 1u);
    model->linkHealthChanged(l_s2, false);
    EXPECT_TRUE(b_aborted);
    EXPECT_EQ(model->flowsAborted(), 1u);
    EXPECT_NEAR(model->flowRate(f_a), 1e9, 1e3);

    // A repair on an untouched link must not disturb flow a's rate
    // but is still counted as solver work.
    model->linkHealthChanged(l_s2, true);
    EXPECT_NEAR(model->flowRate(f_a), 1e9, 1e3);
    (void)l_s0;
}

TEST_F(FluidFixture, ZeroHopRouteCompletesAfterStartDelay)
{
    Topology topo = Topology::star(4, 1e9, lat);
    auto model = makeBackend(sim, topo, NetModelKind::fluid);
    Tick done_at = maxTick;
    model->startFlow(Route{}, 1'000'000,
                     [&] { done_at = sim.curTick(); }, 7 * usec);
    sim.run();
    EXPECT_EQ(done_at, 7 * usec);
    EXPECT_EQ(model->solverStats().resolves, 0u);
}

TEST_F(FluidFixture, AbortFlowsOnKillsPendingFastPathFlows)
{
    Topology topo = Topology::star(4, 1e9, lat);
    StaticRouting routing(topo);
    Route r = routing.route(topo.serverNode(0), topo.serverNode(1));
    ASSERT_FALSE(r.links.empty());
    LinkId first = r.links.front();

    auto model = makeBackend(sim, topo, NetModelKind::fluid,
                             /*fast_path=*/64 * 1024);
    bool done = false, aborted = false;
    FlowId f =
        model->startFlow(r, 1500, [&] { done = true; }, 1 * msec);
    model->setAbortCallback(f, [&] { aborted = true; });
    sim.runUntil(0);
    EXPECT_EQ(model->abortFlowsOn(first), 1u);
    sim.run();
    EXPECT_TRUE(aborted);
    EXPECT_FALSE(done);
}

// ------------------------------------------------ config-string plumbing

TEST(NetModelKindStrings, RoundTrip)
{
    for (NetModelKind kind :
         {NetModelKind::exact, NetModelKind::fluid,
          NetModelKind::hybrid})
        EXPECT_EQ(parseNetModelKind(toString(kind)), kind);
    EXPECT_THROW(parseNetModelKind("packet"), FatalError);
}

TEST(NetModelFactory, BackendsReportTheirTier)
{
    Topology topo = Topology::star(2, 1e9, lat);
    Simulator sim;
    EXPECT_STREQ(
        makeBackend(sim, topo, NetModelKind::exact)->modelName(),
        "exact");
    EXPECT_STREQ(
        makeBackend(sim, topo, NetModelKind::fluid)->modelName(),
        "fluid");
    EXPECT_STREQ(makeBackend(sim, topo, NetModelKind::hybrid, 1024)
                     ->modelName(),
                 "hybrid");
}
