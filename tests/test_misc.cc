/**
 * @file
 * Focused tests for smaller API surfaces: background events, port
 * and line-card off states, flow-manager introspection, bulk-send
 * edge cases, scheduler load metrics and config plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dc/dc_config.hh"
#include "network/flow_manager.hh"
#include "network/network.hh"
#include "sched/global_scheduler.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/arrival.hh"

using namespace holdcsim;

// ------------------------------------------------------- background events

TEST(BackgroundEvents, RunReturnsWhenOnlyBackgroundRemain)
{
    Simulator sim;
    int fg = 0, bg = 0;
    EventFunctionWrapper fg_ev([&] { ++fg; }, "fg");
    EventFunctionWrapper bg_ev([&] { ++bg; }, "bg");
    bg_ev.setBackground(true);
    sim.schedule(fg_ev, 10);
    sim.schedule(bg_ev, 20);
    sim.run();
    // The foreground event ran; the background one is still pending
    // and did not keep the simulation alive.
    EXPECT_EQ(fg, 1);
    EXPECT_EQ(bg, 0);
    EXPECT_EQ(sim.curTick(), 10u);
    EXPECT_TRUE(bg_ev.scheduled());
    EXPECT_EQ(sim.eventQueue().foregroundCount(), 0u);
    EXPECT_EQ(sim.eventQueue().size(), 1u);
    sim.deschedule(bg_ev);
}

TEST(BackgroundEvents, RunUntilStillProcessesBackground)
{
    Simulator sim;
    int bg = 0;
    EventFunctionWrapper bg_ev(
        [&] {
            ++bg;
            if (bg < 3)
                sim.scheduleAfter(bg_ev, 10);
        },
        "bg");
    bg_ev.setBackground(true);
    sim.schedule(bg_ev, 10);
    sim.runUntil(100);
    EXPECT_EQ(bg, 3);
}

TEST(BackgroundEvents, CannotFlipWhileScheduled)
{
    Simulator sim;
    EventFunctionWrapper ev([] {}, "ev");
    sim.schedule(ev, 1);
    EXPECT_DEATH(ev.setBackground(true), "background");
    sim.deschedule(ev);
    EXPECT_NO_THROW(ev.setBackground(true));
}

TEST(BackgroundEvents, ForegroundCountTracksMixedOperations)
{
    EventQueue q;
    EventFunctionWrapper a([] {}, "a"), b([] {}, "b");
    b.setBackground(true);
    q.schedule(a, 1);
    q.schedule(b, 2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.foregroundCount(), 1u);
    q.deschedule(a);
    EXPECT_EQ(q.foregroundCount(), 0u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(&q.pop(), &b);
    EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------- port/card off

TEST(PortOff, OffPortsDrawNothingAndRejectTraffic)
{
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    SwitchConfig cfg;
    cfg.portRates.assign(2, 1e9);
    Switch sw(sim, cfg, prof);
    sw.port(0).powerOff();
    EXPECT_EQ(sw.port(0).state(), PortState::off);
    EXPECT_DOUBLE_EQ(sw.port(0).power(), prof.portOff);
    // Waking an off port for traffic is a configuration error.
    EXPECT_THROW(sw.port(0).wake(), FatalError);
    // The other port still works.
    EXPECT_EQ(sw.port(1).wake(), 0u);
}

TEST(PortOff, LineCardOffRejectedWhileBusy)
{
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    SwitchConfig cfg;
    cfg.portRates.assign(2, 1e9);
    Switch sw(sim, cfg, prof);
    sw.port(0).flowStarted();
    EXPECT_THROW(sw.lineCard(0).powerOff(), FatalError);
    sw.port(0).flowEnded();
    EXPECT_NO_THROW(sw.lineCard(0).powerOff());
    EXPECT_EQ(sw.lineCard(0).state(), LineCardState::off);
    EXPECT_DOUBLE_EQ(sw.lineCard(0).power(), prof.linecardOff);
}

TEST(SwitchSleep, TrySleepRefusedWhileBusy)
{
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    SwitchConfig cfg;
    cfg.portRates.assign(2, 1e9);
    Switch sw(sim, cfg, prof);
    sw.port(0).flowStarted();
    EXPECT_FALSE(sw.trySleep());
    sw.port(0).flowEnded();
    EXPECT_TRUE(sw.trySleep());
    EXPECT_TRUE(sw.asleep());
    EXPECT_TRUE(sw.trySleep()); // idempotent
}

// ------------------------------------------------------ flow introspection

TEST(FlowIntrospection, RatesAndUtilization)
{
    Simulator sim;
    auto topo = Topology::star(3, 1e9, 5 * usec);
    StaticRouting routing(topo);
    FlowManager mgr(sim, topo);
    auto route_a = routing.route(topo.serverNode(0),
                                 topo.serverNode(1), 1);
    auto route_b = routing.route(topo.serverNode(2),
                                 topo.serverNode(1), 2);
    LinkId shared = route_a.links.back(); // server 1's downlink
    FlowId a = mgr.startFlow(route_a, 125'000'000, [] {});
    FlowId b = mgr.startFlow(route_b, 125'000'000, [] {});
    sim.runUntil(10 * msec); // both active and sharing
    EXPECT_NEAR(mgr.flowRate(a), 5e8, 1e6);
    EXPECT_NEAR(mgr.flowRate(b), 5e8, 1e6);
    EXPECT_NEAR(mgr.linkUtilization(shared), 1.0, 0.01);
    EXPECT_DOUBLE_EQ(mgr.flowRate(999), 0.0); // unknown flow
    sim.run();
    EXPECT_EQ(mgr.flowsCompleted(), 2u);
}

// ------------------------------------------------------------- bulk sends

TEST(BulkSend, ZeroBytesStillCompletes)
{
    Simulator sim;
    Network net(sim, Topology::star(2, 1e9, 5 * usec),
                SwitchPowerProfile::cisco2960_24());
    bool done = false;
    net.sendBulk(0, 1, 0, [&](std::uint64_t drops) {
        done = true;
        EXPECT_EQ(drops, 0u);
    });
    sim.run();
    EXPECT_TRUE(done);
}

TEST(BulkSend, NicPacingPreservesOrderAcrossMessages)
{
    // Two back-to-back bulk sends from one server: all of the first
    // message's packets leave the NIC before the second's arrive.
    Simulator sim;
    Network net(sim, Topology::star(3, 1e9, 5 * usec),
                SwitchPowerProfile::cisco2960_24());
    Tick first_done = 0, second_done = 0;
    net.sendBulk(0, 1, 15'000,
                 [&](std::uint64_t) { first_done = sim.curTick(); });
    net.sendBulk(0, 2, 15'000,
                 [&](std::uint64_t) { second_done = sim.curTick(); });
    sim.run();
    EXPECT_GT(first_done, 0u);
    EXPECT_GT(second_done, first_done);
}

// --------------------------------------------------------- scheduler misc

TEST(SchedulerLoad, LoadPerEligibleCountsGlobalQueue)
{
    Simulator sim;
    ServerPowerProfile prof;
    ServerConfig cfg;
    cfg.nCores = 1;
    Server s0(sim, cfg, prof);
    GlobalSchedulerConfig gsc;
    gsc.useGlobalQueue = true;
    GlobalScheduler sched(sim, {&s0},
                          std::make_unique<LeastLoadedPolicy>(), gsc);
    for (JobId i = 0; i < 5; ++i) {
        Job j(i, 0);
        j.addTask(TaskSpec{10 * msec, 0, 1.0});
        j.validate();
        sched.submitJob(std::move(j));
    }
    // One running, four centrally queued: load = 5 on 1 server.
    EXPECT_EQ(sched.globalQueueLength(), 4u);
    EXPECT_DOUBLE_EQ(sched.loadPerEligibleServer(), 5.0);
    sim.run();
    EXPECT_DOUBLE_EQ(sched.loadPerEligibleServer(), 0.0);
}

TEST(SchedulerLoad, ZeroEligibleIsZeroLoad)
{
    Simulator sim;
    ServerPowerProfile prof;
    ServerConfig cfg;
    Server s0(sim, cfg, prof);
    GlobalScheduler sched(sim, {&s0},
                          std::make_unique<LeastLoadedPolicy>());
    sched.setEligible(0, false);
    EXPECT_DOUBLE_EQ(sched.loadPerEligibleServer(), 0.0);
}

// ------------------------------------------------------------ config keys

TEST(DcConfigExtra, AntiAffinityKeyParsed)
{
    auto cfg = DataCenterConfig::fromConfig(Config::parseString(
        "[scheduler]\nanti_affinity = true\n"));
    EXPECT_TRUE(cfg.taskAntiAffinity);
    auto off = DataCenterConfig::fromConfig(Config::parseString(""));
    EXPECT_FALSE(off.taskAntiAffinity);
}

TEST(ProfileLifetime, TemporaryProfilesDoNotDangle)
{
    // Regression: Server/Switch used to hold references to the
    // caller's profile; constructing them with a temporary produced
    // garbage transition latencies (LPI timers thousands of seconds
    // out). Components now own a copy.
    Simulator sim;
    Network net(sim, Topology::star(2, 1e9, 5 * usec),
                SwitchPowerProfile::cisco2960_24()); // temporary!
    ServerConfig cfg;
    Server server(sim, cfg, ServerPowerProfile{}); // temporary!
    server.submit(TaskRef{0, 0, 1 * msec, 1.0, 0});
    bool got = false;
    net.sendPacket(0, 1, 1500, [&](const Packet &) { got = true; });
    sim.run();
    EXPECT_TRUE(got);
    // The drained simulation must end on a sane clock: task (1 ms) +
    // demotions/LPI thresholds, not a garbage-latency event horizon.
    EXPECT_LT(sim.curTick(), 1 * sec);
}

TEST(Mmpp2Extra, StartsInQuietState)
{
    Mmpp2Arrival arr(100.0, 10.0, 1.0, 1.0, Rng(1, "m"));
    EXPECT_FALSE(arr.inBurstyState());
}
