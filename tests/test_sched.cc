/**
 * @file
 * Tests for dispatch policies and the global scheduler, including
 * DAG dependence handling, the global task queue and network
 * transfers between dependent tasks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/network.hh"
#include "sched/dispatch_policy.hh"
#include "sched/global_scheduler.hh"
#include "server/power_controller.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/job.hh"

using namespace holdcsim;

namespace {

struct SchedFixture : ::testing::Test {
    Simulator sim;
    ServerPowerProfile prof;
    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    std::unique_ptr<Network> net;
    std::unique_ptr<GlobalScheduler> sched;
    std::vector<std::pair<JobId, Tick>> finished;

    void
    makeFleet(unsigned n, unsigned cores = 1)
    {
        for (unsigned i = 0; i < n; ++i) {
            ServerConfig cfg;
            cfg.id = i;
            cfg.nCores = cores;
            owned.push_back(
                std::make_unique<Server>(sim, cfg, prof));
            servers.push_back(owned.back().get());
        }
    }

    void
    makeScheduler(std::unique_ptr<DispatchPolicy> policy,
                  GlobalSchedulerConfig cfg = {},
                  Network *network = nullptr)
    {
        sched = std::make_unique<GlobalScheduler>(
            sim, servers, std::move(policy), cfg, network);
        sched->setJobDoneCallback([this](JobId id, Tick lat) {
            finished.emplace_back(id, lat);
        });
    }

    Job
    singleTaskJob(JobId id, Tick service, Tick arrival = 0)
    {
        Job j(id, arrival);
        j.addTask(TaskSpec{service, 0, 1.0});
        j.validate();
        return j;
    }
};

} // namespace

// ---------------------------------------------------------- dispatch policies

TEST_F(SchedFixture, RoundRobinCycles)
{
    makeFleet(3);
    RoundRobinPolicy p;
    std::vector<std::size_t> all{0, 1, 2};
    TaskRef t{0, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    EXPECT_EQ(p.pick(all, servers, ctx), 0u);
    EXPECT_EQ(p.pick(all, servers, ctx), 1u);
    EXPECT_EQ(p.pick(all, servers, ctx), 2u);
    EXPECT_EQ(p.pick(all, servers, ctx), 0u);
}

TEST_F(SchedFixture, RoundRobinSkipsIneligible)
{
    makeFleet(4);
    RoundRobinPolicy p;
    TaskRef t{0, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    std::vector<std::size_t> some{1, 3};
    EXPECT_EQ(p.pick(some, servers, ctx), 1u);
    EXPECT_EQ(p.pick(some, servers, ctx), 3u);
    EXPECT_EQ(p.pick(some, servers, ctx), 1u);
}

TEST_F(SchedFixture, LeastLoadedPicksMin)
{
    makeFleet(3, 2);
    servers[0]->submit(TaskRef{0, 0, 10 * msec, 1.0, 0});
    servers[0]->submit(TaskRef{1, 0, 10 * msec, 1.0, 0});
    servers[1]->submit(TaskRef{2, 0, 10 * msec, 1.0, 0});
    LeastLoadedPolicy p;
    TaskRef t{9, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    EXPECT_EQ(p.pick({0, 1, 2}, servers, ctx), 2u);
    sim.run();
}

TEST_F(SchedFixture, RandomStaysInCandidates)
{
    makeFleet(5);
    RandomPolicy p(Rng(3, "test"));
    TaskRef t{0, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    std::vector<std::size_t> some{1, 3, 4};
    for (int i = 0; i < 100; ++i) {
        std::size_t c = p.pick(some, servers, ctx);
        EXPECT_TRUE(c == 1 || c == 3 || c == 4);
    }
}

TEST_F(SchedFixture, PreferredPoolSpillsOnlyWhenDeeplyQueued)
{
    makeFleet(4, 1);
    PreferredPoolPolicy p({0, 1}, /*spill_depth=*/2.0);
    TaskRef t{0, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    std::vector<std::size_t> all{0, 1, 2, 3};
    // Preferred pool first.
    EXPECT_EQ(p.pick(all, servers, ctx), 0u);
    servers[0]->submit(TaskRef{0, 0, 100 * msec, 1.0, 0});
    EXPECT_EQ(p.pick(all, servers, ctx), 1u);
    servers[1]->submit(TaskRef{1, 0, 100 * msec, 1.0, 0});
    // Both preferred busy: moderate queuing is still preferred over
    // engaging the low pool (load < spill_depth * cores).
    std::size_t c = p.pick(all, servers, ctx);
    EXPECT_TRUE(c == 0 || c == 1);
    servers[0]->submit(TaskRef{2, 0, 100 * msec, 1.0, 0});
    servers[1]->submit(TaskRef{3, 0, 100 * msec, 1.0, 0});
    // Queues at the spill threshold: now work spills to the low
    // pool (both its servers are awake with free cores).
    c = p.pick(all, servers, ctx);
    EXPECT_TRUE(c == 2 || c == 3);
    sim.run();
}

TEST_F(SchedFixture, PreferredPoolSpillPrefersAwakeServers)
{
    makeFleet(4, 1);
    PreferredPoolPolicy p({0}, /*spill_depth=*/1.0);
    TaskRef t{0, 0, msec, 1.0, 0};
    DispatchContext ctx{t, std::nullopt};
    std::vector<std::size_t> all{0, 1, 2, 3};
    // Saturate the preferred server and suspend server 2.
    servers[0]->submit(TaskRef{0, 0, 100 * msec, 1.0, 0});
    ASSERT_TRUE(servers[2]->sleep());
    // Spill must pick an awake low-pool server, never sleeping 2.
    for (int i = 0; i < 10; ++i) {
        std::size_t c = p.pick(all, servers, ctx);
        EXPECT_TRUE(c == 1 || c == 3);
    }
    sim.run();
}

// ----------------------------------------------------------- scheduler core

TEST_F(SchedFixture, SingleJobCompletesWithLatency)
{
    makeFleet(2);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    sched->submitJob(singleTaskJob(7, 5 * msec));
    sim.run();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].first, 7u);
    EXPECT_EQ(finished[0].second, 5 * msec);
    EXPECT_EQ(sched->jobsCompleted(), 1u);
    EXPECT_NEAR(sched->jobLatency().mean(), 0.005, 1e-9);
    EXPECT_EQ(sched->activeJobs(), 0u);
}

TEST_F(SchedFixture, ChainRunsSequentially)
{
    makeFleet(2);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    Job j(1, 0);
    TaskId a = j.addTask(TaskSpec{4 * msec, 0, 1.0});
    TaskId b = j.addTask(TaskSpec{6 * msec, 0, 1.0});
    j.addEdge(a, b, 0);
    j.validate();
    sched->submitJob(std::move(j));
    sim.run();
    ASSERT_EQ(finished.size(), 1u);
    // 4 + 6 ms of service; the second stage lands on the other
    // (cold) server and pays core C6 + package C6 exit latencies.
    EXPECT_EQ(finished[0].second,
              10 * msec + prof.c6ExitLatency + prof.pc6ExitLatency);
}

TEST_F(SchedFixture, DiamondDagJoinsAtAggregator)
{
    makeFleet(4);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    Job j(2, 0);
    TaskId a = j.addTask(TaskSpec{2 * msec, 0, 1.0});
    TaskId b = j.addTask(TaskSpec{10 * msec, 0, 1.0});
    TaskId c = j.addTask(TaskSpec{3 * msec, 0, 1.0});
    TaskId d = j.addTask(TaskSpec{1 * msec, 0, 1.0});
    j.addEdge(a, b, 0);
    j.addEdge(a, c, 0);
    j.addEdge(b, d, 0);
    j.addEdge(c, d, 0);
    j.validate();
    sched->submitJob(std::move(j));
    sim.run();
    ASSERT_EQ(finished.size(), 1u);
    // Critical path a(2) -> b(10) -> d(1) = 13 ms, plus up to one
    // cold-core wake (core C6 + package C6 exit) per stage.
    EXPECT_GE(finished[0].second, 13 * msec);
    EXPECT_LE(finished[0].second,
              13 * msec +
                  3 * (prof.c6ExitLatency + prof.pc6ExitLatency));
}

TEST_F(SchedFixture, ManyJobsLoadBalanced)
{
    makeFleet(4, 1);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    for (JobId i = 0; i < 8; ++i)
        sched->submitJob(singleTaskJob(i, 10 * msec));
    sim.run();
    EXPECT_EQ(finished.size(), 8u);
    // Perfectly balanced: each server ran two tasks back to back.
    for (Server *s : servers)
        EXPECT_EQ(s->tasksCompleted(), 2u);
}

TEST_F(SchedFixture, EligibilityRestrictsDispatch)
{
    makeFleet(3);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    sched->setEligible(0, false);
    sched->setEligible(2, false);
    EXPECT_EQ(sched->numEligible(), 1u);
    for (JobId i = 0; i < 4; ++i)
        sched->submitJob(singleTaskJob(i, 1 * msec));
    sim.run();
    EXPECT_EQ(servers[1]->tasksCompleted(), 4u);
    EXPECT_EQ(servers[0]->tasksCompleted(), 0u);
    EXPECT_EQ(servers[2]->tasksCompleted(), 0u);
}

TEST_F(SchedFixture, TypeRestrictedServers)
{
    // Server 0 serves type 1, server 1 serves type 2.
    for (unsigned i = 0; i < 2; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 1;
        cfg.taskTypes = {static_cast<int>(i + 1)};
        owned.push_back(std::make_unique<Server>(sim, cfg, prof));
        servers.push_back(owned.back().get());
    }
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    Job j(0, 0);
    TaskId a = j.addTask(TaskSpec{2 * msec, 1, 1.0});
    TaskId b = j.addTask(TaskSpec{2 * msec, 2, 1.0});
    j.addEdge(a, b, 0);
    j.validate();
    sched->submitJob(std::move(j));
    sim.run();
    EXPECT_EQ(finished.size(), 1u);
    EXPECT_EQ(servers[0]->tasksCompleted(), 1u);
    EXPECT_EQ(servers[1]->tasksCompleted(), 1u);
}

TEST_F(SchedFixture, GlobalQueueHoldsTasksUntilCapacity)
{
    makeFleet(2, 1);
    GlobalSchedulerConfig cfg;
    cfg.useGlobalQueue = true;
    makeScheduler(std::make_unique<LeastLoadedPolicy>(), cfg);
    for (JobId i = 0; i < 6; ++i)
        sched->submitJob(singleTaskJob(i, 10 * msec));
    // Two run, four wait centrally (not in server queues).
    EXPECT_EQ(sched->globalQueueLength(), 4u);
    EXPECT_EQ(servers[0]->pendingTasks(), 0u);
    EXPECT_EQ(servers[1]->pendingTasks(), 0u);
    sim.run();
    ASSERT_EQ(finished.size(), 6u);
    EXPECT_EQ(sched->globalQueueLength(), 0u);
    // 6 jobs over 2 single-core servers: the last job waits through
    // two service times before its own 10 ms.
    EXPECT_EQ(finished.back().second, 30 * msec);
}

TEST_F(SchedFixture, GlobalQueueFifoOrder)
{
    makeFleet(1, 1);
    GlobalSchedulerConfig cfg;
    cfg.useGlobalQueue = true;
    makeScheduler(std::make_unique<LeastLoadedPolicy>(), cfg);
    for (JobId i = 0; i < 4; ++i)
        sched->submitJob(singleTaskJob(i, 1 * msec));
    sim.run();
    ASSERT_EQ(finished.size(), 4u);
    for (JobId i = 0; i < 4; ++i)
        EXPECT_EQ(finished[i].first, i);
}

TEST_F(SchedFixture, TransfersDelayDependentTasks)
{
    makeFleet(16, 1);
    net = std::make_unique<Network>(
        sim, Topology::fatTree(4, 1e9, 5 * usec),
        SwitchPowerProfile::cisco2960_24());
    makeScheduler(std::make_unique<RoundRobinPolicy>(), {}, net.get());
    Job j(0, 0);
    TaskId a = j.addTask(TaskSpec{1 * msec, 0, 1.0});
    TaskId b = j.addTask(TaskSpec{1 * msec, 0, 1.0});
    j.addEdge(a, b, 12'500'000); // 100 Mb -> 0.1 s at 1 Gb/s
    j.validate();
    sched->submitJob(std::move(j));
    sim.run();
    ASSERT_EQ(finished.size(), 1u);
    // 1 ms + ~100 ms transfer + 1 ms.
    EXPECT_GT(finished[0].second, 100 * msec);
    EXPECT_LT(finished[0].second, 110 * msec);
    EXPECT_EQ(sched->transfersStarted(), 1u);
}

TEST_F(SchedFixture, SameServerTasksSkipTransfer)
{
    makeFleet(1, 1);
    net = std::make_unique<Network>(
        sim, Topology::star(1, 1e9, 5 * usec),
        SwitchPowerProfile::cisco2960_24());
    makeScheduler(std::make_unique<LeastLoadedPolicy>(), {},
                  net.get());
    Job j(0, 0);
    TaskId a = j.addTask(TaskSpec{1 * msec, 0, 1.0});
    TaskId b = j.addTask(TaskSpec{1 * msec, 0, 1.0});
    j.addEdge(a, b, 100 << 20);
    j.validate();
    sched->submitJob(std::move(j));
    sim.run();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].second, 2 * msec);
    EXPECT_EQ(sched->transfersStarted(), 0u);
}

TEST_F(SchedFixture, ResetStatsClearsCounters)
{
    makeFleet(1);
    makeScheduler(std::make_unique<LeastLoadedPolicy>());
    sched->submitJob(singleTaskJob(0, 1 * msec));
    sim.run();
    EXPECT_EQ(sched->jobsCompleted(), 1u);
    sched->resetStats();
    EXPECT_EQ(sched->jobsCompleted(), 0u);
    EXPECT_EQ(sched->jobLatency().count(), 0u);
}

TEST_F(SchedFixture, ConstructionValidation)
{
    makeFleet(2);
    EXPECT_THROW(GlobalScheduler(sim, {}, nullptr), FatalError);
    EXPECT_THROW(GlobalScheduler(sim, servers, nullptr), FatalError);
    // Wrong server ids.
    std::vector<Server *> reversed{servers[1], servers[0]};
    EXPECT_THROW(GlobalScheduler(sim, reversed,
                                 std::make_unique<LeastLoadedPolicy>()),
                 FatalError);
}
