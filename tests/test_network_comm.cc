/**
 * @file
 * End-to-end tests for the two communication models: max-min fair
 * flows and packet-level store-and-forward, over several topologies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "network/flow_manager.hh"
#include "network/network.hh"
#include "network/routing.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

constexpr BitsPerSec gbps = 1e9;
constexpr Tick lat = 5 * usec;

struct NetFixture : ::testing::Test {
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    std::unique_ptr<Network> net;

    void
    make(Topology topo, NetworkConfig cfg = {})
    {
        net = std::make_unique<Network>(sim, std::move(topo), prof,
                                        cfg);
    }
};

} // namespace

TEST_F(NetFixture, SingleFlowFullLineRate)
{
    make(Topology::star(4, gbps, lat));
    Tick done_at = 0;
    net->startFlow(0, 1, 125'000'000, [&] { done_at = sim.curTick(); });
    sim.run();
    // 1 Gb of data at 1 Gb/s: about one second (plus negligible
    // wake-up of the two ports, which start active).
    EXPECT_NEAR(toSeconds(done_at), 1.0, 0.01);
    EXPECT_EQ(net->flows().flowsCompleted(), 1u);
}

TEST_F(NetFixture, TwoFlowsShareBottleneck)
{
    make(Topology::star(4, gbps, lat));
    // Both flows converge on server 1's link: each gets 500 Mb/s.
    std::vector<Tick> done;
    net->startFlow(0, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    net->startFlow(2, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    // 0.5 Gb each at 0.5 Gb/s share: ~1 s.
    EXPECT_NEAR(toSeconds(done[0]), 1.0, 0.02);
    EXPECT_NEAR(toSeconds(done[1]), 1.0, 0.02);
}

TEST_F(NetFixture, DisjointFlowsDontShare)
{
    make(Topology::star(4, gbps, lat));
    std::vector<Tick> done;
    net->startFlow(0, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    net->startFlow(2, 3, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    // Each ~0.5 s: no common bottleneck in a star with distinct
    // endpoints.
    EXPECT_NEAR(toSeconds(done[0]), 0.5, 0.01);
    EXPECT_NEAR(toSeconds(done[1]), 0.5, 0.01);
}

TEST_F(NetFixture, LateFlowSlowsEarlyFlow)
{
    make(Topology::star(4, gbps, lat));
    Tick done_a = 0;
    net->startFlow(0, 1, 125'000'000, [&] { done_a = sim.curTick(); });
    // After 0.5 s, a second flow contends for server 1's link.
    EventFunctionWrapper later(
        [&] {
            net->startFlow(2, 1, 125'000'000, [] {});
        },
        "later");
    sim.schedule(later, 500 * msec);
    sim.run();
    // Flow A: 0.5 s at full rate (half done), then the remaining
    // 0.5 Gb at 0.5 Gb/s = 1 more second -> ~1.5 s total.
    EXPECT_NEAR(toSeconds(done_a), 1.5, 0.03);
}

TEST_F(NetFixture, SelfFlowCompletesImmediately)
{
    make(Topology::star(4, gbps, lat));
    Tick done_at = maxTick;
    net->startFlow(2, 2, 1'000'000, [&] { done_at = sim.curTick(); });
    sim.run();
    EXPECT_LT(done_at, 1 * msec);
}

TEST_F(NetFixture, FlowKeepsPortsOutOfLpi)
{
    make(Topology::star(4, gbps, lat));
    net->startFlow(0, 1, 125'000'000, [] {});
    sim.runUntil(500 * msec);
    auto &sw = net->switchAt(0);
    EXPECT_EQ(sw.port(0).state(), PortState::active);
    EXPECT_EQ(sw.port(1).state(), PortState::active);
    EXPECT_EQ(sw.port(2).state(), PortState::lpi);
    sim.run();
    sim.runUntil(sim.curTick() + 10 * msec);
    EXPECT_EQ(sw.port(0).state(), PortState::lpi);
}

TEST_F(NetFixture, SleepingSwitchDelaysFlow)
{
    NetworkConfig cfg;
    cfg.switchSleepDelay = 100 * msec;
    make(Topology::star(4, gbps, lat), cfg);
    sim.runUntil(1 * sec);
    ASSERT_TRUE(net->switchAt(0).asleep());
    EXPECT_EQ(net->sleepingSwitches(), 1u);
    EXPECT_EQ(net->sleepingSwitchesOnPath(0, 1), 1u);
    Tick t0 = sim.curTick();
    Tick done_at = 0;
    net->startFlow(0, 1, 1250, [&] { done_at = sim.curTick(); });
    EXPECT_FALSE(net->switchAt(0).asleep());
    sim.run();
    // 10 us of payload, but the switch wake dominates.
    EXPECT_GE(done_at - t0, prof.switchWakeLatency);
    // After the flow ends and the queue drains, the idle switch has
    // re-armed and re-entered sleep.
    EXPECT_EQ(net->sleepingSwitches(), 1u);
    EXPECT_EQ(net->switchAt(0).sleepTransitions(), 2u);
}

TEST_F(NetFixture, FatTreeCrossPodFlow)
{
    make(Topology::fatTree(4, gbps, lat));
    Tick done_at = 0;
    net->startFlow(0, 15, 12'500'000, [&] { done_at = sim.curTick(); });
    sim.run();
    EXPECT_NEAR(toSeconds(done_at), 0.1, 0.01);
    EXPECT_EQ(net->flows().flowsCompleted(), 1u);
}

TEST_F(NetFixture, ManyConcurrentFlowsAllComplete)
{
    make(Topology::fatTree(4, gbps, lat));
    int done = 0;
    for (std::size_t s = 0; s < 16; ++s) {
        net->startFlow(s, (s + 5) % 16, 1'000'000,
                       [&] { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, 16);
    EXPECT_EQ(net->flows().activeFlows(), 0u);
}

// ------------------------------------------------------------- packet level

TEST_F(NetFixture, PacketEndToEndLatency)
{
    make(Topology::star(4, gbps, lat));
    Tick delivered = 0;
    net->sendPacket(0, 1, 1500, [&](const Packet &) {
        delivered = sim.curTick();
    });
    sim.run();
    // Two serializations (NIC + switch port), two link latencies and
    // one forwarding delay.
    Tick expected = 2 * 12 * usec + 2 * lat + 1 * usec;
    EXPECT_EQ(delivered, expected);
    EXPECT_EQ(net->packetsDelivered(), 1u);
}

TEST_F(NetFixture, PacketThroughFatTree)
{
    make(Topology::fatTree(4, gbps, lat));
    int got = 0;
    for (int i = 0; i < 10; ++i)
        net->sendPacket(0, 15, 1500,
                        [&](const Packet &) { ++got; });
    sim.run();
    EXPECT_EQ(got, 10);
    EXPECT_EQ(net->packetsDelivered(), 10u);
    EXPECT_GT(net->packetLatency().mean(), 0.0);
}

TEST_F(NetFixture, PacketLocalDelivery)
{
    make(Topology::star(4, gbps, lat));
    bool got = false;
    net->sendPacket(1, 1, 1500, [&](const Packet &) { got = true; });
    sim.run();
    EXPECT_TRUE(got);
}

TEST_F(NetFixture, BCubeRelayThroughServer)
{
    NetworkConfig cfg;
    make(Topology::bcube(4, 1, gbps, lat), cfg);
    Tick delivered = 0;
    net->sendPacket(0, 5, 1500, [&](const Packet &) {
        delivered = sim.curTick();
    });
    sim.run();
    // 4 links: NIC + 2 switch ports + relay server, plus the relay
    // delay; just check it arrived with a sane latency.
    EXPECT_GT(delivered, 4 * 12 * usec);
    EXPECT_LT(delivered, 1 * msec);
}

TEST_F(NetFixture, CamCubeServerOnlyForwarding)
{
    make(Topology::camCube(3, 3, 3, gbps, lat));
    int got = 0;
    net->sendPacket(0, 26, 1500, [&](const Packet &) { ++got; });
    sim.run();
    EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, BulkTransferChunksAndCompletes)
{
    make(Topology::star(4, gbps, lat));
    std::uint64_t drops = 99;
    net->sendBulk(0, 1, 150'000, [&](std::uint64_t d) { drops = d; });
    sim.run();
    EXPECT_EQ(drops, 0u);
    EXPECT_EQ(net->packetsDelivered(), 100u);
}

TEST_F(NetFixture, DropsReportedOnTinyBuffers)
{
    NetworkConfig cfg;
    cfg.portBufferCapacity = 4;
    make(Topology::star(4, gbps, lat), cfg);
    std::uint64_t delivered_or_dropped = 0;
    std::uint64_t drops = 0;
    // Two senders blast one receiver faster than its 1 Gb/s egress.
    for (int i = 0; i < 50; ++i) {
        net->sendPacket(0, 1, 1500,
                        [&](const Packet &) { ++delivered_or_dropped; },
                        [&](const Packet &) {
                            ++delivered_or_dropped;
                            ++drops;
                        });
        net->sendPacket(2, 1, 1500,
                        [&](const Packet &) { ++delivered_or_dropped; },
                        [&](const Packet &) {
                            ++delivered_or_dropped;
                            ++drops;
                        });
    }
    sim.run();
    EXPECT_EQ(delivered_or_dropped, 100u);
    EXPECT_GT(drops, 0u);
    EXPECT_EQ(net->packetsDropped(), drops);
}

TEST_F(NetFixture, SwitchEnergyAccrues)
{
    make(Topology::star(4, gbps, lat));
    net->startFlow(0, 1, 12'500'000, [] {});
    sim.run();
    sim.runUntil(1 * sec);
    net->finishStats();
    EXPECT_GT(net->switchEnergy(), 0.0);
    EXPECT_GT(net->switchPower(), 0.0);
}

// --------------------------------------------- max-min fairness regression

namespace {

/** Dense directed-link index of hop @p i of @p r (link*2+forward). */
std::vector<std::size_t>
directedPath(const Topology &topo, const Route &r)
{
    std::vector<std::size_t> path;
    for (std::size_t i = 0; i < r.links.size(); ++i) {
        bool forward = topo.link(r.links[i]).a == r.nodes[i];
        path.push_back(r.links[i] * 2 + (forward ? 1 : 0));
    }
    return path;
}

/**
 * Reference max-min water-filling, recomputed from scratch every
 * round: count unfrozen users per directed link, find the minimum
 * share, freeze exactly the flows crossing a minimum-share link, and
 * repeat. Deliberately independent of FlowManager's incremental
 * bookkeeping.
 */
std::vector<double>
waterFill(const Topology &topo,
          const std::vector<std::vector<std::size_t>> &paths)
{
    const std::size_t n_dl = 2 * topo.numLinks();
    std::vector<double> left(n_dl);
    for (LinkId l = 0; l < topo.numLinks(); ++l)
        left[2 * l] = left[2 * l + 1] = topo.link(l).rate;

    std::vector<double> rate(paths.size(), 0.0);
    std::vector<char> frozen(paths.size(), 0);
    for (std::size_t f = 0; f < paths.size(); ++f)
        frozen[f] = paths[f].empty();

    for (;;) {
        std::vector<unsigned> users(n_dl, 0);
        for (std::size_t f = 0; f < paths.size(); ++f) {
            if (frozen[f])
                continue;
            for (std::size_t dl : paths[f])
                ++users[dl];
        }
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t dl = 0; dl < n_dl; ++dl) {
            if (users[dl] > 0)
                best = std::min(best, left[dl] / users[dl]);
        }
        if (!std::isfinite(best))
            break; // all flows frozen
        double tol = 1e-9 * std::max(1.0, best);
        std::vector<char> bottleneck(n_dl, 0);
        for (std::size_t dl = 0; dl < n_dl; ++dl) {
            bottleneck[dl] =
                users[dl] > 0 && left[dl] / users[dl] <= best + tol;
        }
        for (std::size_t f = 0; f < paths.size(); ++f) {
            if (frozen[f])
                continue;
            bool hit = false;
            for (std::size_t dl : paths[f])
                hit = hit || bottleneck[dl];
            if (!hit)
                continue;
            frozen[f] = 1;
            rate[f] = best;
            for (std::size_t dl : paths[f])
                left[dl] = std::max(0.0, left[dl] - best);
        }
    }
    return rate;
}

/**
 * Start every flow of @p routes in a FlowManager, activate them all
 * at tick 0 and compare each solver rate against the reference
 * water-filling allocation.
 */
void
expectMatchesReference(const Topology &topo,
                       const std::vector<Route> &routes)
{
    std::vector<std::vector<std::size_t>> paths;
    for (const Route &r : routes)
        paths.push_back(directedPath(topo, r));
    std::vector<double> expected = waterFill(topo, paths);

    Simulator sim;
    FlowManager mgr(sim, topo);
    std::vector<FlowId> ids;
    for (const Route &r : routes)
        ids.push_back(mgr.startFlow(r, 1'000'000'000'000, [] {}));
    sim.runUntil(0); // activations only; completions lie far out
    for (std::size_t f = 0; f < ids.size(); ++f) {
        SCOPED_TRACE("flow " + std::to_string(f));
        double got = mgr.flowRate(ids[f]);
        ASSERT_GT(expected[f], 0.0);
        EXPECT_NEAR(got, expected[f], 1e-6 * expected[f]);
    }
    // No directed link may be oversubscribed.
    std::vector<double> load(2 * topo.numLinks(), 0.0);
    for (std::size_t f = 0; f < ids.size(); ++f) {
        for (std::size_t dl : paths[f])
            load[dl] += mgr.flowRate(ids[f]);
    }
    for (LinkId l = 0; l < topo.numLinks(); ++l) {
        double cap = topo.link(l).rate;
        EXPECT_LE(load[2 * l], cap * (1.0 + 1e-6));
        EXPECT_LE(load[2 * l + 1], cap * (1.0 + 1e-6));
    }
}

} // namespace

TEST(FlowFairness, MatchesReferenceOnSharedChain)
{
    // Two edge switches joined by a thin trunk; server access links
    // are fat so the trunk and the receivers bind at different
    // shares (multi-round water filling).
    Topology topo;
    NodeId s0 = topo.addServer(), s1 = topo.addServer();
    NodeId s2 = topo.addServer(), s3 = topo.addServer();
    NodeId sw0 = topo.addSwitch(), sw1 = topo.addSwitch();
    topo.addLink(s0, sw0, 10 * gbps, lat);
    topo.addLink(s1, sw0, 10 * gbps, lat);
    topo.addLink(sw0, sw1, 1 * gbps, lat);
    topo.addLink(s2, sw1, 2 * gbps, lat);
    topo.addLink(s3, sw1, 10 * gbps, lat);
    StaticRouting routing(topo);

    std::vector<Route> routes{
        routing.route(s0, s2), // trunk + s2 access
        routing.route(s1, s2), // trunk + s2 access
        routing.route(s1, s3), // trunk + s3 access
        routing.route(s0, s1), // stays inside sw0, never bound
    };
    expectMatchesReference(topo, routes);
}

TEST(FlowFairness, MatchesReferenceOnEpsilonTiedBottlenecks)
{
    // Two links tie for the bottleneck share at 1e9/3 where thirds
    // are not exactly representable. The mid-round-mutation bug made
    // the freeze decision depend on flow iteration order here: after
    // freezing the first flow, the debited shares of the tied link
    // drift past the comparison epsilon and its flows are deferred
    // to a later round at an inflated rate.
    Topology topo;
    std::vector<NodeId> s;
    for (int i = 0; i < 6; ++i)
        s.push_back(topo.addServer());
    NodeId sw = topo.addSwitch();
    const double third2 = 2e9 / 3.0;
    topo.addLink(s[0], sw, 100 * gbps, lat);
    topo.addLink(s[1], sw, 1 * gbps, lat);   // 3 users: share 1e9/3
    topo.addLink(s[2], sw, third2, lat);     // 2 users: same share
    topo.addLink(s[3], sw, 100 * gbps, lat);
    topo.addLink(s[4], sw, 100 * gbps, lat);
    topo.addLink(s[5], sw, 100 * gbps, lat);
    StaticRouting routing(topo);

    std::vector<Route> routes{
        routing.route(s[0], s[1]),
        routing.route(s[3], s[1]),
        routing.route(s[4], s[1]),
        routing.route(s[2], s[5]), // user 1 of the s2 access link
        routing.route(s[2], s[0]), // user 2 of the s2 access link
    };
    expectMatchesReference(topo, routes);
}

TEST(FlowFairness, MatchesReferenceOnFatTreeEcmp)
{
    auto topo = Topology::fatTree(4, gbps, lat);
    StaticRouting routing(topo);
    std::vector<Route> routes;
    for (std::size_t i = 0; i < 24; ++i) {
        NodeId src = topo.serverNode(i % 16);
        NodeId dst = topo.serverNode((i * 7 + 3) % 16);
        if (src == dst)
            dst = topo.serverNode((i * 7 + 4) % 16);
        routes.push_back(routing.route(src, dst, i));
    }
    expectMatchesReference(topo, routes);
}

TEST(FlowFairness, ReshareIsOrderIndependent)
{
    // The allocation must not depend on the order flows entered the
    // manager (equivalently, on FlowId iteration order).
    Topology topo;
    std::vector<NodeId> s;
    for (int i = 0; i < 4; ++i)
        s.push_back(topo.addServer());
    NodeId sw = topo.addSwitch();
    for (int i = 0; i < 4; ++i)
        topo.addLink(s[i], sw, gbps, lat);
    StaticRouting routing(topo);
    std::vector<Route> routes{
        routing.route(s[0], s[1]),
        routing.route(s[2], s[1]),
        routing.route(s[3], s[1]),
        routing.route(s[2], s[3]),
    };

    auto ratesFor = [&](std::vector<std::size_t> order) {
        Simulator sim;
        FlowManager mgr(sim, topo);
        std::vector<FlowId> ids(order.size());
        for (std::size_t i : order)
            ids[i] = mgr.startFlow(routes[i], 1'000'000'000'000,
                                   [] {});
        sim.runUntil(0);
        std::vector<double> rates;
        for (FlowId id : ids)
            rates.push_back(mgr.flowRate(id));
        return rates;
    };

    auto a = ratesFor({0, 1, 2, 3});
    auto b = ratesFor({3, 2, 1, 0});
    auto c = ratesFor({2, 0, 3, 1});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "flow " << i;
        EXPECT_DOUBLE_EQ(a[i], c[i]) << "flow " << i;
    }
}
