/**
 * @file
 * End-to-end tests for the two communication models: max-min fair
 * flows and packet-level store-and-forward, over several topologies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "network/network.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

constexpr BitsPerSec gbps = 1e9;
constexpr Tick lat = 5 * usec;

struct NetFixture : ::testing::Test {
    Simulator sim;
    SwitchPowerProfile prof = SwitchPowerProfile::cisco2960_24();
    std::unique_ptr<Network> net;

    void
    make(Topology topo, NetworkConfig cfg = {})
    {
        net = std::make_unique<Network>(sim, std::move(topo), prof,
                                        cfg);
    }
};

} // namespace

TEST_F(NetFixture, SingleFlowFullLineRate)
{
    make(Topology::star(4, gbps, lat));
    Tick done_at = 0;
    net->startFlow(0, 1, 125'000'000, [&] { done_at = sim.curTick(); });
    sim.run();
    // 1 Gb of data at 1 Gb/s: about one second (plus negligible
    // wake-up of the two ports, which start active).
    EXPECT_NEAR(toSeconds(done_at), 1.0, 0.01);
    EXPECT_EQ(net->flows().flowsCompleted(), 1u);
}

TEST_F(NetFixture, TwoFlowsShareBottleneck)
{
    make(Topology::star(4, gbps, lat));
    // Both flows converge on server 1's link: each gets 500 Mb/s.
    std::vector<Tick> done;
    net->startFlow(0, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    net->startFlow(2, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    // 0.5 Gb each at 0.5 Gb/s share: ~1 s.
    EXPECT_NEAR(toSeconds(done[0]), 1.0, 0.02);
    EXPECT_NEAR(toSeconds(done[1]), 1.0, 0.02);
}

TEST_F(NetFixture, DisjointFlowsDontShare)
{
    make(Topology::star(4, gbps, lat));
    std::vector<Tick> done;
    net->startFlow(0, 1, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    net->startFlow(2, 3, 62'500'000,
                   [&] { done.push_back(sim.curTick()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    // Each ~0.5 s: no common bottleneck in a star with distinct
    // endpoints.
    EXPECT_NEAR(toSeconds(done[0]), 0.5, 0.01);
    EXPECT_NEAR(toSeconds(done[1]), 0.5, 0.01);
}

TEST_F(NetFixture, LateFlowSlowsEarlyFlow)
{
    make(Topology::star(4, gbps, lat));
    Tick done_a = 0;
    net->startFlow(0, 1, 125'000'000, [&] { done_a = sim.curTick(); });
    // After 0.5 s, a second flow contends for server 1's link.
    EventFunctionWrapper later(
        [&] {
            net->startFlow(2, 1, 125'000'000, [] {});
        },
        "later");
    sim.schedule(later, 500 * msec);
    sim.run();
    // Flow A: 0.5 s at full rate (half done), then the remaining
    // 0.5 Gb at 0.5 Gb/s = 1 more second -> ~1.5 s total.
    EXPECT_NEAR(toSeconds(done_a), 1.5, 0.03);
}

TEST_F(NetFixture, SelfFlowCompletesImmediately)
{
    make(Topology::star(4, gbps, lat));
    Tick done_at = maxTick;
    net->startFlow(2, 2, 1'000'000, [&] { done_at = sim.curTick(); });
    sim.run();
    EXPECT_LT(done_at, 1 * msec);
}

TEST_F(NetFixture, FlowKeepsPortsOutOfLpi)
{
    make(Topology::star(4, gbps, lat));
    net->startFlow(0, 1, 125'000'000, [] {});
    sim.runUntil(500 * msec);
    auto &sw = net->switchAt(0);
    EXPECT_EQ(sw.port(0).state(), PortState::active);
    EXPECT_EQ(sw.port(1).state(), PortState::active);
    EXPECT_EQ(sw.port(2).state(), PortState::lpi);
    sim.run();
    sim.runUntil(sim.curTick() + 10 * msec);
    EXPECT_EQ(sw.port(0).state(), PortState::lpi);
}

TEST_F(NetFixture, SleepingSwitchDelaysFlow)
{
    NetworkConfig cfg;
    cfg.switchSleepDelay = 100 * msec;
    make(Topology::star(4, gbps, lat), cfg);
    sim.runUntil(1 * sec);
    ASSERT_TRUE(net->switchAt(0).asleep());
    EXPECT_EQ(net->sleepingSwitches(), 1u);
    EXPECT_EQ(net->sleepingSwitchesOnPath(0, 1), 1u);
    Tick t0 = sim.curTick();
    Tick done_at = 0;
    net->startFlow(0, 1, 1250, [&] { done_at = sim.curTick(); });
    EXPECT_FALSE(net->switchAt(0).asleep());
    sim.run();
    // 10 us of payload, but the switch wake dominates.
    EXPECT_GE(done_at - t0, prof.switchWakeLatency);
    // After the flow ends and the queue drains, the idle switch has
    // re-armed and re-entered sleep.
    EXPECT_EQ(net->sleepingSwitches(), 1u);
    EXPECT_EQ(net->switchAt(0).sleepTransitions(), 2u);
}

TEST_F(NetFixture, FatTreeCrossPodFlow)
{
    make(Topology::fatTree(4, gbps, lat));
    Tick done_at = 0;
    net->startFlow(0, 15, 12'500'000, [&] { done_at = sim.curTick(); });
    sim.run();
    EXPECT_NEAR(toSeconds(done_at), 0.1, 0.01);
    EXPECT_EQ(net->flows().flowsCompleted(), 1u);
}

TEST_F(NetFixture, ManyConcurrentFlowsAllComplete)
{
    make(Topology::fatTree(4, gbps, lat));
    int done = 0;
    for (std::size_t s = 0; s < 16; ++s) {
        net->startFlow(s, (s + 5) % 16, 1'000'000,
                       [&] { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, 16);
    EXPECT_EQ(net->flows().activeFlows(), 0u);
}

// ------------------------------------------------------------- packet level

TEST_F(NetFixture, PacketEndToEndLatency)
{
    make(Topology::star(4, gbps, lat));
    Tick delivered = 0;
    net->sendPacket(0, 1, 1500, [&](const Packet &) {
        delivered = sim.curTick();
    });
    sim.run();
    // Two serializations (NIC + switch port), two link latencies and
    // one forwarding delay.
    Tick expected = 2 * 12 * usec + 2 * lat + 1 * usec;
    EXPECT_EQ(delivered, expected);
    EXPECT_EQ(net->packetsDelivered(), 1u);
}

TEST_F(NetFixture, PacketThroughFatTree)
{
    make(Topology::fatTree(4, gbps, lat));
    int got = 0;
    for (int i = 0; i < 10; ++i)
        net->sendPacket(0, 15, 1500,
                        [&](const Packet &) { ++got; });
    sim.run();
    EXPECT_EQ(got, 10);
    EXPECT_EQ(net->packetsDelivered(), 10u);
    EXPECT_GT(net->packetLatency().mean(), 0.0);
}

TEST_F(NetFixture, PacketLocalDelivery)
{
    make(Topology::star(4, gbps, lat));
    bool got = false;
    net->sendPacket(1, 1, 1500, [&](const Packet &) { got = true; });
    sim.run();
    EXPECT_TRUE(got);
}

TEST_F(NetFixture, BCubeRelayThroughServer)
{
    NetworkConfig cfg;
    make(Topology::bcube(4, 1, gbps, lat), cfg);
    Tick delivered = 0;
    net->sendPacket(0, 5, 1500, [&](const Packet &) {
        delivered = sim.curTick();
    });
    sim.run();
    // 4 links: NIC + 2 switch ports + relay server, plus the relay
    // delay; just check it arrived with a sane latency.
    EXPECT_GT(delivered, 4 * 12 * usec);
    EXPECT_LT(delivered, 1 * msec);
}

TEST_F(NetFixture, CamCubeServerOnlyForwarding)
{
    make(Topology::camCube(3, 3, 3, gbps, lat));
    int got = 0;
    net->sendPacket(0, 26, 1500, [&](const Packet &) { ++got; });
    sim.run();
    EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, BulkTransferChunksAndCompletes)
{
    make(Topology::star(4, gbps, lat));
    std::uint64_t drops = 99;
    net->sendBulk(0, 1, 150'000, [&](std::uint64_t d) { drops = d; });
    sim.run();
    EXPECT_EQ(drops, 0u);
    EXPECT_EQ(net->packetsDelivered(), 100u);
}

TEST_F(NetFixture, DropsReportedOnTinyBuffers)
{
    NetworkConfig cfg;
    cfg.portBufferCapacity = 4;
    make(Topology::star(4, gbps, lat), cfg);
    std::uint64_t delivered_or_dropped = 0;
    std::uint64_t drops = 0;
    // Two senders blast one receiver faster than its 1 Gb/s egress.
    for (int i = 0; i < 50; ++i) {
        net->sendPacket(0, 1, 1500,
                        [&](const Packet &) { ++delivered_or_dropped; },
                        [&](const Packet &) {
                            ++delivered_or_dropped;
                            ++drops;
                        });
        net->sendPacket(2, 1, 1500,
                        [&](const Packet &) { ++delivered_or_dropped; },
                        [&](const Packet &) {
                            ++delivered_or_dropped;
                            ++drops;
                        });
    }
    sim.run();
    EXPECT_EQ(delivered_or_dropped, 100u);
    EXPECT_GT(drops, 0u);
    EXPECT_EQ(net->packetsDropped(), drops);
}

TEST_F(NetFixture, SwitchEnergyAccrues)
{
    make(Topology::star(4, gbps, lat));
    net->startFlow(0, 1, 12'500'000, [] {});
    sim.run();
    sim.runUntil(1 * sec);
    net->finishStats();
    EXPECT_GT(net->switchEnergy(), 0.0);
    EXPECT_GT(net->switchPower(), 0.0);
}
