/**
 * @file
 * Tests for the container orchestration layer: placement policies,
 * live migration over the modeled fabric (dirty-page byte accounting,
 * downtime, aborts), co-location interference, remote-memory
 * penalties, crash rescheduling, task deferral, determinism, and the
 * no-[orch] byte-identity guarantee.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dc/datacenter.hh"
#include "orch/placement.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

/** Total bytes the dirty-page model ships for one migration. */
Bytes
expectedMigrationBytes(Bytes mem, double dirty_frac, Bytes stop_copy,
                       unsigned max_rounds)
{
    Bytes total = 0;
    for (unsigned r = 0;; ++r) {
        auto bytes = static_cast<Bytes>(std::llround(
            static_cast<double>(mem) *
            std::pow(dirty_frac, static_cast<double>(r))));
        total += std::max<Bytes>(bytes, 1);
        if (bytes <= stop_copy || r + 1 >= max_rounds)
            return total;
    }
}

/** Baseline orchestration config: 8 x 4-core servers, no fabric. */
DataCenterConfig
orchConfig()
{
    DataCenterConfig cfg;
    cfg.nServers = 8;
    cfg.nCores = 4;
    cfg.seed = 11;
    cfg.orch.enabled = true;
    cfg.orch.replicas = 4;
    cfg.orch.containerCores = 1.0;
    return cfg;
}

std::string
dumpString(DataCenter &dc)
{
    std::ostringstream os;
    dc.dumpStats(os);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Placement policies (pure logic over handcrafted candidate views)
// ---------------------------------------------------------------------------

TEST(Placement, BinPackPicksFullestServer)
{
    auto policy = makePlacementPolicy("bin_pack");
    std::vector<ServerView> views{
        {0, 3.0, 100, 0, 1}, {1, 1.0, 100, 0, 3}, {2, 2.0, 100, 0, 2}};
    ContainerSpec spec;
    auto pick = policy->place(spec, views);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u); // least free cores
}

TEST(Placement, SpreadPicksEmptiestServer)
{
    auto policy = makePlacementPolicy("spread");
    std::vector<ServerView> views{
        {0, 1.0, 100, 0, 2}, {1, 4.0, 100, 0, 0}, {2, 2.0, 100, 0, 1}};
    ContainerSpec spec;
    auto pick = policy->place(spec, views);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u); // fewest containers
}

TEST(Placement, AffinityPrefersSameDeployment)
{
    auto policy = makePlacementPolicy("affinity");
    std::vector<ServerView> views{
        {0, 4.0, 100, 0, 0}, {1, 1.0, 100, 2, 3}, {2, 3.0, 100, 1, 1}};
    ContainerSpec spec;
    auto pick = policy->place(spec, views);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 1u); // most same-deployment neighbors
}

TEST(Placement, TiesBreakTowardLowestIndex)
{
    auto policy = makePlacementPolicy("bin_pack");
    std::vector<ServerView> views{
        {3, 2.0, 100, 0, 0}, {5, 2.0, 100, 0, 0}};
    ContainerSpec spec;
    EXPECT_EQ(policy->place(spec, views).value(), 3u);
    EXPECT_FALSE(policy->place(spec, {}).has_value());
}

TEST(Placement, UnknownPolicyIsFatal)
{
    EXPECT_THROW(makePlacementPolicy("best_fit"), FatalError);
}

// ---------------------------------------------------------------------------
// Placement through the orchestrator (occupancy shapes)
// ---------------------------------------------------------------------------

TEST(Orchestrator, BinPackConsolidatesSpreadDisperses)
{
    {
        DataCenterConfig cfg = orchConfig();
        cfg.orch.placement = "bin_pack";
        DataCenter dc(cfg);
        Orchestrator &orch = *dc.orchestrator();
        ASSERT_EQ(orch.numContainers(), 4u);
        // 4 x 1-core replicas bin-pack onto the first 4-core server.
        EXPECT_EQ(orch.containersOn(0).size(), 4u);
        EXPECT_EQ(orch.stats().placements, 4u);
    }
    {
        DataCenterConfig cfg = orchConfig();
        cfg.orch.placement = "spread";
        DataCenter dc(cfg);
        Orchestrator &orch = *dc.orchestrator();
        for (std::size_t s = 0; s < 4; ++s)
            EXPECT_EQ(dc.orchestrator()->containersOn(s).size(), 1u)
                << "server " << s;
        EXPECT_EQ(orch.containersOn(4).size(), 0u);
    }
}

TEST(Orchestrator, AntiAffinityForcesDistinctServers)
{
    DataCenterConfig cfg = orchConfig();
    cfg.orch.placement = "bin_pack"; // would co-locate on its own
    cfg.orch.antiAffinity = true;
    DataCenter dc(cfg);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(dc.orchestrator()->containersOn(s).size(), 1u);
}

TEST(Orchestrator, PendingWhenNothingFits)
{
    DataCenterConfig cfg = orchConfig();
    cfg.nServers = 1;
    cfg.orch.replicas = 2;
    cfg.orch.containerCores = 3.0; // second replica cannot fit
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    EXPECT_EQ(orch.container(0).state, ContainerState::running);
    EXPECT_EQ(orch.container(1).state, ContainerState::pending);
    EXPECT_EQ(orch.stats().placements, 1u);
}

// ---------------------------------------------------------------------------
// Live migration
// ---------------------------------------------------------------------------

namespace {

/** Star-fabric config for migration tests. */
DataCenterConfig
migrationConfig()
{
    DataCenterConfig cfg = orchConfig();
    cfg.fabric = DataCenterConfig::Fabric::star;
    cfg.orch.replicas = 1;
    cfg.orch.containerMemBytes = static_cast<Bytes>(32) << 20;
    cfg.orch.migrationDirtyFrac = 0.25;
    cfg.orch.migrationStopCopyBytes = static_cast<Bytes>(1) << 20;
    cfg.orch.migrationMaxRounds = 8;
    return cfg;
}

} // namespace

TEST(Orchestrator, MigrationBytesFollowDirtyPageModel)
{
    DataCenterConfig cfg = migrationConfig();
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    ASSERT_EQ(orch.container(0).server, 0u);

    ASSERT_TRUE(orch.migrate(0, 5));
    EXPECT_EQ(orch.container(0).state, ContainerState::migrating);
    dc.run();

    const Orchestrator::Stats &s = orch.stats();
    EXPECT_EQ(s.migrationsStarted, 1u);
    EXPECT_EQ(s.migrationsCompleted, 1u);
    EXPECT_EQ(s.migrationsAborted, 0u);
    EXPECT_EQ(s.migratedBytes,
              expectedMigrationBytes(cfg.orch.containerMemBytes,
                                     cfg.orch.migrationDirtyFrac,
                                     cfg.orch.migrationStopCopyBytes,
                                     cfg.orch.migrationMaxRounds));
    // The stop-and-copy window has nonzero, bounded duration.
    EXPECT_GT(s.totalDowntime, 0u);
    EXPECT_LT(toSeconds(s.totalDowntime), 1.0);

    const Container &c = orch.container(0);
    EXPECT_EQ(c.state, ContainerState::running);
    EXPECT_EQ(c.server, 5u);
    EXPECT_EQ(c.memHome, 0u); // memory home stays at first placement
    EXPECT_EQ(orch.containersOn(0).size(), 0u);
    EXPECT_EQ(orch.containersOn(5).size(), 1u);
}

TEST(Orchestrator, MigrationRejectsBadTargets)
{
    DataCenterConfig cfg = migrationConfig();
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    EXPECT_FALSE(orch.migrate(0, 0));   // already there
    EXPECT_FALSE(orch.migrate(0, 99));  // no such server
    EXPECT_EQ(orch.stats().migrationsStarted, 0u);
}

TEST(Orchestrator, MigrationAbortsCleanlyOnLinkFailure)
{
    DataCenterConfig cfg = migrationConfig();
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    Network &net = *dc.network();

    ASSERT_TRUE(orch.migrate(0, 5));
    // Sever the source's uplink mid-copy; the flow crossing it dies.
    Route r = net.routing().route(net.topology().serverNode(0),
                                  net.topology().serverNode(5));
    ASSERT_FALSE(r.links.empty());
    EXPECT_EQ(net.failLink(r.links.front()), 1u);

    const Orchestrator::Stats &s = orch.stats();
    EXPECT_EQ(s.migrationsAborted, 1u);
    EXPECT_EQ(s.migrationsCompleted, 0u);
    // The container fell back to its (healthy) source...
    const Container &c = orch.container(0);
    EXPECT_EQ(c.state, ContainerState::running);
    EXPECT_EQ(c.server, 0u);
    // ...and the destination reservation was released: after repair
    // the same migration succeeds.
    net.repairLink(r.links.front());
    ASSERT_TRUE(orch.migrate(0, 5));
    dc.run();
    EXPECT_EQ(orch.stats().migrationsCompleted, 1u);
    EXPECT_EQ(orch.container(0).server, 5u);
}

TEST(Orchestrator, RemoteMemoryPenaltyAfterMigratingAway)
{
    DataCenterConfig cfg = migrationConfig();
    cfg.orch.remoteMemFrac = 0.5;
    cfg.orch.remoteMemPenaltyPerUs = 0.01;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();

    // At home: no penalty.
    EXPECT_DOUBLE_EQ(orch.remoteMemScale(orch.container(0)), 1.0);
    ASSERT_TRUE(orch.migrate(0, 5));
    dc.run();
    // Away from home: scale = 1 + frac * penalty * path_us, with the
    // star path crossing two 5 us links.
    EXPECT_NEAR(orch.remoteMemScale(orch.container(0)),
                1.0 + 0.5 * 0.01 * 10.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Interference and task routing
// ---------------------------------------------------------------------------

TEST(Orchestrator, InterferenceInflatesColocatedTasks)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.nCores = 2;
    cfg.seed = 3;
    cfg.orch.enabled = true;
    cfg.orch.placement = "bin_pack";
    cfg.orch.overcommit = 2.0;
    cfg.orch.interference = 0.5;
    cfg.orch.replicas = 2;
    cfg.orch.containerCores = 2.0;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    // Both 2-core replicas pack onto the 2-core server 0: reserved 4
    // cores on 2 physical ones -> scale 1 + 0.5 * (4-2)/2 = 1.5.
    ASSERT_EQ(orch.containersOn(0).size(), 2u);
    EXPECT_DOUBLE_EQ(orch.interferenceScale(0), 1.5);
    EXPECT_DOUBLE_EQ(orch.interferenceScale(1), 1.0);

    // A 100 ms task routed through the deployment runs for 150 ms.
    auto service = std::make_shared<FixedService>(100 * msec);
    SingleTaskGenerator jobs(service);
    dc.pumpTrace({0}, jobs);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 1u);
    // 150 ms inflated service plus a few us of dispatch overhead.
    EXPECT_NEAR(dc.scheduler().jobLatency().mean(), 0.150, 1e-4);
    EXPECT_NEAR(orch.stats().interferenceInflatedSec, 0.050, 1e-9);
    EXPECT_EQ(orch.stats().tasksRouted, 1u);
}

TEST(Orchestrator, UntaggedJobsBypassTheOrchestrator)
{
    DataCenterConfig cfg = orchConfig();
    cfg.orch.tagJobs = false;
    DataCenter dc(cfg);
    auto service = std::make_shared<FixedService>(10 * msec);
    SingleTaskGenerator jobs(service);
    dc.pumpTrace({0, 1 * msec, 2 * msec}, jobs);
    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 3u);
    EXPECT_EQ(dc.orchestrator()->stats().tasksRouted, 0u);
}

TEST(Orchestrator, TasksDeferDuringDowntimeAndResumeAfter)
{
    DataCenterConfig cfg = migrationConfig();
    cfg.orch.migrationMaxRounds = 1; // whole copy is stop-and-copy
    cfg.orch.containerMemBytes = static_cast<Bytes>(64) << 20;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();

    ASSERT_TRUE(orch.migrate(0, 3));
    EXPECT_EQ(orch.container(0).state, ContainerState::downtime);

    // A tagged job arriving mid-downtime stalls instead of running.
    auto service = std::make_shared<FixedService>(10 * msec);
    SingleTaskGenerator jobs(service);
    dc.pumpTrace({10 * msec}, jobs);
    dc.runUntil(50 * msec);
    EXPECT_EQ(dc.scheduler().deferredTasks(), 1u);
    EXPECT_EQ(orch.stats().tasksDeferred, 1u);
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 0u);

    // Switch-over releases the parked task onto the new host.
    dc.run();
    EXPECT_EQ(orch.stats().migrationsCompleted, 1u);
    EXPECT_EQ(dc.scheduler().deferredTasks(), 0u);
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 1u);
}

// ---------------------------------------------------------------------------
// Crash response
// ---------------------------------------------------------------------------

TEST(Orchestrator, ServerCrashReschedulesItsContainers)
{
    std::string trace = ::testing::TempDir() + "orch_crash_trace.txt";
    {
        std::ofstream f(trace);
        f << "server 0 1.0 2.0\n";
    }
    DataCenterConfig cfg = orchConfig();
    cfg.orch.replicas = 2;
    cfg.orch.containerCores = 2.0; // both replicas pack on server 0
    cfg.fault.enabled = true;
    cfg.fault.faultTrace = trace;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();
    ASSERT_EQ(orch.containersOn(0).size(), 2u);

    auto service = std::make_shared<FixedService>(5 * msec);
    SingleTaskGenerator jobs(service);
    std::vector<Tick> arrivals;
    for (Tick t = 0; t < 3 * sec; t += 100 * msec)
        arrivals.push_back(t);
    dc.pumpTrace(std::move(arrivals), jobs);

    dc.runUntil(1500 * msec); // inside the down window
    EXPECT_EQ(orch.stats().reschedules, 2u);
    EXPECT_EQ(orch.containersOn(0).size(), 0u);
    // Both replacements landed on the next server, and keep serving.
    EXPECT_EQ(orch.containersOn(1).size(), 2u);

    dc.run();
    EXPECT_EQ(dc.scheduler().jobsCompleted(), 30u);
    EXPECT_EQ(dc.scheduler().jobsFailed(), 0u);
    // No auto-failback: the containers stay where they recovered.
    EXPECT_EQ(orch.containersOn(1).size(), 2u);
}

// ---------------------------------------------------------------------------
// Rolling updates and autoscaling
// ---------------------------------------------------------------------------

TEST(Orchestrator, RollingUpdateReplacesEveryReplica)
{
    DataCenterConfig cfg = orchConfig();
    cfg.orch.replicas = 3;
    cfg.orch.reconcilePeriod = 100 * msec;
    DataCenter dc(cfg);
    Orchestrator &orch = *dc.orchestrator();

    auto service = std::make_shared<FixedService>(5 * msec);
    SingleTaskGenerator jobs(service);
    std::vector<Tick> arrivals;
    for (Tick t = 0; t < 2 * sec; t += 50 * msec)
        arrivals.push_back(t);
    dc.pumpTrace(std::move(arrivals), jobs);

    orch.beginRollingUpdate(0, 2);
    EXPECT_TRUE(orch.updateInProgress(0));
    dc.run();

    EXPECT_FALSE(orch.updateInProgress(0));
    EXPECT_EQ(orch.runningReplicas(0), 3u);
    // 3 initial + 3 surge placements; every running replica is v2.
    EXPECT_EQ(orch.stats().placements, 6u);
    for (std::size_t i = 0; i < orch.numContainers(); ++i) {
        const Container &c = orch.container(i);
        if (c.state != ContainerState::stopped)
            EXPECT_EQ(c.version, 2);
    }
    EXPECT_EQ(dc.scheduler().jobsFailed(), 0u);
}

TEST(Orchestrator, AutoscalerAddsReplicasUnderLoad)
{
    DataCenterConfig cfg = orchConfig();
    cfg.orch.replicas = 1;
    cfg.orch.minReplicas = 1;
    cfg.orch.maxReplicas = 6;
    cfg.orch.autoscale = true;
    cfg.orch.autoscaleHigh = 0.75;
    cfg.orch.autoscaleLow = 0.25;
    cfg.orch.reconcilePeriod = 100 * msec;
    DataCenter dc(cfg);

    // Far more concurrent work than one 1-core container should take.
    auto service = std::make_shared<FixedService>(400 * msec);
    SingleTaskGenerator jobs(service);
    std::vector<Tick> arrivals;
    for (Tick t = 0; t < 4 * sec; t += 40 * msec)
        arrivals.push_back(t);
    dc.pumpTrace(std::move(arrivals), jobs);
    dc.run();

    const Orchestrator::Stats &s = dc.orchestrator()->stats();
    EXPECT_GT(s.autoscaleUps, 0u);
    EXPECT_LE(dc.orchestrator()->deploymentSpec(0).replicas, 6u);
    EXPECT_EQ(dc.scheduler().jobsFailed(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism and the no-[orch] guarantee
// ---------------------------------------------------------------------------

namespace {

std::string
runOrchWorkload(std::uint64_t seed)
{
    DataCenterConfig cfg = orchConfig();
    cfg.seed = seed;
    cfg.fabric = DataCenterConfig::Fabric::star;
    cfg.orch.autoscale = true;
    cfg.orch.reconcilePeriod = 200 * msec;
    cfg.orch.interference = 0.3;
    cfg.orch.overcommit = 2.0;
    DataCenter dc(cfg);

    auto service = std::make_shared<ExponentialService>(
        20 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    dc.pump(std::make_unique<Mmpp2Arrival>(300.0, 60.0, 0.5, 1.0,
                                           dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), 3 * sec);
    dc.runUntil(1 * sec);
    dc.orchestrator()->drainServer(0);
    dc.runUntil(2 * sec);
    dc.orchestrator()->beginRollingUpdate(0, 2);
    dc.run();
    return dumpString(dc);
}

} // namespace

TEST(Orchestrator, SameSeedSameResult)
{
    std::string a = runOrchWorkload(123);
    std::string b = runOrchWorkload(123);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("orch.placements"), std::string::npos);
}

TEST(Orchestrator, DisabledOrchIsByteIdentical)
{
    auto runIt = [](bool configure_knobs) {
        DataCenterConfig cfg;
        cfg.nServers = 4;
        cfg.nCores = 2;
        cfg.seed = 9;
        if (configure_knobs) {
            // Knobs set but the layer switched off: nothing may leak.
            cfg.orch.enabled = false;
            cfg.orch.placement = "spread";
            cfg.orch.interference = 0.9;
            cfg.orch.autoscale = true;
            cfg.orch.replicas = 7;
        }
        DataCenter dc(cfg);
        auto service = std::make_shared<ExponentialService>(
            10 * msec, dc.makeRng("service"));
        SingleTaskGenerator jobs(service);
        dc.pump(std::make_unique<PoissonArrival>(
                    100.0, dc.makeRng("arrivals")),
                jobs, static_cast<std::size_t>(-1), 1 * sec);
        dc.run();
        return dumpString(dc);
    };
    std::string base = runIt(false);
    std::string knobs = runIt(true);
    EXPECT_EQ(base, knobs);
    EXPECT_EQ(base.find("orch."), std::string::npos);
}

TEST(Orchestrator, ConfigRoundTrip)
{
    auto cfg = Config::parseString(R"(
[datacenter]
servers = 6
[orch]
placement = spread
overcommit = 1.5
interference = 0.25
replicas = 3
container_cores = 2
autoscale = true
migration_dirty_frac = 0.125
migration_stop_copy_mb = 2
)");
    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    EXPECT_TRUE(dc_cfg.orch.enabled); // implied by orch.* presence
    EXPECT_EQ(dc_cfg.orch.placement, "spread");
    EXPECT_DOUBLE_EQ(dc_cfg.orch.overcommit, 1.5);
    EXPECT_DOUBLE_EQ(dc_cfg.orch.interference, 0.25);
    EXPECT_EQ(dc_cfg.orch.replicas, 3u);
    EXPECT_DOUBLE_EQ(dc_cfg.orch.containerCores, 2.0);
    EXPECT_TRUE(dc_cfg.orch.autoscale);
    EXPECT_DOUBLE_EQ(dc_cfg.orch.migrationDirtyFrac, 0.125);
    EXPECT_EQ(dc_cfg.orch.migrationStopCopyBytes,
              static_cast<Bytes>(2) << 20);

    // Explicit veto wins over key presence.
    cfg.set("orch.enabled", "false");
    EXPECT_FALSE(DataCenterConfig::fromConfig(cfg).orch.enabled);

    // Bad knobs are rejected at validation time.
    cfg.set("orch.enabled", "true");
    cfg.set("orch.placement", "best_fit");
    EXPECT_THROW(DataCenterConfig::fromConfig(cfg), FatalError);
}
