/**
 * @file
 * Unit tests for the INI config parser.
 */

#include <gtest/gtest.h>

#include "dc/dc_config.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

using namespace holdcsim;

TEST(Config, ParsesSectionsAndTypes)
{
    auto cfg = Config::parseString(R"(
top = 1
[server]
count = 50       ; fifty servers
cores = 4
freq_ghz = 2.8
hetero = false
[workload]
kind = poisson
utilization = 0.3
)");
    EXPECT_EQ(cfg.getInt("top"), 1);
    EXPECT_EQ(cfg.getInt("server.count"), 50);
    EXPECT_EQ(cfg.getInt("server.cores"), 4);
    EXPECT_DOUBLE_EQ(cfg.getDouble("server.freq_ghz"), 2.8);
    EXPECT_FALSE(cfg.getBool("server.hetero"));
    EXPECT_EQ(cfg.getString("workload.kind"), "poisson");
    EXPECT_DOUBLE_EQ(cfg.getDouble("workload.utilization"), 0.3);
}

TEST(Config, CommentsAndBlankLinesIgnored)
{
    auto cfg = Config::parseString(
        "# leading comment\n\n  ; another\nkey = value # trailing\n");
    EXPECT_EQ(cfg.getString("key"), "value");
}

TEST(Config, DefaultsApplyOnlyWhenMissing)
{
    auto cfg = Config::parseString("a = 5\n");
    EXPECT_EQ(cfg.getInt("a", 9), 5);
    EXPECT_EQ(cfg.getInt("b", 9), 9);
    EXPECT_EQ(cfg.getString("c", "x"), "x");
    EXPECT_TRUE(cfg.getBool("d", true));
    EXPECT_DOUBLE_EQ(cfg.getDouble("e", 1.5), 1.5);
}

TEST(Config, MissingKeyIsFatal)
{
    auto cfg = Config::parseString("");
    EXPECT_THROW(cfg.getString("nope"), FatalError);
    EXPECT_THROW(cfg.getInt("nope"), FatalError);
}

TEST(Config, BadValuesAreFatal)
{
    auto cfg = Config::parseString("i = abc\nf = 1.2.3\nb = maybe\n");
    EXPECT_THROW(cfg.getInt("i"), FatalError);
    EXPECT_THROW(cfg.getDouble("f"), FatalError);
    EXPECT_THROW(cfg.getBool("b"), FatalError);
}

TEST(Config, MalformedLinesAreFatal)
{
    EXPECT_THROW(Config::parseString("[unterminated\n"), FatalError);
    EXPECT_THROW(Config::parseString("no equals sign\n"), FatalError);
    EXPECT_THROW(Config::parseString("= value\n"), FatalError);
}

TEST(Config, BoolSpellings)
{
    auto cfg = Config::parseString(
        "a = true\nb = Yes\nc = ON\nd = 1\ne = false\nf = no\n"
        "g = off\nh = 0\n");
    EXPECT_TRUE(cfg.getBool("a"));
    EXPECT_TRUE(cfg.getBool("b"));
    EXPECT_TRUE(cfg.getBool("c"));
    EXPECT_TRUE(cfg.getBool("d"));
    EXPECT_FALSE(cfg.getBool("e"));
    EXPECT_FALSE(cfg.getBool("f"));
    EXPECT_FALSE(cfg.getBool("g"));
    EXPECT_FALSE(cfg.getBool("h"));
}

TEST(Config, SetOverridesAndKeysSorted)
{
    auto cfg = Config::parseString("b = 2\na = 1\n");
    cfg.set("c", "3");
    cfg.set("a", "10");
    EXPECT_EQ(cfg.getInt("a"), 10);
    auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
    EXPECT_EQ(keys[2], "c");
}

TEST(Config, LoadMissingFileIsFatal)
{
    EXPECT_THROW(Config::load("/nonexistent/holdcsim.ini"), FatalError);
}

namespace {

std::string
capturedUnknownKeyWarnings(const std::string &ini)
{
    auto cfg = Config::parseString(ini);
    ::testing::internal::CaptureStderr();
    warnUnknownConfigKeys(cfg);
    return ::testing::internal::GetCapturedStderr();
}

} // namespace

TEST(Config, KnownOrchKeysDoNotWarn)
{
    std::string out = capturedUnknownKeyWarnings(R"(
[orch]
enabled = true
placement = spread
replicas = 3
autoscale = true
migration_dirty_frac = 0.25
)");
    EXPECT_EQ(out, "") << out;
}

TEST(Config, UnknownKeyWarnsWithNearestSuggestion)
{
    // One edit away: suggest the known spelling.
    std::string out = capturedUnknownKeyWarnings("[orch]\nreplcas = 3\n");
    EXPECT_NE(out.find("orch.replcas"), std::string::npos) << out;
    EXPECT_NE(out.find("did you mean 'orch.replicas'"), std::string::npos)
        << out;

    // Two edits away still qualifies.
    out = capturedUnknownKeyWarnings("[orch]\nplacemnet = spread\n");
    EXPECT_NE(out.find("did you mean 'orch.placement'"), std::string::npos)
        << out;
}

TEST(Config, FarFetchedKeyGetsNoSuggestion)
{
    std::string out =
        capturedUnknownKeyWarnings("[orch]\nzzz_flux_capacitor = 1\n");
    EXPECT_NE(out.find("orch.zzz_flux_capacitor"), std::string::npos) << out;
    EXPECT_EQ(out.find("did you mean"), std::string::npos) << out;
}
