/**
 * @file
 * Unit and statistical tests for arrival processes and service-time
 * models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/logging.hh"
#include "workload/arrival.hh"
#include "workload/service.hh"

using namespace holdcsim;

TEST(PoissonArrival, MeanRateMatches)
{
    const double rate = 200.0; // jobs/s
    PoissonArrival arr(rate, Rng(1, "poisson"));
    const int n = 100000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = arr.nextArrival();
    double measured = n / toSeconds(last);
    EXPECT_NEAR(measured, rate, rate * 0.02);
}

TEST(PoissonArrival, ArrivalsStrictlyOrdered)
{
    PoissonArrival arr(1000.0, Rng(2, "poisson"));
    Tick prev = 0;
    for (int i = 0; i < 1000; ++i) {
        Tick t = arr.nextArrival();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(PoissonArrival, InterarrivalCvNearOne)
{
    // Exponential gaps: coefficient of variation = 1.
    PoissonArrival arr(100.0, Rng(3, "poisson"));
    std::vector<double> gaps;
    Tick prev = 0;
    for (int i = 0; i < 50000; ++i) {
        Tick t = arr.nextArrival();
        gaps.push_back(toSeconds(t - prev));
        prev = t;
    }
    double sum = 0, sumsq = 0;
    for (double g : gaps) {
        sum += g;
        sumsq += g * g;
    }
    double mean = sum / gaps.size();
    double var = sumsq / gaps.size() - mean * mean;
    double cv = std::sqrt(var) / mean;
    EXPECT_NEAR(cv, 1.0, 0.05);
}

TEST(PoissonArrival, RateForUtilization)
{
    // rho = lambda * meanService / (nServers * nCores)
    double lambda =
        PoissonArrival::rateForUtilization(0.3, 50, 4, 0.005);
    EXPECT_DOUBLE_EQ(lambda, 0.3 * 50 * 4 / 0.005);
    EXPECT_THROW(PoissonArrival::rateForUtilization(0, 50, 4, 0.005),
                 FatalError);
}

TEST(PoissonArrival, RejectsBadRate)
{
    EXPECT_THROW(PoissonArrival(-1.0, Rng(1)), FatalError);
    EXPECT_THROW(PoissonArrival(0.0, Rng(1)), FatalError);
}

TEST(Mmpp2Arrival, AverageRateFormula)
{
    Mmpp2Arrival arr(1000.0, 100.0, 1.0, 9.0, Rng(4, "mmpp"));
    // 10% of time at 1000/s, 90% at 100/s.
    EXPECT_DOUBLE_EQ(arr.averageRate(), 0.1 * 1000.0 + 0.9 * 100.0);
    EXPECT_DOUBLE_EQ(arr.burstinessRatio(), 10.0);
}

TEST(Mmpp2Arrival, MeasuredRateMatchesAverage)
{
    // Convergence of n/T is slow for MMPP (per-cycle counts have
    // high variance), so use many cycles and a loose band.
    Mmpp2Arrival arr(500.0, 50.0, 2.0, 8.0, Rng(5, "mmpp"));
    const int n = 1000000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = arr.nextArrival();
    double measured = n / toSeconds(last);
    EXPECT_NEAR(measured, arr.averageRate(), arr.averageRate() * 0.08);
}

TEST(Mmpp2Arrival, BurstierThanPoisson)
{
    // Index of dispersion of counts (variance/mean of per-window
    // counts) is 1 for Poisson, > 1 for MMPP.
    Mmpp2Arrival mmpp(2000.0, 100.0, 0.5, 2.0, Rng(6, "mmpp"));
    std::vector<int> counts;
    const Tick window = 100 * msec;
    Tick limit = window;
    int current = 0;
    for (int i = 0; i < 100000; ++i) {
        Tick t = mmpp.nextArrival();
        while (t >= limit) {
            counts.push_back(current);
            current = 0;
            limit += window;
        }
        ++current;
    }
    double sum = 0, sumsq = 0;
    for (int c : counts) {
        sum += c;
        sumsq += static_cast<double>(c) * c;
    }
    double mean = sum / counts.size();
    double var = sumsq / counts.size() - mean * mean;
    EXPECT_GT(var / mean, 2.0); // strongly over-dispersed
}

TEST(Mmpp2Arrival, RejectsInvalidParameters)
{
    EXPECT_THROW(Mmpp2Arrival(0.0, 0.0, 1.0, 1.0, Rng(1)), FatalError);
    EXPECT_THROW(Mmpp2Arrival(10.0, 20.0, 1.0, 1.0, Rng(1)),
                 FatalError); // high < low
    EXPECT_THROW(Mmpp2Arrival(20.0, 10.0, 0.0, 1.0, Rng(1)), FatalError);
}

TEST(TraceArrival, ReplaysExactly)
{
    std::vector<Tick> times{10, 20, 20, 35};
    TraceArrival arr(times);
    EXPECT_FALSE(arr.exhausted());
    EXPECT_EQ(arr.remaining(), 4u);
    for (Tick t : times)
        EXPECT_EQ(arr.nextArrival(), t);
    EXPECT_TRUE(arr.exhausted());
}

TEST(TraceArrival, RejectsUnsortedTrace)
{
    EXPECT_THROW(TraceArrival({30, 10}), FatalError);
}

// ------------------------------------------------------------ service models

TEST(ServiceModels, FixedAlwaysSame)
{
    FixedService s(5 * msec);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(s.sample(), 5 * msec);
    EXPECT_DOUBLE_EQ(s.meanSeconds(), 0.005);
}

TEST(ServiceModels, ExponentialMean)
{
    ExponentialService s(120 * msec, Rng(7, "svc"));
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(s.sample());
    EXPECT_NEAR(sum / n, 0.120, 0.003);
}

TEST(ServiceModels, UniformBoundsAndMean)
{
    UniformService s(3 * msec, 10 * msec, Rng(8, "svc"));
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        Tick t = s.sample();
        EXPECT_GE(t, 3 * msec);
        EXPECT_LE(t, 10 * msec);
        sum += toSeconds(t);
    }
    EXPECT_NEAR(sum / n, 0.0065, 0.0002);
}

TEST(ServiceModels, ParetoBoundsRespected)
{
    BoundedParetoService s(1.5, 1 * msec, 1 * sec, Rng(9, "svc"));
    for (int i = 0; i < 20000; ++i) {
        Tick t = s.sample();
        EXPECT_GE(t, 1 * msec);
        EXPECT_LE(t, 1 * sec);
    }
}

TEST(ServiceModels, ParetoEmpiricalMeanMatchesFormula)
{
    BoundedParetoService s(1.5, 1 * msec, 1 * sec, Rng(10, "svc"));
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(s.sample());
    EXPECT_NEAR(sum / n, s.meanSeconds(), s.meanSeconds() * 0.05);
}

TEST(ServiceModels, EmpiricalResamples)
{
    EmpiricalService s({1 * msec, 2 * msec, 3 * msec}, Rng(11, "svc"));
    for (int i = 0; i < 1000; ++i) {
        Tick t = s.sample();
        EXPECT_TRUE(t == 1 * msec || t == 2 * msec || t == 3 * msec);
    }
    EXPECT_DOUBLE_EQ(s.meanSeconds(), 0.002);
    EXPECT_THROW(EmpiricalService({}, Rng(1)), FatalError);
}

TEST(ServiceModels, FactoryByName)
{
    auto fixed = makeServiceModel("fixed", 5 * msec, 0, Rng(12));
    EXPECT_EQ(fixed->sample(), 5 * msec);
    auto expo = makeServiceModel("exponential", 5 * msec, 0, Rng(12));
    EXPECT_GT(expo->sample(), 0u);
    auto uni = makeServiceModel("uniform", 3 * msec, 10 * msec, Rng(12));
    EXPECT_GE(uni->sample(), 3 * msec);
    auto par = makeServiceModel("pareto", 1 * msec, 1 * sec, Rng(12));
    EXPECT_GE(par->sample(), 1 * msec);
    EXPECT_THROW(makeServiceModel("bogus", 1, 1, Rng(12)), FatalError);
}
