/**
 * @file
 * Unit tests for the event queue and simulation engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

using namespace holdcsim;

namespace {

/** Collects the order in which tagged events fire. */
struct TraceEvent : Event {
    TraceEvent(std::vector<int> &log, int tag, int prio = defaultPriority)
        : Event("trace", prio), log(log), tag(tag)
    {}
    void process() override { log.push_back(tag); }
    std::vector<int> &log;
    int tag;
};

} // namespace

TEST(EventQueue, OrdersByTick)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3);
    sim.schedule(b, 20);
    sim.schedule(c, 30);
    sim.schedule(a, 10);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.curTick(), 30u);
}

TEST(EventQueue, FifoAmongSimultaneous)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3), d(log, 4);
    sim.schedule(a, 5);
    sim.schedule(b, 5);
    sim.schedule(c, 5);
    sim.schedule(d, 5);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBeatsFifoWithinTick)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent normal(log, 1, Event::defaultPriority);
    TraceEvent power(log, 2, Event::powerPriority);
    TraceEvent stats(log, 3, Event::statsPriority);
    sim.schedule(stats, 7);
    sim.schedule(normal, 7);
    sim.schedule(power, 7);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.reschedule(a, 30);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(sim.curTick(), 30u);
}

TEST(EventQueue, RescheduleOfUnscheduledSchedules)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    sim.reschedule(a, 15);
    EXPECT_TRUE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    EXPECT_TRUE(q.empty());
    q.schedule(a, 1);
    q.schedule(b, 2);
    EXPECT_EQ(q.size(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(&q.pop(), &b);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyRedundantReschedulesStayCorrect)
{
    // Exercises lazy deletion: stale heap entries must be skipped.
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    for (int i = 0; i < 1000; ++i)
        sim.reschedule(a, 1000 + static_cast<Tick>(i));
    EXPECT_EQ(sim.eventQueue().size(), 1u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(sim.curTick(), 1999u);
}

TEST(Simulator, LambdaEventsAndSelfRescheduling)
{
    Simulator sim;
    int count = 0;
    EventFunctionWrapper tick(
        [&] {
            ++count;
            if (count < 5)
                sim.scheduleAfter(tick, 10);
        },
        "tick");
    sim.schedule(tick, 0);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.curTick(), 40u);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.schedule(c, 30);
    Tick t = sim.runUntil(20);
    EXPECT_EQ(t, 20u);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_TRUE(sim.hasPendingEvents());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    sim.schedule(a, 10);
    Tick t = sim.runUntil(100);
    EXPECT_EQ(t, 100u);
    EXPECT_EQ(sim.curTick(), 100u);
}

TEST(Simulator, StopAbortsRun)
{
    Simulator sim;
    std::vector<int> log;
    EventFunctionWrapper stopper([&] { sim.stop(); }, "stopper");
    TraceEvent late(log, 9);
    sim.schedule(stopper, 5);
    sim.schedule(late, 10);
    sim.run();
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(sim.hasPendingEvents());
    EXPECT_EQ(sim.curTick(), 5u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{9}));
}

TEST(Simulator, EventsProcessedCounts)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 1);
    sim.schedule(b, 2);
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), 2u);
}

TEST(Simulator, EventScheduledDuringProcessingRuns)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent child(log, 2);
    EventFunctionWrapper parent(
        [&] {
            log.push_back(1);
            sim.scheduleAfter(child, 0); // same-tick child
        },
        "parent");
    sim.schedule(parent, 10);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.curTick(), 10u);
}

TEST(Types, UnitConversions)
{
    EXPECT_EQ(sec, 1000u * msec);
    EXPECT_EQ(msec, 1000u * usec);
    EXPECT_DOUBLE_EQ(toSeconds(2 * sec + 500 * msec), 2.5);
    EXPECT_EQ(fromSeconds(0.001), msec);
    EXPECT_DOUBLE_EQ(energyOver(100.0, 10 * sec), 1000.0);
}

TEST(Types, SerializationDelay)
{
    // 1500 bytes at 1 Gb/s = 12 us.
    EXPECT_EQ(serializationDelay(1500, 1e9), 12 * usec);
    // 100 MB at 1 Gb/s = 0.8 s.
    EXPECT_EQ(serializationDelay(100'000'000ull, 1e9), 800 * msec);
    EXPECT_EQ(serializationDelay(0, 1e9), 0u);
    // Tiny payloads still advance time.
    EXPECT_GE(serializationDelay(1, 1e12), 1u);
}

TEST(EventQueue, DescheduleMidHeapPreservesOrder)
{
    // Components destroyed or crashed mid-simulation deschedule
    // events sitting anywhere in the heap; the remaining schedule
    // must be untouched.
    Simulator sim;
    std::vector<int> log;
    std::deque<TraceEvent> evs;
    for (int i = 0; i < 32; ++i) {
        evs.emplace_back(log, i);
        sim.schedule(evs.back(), static_cast<Tick>(10 * (i + 1)));
    }
    sim.deschedule(evs[10]);
    sim.deschedule(evs[20]);
    sim.deschedule(evs[25]);
    EXPECT_FALSE(evs[10].scheduled());
    sim.run();

    EXPECT_EQ(log.size(), 29u);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_LT(log[i - 1], log[i]);
    for (int victim : {10, 20, 25})
        EXPECT_EQ(std::count(log.begin(), log.end(), victim), 0);
}

TEST(EventQueue, DescheduledEventReschedulesCleanly)
{
    // A crashed component's pending event may be re-armed by the
    // repair path: the same Event object must go around again.
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.deschedule(a);
    EXPECT_FALSE(a.scheduled());

    sim.schedule(a, 30);
    EXPECT_TRUE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(sim.curTick(), 30u);

    // And once fired it is free to be scheduled yet again.
    sim.schedule(a, 40);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 1}));
}

TEST(EventQueue, ChurnPropertyPreservesCountsAndFifo)
{
    // Property test: arbitrary schedule/deschedule/reschedule churn
    // over a mix of background and foreground events must keep
    // size()/foregroundCount() consistent with a shadow model, and
    // draining must fire events in exact (tick, priority, schedule
    // sequence) order -- FIFO among equal (tick, priority) pairs.
    struct ModelEntry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        std::size_t index;
    };
    constexpr std::size_t n_events = 48;
    constexpr int n_ops = 3000;
    const int priorities[] = {Event::powerPriority,
                              Event::defaultPriority,
                              Event::statsPriority};

    for (std::uint64_t trial = 0; trial < 4; ++trial) {
        Rng rng(1000 + trial, "churn");
        EventQueue queue;
        std::vector<std::unique_ptr<EventFunctionWrapper>> events;
        std::vector<bool> isBackground;
        for (std::size_t i = 0; i < n_events; ++i) {
            int prio = priorities[i % 3];
            events.push_back(std::make_unique<EventFunctionWrapper>(
                [] {}, "churn." + std::to_string(i), prio));
            bool bg = i % 4 == 0;
            events.back()->setBackground(bg);
            isBackground.push_back(bg);
        }

        std::vector<ModelEntry> model; // scheduled events only
        std::uint64_t next_sequence = 0;
        auto modelFind = [&](std::size_t i) {
            for (std::size_t m = 0; m < model.size(); ++m) {
                if (model[m].index == i)
                    return m;
            }
            return model.size();
        };

        for (int op = 0; op < n_ops; ++op) {
            std::size_t i = rng.uniformInt(0, n_events - 1);
            // Few distinct ticks, so collisions are the common case.
            Tick when = rng.uniformInt(0, 40);
            Event &ev = *events[i];
            if (!ev.scheduled()) {
                queue.schedule(ev, when);
                model.push_back(
                    {when, ev.priority(), next_sequence++, i});
            } else if (rng.bernoulli(0.5)) {
                queue.deschedule(ev);
                model.erase(model.begin() + modelFind(i));
            } else {
                queue.reschedule(ev, when);
                model.erase(model.begin() + modelFind(i));
                model.push_back(
                    {when, ev.priority(), next_sequence++, i});
            }

            ASSERT_EQ(queue.size(), model.size());
            std::size_t foreground = 0;
            for (const ModelEntry &m : model)
                foreground += !isBackground[m.index];
            ASSERT_EQ(queue.foregroundCount(), foreground);
        }

        // Drain: the queue must agree with the model's total order.
        std::stable_sort(model.begin(), model.end(),
                         [](const ModelEntry &a, const ModelEntry &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             if (a.priority != b.priority)
                                 return a.priority < b.priority;
                             return a.sequence < b.sequence;
                         });
        for (const ModelEntry &m : model) {
            ASSERT_FALSE(queue.empty());
            EXPECT_EQ(queue.nextTick(), m.when);
            Event &ev = queue.pop();
            EXPECT_EQ(&ev, events[m.index].get());
        }
        EXPECT_TRUE(queue.empty());
        EXPECT_EQ(queue.foregroundCount(), 0u);
    }
}
