/**
 * @file
 * Unit tests for the event queue and simulation engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/one_shot.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

using namespace holdcsim;

namespace {

/** Collects the order in which tagged events fire. */
struct TraceEvent : Event {
    TraceEvent(std::vector<int> &log, int tag, int prio = defaultPriority)
        : Event("trace", prio), log(log), tag(tag)
    {}
    void process() override { log.push_back(tag); }
    std::vector<int> &log;
    int tag;
};

} // namespace

TEST(EventQueue, OrdersByTick)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3);
    sim.schedule(b, 20);
    sim.schedule(c, 30);
    sim.schedule(a, 10);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.curTick(), 30u);
}

TEST(EventQueue, FifoAmongSimultaneous)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3), d(log, 4);
    sim.schedule(a, 5);
    sim.schedule(b, 5);
    sim.schedule(c, 5);
    sim.schedule(d, 5);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBeatsFifoWithinTick)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent normal(log, 1, Event::defaultPriority);
    TraceEvent power(log, 2, Event::powerPriority);
    TraceEvent stats(log, 3, Event::statsPriority);
    sim.schedule(stats, 7);
    sim.schedule(normal, 7);
    sim.schedule(power, 7);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.reschedule(a, 30);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(sim.curTick(), 30u);
}

TEST(EventQueue, RescheduleOfUnscheduledSchedules)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    sim.reschedule(a, 15);
    EXPECT_TRUE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    EXPECT_TRUE(q.empty());
    q.schedule(a, 1);
    q.schedule(b, 2);
    EXPECT_EQ(q.size(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(&q.pop(), &b);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyRedundantReschedulesStayCorrect)
{
    // Exercises lazy deletion: stale heap entries must be skipped.
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    for (int i = 0; i < 1000; ++i)
        sim.reschedule(a, 1000 + static_cast<Tick>(i));
    EXPECT_EQ(sim.eventQueue().size(), 1u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(sim.curTick(), 1999u);
}

TEST(Simulator, LambdaEventsAndSelfRescheduling)
{
    Simulator sim;
    int count = 0;
    EventFunctionWrapper tick(
        [&] {
            ++count;
            if (count < 5)
                sim.scheduleAfter(tick, 10);
        },
        "tick");
    sim.schedule(tick, 0);
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.curTick(), 40u);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2), c(log, 3);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.schedule(c, 30);
    Tick t = sim.runUntil(20);
    EXPECT_EQ(t, 20u);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_TRUE(sim.hasPendingEvents());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1);
    sim.schedule(a, 10);
    Tick t = sim.runUntil(100);
    EXPECT_EQ(t, 100u);
    EXPECT_EQ(sim.curTick(), 100u);
}

TEST(Simulator, StopAbortsRun)
{
    Simulator sim;
    std::vector<int> log;
    EventFunctionWrapper stopper([&] { sim.stop(); }, "stopper");
    TraceEvent late(log, 9);
    sim.schedule(stopper, 5);
    sim.schedule(late, 10);
    sim.run();
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(sim.hasPendingEvents());
    EXPECT_EQ(sim.curTick(), 5u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{9}));
}

TEST(Simulator, EventsProcessedCounts)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 1);
    sim.schedule(b, 2);
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), 2u);
}

TEST(Simulator, EventScheduledDuringProcessingRuns)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent child(log, 2);
    EventFunctionWrapper parent(
        [&] {
            log.push_back(1);
            sim.scheduleAfter(child, 0); // same-tick child
        },
        "parent");
    sim.schedule(parent, 10);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.curTick(), 10u);
}

TEST(Types, UnitConversions)
{
    EXPECT_EQ(sec, 1000u * msec);
    EXPECT_EQ(msec, 1000u * usec);
    EXPECT_DOUBLE_EQ(toSeconds(2 * sec + 500 * msec), 2.5);
    EXPECT_EQ(fromSeconds(0.001), msec);
    EXPECT_DOUBLE_EQ(energyOver(100.0, 10 * sec), 1000.0);
}

TEST(Types, SerializationDelay)
{
    // 1500 bytes at 1 Gb/s = 12 us.
    EXPECT_EQ(serializationDelay(1500, 1e9), 12 * usec);
    // 100 MB at 1 Gb/s = 0.8 s.
    EXPECT_EQ(serializationDelay(100'000'000ull, 1e9), 800 * msec);
    EXPECT_EQ(serializationDelay(0, 1e9), 0u);
    // Tiny payloads still advance time.
    EXPECT_GE(serializationDelay(1, 1e12), 1u);
}

TEST(EventQueue, DescheduleMidHeapPreservesOrder)
{
    // Components destroyed or crashed mid-simulation deschedule
    // events sitting anywhere in the heap; the remaining schedule
    // must be untouched.
    Simulator sim;
    std::vector<int> log;
    std::deque<TraceEvent> evs;
    for (int i = 0; i < 32; ++i) {
        evs.emplace_back(log, i);
        sim.schedule(evs.back(), static_cast<Tick>(10 * (i + 1)));
    }
    sim.deschedule(evs[10]);
    sim.deschedule(evs[20]);
    sim.deschedule(evs[25]);
    EXPECT_FALSE(evs[10].scheduled());
    sim.run();

    EXPECT_EQ(log.size(), 29u);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_LT(log[i - 1], log[i]);
    for (int victim : {10, 20, 25})
        EXPECT_EQ(std::count(log.begin(), log.end(), victim), 0);
}

TEST(EventQueue, DescheduledEventReschedulesCleanly)
{
    // A crashed component's pending event may be re-armed by the
    // repair path: the same Event object must go around again.
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 20);
    sim.deschedule(a);
    EXPECT_FALSE(a.scheduled());

    sim.schedule(a, 30);
    EXPECT_TRUE(a.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(sim.curTick(), 30u);

    // And once fired it is free to be scheduled yet again.
    sim.schedule(a, 40);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 1}));
}

TEST(EventQueue, ChurnPropertyPreservesCountsAndFifo)
{
    // Property test: arbitrary schedule/deschedule/reschedule churn
    // over a mix of background and foreground events must keep
    // size()/foregroundCount() consistent with a shadow model, and
    // draining must fire events in exact (tick, priority, schedule
    // sequence) order -- FIFO among equal (tick, priority) pairs.
    // The same trace runs in lockstep through the calendar and the
    // binary-heap backends, which must pop in identical order.
    struct ModelEntry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        std::size_t index;
    };
    constexpr std::size_t n_events = 48;
    constexpr int n_ops = 3000;
    const int priorities[] = {Event::powerPriority,
                              Event::defaultPriority,
                              Event::statsPriority};

    for (std::uint64_t trial = 0; trial < 4; ++trial) {
        Rng rng(1000 + trial, "churn");
        EventQueue cal(EventQueue::Backend::calendar);
        EventQueue heap(EventQueue::Backend::binaryHeap);
        std::vector<std::unique_ptr<EventFunctionWrapper>> calEvents;
        std::vector<std::unique_ptr<EventFunctionWrapper>> heapEvents;
        std::vector<bool> isBackground;
        for (std::size_t i = 0; i < n_events; ++i) {
            int prio = priorities[i % 3];
            bool bg = i % 4 == 0;
            for (auto *events : {&calEvents, &heapEvents}) {
                events->push_back(
                    std::make_unique<EventFunctionWrapper>(
                        [] {}, "churn." + std::to_string(i), prio));
                events->back()->setBackground(bg);
            }
            isBackground.push_back(bg);
        }

        std::vector<ModelEntry> model; // scheduled events only
        std::uint64_t next_sequence = 0;
        auto modelFind = [&](std::size_t i) {
            for (std::size_t m = 0; m < model.size(); ++m) {
                if (model[m].index == i)
                    return m;
            }
            return model.size();
        };

        for (int op = 0; op < n_ops; ++op) {
            std::size_t i = rng.uniformInt(0, n_events - 1);
            // Few distinct ticks, so collisions are the common case.
            Tick when = rng.uniformInt(0, 40);
            ASSERT_EQ(calEvents[i]->scheduled(),
                      heapEvents[i]->scheduled());
            if (!calEvents[i]->scheduled()) {
                cal.schedule(*calEvents[i], when);
                heap.schedule(*heapEvents[i], when);
                model.push_back(
                    {when, calEvents[i]->priority(), next_sequence++,
                     i});
            } else if (rng.bernoulli(0.5)) {
                cal.deschedule(*calEvents[i]);
                heap.deschedule(*heapEvents[i]);
                model.erase(model.begin() + modelFind(i));
            } else {
                cal.reschedule(*calEvents[i], when);
                heap.reschedule(*heapEvents[i], when);
                std::size_t m = modelFind(i);
                // Mirror the same-tick early-out: the event keeps its
                // FIFO position when the tick is unchanged.
                if (model[m].when != when) {
                    model.erase(model.begin() + m);
                    model.push_back({when, calEvents[i]->priority(),
                                     next_sequence++, i});
                }
            }

            ASSERT_EQ(cal.size(), model.size());
            ASSERT_EQ(heap.size(), model.size());
            std::size_t foreground = 0;
            for (const ModelEntry &m : model)
                foreground += !isBackground[m.index];
            ASSERT_EQ(cal.foregroundCount(), foreground);
            ASSERT_EQ(heap.foregroundCount(), foreground);
        }

        // Drain: both backends must agree with the model's total order.
        std::stable_sort(model.begin(), model.end(),
                         [](const ModelEntry &a, const ModelEntry &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             if (a.priority != b.priority)
                                 return a.priority < b.priority;
                             return a.sequence < b.sequence;
                         });
        for (const ModelEntry &m : model) {
            ASSERT_FALSE(cal.empty());
            ASSERT_FALSE(heap.empty());
            EXPECT_EQ(cal.nextTick(), m.when);
            EXPECT_EQ(heap.nextTick(), m.when);
            Event &cev = cal.pop();
            Event &hev = heap.pop();
            EXPECT_EQ(&cev, calEvents[m.index].get());
            EXPECT_EQ(&hev, heapEvents[m.index].get());
        }
        EXPECT_TRUE(cal.empty());
        EXPECT_TRUE(heap.empty());
        EXPECT_EQ(cal.foregroundCount(), 0u);
        EXPECT_EQ(heap.foregroundCount(), 0u);
    }
}

TEST(EventQueue, AdversarialAllSameTick)
{
    // Every event collides on one (tick, priority) pair: the calendar
    // degenerates to one bucket and must still drain in exact FIFO
    // order, matching the heap backend.
    constexpr std::size_t n = 512;
    EventQueue cal(EventQueue::Backend::calendar);
    EventQueue heap(EventQueue::Backend::binaryHeap);
    std::vector<std::unique_ptr<EventFunctionWrapper>> calEvents;
    std::vector<std::unique_ptr<EventFunctionWrapper>> heapEvents;
    for (std::size_t i = 0; i < n; ++i) {
        calEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "same"));
        heapEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "same"));
        cal.schedule(*calEvents.back(), 7);
        heap.schedule(*heapEvents.back(), 7);
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(&cal.pop(), calEvents[i].get());
        EXPECT_EQ(&heap.pop(), heapEvents[i].get());
        if (i == 0) {
            // The first pop must have spilled the oversized bucket to
            // the overflow heap: the burst then drains at O(log n)
            // per pop instead of an O(n) bucket scan per pop.
            EXPECT_GT(cal.counters().headSpills, 0u);
            EXPECT_GE(cal.counters().spilledEntries, n - 1);
            EXPECT_EQ(cal.auditConsistency(), "");
        }
    }
    EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, SameTickBurstWithInterleavedInserts)
{
    // Drain a spilled same-tick burst while new events keep arriving
    // at the same tick (the bulk-load + event-handler pattern): the
    // fresh inserts land in the head bucket, the spilled ones sit in
    // the overflow heap, and FIFO order must hold across the two
    // containers.
    constexpr std::size_t n = 300;
    EventQueue cal(EventQueue::Backend::calendar);
    EventQueue heap(EventQueue::Backend::binaryHeap);
    std::vector<std::unique_ptr<EventFunctionWrapper>> calEvents;
    std::vector<std::unique_ptr<EventFunctionWrapper>> heapEvents;
    auto add = [&](Tick when) {
        calEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "burst"));
        heapEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "burst"));
        cal.schedule(*calEvents.back(), when);
        heap.schedule(*heapEvents.back(), when);
    };
    for (std::size_t i = 0; i < n; ++i)
        add(11);
    for (std::size_t i = 0; i < 2 * n; ++i) {
        if (i < n)
            add(11); // arrives after the spill; sequence keeps order
        std::size_t ci = calEvents.size() - cal.size();
        EXPECT_EQ(&cal.pop(), calEvents[ci].get());
        EXPECT_EQ(&heap.pop(), heapEvents[ci].get());
    }
    EXPECT_TRUE(cal.empty());
    EXPECT_TRUE(heap.empty());
    EXPECT_GT(cal.counters().headSpills, 0u);
    EXPECT_EQ(cal.auditConsistency(), "");
}

TEST(EventQueue, SparseFarFutureSpillsAndMigrates)
{
    // Events spaced out to hours force the calendar to spill into
    // the overflow heap and to migrate entries back as the window
    // rebases; ordering must survive both.
    EventQueue cal(EventQueue::Backend::calendar);
    EventQueue heap(EventQueue::Backend::binaryHeap);
    std::vector<std::unique_ptr<EventFunctionWrapper>> calEvents;
    std::vector<std::unique_ptr<EventFunctionWrapper>> heapEvents;
    std::vector<Tick> whens;
    Tick t = 0;
    Tick gap = 1;
    for (int i = 0; i < 64; ++i) {
        whens.push_back(t);
        t += gap;
        gap *= 2; // 1 ns doubling up to ~2.5 hours
        if (gap > 2 * 3600 * sec)
            gap = 1;
    }
    // Schedule in a scrambled order so heap spills interleave with
    // near-future bucket inserts.
    for (std::size_t i = 0; i < whens.size(); ++i) {
        std::size_t j = (i * 37) % whens.size();
        calEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "sparse"));
        heapEvents.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "sparse"));
        cal.schedule(*calEvents.back(), whens[j]);
        heap.schedule(*heapEvents.back(), whens[j]);
    }
    EXPECT_GT(cal.counters().heapSchedules, 0u);
    Tick prev = 0;
    for (std::size_t i = 0; i < whens.size(); ++i) {
        Event &cev = cal.pop();
        Event &hev = heap.pop();
        EXPECT_GE(cev.when(), prev);
        EXPECT_EQ(cev.when(), hev.when());
        // Same scramble index => same event identity across backends.
        auto cit = std::find_if(calEvents.begin(), calEvents.end(),
                                [&](const auto &e) {
                                    return e.get() == &cev;
                                });
        auto hit = std::find_if(heapEvents.begin(), heapEvents.end(),
                                [&](const auto &e) {
                                    return e.get() == &hev;
                                });
        EXPECT_EQ(cit - calEvents.begin(), hit - heapEvents.begin());
        prev = cev.when();
    }
    EXPECT_TRUE(cal.empty());
    EXPECT_GT(cal.counters().rebases, 0u);
    EXPECT_GT(cal.counters().migratedEntries, 0u);
}

TEST(EventQueue, BucketWidthRecalibrates)
{
    // A steady millisecond-spaced hold pattern is 1000x wider than
    // the initial 1024-tick buckets; after a calibration window the
    // queue must rehash to a wider bucket and keep popping in order.
    EventQueue q;
    Tick initial_width = q.bucketWidth();
    EventFunctionWrapper ev([] {}, "hold");
    Tick t = 0;
    for (int i = 0; i < 10000; ++i) {
        q.schedule(ev, t);
        Event &popped = q.pop();
        EXPECT_EQ(&popped, &ev);
        EXPECT_EQ(popped.when(), t);
        t += msec;
    }
    EXPECT_GT(q.counters().recalibrations, 0u);
    EXPECT_GT(q.bucketWidth(), initial_width);
}

TEST(EventQueue, RescheduleSameTickKeepsFifoPosition)
{
    // reschedule() to the identical tick is a no-op: the event must
    // not lose its FIFO slot to a later-scheduled peer.
    Simulator sim;
    std::vector<int> log;
    TraceEvent a(log, 1), b(log, 2);
    sim.schedule(a, 10);
    sim.schedule(b, 10);
    sim.reschedule(a, 10); // early-out; a stays ahead of b
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));

    // Moving to a different tick still re-orders as a fresh insert.
    log.clear();
    sim.schedule(a, 20);
    sim.schedule(b, 20);
    sim.reschedule(a, 21);
    sim.reschedule(a, 20); // distinct tick hop => behind b now
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(Simulator, RunUntilDrainsSameTickChainsAtLimit)
{
    // runUntil(limit) is inclusive: events AT the limit run, and
    // same-tick children they spawn at the limit run too before
    // control returns. An event one tick past the limit stays queued.
    Simulator sim;
    std::vector<int> log;
    TraceEvent grandchild(log, 3);
    TraceEvent beyond(log, 9);
    EventFunctionWrapper child(
        [&] {
            log.push_back(2);
            sim.scheduleAfter(grandchild, 0);
        },
        "child");
    EventFunctionWrapper at_limit(
        [&] {
            log.push_back(1);
            sim.scheduleAfter(child, 0);
        },
        "atLimit");
    sim.schedule(at_limit, 50);
    sim.schedule(beyond, 51);
    Tick t = sim.runUntil(50);
    EXPECT_EQ(t, 50u);
    EXPECT_EQ(sim.curTick(), 50u);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(beyond.scheduled());
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 9}));
}

TEST(Simulator, StopDuringRunUntilKeepsClockAtStopTick)
{
    // stop() inside runUntil() must leave the clock at the tick that
    // requested the stop -- not jump it forward to the limit -- so a
    // caller can resume from where the simulation actually paused.
    Simulator sim;
    std::vector<int> log;
    EventFunctionWrapper stopper([&] { sim.stop(); }, "stopper");
    TraceEvent late(log, 9);
    sim.schedule(stopper, 5);
    sim.schedule(late, 7);
    Tick t = sim.runUntil(100);
    EXPECT_EQ(t, 5u);
    EXPECT_EQ(sim.curTick(), 5u);
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(sim.hasPendingEvents());
    sim.runUntil(100);
    EXPECT_EQ(log, (std::vector<int>{9}));
    EXPECT_EQ(sim.curTick(), 100u);
}

TEST(OneShotPool, FiresOnceAndRecycles)
{
    Simulator sim;
    OneShotPool pool(sim, "test");
    std::vector<int> log;
    pool.schedule(10, [&] { log.push_back(1); });
    pool.schedule(20, [&] { log.push_back(2); });
    pool.schedule(20, [&] { log.push_back(3); });
    EXPECT_EQ(pool.pending(), 3u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_EQ(pool.freeCount(), 3u);

    // Steady state reuses the free list instead of allocating.
    pool.schedule(5, [&] { log.push_back(4); });
    EXPECT_EQ(pool.pending(), 1u);
    EXPECT_EQ(pool.freeCount(), 2u);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(pool.freeCount(), 3u);
}

TEST(OneShotPool, OwnerDestructionCancelsPendingShots)
{
    Simulator sim;
    std::vector<int> log;
    TraceEvent survivor(log, 1);
    {
        OneShotPool pool(sim, "doomed");
        pool.schedule(10, [&] { log.push_back(99); });
        pool.schedule(30, [&] { log.push_back(98); });
        EXPECT_EQ(pool.pending(), 2u);
    } // owner dies with shots in flight
    sim.schedule(survivor, 20);
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(sim.curTick(), 20u);
}

TEST(OneShotPool, ShotMayRearmFromItsOwnCallback)
{
    // A shot's callback scheduling another shot is the common
    // self-perpetuating pattern (retry loops); the recycled slot must
    // be safely reusable from inside the firing callback.
    Simulator sim;
    OneShotPool pool(sim, "rearm");
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        if (fired < 5)
            pool.schedule(10, tick);
    };
    pool.schedule(10, tick);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(pool.pending(), 0u);
    // The chain reused one recycled slot instead of allocating five.
    EXPECT_EQ(pool.freeCount(), 1u);
}

// ------------------------------------------------------- queue consistency

TEST(EventQueueAudit, ConsistentThroughoutMixedWorkload)
{
    // The structural audit must hold at every point of a workload
    // that exercises both calendar buckets and the overflow heap
    // (far-future events), plus deschedules and reschedules.
    Simulator sim;
    Rng rng(7, "audit");
    std::deque<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 200; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [] {}, "audit_ev"));
        Tick when = static_cast<Tick>(rng.next() %
                                      (i % 3 == 0 ? 1000000000ULL
                                                  : 1000ULL));
        sim.schedule(*events.back(), sim.curTick() + when);
        if (i % 7 == 0 && events.size() > 3) {
            auto &victim = *events[events.size() / 2];
            if (victim.scheduled())
                sim.deschedule(victim);
        }
        if (i % 20 == 0)
            EXPECT_EQ(sim.eventQueue().auditConsistency(), "");
    }
    EXPECT_EQ(sim.eventQueue().auditConsistency(), "");
    sim.run();
    EXPECT_EQ(sim.eventQueue().auditConsistency(), "");
}

TEST(EventQueueAudit, BothBackendsPassWhenPopulated)
{
    for (auto backend : {EventQueue::Backend::calendar,
                         EventQueue::Backend::binaryHeap}) {
        Simulator sim(backend);
        std::vector<std::unique_ptr<EventFunctionWrapper>> events;
        for (int i = 0; i < 50; ++i) {
            events.push_back(std::make_unique<EventFunctionWrapper>(
                [] {}, "ev"));
            sim.schedule(*events.back(),
                         static_cast<Tick>(i) * 37 % 500);
        }
        EXPECT_EQ(sim.eventQueue().auditConsistency(), "");
        sim.run();
        EXPECT_EQ(sim.eventQueue().auditConsistency(), "");
    }
}
