/**
 * @file
 * Tests for the telemetry subsystem: trace sinks and manager (the
 * JSON backend must emit parseable Chrome trace-event documents),
 * the periodic sampler (period arithmetic, rollover safety), the
 * kernel profiler (its count must agree with the simulator's own),
 * and the end-to-end guarantee that disabled telemetry changes
 * nothing.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "telemetry/profiler.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_manager.hh"
#include "telemetry/trace_sink.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

// ------------------------------------------------- minimal JSON parser
// Just enough of RFC 8259 to verify that an emitted trace document is
// one complete, well-formed JSON value with no trailing garbage.

struct JsonParser {
    const std::string &s;
    std::size_t i = 0;

    explicit JsonParser(const std::string &text) : s(text) {}

    void ws()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-')) {
            ++i;
        }
        return i > start;
    }

    bool value()
    {
        ws();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool object()
    {
        ++i; // '{'
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool array()
    {
        ++i; // '['
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }
};

bool
jsonWellFormed(const std::string &text)
{
    JsonParser p(text);
    if (!p.value())
        return false;
    p.ws();
    return p.i == text.size();
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++n;
    }
    return n;
}

std::shared_ptr<ServiceModel>
fixedSvc(Tick t)
{
    return std::make_shared<FixedService>(t);
}

/** Run a small deterministic experiment and return its stats dump. */
std::string
runAndDump(DataCenterConfig cfg)
{
    cfg.nServers = 4;
    cfg.nCores = 2;
    cfg.seed = 11;
    DataCenter dc(cfg);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 2 * msec, 4 * msec, 40 * msec, 41 * msec}, gen);
    dc.run();
    std::ostringstream os;
    dc.dumpStats(os);
    return os.str();
}

} // namespace

// ------------------------------------------------------- trace sinks

TEST(JsonTraceSinkTest, EmitsWellFormedDocument)
{
    std::ostringstream os;
    {
        TraceManager tm(std::make_unique<JsonTraceSink>(os));
        TraceTrackId t = tm.track("servers", "server0");
        tm.transition(t, TraceCategory::server, "idle", 0);
        tm.transition(t, TraceCategory::server, "active", 3 * msec);
        tm.instant(t, TraceCategory::server, "marker", 4 * msec);
        tm.asyncBegin(t, TraceCategory::flow, "flow", 7, 1 * msec);
        tm.asyncEnd(t, TraceCategory::flow, "flow", 7, 9 * msec);
        tm.flush(10 * msec);
    }
    std::string doc = os.str();
    EXPECT_TRUE(jsonWellFormed(doc)) << doc;
    // Track metadata, two closed slices, one instant, one async pair.
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"M\""), 2u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"X\""), 2u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"b\""), 1u);
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"e\""), 1u);
}

TEST(JsonTraceSinkTest, EscapesSpecialCharacters)
{
    std::ostringstream os;
    {
        TraceManager tm(std::make_unique<JsonTraceSink>(os));
        TraceTrackId t = tm.track("g", "t");
        tm.instant(t, TraceCategory::task, "quote\"back\\slash",
                   1 * msec);
        tm.flush(1 * msec);
    }
    EXPECT_TRUE(jsonWellFormed(os.str())) << os.str();
}

TEST(JsonTraceSinkTest, TimestampsAreExactMicroseconds)
{
    std::ostringstream os;
    {
        TraceManager tm(std::make_unique<JsonTraceSink>(os));
        TraceTrackId t = tm.track("g", "t");
        // 1234567 ns = 1234.567 us: the sub-microsecond digits must
        // survive (no double rounding).
        tm.instant(t, TraceCategory::task, "m", 1234567);
        tm.flush(1234567);
    }
    EXPECT_NE(os.str().find("1234.567"), std::string::npos) << os.str();
}

TEST(CsvTraceSinkTest, RowsMatchRecords)
{
    std::ostringstream os;
    {
        TraceManager tm(std::make_unique<CsvTraceSink>(os));
        TraceTrackId t = tm.track("servers", "server0");
        tm.transition(t, TraceCategory::server, "idle", 0);
        tm.transition(t, TraceCategory::server, "active", 5 * msec);
        tm.flush(10 * msec);
    }
    std::istringstream in(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        ++lines;
    // Header + 2 metadata rows + 2 closed slices.
    EXPECT_EQ(lines, 5u);
    EXPECT_EQ(os.str().rfind("type,pid,tid,name,category,", 0), 0u);
}

// ----------------------------------------------------- trace manager

TEST(TraceManagerTest, CategoryMaskSuppressesRecords)
{
    std::ostringstream os;
    std::uint64_t emitted = 0;
    {
        TraceManager tm(std::make_unique<JsonTraceSink>(os),
                        parseTraceCategories("server"));
        EXPECT_TRUE(tm.wants(TraceCategory::server));
        EXPECT_FALSE(tm.wants(TraceCategory::flow));
        TraceTrackId t = tm.track("servers", "server0");
        tm.transition(t, TraceCategory::flow, "x", 0);
        tm.instant(t, TraceCategory::flow, "y", 1 * msec);
        tm.flush(2 * msec);
        emitted = tm.eventsEmitted();
    }
    // Only the two track-metadata records survive the mask.
    EXPECT_EQ(emitted, 2u);
    EXPECT_TRUE(jsonWellFormed(os.str())) << os.str();
}

TEST(TraceManagerTest, ParseCategories)
{
    EXPECT_EQ(parseTraceCategories("all"), allTraceCategories);
    EXPECT_EQ(parseTraceCategories(""), allTraceCategories);
    EXPECT_EQ(parseTraceCategories("server,task"),
              static_cast<std::uint32_t>(TraceCategory::server) |
                  static_cast<std::uint32_t>(TraceCategory::task));
    EXPECT_THROW(parseTraceCategories("bogus"), FatalError);
}

TEST(TraceManagerTest, FlushClosesOpenSlicesOnce)
{
    std::ostringstream os;
    TraceManager tm(std::make_unique<JsonTraceSink>(os));
    TraceTrackId t = tm.track("g", "t");
    tm.transition(t, TraceCategory::server, "busy", 0);
    tm.flush(5 * msec);
    tm.flush(9 * msec); // idempotent; must not re-close or re-emit
    tm.transition(t, TraceCategory::server, "late", 10 * msec);
    std::string doc = os.str();
    EXPECT_TRUE(jsonWellFormed(doc)) << doc;
    EXPECT_EQ(countOccurrences(doc, "\"ph\":\"X\""), 1u);
}

TEST(TraceManagerTest, TrackHandlesAreStable)
{
    std::ostringstream os;
    TraceManager tm(std::make_unique<JsonTraceSink>(os));
    TraceTrackId a = tm.track("servers", "server0");
    TraceTrackId b = tm.track("servers", "server1");
    EXPECT_NE(a, b);
    EXPECT_EQ(tm.track("servers", "server0"), a);
    tm.flush(0);
}

// ----------------------------------------------------------- sampler

TEST(SamplerTest, SamplesAtFixedPeriodWithBaseline)
{
    Simulator sim;
    std::ostringstream os;
    Sampler sampler(sim, os, 10 * msec);
    sampler.addProbe("clock_s", [&] { return toSeconds(sim.curTick()); });
    sampler.addProbe("answer", [] { return 42.0; });

    // Foreground work keeps the simulation alive to 35 ms; the
    // sampler itself (a background event) must not extend the run.
    EventFunctionWrapper work([] {}, "work");
    sim.schedule(work, 35 * msec);
    sampler.start();
    sim.run();

    EXPECT_EQ(sim.curTick(), 35 * msec);
    // Baseline at 0 plus ticks at 10/20/30 ms; the 40 ms snapshot
    // never fires (rollover-safe: no partial trailing sample).
    EXPECT_EQ(sampler.samplesTaken(), 4u);
    EXPECT_EQ(sampler.rowsWritten(), 8u);

    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "time_s,metric,value");
    std::size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, 8u);
    EXPECT_NE(os.str().find("0.03,clock_s,0.03"), std::string::npos)
        << os.str();
}

TEST(SamplerTest, StopDisarms)
{
    Simulator sim;
    std::ostringstream os;
    Sampler sampler(sim, os, 10 * msec);
    sampler.addProbe("one", [] { return 1.0; });
    EventFunctionWrapper work([] {}, "work");
    sim.schedule(work, 50 * msec);
    sampler.start();
    sampler.stop();
    sim.run();
    EXPECT_EQ(sampler.samplesTaken(), 1u); // baseline only
}

TEST(SamplerTest, LateProbeRegistrationFatals)
{
    Simulator sim;
    std::ostringstream os;
    Sampler sampler(sim, os, 10 * msec);
    sampler.start();
    EXPECT_THROW(sampler.addProbe("late", [] { return 0.0; }),
                 FatalError);
}

TEST(SamplerTest, ZeroPeriodFatals)
{
    Simulator sim;
    std::ostringstream os;
    EXPECT_THROW(Sampler(sim, os, 0), FatalError);
}

// ---------------------------------------------------------- profiler

TEST(KernelProfilerTest, CountMatchesSimulatorExactly)
{
    Simulator sim;
    KernelProfiler profiler;
    sim.setProbe(&profiler);

    EventFunctionWrapper ping([] {}, "ping");
    EventFunctionWrapper pong([] {}, "pong");
    for (Tick t = 1; t <= 20; ++t) {
        sim.schedule(ping, t * msec);
        sim.run();
        sim.schedule(pong, sim.curTick() + 1);
        sim.run();
    }

    EXPECT_EQ(profiler.eventsObserved(), sim.eventsProcessed());
    EXPECT_EQ(profiler.eventsObserved(), 40u);
    ASSERT_EQ(profiler.byType().count("ping"), 1u);
    EXPECT_EQ(profiler.byType().at("ping").count, 20u);
    EXPECT_GE(profiler.peakQueueDepth(), 1u);
}

TEST(KernelProfilerTest, JsonSummaryIsWellFormed)
{
    Simulator sim;
    KernelProfiler profiler;
    sim.setProbe(&profiler);
    EventFunctionWrapper work([] {}, "work");
    sim.schedule(work, 1 * msec);
    sim.run();

    std::ostringstream os;
    profiler.dumpJson(os, 0.5);
    EXPECT_TRUE(jsonWellFormed(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"events_total\": 1"), std::string::npos);
    EXPECT_NE(os.str().find("events_per_sec"), std::string::npos);
}

TEST(KernelProfilerTest, StatsAndHotTable)
{
    Simulator sim;
    KernelProfiler profiler;
    sim.setProbe(&profiler);
    EventFunctionWrapper work([] {}, "work");
    sim.schedule(work, 1 * msec);
    sim.run();

    StatGroup g("profile");
    profiler.addStats(g);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("profile.events_observed 1"),
              std::string::npos);
    EXPECT_NE(os.str().find("profile.type.work.count 1"),
              std::string::npos);

    std::ostringstream table;
    profiler.dumpHotTable(table);
    EXPECT_EQ(table.str().rfind("# ", 0), 0u);
    EXPECT_NE(table.str().find("work"), std::string::npos);
}

// ------------------------------------------------------- integration

TEST(TelemetryIntegration, DisabledModeIsByteIdentical)
{
    DataCenterConfig plain;
    std::string baseline = runAndDump(plain);

    // Outputs configured but explicitly vetoed: nothing may change
    // and no file may appear.
    std::string trace_path =
        testing::TempDir() + "holdcsim_vetoed_trace.json";
    std::remove(trace_path.c_str());
    DataCenterConfig vetoed;
    vetoed.telemetry.enabled = false;
    vetoed.telemetry.traceOut = trace_path;
    vetoed.telemetry.sampleOut =
        testing::TempDir() + "holdcsim_vetoed_series.csv";
    vetoed.telemetry.profile = true;
    EXPECT_EQ(runAndDump(vetoed), baseline);
    EXPECT_FALSE(std::ifstream(trace_path).good());
}

TEST(TelemetryIntegration, TracedRunEmitsParseableJson)
{
    std::string trace_path =
        testing::TempDir() + "holdcsim_trace.json";
    DataCenterConfig cfg;
    cfg.telemetry.enabled = true;
    cfg.telemetry.traceOut = trace_path;
    std::string dump = runAndDump(cfg);

    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string doc = buf.str();
    EXPECT_TRUE(jsonWellFormed(doc));
    EXPECT_NE(doc.find("\"cat\":\"server\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"task\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"core\""), std::string::npos);

    // Tracing must not perturb the simulation itself.
    EXPECT_EQ(dump, runAndDump(DataCenterConfig{}));
}

TEST(TelemetryIntegration, ProfiledRunMatchesKernelCount)
{
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.nCores = 2;
    cfg.seed = 11;
    cfg.telemetry.enabled = true;
    cfg.telemetry.profile = true;
    DataCenter dc(cfg);
    ASSERT_NE(dc.profiler(), nullptr);
    SingleTaskGenerator gen(fixedSvc(5 * msec));
    dc.pumpTrace({0, 2 * msec, 4 * msec}, gen);
    dc.run();
    EXPECT_EQ(dc.profiler()->eventsObserved(),
              dc.sim().eventsProcessed());

    std::ostringstream os;
    dc.dumpStats(os);
    EXPECT_NE(os.str().find("profile.events_observed"),
              std::string::npos);
}

TEST(TelemetryIntegration, SampledRunWritesSeries)
{
    std::string sample_path =
        testing::TempDir() + "holdcsim_series.csv";
    DataCenterConfig cfg;
    cfg.nServers = 4;
    cfg.nCores = 2;
    cfg.seed = 11;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sampleOut = sample_path;
    cfg.telemetry.samplePeriod = 5 * msec;
    {
        DataCenter dc(cfg);
        ASSERT_NE(dc.sampler(), nullptr);
        SingleTaskGenerator gen(fixedSvc(5 * msec));
        dc.pumpTrace({0, 2 * msec, 4 * msec, 40 * msec}, gen);
        dc.run();
        dc.finishStats();
        EXPECT_GE(dc.sampler()->samplesTaken(), 2u);
    }
    std::ifstream in(sample_path);
    ASSERT_TRUE(in.good());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "time_s,metric,value");
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(body.find("server_power_w"), std::string::npos);
    EXPECT_NE(body.find("awake_servers"), std::string::npos);
}

// ------------------------------------------------------------ config

TEST(TelemetryConfig, OutputsImplyEnabled)
{
    auto cfg = DataCenterConfig::fromConfig(Config::parseString(
        "[telemetry]\ntrace_out = t.json\n"));
    EXPECT_TRUE(cfg.telemetry.enabled);
    EXPECT_TRUE(cfg.telemetry.wantsTracing());
    EXPECT_FALSE(cfg.telemetry.wantsSampling());
    EXPECT_FALSE(cfg.telemetry.wantsProfiling());
}

TEST(TelemetryConfig, ExplicitDisableVetoes)
{
    auto cfg = DataCenterConfig::fromConfig(Config::parseString(
        "[telemetry]\nenabled = false\ntrace_out = t.json\n"
        "profile = true\n"));
    EXPECT_FALSE(cfg.telemetry.enabled);
    EXPECT_FALSE(cfg.telemetry.wantsTracing());
    EXPECT_FALSE(cfg.telemetry.wantsProfiling());
}

TEST(TelemetryConfig, AbsentSectionIsOff)
{
    auto cfg = DataCenterConfig::fromConfig(Config::parseString(""));
    EXPECT_FALSE(cfg.telemetry.enabled);
}

TEST(TelemetryConfig, RejectsBadValues)
{
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[telemetry]\ntrace_out = t\n"
                     "trace_format = xml\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[telemetry]\ntrace_out = t\n"
                     "trace_categories = nonsense\n")),
                 FatalError);
    EXPECT_THROW(DataCenterConfig::fromConfig(Config::parseString(
                     "[telemetry]\nprofile = true\n"
                     "sample_period_ms = 0\n")),
                 FatalError);
}
