/**
 * @file
 * End-to-end integration tests: the stats dump, fat-tree structure
 * across k, and a randomized DAG fuzz that pushes many job shapes
 * through a networked data center.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "dc/datacenter.hh"
#include "workload/service.hh"

using namespace holdcsim;

TEST(StatsDump, ContainsAllComponentGroups)
{
    DataCenterConfig cfg;
    cfg.nServers = 2;
    cfg.nCores = 2;
    cfg.fabric = DataCenterConfig::Fabric::star;
    DataCenter dc(cfg);
    auto svc = std::make_shared<FixedService>(5 * msec);
    ChainJobGenerator gen({svc, svc}, {0, 0}, 10'000);
    cfg.taskAntiAffinity = true;
    dc.pumpTrace({0, 1 * msec, 2 * msec}, gen);
    dc.run();

    std::ostringstream os;
    dc.dumpStats(os);
    std::string out = os.str();
    for (const char *needle :
         {"sim.seconds", "sim.events", "scheduler.jobs_completed 3",
          "scheduler.job_latency_p99_s", "server0.energy_total_j",
          "server1.frac_active", "server0.tasks_completed",
          "network.flows_completed", "switch0.energy_j",
          "switch0.packets_forwarded"}) {
        EXPECT_NE(out.find(needle), std::string::npos)
            << "missing stat line: " << needle << "\nDump:\n"
            << out;
    }
}

class FatTreeStructure : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FatTreeStructure, CountsMatchFormulae)
{
    unsigned k = GetParam();
    auto t = Topology::fatTree(k, 1e9, 5 * usec);
    EXPECT_EQ(t.numServers(), k * k * k / 4);
    EXPECT_EQ(t.numSwitches(), k * k / 4 + k * k); // core + agg/edge
    EXPECT_EQ(t.numLinks(), 3 * k * k * k / 4);
    t.validateConnected();
    // Full bisection: every switch has radix k.
    for (std::size_t i = 0; i < t.numSwitches(); ++i)
        EXPECT_EQ(t.degree(t.switchNode(i)), k);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeStructure,
                         ::testing::Values(2u, 4u, 6u, 8u),
                         [](const auto &info) {
                             return "k" + std::to_string(info.param);
                         });

class DagFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DagFuzz, RandomDagsDrainCleanly)
{
    // Many random DAG jobs with transfers over a fabric, with sleep
    // management active: everything must complete, residencies must
    // partition time, and nothing may linger.
    DataCenterConfig cfg;
    cfg.nCores = 2;
    cfg.fabric = DataCenterConfig::Fabric::bcube;
    cfg.fabricParam = 3;
    cfg.fabricParam2 = 1; // 9 servers
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 30 * msec;
    cfg.netConfig.switchSleepDelay = 100 * msec;
    cfg.seed = GetParam();
    DataCenter dc(cfg);

    auto svc = std::make_shared<ExponentialService>(
        3 * msec, dc.makeRng("svc"));
    RandomDagGenerator gen(svc, /*layers=*/3, /*width=*/3,
                           /*edge_probability=*/0.4,
                           /*transfer_bytes=*/200'000,
                           dc.makeRng("dag"));
    dc.pump(std::make_unique<PoissonArrival>(40.0,
                                             dc.makeRng("arrivals")),
            gen, 400);
    dc.run();
    dc.finishStats();

    EXPECT_EQ(dc.scheduler().jobsCompleted(), 400u);
    EXPECT_EQ(dc.scheduler().activeJobs(), 0u);
    EXPECT_EQ(dc.network()->flows().activeFlows(), 0u);
    Tick end = dc.sim().curTick();
    for (std::size_t s = 0; s < dc.numServers(); ++s) {
        const auto &res = dc.server(s).residency();
        Tick total = 0;
        for (int st = 0; st < 5; ++st)
            total += res.residency(st);
        EXPECT_EQ(total, end) << "server " << s;
    }
    EXPECT_GT(dc.energy().total.total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });
