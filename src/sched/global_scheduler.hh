/**
 * @file
 * The global job scheduler (paper section III-E).
 *
 * The front end receives job requests, expands each into its task
 * DAG, and dispatches ready tasks to servers through a pluggable
 * DispatchPolicy. Two dispatch models are supported, as in the
 * paper: direct dispatch (push: the chosen server buffers the task
 * in its local queue) and a global task queue (pull: when no
 * eligible server has a free execution unit, the task waits
 * centrally and servers pull work as they free up).
 *
 * When a Network is attached, a parent task's results are shipped to
 * the child's server as flows of the DAG edge's transfer size; the
 * child starts only after every inbound transfer arrives (temporal
 * dependence, section III-C).
 */

#ifndef HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH
#define HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dispatch_policy.hh"
#include "server/server.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "workload/job.hh"

namespace holdcsim {

class Network;

/** Scheduler-level configuration. */
struct GlobalSchedulerConfig {
    /** Use the global task queue (pull) model. */
    bool useGlobalQueue = false;
    /**
     * Place a task away from its parent's server whenever another
     * candidate exists (models distributed services whose tiers
     * always communicate over the fabric, as in the paper's
     * server/network study where every DAG edge is a 100 MB flow).
     */
    bool antiAffinity = false;
};

/** The data center front end: job intake and task dispatch. */
class GlobalScheduler
{
  public:
    /** (job id, response time in ticks). */
    using JobDoneFn = std::function<void(JobId, Tick)>;
    /** Invoked whenever offered load changes (policy hooks). */
    using LoadChangedFn = std::function<void()>;

    /**
     * @param sim     engine
     * @param servers the server fleet; server i must have id i
     * @param policy  dispatch policy (owned)
     * @param config  scheduler options
     * @param net     optional fabric for result transfers
     */
    GlobalScheduler(Simulator &sim, std::vector<Server *> servers,
                    std::unique_ptr<DispatchPolicy> policy,
                    GlobalSchedulerConfig config = {},
                    Network *net = nullptr);

    /** Accept a job (ownership transfers). */
    void submitJob(Job job);

    void setJobDoneCallback(JobDoneFn fn) { _jobDone = std::move(fn); }
    void setLoadChangedHook(LoadChangedFn fn)
    {
        _loadChanged = std::move(fn);
    }

    /** Swap the dispatch policy at runtime (policy studies). */
    void setPolicy(std::unique_ptr<DispatchPolicy> policy);

    /** @name Eligibility (server pool management) */
    ///@{
    /** Allow/disallow dispatching new tasks to server @p idx. */
    void setEligible(std::size_t idx, bool eligible);
    bool eligible(std::size_t idx) const { return _eligible.at(idx); }
    std::size_t numEligible() const;
    ///@}

    /** @name Introspection */
    ///@{
    /** Jobs admitted but not yet fully finished. */
    std::size_t activeJobs() const { return _jobs.size(); }
    /** Tasks waiting in the global queue. */
    std::size_t globalQueueLength() const { return _globalQueue.size(); }
    /** Offered tasks (queued + running) per eligible server. */
    double loadPerEligibleServer() const;
    const std::vector<Server *> &servers() const { return _servers; }
    Simulator &simulator() { return _sim; }
    Network *network() { return _net; }
    ///@}

    /** @name Statistics */
    ///@{
    std::uint64_t jobsSubmitted() const { return _jobsSubmitted; }
    std::uint64_t jobsCompleted() const { return _jobsCompleted; }
    std::uint64_t tasksDispatched() const { return _tasksDispatched; }
    std::uint64_t transfersStarted() const { return _transfersStarted; }
    /** Job response time distribution, in seconds. */
    const Percentile &jobLatency() const { return _jobLatency; }
    /** Reset measured statistics (end of warmup). */
    void resetStats();
    ///@}

  private:
    struct RuntimeJob {
        Job job;
        /** Unfinished parents per task. */
        std::vector<std::uint32_t> pendingParents;
        /** Inbound transfers still in flight per task. */
        std::vector<std::uint32_t> pendingTransfers;
        /** Assigned server per task (-1 = unassigned). */
        std::vector<std::int64_t> taskServer;
        std::size_t remaining;
    };

    /** A task waiting in the global queue. */
    struct QueuedTask {
        JobId job;
        TaskId task;
    };

    /** All parents done: place and (if needed) transfer. */
    void taskReady(RuntimeJob &rt, TaskId t);
    /** Place @p t on @p server and ship parent results. */
    void assignTask(RuntimeJob &rt, TaskId t, std::size_t server);
    /** All transfers arrived: hand the task to its server. */
    void launchTask(RuntimeJob &rt, TaskId t);
    void onTaskDone(Server &server, const TaskRef &task);
    /** Let a freed-up server pull from the global queue. */
    void drainGlobalQueue(Server &server);
    /** Eligible servers that can serve @p type. */
    std::vector<std::size_t> candidatesFor(int type,
                                           bool need_capacity) const;
    void invalidateCandidateCache() { _candidateCache.clear(); }
    TaskRef makeRef(const RuntimeJob &rt, TaskId t) const;
    void notifyLoadChanged();

    Simulator &_sim;
    std::vector<Server *> _servers;
    std::unique_ptr<DispatchPolicy> _policy;
    GlobalSchedulerConfig _config;
    Network *_net;

    std::vector<bool> _eligible;
    /** Cached eligibility+type candidate lists (O(N) to rebuild). */
    mutable std::map<int, std::vector<std::size_t>> _candidateCache;
    std::map<JobId, RuntimeJob> _jobs;
    std::deque<QueuedTask> _globalQueue;

    JobDoneFn _jobDone;
    LoadChangedFn _loadChanged;

    std::uint64_t _jobsSubmitted = 0;
    std::uint64_t _jobsCompleted = 0;
    std::uint64_t _tasksDispatched = 0;
    std::uint64_t _transfersStarted = 0;
    Percentile _jobLatency;
};

} // namespace holdcsim

#endif // HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH
