/**
 * @file
 * The global job scheduler (paper section III-E).
 *
 * The front end receives job requests, expands each into its task
 * DAG, and dispatches ready tasks to servers through a pluggable
 * DispatchPolicy. Two dispatch models are supported, as in the
 * paper: direct dispatch (push: the chosen server buffers the task
 * in its local queue) and a global task queue (pull: when no
 * eligible server has a free execution unit, the task waits
 * centrally and servers pull work as they free up).
 *
 * When a Network is attached, a parent task's results are shipped to
 * the child's server as flows of the DAG edge's transfer size; the
 * child starts only after every inbound transfer arrives (temporal
 * dependence, section III-C).
 */

#ifndef HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH
#define HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dispatch_policy.hh"
#include "fault/retry_policy.hh"
#include "server/server.hh"
#include "sim/one_shot.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/trace_manager.hh"
#include "workload/job.hh"

namespace holdcsim {

class Network;

/** Scheduler-level configuration. */
struct GlobalSchedulerConfig {
    /** Use the global task queue (pull) model. */
    bool useGlobalQueue = false;
    /**
     * Place a task away from its parent's server whenever another
     * candidate exists (models distributed services whose tiers
     * always communicate over the fabric, as in the paper's
     * server/network study where every DAG edge is a 100 MB flow).
     */
    bool antiAffinity = false;
};

/** The data center front end: job intake and task dispatch. */
class GlobalScheduler
{
  public:
    /** (job id, response time in ticks). */
    using JobDoneFn = std::function<void(JobId, Tick)>;
    /** A job exhausted its retries and was abandoned. */
    using JobFailedFn = std::function<void(JobId)>;
    /** Invoked whenever offered load changes (policy hooks). */
    using LoadChangedFn = std::function<void()>;

    /**
     * @param sim     engine
     * @param servers the server fleet; server i must have id i
     * @param policy  dispatch policy (owned)
     * @param config  scheduler options
     * @param net     optional fabric for result transfers
     */
    GlobalScheduler(Simulator &sim, std::vector<Server *> servers,
                    std::unique_ptr<DispatchPolicy> policy,
                    GlobalSchedulerConfig config = {},
                    Network *net = nullptr);

    /** Accept a job (ownership transfers). */
    void submitJob(Job job);

    void setJobDoneCallback(JobDoneFn fn) { _jobDone = std::move(fn); }
    void setJobFailedCallback(JobFailedFn fn)
    {
        _jobFailed = std::move(fn);
    }
    void setLoadChangedHook(LoadChangedFn fn)
    {
        _loadChanged = std::move(fn);
    }

    /** Swap the dispatch policy at runtime (policy studies). */
    void setPolicy(std::unique_ptr<DispatchPolicy> policy);

    /** @name Eligibility (server pool management) */
    ///@{
    /** Allow/disallow dispatching new tasks to server @p idx. */
    void setEligible(std::size_t idx, bool eligible);
    bool eligible(std::size_t idx) const { return _eligible.at(idx); }
    std::size_t numEligible() const;
    ///@}

    /** @name Fault tolerance (fault subsystem) */
    ///@{
    /**
     * Install the retry policy. @p jitter_rng (optional, not owned,
     * must outlive the scheduler) decorrelates backoff intervals.
     */
    void setRetryPolicy(const RetryPolicy &policy,
                        Rng *jitter_rng = nullptr);
    const RetryPolicy &retryPolicy() const { return _retry; }

    /**
     * Server @p idx crashed; @p killed holds the task attempts that
     * died with it (running and locally queued). Each is retried
     * under the retry policy.
     */
    void onServerFailed(std::size_t idx,
                        const std::vector<TaskRef> &killed);

    /** Server @p idx is back; it may pull queued work again. */
    void onServerRepaired(std::size_t idx);

    /** Whether @p job was abandoned after retry exhaustion. */
    bool jobHasFailed(JobId job) const
    {
        return _failedJobs.count(job) != 0;
    }
    ///@}

    /** @name Container orchestration hooks (src/orch) */
    ///@{
    /**
     * How the orchestration router wants a ready task handled.
     * `none` falls through to the normal dispatch policy; `pin`
     * bypasses the policy and places the task on a specific server
     * with its service time inflated by @p serviceScale (co-location
     * interference, remote-memory latency); `defer` parks the task
     * until resumeTask() (e.g. every replica is in a migration
     * stop-and-copy window).
     */
    struct TaskRoute {
        enum class Action : std::uint8_t { none, pin, defer };
        Action action = Action::none;
        std::size_t server = 0;
        double serviceScale = 1.0;
    };
    /** Decides placement for each ready task of a tagged job. */
    using TaskRouteFn = std::function<TaskRoute(const TaskRef &)>;
    /**
     * A previously routed attempt left the system: completed
     * (@p done true), or died/was abandoned (@p done false). Fires
     * at least once per routed attempt; the router sees the next
     * attempt again, so receivers must treat repeats as idempotent.
     */
    using TaskClosedFn =
        std::function<void(JobId, TaskId, bool done)>;

    /**
     * Install the orchestration router. With no router installed
     * (the default) scheduling behavior is byte-identical to a
     * build without orchestration.
     */
    void setTaskRouter(TaskRouteFn router, TaskClosedFn closed);

    /** Re-enter placement for a task the router deferred. No-op if
     * the job is gone or the task is not deferred. */
    void resumeTask(JobId job, TaskId t);

    /** Tasks currently parked by a `defer` route. */
    std::size_t deferredTasks() const { return _deferredCount; }
    ///@}

    /** @name Introspection */
    ///@{
    /** Jobs admitted but not yet fully finished. */
    std::size_t activeJobs() const { return _jobs.size(); }
    /** Tasks waiting in the global queue. */
    std::size_t globalQueueLength() const { return _globalQueue.size(); }
    /** Offered tasks (queued + running) per eligible server. */
    double loadPerEligibleServer() const;
    const std::vector<Server *> &servers() const { return _servers; }
    Simulator &simulator() { return _sim; }
    Network *network() { return _net; }
    ///@}

    /** @name Statistics */
    ///@{
    std::uint64_t jobsSubmitted() const { return _jobsSubmitted; }
    std::uint64_t jobsCompleted() const { return _jobsCompleted; }
    std::uint64_t tasksDispatched() const { return _tasksDispatched; }
    std::uint64_t transfersStarted() const { return _transfersStarted; }
    /** Task attempts that died and were re-dispatched. */
    std::uint64_t taskRetries() const { return _taskRetries; }
    /** Attempts killed by the per-task timeout. */
    std::uint64_t taskTimeouts() const { return _taskTimeouts; }
    /** Result transfers severed by network faults. */
    std::uint64_t transfersAborted() const { return _transfersAborted; }
    /** Jobs abandoned after a task ran out of attempts. */
    std::uint64_t jobsFailed() const { return _jobsFailedCount; }
    /** Job response time distribution, in seconds. */
    const Percentile &jobLatency() const { return _jobLatency; }
    /** Reset measured statistics (end of warmup). */
    void resetStats();
    ///@}

    /** @name Invariant auditing (task conservation) */
    ///@{
    /**
     * Task-conservation census. Counters run from construction and
     * are never reset (resetStats() leaves them alone), so the
     * conservation identity created == finished + aborted + live
     * holds at every instant of the run.
     */
    struct TaskCensus {
        std::uint64_t created = 0;
        std::uint64_t finished = 0;
        /** Tasks abandoned when their job failed retry exhaustion. */
        std::uint64_t aborted = 0;
        /** Waiting, queued, transferring, running or in backoff. */
        std::uint64_t live = 0;
    };
    TaskCensus taskCensus() const;

    /**
     * Test hook: fabricate a created-but-untracked task, deliberately
     * breaking conservation so auditor negative tests can prove the
     * audit fires.
     */
    void debugInjectTaskLeak() { ++_tasksCreated; }

    /**
     * Test hook: arm a seeded coincidence bug. When server @p b
     * fails while server @p a is already down, one task leaks from
     * the census (exactly debugInjectTaskLeak()). Only schedules
     * where the two crash windows overlap trip it, so the
     * fault-schedule explorer (src/mc) must discover the pairwise
     * coincidence -- the negative tests and the mc-smoke CI job
     * prove it does, and that shrinking converges to the 2-episode
     * core.
     */
    void
    debugArmPairCrashBug(std::size_t a, std::size_t b)
    {
        _pairBug = {a, b};
        _pairBugArmed = true;
    }
    ///@}

  private:
    /**
     * Where a task currently stands. Stale asynchronous callbacks
     * (transfer completions, timeouts, backoff redispatches from a
     * superseded attempt) check this plus the attempt number before
     * acting, so a retried task can never be double-launched.
     */
    enum class TaskState : std::uint8_t {
        waiting,      ///< parents unfinished
        queued,       ///< parked in the global queue
        transferring, ///< inbound result transfers in flight
        running,      ///< submitted to a server
        backoff,      ///< attempt died; redispatch scheduled
        deferred,     ///< parked by the orchestration router
        done,         ///< completed
    };

    struct RuntimeJob {
        Job job;
        /** Unfinished parents per task. */
        std::vector<std::uint32_t> pendingParents;
        /** Inbound transfers still in flight per task. */
        std::vector<std::uint32_t> pendingTransfers;
        /** Assigned server per task (-1 = unassigned). */
        std::vector<std::int64_t> taskServer;
        /** Per-task lifecycle state (see TaskState). */
        std::vector<TaskState> state;
        /** Attempts started per task (1 = first dispatch). */
        std::vector<std::uint32_t> attempts;
        /**
         * Service-time inflation of the current routed attempt
         * (1.0 = nominal). Set by the orchestration router per
         * placement; applied in makeRef.
         */
        std::vector<double> serviceScale;
        std::size_t remaining;
    };

    /** A task waiting in the global queue. */
    struct QueuedTask {
        JobId job;
        TaskId task;
    };

    /** All parents done: place and (if needed) transfer. */
    void taskReady(RuntimeJob &rt, TaskId t);
    /** Place @p t on @p server and ship parent results. */
    void assignTask(RuntimeJob &rt, TaskId t, std::size_t server);
    /** All transfers arrived: hand the task to its server. */
    void launchTask(RuntimeJob &rt, TaskId t);
    void onTaskDone(Server &server, const TaskRef &task);
    /**
     * The current attempt of (@p job, @p t) died. Re-dispatch after
     * backoff, or abandon the whole job once attempts are exhausted.
     * Tolerates jobs that are already gone.
     */
    void taskAttemptFailed(JobId job, TaskId t);
    /** Abandon @p job: cancel every live task, purge queues. */
    void failJob(JobId job);
    /** Arm the per-task timeout for the current attempt, if any. */
    void armTaskTimeout(RuntimeJob &rt, TaskId t);
    /** Let a freed-up server pull from the global queue. */
    void drainGlobalQueue(Server &server);
    /** Eligible servers that can serve @p type. */
    std::vector<std::size_t> candidatesFor(int type,
                                           bool need_capacity) const;
    void invalidateCandidateCache() { _candidateCache.clear(); }
    TaskRef makeRef(const RuntimeJob &rt, TaskId t) const;
    void notifyLoadChanged();
    /** Tracer (and shared tasks track) if task tracing is on. */
    TraceManager *taskTracer();
    /** "j<job>.t<task>" label used on the task timeline. */
    static std::string taskName(JobId job, TaskId t);
    /** Async-span id for (job, task); the name disambiguates. */
    static std::uint64_t
    taskSpanId(JobId job, TaskId t)
    {
        return (job << 16) + t;
    }

    Simulator &_sim;
    std::vector<Server *> _servers;
    std::unique_ptr<DispatchPolicy> _policy;
    GlobalSchedulerConfig _config;
    Network *_net;

    std::vector<bool> _eligible;
    /** Cached eligibility+type candidate lists (O(N) to rebuild). */
    mutable std::map<int, std::vector<std::size_t>> _candidateCache;
    std::map<JobId, RuntimeJob> _jobs;
    std::deque<QueuedTask> _globalQueue;

    JobDoneFn _jobDone;
    JobFailedFn _jobFailed;
    LoadChangedFn _loadChanged;
    TaskRouteFn _router;
    TaskClosedFn _taskClosed;
    std::size_t _deferredCount = 0;

    RetryPolicy _retry;
    bool _retryEnabled = false;
    Rng *_retryJitter = nullptr;
    /** Owns backoff/timeout one-shots; freed with the scheduler. */
    OneShotPool _oneShots;
    /**
     * Tombstones for abandoned jobs so late completions/transfers
     * are recognized as stale instead of treated as bugs.
     */
    std::set<JobId> _failedJobs;

    std::uint64_t _jobsSubmitted = 0;
    std::uint64_t _jobsCompleted = 0;
    std::uint64_t _tasksDispatched = 0;
    std::uint64_t _transfersStarted = 0;
    std::uint64_t _taskRetries = 0;
    std::uint64_t _taskTimeouts = 0;
    std::uint64_t _transfersAborted = 0;
    std::uint64_t _jobsFailedCount = 0;
    Percentile _jobLatency;

    /** Seeded pair-crash bug (debugArmPairCrashBug). */
    bool _pairBugArmed = false;
    std::pair<std::size_t, std::size_t> _pairBug{0, 0};

    // Conservation counters (see TaskCensus): never reset.
    std::uint64_t _tasksCreated = 0;
    std::uint64_t _tasksFinished = 0;
    std::uint64_t _tasksAborted = 0;

    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_SCHED_GLOBAL_SCHEDULER_HH
