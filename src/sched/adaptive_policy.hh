/**
 * @file
 * Workload-adaptive energy-latency optimization (paper case study
 * IV-C, after WASP [66]).
 *
 * Servers are coordinated between two pools. Active-pool servers
 * receive work and are allowed only the shallow sleep state (package
 * C6, sub-millisecond wakeup); sleep-pool servers receive no work
 * and their local controller takes them from package C6 down to
 * system sleep (suspend-to-RAM) after a short residency. A load
 * estimator tracks the number of pending jobs per active server:
 * above T_wakeup one server is promoted from the sleep pool; below
 * T_sleep one active server is demoted. The front-end load balancer
 * dispatches to the active pool only.
 */

#ifndef HOLDCSIM_SCHED_ADAPTIVE_POLICY_HH
#define HOLDCSIM_SCHED_ADAPTIVE_POLICY_HH

#include <cstdint>
#include <vector>

#include "global_scheduler.hh"
#include "server/power_controller.hh"
#include "sim/event.hh"

namespace holdcsim {

/** Thresholds for the workload-adaptive pool manager. */
struct AdaptiveConfig {
    /**
     * Promote a server when load per active server exceeds this.
     * To concentrate work on few fully-packed servers (the paper's
     * Figure 8 behavior) set it slightly above the core count.
     */
    double wakeupThreshold = 1.5;
    /** Demote a server when load/active-server falls below this. */
    double sleepThreshold = 0.5;
    /**
     * Minimum spacing between pool transitions: damps wake/sleep
     * thrash around the thresholds. Urgent promotions (load at
     * twice the wakeup threshold) bypass it.
     */
    Tick transitionCooldown = 500 * msec;
    /** Sleep-pool delay from package C6 to system sleep (tau). */
    Tick deepSleepAfter = 500 * msec;
    /** Periodic re-evaluation (bursts are also caught via the
     *  scheduler's load-changed hook). */
    Tick checkInterval = 50 * msec;
    /** Servers initially in the active pool. */
    std::size_t initialActive = 1;
};

/** Two-pool (active / sleep) adaptive server manager. */
class AdaptivePoolPolicy
{
  public:
    /**
     * Installs a DelayTimerController on every server of @p sched
     * (replacing any existing controller) and registers itself on
     * the scheduler's load-changed hook.
     */
    AdaptivePoolPolicy(GlobalScheduler &sched,
                       const AdaptiveConfig &config);
    ~AdaptivePoolPolicy();
    AdaptivePoolPolicy(const AdaptivePoolPolicy &) = delete;
    AdaptivePoolPolicy &operator=(const AdaptivePoolPolicy &) = delete;

    /** Begin periodic control. */
    void start();
    void stop();

    /** Servers currently in the active pool. */
    std::size_t activePoolSize() const { return _sched.numEligible(); }

    std::uint64_t promotions() const { return _promotions; }
    std::uint64_t demotions() const { return _demotions; }

  private:
    void check();
    /** Fast path: called on every load change, promotions only. */
    void checkPromotion();
    void promoteOne();
    void demoteOne();
    bool cooldownActive() const;

    GlobalScheduler &_sched;
    AdaptiveConfig _config;
    bool _running = false;
    Tick _lastTransition = 0;
    /** Borrowed pointers to the controllers we installed. */
    std::vector<DelayTimerController *> _controllers;
    EventFunctionWrapper _checkEvent;
    std::uint64_t _promotions = 0;
    std::uint64_t _demotions = 0;
};

/**
 * Dual delay timer setup (paper case study IV-B, after [69]): a
 * high-tau pool of @p highPoolSize servers is preferred for
 * dispatch; the rest carry a short tau and suspend quickly.
 */
struct DualTimerConfig {
    std::size_t highPoolSize = 2;
    Tick tauHigh = 4 * sec;
    Tick tauLow = 100 * msec;
};

/**
 * Install DelayTimerControllers per the dual-timer scheme and switch
 * the scheduler to the preferred-pool dispatch policy.
 */
void configureDualTimers(GlobalScheduler &sched,
                         const DualTimerConfig &config);

} // namespace holdcsim

#endif // HOLDCSIM_SCHED_ADAPTIVE_POLICY_HH
