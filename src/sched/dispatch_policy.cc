#include "dispatch_policy.hh"

#include <algorithm>
#include <limits>

#include "network/network.hh"
#include "sim/logging.hh"

namespace holdcsim {

std::size_t
RoundRobinPolicy::pick(const std::vector<std::size_t> &candidates,
                       const std::vector<Server *> &servers,
                       const DispatchContext &ctx)
{
    (void)servers;
    (void)ctx;
    if (candidates.empty())
        HOLDCSIM_PANIC("dispatch with no candidates");
    // Advance a global cursor and take the first candidate at or
    // after it (binary search: candidates are sorted), wrapping to
    // the front; ineligible servers are skipped transparently.
    auto it = std::lower_bound(candidates.begin(), candidates.end(),
                               _next);
    std::size_t chosen =
        it == candidates.end() ? candidates.front() : *it;
    _next = chosen + 1;
    return chosen;
}

std::size_t
LeastLoadedPolicy::pick(const std::vector<std::size_t> &candidates,
                        const std::vector<Server *> &servers,
                        const DispatchContext &ctx)
{
    (void)ctx;
    if (candidates.empty())
        HOLDCSIM_PANIC("dispatch with no candidates");
    std::size_t start = _rotate++ % candidates.size();
    std::size_t best = candidates[start];
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        std::size_t c = candidates[(start + i) % candidates.size()];
        if (servers[c]->load() < servers[best]->load())
            best = c;
    }
    return best;
}

std::size_t
RandomPolicy::pick(const std::vector<std::size_t> &candidates,
                   const std::vector<Server *> &servers,
                   const DispatchContext &ctx)
{
    (void)servers;
    (void)ctx;
    if (candidates.empty())
        HOLDCSIM_PANIC("dispatch with no candidates");
    return candidates[_rng.uniformInt(0, candidates.size() - 1)];
}

PreferredPoolPolicy::PreferredPoolPolicy(std::set<std::size_t> preferred,
                                         double spill_depth)
    : _preferred(std::move(preferred)), _spillDepth(spill_depth)
{
    if (_preferred.empty())
        fatal("preferred pool must not be empty");
    if (spill_depth < 1.0)
        fatal("spill depth must be >= 1");
}

std::size_t
PreferredPoolPolicy::pick(const std::vector<std::size_t> &candidates,
                          const std::vector<Server *> &servers,
                          const DispatchContext &ctx)
{
    (void)ctx;
    if (candidates.empty())
        HOLDCSIM_PANIC("dispatch with no candidates");
    // Escalation order: (1) free core in the preferred pool;
    // (2) moderate queuing in the preferred pool (keeps transient
    // bursts from waking the low pool); (3) an already-awake
    // low-tau server with a free core; (4) any low-tau server
    // (waking one); (5) least loaded overall.
    auto least = [&](auto &&accept) -> std::optional<std::size_t> {
        std::optional<std::size_t> best;
        for (std::size_t c : candidates) {
            Server *s = servers[c];
            if (!accept(c, s))
                continue;
            if (!best || s->load() < servers[*best]->load())
                best = c;
        }
        return best;
    };
    if (auto s = least([&](std::size_t c, Server *srv) {
            return _preferred.count(c) &&
                   srv->load() < srv->numCores();
        })) {
        return *s;
    }
    if (auto s = least([&](std::size_t c, Server *srv) {
            return _preferred.count(c) &&
                   srv->load() <
                       static_cast<std::size_t>(
                           _spillDepth * srv->numCores());
        })) {
        return *s;
    }
    if (auto s = least([&](std::size_t c, Server *srv) {
            return !_preferred.count(c) && !srv->isAsleep() &&
                   !srv->isWaking() &&
                   srv->load() < srv->numCores();
        })) {
        return *s;
    }
    if (auto s = least([&](std::size_t c, Server *srv) {
            (void)srv;
            return !_preferred.count(c);
        })) {
        return *s;
    }
    std::size_t best = candidates[0];
    for (std::size_t c : candidates) {
        if (servers[c]->load() < servers[best]->load())
            best = c;
    }
    return best;
}

NetworkAwarePolicy::NetworkAwarePolicy(Network &net) : _net(net) {}

std::size_t
NetworkAwarePolicy::pick(const std::vector<std::size_t> &candidates,
                         const std::vector<Server *> &servers,
                         const DispatchContext &ctx)
{
    if (candidates.empty())
        HOLDCSIM_PANIC("dispatch with no candidates");
    // First choice: awake servers with spare capacity, least loaded.
    std::optional<std::size_t> best_awake;
    for (std::size_t c : candidates) {
        Server *s = servers[c];
        if (s->isAsleep() || s->load() >= s->numCores())
            continue;
        if (!best_awake || s->load() < servers[*best_awake]->load())
            best_awake = c;
    }
    if (best_awake)
        return *best_awake;

    // A new server must be engaged: minimize the number of sleeping
    // switches the communication path would wake; ties break toward
    // the lower load.
    std::size_t reference = ctx.parentServer.value_or(candidates[0]);
    std::size_t best = candidates[0];
    unsigned best_cost = std::numeric_limits<unsigned>::max();
    for (std::size_t c : candidates) {
        unsigned cost = _net.sleepingSwitchesOnPath(reference, c);
        if (cost < best_cost ||
            (cost == best_cost &&
             servers[c]->load() < servers[best]->load())) {
            best_cost = cost;
            best = c;
        }
    }
    return best;
}

} // namespace holdcsim
