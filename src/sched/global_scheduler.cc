#include "global_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "network/network.hh"
#include "sim/logging.hh"

namespace holdcsim {

GlobalScheduler::GlobalScheduler(Simulator &sim,
                                 std::vector<Server *> servers,
                                 std::unique_ptr<DispatchPolicy> policy,
                                 GlobalSchedulerConfig config,
                                 Network *net)
    : _sim(sim), _servers(std::move(servers)),
      _policy(std::move(policy)), _config(config), _net(net),
      _eligible(_servers.size(), true), _oneShots(sim, "sched.retry")
{
    if (_servers.empty())
        fatal("global scheduler needs at least one server");
    if (!_policy)
        fatal("global scheduler needs a dispatch policy");
    for (std::size_t i = 0; i < _servers.size(); ++i) {
        if (_servers[i]->id() != i)
            fatal("server ", i, " must be configured with id ", i);
        _servers[i]->setTaskDoneCallback(
            [this](Server &srv, const TaskRef &task) {
                onTaskDone(srv, task);
            });
    }
    if (_net && _net->topology().numServers() < _servers.size())
        fatal("network topology has fewer servers than the fleet");
}

void
GlobalScheduler::setPolicy(std::unique_ptr<DispatchPolicy> policy)
{
    if (!policy)
        fatal("cannot install a null dispatch policy");
    _policy = std::move(policy);
}

void
GlobalScheduler::setRetryPolicy(const RetryPolicy &policy,
                                Rng *jitter_rng)
{
    if (policy.maxAttempts == 0)
        fatal("retry policy needs at least one attempt");
    _retry = policy;
    _retryJitter = jitter_rng;
    _retryEnabled = true;
}

void
GlobalScheduler::setTaskRouter(TaskRouteFn router, TaskClosedFn closed)
{
    _router = std::move(router);
    _taskClosed = std::move(closed);
}

void
GlobalScheduler::resumeTask(JobId job, TaskId t)
{
    auto it = _jobs.find(job);
    if (it == _jobs.end())
        return; // job finished or abandoned while deferred
    RuntimeJob &rt = it->second;
    if (t >= rt.state.size() || rt.state[t] != TaskState::deferred)
        return;
    --_deferredCount;
    taskReady(rt, t);
}

void
GlobalScheduler::setEligible(std::size_t idx, bool eligible)
{
    if (_eligible.at(idx) != eligible)
        invalidateCandidateCache();
    _eligible.at(idx) = eligible;
}

std::size_t
GlobalScheduler::numEligible() const
{
    return static_cast<std::size_t>(
        std::count(_eligible.begin(), _eligible.end(), true));
}

double
GlobalScheduler::loadPerEligibleServer() const
{
    std::size_t eligible = numEligible();
    if (eligible == 0)
        return 0.0;
    std::size_t total = _globalQueue.size();
    for (std::size_t i = 0; i < _servers.size(); ++i) {
        if (_eligible[i])
            total += _servers[i]->load();
    }
    return static_cast<double>(total) / static_cast<double>(eligible);
}

GlobalScheduler::TaskCensus
GlobalScheduler::taskCensus() const
{
    TaskCensus c;
    c.created = _tasksCreated;
    c.finished = _tasksFinished;
    c.aborted = _tasksAborted;
    for (const auto &[id, rt] : _jobs)
        c.live += rt.remaining;
    return c;
}

void
GlobalScheduler::resetStats()
{
    _jobsSubmitted = _jobsCompleted = 0;
    _tasksDispatched = _transfersStarted = 0;
    _taskRetries = _taskTimeouts = 0;
    _transfersAborted = _jobsFailedCount = 0;
    _jobLatency.reset();
}

TaskRef
GlobalScheduler::makeRef(const RuntimeJob &rt, TaskId t) const
{
    const TaskSpec &spec = rt.job.task(t);
    TaskRef ref{rt.job.id(), t, spec.serviceTime,
                spec.computeIntensity, spec.type,
                rt.job.orchGroup()};
    // Routed placements may inflate the service time (co-location
    // interference, remote-memory latency). The exact-1.0 test keeps
    // the unrouted path bit-identical to a build without routing.
    double scale = rt.serviceScale.empty() ? 1.0 : rt.serviceScale[t];
    if (scale != 1.0) {
        ref.serviceTime = static_cast<Tick>(std::llround(
            static_cast<double>(spec.serviceTime) * scale));
    }
    return ref;
}

TraceManager *
GlobalScheduler::taskTracer()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::task))
        return nullptr;
    if (_traceTrack == noTraceTrack)
        _traceTrack = tr->track("scheduler", "tasks");
    return tr;
}

std::string
GlobalScheduler::taskName(JobId job, TaskId t)
{
    return "j" + std::to_string(job) + ".t" + std::to_string(t);
}

void
GlobalScheduler::submitJob(Job job)
{
    ++_jobsSubmitted;
    JobId id = job.id();
    if (TraceManager *tr = taskTracer()) {
        tr->instant(_traceTrack, TraceCategory::task,
                    "j" + std::to_string(id) + ".submit",
                    _sim.curTick());
    }
    RuntimeJob rt{std::move(job), {}, {}, {}, {}, {}, {}, 0};
    const std::size_t n = rt.job.numTasks();
    rt.pendingParents.resize(n);
    rt.pendingTransfers.assign(n, 0);
    rt.taskServer.assign(n, -1);
    rt.state.assign(n, TaskState::waiting);
    rt.attempts.assign(n, 0);
    rt.serviceScale.assign(n, 1.0);
    rt.remaining = n;
    _tasksCreated += n;
    for (TaskId t = 0; t < n; ++t)
        rt.pendingParents[t] =
            static_cast<std::uint32_t>(rt.job.parents(t).size());

    auto [it, inserted] = _jobs.emplace(id, std::move(rt));
    if (!inserted)
        fatal("duplicate job id ", id);
    RuntimeJob &stored = it->second;
    // Roots are ready immediately. Copy the list: taskReady may
    // complete zero-task transfers synchronously.
    std::vector<TaskId> roots = stored.job.rootTasks();
    for (TaskId t : roots)
        taskReady(stored, t);
    notifyLoadChanged();
}

std::vector<std::size_t>
GlobalScheduler::candidatesFor(int type, bool need_capacity) const
{
    if (!need_capacity) {
        // Load-independent: cache per type, invalidated whenever
        // eligibility changes. Keeps dispatch O(1) amortized even
        // for >20K-server fleets (the Table I scalability claim).
        auto it = _candidateCache.find(type);
        if (it != _candidateCache.end())
            return it->second;
        std::vector<std::size_t> out;
        for (std::size_t i = 0; i < _servers.size(); ++i) {
            // Crashed servers drop out of the cached lists too; the
            // fault hooks invalidate the cache on every transition.
            if (_eligible[i] && !_servers[i]->failed() &&
                _servers[i]->servesType(type)) {
                out.push_back(i);
            }
        }
        return _candidateCache.emplace(type, std::move(out))
            .first->second;
    }
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _servers.size(); ++i) {
        if (!_eligible[i] || _servers[i]->failed() ||
            !_servers[i]->servesType(type)) {
            continue;
        }
        if (_servers[i]->load() >= _servers[i]->numCores())
            continue;
        out.push_back(i);
    }
    return out;
}

void
GlobalScheduler::taskReady(RuntimeJob &rt, TaskId t)
{
    if (_router) {
        // Orchestration routing: tagged tasks go to a container
        // replica (or wait for one); untagged tasks fall through to
        // the normal dispatch path below.
        rt.serviceScale[t] = 1.0;
        TaskRoute route = _router(makeRef(rt, t));
        if (route.action == TaskRoute::Action::defer) {
            rt.state[t] = TaskState::deferred;
            ++_deferredCount;
            return;
        }
        if (route.action == TaskRoute::Action::pin) {
            if (route.server >= _servers.size())
                HOLDCSIM_PANIC("task routed to unknown server ",
                               route.server);
            rt.serviceScale[t] = route.serviceScale;
            if (_servers[route.server]->failed()) {
                // The replica's host crashed under us. Burn an
                // attempt and back off; by the redispatch the
                // orchestrator has rescheduled the container.
                if (_retryEnabled) {
                    ++rt.attempts[t];
                    taskAttemptFailed(rt.job.id(), t);
                    return;
                }
                fatal("task routed to failed server ", route.server);
            }
            assignTask(rt, t, route.server);
            return;
        }
    }

    TaskRef ref = makeRef(rt, t);
    if (_config.useGlobalQueue) {
        // Pull model: only dispatch when a free execution unit
        // exists; otherwise park the task centrally.
        auto candidates = candidatesFor(ref.type, true);
        if (candidates.empty()) {
            rt.state[t] = TaskState::queued;
            _globalQueue.push_back(QueuedTask{rt.job.id(), t});
            return;
        }
        std::optional<std::size_t> parent;
        if (!rt.job.parents(t).empty())
            parent = static_cast<std::size_t>(
                rt.taskServer[rt.job.parents(t)[0]]);
        std::size_t target = _policy->pick(candidates, _servers,
                                           DispatchContext{ref, parent});
        assignTask(rt, t, target);
        return;
    }

    auto candidates = candidatesFor(ref.type, false);
    std::optional<std::size_t> parent;
    if (!rt.job.parents(t).empty())
        parent = static_cast<std::size_t>(
            rt.taskServer[rt.job.parents(t)[0]]);
    if (_config.antiAffinity && parent && candidates.size() > 1) {
        candidates.erase(std::remove(candidates.begin(),
                                     candidates.end(), *parent),
                         candidates.end());
    }
    if (candidates.empty()) {
        // Eligibility filtered everything out: fall back to any
        // healthy type-capable server rather than deadlock.
        for (std::size_t i = 0; i < _servers.size(); ++i) {
            if (!_servers[i]->failed() &&
                _servers[i]->servesType(ref.type)) {
                candidates.push_back(i);
            }
        }
        if (candidates.empty()) {
            if (_retryEnabled) {
                // Every capable server is down. Burn an attempt and
                // back off; a permanently dead fleet then fails the
                // job instead of spinning or crashing the sim.
                ++rt.attempts[t];
                taskAttemptFailed(rt.job.id(), t);
                return;
            }
            fatal("no server can serve task type ", ref.type);
        }
        warn("no eligible server for task type ", ref.type,
             "; dispatching to an ineligible one");
    }
    std::size_t target = _policy->pick(candidates, _servers,
                                       DispatchContext{ref, parent});
    assignTask(rt, t, target);
}

void
GlobalScheduler::assignTask(RuntimeJob &rt, TaskId t,
                            std::size_t server)
{
    rt.taskServer[t] = static_cast<std::int64_t>(server);
    ++rt.attempts[t];
    if (TraceManager *tr = taskTracer()) {
        tr->instant(_traceTrack, TraceCategory::task,
                    taskName(rt.job.id(), t) + ".dispatch.sv" +
                        std::to_string(server),
                    _sim.curTick());
    }
    // Ship each parent's result over the fabric; the task launches
    // when the last transfer lands. Callbacks carry the attempt
    // number so leftovers from a superseded attempt are inert.
    if (_net) {
        JobId id = rt.job.id();
        std::uint32_t epoch = rt.attempts[t];
        unsigned transfers = 0;
        for (TaskId p : rt.job.parents(t)) {
            Bytes bytes = rt.job.edgeBytes(p, t);
            auto src = static_cast<std::size_t>(rt.taskServer[p]);
            if (src == server || bytes == 0)
                continue;
            ++transfers;
        }
        if (transfers > 0) {
            rt.state[t] = TaskState::transferring;
            rt.pendingTransfers[t] = transfers;
            for (TaskId p : rt.job.parents(t)) {
                Bytes bytes = rt.job.edgeBytes(p, t);
                auto src = static_cast<std::size_t>(rt.taskServer[p]);
                if (src == server || bytes == 0)
                    continue;
                ++_transfersStarted;
                _net->startFlow(
                    src, server, bytes,
                    [this, id, t, epoch] {
                        auto it = _jobs.find(id);
                        if (it == _jobs.end()) {
                            if (_failedJobs.count(id))
                                return; // job abandoned meanwhile
                            HOLDCSIM_PANIC("transfer for finished job ",
                                           id);
                        }
                        RuntimeJob &rj = it->second;
                        if (rj.attempts[t] != epoch ||
                            rj.state[t] != TaskState::transferring) {
                            return; // attempt superseded
                        }
                        if (--rj.pendingTransfers[t] == 0)
                            launchTask(rj, t);
                    },
                    [this, id, t, epoch] {
                        // A fault severed this transfer: retry the
                        // whole placement (results must re-ship).
                        auto it = _jobs.find(id);
                        if (it == _jobs.end())
                            return;
                        RuntimeJob &rj = it->second;
                        if (rj.attempts[t] != epoch ||
                            rj.state[t] != TaskState::transferring) {
                            return;
                        }
                        ++_transfersAborted;
                        taskAttemptFailed(id, t);
                    });
            }
            return;
        }
    }
    launchTask(rt, t);
}

void
GlobalScheduler::launchTask(RuntimeJob &rt, TaskId t)
{
    auto server = static_cast<std::size_t>(rt.taskServer[t]);
    if (_servers[server]->failed()) {
        // The target crashed while transfers were in flight.
        taskAttemptFailed(rt.job.id(), t);
        return;
    }
    rt.state[t] = TaskState::running;
    ++_tasksDispatched;
    if (TraceManager *tr = taskTracer()) {
        tr->asyncBegin(_traceTrack, TraceCategory::task,
                       taskName(rt.job.id(), t),
                       taskSpanId(rt.job.id(), t), _sim.curTick());
    }
    _servers[server]->submit(makeRef(rt, t));
    armTaskTimeout(rt, t);
}

void
GlobalScheduler::armTaskTimeout(RuntimeJob &rt, TaskId t)
{
    if (!_retryEnabled || _retry.taskTimeout == 0)
        return;
    JobId id = rt.job.id();
    std::uint32_t epoch = rt.attempts[t];
    _oneShots.schedule(_retry.taskTimeout, [this, id, t, epoch] {
        auto it = _jobs.find(id);
        if (it == _jobs.end())
            return;
        RuntimeJob &rj = it->second;
        if (rj.attempts[t] != epoch ||
            rj.state[t] != TaskState::running) {
            return; // completed or already retried
        }
        ++_taskTimeouts;
        auto srv = static_cast<std::size_t>(rj.taskServer[t]);
        if (!_servers[srv]->failed())
            _servers[srv]->cancelTask(id, t);
        taskAttemptFailed(id, t);
    });
}

void
GlobalScheduler::taskAttemptFailed(JobId job, TaskId t)
{
    auto it = _jobs.find(job);
    if (it == _jobs.end())
        return; // job finished or already abandoned
    RuntimeJob &rt = it->second;
    if (rt.state[t] == TaskState::done)
        return;
    if (!_retryEnabled || rt.attempts[t] >= _retry.maxAttempts) {
        failJob(job); // closes any open task spans
        return;
    }
    // The routed attempt died; the retry re-routes from scratch.
    if (_taskClosed)
        _taskClosed(job, t, false);
    ++_taskRetries;
    if (TraceManager *tr = taskTracer()) {
        if (rt.state[t] == TaskState::running) {
            // Close the attempt's span: it died instead of completing.
            tr->asyncEnd(_traceTrack, TraceCategory::task,
                         taskName(job, t), taskSpanId(job, t),
                         _sim.curTick());
        }
        tr->instant(_traceTrack, TraceCategory::task,
                    taskName(job, t) + ".retry", _sim.curTick());
    }
    rt.state[t] = TaskState::backoff;
    rt.pendingTransfers[t] = 0;
    std::uint32_t epoch = rt.attempts[t];
    Tick delay = _retry.backoff(rt.attempts[t], _retryJitter);
    _oneShots.schedule(delay, [this, job, t, epoch] {
        auto jit = _jobs.find(job);
        if (jit == _jobs.end())
            return;
        RuntimeJob &rj = jit->second;
        if (rj.attempts[t] != epoch ||
            rj.state[t] != TaskState::backoff) {
            return;
        }
        taskReady(rj, t);
    });
}

void
GlobalScheduler::failJob(JobId job)
{
    auto it = _jobs.find(job);
    if (it == _jobs.end())
        return;
    RuntimeJob &rt = it->second;
    ++_jobsFailedCount;
    // Every not-yet-done task of the job is abandoned with it.
    _tasksAborted += rt.remaining;
    // Tell the orchestration router every live task is gone
    // (receivers ignore tasks they never routed).
    for (TaskId t = 0; t < rt.job.numTasks(); ++t) {
        if (rt.state[t] == TaskState::deferred)
            --_deferredCount;
        if (_taskClosed && rt.state[t] != TaskState::done)
            _taskClosed(job, t, false);
    }
    // Cancel every sibling still holding resources.
    for (TaskId t = 0; t < rt.job.numTasks(); ++t) {
        if (rt.state[t] != TaskState::running)
            continue;
        if (TraceManager *tr = taskTracer()) {
            tr->asyncEnd(_traceTrack, TraceCategory::task,
                         taskName(job, t), taskSpanId(job, t),
                         _sim.curTick());
        }
        auto srv = static_cast<std::size_t>(rt.taskServer[t]);
        if (!_servers[srv]->failed())
            _servers[srv]->cancelTask(job, t);
    }
    // Purge parked siblings from the global queue.
    _globalQueue.erase(
        std::remove_if(_globalQueue.begin(), _globalQueue.end(),
                       [job](const QueuedTask &q) {
                           return q.job == job;
                       }),
        _globalQueue.end());
    _failedJobs.insert(job);
    _jobs.erase(it);
    if (TraceManager *tr = taskTracer()) {
        tr->instant(_traceTrack, TraceCategory::task,
                    "j" + std::to_string(job) + ".failed",
                    _sim.curTick());
    }
    if (_jobFailed)
        _jobFailed(job);
    notifyLoadChanged();
}

void
GlobalScheduler::onServerFailed(std::size_t idx,
                                const std::vector<TaskRef> &killed)
{
    if (_pairBugArmed && idx == _pairBug.second &&
        _pairBug.first < _servers.size() &&
        _servers.at(_pairBug.first)->failed()) {
        debugInjectTaskLeak();
    }
    invalidateCandidateCache();
    for (const TaskRef &ref : killed)
        taskAttemptFailed(ref.job, ref.task);
    notifyLoadChanged();
}

void
GlobalScheduler::onServerRepaired(std::size_t idx)
{
    invalidateCandidateCache();
    if (_config.useGlobalQueue)
        drainGlobalQueue(*_servers.at(idx));
    notifyLoadChanged();
}

void
GlobalScheduler::onTaskDone(Server &server, const TaskRef &task)
{
    auto it = _jobs.find(task.job);
    if (it == _jobs.end()) {
        if (_failedJobs.count(task.job))
            return; // straggler of an abandoned job
        HOLDCSIM_PANIC("completion for unknown job ", task.job);
    }
    RuntimeJob &rt = it->second;
    if (rt.state[task.task] == TaskState::done)
        HOLDCSIM_PANIC("job ", task.job, " task ", task.task,
                       " completed twice");
    rt.state[task.task] = TaskState::done;
    if (TraceManager *tr = taskTracer()) {
        tr->asyncEnd(_traceTrack, TraceCategory::task,
                     taskName(task.job, task.task),
                     taskSpanId(task.job, task.task), _sim.curTick());
    }
    if (rt.remaining == 0)
        HOLDCSIM_PANIC("job ", task.job, " over-completed");
    --rt.remaining;
    ++_tasksFinished;

    // Free the container slot before waking children so their
    // routing sees the updated replica occupancy.
    if (_taskClosed)
        _taskClosed(task.job, task.task, true);

    // Wake children whose last parent just finished.
    for (TaskId child : rt.job.children(task.task)) {
        if (--rt.pendingParents[child] == 0)
            taskReady(rt, child);
    }

    if (rt.remaining == 0) {
        Tick latency = _sim.curTick() - rt.job.arrivalTick();
        ++_jobsCompleted;
        _jobLatency.sample(toSeconds(latency));
        JobId id = task.job;
        _jobs.erase(it);
        if (_jobDone)
            _jobDone(id, latency);
    }

    if (_config.useGlobalQueue)
        drainGlobalQueue(server);
    notifyLoadChanged();
}

void
GlobalScheduler::drainGlobalQueue(Server &server)
{
    if (server.failed())
        return;
    // The freed server pulls the first queued task it can serve
    // while it still has spare execution units.
    while (server.load() < server.numCores() && !_globalQueue.empty()) {
        auto pos = std::find_if(
            _globalQueue.begin(), _globalQueue.end(),
            [&](const QueuedTask &q) {
                auto jit = _jobs.find(q.job);
                return jit != _jobs.end() &&
                       server.servesType(jit->second.job.task(q.task).type);
            });
        if (pos == _globalQueue.end())
            return;
        QueuedTask q = *pos;
        _globalQueue.erase(pos);
        RuntimeJob &rt = _jobs.at(q.job);
        assignTask(rt, q.task, server.id());
    }
}

void
GlobalScheduler::notifyLoadChanged()
{
    if (_loadChanged)
        _loadChanged();
}

} // namespace holdcsim
