#include "adaptive_policy.hh"

#include "sim/logging.hh"

namespace holdcsim {

AdaptivePoolPolicy::AdaptivePoolPolicy(GlobalScheduler &sched,
                                       const AdaptiveConfig &config)
    : _sched(sched), _config(config),
      _checkEvent([this] { check(); }, "adaptive.check",
                  Event::powerPriority)
{
    // A policy heartbeat must not keep an otherwise-finished
    // simulation running.
    _checkEvent.setBackground(true);
    if (config.sleepThreshold >= config.wakeupThreshold)
        fatal("adaptive policy needs sleepThreshold < wakeupThreshold");
    if (config.initialActive == 0 ||
        config.initialActive > sched.servers().size()) {
        fatal("adaptive policy initialActive out of range");
    }

    const auto &servers = _sched.servers();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        bool active = i < config.initialActive;
        auto ctrl = std::make_unique<DelayTimerController>(
            active ? maxTick : config.deepSleepAfter);
        _controllers.push_back(ctrl.get());
        servers[i]->setController(std::move(ctrl));
        _sched.setEligible(i, active);
    }
    // Bursty arrivals must be able to rouse servers promptly
    // (paper: "promptly adjust the resources in these two pools"),
    // so promotions ride the load-changed hook; demotions only
    // happen on the slower periodic check.
    _sched.setLoadChangedHook([this] { checkPromotion(); });
}

AdaptivePoolPolicy::~AdaptivePoolPolicy()
{
    _sched.setLoadChangedHook(nullptr);
    if (_checkEvent.scheduled())
        _sched.simulator().deschedule(_checkEvent);
}

void
AdaptivePoolPolicy::start()
{
    _running = true;
    _sched.simulator().reschedule(
        _checkEvent,
        _sched.simulator().curTick() + _config.checkInterval);
}

void
AdaptivePoolPolicy::stop()
{
    _running = false;
    if (_checkEvent.scheduled())
        _sched.simulator().deschedule(_checkEvent);
}

bool
AdaptivePoolPolicy::cooldownActive() const
{
    Tick now = _sched.simulator().curTick();
    return now - _lastTransition < _config.transitionCooldown &&
           !(_lastTransition == 0 && now == 0);
}

void
AdaptivePoolPolicy::checkPromotion()
{
    double load = _sched.loadPerEligibleServer();
    if (load <= _config.wakeupThreshold)
        return;
    // While a promoted server is still waking, its capacity is not
    // yet visible in the load estimate; promoting again would
    // cascade wakes off the same backlog.
    for (std::size_t i = 0; i < _sched.servers().size(); ++i) {
        if (_sched.eligible(i) && _sched.servers()[i]->isWaking())
            return;
    }
    // Urgent overload bypasses the cooldown.
    bool urgent = load > 2.0 * _config.wakeupThreshold;
    if (!urgent && cooldownActive())
        return;
    promoteOne();
}

void
AdaptivePoolPolicy::check()
{
    double load = _sched.loadPerEligibleServer();
    if (load > _config.wakeupThreshold) {
        checkPromotion();
    } else if (load < _config.sleepThreshold &&
               _sched.numEligible() > 1 && !cooldownActive()) {
        demoteOne();
    }
    if (_running) {
        _sched.simulator().reschedule(_checkEvent,
                                      _sched.simulator().curTick() +
                                          _config.checkInterval);
    } else if (_checkEvent.scheduled()) {
        _sched.simulator().deschedule(_checkEvent);
    }
}

void
AdaptivePoolPolicy::promoteOne()
{
    const auto &servers = _sched.servers();
    // Prefer a sleep-pool server that is still awake (package C6
    // wake is sub-millisecond); fall back to a suspended one.
    std::size_t pick = servers.size();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (_sched.eligible(i))
            continue;
        if (!servers[i]->isAsleep()) {
            pick = i;
            break;
        }
        if (pick == servers.size())
            pick = i;
    }
    if (pick == servers.size())
        return; // sleep pool empty
    _sched.setEligible(pick, true);
    _controllers[pick]->setTau(maxTick);
    servers[pick]->wakeUp();
    ++_promotions;
    _lastTransition = _sched.simulator().curTick();
}

void
AdaptivePoolPolicy::demoteOne()
{
    const auto &servers = _sched.servers();
    // Demote the least-loaded active server.
    std::size_t pick = servers.size();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (!_sched.eligible(i))
            continue;
        if (pick == servers.size() ||
            servers[i]->load() < servers[pick]->load()) {
            pick = i;
        }
    }
    if (pick == servers.size())
        return;
    _sched.setEligible(pick, false);
    _controllers[pick]->setTau(_config.deepSleepAfter);
    ++_demotions;
    _lastTransition = _sched.simulator().curTick();
}

void
configureDualTimers(GlobalScheduler &sched,
                    const DualTimerConfig &config)
{
    const auto &servers = sched.servers();
    if (config.highPoolSize == 0 ||
        config.highPoolSize > servers.size()) {
        fatal("dual-timer high pool size out of range");
    }
    std::set<std::size_t> preferred;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        bool high = i < config.highPoolSize;
        if (high)
            preferred.insert(i);
        servers[i]->setController(
            std::make_unique<DelayTimerController>(
                high ? config.tauHigh : config.tauLow));
    }
    sched.setPolicy(
        std::make_unique<PreferredPoolPolicy>(std::move(preferred)));
}

} // namespace holdcsim
