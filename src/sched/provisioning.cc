#include "provisioning.hh"

#include "sim/logging.hh"

namespace holdcsim {

ProvisioningPolicy::ProvisioningPolicy(GlobalScheduler &sched,
                                       const ProvisioningConfig &config)
    : _sched(sched), _config(config),
      _checkEvent([this] { check(); }, "provisioning.check",
                  Event::powerPriority)
{
    // A policy heartbeat must not keep an otherwise-finished
    // simulation running.
    _checkEvent.setBackground(true);
    if (config.minLoadPerServer >= config.maxLoadPerServer)
        fatal("provisioning thresholds must satisfy min < max");
    if (config.checkInterval == 0)
        fatal("provisioning check interval must be positive");
}

ProvisioningPolicy::~ProvisioningPolicy()
{
    if (_checkEvent.scheduled())
        _sched.simulator().deschedule(_checkEvent);
}

void
ProvisioningPolicy::start()
{
    _running = true;
    _sched.simulator().reschedule(
        _checkEvent,
        _sched.simulator().curTick() + _config.checkInterval);
}

void
ProvisioningPolicy::stop()
{
    _running = false;
    if (_checkEvent.scheduled())
        _sched.simulator().deschedule(_checkEvent);
}

void
ProvisioningPolicy::check()
{
    double load = _sched.loadPerEligibleServer();
    const auto &servers = _sched.servers();

    if (load > _config.maxLoadPerServer) {
        // Bring one parked server back.
        for (std::size_t i = 0; i < servers.size(); ++i) {
            if (_sched.eligible(i))
                continue;
            _sched.setEligible(i, true);
            servers[i]->wakeUp();
            ++_activateEvents;
            break;
        }
    } else if (load < _config.minLoadPerServer &&
               _sched.numEligible() > 1) {
        // Put aside the least-loaded active server.
        std::size_t best = servers.size();
        for (std::size_t i = 0; i < servers.size(); ++i) {
            if (!_sched.eligible(i))
                continue;
            if (best == servers.size() ||
                servers[i]->load() < servers[best]->load()) {
                best = i;
            }
        }
        if (best < servers.size()) {
            _sched.setEligible(best, false);
            ++_parkEvents;
        }
    }

    sweepParked();
    if (_running) {
        _sched.simulator().scheduleAfter(_checkEvent,
                                         _config.checkInterval);
    }
}

void
ProvisioningPolicy::sweepParked()
{
    // Parked servers suspend once their pending tasks have drained.
    const auto &servers = _sched.servers();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (!_sched.eligible(i) && servers[i]->isIdle())
            servers[i]->sleep(SState::s3);
    }
}

} // namespace holdcsim
