/**
 * @file
 * Dynamic resource provisioning (paper case study IV-A).
 *
 * The policy watches the load per active server. When it drops below
 * the minimum threshold one server is put aside (no new work; it is
 * suspended once its pending tasks finish); when it exceeds the
 * maximum threshold a parked server is reactivated. Over a
 * fluctuating trace the number of active servers tracks the offered
 * load, which is exactly the paper's Figure 4.
 */

#ifndef HOLDCSIM_SCHED_PROVISIONING_HH
#define HOLDCSIM_SCHED_PROVISIONING_HH

#include <cstdint>

#include "global_scheduler.hh"
#include "sim/event.hh"

namespace holdcsim {

/** Thresholds and cadence for the provisioning controller. */
struct ProvisioningConfig {
    /** Park one server when load/server falls below this. */
    double minLoadPerServer = 0.5;
    /** Activate one server when load/server exceeds this. */
    double maxLoadPerServer = 2.0;
    /** Re-evaluation period. */
    Tick checkInterval = 100 * msec;
};

/** Threshold-driven active-server-pool controller. */
class ProvisioningPolicy
{
  public:
    ProvisioningPolicy(GlobalScheduler &sched,
                       const ProvisioningConfig &config);
    ~ProvisioningPolicy();
    ProvisioningPolicy(const ProvisioningPolicy &) = delete;
    ProvisioningPolicy &operator=(const ProvisioningPolicy &) = delete;

    /** Begin periodic control. */
    void start();
    /** Stop periodic control (parked servers stay parked). */
    void stop();

    /** Servers currently receiving new work. */
    std::size_t activeServers() const { return _sched.numEligible(); }

    std::uint64_t parkEvents() const { return _parkEvents; }
    std::uint64_t activateEvents() const { return _activateEvents; }

  private:
    void check();
    /** Suspend parked servers that have drained. */
    void sweepParked();

    GlobalScheduler &_sched;
    ProvisioningConfig _config;
    bool _running = false;
    EventFunctionWrapper _checkEvent;
    std::uint64_t _parkEvents = 0;
    std::uint64_t _activateEvents = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SCHED_PROVISIONING_HH
