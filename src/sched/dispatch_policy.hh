/**
 * @file
 * Global dispatch policies (paper section III-E).
 *
 * The global scheduler hands every ready task to a DispatchPolicy,
 * which selects a target server among the currently eligible ones.
 * Built-ins cover the paper's policies: round-robin, load-balancing
 * (least loaded), random, a preferred-pool policy (dual delay timer,
 * section IV-B) and the server/network-aware policy of section IV-D.
 */

#ifndef HOLDCSIM_SCHED_DISPATCH_POLICY_HH
#define HOLDCSIM_SCHED_DISPATCH_POLICY_HH

#include <cstddef>
#include <optional>
#include <set>
#include <vector>

#include "server/server.hh"
#include "server/task.hh"
#include "sim/random.hh"

namespace holdcsim {

class Network;

/** Context handed to the policy for one dispatch decision. */
struct DispatchContext {
    /** The task to place. */
    const TaskRef &task;
    /**
     * Server index a parent task ran on, when the task has parents
     * (used by locality/network-aware policies).
     */
    std::optional<std::size_t> parentServer;
};

/** Picks a server index for each ready task. */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    /**
     * Choose one of @p candidates (indices into the scheduler's
     * server list, already filtered for eligibility and task type).
     * @pre candidates is non-empty.
     */
    virtual std::size_t pick(const std::vector<std::size_t> &candidates,
                             const std::vector<Server *> &servers,
                             const DispatchContext &ctx) = 0;
};

/** Cycle through servers in order. */
class RoundRobinPolicy : public DispatchPolicy
{
  public:
    std::size_t pick(const std::vector<std::size_t> &candidates,
                     const std::vector<Server *> &servers,
                     const DispatchContext &ctx) override;

  private:
    std::size_t _next = 0;
};

/**
 * Load balancing: the candidate with the smallest load(). Ties are
 * broken round-robin (a rotating starting offset), so a fleet of
 * equally-idle servers is used uniformly rather than funneling all
 * work -- and all result flows -- through the lowest-index server.
 */
class LeastLoadedPolicy : public DispatchPolicy
{
  public:
    std::size_t pick(const std::vector<std::size_t> &candidates,
                     const std::vector<Server *> &servers,
                     const DispatchContext &ctx) override;

  private:
    std::size_t _rotate = 0;
};

/** Uniform random candidate. */
class RandomPolicy : public DispatchPolicy
{
  public:
    explicit RandomPolicy(Rng rng) : _rng(rng) {}

    std::size_t pick(const std::vector<std::size_t> &candidates,
                     const std::vector<Server *> &servers,
                     const DispatchContext &ctx) override;

  private:
    Rng _rng;
};

/**
 * Dual-delay-timer dispatch (paper section IV-B, after [69]): a
 * preferred pool of servers (the high-tau pool) absorbs load first
 * -- including moderate queuing up to @p spill_depth times the core
 * count -- before work spills to the remaining (low-tau) servers.
 * Spills prefer low-tau servers that are already awake, so a burst
 * wakes as few sleeping servers as possible; the low pool therefore
 * idles long enough for its short timers to suspend it.
 */
class PreferredPoolPolicy : public DispatchPolicy
{
  public:
    explicit PreferredPoolPolicy(std::set<std::size_t> preferred,
                                 double spill_depth = 2.0);

    std::size_t pick(const std::vector<std::size_t> &candidates,
                     const std::vector<Server *> &servers,
                     const DispatchContext &ctx) override;

    const std::set<std::size_t> &preferred() const { return _preferred; }

  private:
    std::set<std::size_t> _preferred;
    double _spillDepth;
};

/**
 * Server/network cooperative placement (paper section IV-D): among
 * servers with a free core, pick the least loaded; when none has
 * spare capacity (a sleeping/busy server must be engaged), pick the
 * server whose path from the parent's server wakes the fewest
 * sleeping switches.
 */
class NetworkAwarePolicy : public DispatchPolicy
{
  public:
    /** @param net fabric to query for sleeping switches (not owned). */
    explicit NetworkAwarePolicy(Network &net);

    std::size_t pick(const std::vector<std::size_t> &candidates,
                     const std::vector<Server *> &servers,
                     const DispatchContext &ctx) override;

  private:
    Network &_net;
};

} // namespace holdcsim

#endif // HOLDCSIM_SCHED_DISPATCH_POLICY_HH
