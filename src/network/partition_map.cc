#include "partition_map.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "sim/logging.hh"

namespace holdcsim {

PartitionMap
PartitionMap::derive(const Topology &topo)
{
    PartitionMap map;
    map._podOf.assign(topo.numNodes(), -1);

    if (topo.numSwitches() == 0) {
        map._reason = "server-only topology: no switch tier to cut";
        return map;
    }

    // Multi-source BFS from every server: dist[n] = min hops to a
    // server. Switch tiers of a layered fabric come out as distance
    // bands (fat tree: edge 1, aggregation 2, core 3).
    constexpr unsigned unreached = std::numeric_limits<unsigned>::max();
    std::vector<unsigned> dist(topo.numNodes(), unreached);
    std::deque<NodeId> frontier;
    for (std::size_t i = 0; i < topo.numServers(); ++i) {
        NodeId s = topo.serverNode(i);
        dist[s] = 0;
        frontier.push_back(s);
    }
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        for (LinkId l : topo.linksAt(n)) {
            NodeId m = topo.otherEnd(l, n);
            if (dist[m] == unreached) {
                dist[m] = dist[n] + 1;
                frontier.push_back(m);
            }
        }
    }

    unsigned max_d = 0;
    for (std::size_t i = 0; i < topo.numSwitches(); ++i)
        max_d = std::max(max_d, dist[topo.switchNode(i)]);
    if (max_d < 2) {
        map._reason =
            "single switch tier: removing it would isolate every "
            "server (star / flattened-butterfly class)";
        return map;
    }

    // The boundary is the topmost tier. Everything else is flood-
    // filled into components; component discovery order (lowest node
    // id first) numbers the pods deterministically.
    std::vector<bool> boundary(topo.numNodes(), false);
    for (std::size_t i = 0; i < topo.numSwitches(); ++i) {
        NodeId sw = topo.switchNode(i);
        if (dist[sw] == max_d)
            boundary[sw] = true;
    }

    int next_pod = 0;
    for (NodeId seed = 0; seed < topo.numNodes(); ++seed) {
        if (boundary[seed] || map._podOf[seed] >= 0)
            continue;
        map._podOf[seed] = next_pod;
        frontier.push_back(seed);
        while (!frontier.empty()) {
            NodeId n = frontier.front();
            frontier.pop_front();
            for (LinkId l : topo.linksAt(n)) {
                NodeId m = topo.otherEnd(l, n);
                if (boundary[m] || map._podOf[m] >= 0)
                    continue;
                map._podOf[m] = next_pod;
                frontier.push_back(m);
            }
        }
        ++next_pod;
    }
    if (next_pod < 2) {
        map._reason = "cutting the top switch tier leaves a single "
                      "component";
        return map;
    }
    map._pods = static_cast<std::size_t>(next_pod);

    // Lookahead: the cheapest way one pod can reach another crosses
    // at least one pod-to-core link, so its minimum latency is a
    // conservative (under-estimating, hence safe) window width.
    Tick lookahead = maxTick;
    for (LinkId l = 0; l < topo.numLinks(); ++l) {
        const LinkInfo &li = topo.link(l);
        if (boundary[li.a] != boundary[li.b])
            lookahead = std::min(lookahead, li.latency);
    }
    if (lookahead == 0 || lookahead == maxTick) {
        map._reason = "zero-latency cross-partition link admits no "
                      "synchronization window";
        map._pods = 0;
        std::fill(map._podOf.begin(), map._podOf.end(), -1);
        return map;
    }
    map._lookahead = lookahead;

    map._podServers.resize(map._pods);
    for (std::size_t i = 0; i < topo.numServers(); ++i) {
        int pod = map._podOf[topo.serverNode(i)];
        // Every server sits below the core tier, so it has a pod.
        map._podServers.at(static_cast<std::size_t>(pod)).push_back(i);
    }
    return map;
}

std::vector<int>
PartitionMap::partitionOfPod(std::size_t n_partitions) const
{
    if (!splittable())
        fatal("PartitionMap: unsplittable topology (", _reason, ")");
    if (n_partitions == 0 || n_partitions > _pods) {
        fatal("PartitionMap: ", n_partitions,
              " partitions requested for ", _pods, " pods");
    }
    std::vector<int> part(_pods);
    for (std::size_t pod = 0; pod < _pods; ++pod)
        part[pod] = static_cast<int>(pod * n_partitions / _pods);
    return part;
}

} // namespace holdcsim
