/**
 * @file
 * The unit of packet-level communication (paper section III-B).
 */

#ifndef HOLDCSIM_NETWORK_PACKET_HH
#define HOLDCSIM_NETWORK_PACKET_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "routing.hh"
#include "sim/types.hh"

namespace holdcsim {

/** One packet in flight through the switched fabric. */
struct Packet {
    /** Unique packet id (also the ECMP flow key by default). */
    std::uint64_t id = 0;
    /** Source server node. */
    NodeId src = 0;
    /** Destination server node. */
    NodeId dst = 0;
    /** Payload plus header bytes. */
    Bytes bytes = 0;
    /** Precomputed route (links in traversal order). */
    Route route;
    /** Index of the next link to traverse in route.links. */
    std::size_t hop = 0;
    /** Injection time (for end-to-end latency stats). */
    Tick sentAt = 0;
    /** Fires on arrival at the destination server. */
    std::function<void(const struct Packet &)> onDelivered;
    /** Fires if the packet is dropped at a full buffer (optional). */
    std::function<void(const struct Packet &)> onDropped;
};

/** Packets move through port queues by shared ownership. */
using PacketPtr = std::shared_ptr<Packet>;

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_PACKET_HH
