#include "port.hh"

#include "sim/logging.hh"

namespace holdcsim {

Port::Port(Simulator &sim, unsigned id,
           const SwitchPowerProfile &profile, BitsPerSec line_rate,
           std::size_t buffer_capacity, AccrueFn accrue,
           ActivityFn activity_changed)
    : _sim(sim), _id(id), _profile(profile), _lineRate(line_rate),
      _bufferCapacity(buffer_capacity), _accrue(std::move(accrue)),
      _activityChanged(std::move(activity_changed)),
      _txDoneEvent([this] { transmitDone(); }, "port.txDone"),
      _lpiEvent([this] {
          if (!busy() && _state == PortState::active) {
              setState(PortState::lpi);
              _activityChanged();
          }
      }, "port.lpi", Event::powerPriority)
{
    if (line_rate <= 0.0)
        fatal("port line rate must be positive");
    if (buffer_capacity == 0)
        fatal("port buffer capacity must be positive");
    _residency.enter(static_cast<int>(_state), sim.curTick());
    maybeArmLpi();
}

Port::~Port()
{
    if (_txDoneEvent.scheduled())
        _sim.deschedule(_txDoneEvent);
    if (_lpiEvent.scheduled())
        _sim.deschedule(_lpiEvent);
}

void
Port::setState(PortState next)
{
    if (next == _state)
        return;
    _accrue();
    _state = next;
    _residency.enter(static_cast<int>(next), _sim.curTick());
}

Tick
Port::wake()
{
    if (_lpiEvent.scheduled())
        _sim.deschedule(_lpiEvent);
    if (_state == PortState::active)
        return 0;
    if (_state == PortState::off)
        fatal("cannot route traffic through a powered-off port");
    setState(PortState::active);
    _activityChanged();
    return _profile.lpiExitLatency;
}

void
Port::powerOff()
{
    if (busy())
        fatal("cannot power off a busy port");
    if (_lpiEvent.scheduled())
        _sim.deschedule(_lpiEvent);
    setState(PortState::off);
    _activityChanged();
}

void
Port::setRateFraction(double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("port rate fraction must be in (0, 1]");
    _accrue();
    _rateFraction = fraction;
}

bool
Port::sendPacket(const PacketPtr &pkt, Tick extra_delay)
{
    Tick wake_delay = wake() + extra_delay;
    if (_queue.size() >= _bufferCapacity) {
        ++_packetsDropped;
        return false;
    }
    _queue.push_back(pkt);
    if (!_transmitting)
        startNext(wake_delay);
    return true;
}

void
Port::startNext(Tick extra_delay)
{
    if (_queue.empty())
        HOLDCSIM_PANIC("port ", _id, " startNext with empty queue");
    _inFlight = _queue.front();
    _queue.pop_front();
    _transmitting = true;
    Tick ser = serializationDelay(_inFlight->bytes, currentRate());
    _sim.scheduleAfter(_txDoneEvent, extra_delay + ser);
}

void
Port::transmitDone()
{
    PacketPtr pkt = std::move(_inFlight);
    _transmitting = false;
    ++_packetsSent;
    _bytesSent += pkt->bytes;
    if (!_queue.empty())
        startNext(0);
    else
        maybeArmLpi();
    if (_deliver)
        _deliver(pkt);
    else
        HOLDCSIM_PANIC("port ", _id, " transmitted with no deliver fn");
}

void
Port::flowStarted()
{
    wake();
    ++_activeFlows;
}

void
Port::flowEnded()
{
    if (_activeFlows == 0)
        HOLDCSIM_PANIC("port ", _id, " flowEnded underflow");
    --_activeFlows;
    maybeArmLpi();
}

void
Port::maybeArmLpi()
{
    if (busy() || _state != PortState::active)
        return;
    if (_profile.lpiIdleThreshold == maxTick)
        return; // LPI disabled (e.g. pre-802.3az hardware)
    _sim.reschedule(_lpiEvent,
                    _sim.curTick() + _profile.lpiIdleThreshold);
}

Watts
Port::power() const
{
    switch (_state) {
      case PortState::active:
        return _profile.portPowerAt(_rateFraction);
      case PortState::lpi:
        return _profile.portLpi;
      case PortState::off:
        return _profile.portOff;
    }
    HOLDCSIM_PANIC("unknown PortState");
}

} // namespace holdcsim
