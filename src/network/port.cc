#include "port.hh"

#include "sim/logging.hh"

namespace holdcsim {

PortPool::PortPool(Simulator &sim, PortHost &host,
                   const SwitchPowerProfile &profile,
                   std::vector<BitsPerSec> line_rates,
                   std::size_t buffer_capacity)
    : _sim(sim), _host(host), _profile(profile),
      _bufferCapacity(buffer_capacity), _wheel(sim.timerWheel())
{
    for (BitsPerSec r : line_rates)
        if (r <= 0.0)
            fatal("port line rate must be positive");
    if (buffer_capacity == 0)
        fatal("port buffer capacity must be positive");

    const unsigned n = static_cast<unsigned>(line_rates.size());
    _state.assign(n, PortState::active);
    _rateFraction.assign(n, 1.0);
    _activeFlows.assign(n, 0);
    _lineRate = std::move(line_rates);
    _lpi.resize(n);
    _residency.resize(n);
    _packetsSent.assign(n, 0);
    _packetsDropped.assign(n, 0);
    _bytesSent.assign(n, 0);
    _io.resize(n);

    const Tick now = sim.curTick();
    for (unsigned p = 0; p < n; ++p) {
        _txDoneEvents.emplace_back([this, p] { transmitDone(p); },
                                   "port.txDone");
        if (!_wheel)
            _lpiEvents.emplace_back([this, p] {
                if (!busy(p) && _state[p] == PortState::active) {
                    setState(p, PortState::lpi);
                    _host.portActivityChanged(p);
                }
            }, "port.lpi", Event::powerPriority);
        _residency[p].enter(static_cast<int>(_state[p]), now);
        maybeArmLpi(p);
    }
}

PortPool::~PortPool()
{
    for (auto &ev : _txDoneEvents)
        if (ev.scheduled())
            _sim.deschedule(ev);
    for (auto &ev : _lpiEvents)
        if (ev.scheduled())
            _sim.deschedule(ev);
    if (_wheel)
        for (auto &h : _lpi)
            _wheel->cancel(h);
}

void
PortPool::timerFired(std::uint64_t token, Tick)
{
    const unsigned p = static_cast<unsigned>(token);
    _lpi[p] = {}; // the firing handle is already dead
    if (!busy(p) && _state[p] == PortState::active) {
        setState(p, PortState::lpi);
        _host.portActivityChanged(p);
    }
}

void
PortPool::setState(unsigned p, PortState next)
{
    if (next == _state[p])
        return;
    _host.portAccrue();
    _state[p] = next;
    _residency[p].enter(static_cast<int>(next), _sim.curTick());
}

Tick
PortPool::wake(unsigned p)
{
    cancelLpi(p);
    if (_state[p] == PortState::active)
        return 0;
    if (_state[p] == PortState::off)
        fatal("cannot route traffic through a powered-off port");
    setState(p, PortState::active);
    _host.portActivityChanged(p);
    return _profile.lpiExitLatency;
}

void
PortPool::powerOff(unsigned p)
{
    if (busy(p))
        fatal("cannot power off a busy port");
    cancelLpi(p);
    setState(p, PortState::off);
    _host.portActivityChanged(p);
}

void
PortPool::setRateFraction(unsigned p, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        fatal("port rate fraction must be in (0, 1]");
    _host.portAccrue();
    _rateFraction[p] = fraction;
}

bool
PortPool::sendPacket(unsigned p, const PacketPtr &pkt, Tick extra_delay)
{
    Tick wake_delay = wake(p) + extra_delay;
    PortIo &io = _io[p];
    if (io.queue.size() >= _bufferCapacity) {
        ++_packetsDropped[p];
        return false;
    }
    io.queue.push_back(pkt);
    if (!io.transmitting)
        startNext(p, wake_delay);
    return true;
}

void
PortPool::startNext(unsigned p, Tick extra_delay)
{
    PortIo &io = _io[p];
    if (io.queue.empty())
        HOLDCSIM_PANIC("port ", p, " startNext with empty queue");
    io.inFlight = io.queue.front();
    io.queue.pop_front();
    io.transmitting = true;
    Tick ser = serializationDelay(io.inFlight->bytes, currentRate(p));
    _sim.scheduleAfter(_txDoneEvents[p], extra_delay + ser);
}

void
PortPool::transmitDone(unsigned p)
{
    PortIo &io = _io[p];
    PacketPtr pkt = std::move(io.inFlight);
    io.transmitting = false;
    ++_packetsSent[p];
    _bytesSent[p] += pkt->bytes;
    if (!io.queue.empty())
        startNext(p, 0);
    else
        maybeArmLpi(p);
    if (io.deliver)
        io.deliver(pkt);
    else
        HOLDCSIM_PANIC("port ", p, " transmitted with no deliver fn");
}

void
PortPool::flowStarted(unsigned p)
{
    wake(p);
    ++_activeFlows[p];
}

void
PortPool::flowEnded(unsigned p)
{
    if (_activeFlows[p] == 0)
        HOLDCSIM_PANIC("port ", p, " flowEnded underflow");
    --_activeFlows[p];
    maybeArmLpi(p);
}

void
PortPool::maybeArmLpi(unsigned p)
{
    if (busy(p) || _state[p] != PortState::active)
        return;
    if (_profile.lpiIdleThreshold == maxTick)
        return; // LPI disabled (e.g. pre-802.3az hardware)
    if (_wheel) {
        _wheel->cancel(_lpi[p]);
        _lpi[p] = _wheel->arm(*this, p, _profile.lpiIdleThreshold);
    } else {
        _sim.reschedule(_lpiEvents[p],
                        _sim.curTick() + _profile.lpiIdleThreshold);
    }
}

void
PortPool::cancelLpi(unsigned p)
{
    if (_wheel) {
        _wheel->cancel(_lpi[p]);
    } else if (_lpiEvents[p].scheduled()) {
        _sim.deschedule(_lpiEvents[p]);
    }
}

Watts
PortPool::power(unsigned p) const
{
    switch (_state[p]) {
      case PortState::active:
        return _profile.portPowerAt(_rateFraction[p]);
      case PortState::lpi:
        return _profile.portLpi;
      case PortState::off:
        return _profile.portOff;
    }
    HOLDCSIM_PANIC("unknown PortState");
}

void
Port::resetStats(Tick now)
{
    PortPool &p = *_pool;
    p._packetsSent[_id] = 0;
    p._packetsDropped[_id] = 0;
    p._bytesSent[_id] = 0;
    StateResidency &res = p._residency[_id];
    res.reset();
    res.enter(static_cast<int>(p._state[_id]), now);
}

} // namespace holdcsim
