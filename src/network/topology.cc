#include "topology.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"

namespace holdcsim {

NodeId
Topology::addServer()
{
    NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(NodeKind::server);
    _adjacency.emplace_back();
    _servers.push_back(id);
    return id;
}

NodeId
Topology::addSwitch()
{
    NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(NodeKind::swtch);
    _adjacency.emplace_back();
    _switches.push_back(id);
    return id;
}

LinkId
Topology::addLink(NodeId a, NodeId b, BitsPerSec rate, Tick latency)
{
    if (a >= _nodes.size() || b >= _nodes.size())
        fatal("link endpoint out of range");
    if (a == b)
        fatal("self-links are not allowed");
    if (rate <= 0.0)
        fatal("link rate must be positive");
    LinkId id = static_cast<LinkId>(_links.size());
    _links.push_back(LinkInfo{a, b, rate, latency});
    _adjacency[a].push_back(id);
    _adjacency[b].push_back(id);
    return id;
}

std::size_t
Topology::serverIndex(NodeId n) const
{
    auto it = std::find(_servers.begin(), _servers.end(), n);
    if (it == _servers.end())
        HOLDCSIM_PANIC("node ", n, " is not a server");
    return static_cast<std::size_t>(it - _servers.begin());
}

std::size_t
Topology::switchIndex(NodeId n) const
{
    auto it = std::find(_switches.begin(), _switches.end(), n);
    if (it == _switches.end())
        HOLDCSIM_PANIC("node ", n, " is not a switch");
    return static_cast<std::size_t>(it - _switches.begin());
}

NodeId
Topology::otherEnd(LinkId l, NodeId from) const
{
    const LinkInfo &li = link(l);
    if (li.a == from)
        return li.b;
    if (li.b == from)
        return li.a;
    HOLDCSIM_PANIC("node ", from, " is not an endpoint of link ", l);
}

void
Topology::validateConnected() const
{
    if (_nodes.empty())
        fatal("topology has no nodes");
    std::vector<bool> seen(_nodes.size(), false);
    std::queue<NodeId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t count = 1;
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop();
        for (LinkId l : _adjacency[n]) {
            NodeId m = otherEnd(l, n);
            if (!seen[m]) {
                seen[m] = true;
                ++count;
                frontier.push(m);
            }
        }
    }
    if (count != _nodes.size())
        fatal("topology is not connected (", count, " of ",
              _nodes.size(), " nodes reachable)");
}

Topology
Topology::star(unsigned n_servers, BitsPerSec rate, Tick latency)
{
    if (n_servers == 0)
        fatal("star topology needs at least one server");
    Topology t;
    NodeId hub = t.addSwitch();
    for (unsigned i = 0; i < n_servers; ++i) {
        NodeId s = t.addServer();
        t.addLink(s, hub, rate, latency);
    }
    return t;
}

Topology
Topology::fatTree(unsigned k, BitsPerSec rate, Tick latency)
{
    if (k < 2 || k % 2 != 0)
        fatal("fat tree parameter k must be even and >= 2");
    Topology t;
    const unsigned half = k / 2;

    // (k/2)^2 core switches.
    std::vector<NodeId> core;
    for (unsigned i = 0; i < half * half; ++i)
        core.push_back(t.addSwitch());

    for (unsigned pod = 0; pod < k; ++pod) {
        std::vector<NodeId> agg, edge;
        for (unsigned i = 0; i < half; ++i)
            agg.push_back(t.addSwitch());
        for (unsigned i = 0; i < half; ++i)
            edge.push_back(t.addSwitch());
        // Edge <-> aggregation full mesh within the pod.
        for (NodeId e : edge)
            for (NodeId a : agg)
                t.addLink(e, a, rate, latency);
        // Aggregation switch i uplinks to core group i.
        for (unsigned i = 0; i < half; ++i)
            for (unsigned j = 0; j < half; ++j)
                t.addLink(agg[i], core[i * half + j], rate, latency);
        // k/2 servers per edge switch.
        for (NodeId e : edge) {
            for (unsigned i = 0; i < half; ++i) {
                NodeId s = t.addServer();
                t.addLink(s, e, rate, latency);
            }
        }
    }
    return t;
}

Topology
Topology::flattenedButterfly(unsigned k, unsigned concentration,
                             BitsPerSec rate, Tick latency)
{
    if (k < 2)
        fatal("flattened butterfly needs k >= 2");
    if (concentration == 0)
        fatal("flattened butterfly needs concentration >= 1");
    Topology t;
    std::vector<NodeId> sw(k * k);
    for (auto &node : sw)
        node = t.addSwitch();
    auto at = [&](unsigned r, unsigned c) { return sw[r * k + c]; };
    // Full connectivity within each row and each column.
    for (unsigned r = 0; r < k; ++r)
        for (unsigned c1 = 0; c1 < k; ++c1)
            for (unsigned c2 = c1 + 1; c2 < k; ++c2)
                t.addLink(at(r, c1), at(r, c2), rate, latency);
    for (unsigned c = 0; c < k; ++c)
        for (unsigned r1 = 0; r1 < k; ++r1)
            for (unsigned r2 = r1 + 1; r2 < k; ++r2)
                t.addLink(at(r1, c), at(r2, c), rate, latency);
    for (NodeId node : sw) {
        for (unsigned i = 0; i < concentration; ++i) {
            NodeId s = t.addServer();
            t.addLink(s, node, rate, latency);
        }
    }
    return t;
}

Topology
Topology::bcube(unsigned n, unsigned levels, BitsPerSec rate,
                Tick latency)
{
    if (n < 2)
        fatal("BCube needs n >= 2");
    unsigned n_servers = 1;
    for (unsigned l = 0; l <= levels; ++l) {
        if (n_servers > 1'000'000 / n)
            fatal("BCube(", n, ", ", levels, ") is too large");
        n_servers *= n;
    }
    unsigned switches_per_level = n_servers / n;

    Topology t;
    std::vector<NodeId> servers(n_servers);
    for (auto &s : servers)
        s = t.addServer();

    for (unsigned level = 0; level <= levels; ++level) {
        // Stride between addresses differing only in digit 'level'.
        unsigned stride = 1;
        for (unsigned l = 0; l < level; ++l)
            stride *= n;
        for (unsigned sw_idx = 0; sw_idx < switches_per_level;
             ++sw_idx) {
            NodeId sw = t.addSwitch();
            // The n servers on this switch share every address digit
            // except digit 'level'.
            unsigned block = sw_idx / stride;
            unsigned offset = sw_idx % stride;
            unsigned base = block * stride * n + offset;
            for (unsigned i = 0; i < n; ++i)
                t.addLink(servers[base + i * stride], sw, rate,
                          latency);
        }
    }
    return t;
}

Topology
Topology::camCube(unsigned x, unsigned y, unsigned z, BitsPerSec rate,
                  Tick latency)
{
    if (x == 0 || y == 0 || z == 0)
        fatal("CamCube dimensions must be positive");
    Topology t;
    std::vector<NodeId> servers(x * y * z);
    for (auto &s : servers)
        s = t.addServer();
    auto at = [&](unsigned i, unsigned j, unsigned k) {
        return servers[(i * y + j) * z + k];
    };
    // Torus neighbor links along each dimension; a dimension of size
    // 2 gets a single link (the wrap-around duplicates it), size 1
    // gets none.
    for (unsigned i = 0; i < x; ++i) {
        for (unsigned j = 0; j < y; ++j) {
            for (unsigned k = 0; k < z; ++k) {
                if (x > 1 && (i + 1 < x || x > 2))
                    t.addLink(at(i, j, k), at((i + 1) % x, j, k), rate,
                              latency);
                if (y > 1 && (j + 1 < y || y > 2))
                    t.addLink(at(i, j, k), at(i, (j + 1) % y, k), rate,
                              latency);
                if (z > 1 && (k + 1 < z || z > 2))
                    t.addLink(at(i, j, k), at(i, j, (k + 1) % z), rate,
                              latency);
            }
        }
    }
    return t;
}

} // namespace holdcsim
