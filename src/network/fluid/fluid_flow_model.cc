#include "fluid_flow_model.hh"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "sim/logging.hh"

namespace holdcsim {

FluidFlowModel::FluidFlowModel(Simulator &sim, const Topology &topo,
                               Bytes fast_path_bytes)
    : _sim(sim), _topo(topo), _fastPathBytes(fast_path_bytes)
{
    _linkFlows.resize(2 * _topo.numLinks());
    _linkEpoch.assign(2 * _topo.numLinks(), 0);
}

FluidFlowModel::~FluidFlowModel()
{
    for (auto &[id, flow] : _flows) {
        if (flow.completion && flow.completion->scheduled())
            _sim.deschedule(*flow.completion);
        if (flow.activation && flow.activation->scheduled())
            _sim.deschedule(*flow.activation);
    }
}

TraceManager *
FluidFlowModel::flowTracer()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::flow))
        return nullptr;
    if (_traceTrack == noTraceTrack)
        _traceTrack = tr->track("network", "flows");
    return tr;
}

FlowId
FluidFlowModel::startFlow(Route route, Bytes bytes, FlowDoneFn on_done,
                          Tick start_delay)
{
    FlowId id = _nextId++;
    Flow flow;
    flow.id = id;
    flow.remainingBits = static_cast<double>(bytes) * 8.0;
    flow.onDone = std::move(on_done);
    flow.startedAt = _sim.curTick();

    for (std::size_t i = 0; i < route.links.size(); ++i) {
        LinkId l = route.links[i];
        bool forward = _topo.link(l).a == route.nodes[i];
        flow.pathIdx.push_back(l * 2 + (forward ? 1 : 0));
    }
    flow.linkPos.resize(flow.pathIdx.size());

    flow.completion = std::make_unique<EventFunctionWrapper>(
        [this, id] { finish(id); }, "flow.completion");

    bool fast = _fastPathBytes > 0 && bytes <= _fastPathBytes &&
                !route.links.empty();
    if (fast) {
        // Constant-latency model: a short transfer completes after
        // path latency + serialization at the bottleneck rate,
        // without ever contending in the solver.
        flow.fastPath = true;
        ++_solverStats.fastPathHits;
        Tick eta = start_delay + fastPathDuration(_topo, route, bytes);
        auto [it, inserted] = _flows.emplace(id, std::move(flow));
        (void)inserted;
        if (TraceManager *tr = flowTracer()) {
            tr->asyncBegin(_traceTrack, TraceCategory::flow, "flow",
                           id, _sim.curTick());
        }
        _sim.scheduleAfter(*it->second.completion, eta);
        return id;
    }

    flow.activation = std::make_unique<EventFunctionWrapper>(
        [this, id] { activate(id); }, "flow.activation");

    auto [it, inserted] = _flows.emplace(id, std::move(flow));
    (void)inserted;
    if (TraceManager *tr = flowTracer()) {
        tr->asyncBegin(_traceTrack, TraceCategory::flow, "flow", id,
                       _sim.curTick());
    }
    _sim.scheduleAfter(*it->second.activation, start_delay);
    return id;
}

void
FluidFlowModel::enroll(Flow &flow)
{
    for (std::size_t i = 0; i < flow.pathIdx.size(); ++i) {
        auto &members = _linkFlows[flow.pathIdx[i]];
        flow.linkPos[i] = static_cast<std::uint32_t>(members.size());
        members.push_back(&flow);
    }
}

void
FluidFlowModel::unenroll(Flow &flow)
{
    for (std::size_t i = 0; i < flow.pathIdx.size(); ++i) {
        std::uint32_t dl = flow.pathIdx[i];
        auto &members = _linkFlows[dl];
        std::uint32_t pos = flow.linkPos[i];
        Flow *moved = members.back();
        members[pos] = moved;
        members.pop_back();
        if (moved == &flow)
            continue;
        // Tell the flow that slid into our slot where it now lives.
        // Shortest-path routes never repeat a directed link, so the
        // first match is the right hop.
        for (std::size_t j = 0; j < moved->pathIdx.size(); ++j) {
            if (moved->pathIdx[j] == dl) {
                moved->linkPos[j] = pos;
                break;
            }
        }
    }
}

void
FluidFlowModel::activate(FlowId id)
{
    auto it = _flows.find(id);
    if (it == _flows.end())
        HOLDCSIM_PANIC("activation of unknown flow ", id);
    Flow &flow = it->second;
    if (flow.pathIdx.empty() || flow.remainingBits <= 0.0) {
        // Local or empty transfer: complete immediately.
        finish(id);
        return;
    }
    flow.active = true;
    flow.lastUpdate = _sim.curTick();
    enroll(flow);
    if (_bulk)
        return; // endBulkLoad() solves once for everyone
    for (std::uint32_t dl : flow.pathIdx)
        seedLink(dl);
    resolveDirty();
}

void
FluidFlowModel::finish(FlowId id)
{
    auto it = _flows.find(id);
    if (it == _flows.end())
        HOLDCSIM_PANIC("completion of unknown flow ", id);
    Flow &flow = it->second;
    bool was_active = flow.active;
    FlowDoneFn done = std::move(flow.onDone);
    _flowLatency.sample(toSeconds(_sim.curTick() - flow.startedAt));
    ++_flowsCompleted;
    if (TraceManager *tr = flowTracer()) {
        tr->asyncEnd(_traceTrack, TraceCategory::flow, "flow", id,
                     _sim.curTick());
    }
    if (was_active) {
        unenroll(flow);
        // The freed bandwidth can only move flows in this
        // component; everyone else keeps their exact rates.
        for (std::uint32_t dl : flow.pathIdx)
            seedLink(dl);
    }
    _flows.erase(it);
    if (was_active)
        resolveDirty();
    if (done)
        done();
}

void
FluidFlowModel::endBulkLoad()
{
    _bulk = false;
    for (std::uint32_t dl = 0; dl < _linkFlows.size(); ++dl) {
        if (!_linkFlows[dl].empty())
            seedLink(dl);
    }
    resolveDirty();
}

void
FluidFlowModel::seedLink(std::uint32_t dl)
{
    // Duplicates are harmless: resolveDirty() dedupes via epochs.
    _seedLinks.push_back(dl);
}

void
FluidFlowModel::abortSolve(const std::string &what)
{
    std::ostringstream detail;
    detail << what << "; " << _unfrozen.size()
           << " unfrozen flow(s):";
    std::size_t shown = 0;
    for (Flow *flow : _unfrozen) {
        if (++shown > 4) {
            detail << " ...";
            break;
        }
        detail << " flow " << flow->id << " links[";
        for (std::size_t i = 0; i < flow->pathIdx.size(); ++i) {
            std::uint32_t dl = flow->pathIdx[i];
            detail << (i ? " " : "") << dl / 2
                   << (dl & 1 ? "f" : "r") << ":cap="
                   << _capLeft[dl] << "/users=" << _usersLeft[dl];
        }
        detail << "]";
    }
    std::string reason = detail.str();
    _sim.abortDump(std::cerr, reason);
    throw SimAbortError(reason);
}

void
FluidFlowModel::resolveDirty()
{
    if (_seedLinks.empty())
        return;

    // 1/2: expand the seeds to the full connected component over
    // the membership lists. Epoch marks make visits O(1) with no
    // clearing pass.
    ++_epoch;
    _dirtyLinks.clear();
    _dirtyFlows.clear();
    for (std::uint32_t dl : _seedLinks) {
        if (_linkEpoch[dl] != _epoch) {
            _linkEpoch[dl] = _epoch;
            _dirtyLinks.push_back(dl);
        }
    }
    _seedLinks.clear();
    for (std::size_t i = 0; i < _dirtyLinks.size(); ++i) {
        for (Flow *f : _linkFlows[_dirtyLinks[i]]) {
            if (f->visitEpoch == _epoch)
                continue;
            f->visitEpoch = _epoch;
            _dirtyFlows.push_back(f);
            for (std::uint32_t dl : f->pathIdx) {
                if (_linkEpoch[dl] != _epoch) {
                    _linkEpoch[dl] = _epoch;
                    _dirtyLinks.push_back(dl);
                }
            }
        }
    }

    ++_solverStats.resolves;
    _solverStats.resolvedFlows += _dirtyFlows.size();
    _solverStats.dirtyLinks += _dirtyLinks.size();
    _solverStats.maxDirtyFlows = std::max(
        _solverStats.maxDirtyFlows,
        static_cast<std::uint64_t>(_dirtyFlows.size()));

    if (_dirtyFlows.empty())
        return; // e.g. a repaired link with no traffic near it

    // 3: settle transferred bits for the dirty flows, whose rates
    // are about to change. Clean flows keep progressing linearly at
    // their unchanged rates, so their books stay correct untouched.
    Tick now = _sim.curTick();
    for (Flow *f : _dirtyFlows) {
        double transferred = f->rate * toSeconds(now - f->lastUpdate);
        f->remainingBits =
            std::max(0.0, f->remainingBits - transferred);
        f->lastUpdate = now;
    }

    // 4: progressive filling restricted to the component. Every
    // active flow on a dirty link is dirty (BFS fixed point), so
    // the restricted problem is self-contained and its solution
    // equals the global max-min allocation on these flows.
    const std::size_t n_dl = 2 * _topo.numLinks();
    if (_capLeft.size() != n_dl) {
        _capLeft.resize(n_dl);
        _usersLeft.resize(n_dl);
        _isBottleneck.assign(n_dl, 0);
    }
    for (std::uint32_t dl : _dirtyLinks) {
        _capLeft[dl] = _topo.link(dl / 2).rate;
        _usersLeft[dl] = 0;
    }
    for (Flow *f : _dirtyFlows) {
        for (std::uint32_t dl : f->pathIdx)
            ++_usersLeft[dl];
    }

    _unfrozen = _dirtyFlows;
    while (!_unfrozen.empty()) {
        double best_share = std::numeric_limits<double>::infinity();
        for (std::uint32_t dl : _dirtyLinks) {
            if (_usersLeft[dl] == 0)
                continue;
            double share = _capLeft[dl] / _usersLeft[dl];
            best_share = std::min(best_share, share);
        }
        if (!std::isfinite(best_share))
            abortSolve("fluid solve found no bottleneck");

        // Snapshot the bottleneck set before freezing (see the
        // exact model: epsilon-tied links must be classified
        // against the round's opening shares).
        double tolerance = 1e-9 * std::max(1.0, best_share);
        for (std::uint32_t dl : _dirtyLinks) {
            _isBottleneck[dl] =
                _usersLeft[dl] > 0 &&
                _capLeft[dl] / _usersLeft[dl] <=
                    best_share + tolerance;
        }

        std::size_t kept = 0;
        for (Flow *flow : _unfrozen) {
            bool frozen = false;
            for (std::uint32_t dl : flow->pathIdx) {
                if (_isBottleneck[dl]) {
                    frozen = true;
                    break;
                }
            }
            if (frozen) {
                flow->rate = best_share;
                for (std::uint32_t dl : flow->pathIdx) {
                    _capLeft[dl] =
                        std::max(0.0, _capLeft[dl] - best_share);
                    --_usersLeft[dl];
                }
            } else {
                _unfrozen[kept++] = flow;
            }
        }
        if (kept == _unfrozen.size()) {
            _unfrozen.resize(kept);
            abortSolve(detail::format(
                "fluid solve made no progress at share ",
                best_share));
        }
        _unfrozen.resize(kept);
    }

    // 5: reschedule completions for the dirty flows only.
    for (Flow *f : _dirtyFlows) {
        if (f->completion->scheduled())
            _sim.deschedule(*f->completion);
        if (f->rate <= 0.0)
            HOLDCSIM_PANIC("active flow ", f->id, " got zero rate");
        double seconds = f->remainingBits / f->rate;
        Tick eta = fromSeconds(seconds);
        _sim.schedule(*f->completion, now + (eta > 0 ? eta : 1));
    }
}

bool
FluidFlowModel::abortFlow(FlowId flow_id)
{
    auto it = _flows.find(flow_id);
    if (it == _flows.end())
        return false;
    Flow &f = it->second;
    bool was_active = f.active;
    FlowDoneFn aborted = std::move(f.onAbort);
    if (f.completion && f.completion->scheduled())
        _sim.deschedule(*f.completion);
    if (f.activation && f.activation->scheduled())
        _sim.deschedule(*f.activation);
    if (was_active) {
        unenroll(f);
        for (std::uint32_t dl : f.pathIdx)
            seedLink(dl);
    }
    _flows.erase(it);
    ++_flowsAborted;
    if (TraceManager *tr = flowTracer()) {
        tr->instant(_traceTrack, TraceCategory::flow, "flow.abort",
                    _sim.curTick());
        tr->asyncEnd(_traceTrack, TraceCategory::flow, "flow",
                     flow_id, _sim.curTick());
    }
    if (was_active)
        resolveDirty(); // survivors inherit the freed bandwidth
    if (aborted)
        aborted();
    return true;
}

std::size_t
FluidFlowModel::abortFlowsOn(LinkId l)
{
    // Active flows come straight off the membership lists; pending
    // and fast-path flows (not enrolled) need the full scan, but
    // this only runs on fault events, never on the churn hot path.
    std::vector<FlowId> doomed;
    for (Flow *f : _linkFlows[2 * l])
        doomed.push_back(f->id);
    for (Flow *f : _linkFlows[2 * l + 1])
        doomed.push_back(f->id);
    for (const auto &[id, flow] : _flows) {
        if (flow.active)
            continue;
        for (std::uint32_t dl : flow.pathIdx) {
            if (dl / 2 == l) {
                doomed.push_back(id);
                break;
            }
        }
    }
    // Deterministic kill order regardless of hash-map iteration.
    std::sort(doomed.begin(), doomed.end());
    doomed.erase(std::unique(doomed.begin(), doomed.end()),
                 doomed.end());
    for (FlowId id : doomed)
        abortFlow(id);
    return doomed.size();
}

void
FluidFlowModel::linkHealthChanged(LinkId l, bool healthy)
{
    (void)healthy;
    // A capacity boundary moved (fault injected or repaired):
    // invalidate the component touching the link. After a failure
    // the flows crossing it were already aborted, so this usually
    // resolves a small or empty set -- but it keeps the fluid
    // state honest if a future capacity model makes health affect
    // surviving flows.
    seedLink(2 * l);
    seedLink(2 * l + 1);
    resolveDirty();
}

void
FluidFlowModel::setAbortCallback(FlowId flow, FlowDoneFn on_abort)
{
    auto it = _flows.find(flow);
    if (it == _flows.end())
        HOLDCSIM_PANIC("abort callback for unknown flow ", flow);
    it->second.onAbort = std::move(on_abort);
}

BitsPerSec
FluidFlowModel::flowRate(FlowId flow) const
{
    auto it = _flows.find(flow);
    if (it == _flows.end() || !it->second.active)
        return 0.0;
    return it->second.rate;
}

double
FluidFlowModel::linkUtilization(LinkId l) const
{
    double fwd = 0.0, rev = 0.0;
    for (const Flow *f : _linkFlows[2 * l + 1])
        fwd += f->rate;
    for (const Flow *f : _linkFlows[2 * l])
        rev += f->rate;
    return std::max(fwd, rev) / _topo.link(l).rate;
}

} // namespace holdcsim
