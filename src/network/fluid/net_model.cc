#include "net_model.hh"

#include <algorithm>
#include <limits>

#include "fluid_flow_model.hh"
#include "network/flow_manager.hh"
#include "sim/logging.hh"

namespace holdcsim {

const char *
toString(NetModelKind kind)
{
    switch (kind) {
      case NetModelKind::exact:
        return "exact";
      case NetModelKind::fluid:
        return "fluid";
      case NetModelKind::hybrid:
        return "hybrid";
    }
    return "?";
}

NetModelKind
parseNetModelKind(const std::string &s)
{
    if (s == "exact")
        return NetModelKind::exact;
    if (s == "fluid")
        return NetModelKind::fluid;
    if (s == "hybrid")
        return NetModelKind::hybrid;
    fatal("unknown network model '", s,
          "' (expected exact, fluid or hybrid)");
}

Tick
fastPathDuration(const Topology &topo, const Route &route, Bytes bytes)
{
    Tick latency = 0;
    BitsPerSec bottleneck = std::numeric_limits<BitsPerSec>::infinity();
    for (LinkId l : route.links) {
        const LinkInfo &li = topo.link(l);
        latency += li.latency;
        bottleneck = std::min(bottleneck, li.rate);
    }
    if (route.links.empty() || bytes == 0)
        return latency;
    return latency + serializationDelay(bytes, bottleneck);
}

std::unique_ptr<NetModel>
makeNetModel(Simulator &sim, const Topology &topo,
             const NetModelConfig &cfg)
{
    switch (cfg.kind) {
      case NetModelKind::exact:
        // The exact tier never takes the analytic shortcut: with
        // the threshold forced to 0, "exact" means exact even when
        // a config sets fast_path_bytes for the other tiers.
        return std::make_unique<FlowManager>(sim, topo, 0);
      case NetModelKind::hybrid:
        return std::make_unique<FlowManager>(sim, topo,
                                             cfg.fastPathBytes);
      case NetModelKind::fluid:
        return std::make_unique<FluidFlowModel>(sim, topo,
                                                cfg.fastPathBytes);
    }
    HOLDCSIM_PANIC("unhandled network model kind");
}

} // namespace holdcsim
