/**
 * @file
 * The fluid network-model tier: max-min fair bandwidth sharing with
 * lazy partial invalidation, after SimGrid's surf layer.
 *
 * The exact model (FlowManager) re-solves the *global* fair-share
 * problem on every flow arrival/departure, which caps concurrent
 * flow counts: one update costs O(total active flows). The fluid
 * model exploits the structure of the max-min solution instead --
 * the allocation decomposes over connected components of the
 * "shares a link" relation, so a change to one flow can only move
 * the rates of flows reachable from it through shared links.
 *
 * On every add/remove the model therefore:
 *
 *  1. seeds a dirty set with the changed flow's directed links,
 *  2. expands it to a fixed point over per-link membership lists
 *     (dirty link -> its flows are dirty; dirty flow -> its links
 *     are dirty), using epoch marks so nothing is ever cleared,
 *  3. settles transferred bits for the dirty flows only (clean
 *     flows keep progressing linearly at their unchanged rates),
 *  4. runs progressive filling restricted to the dirty component,
 *  5. reschedules completion events for the dirty flows only.
 *
 * Rates outside the component are untouched and remain exact: the
 * restricted solve computes the same allocation as a global one.
 * The cost of an update is O(component size), not O(population), so
 * a million concurrent flows with localized traffic (rack-local
 * transfers, per-pod services) cost roughly what one rack's worth
 * of flows costs under the exact model.
 *
 * Short transfers below the fast-path threshold never enter the
 * solver at all: they complete after path latency + serialization
 * at the bottleneck rate (constant-latency model, SimGrid's
 * network_constant).
 */

#ifndef HOLDCSIM_NETWORK_FLUID_FLUID_FLOW_MODEL_HH
#define HOLDCSIM_NETWORK_FLUID_FLUID_FLOW_MODEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net_model.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

/** Partially-invalidated max-min fair flow model. */
class FluidFlowModel : public NetModel
{
  public:
    FluidFlowModel(Simulator &sim, const Topology &topo,
                   Bytes fast_path_bytes = 0);
    ~FluidFlowModel() override;
    FluidFlowModel(const FluidFlowModel &) = delete;
    FluidFlowModel &operator=(const FluidFlowModel &) = delete;

    FlowId startFlow(Route route, Bytes bytes, FlowDoneFn on_done,
                     Tick start_delay = 0) override;
    bool abortFlow(FlowId flow) override;
    std::size_t abortFlowsOn(LinkId l) override;
    void setAbortCallback(FlowId flow, FlowDoneFn on_abort) override;
    void linkHealthChanged(LinkId l, bool healthy) override;

    std::size_t activeFlows() const override { return _flows.size(); }
    BitsPerSec flowRate(FlowId flow) const override;
    double linkUtilization(LinkId l) const override;

    void beginBulkLoad() override { _bulk = true; }
    void endBulkLoad() override;

    std::uint64_t flowsCompleted() const override
    {
        return _flowsCompleted;
    }
    std::uint64_t flowsAborted() const override
    {
        return _flowsAborted;
    }
    const Percentile &flowLatency() const override
    {
        return _flowLatency;
    }
    const NetSolverStats &solverStats() const override
    {
        return _solverStats;
    }
    const char *modelName() const override { return "fluid"; }

  private:
    struct Flow {
        FlowId id;
        /** Dense directed-link indices (link * 2 + forward). */
        std::vector<std::uint32_t> pathIdx;
        /** This flow's slot in _linkFlows[pathIdx[i]] while active. */
        std::vector<std::uint32_t> linkPos;
        double remainingBits = 0.0;
        BitsPerSec rate = 0.0;
        Tick lastUpdate = 0;
        Tick startedAt = 0;
        bool active = false;
        bool fastPath = false;
        /** Dirty-set BFS visit mark (epoch counter, never cleared). */
        std::uint64_t visitEpoch = 0;
        FlowDoneFn onDone;
        FlowDoneFn onAbort;
        std::unique_ptr<EventFunctionWrapper> completion;
        std::unique_ptr<EventFunctionWrapper> activation;
    };

    void activate(FlowId id);
    void finish(FlowId id);
    TraceManager *flowTracer();

    /** Insert @p flow into the membership list of every path link. */
    void enroll(Flow &flow);
    /** Swap-remove @p flow from its membership lists. */
    void unenroll(Flow &flow);

    /**
     * Re-solve the connected component(s) reachable from the seeds
     * in _seedLinks: expand to a fixed point, settle, water-fill,
     * reschedule. Clears _seedLinks.
     */
    void resolveDirty();
    /** Mark @p dl dirty for the next resolveDirty() (idempotent). */
    void seedLink(std::uint32_t dl);
    [[noreturn]] void abortSolve(const std::string &what);

    Simulator &_sim;
    const Topology &_topo;
    std::unordered_map<FlowId, Flow> _flows;
    FlowId _nextId = 0;
    Bytes _fastPathBytes = 0;
    bool _bulk = false;

    /** Active flows crossing each directed link (swap-removal). */
    std::vector<std::vector<Flow *>> _linkFlows;

    /** @name resolveDirty() scratch (epoch-marked, never cleared) */
    ///@{
    std::uint64_t _epoch = 0;
    std::vector<std::uint64_t> _linkEpoch; // per directed link
    std::vector<std::uint32_t> _seedLinks; // BFS seeds, deduped
    std::vector<std::uint32_t> _dirtyLinks;
    std::vector<Flow *> _dirtyFlows;
    std::vector<double> _capLeft;
    std::vector<unsigned> _usersLeft;
    std::vector<std::uint8_t> _isBottleneck;
    std::vector<Flow *> _unfrozen;
    ///@}

    std::uint64_t _flowsCompleted = 0;
    std::uint64_t _flowsAborted = 0;
    Percentile _flowLatency;
    NetSolverStats _solverStats;

    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_FLUID_FLUID_FLOW_MODEL_HH
