/**
 * @file
 * The network-model tier interface.
 *
 * HolDCSim offers three selectable flow-level network models that
 * trade accuracy for cost (`[network] model = exact|fluid|hybrid`):
 *
 *  - exact:  the original global max-min water-filling solver -- on
 *            every flow arrival/departure the whole fabric is
 *            re-solved (FlowManager).
 *  - fluid:  SimGrid-surf-style analytic fluid model with lazy
 *            partial invalidation -- a change re-solves only the
 *            connected component of links the changed flow touches
 *            (FluidFlowModel), so cost scales with traffic locality
 *            instead of total flow population.
 *  - hybrid: the exact solver plus the constant-latency fast path
 *            for short transfers. With the fast-path threshold at 0
 *            it is byte-identical to `exact`.
 *
 * Both fluid and hybrid support the fast path: transfers of at most
 * `fast_path_bytes` complete analytically (path latency plus
 * serialization at the bottleneck link rate) without ever entering
 * the bandwidth-sharing solver.
 *
 * NetModel is the interface the rest of the simulator (scheduler
 * transfers, fault injection, telemetry, policies) programs against;
 * the backends are interchangeable per config.
 */

#ifndef HOLDCSIM_NETWORK_FLUID_NET_MODEL_HH
#define HOLDCSIM_NETWORK_FLUID_NET_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace holdcsim {

class Simulator;

/** Identifier of an in-flight flow. */
using FlowId = std::uint64_t;

/** Selectable flow-level network model (accuracy/cost tiers). */
enum class NetModelKind { exact, fluid, hybrid };

/** Canonical config-file spelling of @p kind. */
const char *toString(NetModelKind kind);

/** Parse "exact" | "fluid" | "hybrid"; throws FatalError otherwise. */
NetModelKind parseNetModelKind(const std::string &s);

/** Flow-model selection and tuning. */
struct NetModelConfig {
    NetModelKind kind = NetModelKind::exact;
    /**
     * Transfers of at most this many bytes bypass the solver and
     * complete analytically (fluid/hybrid models only; the exact
     * model ignores it). 0 disables the fast path.
     */
    Bytes fastPathBytes = 0;
};

/**
 * Solver cost counters, kept by every backend and surfaced as
 * `network.solver_*` stats so model tiers can be compared on the
 * same run.
 */
struct NetSolverStats {
    /** Bandwidth-share solver invocations. */
    std::uint64_t resolves = 0;
    /** Flows whose rate was recomputed, summed over all resolves. */
    std::uint64_t resolvedFlows = 0;
    /** Directed links visited by the solver, summed. */
    std::uint64_t dirtyLinks = 0;
    /** Largest single resolve, in flows (dirty-set high-water). */
    std::uint64_t maxDirtyFlows = 0;
    /** Transfers completed analytically, never entering the solver. */
    std::uint64_t fastPathHits = 0;

    /** Mean dirty-set size per resolve (the invalidation win). */
    double
    meanDirtyFlows() const
    {
        return resolves == 0
                   ? 0.0
                   : static_cast<double>(resolvedFlows) /
                         static_cast<double>(resolves);
    }
};

/**
 * A flow-level network model: flows join, share bandwidth according
 * to the backend's solver, and complete (or abort on faults).
 */
class NetModel
{
  public:
    using FlowDoneFn = std::function<void()>;

    virtual ~NetModel() = default;

    /**
     * Start a flow of @p bytes along @p route. The flow joins the
     * bandwidth competition after @p start_delay (switch wake time)
     * and @p on_done fires when the last byte is delivered.
     * A zero-hop route (local communication) completes after
     * start_delay alone.
     */
    virtual FlowId startFlow(Route route, Bytes bytes,
                             FlowDoneFn on_done,
                             Tick start_delay = 0) = 0;

    /**
     * Abort flow @p flow: its completion never fires and @p on_abort
     * (if set at start) is invoked. Returns whether the flow existed.
     */
    virtual bool abortFlow(FlowId flow) = 0;

    /**
     * Abort every flow (active or pending) whose route traverses
     * link @p l -- the link just failed. Returns how many died.
     */
    virtual std::size_t abortFlowsOn(LinkId l) = 0;

    /** Register the abort callback for flow @p flow. */
    virtual void setAbortCallback(FlowId flow, FlowDoneFn on_abort) = 0;

    /**
     * Link @p l just changed health (fault injected or repaired).
     * Backends with incremental state re-solve the component of
     * flows touching the link; the exact model, which re-solves
     * globally on every change anyway, treats this as a no-op.
     * Flows crossing a failed link must be aborted separately (and
     * first) via abortFlowsOn().
     */
    virtual void linkHealthChanged(LinkId l, bool healthy) = 0;

    /** Number of flows currently transferring or pending start. */
    virtual std::size_t activeFlows() const = 0;

    /** Current fair-share rate of @p flow (0 if pending/unknown). */
    virtual BitsPerSec flowRate(FlowId flow) const = 0;

    /**
     * Current utilization of link @p l in [0, 1]: the busier
     * direction's allocated share over capacity.
     */
    virtual double linkUtilization(LinkId l) const = 0;

    /**
     * @name Bulk load (warm-start)
     * Between beginBulkLoad() and endBulkLoad(), flow activations
     * skip the per-change re-solve; endBulkLoad() settles and
     * re-solves once. Intended for installing a large standing flow
     * population at a single simulated instant (benchmarks, campaign
     * warm starts): when no simulated time elapses inside the bulk
     * window the resulting rates are identical to per-flow
     * activation, at O(population) instead of O(population^2) cost.
     */
    ///@{
    virtual void beginBulkLoad() = 0;
    virtual void endBulkLoad() = 0;
    ///@}

    /** Completed-flow count and transfer-latency statistics. */
    virtual std::uint64_t flowsCompleted() const = 0;
    /** Flows killed by faults/cancellation. */
    virtual std::uint64_t flowsAborted() const = 0;
    virtual const Percentile &flowLatency() const = 0;

    /** Solver cost counters (resolves, dirty sets, fast-path hits). */
    virtual const NetSolverStats &solverStats() const = 0;

    /** The model tier this backend implements ("exact"/"fluid"/...). */
    virtual const char *modelName() const = 0;
};

/** Instantiate the backend selected by @p cfg. */
std::unique_ptr<NetModel> makeNetModel(Simulator &sim,
                                       const Topology &topo,
                                       const NetModelConfig &cfg);

/**
 * Analytic completion time of a fast-path transfer along @p route:
 * the sum of per-hop propagation latencies plus serialization of
 * @p bytes at the slowest link on the path. Shared by every backend
 * so the tiers agree on fast-path semantics.
 */
Tick fastPathDuration(const Topology &topo, const Route &route,
                      Bytes bytes);

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_FLUID_NET_MODEL_HH
