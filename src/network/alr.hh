/**
 * @file
 * Adaptive Link Rate controller (paper Table I lists "switch link
 * rate adaption" among HolDCSim's power features, after Gunaratne et
 * al. [25]).
 *
 * The controller periodically measures each switch port's
 * utilization (bytes serialized over the window against the port's
 * line rate) and retunes the operating rate: quiet ports drop to a
 * fraction of line rate (lower active power per the ALR model in
 * SwitchPowerProfile), and ports nearing saturation of their reduced
 * rate snap back to full speed.
 */

#ifndef HOLDCSIM_NETWORK_ALR_HH
#define HOLDCSIM_NETWORK_ALR_HH

#include <cstdint>
#include <vector>

#include "network.hh"
#include "sim/event.hh"

namespace holdcsim {

/** ALR thresholds and cadence. */
struct AlrConfig {
    /** Reduced operating rate as a fraction of line rate. */
    double reducedFraction = 0.1;
    /**
     * Drop to the reduced rate when utilization (relative to full
     * line rate) stays below this over a window.
     */
    double downWatermark = 0.05;
    /**
     * Return to full rate when utilization of the *current* rate
     * exceeds this (queueing imminent).
     */
    double upWatermark = 0.7;
    /** Measurement window. */
    Tick interval = 50 * msec;
};

/** Fabric-wide adaptive link rate controller. */
class AlrController
{
  public:
    AlrController(Simulator &sim, Network &net,
                  const AlrConfig &config);
    ~AlrController();
    AlrController(const AlrController &) = delete;
    AlrController &operator=(const AlrController &) = delete;

    void start();
    void stop();

    /** Ports currently operating at the reduced rate. */
    std::size_t reducedPorts() const;

    /** Number of rate changes applied. */
    std::uint64_t transitions() const { return _transitions; }

  private:
    void tick();

    Simulator &_sim;
    Network &_net;
    AlrConfig _config;
    bool _running = false;
    EventFunctionWrapper _tickEvent;
    /** bytesSent snapshot per (switch, port) from last window. */
    std::vector<std::vector<Bytes>> _lastBytes;
    std::uint64_t _transitions = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_ALR_HH
