/**
 * @file
 * Line card model (paper section III-B): a group of ports with
 * shared packet-processing hardware that supports active, sleep and
 * off power states.
 */

#ifndef HOLDCSIM_NETWORK_LINECARD_HH
#define HOLDCSIM_NETWORK_LINECARD_HH

#include <functional>
#include <vector>

#include "port.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/timer_wheel.hh"
#include "switch_power.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

/** Line card power states. */
enum class LineCardState { active, sleep, off };

/**
 * A line card hosting a contiguous group of ports. The card sleeps
 * when all of its ports have been quiescent (LPI or off) for the
 * profile's threshold and wakes -- paying the wake latency -- when
 * traffic returns. The sleep countdown rides the shared TimerWheel
 * when one is installed, a private event otherwise.
 */
class LineCard : private TimerClient
{
  public:
    using AccrueFn = std::function<void()>;
    /** Invoked after this card changes state (switch-level checks). */
    using StateChangedFn = std::function<void()>;

    LineCard(Simulator &sim, unsigned id,
             const SwitchPowerProfile &profile, AccrueFn accrue,
             StateChangedFn state_changed);
    ~LineCard();
    LineCard(const LineCard &) = delete;
    LineCard &operator=(const LineCard &) = delete;

    unsigned id() const { return _id; }
    LineCardState state() const { return _state; }

    /** Register a member port (wired once by the switch). */
    void addPort(Port *port) { _ports.push_back(port); }
    std::size_t numPorts() const { return _ports.size(); }

    /** Whether any member port is active-state or busy. */
    bool anyPortActive() const;

    /**
     * React to member-port activity edges: wake-relevant changes
     * cancel the sleep countdown; quiescence arms it.
     */
    void portActivityChanged();

    /**
     * Wake a sleeping card; returns the wake latency the caller
     * must account for (0 if already active).
     */
    Tick wake();

    /** Power the card off. @pre no member port is busy. */
    void powerOff();

    /** Card electronics power (member ports accounted separately). */
    Watts power() const;

    const StateResidency &residency() const { return _residency; }
    void finishStats(Tick now) { _residency.finish(now); }
    /** Zero residency (end of warmup). */
    void
    resetStats(Tick now)
    {
        _residency.reset();
        _residency.enter(static_cast<int>(_state), now);
    }

    /**
     * Name this card on the timeline ("sw2.lc0"); assigned by the
     * owning switch (a card does not know its switch). Until set, the
     * card emits no trace records.
     */
    void setTraceLabel(std::string label);

  private:
    void setState(LineCardState next);
    /** Emit the current state to the timeline tracer. */
    void traceState();
    /** TimerClient: the sleep countdown expired. */
    void timerFired(std::uint64_t token, Tick deadline) override;
    /** Body shared by the sleep event and the wheel callback. */
    void sleepDeadline();
    void armSleep(Tick delay);
    void cancelSleep();

    Simulator &_sim;
    unsigned _id;
    const SwitchPowerProfile &_profile;
    AccrueFn _accrue;
    StateChangedFn _stateChanged;
    /** Wheel latched at construction; nullptr = private event. */
    TimerWheel *_wheel;
    TimerWheel::Handle _sleepHandle;

    LineCardState _state = LineCardState::active;
    std::vector<Port *> _ports;
    EventFunctionWrapper _sleepEvent;
    StateResidency _residency;

    std::string _traceLabel;
    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_LINECARD_HH
