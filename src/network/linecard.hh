/**
 * @file
 * Line card model (paper section III-B): a group of ports with
 * shared packet-processing hardware that supports active, sleep and
 * off power states.
 */

#ifndef HOLDCSIM_NETWORK_LINECARD_HH
#define HOLDCSIM_NETWORK_LINECARD_HH

#include <functional>
#include <vector>

#include "port.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "switch_power.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

/** Line card power states. */
enum class LineCardState { active, sleep, off };

/**
 * A line card hosting a contiguous group of ports. The card sleeps
 * when all of its ports have been quiescent (LPI or off) for the
 * profile's threshold and wakes -- paying the wake latency -- when
 * traffic returns.
 */
class LineCard
{
  public:
    using AccrueFn = std::function<void()>;
    /** Invoked after this card changes state (switch-level checks). */
    using StateChangedFn = std::function<void()>;

    LineCard(Simulator &sim, unsigned id,
             const SwitchPowerProfile &profile, AccrueFn accrue,
             StateChangedFn state_changed);
    ~LineCard();
    LineCard(const LineCard &) = delete;
    LineCard &operator=(const LineCard &) = delete;

    unsigned id() const { return _id; }
    LineCardState state() const { return _state; }

    /** Register a member port (wired once by the switch). */
    void addPort(Port *port) { _ports.push_back(port); }
    std::size_t numPorts() const { return _ports.size(); }

    /** Whether any member port is active-state or busy. */
    bool anyPortActive() const;

    /**
     * React to member-port activity edges: wake-relevant changes
     * cancel the sleep countdown; quiescence arms it.
     */
    void portActivityChanged();

    /**
     * Wake a sleeping card; returns the wake latency the caller
     * must account for (0 if already active).
     */
    Tick wake();

    /** Power the card off. @pre no member port is busy. */
    void powerOff();

    /** Card electronics power (member ports accounted separately). */
    Watts power() const;

    const StateResidency &residency() const { return _residency; }
    void finishStats(Tick now) { _residency.finish(now); }

    /**
     * Name this card on the timeline ("sw2.lc0"); assigned by the
     * owning switch (a card does not know its switch). Until set, the
     * card emits no trace records.
     */
    void setTraceLabel(std::string label);

  private:
    void setState(LineCardState next);
    /** Emit the current state to the timeline tracer. */
    void traceState();

    Simulator &_sim;
    unsigned _id;
    const SwitchPowerProfile &_profile;
    AccrueFn _accrue;
    StateChangedFn _stateChanged;

    LineCardState _state = LineCardState::active;
    std::vector<Port *> _ports;
    EventFunctionWrapper _sleepEvent;
    StateResidency _residency;

    std::string _traceLabel;
    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_LINECARD_HH
