#include "network.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace holdcsim {

Network::Network(Simulator &sim, Topology topo,
                 const SwitchPowerProfile &profile,
                 const NetworkConfig &config)
    : _sim(sim), _topo(std::move(topo)), _config(config),
      _routing(_topo),
      _flowMgr(makeNetModel(sim, _topo, config.netModel)),
      _oneShots(sim, "net.oneShot")
{
    _topo.validateConnected();
    _portMap.resize(_topo.numNodes());
    _nicFreeAt.assign(_topo.numServers(), 0);

    // One Switch per switch node; port i of the switch drives the
    // i-th incident link of that node.
    for (std::size_t si = 0; si < _topo.numSwitches(); ++si) {
        NodeId node = _topo.switchNode(si);
        SwitchConfig sc;
        sc.id = static_cast<unsigned>(si);
        sc.portsPerLinecard = config.portsPerLinecard;
        sc.portBufferCapacity = config.portBufferCapacity;
        sc.switchSleepDelay = config.switchSleepDelay;
        const auto &links = _topo.linksAt(node);
        for (LinkId l : links)
            sc.portRates.push_back(_topo.link(l).rate);
        auto sw = std::make_unique<Switch>(sim, sc, profile);
        sw->setForwardingDelay(config.switchForwardDelay);
        for (unsigned p = 0; p < links.size(); ++p) {
            _portMap[node][links[p]] = p;
            LinkId l = links[p];
            NodeId far = _topo.otherEnd(l, node);
            Tick lat = _topo.link(l).latency;
            sw->port(p).setDeliver(
                [this, far, lat](const PacketPtr &pkt) {
                    scheduleAfterDelay(lat, [this, pkt, far] {
                        packetArrived(pkt, far);
                    });
                });
        }
        _switches.push_back(std::move(sw));
    }
}

Network::~Network() = default;

void
Network::scheduleAfterDelay(Tick delay, std::function<void()> fn)
{
    _oneShots.schedule(delay, std::move(fn));
}

unsigned
Network::portOf(NodeId n, LinkId l) const
{
    const auto &map = _portMap.at(n);
    auto it = map.find(l);
    if (it == map.end())
        HOLDCSIM_PANIC("link ", l, " not attached to node ", n);
    return it->second;
}

// --------------------------------------------------------------- flow model

FlowId
Network::startFlow(std::size_t src_server, std::size_t dst_server,
                   Bytes bytes, std::function<void()> on_done,
                   std::function<void()> on_abort)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    if (!_routing.reachable(src, dst)) {
        // Partitioned fabric: report the failure asynchronously so
        // the caller never re-enters itself from startFlow().
        scheduleAfterDelay(0, [cb = std::move(on_abort)] {
            if (cb)
                cb();
        });
        return invalidFlow;
    }
    std::uint64_t key = (_nextPacketId++ << 1) | 1;
    Route route = _routing.route(src, dst, key);

    // Wake everything on the path and register the flow on every
    // traversed switch port pair.
    Tick wake_delay = 0;
    struct PortUse {
        Switch *sw;
        unsigned in, out;
    };
    std::vector<PortUse> uses;
    for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i) {
        NodeId n = route.nodes[i];
        if (!_topo.isSwitch(n)) {
            wake_delay += _config.serverRelayDelay;
            continue;
        }
        Switch *sw = _switches[_topo.switchIndex(n)].get();
        unsigned in = portOf(n, route.links[i - 1]);
        unsigned out = portOf(n, route.links[i]);
        wake_delay += sw->flowStarted(in, out);
        uses.push_back(PortUse{sw, in, out});
    }

    // Port bookkeeping must be released whether the flow completes
    // or dies with a failed link, so both paths share the cleanup.
    auto uses_p =
        std::make_shared<std::vector<PortUse>>(std::move(uses));
    auto release = [uses_p] {
        for (const auto &u : *uses_p)
            u.sw->flowEnded(u.in, u.out);
        uses_p->clear();
    };
    auto done = [release, cb = std::move(on_done)]() {
        release();
        if (cb)
            cb();
    };
    FlowId id = _flowMgr->startFlow(std::move(route), bytes,
                                    std::move(done), wake_delay);
    _flowMgr->setAbortCallback(
        id, [release, cb = std::move(on_abort)]() {
            release();
            if (cb)
                cb();
        });
    return id;
}

// ------------------------------------------------------------ fault support

std::size_t
Network::failLink(LinkId l)
{
    if (!_routing.linkHealthy(l))
        return 0;
    _routing.setLinkHealth(l, false);
    std::size_t killed = _flowMgr->abortFlowsOn(l);
    // Fault-driven capacity changes invalidate the surrounding
    // component in incremental backends (no-op for the exact tier).
    _flowMgr->linkHealthChanged(l, false);
    return killed;
}

void
Network::repairLink(LinkId l)
{
    _routing.setLinkHealth(l, true);
    _flowMgr->linkHealthChanged(l, true);
}

std::size_t
Network::failSwitch(std::size_t sw_idx)
{
    NodeId node = _topo.switchNode(sw_idx);
    if (!_routing.nodeHealthy(node))
        return 0;
    _routing.setNodeHealth(node, false);
    _switches.at(sw_idx)->setFailed(true);
    std::size_t killed = 0;
    for (LinkId l : _topo.linksAt(node)) {
        killed += _flowMgr->abortFlowsOn(l);
        _flowMgr->linkHealthChanged(l, false);
    }
    return killed;
}

void
Network::repairSwitch(std::size_t sw_idx)
{
    _routing.setNodeHealth(_topo.switchNode(sw_idx), true);
    _switches.at(sw_idx)->setFailed(false);
    for (LinkId l : _topo.linksAt(_topo.switchNode(sw_idx)))
        _flowMgr->linkHealthChanged(l, true);
}

std::vector<LinkId>
Network::linecardLinks(std::size_t sw_idx, unsigned lc_idx) const
{
    NodeId node = _topo.switchNode(sw_idx);
    const auto &links = _topo.linksAt(node);
    std::vector<LinkId> out;
    unsigned first = lc_idx * _config.portsPerLinecard;
    for (unsigned p = first;
         p < first + _config.portsPerLinecard && p < links.size(); ++p) {
        out.push_back(links[p]);
    }
    return out;
}

std::size_t
Network::failLinecard(std::size_t sw_idx, unsigned lc_idx)
{
    std::size_t killed = 0;
    for (LinkId l : linecardLinks(sw_idx, lc_idx))
        killed += failLink(l);
    return killed;
}

void
Network::repairLinecard(std::size_t sw_idx, unsigned lc_idx)
{
    for (LinkId l : linecardLinks(sw_idx, lc_idx))
        repairLink(l);
}

bool
Network::serversReachable(std::size_t src_server, std::size_t dst_server)
{
    return _routing.reachable(_topo.serverNode(src_server),
                              _topo.serverNode(dst_server));
}

// ------------------------------------------------------------- packet model

void
Network::sendPacket(std::size_t src_server, std::size_t dst_server,
                    Bytes bytes,
                    std::function<void(const Packet &)> on_delivered,
                    std::function<void(const Packet &)> on_dropped)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    auto pkt = std::make_shared<Packet>();
    pkt->id = _nextPacketId++;
    pkt->src = src;
    pkt->dst = dst;
    pkt->bytes = bytes;
    pkt->sentAt = _sim.curTick();
    pkt->onDelivered = std::move(on_delivered);
    pkt->onDropped = std::move(on_dropped);

    if (src != dst && !_routing.reachable(src, dst)) {
        // No healthy path: the packet is lost (asynchronously, so
        // the caller sees uniform callback timing).
        scheduleAfterDelay(0, [this, pkt] { dropPacket(pkt); });
        return;
    }
    pkt->route = _routing.route(src, dst, pkt->id);

    if (src == dst) {
        // Local delivery.
        scheduleAfterDelay(0, [this, pkt] { packetArrived(pkt, pkt->dst); });
        return;
    }
    // Source server NIC: packets serialize one after another onto
    // the first link (FIFO NIC queue), then cross it.
    const LinkInfo &l0 = _topo.link(pkt->route.links[0]);
    Tick ser = serializationDelay(bytes, l0.rate);
    Tick &nic_free = _nicFreeAt[src_server];
    Tick start = std::max(nic_free, _sim.curTick());
    nic_free = start + ser;
    NodeId next = pkt->route.nodes[1];
    pkt->hop = 1;
    scheduleAfterDelay(nic_free - _sim.curTick() + l0.latency,
                       [this, pkt, next] { packetArrived(pkt, next); });
}

void
Network::packetArrived(const PacketPtr &pkt, NodeId at)
{
    if (at == pkt->dst) {
        ++_packetsDelivered;
        _packetLatency.sample(toSeconds(_sim.curTick() - pkt->sentAt));
        if (pkt->onDelivered)
            pkt->onDelivered(*pkt);
        return;
    }
    // Relay: a switch queues on the egress port; a relay server
    // store-and-forwards with its own fixed delay.
    if (_topo.isSwitch(at)) {
        forwardFrom(pkt, at, 0);
    } else {
        forwardFrom(pkt, at, _config.serverRelayDelay);
    }
}

void
Network::forwardFrom(const PacketPtr &pkt, NodeId at, Tick extra)
{
    if (pkt->hop >= pkt->route.links.size())
        HOLDCSIM_PANIC("packet ", pkt->id, " ran past its route");
    LinkId next_link = pkt->route.links[pkt->hop];
    ++pkt->hop;
    if (!_routing.linkHealthy(next_link)) {
        // The link died while the packet was in flight.
        dropPacket(pkt);
        return;
    }
    if (_topo.isSwitch(at)) {
        Switch *sw = _switches[_topo.switchIndex(at)].get();
        unsigned out = portOf(at, next_link);
        if (!sw->forwardPacket(pkt, out))
            dropPacket(pkt);
        return;
    }
    // Relay server: serialize onto the next link after the relay
    // delay (no queuing model at relay servers).
    const LinkInfo &li = _topo.link(next_link);
    NodeId next = _topo.otherEnd(next_link, at);
    Tick ser = serializationDelay(pkt->bytes, li.rate);
    scheduleAfterDelay(extra + ser + li.latency, [this, pkt, next] {
        packetArrived(pkt, next);
    });
}

void
Network::dropPacket(const PacketPtr &pkt)
{
    ++_packetsDropped;
    if (pkt->onDropped)
        pkt->onDropped(*pkt);
}

void
Network::sendBulk(std::size_t src_server, std::size_t dst_server,
                  Bytes bytes,
                  std::function<void(std::uint64_t)> on_done)
{
    Bytes mtu = _config.mtuBytes;
    std::uint64_t n_packets = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
    auto state = std::make_shared<std::pair<std::uint64_t,
                                            std::uint64_t>>(0, 0);
    auto step = [state, n_packets, cb = std::move(on_done)](
                    bool dropped) {
        state->first += 1;
        state->second += dropped ? 1 : 0;
        if (state->first == n_packets && cb)
            cb(state->second);
    };
    for (std::uint64_t i = 0; i < n_packets; ++i) {
        Bytes chunk = std::min<Bytes>(mtu, bytes - i * mtu);
        if (bytes == 0)
            chunk = 0;
        sendPacket(src_server, dst_server, chunk,
                   [step](const Packet &) { step(false); },
                   [step](const Packet &) { step(true); });
    }
}

// ---------------------------------------------------------- policy support

unsigned
Network::sleepingSwitchesOnPath(std::size_t src_server,
                                std::size_t dst_server)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    if (!_routing.reachable(src, dst)) {
        // Prohibitive cost: policies weighing wake cost must never
        // pick a destination they cannot reach.
        return std::numeric_limits<unsigned>::max();
    }
    Route route = _routing.route(src, dst, 0);
    unsigned count = 0;
    for (NodeId n : route.nodes) {
        if (_topo.isSwitch(n) &&
            _switches[_topo.switchIndex(n)]->asleep()) {
            ++count;
        }
    }
    return count;
}

unsigned
Network::sleepingSwitches() const
{
    unsigned count = 0;
    for (const auto &sw : _switches)
        count += sw->asleep();
    return count;
}

// ------------------------------------------------------------ power & stats

Watts
Network::switchPower() const
{
    Watts total = 0.0;
    for (const auto &sw : _switches)
        total += sw->power();
    return total;
}

Joules
Network::switchEnergy() const
{
    Joules total = 0.0;
    for (const auto &sw : _switches)
        total += sw->energy();
    return total;
}

void
Network::accrue()
{
    for (auto &sw : _switches)
        sw->accrue();
}

void
Network::finishStats()
{
    for (auto &sw : _switches)
        sw->finishStats();
}

} // namespace holdcsim
