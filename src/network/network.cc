#include "network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace holdcsim {

namespace {

/**
 * A self-deleting one-shot event. Safe because the engine does not
 * touch the event object after process() returns.
 */
class OneShot : public Event
{
  public:
    OneShot(std::function<void()> fn, std::size_t &pending)
        : Event("net.oneShot"), _fn(std::move(fn)), _pending(pending)
    {
        ++_pending;
    }

    void
    process() override
    {
        auto fn = std::move(_fn);
        --_pending;
        delete this;
        fn();
    }

  private:
    std::function<void()> _fn;
    std::size_t &_pending;
};

} // namespace

Network::Network(Simulator &sim, Topology topo,
                 const SwitchPowerProfile &profile,
                 const NetworkConfig &config)
    : _sim(sim), _topo(std::move(topo)), _config(config),
      _routing(_topo), _flowMgr(sim, _topo)
{
    _topo.validateConnected();
    _portMap.resize(_topo.numNodes());
    _nicFreeAt.assign(_topo.numServers(), 0);

    // One Switch per switch node; port i of the switch drives the
    // i-th incident link of that node.
    for (std::size_t si = 0; si < _topo.numSwitches(); ++si) {
        NodeId node = _topo.switchNode(si);
        SwitchConfig sc;
        sc.id = static_cast<unsigned>(si);
        sc.portsPerLinecard = config.portsPerLinecard;
        sc.portBufferCapacity = config.portBufferCapacity;
        sc.switchSleepDelay = config.switchSleepDelay;
        const auto &links = _topo.linksAt(node);
        for (LinkId l : links)
            sc.portRates.push_back(_topo.link(l).rate);
        auto sw = std::make_unique<Switch>(sim, sc, profile);
        sw->setForwardingDelay(config.switchForwardDelay);
        for (unsigned p = 0; p < links.size(); ++p) {
            _portMap[node][links[p]] = p;
            LinkId l = links[p];
            NodeId far = _topo.otherEnd(l, node);
            Tick lat = _topo.link(l).latency;
            sw->port(p).setDeliver(
                [this, far, lat](const PacketPtr &pkt) {
                    scheduleAfterDelay(lat, [this, pkt, far] {
                        packetArrived(pkt, far);
                    });
                });
        }
        _switches.push_back(std::move(sw));
    }
}

Network::~Network() = default;

void
Network::scheduleAfterDelay(Tick delay, std::function<void()> fn)
{
    auto *ev = new OneShot(std::move(fn), _oneShotsPending);
    _sim.scheduleAfter(*ev, delay);
}

unsigned
Network::portOf(NodeId n, LinkId l) const
{
    const auto &map = _portMap.at(n);
    auto it = map.find(l);
    if (it == map.end())
        HOLDCSIM_PANIC("link ", l, " not attached to node ", n);
    return it->second;
}

// --------------------------------------------------------------- flow model

FlowId
Network::startFlow(std::size_t src_server, std::size_t dst_server,
                   Bytes bytes, std::function<void()> on_done)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    std::uint64_t key = (_nextPacketId++ << 1) | 1;
    Route route = _routing.route(src, dst, key);

    // Wake everything on the path and register the flow on every
    // traversed switch port pair.
    Tick wake_delay = 0;
    struct PortUse {
        Switch *sw;
        unsigned in, out;
    };
    std::vector<PortUse> uses;
    for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i) {
        NodeId n = route.nodes[i];
        if (!_topo.isSwitch(n)) {
            wake_delay += _config.serverRelayDelay;
            continue;
        }
        Switch *sw = _switches[_topo.switchIndex(n)].get();
        unsigned in = portOf(n, route.links[i - 1]);
        unsigned out = portOf(n, route.links[i]);
        wake_delay += sw->flowStarted(in, out);
        uses.push_back(PortUse{sw, in, out});
    }

    auto done = [this, uses = std::move(uses),
                 cb = std::move(on_done)]() {
        for (const auto &u : uses)
            u.sw->flowEnded(u.in, u.out);
        if (cb)
            cb();
    };
    return _flowMgr.startFlow(std::move(route), bytes, std::move(done),
                              wake_delay);
}

// ------------------------------------------------------------- packet model

void
Network::sendPacket(std::size_t src_server, std::size_t dst_server,
                    Bytes bytes,
                    std::function<void(const Packet &)> on_delivered,
                    std::function<void(const Packet &)> on_dropped)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    auto pkt = std::make_shared<Packet>();
    pkt->id = _nextPacketId++;
    pkt->src = src;
    pkt->dst = dst;
    pkt->bytes = bytes;
    pkt->route = _routing.route(src, dst, pkt->id);
    pkt->sentAt = _sim.curTick();
    pkt->onDelivered = std::move(on_delivered);
    pkt->onDropped = std::move(on_dropped);

    if (src == dst) {
        // Local delivery.
        scheduleAfterDelay(0, [this, pkt] { packetArrived(pkt, pkt->dst); });
        return;
    }
    // Source server NIC: packets serialize one after another onto
    // the first link (FIFO NIC queue), then cross it.
    const LinkInfo &l0 = _topo.link(pkt->route.links[0]);
    Tick ser = serializationDelay(bytes, l0.rate);
    Tick &nic_free = _nicFreeAt[src_server];
    Tick start = std::max(nic_free, _sim.curTick());
    nic_free = start + ser;
    NodeId next = pkt->route.nodes[1];
    pkt->hop = 1;
    scheduleAfterDelay(nic_free - _sim.curTick() + l0.latency,
                       [this, pkt, next] { packetArrived(pkt, next); });
}

void
Network::packetArrived(const PacketPtr &pkt, NodeId at)
{
    if (at == pkt->dst) {
        ++_packetsDelivered;
        _packetLatency.sample(toSeconds(_sim.curTick() - pkt->sentAt));
        if (pkt->onDelivered)
            pkt->onDelivered(*pkt);
        return;
    }
    // Relay: a switch queues on the egress port; a relay server
    // store-and-forwards with its own fixed delay.
    if (_topo.isSwitch(at)) {
        forwardFrom(pkt, at, 0);
    } else {
        forwardFrom(pkt, at, _config.serverRelayDelay);
    }
}

void
Network::forwardFrom(const PacketPtr &pkt, NodeId at, Tick extra)
{
    if (pkt->hop >= pkt->route.links.size())
        HOLDCSIM_PANIC("packet ", pkt->id, " ran past its route");
    LinkId next_link = pkt->route.links[pkt->hop];
    ++pkt->hop;
    if (_topo.isSwitch(at)) {
        Switch *sw = _switches[_topo.switchIndex(at)].get();
        unsigned out = portOf(at, next_link);
        if (!sw->forwardPacket(pkt, out))
            dropPacket(pkt);
        return;
    }
    // Relay server: serialize onto the next link after the relay
    // delay (no queuing model at relay servers).
    const LinkInfo &li = _topo.link(next_link);
    NodeId next = _topo.otherEnd(next_link, at);
    Tick ser = serializationDelay(pkt->bytes, li.rate);
    scheduleAfterDelay(extra + ser + li.latency, [this, pkt, next] {
        packetArrived(pkt, next);
    });
}

void
Network::dropPacket(const PacketPtr &pkt)
{
    ++_packetsDropped;
    if (pkt->onDropped)
        pkt->onDropped(*pkt);
}

void
Network::sendBulk(std::size_t src_server, std::size_t dst_server,
                  Bytes bytes,
                  std::function<void(std::uint64_t)> on_done)
{
    Bytes mtu = _config.mtuBytes;
    std::uint64_t n_packets = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
    auto state = std::make_shared<std::pair<std::uint64_t,
                                            std::uint64_t>>(0, 0);
    auto step = [state, n_packets, cb = std::move(on_done)](
                    bool dropped) {
        state->first += 1;
        state->second += dropped ? 1 : 0;
        if (state->first == n_packets && cb)
            cb(state->second);
    };
    for (std::uint64_t i = 0; i < n_packets; ++i) {
        Bytes chunk = std::min<Bytes>(mtu, bytes - i * mtu);
        if (bytes == 0)
            chunk = 0;
        sendPacket(src_server, dst_server, chunk,
                   [step](const Packet &) { step(false); },
                   [step](const Packet &) { step(true); });
    }
}

// ---------------------------------------------------------- policy support

unsigned
Network::sleepingSwitchesOnPath(std::size_t src_server,
                                std::size_t dst_server)
{
    NodeId src = _topo.serverNode(src_server);
    NodeId dst = _topo.serverNode(dst_server);
    Route route = _routing.route(src, dst, 0);
    unsigned count = 0;
    for (NodeId n : route.nodes) {
        if (_topo.isSwitch(n) &&
            _switches[_topo.switchIndex(n)]->asleep()) {
            ++count;
        }
    }
    return count;
}

unsigned
Network::sleepingSwitches() const
{
    unsigned count = 0;
    for (const auto &sw : _switches)
        count += sw->asleep();
    return count;
}

// ------------------------------------------------------------ power & stats

Watts
Network::switchPower() const
{
    Watts total = 0.0;
    for (const auto &sw : _switches)
        total += sw->power();
    return total;
}

Joules
Network::switchEnergy() const
{
    Joules total = 0.0;
    for (const auto &sw : _switches)
        total += sw->energy();
    return total;
}

void
Network::accrue()
{
    for (auto &sw : _switches)
        sw->accrue();
}

void
Network::finishStats()
{
    for (auto &sw : _switches)
        sw->finishStats();
}

} // namespace holdcsim
