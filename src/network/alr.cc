#include "alr.hh"

#include "sim/logging.hh"

namespace holdcsim {

AlrController::AlrController(Simulator &sim, Network &net,
                             const AlrConfig &config)
    : _sim(sim), _net(net), _config(config),
      _tickEvent([this] { tick(); }, "alr.tick",
                 Event::powerPriority)
{
    if (config.reducedFraction <= 0.0 || config.reducedFraction > 1.0)
        fatal("ALR reduced fraction must be in (0, 1]");
    if (config.downWatermark >= config.upWatermark)
        fatal("ALR needs downWatermark < upWatermark");
    if (config.interval == 0)
        fatal("ALR interval must be positive");
    _tickEvent.setBackground(true);
    _lastBytes.resize(net.numSwitches());
    for (std::size_t s = 0; s < net.numSwitches(); ++s)
        _lastBytes[s].assign(net.switchAt(s).numPorts(), 0);
}

AlrController::~AlrController()
{
    if (_tickEvent.scheduled())
        _sim.deschedule(_tickEvent);
}

void
AlrController::start()
{
    _running = true;
    _sim.reschedule(_tickEvent, _sim.curTick() + _config.interval);
}

void
AlrController::stop()
{
    _running = false;
    if (_tickEvent.scheduled())
        _sim.deschedule(_tickEvent);
}

std::size_t
AlrController::reducedPorts() const
{
    std::size_t count = 0;
    for (std::size_t s = 0; s < _net.numSwitches(); ++s) {
        Switch &sw = _net.switchAt(s);
        for (unsigned p = 0; p < sw.numPorts(); ++p)
            count += sw.port(p).rateFraction() < 1.0;
    }
    return count;
}

void
AlrController::tick()
{
    double window = toSeconds(_config.interval);
    for (std::size_t s = 0; s < _net.numSwitches(); ++s) {
        Switch &sw = _net.switchAt(s);
        for (unsigned p = 0; p < sw.numPorts(); ++p) {
            Port &port = sw.port(p);
            Bytes sent = port.bytesSent();
            double bits = static_cast<double>(sent -
                                              _lastBytes[s][p]) * 8.0;
            _lastBytes[s][p] = sent;
            double line_rate = port.currentRate() /
                               port.rateFraction();
            double util_full = bits / (line_rate * window);
            double util_cur = bits / (port.currentRate() * window);
            if (port.rateFraction() >= 1.0 &&
                util_full < _config.downWatermark) {
                port.setRateFraction(_config.reducedFraction);
                ++_transitions;
            } else if (port.rateFraction() < 1.0 &&
                       util_cur > _config.upWatermark) {
                port.setRateFraction(1.0);
                ++_transitions;
            }
        }
    }
    if (_running)
        _sim.scheduleAfter(_tickEvent, _config.interval);
}

} // namespace holdcsim
