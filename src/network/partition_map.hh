/**
 * @file
 * Topology-derived pod partitioning for the parallel kernel.
 *
 * The conservative PDES kernel (src/sim/pdes) needs two things from
 * the plant: a partition of the entities such that every
 * cross-partition interaction traverses the network, and the minimum
 * latency of any cross-partition link (the lookahead). Datacenter
 * fabrics supply both naturally: cutting the topmost switch tier
 * (core) of a fat tree leaves the pods as connected components, and
 * every inter-pod path crosses a pod-to-core link whose propagation
 * delay bounds how soon one pod can affect another. PartitionMap
 * derives that cut from a Topology alone -- no annotations -- and
 * refuses topologies where the cut does not exist (star and
 * flattened butterfly have a single switch tier; server-only tori
 * have no switch layer at all; a zero-latency cross link would force
 * a zero-width window).
 */

#ifndef HOLDCSIM_NETWORK_PARTITION_MAP_HH
#define HOLDCSIM_NETWORK_PARTITION_MAP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

#include "topology.hh"

namespace holdcsim {

/** A pod cut of a Topology: per-node pod labels plus the lookahead. */
class PartitionMap
{
  public:
    /**
     * Derive the pod cut: label every switch with its minimum hop
     * distance from any server, remove the switches at the maximum
     * distance (the core tier), and read the pods off as the
     * connected components of what remains. Always returns; check
     * splittable() before using the labels.
     */
    static PartitionMap derive(const Topology &topo);

    /** Whether the topology admits a >= 2-pod cut. */
    bool splittable() const { return _reason.empty(); }

    /** Human-readable refusal cause; empty when splittable(). */
    const std::string &reason() const { return _reason; }

    /** Number of pods. @pre splittable(). */
    std::size_t pods() const { return _pods; }

    /**
     * Pod of node @p n, or -1 for boundary (core-tier) nodes, which
     * belong to no pod: their events run in whichever partition owns
     * them by assignment, and the PDES integration pins them to
     * partition 0 (see docs/DESIGN.md).
     */
    int podOf(NodeId n) const { return _podOf.at(n); }

    /** Minimum latency over pod-to-core links. @pre splittable(). */
    Tick lookahead() const { return _lookahead; }

    /** Server ordinals (Topology::serverIndex) in pod @p pod. */
    const std::vector<std::size_t> &serversInPod(std::size_t pod) const
    {
        return _podServers.at(pod);
    }

    /**
     * Group pods into @p n_partitions contiguous blocks (pod i goes
     * to partition i * n / pods). @p n_partitions must be in
     * [1, pods()].
     */
    std::vector<int> partitionOfPod(std::size_t n_partitions) const;

  private:
    std::size_t _pods = 0;
    Tick _lookahead = 0;
    std::string _reason;
    std::vector<int> _podOf;
    std::vector<std::vector<std::size_t>> _podServers;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_PARTITION_MAP_HH
