#include "flow_manager.hh"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "sim/logging.hh"

namespace holdcsim {

FlowManager::FlowManager(Simulator &sim, const Topology &topo,
                         Bytes fast_path_bytes)
    : _sim(sim), _topo(topo), _fastPathBytes(fast_path_bytes)
{}

FlowManager::~FlowManager()
{
    for (auto &[id, flow] : _flows) {
        if (flow.completion && flow.completion->scheduled())
            _sim.deschedule(*flow.completion);
        if (flow.activation && flow.activation->scheduled())
            _sim.deschedule(*flow.activation);
    }
}

FlowId
FlowManager::startFlow(Route route, Bytes bytes, FlowDoneFn on_done,
                       Tick start_delay)
{
    FlowId id = _nextId++;
    Flow flow;
    flow.id = id;
    flow.remainingBits = static_cast<double>(bytes) * 8.0;
    flow.onDone = std::move(on_done);
    flow.startedAt = _sim.curTick();

    // Record the traversal direction on every hop.
    for (std::size_t i = 0; i < route.links.size(); ++i) {
        LinkId l = route.links[i];
        bool forward = _topo.link(l).a == route.nodes[i];
        flow.path.push_back(DirectedLink{l, forward});
        flow.pathIdx.push_back(l * 2 + (forward ? 1 : 0));
    }

    flow.completion = std::make_unique<EventFunctionWrapper>(
        [this, id] { finish(id); }, "flow.completion");

    // Constant-latency fast path: a short transfer never contends
    // for bandwidth -- it completes analytically after the path
    // latency plus serialization at the bottleneck link rate.
    bool fast = _fastPathBytes > 0 && bytes <= _fastPathBytes &&
                !route.links.empty();
    if (fast) {
        flow.fastPath = true;
        ++_solverStats.fastPathHits;
        Tick eta = start_delay + fastPathDuration(_topo, route, bytes);
        auto [it, inserted] = _flows.emplace(id, std::move(flow));
        (void)inserted;
        if (TraceManager *tr = flowTracer()) {
            tr->asyncBegin(_traceTrack, TraceCategory::flow, "flow",
                           id, _sim.curTick());
        }
        _sim.scheduleAfter(*it->second.completion, eta);
        return id;
    }

    flow.activation = std::make_unique<EventFunctionWrapper>(
        [this, id] { activate(id); }, "flow.activation");

    auto [it, inserted] = _flows.emplace(id, std::move(flow));
    (void)inserted;
    if (TraceManager *tr = flowTracer()) {
        tr->asyncBegin(_traceTrack, TraceCategory::flow, "flow", id,
                       _sim.curTick());
    }
    _sim.scheduleAfter(*it->second.activation, start_delay);
    return id;
}

TraceManager *
FlowManager::flowTracer()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::flow))
        return nullptr;
    if (_traceTrack == noTraceTrack)
        _traceTrack = tr->track("network", "flows");
    return tr;
}

void
FlowManager::activate(FlowId id)
{
    auto it = _flows.find(id);
    if (it == _flows.end())
        HOLDCSIM_PANIC("activation of unknown flow ", id);
    Flow &flow = it->second;
    if (flow.path.empty() || flow.remainingBits <= 0.0) {
        // Local or empty transfer: complete immediately.
        finish(id);
        return;
    }
    if (_bulk) {
        // Warm-start: join silently; endBulkLoad() solves once.
        flow.active = true;
        flow.lastUpdate = _sim.curTick();
        return;
    }
    settleProgress();
    flow.active = true;
    flow.lastUpdate = _sim.curTick();
    reshare();
}

void
FlowManager::endBulkLoad()
{
    _bulk = false;
    settleProgress();
    reshare();
}

void
FlowManager::finish(FlowId id)
{
    auto it = _flows.find(id);
    if (it == _flows.end())
        HOLDCSIM_PANIC("completion of unknown flow ", id);
    bool was_active = it->second.active;
    FlowDoneFn done = std::move(it->second.onDone);
    _flowLatency.sample(toSeconds(_sim.curTick() - it->second.startedAt));
    ++_flowsCompleted;
    if (TraceManager *tr = flowTracer()) {
        tr->asyncEnd(_traceTrack, TraceCategory::flow, "flow", id,
                     _sim.curTick());
    }
    if (was_active)
        settleProgress();
    _flows.erase(it);
    if (was_active)
        reshare();
    if (done)
        done();
}

void
FlowManager::settleProgress()
{
    Tick now = _sim.curTick();
    for (auto &[id, flow] : _flows) {
        if (!flow.active)
            continue;
        double transferred =
            flow.rate * toSeconds(now - flow.lastUpdate);
        flow.remainingBits =
            std::max(0.0, flow.remainingBits - transferred);
        flow.lastUpdate = now;
    }
}

void
FlowManager::abortReshare(const std::string &what)
{
    // The solver wedged: an internal inconsistency, not a user
    // error. Name the flows and links still in play so the
    // post-mortem pinpoints the offending state, then hand the
    // run to the campaign quarantine machinery.
    std::ostringstream detail;
    detail << what << "; " << _unfrozen.size()
           << " unfrozen flow(s):";
    std::size_t shown = 0;
    for (Flow *flow : _unfrozen) {
        if (++shown > 4) {
            detail << " ...";
            break;
        }
        detail << " flow " << flow->id << " links[";
        for (std::size_t i = 0; i < flow->pathIdx.size(); ++i) {
            std::uint32_t dl = flow->pathIdx[i];
            detail << (i ? " " : "") << dl / 2
                   << (dl & 1 ? "f" : "r") << ":cap="
                   << _capLeft[dl] << "/users=" << _usersLeft[dl];
        }
        detail << "]";
    }
    std::string reason = detail.str();
    _sim.abortDump(std::cerr, reason);
    throw SimAbortError(reason);
}

void
FlowManager::reshare()
{
    // Progressive filling: repeatedly saturate the most contended
    // directed link and freeze its flows at the bottleneck share.
    // All per-link state lives in dense vectors indexed by
    // (link * 2 + forward); only the entries actually crossed by an
    // active flow (collected in _touched) are initialized and
    // scanned, so one call costs O(path hops * rounds), allocation
    // free after warm-up.
    const std::size_t n_dl = 2 * _topo.numLinks();
    if (_capLeft.size() != n_dl) {
        _capLeft.resize(n_dl);
        _usersLeft.resize(n_dl);
        _inUse.assign(n_dl, 0);
        _isBottleneck.assign(n_dl, 0);
    }
    _touched.clear();
    _unfrozen.clear();
    for (auto &[id, flow] : _flows) {
        if (!flow.active)
            continue;
        _unfrozen.push_back(&flow);
        for (std::uint32_t dl : flow.pathIdx) {
            if (!_inUse[dl]) {
                _inUse[dl] = 1;
                _touched.push_back(dl);
                _capLeft[dl] = _topo.link(dl / 2).rate;
                _usersLeft[dl] = 0;
            }
            ++_usersLeft[dl];
        }
    }
    ++_solverStats.resolves;
    _solverStats.resolvedFlows += _unfrozen.size();
    _solverStats.dirtyLinks += _touched.size();
    _solverStats.maxDirtyFlows = std::max(
        _solverStats.maxDirtyFlows,
        static_cast<std::uint64_t>(_unfrozen.size()));

    while (!_unfrozen.empty()) {
        // Find the directed link with the smallest per-flow share.
        double best_share = std::numeric_limits<double>::infinity();
        for (std::uint32_t dl : _touched) {
            if (_usersLeft[dl] == 0)
                continue;
            double share = _capLeft[dl] / _usersLeft[dl];
            best_share = std::min(best_share, share);
        }
        if (!std::isfinite(best_share))
            abortReshare("flow reshare found no bottleneck");

        // Snapshot the bottleneck link set for this round *before*
        // freezing anything: freezing a flow debits the links it
        // crosses, and comparing later flows against those mutated
        // shares mis-classifies links that were epsilon-tied at the
        // round's start (flows frozen above or below their true
        // max-min rate).
        double tolerance =
            1e-9 * std::max(1.0, best_share);
        for (std::uint32_t dl : _touched) {
            _isBottleneck[dl] =
                _usersLeft[dl] > 0 &&
                _capLeft[dl] / _usersLeft[dl] <=
                    best_share + tolerance;
        }

        // Freeze every flow crossing a bottleneck link at that share.
        std::size_t kept = 0;
        for (Flow *flow : _unfrozen) {
            bool frozen = false;
            for (std::uint32_t dl : flow->pathIdx) {
                if (_isBottleneck[dl]) {
                    frozen = true;
                    break;
                }
            }
            if (frozen) {
                flow->rate = best_share;
                for (std::uint32_t dl : flow->pathIdx) {
                    _capLeft[dl] =
                        std::max(0.0, _capLeft[dl] - best_share);
                    --_usersLeft[dl];
                }
            } else {
                _unfrozen[kept++] = flow;
            }
        }
        if (kept == _unfrozen.size()) {
            _unfrozen.resize(kept);
            abortReshare(detail::format(
                "flow reshare made no progress at share ",
                best_share));
        }
        _unfrozen.resize(kept);
    }

    for (std::uint32_t dl : _touched)
        _inUse[dl] = 0;

    // Reschedule completion events at the new rates.
    Tick now = _sim.curTick();
    for (auto &[id, flow] : _flows) {
        if (!flow.active)
            continue;
        if (flow.completion->scheduled())
            _sim.deschedule(*flow.completion);
        if (flow.rate <= 0.0)
            HOLDCSIM_PANIC("active flow ", id, " got zero rate");
        double seconds = flow.remainingBits / flow.rate;
        Tick eta = fromSeconds(seconds);
        _sim.schedule(*flow.completion, now + (eta > 0 ? eta : 1));
    }
}

bool
FlowManager::abortFlow(FlowId flow)
{
    auto it = _flows.find(flow);
    if (it == _flows.end())
        return false;
    Flow &f = it->second;
    bool was_active = f.active;
    FlowDoneFn aborted = std::move(f.onAbort);
    if (f.completion && f.completion->scheduled())
        _sim.deschedule(*f.completion);
    if (f.activation && f.activation->scheduled())
        _sim.deschedule(*f.activation);
    if (was_active)
        settleProgress(); // other flows keep their progress to now
    _flows.erase(it);
    ++_flowsAborted;
    if (TraceManager *tr = flowTracer()) {
        tr->instant(_traceTrack, TraceCategory::flow, "flow.abort",
                    _sim.curTick());
        tr->asyncEnd(_traceTrack, TraceCategory::flow, "flow", flow,
                     _sim.curTick());
    }
    if (was_active)
        reshare(); // the freed bandwidth goes to the survivors
    if (aborted)
        aborted();
    return true;
}

std::size_t
FlowManager::abortFlowsOn(LinkId l)
{
    std::vector<FlowId> doomed;
    for (const auto &[id, flow] : _flows) {
        for (const auto &dl : flow.path) {
            if (dl.link == l) {
                doomed.push_back(id);
                break;
            }
        }
    }
    for (FlowId id : doomed)
        abortFlow(id);
    return doomed.size();
}

void
FlowManager::setAbortCallback(FlowId flow, FlowDoneFn on_abort)
{
    auto it = _flows.find(flow);
    if (it == _flows.end())
        HOLDCSIM_PANIC("abort callback for unknown flow ", flow);
    it->second.onAbort = std::move(on_abort);
}

BitsPerSec
FlowManager::flowRate(FlowId flow) const
{
    auto it = _flows.find(flow);
    if (it == _flows.end() || !it->second.active)
        return 0.0;
    return it->second.rate;
}

double
FlowManager::linkUtilization(LinkId l) const
{
    double fwd = 0.0, rev = 0.0;
    for (const auto &[id, flow] : _flows) {
        if (!flow.active)
            continue;
        for (const auto &dl : flow.path) {
            if (dl.link != l)
                continue;
            (dl.forward ? fwd : rev) += flow.rate;
        }
    }
    return std::max(fwd, rev) / _topo.link(l).rate;
}

} // namespace holdcsim
