#include "switch_power.hh"

#include "sim/logging.hh"

namespace holdcsim {

Watts
SwitchPowerProfile::portPowerAt(double rate_fraction) const
{
    if (rate_fraction < 0.0)
        rate_fraction = 0.0;
    if (rate_fraction > 1.0)
        rate_fraction = 1.0;
    return portActive *
           (alrFloorFraction + (1.0 - alrFloorFraction) * rate_fraction);
}

void
SwitchPowerProfile::validate() const
{
    if (chassisBase < 0.0 || switchSleep < 0.0 ||
        switchSleep > chassisBase) {
        fatal("switch chassis powers inconsistent");
    }
    if (linecardActive < linecardSleep || linecardSleep < linecardOff ||
        linecardOff < 0.0) {
        fatal("line card powers must decrease with state depth");
    }
    if (portActive < portLpi || portLpi < portOff || portOff < 0.0)
        fatal("port powers must decrease with state depth");
    if (alrFloorFraction < 0.0 || alrFloorFraction > 1.0)
        fatal("ALR floor fraction must be in [0, 1]");
}

SwitchPowerProfile
SwitchPowerProfile::cisco2960_24()
{
    // Base 14.7 W (chassis + one line card), 0.23 W per port -- the
    // numbers the paper gives for its simulated switch.
    SwitchPowerProfile p;
    p.chassisBase = 10.0;
    p.linecardActive = 4.7;
    p.portActive = 0.23;
    p.portLpi = 0.023;
    return p;
}

} // namespace holdcsim
