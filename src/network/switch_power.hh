/**
 * @file
 * Switch power profile (paper sections III-B and III-F).
 *
 * Network switches have a chassis, line cards and ports. Ports
 * support three power states (active, LPI -- IEEE 802.3az Low Power
 * Idle -- and off) plus adaptive link rate (ALR); line cards support
 * active/sleep/off; the switch as a whole can be put to sleep by a
 * network-level policy. The default profile reproduces the Cisco
 * WS-C2960-24-S the paper validates against: 14.7 W base power and
 * 0.23 W per active port (paper section V-B).
 */

#ifndef HOLDCSIM_NETWORK_SWITCH_POWER_HH
#define HOLDCSIM_NETWORK_SWITCH_POWER_HH

#include "sim/types.hh"

namespace holdcsim {

/** Per-state powers and transition latencies for a switch. */
struct SwitchPowerProfile {
    /** @name Chassis */
    ///@{
    /** Chassis power while the switch is awake. */
    Watts chassisBase = 10.0;
    /** Whole-switch sleep residual power. */
    Watts switchSleep = 1.5;
    /** Latency to rouse a sleeping switch. */
    Tick switchWakeLatency = 100 * msec;
    ///@}

    /** @name Line cards */
    ///@{
    Watts linecardActive = 4.7;
    Watts linecardSleep = 0.8;
    Watts linecardOff = 0.0;
    /** All-ports-idle residency before a line card sleeps. */
    Tick linecardSleepThreshold = 10 * msec;
    /** Latency to rouse a sleeping line card. */
    Tick linecardWakeLatency = 1 * msec;
    ///@}

    /** @name Ports */
    ///@{
    /** Port power at full line rate. */
    Watts portActive = 0.23;
    /** Port power in Low Power Idle. */
    Watts portLpi = 0.023;
    Watts portOff = 0.0;
    /** Idle residency before a port enters LPI. */
    Tick lpiIdleThreshold = 50 * usec;
    /** Latency to resume from LPI. */
    Tick lpiExitLatency = 5 * usec;
    /**
     * Adaptive-link-rate model: fraction of portActive drawn at
     * (near-)zero rate; power rises linearly with the rate fraction
     * to portActive at full rate.
     */
    double alrFloorFraction = 0.4;
    ///@}

    /** Active-port power under ALR at @p rate_fraction of line rate. */
    Watts portPowerAt(double rate_fraction) const;

    /** Throw FatalError if the profile is inconsistent. */
    void validate() const;

    /** The paper's validation switch: Cisco WS-C2960-24-S. */
    static SwitchPowerProfile cisco2960_24();
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_SWITCH_POWER_HH
