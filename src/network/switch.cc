#include "switch.hh"

#include "sim/logging.hh"

namespace holdcsim {

namespace {

/**
 * Validate the profile and port configuration, then hand back the
 * per-port rates. Runs in the member-init list so the checks precede
 * PortPool construction.
 */
std::vector<BitsPerSec>
checkedPortRates(const SwitchConfig &config,
                 const SwitchPowerProfile &profile)
{
    profile.validate();
    if (config.portRates.empty())
        fatal("switch needs at least one port");
    if (config.portsPerLinecard == 0)
        fatal("portsPerLinecard must be positive");
    return config.portRates;
}

} // namespace

Switch::Switch(Simulator &sim, const SwitchConfig &config,
               const SwitchPowerProfile &profile)
    : _sim(sim), _config(config), _profile(profile),
      _portPool(sim, *this, _profile, checkedPortRates(config, _profile),
                config.portBufferCapacity),
      _wheel(sim.timerWheel()),
      _sleepEvent([this] { trySleep(); }, "switch.sleep",
                  Event::powerPriority),
      _lastAccrue(sim.curTick())
{
    unsigned n_ports = _portPool.size();
    unsigned n_cards =
        (n_ports + config.portsPerLinecard - 1) /
        config.portsPerLinecard;
    for (unsigned lc = 0; lc < n_cards; ++lc) {
        _linecards.push_back(std::make_unique<LineCard>(
            sim, lc, _profile, [this] { accrue(); },
            [this] { linecardStateChanged(); }));
        if (sim.tracer()) {
            _linecards.back()->setTraceLabel(
                "sw" + std::to_string(config.id) + ".lc" +
                std::to_string(lc));
        }
    }
    _ports.reserve(n_ports);
    for (unsigned p = 0; p < n_ports; ++p) {
        _ports.emplace_back(_portPool, p);
        _linecards[p / config.portsPerLinecard]->addPort(&_ports.back());
    }
    _residency.enter(0, sim.curTick()); // awake
    traceState();
    // Ports arm their LPI timers at construction; the resulting
    // quiescence will cascade into line card / switch sleep per the
    // configured thresholds.
}

Switch::~Switch()
{
    if (_sleepEvent.scheduled())
        _sim.deschedule(_sleepEvent);
    if (_wheel)
        _wheel->cancel(_sleepHandle);
}

void
Switch::timerFired(std::uint64_t, Tick)
{
    _sleepHandle = {}; // the firing handle is already dead
    trySleep();
}

void
Switch::armSleep()
{
    if (_wheel) {
        _wheel->cancel(_sleepHandle);
        _sleepHandle = _wheel->arm(*this, 0, _config.switchSleepDelay);
    } else {
        _sim.reschedule(_sleepEvent,
                        _sim.curTick() + _config.switchSleepDelay);
    }
}

void
Switch::cancelSleep()
{
    if (_wheel) {
        _wheel->cancel(_sleepHandle);
    } else if (_sleepEvent.scheduled()) {
        _sim.deschedule(_sleepEvent);
    }
}

Tick
Switch::wakeForActivity(unsigned port_idx)
{
    Tick delay = 0;
    if (_asleep) {
        setAsleep(false);
        delay += _profile.switchWakeLatency;
    }
    cancelSleep();
    unsigned lc = port_idx / _config.portsPerLinecard;
    delay += _linecards.at(lc)->wake();
    delay += _ports.at(port_idx).wake();
    return delay;
}

bool
Switch::trySleep()
{
    if (_asleep)
        return true;
    for (const auto &p : _ports) {
        if (p.busy())
            return false;
    }
    setAsleep(true);
    return true;
}

void
Switch::setFailed(bool failed)
{
    if (failed == _failed)
        return;
    accrue();
    _failed = failed;
    if (failed) {
        cancelSleep();
    } else {
        // A repaired switch whose line cards are all still quiescent
        // would otherwise stay awake forever: no port edge means no
        // one ever restarts the sleep countdown the failure
        // cancelled.
        linecardStateChanged();
    }
    traceState();
}

bool
Switch::forwardPacket(const PacketPtr &pkt, unsigned out_port)
{
    if (_failed)
        return false; // a dead switch drops everything
    Tick wake_delay = wakeForActivity(out_port);
    ++_packetsForwarded;
    return _ports.at(out_port).sendPacket(
        pkt, wake_delay + _forwardingDelay);
}

Tick
Switch::flowStarted(unsigned in_port, unsigned out_port)
{
    Tick delay = wakeForActivity(in_port);
    delay += wakeForActivity(out_port);
    _ports.at(in_port).flowStarted();
    _ports.at(out_port).flowStarted();
    return delay;
}

void
Switch::flowEnded(unsigned in_port, unsigned out_port)
{
    _ports.at(in_port).flowEnded();
    _ports.at(out_port).flowEnded();
}

Watts
Switch::power() const
{
    if (_failed)
        return 0.0;
    if (_asleep)
        return _profile.switchSleep;
    Watts total = _profile.chassisBase;
    for (const auto &lc : _linecards)
        total += lc->power();
    for (const auto &p : _ports)
        total += p.power();
    return total;
}

void
Switch::accrue()
{
    Tick now = _sim.curTick();
    if (now == _lastAccrue)
        return;
    if (now < _lastAccrue)
        HOLDCSIM_PANIC("switch ", id(), " accrue() with time reversed");
    _energy += energyOver(power(), now - _lastAccrue);
    _lastAccrue = now;
}

std::uint64_t
Switch::packetsDropped() const
{
    std::uint64_t total = 0;
    for (const auto &p : _ports)
        total += p.packetsDropped();
    return total;
}

void
Switch::finishStats()
{
    accrue();
    Tick now = _sim.curTick();
    _residency.finish(now);
    for (auto &p : _ports)
        p.finishStats(now);
    for (auto &lc : _linecards)
        lc->finishStats(now);
}

void
Switch::resetStats()
{
    accrue();
    _energy = 0.0;
    _packetsForwarded = 0;
    _sleepTransitions = 0;
    Tick now = _sim.curTick();
    _residency.reset();
    _residency.enter(_asleep ? 1 : 0, now);
    // Cascade: a warmup reset must also zero the per-port packet
    // counters and the port/line-card residencies, or post-warmup
    // dumps double-count the warmup interval.
    for (auto &p : _ports)
        p.resetStats(now);
    for (auto &lc : _linecards)
        lc->resetStats(now);
}

void
Switch::portActivityChanged(unsigned port)
{
    _linecards.at(port / _config.portsPerLinecard)
        ->portActivityChanged();
}

void
Switch::linecardStateChanged()
{
    if (_config.switchSleepDelay == maxTick || _asleep || _failed)
        return;
    // Arm the whole-switch sleep countdown once every line card has
    // gone to sleep (or off).
    for (const auto &lc : _linecards) {
        if (lc->state() == LineCardState::active)
            return;
    }
    armSleep();
}

void
Switch::setAsleep(bool asleep)
{
    if (asleep == _asleep)
        return;
    accrue();
    _asleep = asleep;
    if (asleep)
        ++_sleepTransitions;
    _residency.enter(asleep ? 1 : 0, _sim.curTick());
    traceState();
}

void
Switch::traceState()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::network))
        return;
    if (_traceTrack == noTraceTrack) {
        _traceTrack =
            tr->track("network", "sw" + std::to_string(id()));
    }
    const char *name = _failed ? "failed"
                       : _asleep ? "asleep"
                                 : "awake";
    tr->transition(_traceTrack, TraceCategory::network, name,
                   _sim.curTick());
}

} // namespace holdcsim
