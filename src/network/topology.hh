/**
 * @file
 * Data center network topologies (paper section III-B).
 *
 * A Topology is an undirected graph of nodes (servers and switches)
 * and full-duplex links. Builders are provided for the architectures
 * the paper supports:
 *
 *  - switch-based: fat tree [8] and flattened butterfly [34];
 *  - server-based: CamCube [6] (3-D torus of servers);
 *  - hybrid: BCube [26] (servers + commodity switches);
 *  - star: single switch, used in the paper's switch validation.
 */

#ifndef HOLDCSIM_NETWORK_TOPOLOGY_HH
#define HOLDCSIM_NETWORK_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace holdcsim {

/** Graph node index. */
using NodeId = std::uint32_t;
/** Graph link index. */
using LinkId = std::uint32_t;

/** What a topology node represents. */
enum class NodeKind { server, swtch };

/** A full-duplex link between two nodes. */
struct LinkInfo {
    NodeId a;
    NodeId b;
    /** Capacity per direction. */
    BitsPerSec rate;
    /** Propagation delay per hop. */
    Tick latency;
};

/** An undirected multigraph of servers, switches and links. */
class Topology
{
  public:
    /** @name Construction */
    ///@{
    NodeId addServer();
    NodeId addSwitch();
    /** Add a full-duplex link; returns its id. */
    LinkId addLink(NodeId a, NodeId b, BitsPerSec rate, Tick latency);
    ///@}

    /** @name Queries */
    ///@{
    std::size_t numNodes() const { return _nodes.size(); }
    std::size_t numLinks() const { return _links.size(); }
    std::size_t numServers() const { return _servers.size(); }
    std::size_t numSwitches() const { return _switches.size(); }

    NodeKind kind(NodeId n) const { return _nodes.at(n); }
    bool isServer(NodeId n) const { return kind(n) == NodeKind::server; }
    bool isSwitch(NodeId n) const { return kind(n) == NodeKind::swtch; }

    /** Node id of the i-th server / switch. */
    NodeId serverNode(std::size_t i) const { return _servers.at(i); }
    NodeId switchNode(std::size_t i) const { return _switches.at(i); }

    /** Ordinal of a server/switch node among its kind. */
    std::size_t serverIndex(NodeId n) const;
    std::size_t switchIndex(NodeId n) const;

    const LinkInfo &link(LinkId l) const { return _links.at(l); }

    /** Links incident to @p n, in insertion order. */
    const std::vector<LinkId> &linksAt(NodeId n) const
    {
        return _adjacency.at(n);
    }

    /** Degree of node @p n. */
    std::size_t degree(NodeId n) const { return linksAt(n).size(); }

    /** The far end of @p l as seen from @p from. */
    NodeId otherEnd(LinkId l, NodeId from) const;

    /** Throw FatalError unless every node can reach every other. */
    void validateConnected() const;
    ///@}

    /** @name Builders */
    ///@{
    /** @p n_servers leaves on one switch. */
    static Topology star(unsigned n_servers, BitsPerSec rate,
                         Tick latency);

    /**
     * Al-Fares fat tree of even parameter @p k: k pods of k/2 edge
     * and k/2 aggregation switches, (k/2)^2 core switches and k^3/4
     * servers; full bisection bandwidth.
     */
    static Topology fatTree(unsigned k, BitsPerSec rate, Tick latency);

    /**
     * 2-D flattened butterfly: a @p k x @p k array of switches, each
     * fully connected within its row and its column, each hosting
     * @p concentration servers.
     */
    static Topology flattenedButterfly(unsigned k,
                                       unsigned concentration,
                                       BitsPerSec rate, Tick latency);

    /**
     * BCube(@p n, @p levels): n^(levels+1) servers; at each level l
     * in [0, levels] there are n^levels n-port switches; a server's
     * level-l switch is shared with servers differing only in digit
     * l of their base-n address. Servers participate in forwarding
     * (hybrid architecture).
     */
    static Topology bcube(unsigned n, unsigned levels, BitsPerSec rate,
                          Tick latency);

    /**
     * CamCube: @p x x @p y x @p z 3-D torus of servers with six
     * neighbor links each (server-only architecture; servers do all
     * the switching). Dimensions of size 2 use a single link.
     */
    static Topology camCube(unsigned x, unsigned y, unsigned z,
                            BitsPerSec rate, Tick latency);
    ///@}

  private:
    std::vector<NodeKind> _nodes;
    std::vector<LinkInfo> _links;
    std::vector<std::vector<LinkId>> _adjacency;
    std::vector<NodeId> _servers;
    std::vector<NodeId> _switches;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_TOPOLOGY_HH
