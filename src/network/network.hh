/**
 * @file
 * The network facade: instantiates one Switch per topology switch
 * node, wires ports to links, and offers both communication models
 * the paper describes -- flow-based transfers with max-min fair
 * bandwidth sharing and packet-level store-and-forward -- plus the
 * introspection hooks the server/network cooperative policies need
 * (how many sleeping switches a path would wake).
 */

#ifndef HOLDCSIM_NETWORK_NETWORK_HH
#define HOLDCSIM_NETWORK_NETWORK_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fluid/net_model.hh"
#include "packet.hh"
#include "routing.hh"
#include "sim/one_shot.hh"
#include "sim/simulator.hh"
#include "switch.hh"
#include "switch_power.hh"
#include "topology.hh"

namespace holdcsim {

/** Network-wide configuration. */
struct NetworkConfig {
    /** Egress buffer capacity per switch port, in packets. */
    std::size_t portBufferCapacity = 128;
    /** Ports per line card. */
    unsigned portsPerLinecard = 24;
    /** Per-hop forwarding delay through a switch. */
    Tick switchForwardDelay = 1 * usec;
    /**
     * Store-and-forward delay through a relay *server* (server-based
     * and hybrid topologies where servers do the switching).
     */
    Tick serverRelayDelay = 10 * usec;
    /** Whole-switch sleep threshold; maxTick disables. */
    Tick switchSleepDelay = maxTick;
    /** MTU used when a bulk transfer is sent packet-by-packet. */
    Bytes mtuBytes = 1500;
    /**
     * Flow-level model tier (exact | fluid | hybrid) and fast-path
     * threshold; see net_model.hh for the accuracy/cost trade-off.
     */
    NetModelConfig netModel;
};

/** A complete simulated data center fabric. */
class Network
{
  public:
    Network(Simulator &sim, Topology topo,
            const SwitchPowerProfile &profile,
            const NetworkConfig &config = {});
    ~Network();
    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const Topology &topology() const { return _topo; }
    StaticRouting &routing() { return _routing; }
    /** The configured flow-level model backend. */
    NetModel &flows() { return *_flowMgr; }

    std::size_t numSwitches() const { return _switches.size(); }
    Switch &switchAt(std::size_t i) { return *_switches.at(i); }

    /**
     * Returned by startFlow() when no healthy path exists; the
     * abort callback still fires (asynchronously).
     */
    static constexpr FlowId invalidFlow = ~static_cast<FlowId>(0);

    /** @name Flow-based communication */
    ///@{
    /**
     * Transfer @p bytes from server @p src_server to @p dst_server
     * (server ordinals, not node ids) as one flow. Sleeping
     * switches/line cards/ports on the path wake first; their wake
     * latency delays the transfer start. @p on_done fires when the
     * last byte arrives. Transfers between a server and itself
     * complete immediately. @p on_abort (optional) fires instead of
     * @p on_done if the flow is killed by a fault on its path; when
     * the fabric is already partitioned it fires on the next tick
     * and invalidFlow is returned.
     */
    FlowId startFlow(std::size_t src_server, std::size_t dst_server,
                     Bytes bytes, std::function<void()> on_done,
                     std::function<void()> on_abort = {});
    ///@}

    /** @name Fault injection (driven by the fault subsystem) */
    ///@{
    /**
     * Take link @p l out of service: in-flight flows crossing it are
     * aborted, packets reaching it are dropped, and new routes avoid
     * it. Returns the number of flows killed. Idempotent.
     */
    std::size_t failLink(LinkId l);
    void repairLink(LinkId l);

    /** Crash/repair switch @p sw_idx (switch ordinal). */
    std::size_t failSwitch(std::size_t sw_idx);
    void repairSwitch(std::size_t sw_idx);

    /**
     * Fail/repair one line card of a switch: every link driven by
     * the card's ports goes down, the rest of the switch keeps
     * forwarding. Returns the number of flows killed.
     */
    std::size_t failLinecard(std::size_t sw_idx, unsigned lc_idx);
    void repairLinecard(std::size_t sw_idx, unsigned lc_idx);

    /** Whether healthy links connect the two servers right now. */
    bool serversReachable(std::size_t src_server,
                          std::size_t dst_server);
    ///@}

    /** @name Packet-level communication */
    ///@{
    /**
     * Inject one packet of @p bytes from @p src_server to
     * @p dst_server. @p on_delivered fires at arrival;
     * @p on_dropped (optional) fires if an egress buffer overflows.
     */
    void sendPacket(std::size_t src_server, std::size_t dst_server,
                    Bytes bytes,
                    std::function<void(const Packet &)> on_delivered,
                    std::function<void(const Packet &)> on_dropped = {});

    /**
     * Send @p bytes as a train of MTU-sized packets; @p on_done
     * fires when every packet has been delivered or dropped, with
     * the number of drops.
     */
    void sendBulk(std::size_t src_server, std::size_t dst_server,
                  Bytes bytes,
                  std::function<void(std::uint64_t dropped)> on_done);
    ///@}

    /** @name Policy introspection (paper section IV-D) */
    ///@{
    /**
     * Network cost of reaching @p dst_server from @p src_server:
     * the number of currently sleeping switches the shortest path
     * would have to wake. Unreachable pairs (fabric partitioned by
     * faults) report a prohibitively large cost.
     */
    unsigned sleepingSwitchesOnPath(std::size_t src_server,
                                    std::size_t dst_server);

    /** Number of switches currently asleep. */
    unsigned sleepingSwitches() const;
    ///@}

    /** @name Power, energy and stats */
    ///@{
    Watts switchPower() const;
    Joules switchEnergy() const;
    void accrue();
    void finishStats();
    std::uint64_t packetsDelivered() const { return _packetsDelivered; }
    std::uint64_t packetsDropped() const { return _packetsDropped; }
    /** End-to-end packet latency distribution (seconds). */
    const Percentile &packetLatency() const { return _packetLatency; }
    ///@}

  private:
    /** Port ordinal of link @p l on switch node @p n. */
    unsigned portOf(NodeId n, LinkId l) const;
    /** Links driven by line card @p lc_idx of switch @p sw_idx. */
    std::vector<LinkId> linecardLinks(std::size_t sw_idx,
                                      unsigned lc_idx) const;
    /** Continue @p pkt after it crossed the link at hop - 1. */
    void packetArrived(const PacketPtr &pkt, NodeId at);
    /** Queue @p pkt at node @p at for its next hop. */
    void forwardFrom(const PacketPtr &pkt, NodeId at, Tick extra);
    void dropPacket(const PacketPtr &pkt);

    Simulator &_sim;
    Topology _topo;
    NetworkConfig _config;
    StaticRouting _routing;
    std::unique_ptr<NetModel> _flowMgr;

    std::vector<std::unique_ptr<Switch>> _switches;
    /** node id -> (link id -> port ordinal) for switch nodes. */
    std::vector<std::unordered_map<LinkId, unsigned>> _portMap;

    /** Per-server NIC: when each server's uplink frees up. */
    std::vector<Tick> _nicFreeAt;

    std::uint64_t _nextPacketId = 0;
    std::uint64_t _packetsDelivered = 0;
    std::uint64_t _packetsDropped = 0;
    Percentile _packetLatency;

    /** Fire-and-forget event helper (self-cleaning one-shots). */
    void scheduleAfterDelay(Tick delay, std::function<void()> fn);
    /** Owns fire-and-forget events; frees stragglers at teardown. */
    OneShotPool _oneShots;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_NETWORK_HH
