/**
 * @file
 * Switch port model: egress queue, serialization, LPI and adaptive
 * link rate (paper sections III-B and III-F).
 *
 * Storage layout mirrors the server core pool: a switch owns one
 * PortPool with the hot per-port state (power state, rate fraction,
 * flow refcount, residency cursor, pending LPI timer) in dense
 * struct-of-arrays vectors, and `Port` is a copyable view (pool
 * pointer + dense id). Cold I/O state (egress FIFO, in-flight packet,
 * deliver callback) lives in a parallel per-port struct touched only
 * when the port actually moves traffic.
 *
 * When the Simulator has a TimerWheel installed, LPI countdowns arm
 * wheel timers instead of one "port.lpi" event per port.
 */

#ifndef HOLDCSIM_NETWORK_PORT_HH
#define HOLDCSIM_NETWORK_PORT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "packet.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/timer_wheel.hh"
#include "switch_power.hh"

namespace holdcsim {

/** Port power states (paper: active, LPI, off). */
enum class PortState { active, lpi, off };

class Port;

/** The entity that owns a PortPool (a Switch, or a test fixture). */
class PortHost
{
  public:
    virtual ~PortHost() = default;

    /** Invoked before any power-relevant port state change. */
    virtual void portAccrue() = 0;

    /** Port @p port crossed a busy/idle edge (card management). */
    virtual void portActivityChanged(unsigned port) = 0;
};

/** Dense struct-of-arrays storage for all ports of one switch. */
class PortPool : public TimerClient
{
  public:
    /** Hands a fully serialized packet to the far end of the link. */
    using DeliverFn = std::function<void(const PacketPtr &)>;

    /**
     * @param sim        owning engine
     * @param host       owner notified of accrual/activity edges
     * @param profile    power profile (not owned; must outlive pool)
     * @param line_rates full line rate per port (one entry per port,
     *                   all positive)
     * @param buffer_capacity max queued packets per port (> 0)
     */
    PortPool(Simulator &sim, PortHost &host,
             const SwitchPowerProfile &profile,
             std::vector<BitsPerSec> line_rates,
             std::size_t buffer_capacity);

    /** Deschedules pending events and cancels wheel timers. */
    ~PortPool() override;

    PortPool(const PortPool &) = delete;
    PortPool &operator=(const PortPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(_state.size()); }

    /** TimerClient: an LPI deadline expired (token = port id). */
    void timerFired(std::uint64_t token, Tick deadline) override;

  private:
    friend class Port;

    bool busy(unsigned p) const
    {
        return _io[p].transmitting || !_io[p].queue.empty() ||
               _activeFlows[p] > 0;
    }
    bool sendPacket(unsigned p, const PacketPtr &pkt, Tick extra_delay);
    void flowStarted(unsigned p);
    void flowEnded(unsigned p);
    Tick wake(unsigned p);
    void powerOff(unsigned p);
    void setRateFraction(unsigned p, double fraction);
    BitsPerSec currentRate(unsigned p) const
    {
        return _lineRate[p] * _rateFraction[p];
    }
    Watts power(unsigned p) const;
    void setState(unsigned p, PortState next);
    void startNext(unsigned p, Tick extra_delay);
    void transmitDone(unsigned p);
    void maybeArmLpi(unsigned p);
    void cancelLpi(unsigned p);

    /** Cold per-port I/O state (only touched by actual traffic). */
    struct PortIo {
        std::deque<PacketPtr> queue;
        PacketPtr inFlight;
        DeliverFn deliver;
        bool transmitting = false;
    };

    Simulator &_sim;
    PortHost &_host;
    const SwitchPowerProfile &_profile;
    std::size_t _bufferCapacity;
    /** Wheel latched at construction; nullptr = per-port events. */
    TimerWheel *_wheel;

    // Hot per-port state, indexed by dense port id.
    std::vector<PortState> _state;
    std::vector<double> _rateFraction;
    std::vector<unsigned> _activeFlows;
    std::vector<BitsPerSec> _lineRate;
    std::vector<TimerWheel::Handle> _lpi;
    std::vector<StateResidency> _residency;
    std::vector<std::uint64_t> _packetsSent;
    std::vector<std::uint64_t> _packetsDropped;
    std::vector<Bytes> _bytesSent;

    std::vector<PortIo> _io;
    // Events are address-stable in deques (Event is pinned).
    // _lpiEvents stays empty in wheel mode.
    std::deque<EventFunctionWrapper> _txDoneEvents;
    std::deque<EventFunctionWrapper> _lpiEvents;
};

/**
 * Copyable view of one switch port driving one link direction. The
 * port owns an egress FIFO with bounded capacity; the head packet
 * serializes at the port's current (possibly ALR-reduced) rate. When
 * the port has had no queued packets and no registered flows for the
 * profile's LPI threshold, it drops into Low Power Idle; traffic
 * arriving at an LPI port pays the LPI exit latency.
 */
class Port
{
  public:
    using DeliverFn = PortPool::DeliverFn;

    Port(PortPool &pool, unsigned id) : _pool(&pool), _id(id) {}

    unsigned id() const { return _id; }
    PortState state() const { return _pool->_state[_id]; }

    /** Whether traffic or registered flows keep this port busy. */
    bool busy() const { return _pool->busy(_id); }

    /** Set the delivery callback (wired by the Network facade). */
    void setDeliver(DeliverFn fn)
    {
        _pool->_io[_id].deliver = std::move(fn);
    }

    /**
     * Enqueue @p pkt for transmission. Returns false (and counts a
     * drop) when the buffer is full. Waking from LPI delays the
     * head-of-line transmission by the exit latency; @p extra_delay
     * adds switch-level wake/forwarding time.
     */
    bool sendPacket(const PacketPtr &pkt, Tick extra_delay = 0)
    {
        return _pool->sendPacket(_id, pkt, extra_delay);
    }

    /** @name Flow-model activity refcounting */
    ///@{
    /** A flow began traversing this port. */
    void flowStarted() { _pool->flowStarted(_id); }
    /** A flow stopped traversing this port. */
    void flowEnded() { _pool->flowEnded(_id); }
    unsigned activeFlows() const { return _pool->_activeFlows[_id]; }
    ///@}

    /**
     * Wake the port if it is in LPI; returns the exit latency the
     * caller must account for (0 when already active).
     */
    Tick wake() { return _pool->wake(_id); }

    /** Power the port off (unused ports). @pre !busy(). */
    void powerOff() { _pool->powerOff(_id); }

    /** @name Adaptive link rate */
    ///@{
    /** Set the operating rate as a fraction of line rate, in (0,1]. */
    void setRateFraction(double fraction)
    {
        _pool->setRateFraction(_id, fraction);
    }
    double rateFraction() const { return _pool->_rateFraction[_id]; }
    /** Effective serialization rate right now. */
    BitsPerSec currentRate() const { return _pool->currentRate(_id); }
    ///@}

    /** Instantaneous power. */
    Watts power() const { return _pool->power(_id); }

    /** @name Stats */
    ///@{
    std::uint64_t packetsSent() const { return _pool->_packetsSent[_id]; }
    std::uint64_t packetsDropped() const
    {
        return _pool->_packetsDropped[_id];
    }
    Bytes bytesSent() const { return _pool->_bytesSent[_id]; }
    std::size_t queueLength() const { return _pool->_io[_id].queue.size(); }
    const StateResidency &residency() const
    {
        return _pool->_residency[_id];
    }
    void finishStats(Tick now) { _pool->_residency[_id].finish(now); }
    /** Zero packet counters and residency (end of warmup). */
    void resetStats(Tick now);
    ///@}

  private:
    PortPool *_pool;
    unsigned _id;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_PORT_HH
