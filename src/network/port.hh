/**
 * @file
 * Switch port model: egress queue, serialization, LPI and adaptive
 * link rate (paper sections III-B and III-F).
 */

#ifndef HOLDCSIM_NETWORK_PORT_HH
#define HOLDCSIM_NETWORK_PORT_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "packet.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "switch_power.hh"

namespace holdcsim {

/** Port power states (paper: active, LPI, off). */
enum class PortState { active, lpi, off };

/**
 * One switch port driving one link direction. The port owns an
 * egress FIFO with bounded capacity; the head packet serializes at
 * the port's current (possibly ALR-reduced) rate. When the port has
 * had no queued packets and no registered flows for the profile's
 * LPI threshold, it drops into Low Power Idle; traffic arriving at
 * an LPI port pays the LPI exit latency.
 */
class Port
{
  public:
    /** Invoked before any power-relevant state change. */
    using AccrueFn = std::function<void()>;
    /** Invoked on busy/idle edges (line-card management). */
    using ActivityFn = std::function<void()>;
    /** Hands a fully serialized packet to the far end of the link. */
    using DeliverFn = std::function<void(const PacketPtr &)>;

    /**
     * @param sim       owning engine
     * @param id        port index within the switch
     * @param profile   power profile (not owned)
     * @param line_rate full line rate of the attached link
     * @param buffer_capacity max queued packets (excess are dropped)
     */
    Port(Simulator &sim, unsigned id, const SwitchPowerProfile &profile,
         BitsPerSec line_rate, std::size_t buffer_capacity,
         AccrueFn accrue, ActivityFn activity_changed);

    ~Port();
    Port(const Port &) = delete;
    Port &operator=(const Port &) = delete;

    unsigned id() const { return _id; }
    PortState state() const { return _state; }

    /** Whether traffic or registered flows keep this port busy. */
    bool busy() const
    {
        return _transmitting || !_queue.empty() || _activeFlows > 0;
    }

    /** Set the delivery callback (wired by the Network facade). */
    void setDeliver(DeliverFn fn) { _deliver = std::move(fn); }

    /**
     * Enqueue @p pkt for transmission. Returns false (and counts a
     * drop) when the buffer is full. Waking from LPI delays the
     * head-of-line transmission by the exit latency; @p extra_delay
     * adds switch-level wake/forwarding time.
     */
    bool sendPacket(const PacketPtr &pkt, Tick extra_delay = 0);

    /** @name Flow-model activity refcounting */
    ///@{
    /** A flow began traversing this port. */
    void flowStarted();
    /** A flow stopped traversing this port. */
    void flowEnded();
    unsigned activeFlows() const { return _activeFlows; }
    ///@}

    /**
     * Wake the port if it is in LPI; returns the exit latency the
     * caller must account for (0 when already active).
     */
    Tick wake();

    /** Power the port off (unused ports). @pre !busy(). */
    void powerOff();

    /** @name Adaptive link rate */
    ///@{
    /** Set the operating rate as a fraction of line rate, in (0,1]. */
    void setRateFraction(double fraction);
    double rateFraction() const { return _rateFraction; }
    /** Effective serialization rate right now. */
    BitsPerSec currentRate() const { return _lineRate * _rateFraction; }
    ///@}

    /** Instantaneous power. */
    Watts power() const;

    /** @name Stats */
    ///@{
    std::uint64_t packetsSent() const { return _packetsSent; }
    std::uint64_t packetsDropped() const { return _packetsDropped; }
    Bytes bytesSent() const { return _bytesSent; }
    std::size_t queueLength() const { return _queue.size(); }
    const StateResidency &residency() const { return _residency; }
    void finishStats(Tick now) { _residency.finish(now); }
    ///@}

  private:
    void setState(PortState next);
    void startNext(Tick extra_delay);
    void transmitDone();
    /** Arm the LPI timer if the port just went idle. */
    void maybeArmLpi();

    Simulator &_sim;
    unsigned _id;
    const SwitchPowerProfile &_profile;
    BitsPerSec _lineRate;
    std::size_t _bufferCapacity;
    AccrueFn _accrue;
    ActivityFn _activityChanged;
    DeliverFn _deliver;

    PortState _state = PortState::active;
    double _rateFraction = 1.0;
    unsigned _activeFlows = 0;

    std::deque<PacketPtr> _queue;
    bool _transmitting = false;
    PacketPtr _inFlight;
    EventFunctionWrapper _txDoneEvent;
    EventFunctionWrapper _lpiEvent;

    StateResidency _residency;
    std::uint64_t _packetsSent = 0;
    std::uint64_t _packetsDropped = 0;
    Bytes _bytesSent = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_PORT_HH
