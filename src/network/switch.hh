/**
 * @file
 * Network switch model (paper section III-B): chassis, line cards
 * and ports, with hierarchical power states, per-port packet queuing
 * and store-and-forward behavior.
 */

#ifndef HOLDCSIM_NETWORK_SWITCH_HH
#define HOLDCSIM_NETWORK_SWITCH_HH

#include <memory>
#include <vector>

#include "linecard.hh"
#include "packet.hh"
#include "port.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "switch_power.hh"

namespace holdcsim {

/** Static configuration for one switch. */
struct SwitchConfig {
    unsigned id = 0;
    /** Line rate of each port (one entry per port). */
    std::vector<BitsPerSec> portRates;
    /** Ports per line card. */
    unsigned portsPerLinecard = 24;
    /** Egress buffer capacity per port, in packets. */
    std::size_t portBufferCapacity = 128;
    /**
     * Whole-switch sleep: when every line card has gone to sleep
     * and this delay elapses, the switch itself sleeps (used by the
     * server/network cooperative study, section IV-D). maxTick
     * disables it.
     */
    Tick switchSleepDelay = maxTick;
};

/** A store-and-forward switch with hierarchical power management. */
class Switch : private PortHost, private TimerClient
{
  public:
    Switch(Simulator &sim, const SwitchConfig &config,
           const SwitchPowerProfile &profile);
    ~Switch();
    Switch(const Switch &) = delete;
    Switch &operator=(const Switch &) = delete;

    unsigned id() const { return _config.id; }
    std::size_t numPorts() const { return _ports.size(); }
    std::size_t numLineCards() const { return _linecards.size(); }
    Port &port(unsigned i) { return _ports.at(i); }
    const Port &port(unsigned i) const { return _ports.at(i); }
    LineCard &lineCard(unsigned i) { return *_linecards.at(i); }

    /** Whether the whole switch is in its sleep state. */
    bool asleep() const { return _asleep; }

    /**
     * Crash/repair the whole switch (fault subsystem). A failed
     * switch draws no power and drops every packet; route and flow
     * handling around it is the Network facade's job.
     */
    void setFailed(bool failed);
    bool failed() const { return _failed; }

    /**
     * Rouse everything needed to use port @p port_idx: the switch,
     * its line card and the port itself. Returns the total wake
     * latency to account for.
     */
    Tick wakeForActivity(unsigned port_idx);

    /**
     * Put the whole switch to sleep now. Returns false (and does
     * nothing) if any port is busy.
     */
    bool trySleep();

    /**
     * Forward @p pkt out of @p out_port, paying any switch/line
     * card/port wake latency plus the forwarding delay. Returns
     * false when the egress buffer overflowed (packet dropped).
     */
    bool forwardPacket(const PacketPtr &pkt, unsigned out_port);

    /** Per-hop processing delay through the switching fabric. */
    Tick forwardingDelay() const { return _forwardingDelay; }
    void setForwardingDelay(Tick d) { _forwardingDelay = d; }

    /** @name Flow-model notifications */
    ///@{
    /** A flow begins using in/out ports; returns total wake delay. */
    Tick flowStarted(unsigned in_port, unsigned out_port);
    void flowEnded(unsigned in_port, unsigned out_port);
    ///@}

    /** @name Power and energy */
    ///@{
    Watts power() const;
    Joules energy() const { return _energy; }
    void accrue();
    ///@}

    /** @name Stats */
    ///@{
    std::uint64_t packetsForwarded() const { return _packetsForwarded; }
    std::uint64_t packetsDropped() const;
    std::uint64_t sleepTransitions() const { return _sleepTransitions; }
    /** Residency over {awake=0, asleep=1}. */
    const StateResidency &residency() const { return _residency; }
    void finishStats();
    /** Zero energy, residency and counters (end of warmup). */
    void resetStats();
    ///@}

    Simulator &simulator() { return _sim; }
    const SwitchConfig &config() const { return _config; }

  private:
    /** @name PortHost interface (driven by the port pool) */
    ///@{
    void portAccrue() override { accrue(); }
    /** Route a port's busy/idle edge to its line card. */
    void portActivityChanged(unsigned port) override;
    ///@}
    /** TimerClient: the whole-switch sleep countdown expired. */
    void timerFired(std::uint64_t token, Tick deadline) override;
    void linecardStateChanged();
    void armSleep();
    void cancelSleep();
    void setAsleep(bool asleep);
    /** Emit the chassis state (awake/asleep/failed) to the tracer. */
    void traceState();

    Simulator &_sim;
    SwitchConfig _config;
    /** Owned copy: ports and line cards reference this copy, so a
     *  temporary profile argument cannot dangle. */
    SwitchPowerProfile _profile;

    /** Hot per-port state, struct-of-arrays (see port.hh). */
    PortPool _portPool;
    /** Thin per-port views (stable addresses; line cards point in). */
    std::vector<Port> _ports;
    std::vector<std::unique_ptr<LineCard>> _linecards;

    bool _asleep = false;
    bool _failed = false;
    Tick _forwardingDelay = 1 * usec;
    /** Wheel latched at construction; nullptr = private event. */
    TimerWheel *_wheel = nullptr;
    TimerWheel::Handle _sleepHandle;
    EventFunctionWrapper _sleepEvent;

    Tick _lastAccrue = 0;
    Joules _energy = 0.0;
    StateResidency _residency;
    std::uint64_t _packetsForwarded = 0;
    std::uint64_t _sleepTransitions = 0;

    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_SWITCH_HH
