#include "routing.hh"

#include <limits>
#include <queue>

#include "sim/logging.hh"

namespace holdcsim {

namespace {

constexpr std::uint32_t unreachable =
    std::numeric_limits<std::uint32_t>::max();

/** Cheap stateless mix for ECMP selection. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

StaticRouting::StaticRouting(const Topology &topo) : _topo(topo) {}

const StaticRouting::Table &
StaticRouting::tableFor(NodeId src)
{
    auto it = _tables.find(src);
    if (it != _tables.end())
        return it->second;

    ++_tableBuilds;
    Table table;
    table.dist.assign(_topo.numNodes(), unreachable);
    table.parentLinks.assign(_topo.numNodes(), {});
    std::queue<NodeId> frontier;
    if (nodeHealthy(src)) {
        table.dist[src] = 0;
        frontier.push(src);
    }
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop();
        for (LinkId l : _topo.linksAt(n)) {
            if (!linkHealthy(l))
                continue;
            NodeId m = _topo.otherEnd(l, n);
            if (!nodeHealthy(m))
                continue;
            if (table.dist[m] == unreachable) {
                table.dist[m] = table.dist[n] + 1;
                table.parentLinks[m].push_back(l);
                frontier.push(m);
            } else if (table.dist[m] == table.dist[n] + 1) {
                // Another equal-cost parent: remember it for ECMP.
                table.parentLinks[m].push_back(l);
            }
        }
    }
    return _tables.emplace(src, std::move(table)).first->second;
}

Route
StaticRouting::route(NodeId src, NodeId dst, std::uint64_t flow_key)
{
    if (src >= _topo.numNodes() || dst >= _topo.numNodes())
        fatal("route endpoint out of range");
    Route r;
    if (src == dst) {
        r.nodes.push_back(src);
        return r;
    }
    const Table &table = tableFor(src);
    if (table.dist[dst] == unreachable)
        fatal("no route from node ", src, " to node ", dst);

    // Walk back from dst to src choosing among equal-cost parents by
    // a per-(flow, hop) hash, then reverse.
    std::vector<LinkId> back_links;
    std::vector<NodeId> back_nodes{dst};
    NodeId cur = dst;
    while (cur != src) {
        const auto &parents = table.parentLinks[cur];
        std::uint64_t h =
            mix(flow_key ^ (static_cast<std::uint64_t>(cur) << 32) ^
                dst);
        LinkId chosen = parents[h % parents.size()];
        back_links.push_back(chosen);
        cur = _topo.otherEnd(chosen, cur);
        back_nodes.push_back(cur);
    }
    r.links.assign(back_links.rbegin(), back_links.rend());
    r.nodes.assign(back_nodes.rbegin(), back_nodes.rend());
    return r;
}

std::size_t
StaticRouting::hopCount(NodeId src, NodeId dst)
{
    if (src == dst)
        return 0;
    const Table &table = tableFor(src);
    if (table.dist[dst] == unreachable)
        fatal("no route from node ", src, " to node ", dst);
    return table.dist[dst];
}

bool
StaticRouting::reachable(NodeId src, NodeId dst)
{
    if (src >= _topo.numNodes() || dst >= _topo.numNodes())
        fatal("route endpoint out of range");
    if (src == dst)
        return nodeHealthy(src);
    return tableFor(src).dist[dst] != unreachable;
}

void
StaticRouting::setLinkHealth(LinkId link, bool up)
{
    if (link >= _topo.numLinks())
        fatal("link ", link, " out of range");
    if (linkHealthy(link) == up)
        return; // idempotent: no table churn
    if (_linkDown.empty())
        _linkDown.assign(_topo.numLinks(), false);
    _linkDown[link] = !up;
    _downCount += up ? -1 : 1;
    invalidate();
}

void
StaticRouting::setNodeHealth(NodeId node, bool up)
{
    if (node >= _topo.numNodes())
        fatal("node ", node, " out of range");
    if (nodeHealthy(node) == up)
        return;
    if (_nodeDown.empty())
        _nodeDown.assign(_topo.numNodes(), false);
    _nodeDown[node] = !up;
    _downCount += up ? -1 : 1;
    invalidate();
}

bool
StaticRouting::linkHealthy(LinkId link) const
{
    return _linkDown.empty() || !_linkDown[link];
}

bool
StaticRouting::nodeHealthy(NodeId node) const
{
    return _nodeDown.empty() || !_nodeDown[node];
}

} // namespace holdcsim
