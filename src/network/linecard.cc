#include "linecard.hh"

#include "sim/logging.hh"

namespace holdcsim {

LineCard::LineCard(Simulator &sim, unsigned id,
                   const SwitchPowerProfile &profile, AccrueFn accrue,
                   StateChangedFn state_changed)
    : _sim(sim), _id(id), _profile(profile),
      _accrue(std::move(accrue)),
      _stateChanged(std::move(state_changed)),
      _wheel(sim.timerWheel()),
      _sleepEvent([this] { sleepDeadline(); }, "linecard.sleep",
                  Event::powerPriority)
{
    _residency.enter(static_cast<int>(_state), sim.curTick());
}

LineCard::~LineCard()
{
    if (_sleepEvent.scheduled())
        _sim.deschedule(_sleepEvent);
    if (_wheel)
        _wheel->cancel(_sleepHandle);
}

void
LineCard::sleepDeadline()
{
    if (!anyPortActive() && _state == LineCardState::active)
        setState(LineCardState::sleep);
}

void
LineCard::timerFired(std::uint64_t, Tick)
{
    _sleepHandle = {}; // the firing handle is already dead
    sleepDeadline();
}

void
LineCard::armSleep(Tick delay)
{
    if (_wheel) {
        _wheel->cancel(_sleepHandle);
        _sleepHandle = _wheel->arm(*this, 0, delay);
    } else {
        _sim.reschedule(_sleepEvent, _sim.curTick() + delay);
    }
}

void
LineCard::cancelSleep()
{
    if (_wheel) {
        _wheel->cancel(_sleepHandle);
    } else if (_sleepEvent.scheduled()) {
        _sim.deschedule(_sleepEvent);
    }
}

bool
LineCard::anyPortActive() const
{
    for (const Port *p : _ports) {
        if (p->busy() || p->state() == PortState::active)
            return true;
    }
    return false;
}

void
LineCard::portActivityChanged()
{
    if (_state == LineCardState::off)
        return;
    if (anyPortActive()) {
        cancelSleep();
        return;
    }
    if (_state == LineCardState::active)
        armSleep(_profile.linecardSleepThreshold);
}

Tick
LineCard::wake()
{
    cancelSleep();
    switch (_state) {
      case LineCardState::active:
        return 0;
      case LineCardState::sleep:
        setState(LineCardState::active);
        return _profile.linecardWakeLatency;
      case LineCardState::off:
        fatal("cannot route traffic through a powered-off line card");
    }
    HOLDCSIM_PANIC("unknown LineCardState");
}

void
LineCard::powerOff()
{
    for (const Port *p : _ports) {
        if (p->busy())
            fatal("cannot power off a line card with busy ports");
    }
    cancelSleep();
    setState(LineCardState::off);
}

Watts
LineCard::power() const
{
    switch (_state) {
      case LineCardState::active:
        return _profile.linecardActive;
      case LineCardState::sleep:
        return _profile.linecardSleep;
      case LineCardState::off:
        return _profile.linecardOff;
    }
    HOLDCSIM_PANIC("unknown LineCardState");
}

void
LineCard::setState(LineCardState next)
{
    if (next == _state)
        return;
    _accrue();
    _state = next;
    _residency.enter(static_cast<int>(next), _sim.curTick());
    traceState();
    _stateChanged();
}

void
LineCard::setTraceLabel(std::string label)
{
    _traceLabel = std::move(label);
    traceState();
}

void
LineCard::traceState()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || _traceLabel.empty() ||
        !tr->wants(TraceCategory::network)) {
        return;
    }
    if (_traceTrack == noTraceTrack)
        _traceTrack = tr->track("network", _traceLabel);
    const char *name = _state == LineCardState::active ? "active"
                       : _state == LineCardState::sleep ? "sleep"
                                                        : "off";
    tr->transition(_traceTrack, TraceCategory::network, name,
                   _sim.curTick());
}

} // namespace holdcsim
