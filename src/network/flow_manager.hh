/**
 * @file
 * Flow-based communication (paper section III-B): dependent tasks
 * exchange data as flows that share link bandwidth max-min fairly.
 *
 * "Multiple flows or packets can simultaneously travel along a link
 * if it has not yet been saturated" -- the manager recomputes the
 * max-min fair allocation (progressive filling) whenever a flow
 * starts or finishes and reschedules each affected flow's completion
 * event accordingly.
 */

#ifndef HOLDCSIM_NETWORK_FLOW_MANAGER_HH
#define HOLDCSIM_NETWORK_FLOW_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "routing.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/trace_manager.hh"
#include "topology.hh"

namespace holdcsim {

/** Identifier of an in-flight flow. */
using FlowId = std::uint64_t;

/** Max-min fair flow scheduler over a topology. */
class FlowManager
{
  public:
    using FlowDoneFn = std::function<void()>;

    FlowManager(Simulator &sim, const Topology &topo);
    ~FlowManager();
    FlowManager(const FlowManager &) = delete;
    FlowManager &operator=(const FlowManager &) = delete;

    /**
     * Start a flow of @p bytes along @p route. The flow joins the
     * bandwidth competition after @p start_delay (switch wake time)
     * and @p on_done fires when the last byte is delivered.
     * A zero-hop route (local communication) completes after
     * start_delay alone.
     */
    FlowId startFlow(Route route, Bytes bytes, FlowDoneFn on_done,
                     Tick start_delay = 0);

    /** Number of flows currently transferring or pending start. */
    std::size_t activeFlows() const { return _flows.size(); }

    /** Current fair-share rate of @p flow (0 if pending/unknown). */
    BitsPerSec flowRate(FlowId flow) const;

    /**
     * Current utilization of link @p l in [0, 1]: the busier
     * direction's allocated share over capacity.
     */
    double linkUtilization(LinkId l) const;

    /**
     * Abort flow @p flow: its completion never fires and @p on_abort
     * (if set at start) is invoked. Returns whether the flow existed.
     */
    bool abortFlow(FlowId flow);

    /**
     * Abort every flow (active or pending) whose route traverses
     * link @p l -- the link just failed. Returns how many died.
     */
    std::size_t abortFlowsOn(LinkId l);

    /** Register the abort callback for flow @p flow. */
    void setAbortCallback(FlowId flow, FlowDoneFn on_abort);

    /** Completed-flow count and transfer-latency statistics. */
    std::uint64_t flowsCompleted() const { return _flowsCompleted; }
    /** Flows killed by faults/cancellation. */
    std::uint64_t flowsAborted() const { return _flowsAborted; }
    const Percentile &flowLatency() const { return _flowLatency; }

  private:
    /** A directed use of a link. */
    struct DirectedLink {
        LinkId link;
        bool forward; // traversal from LinkInfo::a toward b

        bool operator<(const DirectedLink &o) const
        {
            return link != o.link ? link < o.link
                                  : forward < o.forward;
        }
    };

    struct Flow {
        FlowId id;
        std::vector<DirectedLink> path;
        /** path as dense directed-link indices (link * 2 + forward). */
        std::vector<std::uint32_t> pathIdx;
        double remainingBits;
        BitsPerSec rate = 0.0;
        Tick lastUpdate = 0;
        Tick startedAt = 0;
        bool active = false;
        FlowDoneFn onDone;
        FlowDoneFn onAbort;
        std::unique_ptr<EventFunctionWrapper> completion;
        std::unique_ptr<EventFunctionWrapper> activation;
    };

    void activate(FlowId id);
    void finish(FlowId id);
    /** Tracer (and shared flows track) if flow tracing is on. */
    TraceManager *flowTracer();
    /** Debit elapsed transfer from every active flow. */
    void settleProgress();
    /** Recompute the max-min allocation and reschedule completions. */
    void reshare();

    Simulator &_sim;
    const Topology &_topo;
    std::map<FlowId, Flow> _flows;
    FlowId _nextId = 0;

    /**
     * reshare() scratch state, indexed by dense directed-link index
     * and reused across calls so the hot path never allocates after
     * the first reshare. Only entries listed in _touched are live;
     * _inUse marks them so each call touches O(active path hops)
     * entries, not O(topology links).
     */
    ///@{
    std::vector<double> _capLeft;      // remaining capacity
    std::vector<unsigned> _usersLeft;  // unfrozen flows crossing
    std::vector<std::uint8_t> _inUse;  // member of _touched this call
    std::vector<std::uint8_t> _isBottleneck; // snapshot, per round
    std::vector<std::uint32_t> _touched;     // live indices this call
    std::vector<Flow *> _unfrozen;           // round worklist
    ///@}

    std::uint64_t _flowsCompleted = 0;
    std::uint64_t _flowsAborted = 0;
    Percentile _flowLatency;

    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_FLOW_MANAGER_HH
