/**
 * @file
 * Flow-based communication (paper section III-B): dependent tasks
 * exchange data as flows that share link bandwidth max-min fairly.
 *
 * "Multiple flows or packets can simultaneously travel along a link
 * if it has not yet been saturated" -- the manager recomputes the
 * max-min fair allocation (progressive filling) whenever a flow
 * starts or finishes and reschedules each affected flow's completion
 * event accordingly.
 *
 * FlowManager is the *exact* backend of the NetModel tier: every
 * change re-solves the global fair-share problem. With a nonzero
 * fast-path threshold it doubles as the *hybrid* tier (exact solver
 * for long flows, analytic completion for short ones).
 */

#ifndef HOLDCSIM_NETWORK_FLOW_MANAGER_HH
#define HOLDCSIM_NETWORK_FLOW_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "fluid/net_model.hh"
#include "routing.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/trace_manager.hh"
#include "topology.hh"

namespace holdcsim {

/** Max-min fair flow scheduler over a topology (exact global solve). */
class FlowManager : public NetModel
{
  public:
    using FlowDoneFn = NetModel::FlowDoneFn;

    /**
     * @param fast_path_bytes transfers of at most this size complete
     *        analytically without entering the solver (0 = off; a
     *        nonzero value makes this the "hybrid" tier).
     */
    FlowManager(Simulator &sim, const Topology &topo,
                Bytes fast_path_bytes = 0);
    ~FlowManager() override;
    FlowManager(const FlowManager &) = delete;
    FlowManager &operator=(const FlowManager &) = delete;

    FlowId startFlow(Route route, Bytes bytes, FlowDoneFn on_done,
                     Tick start_delay = 0) override;

    /** Number of flows currently transferring or pending start. */
    std::size_t activeFlows() const override { return _flows.size(); }

    /** Current fair-share rate of @p flow (0 if pending/unknown). */
    BitsPerSec flowRate(FlowId flow) const override;

    /**
     * Current utilization of link @p l in [0, 1]: the busier
     * direction's allocated share over capacity.
     */
    double linkUtilization(LinkId l) const override;

    bool abortFlow(FlowId flow) override;
    std::size_t abortFlowsOn(LinkId l) override;
    void setAbortCallback(FlowId flow, FlowDoneFn on_abort) override;

    /**
     * No-op: the exact model re-solves everything on every change,
     * so there is no incremental state to invalidate.
     */
    void linkHealthChanged(LinkId l, bool healthy) override
    {
        (void)l;
        (void)healthy;
    }

    void beginBulkLoad() override { _bulk = true; }
    void endBulkLoad() override;

    /** Completed-flow count and transfer-latency statistics. */
    std::uint64_t flowsCompleted() const override
    {
        return _flowsCompleted;
    }
    /** Flows killed by faults/cancellation. */
    std::uint64_t flowsAborted() const override
    {
        return _flowsAborted;
    }
    const Percentile &flowLatency() const override
    {
        return _flowLatency;
    }

    const NetSolverStats &solverStats() const override
    {
        return _solverStats;
    }

    const char *modelName() const override
    {
        return _fastPathBytes > 0 ? "hybrid" : "exact";
    }

  private:
    /** A directed use of a link. */
    struct DirectedLink {
        LinkId link;
        bool forward; // traversal from LinkInfo::a toward b

        bool operator<(const DirectedLink &o) const
        {
            return link != o.link ? link < o.link
                                  : forward < o.forward;
        }
    };

    struct Flow {
        FlowId id;
        std::vector<DirectedLink> path;
        /** path as dense directed-link indices (link * 2 + forward). */
        std::vector<std::uint32_t> pathIdx;
        double remainingBits;
        BitsPerSec rate = 0.0;
        Tick lastUpdate = 0;
        Tick startedAt = 0;
        bool active = false;
        /** Completes analytically; never enters the solver. */
        bool fastPath = false;
        FlowDoneFn onDone;
        FlowDoneFn onAbort;
        std::unique_ptr<EventFunctionWrapper> completion;
        std::unique_ptr<EventFunctionWrapper> activation;
    };

    void activate(FlowId id);
    void finish(FlowId id);
    /** Tracer (and shared flows track) if flow tracing is on. */
    TraceManager *flowTracer();
    /** Debit elapsed transfer from every active flow. */
    void settleProgress();
    /** Recompute the max-min allocation and reschedule completions. */
    void reshare();
    /** Structured post-mortem + SimAbortError (solver got stuck). */
    [[noreturn]] void abortReshare(const std::string &what);

    Simulator &_sim;
    const Topology &_topo;
    std::map<FlowId, Flow> _flows;
    FlowId _nextId = 0;
    Bytes _fastPathBytes = 0;
    /** Inside a beginBulkLoad()/endBulkLoad() window. */
    bool _bulk = false;

    /**
     * reshare() scratch state, indexed by dense directed-link index
     * and reused across calls so the hot path never allocates after
     * the first reshare. Only entries listed in _touched are live;
     * _inUse marks them so each call touches O(active path hops)
     * entries, not O(topology links).
     */
    ///@{
    std::vector<double> _capLeft;      // remaining capacity
    std::vector<unsigned> _usersLeft;  // unfrozen flows crossing
    std::vector<std::uint8_t> _inUse;  // member of _touched this call
    std::vector<std::uint8_t> _isBottleneck; // snapshot, per round
    std::vector<std::uint32_t> _touched;     // live indices this call
    std::vector<Flow *> _unfrozen;           // round worklist
    ///@}

    std::uint64_t _flowsCompleted = 0;
    std::uint64_t _flowsAborted = 0;
    Percentile _flowLatency;
    NetSolverStats _solverStats;

    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_FLOW_MANAGER_HH
