/**
 * @file
 * Route computation over a Topology (paper section III-B: "the
 * routing path between a source and destination can be either
 * statically generated or dynamically computed").
 *
 * StaticRouting computes shortest paths by breadth-first search and
 * caches per-source next-hop tables on first use. When several
 * shortest paths exist, ECMP-style selection hashes a flow key over
 * the equal-cost candidates so distinct flows spread over the fabric
 * deterministically. invalidate() drops the caches so routes can be
 * recomputed after a (simulated) topology change.
 */

#ifndef HOLDCSIM_NETWORK_ROUTING_HH
#define HOLDCSIM_NETWORK_ROUTING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology.hh"

namespace holdcsim {

/** A route: the links to traverse, in order, from source to dest. */
struct Route {
    std::vector<LinkId> links;
    /** Nodes visited, source first, destination last. */
    std::vector<NodeId> nodes;

    std::size_t hops() const { return links.size(); }
    bool empty() const { return links.empty(); }
};

/** BFS shortest-path routing with ECMP tie-breaking. */
class StaticRouting
{
  public:
    /** @param topo routed topology (must outlive the router). */
    explicit StaticRouting(const Topology &topo);

    /**
     * Shortest route from @p src to @p dst. @p flow_key selects
     * among equal-cost paths (pass a flow/job id for ECMP spread;
     * the same key always yields the same path).
     */
    Route route(NodeId src, NodeId dst, std::uint64_t flow_key = 0);

    /** Hop count of the shortest path (0 when src == dst). */
    std::size_t hopCount(NodeId src, NodeId dst);

    /** Drop all cached tables (topology changed). */
    void invalidate() { _tables.clear(); }

    const Topology &topology() const { return _topo; }

  private:
    /** Per-source BFS result. */
    struct Table {
        /** Distance in hops from the source (maxTick = unreachable). */
        std::vector<std::uint32_t> dist;
        /**
         * For each node, every incident link that lies on some
         * shortest path back toward the source.
         */
        std::vector<std::vector<LinkId>> parentLinks;
    };

    const Table &tableFor(NodeId src);

    const Topology &_topo;
    std::unordered_map<NodeId, Table> _tables;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_ROUTING_HH
