/**
 * @file
 * Route computation over a Topology (paper section III-B: "the
 * routing path between a source and destination can be either
 * statically generated or dynamically computed").
 *
 * StaticRouting computes shortest paths by breadth-first search and
 * caches per-source next-hop tables on first use. When several
 * shortest paths exist, ECMP-style selection hashes a flow key over
 * the equal-cost candidates so distinct flows spread over the fabric
 * deterministically. invalidate() drops the caches so routes can be
 * recomputed after a (simulated) topology change.
 *
 * The router also carries a health mask over links and nodes so the
 * fault subsystem can take components out of the fabric: BFS simply
 * skips unhealthy elements. Health setters are idempotent -- tables
 * are rebuilt only when a component's health actually changes, never
 * per flow -- and restoring health restores the original paths.
 */

#ifndef HOLDCSIM_NETWORK_ROUTING_HH
#define HOLDCSIM_NETWORK_ROUTING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology.hh"

namespace holdcsim {

/** A route: the links to traverse, in order, from source to dest. */
struct Route {
    std::vector<LinkId> links;
    /** Nodes visited, source first, destination last. */
    std::vector<NodeId> nodes;

    std::size_t hops() const { return links.size(); }
    bool empty() const { return links.empty(); }
};

/** BFS shortest-path routing with ECMP tie-breaking. */
class StaticRouting
{
  public:
    /** @param topo routed topology (must outlive the router). */
    explicit StaticRouting(const Topology &topo);

    /**
     * Shortest route from @p src to @p dst. @p flow_key selects
     * among equal-cost paths (pass a flow/job id for ECMP spread;
     * the same key always yields the same path).
     */
    Route route(NodeId src, NodeId dst, std::uint64_t flow_key = 0);

    /** Hop count of the shortest path (0 when src == dst). */
    std::size_t hopCount(NodeId src, NodeId dst);

    /**
     * Whether @p dst can be reached from @p src over healthy
     * elements. Unlike route(), never fatals on a partition.
     */
    bool reachable(NodeId src, NodeId dst);

    /** Drop all cached tables (topology changed). */
    void invalidate() { _tables.clear(); }

    /** @name Component health (fault subsystem) */
    ///@{
    /**
     * Mark link @p link up/down. Idempotent: cached tables are only
     * invalidated when the health actually flips.
     */
    void setLinkHealth(LinkId link, bool up);

    /** Mark node @p node (switch) up/down; same idempotence. */
    void setNodeHealth(NodeId node, bool up);

    bool linkHealthy(LinkId link) const;
    bool nodeHealthy(NodeId node) const;

    /** Whether any link or node is currently marked down. */
    bool anyUnhealthy() const { return _downCount > 0; }
    ///@}

    /**
     * Number of per-source BFS table builds performed so far. A
     * regression handle: steady-state routing must not rebuild
     * tables per flow, only after health/topology changes.
     */
    std::uint64_t tableBuilds() const { return _tableBuilds; }

    const Topology &topology() const { return _topo; }

  private:
    /** Per-source BFS result. */
    struct Table {
        /** Distance in hops from the source (maxTick = unreachable). */
        std::vector<std::uint32_t> dist;
        /**
         * For each node, every incident link that lies on some
         * shortest path back toward the source.
         */
        std::vector<std::vector<LinkId>> parentLinks;
    };

    const Table &tableFor(NodeId src);

    const Topology &_topo;
    std::unordered_map<NodeId, Table> _tables;
    /** Per-link / per-node down flags (empty until first fault). */
    std::vector<bool> _linkDown;
    std::vector<bool> _nodeDown;
    std::size_t _downCount = 0;
    std::uint64_t _tableBuilds = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_NETWORK_ROUTING_HH
