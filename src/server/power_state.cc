#include "power_state.hh"

#include "sim/logging.hh"

namespace holdcsim {

std::string
toString(CoreCState s)
{
    switch (s) {
      case CoreCState::c0Active: return "C0-active";
      case CoreCState::c0Idle:   return "C0-idle";
      case CoreCState::c1:       return "C1";
      case CoreCState::c3:       return "C3";
      case CoreCState::c6:       return "C6";
    }
    HOLDCSIM_PANIC("unknown CoreCState");
}

std::string
toString(PkgCState s)
{
    switch (s) {
      case PkgCState::pc0: return "PC0";
      case PkgCState::pc2: return "PC2";
      case PkgCState::pc6: return "PC6";
    }
    HOLDCSIM_PANIC("unknown PkgCState");
}

std::string
toString(SState s)
{
    switch (s) {
      case SState::s0: return "S0";
      case SState::s3: return "S3";
      case SState::s5: return "S5";
    }
    HOLDCSIM_PANIC("unknown SState");
}

std::string
toString(ServerState s)
{
    switch (s) {
      case ServerState::active:   return "active";
      case ServerState::wakingUp: return "wake-up";
      case ServerState::idle:     return "idle";
      case ServerState::pkgC6:    return "pkg-c6";
      case ServerState::sysSleep: return "sys-sleep";
      case ServerState::failed:   return "failed";
    }
    HOLDCSIM_PANIC("unknown ServerState");
}

} // namespace holdcsim
