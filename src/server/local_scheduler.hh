/**
 * @file
 * Per-server local task scheduling (paper sections II and III-E).
 *
 * The local scheduler manages the buffering of tasks between the
 * global dispatcher and the cores. Two queue structures are modeled,
 * following the tail-latency study of Li et al. [37] that the paper
 * cites: a single unified server queue that any free core pulls
 * from, or per-core queues where each task is bound to a core at
 * enqueue time. For heterogeneous processors the core-pick policy
 * can prefer the fastest available core.
 */

#ifndef HOLDCSIM_SERVER_LOCAL_SCHEDULER_HH
#define HOLDCSIM_SERVER_LOCAL_SCHEDULER_HH

#include <deque>
#include <optional>
#include <vector>

#include "task.hh"

namespace holdcsim {

/** Queue structure between global dispatch and cores. */
enum class LocalQueueMode {
    /** One server-wide FIFO; free cores pull from it. */
    unified,
    /** One FIFO per core; tasks bound to a core on arrival. */
    perCore,
};

/** Core selection policy for per-core enqueue. */
enum class CorePickPolicy {
    /** Cycle through cores (the classic default). */
    roundRobin,
    /** Pick the core with the fewest queued tasks. */
    leastLoaded,
};

/** Task buffering for one server. */
class LocalScheduler
{
  public:
    LocalScheduler(LocalQueueMode mode, CorePickPolicy pick,
                   unsigned n_cores);

    /** Buffer a task (binds it to a core in perCore mode). */
    void enqueue(const TaskRef &task);

    /**
     * Next task for core @p core_id, if any. In unified mode any
     * core sees the head of the shared queue.
     */
    std::optional<TaskRef> dequeueFor(unsigned core_id);

    /** Whether core @p core_id could obtain a task right now. */
    bool hasWorkFor(unsigned core_id) const;

    /** Total buffered (not yet running) tasks. */
    std::size_t pending() const;

    /** Buffered tasks visible to core @p core_id. */
    std::size_t pendingFor(unsigned core_id) const;

    /**
     * Remove the buffered task identified by (@p job, @p task), if
     * present. Returns whether a task was removed.
     */
    bool remove(JobId job, TaskId task);

    /** Move every buffered task into @p out, leaving queues empty. */
    void drainAll(std::vector<TaskRef> &out);

    LocalQueueMode mode() const { return _mode; }

  private:
    LocalQueueMode _mode;
    CorePickPolicy _pick;
    unsigned _nCores;
    std::deque<TaskRef> _unified;
    std::vector<std::deque<TaskRef>> _perCore;
    unsigned _rrNext = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_LOCAL_SCHEDULER_HH
