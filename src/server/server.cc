#include "server.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace holdcsim {

namespace {

/**
 * Validate the profile and per-core frequency overrides, then expand
 * them into one base frequency per core. Runs in the member-init list
 * so the checks precede CorePool construction.
 */
std::vector<double>
coreFrequencies(const ServerConfig &config,
                const ServerPowerProfile &profile)
{
    profile.validate();
    if (config.nCores == 0)
        fatal("server needs at least one core");
    if (!config.coreFreqGhz.empty() &&
        config.coreFreqGhz.size() != config.nCores) {
        fatal("coreFreqGhz must be empty or have one entry per core");
    }
    if (!config.coreFreqGhz.empty())
        return config.coreFreqGhz;
    return std::vector<double>(config.nCores, profile.pstates[0].freqGhz);
}

} // namespace

Server::Server(Simulator &sim, const ServerConfig &config,
               const ServerPowerProfile &profile)
    : _sim(sim), _config(config), _profile(profile),
      _corePool(sim, *this, _profile, coreFrequencies(config, _profile)),
      _local(config.queueMode, config.corePick, config.nCores),
      _wakeDoneEvent([this] {
          accrue();
          _waking = false;
          _sstate = SState::s0;
          updateResidency();
          dispatch();
      }, "server.wakeDone", Event::powerPriority),
      _lastAccrue(sim.curTick())
{
    _cores.reserve(config.nCores);
    for (unsigned i = 0; i < config.nCores; ++i)
        _cores.emplace_back(_corePool, i);
    // Labels feed the timeline tracer only; skip the 2 * nCores heap
    // strings per server when no tracer is installed (100k-server
    // plants). DataCenter installs its tracer before the plant.
    if (sim.tracer()) {
        for (unsigned i = 0; i < config.nCores; ++i) {
            _cores[i].setTraceLabel("server" + std::to_string(id()) +
                                    ".core" + std::to_string(i));
        }
    }
    recomputePkgState();
    _residency.enter(static_cast<int>(observableState()), sim.curTick());
    traceState();
}

Server::~Server()
{
    // Controllers hold timer events against our simulator; destroy
    // them (and their events) before the cores.
    _controller.reset();
    if (_wakeDoneEvent.scheduled())
        _sim.deschedule(_wakeDoneEvent);
}

void
Server::setController(std::unique_ptr<ServerPowerController> ctrl)
{
    _controller = std::move(ctrl);
    if (_controller)
        _controller->attach(*this);
}

bool
Server::servesType(int type) const
{
    return _config.taskTypes.empty() || _config.taskTypes.count(type);
}

bool
Server::isIdle() const
{
    return !_failed && _sstate == SState::s0 && !_waking && load() == 0;
}

void
Server::submit(const TaskRef &task)
{
    if (_failed) {
        fatal("server ", id(), " given a task while failed "
              "(scheduler must skip crashed servers)");
    }
    if (!servesType(task.type)) {
        fatal("server ", id(), " does not serve task type ", task.type,
              " (scheduler bug or misconfiguration)");
    }
    _local.enqueue(task);
    if (_controller)
        _controller->becameBusy(*this);
    if (isAsleep()) {
        wakeUp();
        return;
    }
    if (!_waking)
        dispatch();
}

bool
Server::sleep(SState target)
{
    if (target == SState::s0)
        fatal("sleep target must be S3 or S5");
    if (_failed || _sstate != SState::s0 || _waking || load() != 0)
        return false;
    accrue();
    for (auto &core : _cores)
        core.forceDeepSleep();
    _sstate = target;
    ++_sleepTransitions;
    updateResidency();
    return true;
}

void
Server::wakeUp()
{
    if (_failed || _sstate == SState::s0 || _waking)
        return;
    accrue();
    _waking = true;
    ++_wakeTransitions;
    updateResidency();
    // Entry latency is folded into the wake path: a server roused
    // during/after suspend pays wake plus any residual entry time.
    _sim.scheduleAfter(_wakeDoneEvent,
                       _profile.s3WakeLatency +
                           _profile.s3EntryLatency);
}

std::vector<TaskRef>
Server::fail()
{
    if (_failed)
        HOLDCSIM_PANIC("server ", id(), " failed twice without repair");
    accrue(); // integrate pre-crash power before the rates drop to 0
    _failed = true;
    ++_failures;
    if (_wakeDoneEvent.scheduled())
        _sim.deschedule(_wakeDoneEvent);
    _waking = false;
    std::vector<TaskRef> killed;
    for (auto &core : _cores) {
        if (!core.busy())
            continue;
        Core::AbortResult aborted = core.abortTask();
        _wastedJoules += aborted.wasted;
        ++_tasksKilled;
        killed.push_back(aborted.task);
    }
    _running = 0;
    _local.drainAll(killed);
    // Settle the cores so no demotion timers (events or wheel
    // entries) tick while we are down; power is forced to zero by
    // componentPower() regardless.
    for (auto &core : _cores)
        core.forceDeepSleep();
    updateResidency();
    return killed;
}

void
Server::repair()
{
    if (!_failed)
        HOLDCSIM_PANIC("server ", id(), " repaired while healthy");
    accrue();
    _failed = false;
    _sstate = SState::s0;
    _waking = false;
    recomputePkgState();
    updateResidency();
    // The machine is back and idle: let the power controller arm its
    // usual idle management (delay timers etc.).
    if (_controller)
        _controller->becameIdle(*this);
}

bool
Server::cancelTask(JobId job, TaskId task)
{
    if (_local.remove(job, task)) {
        updateResidency();
        if (load() == 0 && _controller)
            _controller->becameIdle(*this);
        return true;
    }
    for (auto &core : _cores) {
        if (!core.busy() || core.currentTask().job != job ||
            core.currentTask().task != task) {
            continue;
        }
        Core::AbortResult aborted = core.abortTask();
        _wastedJoules += aborted.wasted;
        ++_tasksKilled;
        if (_running == 0)
            HOLDCSIM_PANIC("server ", id(), " cancelled an unaccounted task");
        --_running;
        updateResidency();
        dispatch(); // the freed core can pull buffered work
        if (load() == 0 && _controller)
            _controller->becameIdle(*this);
        return true;
    }
    return false;
}

void
Server::setAllowPkgC6(bool allow)
{
    if (_config.allowPkgC6 == allow)
        return;
    _config.allowPkgC6 = allow;
    recomputePkgState();
    updateResidency();
}

ServerState
Server::observableState() const
{
    if (_failed)
        return ServerState::failed;
    if (_waking)
        return ServerState::wakingUp;
    if (_sstate != SState::s0)
        return ServerState::sysSleep;
    if (_running > 0)
        return ServerState::active;
    if (_pkgState == PkgCState::pc6)
        return ServerState::pkgC6;
    return ServerState::idle;
}

Server::ComponentPower
Server::componentPower() const
{
    if (_failed)
        return {0.0, 0.0, 0.0};
    if (_waking) {
        // Wake-up burns near-idle-active power without doing work:
        // every component is powered but no instructions retire.
        return {_profile.pkgPc0 +
                    numCores() * _profile.coreC0Idle,
                _profile.dramActive, _profile.platformS0};
    }
    switch (_sstate) {
      case SState::s5:
        return {0.0, 0.0, _profile.platformS5};
      case SState::s3:
        return {0.0, _profile.dramSelfRefresh, _profile.platformS3};
      case SState::s0:
        break;
    }
    Watts cpu = 0.0;
    bool any_busy = false;
    for (const auto &core : _cores) {
        cpu += core.power();
        any_busy = any_busy || core.busy();
    }
    switch (_pkgState) {
      case PkgCState::pc0:
        cpu += _profile.pkgPc0;
        break;
      case PkgCState::pc2:
        cpu += _profile.pkgPc2;
        break;
      case PkgCState::pc6:
        cpu += _profile.pkgPc6;
        break;
    }
    Watts dram = any_busy ? _profile.dramActive
                          : (_pkgState == PkgCState::pc6
                                 ? _profile.dramSelfRefresh
                                 : _profile.dramIdle);
    return {cpu, dram, _profile.platformS0};
}

Watts
Server::power() const
{
    ComponentPower p = componentPower();
    return p.cpu + p.dram + p.platform;
}

void
Server::accrue()
{
    Tick now = _sim.curTick();
    if (now == _lastAccrue)
        return;
    if (now < _lastAccrue)
        HOLDCSIM_PANIC("server ", id(), " accrue() with time reversed");
    Tick dt = now - _lastAccrue;
    ComponentPower p = componentPower();
    _energy.cpu += energyOver(p.cpu, dt);
    _energy.dram += energyOver(p.dram, dt);
    _energy.platform += energyOver(p.platform, dt);
    _lastAccrue = now;
}

void
Server::finishStats()
{
    accrue();
    Tick now = _sim.curTick();
    _residency.finish(now);
    for (auto &core : _cores)
        core.finishStats(now);
}

void
Server::resetStats()
{
    accrue();
    _energy = EnergyBreakdown{};
    _tasksCompleted = 0;
    _wakeTransitions = 0;
    _sleepTransitions = 0;
    _failures = 0;
    _tasksKilled = 0;
    _wastedJoules = 0.0;
    Tick now = _sim.curTick();
    _residency.reset();
    _residency.enter(static_cast<int>(observableState()), now);
    for (auto &core : _cores)
        core.resetStats(now);
}

void
Server::dispatch()
{
    if (_failed || _sstate != SState::s0 || _waking || _inDispatch)
        return;
    _inDispatch = true;
    // Package C6 exit is paid once by the first task that rouses the
    // package; capture the state before any core wakes.
    Tick pkg_exit =
        _pkgState == PkgCState::pc6 ? _profile.pc6ExitLatency : 0;
    if (_local.mode() == LocalQueueMode::unified) {
        while (_local.pending() > 0) {
            // Prefer the fastest free core (heterogeneous-aware).
            Core *best = nullptr;
            for (auto &core : _cores) {
                if (core.busy())
                    continue;
                if (!best ||
                    core.frequencyGhz() > best->frequencyGhz()) {
                    best = &core;
                }
            }
            if (!best)
                break;
            auto task = _local.dequeueFor(best->id());
            ++_running;
            best->startTask(*task, pkg_exit);
            pkg_exit = 0;
        }
    } else {
        for (auto &core : _cores) {
            if (core.busy() || !_local.hasWorkFor(core.id()))
                continue;
            auto task = _local.dequeueFor(core.id());
            ++_running;
            core.startTask(*task, pkg_exit);
            pkg_exit = 0;
        }
    }
    _inDispatch = false;
    updateResidency();
}

void
Server::taskFinished(const TaskRef &task)
{
    if (_running == 0)
        HOLDCSIM_PANIC("server ", id(), " finished a task it never ran");
    --_running;
    ++_tasksCompleted;
    updateResidency();
    if (_taskDone)
        _taskDone(*this, task); // may submit follow-up work
    dispatch();
    if (load() == 0 && _controller)
        _controller->becameIdle(*this);
}

void
Server::recomputePkgState()
{
    if (_sstate != SState::s0)
        return; // package state is moot while suspended
    bool any_c0 = false;
    bool all_c6 = true;
    for (const auto &core : _cores) {
        CoreCState s = core.cstate();
        any_c0 = any_c0 || s == CoreCState::c0Active ||
                 s == CoreCState::c0Idle;
        all_c6 = all_c6 && s == CoreCState::c6;
    }
    PkgCState next = PkgCState::pc2;
    if (any_c0)
        next = PkgCState::pc0;
    else if (all_c6 && _config.allowPkgC6)
        next = PkgCState::pc6;
    if (next != _pkgState) {
        accrue();
        _pkgState = next;
    }
}

void
Server::updateResidency()
{
    auto s = static_cast<int>(observableState());
    if (s != _residency.currentState()) {
        _residency.enter(s, _sim.curTick());
        traceState();
    }
}

void
Server::traceState()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::server))
        return;
    if (_traceTrack == noTraceTrack) {
        _traceTrack =
            tr->track("servers", "server" + std::to_string(id()));
    }
    tr->transition(_traceTrack, TraceCategory::server,
                   toString(observableState()), _sim.curTick());
}

} // namespace holdcsim
