/**
 * @file
 * ACPI-based hierarchical power states for servers (paper section
 * III-A).
 *
 * The model follows the ACPI structure the paper describes: system
 * sleep states Sx define the power status of the whole platform;
 * while the system is in S0 the processor cores reside in C-states
 * (core level) and the package derives its own PC-state from its
 * cores; P-states (DVFS) set execution speed while in C0.
 */

#ifndef HOLDCSIM_SERVER_POWER_STATE_HH
#define HOLDCSIM_SERVER_POWER_STATE_HH

#include <string>

namespace holdcsim {

/** Core-level C-states. */
enum class CoreCState {
    /** Executing instructions. */
    c0Active,
    /** Clock running, no work (polling idle). */
    c0Idle,
    /** Halt: core clock gated. */
    c1,
    /** Deeper sleep: caches flushed progressively. */
    c3,
    /** Core power gated. */
    c6,
};

/** Package-level C-states, derived from the member cores. */
enum class PkgCState {
    /** At least one core active. */
    pc0,
    /** All cores idle but uncore still up. */
    pc2,
    /** Package power gated (all cores in C6, uncore down). */
    pc6,
};

/** ACPI system sleep states. */
enum class SState {
    /** Working. */
    s0,
    /** Suspend to RAM. */
    s3,
    /** Soft off. */
    s5,
};

/**
 * Observable server-level states used for residency accounting;
 * matches the categories of the paper's Figure 8: Active, Wake-up,
 * Idle, Pkg C6, System Sleep.
 */
enum class ServerState {
    /** At least one core executing a task. */
    active,
    /** Transitioning from a sleep state back to S0. */
    wakingUp,
    /** In S0 with no task executing, package not power-gated. */
    idle,
    /** In S0 with the package in PC6. */
    pkgC6,
    /** System sleep (S3 or S5). */
    sysSleep,
    /**
     * Crashed by the fault model: the machine is down and draws no
     * power until repaired. Appended after the paper's Figure 8
     * categories so their residency indices stay stable.
     */
    failed,
};

/** Human-readable state names (for logs and stat dumps). */
std::string toString(CoreCState s);
std::string toString(PkgCState s);
std::string toString(SState s);
std::string toString(ServerState s);

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_POWER_STATE_HH
