/**
 * @file
 * Hierarchical server power profiles (paper section III-F).
 *
 * A profile holds per-state component powers (core C-states, package
 * C-states, DRAM, platform), state-transition latencies, the DVFS
 * P-state table, and the core idle-governor demotion thresholds.
 * Users derive profiles from measurements (RAPL/IPMI) or modeling
 * tools (CACTI/McPAT); the built-in default is derived from public
 * data-sheet and measurement literature for the Intel Xeon E5-2680 v2
 * (10 cores) that the paper validates against.
 */

#ifndef HOLDCSIM_SERVER_POWER_PROFILE_HH
#define HOLDCSIM_SERVER_POWER_PROFILE_HH

#include <vector>

#include "sim/types.hh"

namespace holdcsim {

/** Component powers, transition latencies and DVFS table. */
struct ServerPowerProfile {
    /** @name Per-core power by C-state (watts) */
    ///@{
    Watts coreActive = 6.5;
    Watts coreC0Idle = 3.0;
    Watts coreC1 = 1.5;
    Watts coreC3 = 0.8;
    Watts coreC6 = 0.05;
    ///@}

    /** @name Package/uncore power by PC-state (watts) */
    ///@{
    Watts pkgPc0 = 10.0;
    Watts pkgPc2 = 5.0;
    Watts pkgPc6 = 1.0;
    ///@}

    /** @name DRAM power (watts) */
    ///@{
    Watts dramActive = 6.0;
    Watts dramIdle = 2.5;
    Watts dramSelfRefresh = 0.3;
    ///@}

    /** @name Platform power: PSU losses, fans, disk, NIC (watts) */
    ///@{
    Watts platformS0 = 45.0;
    Watts platformS3 = 4.0;
    Watts platformS5 = 1.0;
    ///@}

    /** @name C-state exit latencies */
    ///@{
    Tick c1ExitLatency = 2 * usec;
    Tick c3ExitLatency = 80 * usec;
    Tick c6ExitLatency = 100 * usec;
    /** Package C6 exit (paper: "less than 1 ms"). */
    Tick pc6ExitLatency = 600 * usec;
    ///@}

    /** @name System sleep (S3, suspend-to-RAM) transition latencies */
    ///@{
    Tick s3WakeLatency = 1500 * msec;
    Tick s3EntryLatency = 300 * msec;
    ///@}

    /** One DVFS operating point. */
    struct PState {
        /** Core clock at this P-state. */
        double freqGhz;
        /** Active-power multiplier relative to P0 (~ f * V^2). */
        double powerScale;
    };

    /** P-state table; index 0 is the nominal (highest) P-state. */
    std::vector<PState> pstates = {
        {2.8, 1.00}, {2.4, 0.72}, {2.0, 0.51},
        {1.6, 0.34}, {1.2, 0.21},
    };

    /**
     * @name Core idle-governor demotion thresholds
     * After this much idle time the governor demotes the core to the
     * respective C-state; maxTick disables a state.
     */
    ///@{
    Tick demoteC1After = 0;
    Tick demoteC3After = 100 * usec;
    Tick demoteC6After = 500 * usec;
    ///@}

    /** Throw FatalError if the profile is inconsistent. */
    void validate() const;

    /**
     * Default profile modeled after the Intel Xeon E5-2680 v2 server
     * used in the paper's validation (10 cores, 2.8 GHz nominal).
     */
    static ServerPowerProfile xeonE5_2680();

    /**
     * Profile scoped to what Intel RAPL reports (package domain
     * only): platform and DRAM contributions zeroed, used to mirror
     * the paper's Figure 12 server-power validation setup.
     */
    static ServerPowerProfile xeonE5_2680RaplOnly();
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_POWER_PROFILE_HH
