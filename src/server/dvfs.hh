/**
 * @file
 * Per-core DVFS governor (paper Table I lists per-core DVFS among
 * HolDCSim's power features; section III-A: "performance states can
 * be configured to determine the speed of instruction execution at
 * runtime").
 *
 * The governor periodically samples the server's load (tasks queued
 * plus running, normalized by core count) and retunes the P-state of
 * every *idle* core: heavily loaded servers run at P0, lightly
 * loaded ones drop to deeper P-states, trading task latency for
 * active power. Frequency changes apply at task boundaries (the
 * core model does not rescale a task mid-flight), which matches how
 * OS governors behave at millisecond granularity.
 */

#ifndef HOLDCSIM_SERVER_DVFS_HH
#define HOLDCSIM_SERVER_DVFS_HH

#include <cstdint>

#include "server.hh"
#include "sim/event.hh"

namespace holdcsim {

/** Governor thresholds and cadence. */
struct DvfsConfig {
    /** Load/cores above which cores run at P0. */
    double highWatermark = 0.75;
    /** Load/cores below which cores drop to the deepest P-state. */
    double lowWatermark = 0.25;
    /** Sampling period. */
    Tick interval = 10 * msec;
};

/** Utilization-driven P-state governor for one server. */
class DvfsGovernor
{
  public:
    DvfsGovernor(Server &server, const DvfsConfig &config);
    ~DvfsGovernor();
    DvfsGovernor(const DvfsGovernor &) = delete;
    DvfsGovernor &operator=(const DvfsGovernor &) = delete;

    void start();
    void stop();

    /** P-state the governor currently targets. */
    std::size_t targetPState() const { return _target; }

    /** Number of per-core P-state changes applied. */
    std::uint64_t transitions() const { return _transitions; }

  private:
    void tick();

    Server &_server;
    DvfsConfig _config;
    bool _running = false;
    std::size_t _target = 0;
    EventFunctionWrapper _tickEvent;
    std::uint64_t _transitions = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_DVFS_HH
