#include "power_controller.hh"

#include "sim/logging.hh"

namespace holdcsim {

// -------------------------------------------------------- DelayTimerController

DelayTimerController::DelayTimerController(Tick tau, SState target)
    : _tau(tau), _target(target)
{
    if (target == SState::s0)
        fatal("delay timer target must be a sleep state");
}

DelayTimerController::~DelayTimerController()
{
    if (_server && _timer && _timer->scheduled())
        _server->simulator().deschedule(*_timer);
}

void
DelayTimerController::attach(Server &server)
{
    _server = &server;
    _timer.emplace([this] { _server->sleep(_target); },
                   "delayTimer.fire", Event::powerPriority);
    if (server.isIdle())
        becameIdle(server);
}

void
DelayTimerController::becameBusy(Server &server)
{
    (void)server;
    if (_timer && _timer->scheduled())
        _server->simulator().deschedule(*_timer);
}

void
DelayTimerController::becameIdle(Server &server)
{
    if (!_timer)
        HOLDCSIM_PANIC("delay timer used before attach()");
    if (_tau == maxTick)
        return; // timer disabled: behave like Active-Idle
    server.simulator().reschedule(*_timer,
                                  server.simulator().curTick() + _tau);
}

void
DelayTimerController::setTau(Tick tau)
{
    _tau = tau;
    if (!_server || !_timer)
        return;
    if (_server->isIdle() && _tau != maxTick)
        becameIdle(*_server); // reschedule moves any live timer
    else if (_timer->scheduled())
        _server->simulator().deschedule(*_timer);
}

// -------------------------------------------------------- DeepSleepController

DeepSleepController::DeepSleepController(Tick s3_after)
    : _s3After(s3_after)
{}

DeepSleepController::~DeepSleepController()
{
    if (_server && _timer && _timer->scheduled())
        _server->simulator().deschedule(*_timer);
}

void
DeepSleepController::attach(Server &server)
{
    _server = &server;
    _timer.emplace([this] { _server->sleep(SState::s3); },
                   "deepSleep.fire", Event::powerPriority);
    if (server.isIdle())
        becameIdle(server);
}

void
DeepSleepController::becameBusy(Server &server)
{
    (void)server;
    if (_timer && _timer->scheduled())
        _server->simulator().deschedule(*_timer);
}

void
DeepSleepController::becameIdle(Server &server)
{
    if (!_timer)
        HOLDCSIM_PANIC("deep-sleep controller used before attach()");
    server.simulator().reschedule(*_timer,
                                  server.simulator().curTick() +
                                      _s3After);
}

} // namespace holdcsim
