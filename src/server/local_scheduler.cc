#include "local_scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace holdcsim {

LocalScheduler::LocalScheduler(LocalQueueMode mode, CorePickPolicy pick,
                               unsigned n_cores)
    : _mode(mode), _pick(pick), _nCores(n_cores)
{
    if (n_cores == 0)
        fatal("local scheduler needs at least one core");
    if (mode == LocalQueueMode::perCore)
        _perCore.resize(n_cores);
}

void
LocalScheduler::enqueue(const TaskRef &task)
{
    if (_mode == LocalQueueMode::unified) {
        _unified.push_back(task);
        return;
    }
    unsigned target = 0;
    if (_pick == CorePickPolicy::roundRobin) {
        target = _rrNext;
        _rrNext = (_rrNext + 1) % _nCores;
    } else {
        auto it = std::min_element(
            _perCore.begin(), _perCore.end(),
            [](const auto &a, const auto &b) {
                return a.size() < b.size();
            });
        target = static_cast<unsigned>(it - _perCore.begin());
    }
    _perCore[target].push_back(task);
}

std::optional<TaskRef>
LocalScheduler::dequeueFor(unsigned core_id)
{
    auto &q = _mode == LocalQueueMode::unified ? _unified
                                               : _perCore.at(core_id);
    if (q.empty())
        return std::nullopt;
    TaskRef t = q.front();
    q.pop_front();
    return t;
}

bool
LocalScheduler::hasWorkFor(unsigned core_id) const
{
    return _mode == LocalQueueMode::unified
               ? !_unified.empty()
               : !_perCore.at(core_id).empty();
}

std::size_t
LocalScheduler::pending() const
{
    if (_mode == LocalQueueMode::unified)
        return _unified.size();
    std::size_t total = 0;
    for (const auto &q : _perCore)
        total += q.size();
    return total;
}

std::size_t
LocalScheduler::pendingFor(unsigned core_id) const
{
    return _mode == LocalQueueMode::unified
               ? _unified.size()
               : _perCore.at(core_id).size();
}

bool
LocalScheduler::remove(JobId job, TaskId task)
{
    auto match = [&](const TaskRef &t) {
        return t.job == job && t.task == task;
    };
    if (_mode == LocalQueueMode::unified) {
        auto it = std::find_if(_unified.begin(), _unified.end(), match);
        if (it == _unified.end())
            return false;
        _unified.erase(it);
        return true;
    }
    for (auto &q : _perCore) {
        auto it = std::find_if(q.begin(), q.end(), match);
        if (it != q.end()) {
            q.erase(it);
            return true;
        }
    }
    return false;
}

void
LocalScheduler::drainAll(std::vector<TaskRef> &out)
{
    for (auto &t : _unified)
        out.push_back(t);
    _unified.clear();
    for (auto &q : _perCore) {
        for (auto &t : q)
            out.push_back(t);
        q.clear();
    }
}

} // namespace holdcsim
