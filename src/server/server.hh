/**
 * @file
 * Full server model (paper sections III-A and III-F).
 *
 * A Server is a multi-core machine with a local task queue, a DRAM
 * component, platform hardware (PSU, fans, disks), an ACPI system
 * sleep state machine (S0/S3/S5), and a hierarchical power model:
 * per-core C-states, a derived package C-state, DRAM power modes and
 * platform power. Tasks submitted while the server sleeps are
 * buffered and trigger an S3 wake that costs the profile's wake
 * latency at high power -- the effect at the heart of the delay-timer
 * case studies.
 *
 * Power policy is pluggable: a ServerPowerController is notified on
 * busy/idle transitions and drives sleep()/wakeUp().
 */

#ifndef HOLDCSIM_SERVER_SERVER_HH
#define HOLDCSIM_SERVER_SERVER_HH

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core.hh"
#include "local_scheduler.hh"
#include "power_profile.hh"
#include "power_state.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "task.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

class Server;

/**
 * Power-management policy hook. The server calls becameBusy() when
 * work arrives and becameIdle() when its last task completes; the
 * controller reacts by calling Server::sleep()/wakeUp(), typically
 * through delay-timer events.
 */
class ServerPowerController
{
  public:
    virtual ~ServerPowerController() = default;

    /** Called once when installed on @p server. */
    virtual void attach(Server &server) { (void)server; }

    /** The server has work again (task submitted or started). */
    virtual void becameBusy(Server &server) = 0;

    /** The server just ran out of work (no queued or running task). */
    virtual void becameIdle(Server &server) = 0;
};

/** Static configuration for one server. */
struct ServerConfig {
    /** Identifier used in callbacks and stats. */
    unsigned id = 0;
    /** Number of cores. */
    unsigned nCores = 4;
    /**
     * Per-core base frequencies (GHz) for heterogeneous processors;
     * empty means every core runs at the profile's P0 frequency.
     */
    std::vector<double> coreFreqGhz;
    /** Local queue structure. */
    LocalQueueMode queueMode = LocalQueueMode::unified;
    /** Core-pick policy for per-core queues. */
    CorePickPolicy corePick = CorePickPolicy::roundRobin;
    /** Whether the package may enter PC6. */
    bool allowPkgC6 = true;
    /** Task types this server serves; empty = all types. */
    std::set<int> taskTypes;
};

/** Per-component energy totals (paper Figure 9 breakdown). */
struct EnergyBreakdown {
    Joules cpu = 0.0;      ///< cores + package/uncore
    Joules dram = 0.0;     ///< memory
    Joules platform = 0.0; ///< PSU, fans, disk, NIC

    Joules total() const { return cpu + dram + platform; }
};

/** A complete simulated server. */
class Server : private CoreHost
{
  public:
    /** Completion callback: (server, finished task). */
    using TaskDoneFn = std::function<void(Server &, const TaskRef &)>;

    Server(Simulator &sim, const ServerConfig &config,
           const ServerPowerProfile &profile);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Deschedules any pending wake event. */
    ~Server();

    unsigned id() const { return _config.id; }
    unsigned numCores() const { return static_cast<unsigned>(_cores.size()); }
    Core &core(unsigned i) { return _cores.at(i); }
    const Core &core(unsigned i) const { return _cores.at(i); }

    /** Install the power-management policy (may be null). */
    void setController(std::unique_ptr<ServerPowerController> ctrl);
    ServerPowerController *controller() { return _controller.get(); }

    /** Set the task-completion callback. */
    void setTaskDoneCallback(TaskDoneFn fn) { _taskDone = std::move(fn); }

    /** Whether this server is configured to serve @p type tasks. */
    bool servesType(int type) const;

    /**
     * Submit a task. If the server sleeps, the task is buffered and
     * a wake transition starts; otherwise it is queued/dispatched
     * according to the local scheduler.
     */
    void submit(const TaskRef &task);

    /** @name Load introspection (global scheduler / policies) */
    ///@{
    /** Buffered tasks not yet running. */
    std::size_t pendingTasks() const { return _local.pending(); }
    /** Tasks currently executing on cores. */
    std::size_t runningTasks() const { return _running; }
    /** pending + running: the "pending jobs per server" load metric. */
    std::size_t load() const { return pendingTasks() + _running; }
    /** In S0, not waking, with no work at all. */
    bool isIdle() const;
    /** In S3/S5 (not waking). */
    bool isAsleep() const { return _sstate != SState::s0 && !_waking; }
    bool isWaking() const { return _waking; }
    ///@}

    /** @name Power control (used by controllers and global policies) */
    ///@{
    /**
     * Enter system sleep state @p target (S3 or S5). Ignored (returns
     * false) when tasks are running or queued, or when already
     * asleep/waking.
     */
    bool sleep(SState target = SState::s3);

    /** Begin waking from S3/S5 if asleep; no-op otherwise. */
    void wakeUp();

    /** Disallow/allow package C6 at runtime (WASP pools). */
    void setAllowPkgC6(bool allow);
    ///@}

    /** @name Fault injection (driven by the fault subsystem) */
    ///@{
    /**
     * Crash the machine. Every in-flight task is aborted (its partial
     * energy counted as wasted) and every buffered task discarded;
     * the killed tasks are returned so the global scheduler can retry
     * them elsewhere. Until repair() the server draws no power,
     * refuses submissions and reports ServerState::failed.
     * @pre !failed()
     */
    std::vector<TaskRef> fail();

    /**
     * Bring the machine back after a crash. The server reboots into
     * S0 idle with empty queues; any boot latency is assumed to be
     * part of the repair interval the fault model chose.
     * @pre failed()
     */
    void repair();

    /** Whether the machine is currently crashed. */
    bool failed() const { return _failed; }

    /**
     * Cancel one task, wherever it currently is (buffered or
     * executing). Used when a job fails and its siblings must not
     * keep burning cycles. Returns whether the task was found.
     */
    bool cancelTask(JobId job, TaskId task);
    ///@}

    /** Observable state per the paper's Figure 8 categories. */
    ServerState observableState() const;

    SState sstate() const { return _sstate; }
    PkgCState pkgState() const { return _pkgState; }

    /** @name Power and energy */
    ///@{
    /** Instantaneous total power draw. */
    Watts power() const;
    /** Component energies accrued so far (call accrue() first for
     *  up-to-the-tick figures). */
    const EnergyBreakdown &energy() const { return _energy; }
    /** Integrate energy up to the current simulated time. */
    void accrue();
    ///@}

    /** @name Statistics */
    ///@{
    const StateResidency &residency() const { return _residency; }
    std::uint64_t tasksCompleted() const { return _tasksCompleted; }
    std::uint64_t wakeTransitions() const { return _wakeTransitions; }
    std::uint64_t sleepTransitions() const { return _sleepTransitions; }
    /** Number of crashes injected into this server. */
    std::uint64_t failures() const { return _failures; }
    /** Tasks aborted mid-execution by crashes or cancellation. */
    std::uint64_t tasksKilled() const { return _tasksKilled; }
    /** Energy burned on executions that were later discarded. */
    Joules wastedJoules() const { return _wastedJoules; }
    /** Accrue energy and close residency books at the current tick. */
    void finishStats();
    /** Zero energies, residencies and counters (end of warmup). */
    void resetStats();
    ///@}

    Simulator &simulator() { return _sim; }
    const ServerPowerProfile &profile() const { return _profile; }
    const ServerConfig &config() const { return _config; }

  private:
    /** @name CoreHost interface (driven by the core pool) */
    ///@{
    void coreAccrue() override { accrue(); }
    void
    coreStateChanged() override
    {
        recomputePkgState();
        updateResidency();
    }
    void
    coreTaskDone(unsigned core, const TaskRef &task) override
    {
        (void)core;
        taskFinished(task);
    }
    ///@}

    /** Give every free core work while any is available. */
    void dispatch();
    /** Core @p core_id finished @p task. */
    void taskFinished(const TaskRef &task);
    /** Recompute the package C-state from core states. */
    void recomputePkgState();
    /** Update the observable-state residency tracker. */
    void updateResidency();
    /** Emit the current observable state to the timeline tracer. */
    void traceState();
    /** Component powers at this instant. */
    struct ComponentPower {
        Watts cpu, dram, platform;
    };
    ComponentPower componentPower() const;

    Simulator &_sim;
    ServerConfig _config;
    /** Owned copy: the server must not dangle if the caller's
     *  profile was a temporary. Cores reference this copy. */
    ServerPowerProfile _profile;

    /** Hot per-core state, struct-of-arrays (see core.hh). */
    CorePool _corePool;
    /** Thin per-core views into the pool (stable addresses). */
    std::vector<Core> _cores;
    LocalScheduler _local;
    std::unique_ptr<ServerPowerController> _controller;
    TaskDoneFn _taskDone;

    SState _sstate = SState::s0;
    bool _waking = false;
    bool _failed = false;
    PkgCState _pkgState = PkgCState::pc0;
    EventFunctionWrapper _wakeDoneEvent;

    std::size_t _running = 0;
    bool _inDispatch = false;

    Tick _lastAccrue = 0;
    EnergyBreakdown _energy;
    StateResidency _residency;
    std::uint64_t _tasksCompleted = 0;
    std::uint64_t _wakeTransitions = 0;
    std::uint64_t _sleepTransitions = 0;
    std::uint64_t _failures = 0;
    std::uint64_t _tasksKilled = 0;
    Joules _wastedJoules = 0.0;

    /** Cached timeline track (resolved on first traced transition). */
    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_SERVER_HH
