#include "dvfs.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace holdcsim {

DvfsGovernor::DvfsGovernor(Server &server, const DvfsConfig &config)
    : _server(server), _config(config),
      _tickEvent([this] { tick(); }, "dvfs.tick",
                 Event::powerPriority)
{
    if (config.lowWatermark >= config.highWatermark)
        fatal("DVFS governor needs lowWatermark < highWatermark");
    if (config.interval == 0)
        fatal("DVFS interval must be positive");
    _tickEvent.setBackground(true);
}

DvfsGovernor::~DvfsGovernor()
{
    if (_tickEvent.scheduled())
        _server.simulator().deschedule(_tickEvent);
}

void
DvfsGovernor::start()
{
    _running = true;
    _server.simulator().reschedule(
        _tickEvent, _server.simulator().curTick() + _config.interval);
}

void
DvfsGovernor::stop()
{
    _running = false;
    if (_tickEvent.scheduled())
        _server.simulator().deschedule(_tickEvent);
}

void
DvfsGovernor::tick()
{
    const auto n_pstates = _server.profile().pstates.size();
    double util = static_cast<double>(_server.load()) /
                  static_cast<double>(_server.numCores());

    // Map utilization linearly onto the P-state table: at or above
    // the high watermark run flat out; at or below the low one use
    // the deepest state.
    std::size_t target;
    if (util >= _config.highWatermark) {
        target = 0;
    } else if (util <= _config.lowWatermark) {
        target = n_pstates - 1;
    } else {
        double span = _config.highWatermark - _config.lowWatermark;
        double frac = (util - _config.lowWatermark) / span; // (0,1)
        target = static_cast<std::size_t>(
            std::lround((1.0 - frac) *
                        static_cast<double>(n_pstates - 1)));
    }
    _target = target;

    // Apply at task boundaries: only idle cores retune now; busy
    // cores pick the new state up after their current task.
    for (unsigned c = 0; c < _server.numCores(); ++c) {
        Core &core = _server.core(c);
        if (!core.busy() && core.pstate() != target) {
            core.setPState(target);
            ++_transitions;
        }
    }

    if (_running) {
        _server.simulator().scheduleAfter(_tickEvent,
                                          _config.interval);
    }
}

} // namespace holdcsim
