#include "core.hh"

#include "sim/logging.hh"

namespace holdcsim {

Core::Core(Simulator &sim, unsigned id, const ServerPowerProfile &profile,
           double base_freq_ghz, AccrueFn accrue,
           StateChangedFn state_changed)
    : _sim(sim), _id(id), _profile(profile),
      _baseFreqGhz(base_freq_ghz), _accrue(std::move(accrue)),
      _stateChanged(std::move(state_changed)),
      _completionEvent([this] {
          // Task done: hand the result up, then fall idle.
          TaskRef finished = _current;
          TaskDoneFn done = std::move(_done);
          _done = nullptr;
          ++_tasksExecuted;
          setCState(CoreCState::c0Idle);
          armDemotion();
          if (done)
              done(finished);
      }, "core.completion"),
      _demotionEvent([this] { demote(); }, "core.demotion",
                     Event::powerPriority)
{
    if (base_freq_ghz <= 0.0)
        fatal("core base frequency must be positive");
    _residency.enter(static_cast<int>(_cstate), sim.curTick());
    armDemotion();
}

Core::~Core()
{
    if (_completionEvent.scheduled())
        _sim.deschedule(_completionEvent);
    if (_demotionEvent.scheduled())
        _sim.deschedule(_demotionEvent);
}

double
Core::frequencyGhz() const
{
    const auto &ps = _profile.pstates;
    return _baseFreqGhz * ps[_pstate].freqGhz / ps[0].freqGhz;
}

void
Core::setPState(std::size_t idx)
{
    if (idx >= _profile.pstates.size())
        fatal("P-state ", idx, " out of range");
    if (busy())
        fatal("changing P-state mid-task is not modeled");
    if (idx == _pstate)
        return;
    _accrue();
    _pstate = idx;
    if (TraceManager *tr = _sim.tracer();
        tr && !_traceLabel.empty() && tr->wants(TraceCategory::core)) {
        if (_traceTrack == noTraceTrack)
            _traceTrack = tr->track("cores", _traceLabel);
        tr->instant(_traceTrack, TraceCategory::core,
                    "P" + std::to_string(idx), _sim.curTick());
    }
    _stateChanged();
}

Tick
Core::exitLatency(CoreCState from) const
{
    switch (from) {
      case CoreCState::c0Active:
      case CoreCState::c0Idle:
        return 0;
      case CoreCState::c1:
        return _profile.c1ExitLatency;
      case CoreCState::c3:
        return _profile.c3ExitLatency;
      case CoreCState::c6:
        return _profile.c6ExitLatency;
    }
    HOLDCSIM_PANIC("unknown CoreCState");
}

Tick
Core::processingTime(const TaskRef &task) const
{
    double ratio = _profile.pstates[0].freqGhz / frequencyGhz();
    double scaled = static_cast<double>(task.serviceTime) *
                    (task.computeIntensity * ratio +
                     (1.0 - task.computeIntensity));
    Tick t = static_cast<Tick>(scaled + 0.5);
    return t > 0 ? t : 1;
}

void
Core::startTask(const TaskRef &task, Tick extra_wake, TaskDoneFn done)
{
    if (busy())
        HOLDCSIM_PANIC("core ", _id, " given a task while busy");
    Tick wake = exitLatency(_cstate) + extra_wake;
    if (_demotionEvent.scheduled())
        _sim.deschedule(_demotionEvent);
    setCState(CoreCState::c0Active);
    _current = task;
    _done = std::move(done);
    _startedAt = _sim.curTick();
    // The wake latency delays the task but the core is already
    // powered up (C0) while exiting, so C0-active power during the
    // exit window is a close approximation.
    _sim.scheduleAfter(_completionEvent, wake + processingTime(task));
}

Watts
Core::power() const
{
    switch (_cstate) {
      case CoreCState::c0Active:
        return _profile.coreActive * _profile.pstates[_pstate].powerScale;
      case CoreCState::c0Idle:
        return _profile.coreC0Idle;
      case CoreCState::c1:
        return _profile.coreC1;
      case CoreCState::c3:
        return _profile.coreC3;
      case CoreCState::c6:
        return _profile.coreC6;
    }
    HOLDCSIM_PANIC("unknown CoreCState");
}

void
Core::setCState(CoreCState next)
{
    if (next == _cstate)
        return;
    _accrue();
    _cstate = next;
    _residency.enter(static_cast<int>(next), _sim.curTick());
    traceCState();
    _stateChanged();
}

void
Core::setTraceLabel(std::string label)
{
    _traceLabel = std::move(label);
    // Open the initial state's slice right away so the timeline
    // starts at construction, not at the first transition.
    traceCState();
}

void
Core::traceCState()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || _traceLabel.empty() || !tr->wants(TraceCategory::core))
        return;
    if (_traceTrack == noTraceTrack)
        _traceTrack = tr->track("cores", _traceLabel);
    tr->transition(_traceTrack, TraceCategory::core, toString(_cstate),
                   _sim.curTick());
}

void
Core::armDemotion()
{
    if (busy())
        return;
    // Pick the next deeper state this governor is configured for.
    Tick delay = 0;
    switch (_cstate) {
      case CoreCState::c0Idle:
        delay = _profile.demoteC1After;
        break;
      case CoreCState::c1:
        delay = _profile.demoteC3After;
        break;
      case CoreCState::c3:
        delay = _profile.demoteC6After;
        break;
      default:
        return; // c6: nowhere deeper to go
    }
    if (delay == maxTick)
        return; // state disabled
    _sim.reschedule(_demotionEvent, _sim.curTick() + delay);
}

void
Core::demote()
{
    if (busy())
        return; // raced with a task start; harmless
    switch (_cstate) {
      case CoreCState::c0Idle:
        setCState(CoreCState::c1);
        break;
      case CoreCState::c1:
        setCState(CoreCState::c3);
        break;
      case CoreCState::c3:
        setCState(CoreCState::c6);
        break;
      default:
        return;
    }
    armDemotion();
}

Core::AbortResult
Core::abortTask()
{
    if (!busy())
        HOLDCSIM_PANIC("core ", _id, " aborted with no task running");
    Tick ran = _sim.curTick() - _startedAt;
    // Energy burned so far at the current operating point is wasted:
    // the partial execution is discarded and will be redone.
    AbortResult out{_current, energyOver(power(), ran), ran};
    if (_completionEvent.scheduled())
        _sim.deschedule(_completionEvent);
    _done = nullptr;
    setCState(CoreCState::c0Idle);
    armDemotion();
    return out;
}

void
Core::forceDeepSleep()
{
    if (busy())
        HOLDCSIM_PANIC("core ", _id, " forced to sleep while busy");
    if (_demotionEvent.scheduled())
        _sim.deschedule(_demotionEvent);
    setCState(CoreCState::c6);
}

} // namespace holdcsim
