#include "core.hh"

#include "sim/logging.hh"

namespace holdcsim {

CorePool::CorePool(Simulator &sim, CoreHost &host,
                   const ServerPowerProfile &profile,
                   std::vector<double> base_freqs_ghz)
    : _sim(sim), _host(host), _profile(profile),
      _wheel(sim.timerWheel())
{
    const unsigned n = static_cast<unsigned>(base_freqs_ghz.size());
    for (double f : base_freqs_ghz)
        if (f <= 0.0)
            fatal("core base frequency must be positive");

    _cstate.assign(n, CoreCState::c0Idle);
    _pstate.assign(n, 0);
    _baseFreqGhz = std::move(base_freqs_ghz);
    _current.assign(n, TaskRef{});
    _startedAt.assign(n, 0);
    _tasksExecuted.assign(n, 0);
    _residency.resize(n);
    _demotion.resize(n);
    _traceLabel.resize(n);
    _traceTrack.assign(n, noTraceTrack);

    const Tick now = sim.curTick();
    for (unsigned c = 0; c < n; ++c) {
        _completionEvents.emplace_back([this, c] { complete(c); },
                                       "core.completion");
        if (!_wheel)
            _demotionEvents.emplace_back([this, c] { demote(c); },
                                         "core.demotion",
                                         Event::powerPriority);
        _residency[c].enter(static_cast<int>(_cstate[c]), now);
        armDemotion(c);
    }
}

CorePool::~CorePool()
{
    for (auto &ev : _completionEvents)
        if (ev.scheduled())
            _sim.deschedule(ev);
    for (auto &ev : _demotionEvents)
        if (ev.scheduled())
            _sim.deschedule(ev);
    if (_wheel)
        for (auto &h : _demotion)
            _wheel->cancel(h);
}

void
CorePool::timerFired(std::uint64_t token, Tick)
{
    const unsigned c = static_cast<unsigned>(token);
    _demotion[c] = {}; // the firing handle is already dead
    demote(c);
}

double
CorePool::frequencyGhz(unsigned c) const
{
    const auto &ps = _profile.pstates;
    return _baseFreqGhz[c] * ps[_pstate[c]].freqGhz / ps[0].freqGhz;
}

void
CorePool::setPState(unsigned c, std::size_t idx)
{
    if (idx >= _profile.pstates.size())
        fatal("P-state ", idx, " out of range");
    if (busy(c))
        fatal("changing P-state mid-task is not modeled");
    if (idx == _pstate[c])
        return;
    _host.coreAccrue();
    _pstate[c] = idx;
    if (TraceManager *tr = _sim.tracer();
        tr && !_traceLabel[c].empty() && tr->wants(TraceCategory::core)) {
        if (_traceTrack[c] == noTraceTrack)
            _traceTrack[c] = tr->track("cores", _traceLabel[c]);
        tr->instant(_traceTrack[c], TraceCategory::core,
                    "P" + std::to_string(idx), _sim.curTick());
    }
    _host.coreStateChanged();
}

Tick
CorePool::exitLatency(CoreCState from) const
{
    switch (from) {
      case CoreCState::c0Active:
      case CoreCState::c0Idle:
        return 0;
      case CoreCState::c1:
        return _profile.c1ExitLatency;
      case CoreCState::c3:
        return _profile.c3ExitLatency;
      case CoreCState::c6:
        return _profile.c6ExitLatency;
    }
    HOLDCSIM_PANIC("unknown CoreCState");
}

Tick
CorePool::processingTime(unsigned c, const TaskRef &task) const
{
    double ratio = _profile.pstates[0].freqGhz / frequencyGhz(c);
    double scaled = static_cast<double>(task.serviceTime) *
                    (task.computeIntensity * ratio +
                     (1.0 - task.computeIntensity));
    // Saturate: casting a double beyond Tick's range is UB, and a
    // huge service time at a slow P-state can overflow 2^64 ns.
    if (!(scaled + 0.5 < static_cast<double>(maxTick)))
        return maxTick;
    Tick t = static_cast<Tick>(scaled + 0.5);
    return t > 0 ? t : 1;
}

void
CorePool::startTask(unsigned c, const TaskRef &task, Tick extra_wake)
{
    if (busy(c))
        HOLDCSIM_PANIC("core ", c, " given a task while busy");
    Tick wake = exitLatency(_cstate[c]) + extra_wake;
    cancelDemotion(c);
    setCState(c, CoreCState::c0Active);
    _current[c] = task;
    _startedAt[c] = _sim.curTick();
    // The wake latency delays the task but the core is already
    // powered up (C0) while exiting, so C0-active power during the
    // exit window is a close approximation.
    _sim.scheduleAfter(_completionEvents[c],
                       wake + processingTime(c, task));
}

void
CorePool::complete(unsigned c)
{
    // Task done: hand the result up, then fall idle.
    TaskRef finished = _current[c];
    ++_tasksExecuted[c];
    setCState(c, CoreCState::c0Idle);
    armDemotion(c);
    _host.coreTaskDone(c, finished);
}

Watts
CorePool::power(unsigned c) const
{
    switch (_cstate[c]) {
      case CoreCState::c0Active:
        return _profile.coreActive *
               _profile.pstates[_pstate[c]].powerScale;
      case CoreCState::c0Idle:
        return _profile.coreC0Idle;
      case CoreCState::c1:
        return _profile.coreC1;
      case CoreCState::c3:
        return _profile.coreC3;
      case CoreCState::c6:
        return _profile.coreC6;
    }
    HOLDCSIM_PANIC("unknown CoreCState");
}

void
CorePool::setCState(unsigned c, CoreCState next)
{
    if (next == _cstate[c])
        return;
    _host.coreAccrue();
    _cstate[c] = next;
    _residency[c].enter(static_cast<int>(next), _sim.curTick());
    traceCState(c);
    _host.coreStateChanged();
}

void
CorePool::setTraceLabel(unsigned c, std::string label)
{
    _traceLabel[c] = std::move(label);
    // Open the initial state's slice right away so the timeline
    // starts at construction, not at the first transition.
    traceCState(c);
}

void
CorePool::traceCState(unsigned c)
{
    TraceManager *tr = _sim.tracer();
    if (!tr || _traceLabel[c].empty() || !tr->wants(TraceCategory::core))
        return;
    if (_traceTrack[c] == noTraceTrack)
        _traceTrack[c] = tr->track("cores", _traceLabel[c]);
    tr->transition(_traceTrack[c], TraceCategory::core,
                   toString(_cstate[c]), _sim.curTick());
}

void
CorePool::armDemotion(unsigned c)
{
    if (busy(c))
        return;
    // Pick the next deeper state this governor is configured for.
    Tick delay = 0;
    switch (_cstate[c]) {
      case CoreCState::c0Idle:
        delay = _profile.demoteC1After;
        break;
      case CoreCState::c1:
        delay = _profile.demoteC3After;
        break;
      case CoreCState::c3:
        delay = _profile.demoteC6After;
        break;
      default:
        return; // c6: nowhere deeper to go
    }
    if (delay == maxTick)
        return; // state disabled
    if (_wheel) {
        _wheel->cancel(_demotion[c]);
        _demotion[c] = _wheel->arm(*this, c, delay);
    } else {
        _sim.reschedule(_demotionEvents[c], _sim.curTick() + delay);
    }
}

void
CorePool::cancelDemotion(unsigned c)
{
    if (_wheel) {
        _wheel->cancel(_demotion[c]);
    } else if (_demotionEvents[c].scheduled()) {
        _sim.deschedule(_demotionEvents[c]);
    }
}

void
CorePool::demote(unsigned c)
{
    if (busy(c))
        return; // raced with a task start; harmless
    switch (_cstate[c]) {
      case CoreCState::c0Idle:
        setCState(c, CoreCState::c1);
        break;
      case CoreCState::c1:
        setCState(c, CoreCState::c3);
        break;
      case CoreCState::c3:
        setCState(c, CoreCState::c6);
        break;
      default:
        return;
    }
    armDemotion(c);
}

void
CorePool::forceDeepSleep(unsigned c)
{
    if (busy(c))
        HOLDCSIM_PANIC("core ", c, " forced to sleep while busy");
    cancelDemotion(c);
    setCState(c, CoreCState::c6);
}

Core::AbortResult
Core::abortTask()
{
    CorePool &p = *_pool;
    const unsigned c = _id;
    if (!busy())
        HOLDCSIM_PANIC("core ", c, " aborted with no task running");
    Tick ran = p._sim.curTick() - p._startedAt[c];
    // Energy burned so far at the current operating point is wasted:
    // the partial execution is discarded and will be redone.
    AbortResult out{p._current[c], energyOver(p.power(c), ran), ran};
    if (p._completionEvents[c].scheduled())
        p._sim.deschedule(p._completionEvents[c]);
    p.setCState(c, CoreCState::c0Idle);
    p.armDemotion(c);
    return out;
}

} // namespace holdcsim
