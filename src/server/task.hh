/**
 * @file
 * The unit of work a server executes: a reference to one task of one
 * job, carrying everything the server needs to run it.
 */

#ifndef HOLDCSIM_SERVER_TASK_HH
#define HOLDCSIM_SERVER_TASK_HH

#include "sim/types.hh"
#include "workload/job.hh"

namespace holdcsim {

/**
 * A dispatched task. The global scheduler creates one TaskRef per
 * task when it assigns the task to a server; the server reports it
 * back through the completion callback.
 */
struct TaskRef {
    /** Job this task belongs to. */
    JobId job = 0;
    /** Task index within the job. */
    TaskId task = 0;
    /** Execution-time requirement at the nominal core frequency. */
    Tick serviceTime = 0;
    /** Fraction of serviceTime that scales with core frequency. */
    double computeIntensity = 1.0;
    /** Task type, for type-restricted servers. */
    int type = 0;
    /** Orchestration group of the owning job (-1 = untagged). */
    int orchGroup = -1;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_TASK_HH
