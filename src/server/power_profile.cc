#include "power_profile.hh"

#include "sim/logging.hh"

namespace holdcsim {

void
ServerPowerProfile::validate() const
{
    if (pstates.empty())
        fatal("power profile needs at least one P-state");
    for (const auto &p : pstates) {
        if (p.freqGhz <= 0.0 || p.powerScale <= 0.0)
            fatal("P-state frequencies and power scales must be positive");
    }
    for (std::size_t i = 1; i < pstates.size(); ++i) {
        if (pstates[i].freqGhz > pstates[i - 1].freqGhz)
            fatal("P-states must be ordered fastest first");
    }
    if (coreActive < coreC0Idle || coreC0Idle < coreC1 ||
        coreC1 < coreC3 || coreC3 < coreC6 || coreC6 < 0.0) {
        fatal("core C-state powers must decrease with state depth");
    }
    if (pkgPc0 < pkgPc2 || pkgPc2 < pkgPc6 || pkgPc6 < 0.0)
        fatal("package C-state powers must decrease with state depth");
    if (dramActive < dramIdle || dramIdle < dramSelfRefresh ||
        dramSelfRefresh < 0.0) {
        fatal("DRAM powers must decrease with state depth");
    }
    if (platformS0 < platformS3 || platformS3 < platformS5 ||
        platformS5 < 0.0) {
        fatal("platform powers must decrease with state depth");
    }
}

ServerPowerProfile
ServerPowerProfile::xeonE5_2680()
{
    // The class defaults are the E5-2680 v2 numbers.
    return ServerPowerProfile{};
}

ServerPowerProfile
ServerPowerProfile::xeonE5_2680RaplOnly()
{
    ServerPowerProfile p;
    // RAPL's package domain excludes DRAM (separate domain) and the
    // rest of the platform; zero them so simulated power is directly
    // comparable to package-power measurements.
    p.dramActive = p.dramIdle = p.dramSelfRefresh = 0.0;
    p.platformS0 = p.platformS3 = p.platformS5 = 0.0;
    return p;
}

} // namespace holdcsim
