/**
 * @file
 * Processor core model (paper section III-A).
 *
 * Each core is a processing unit that serves one task at a time. The
 * task processing time is determined by the task's service time, the
 * core's operating frequency (P-state and per-core base frequency for
 * heterogeneous processors), and the task's computation
 * intensiveness. When idle, the built-in idle governor demotes the
 * core through progressively deeper C-states after the profile's
 * residency thresholds; starting a task pays the exit latency of the
 * state the core is found in.
 *
 * Storage layout: cores are not individually-allocated objects. A
 * server owns one CorePool holding the hot per-core state (C-state,
 * P-state, residency cursor, pending demotion timer) in dense
 * struct-of-arrays vectors, so a 100k-server plant iterates its cores
 * cache-linearly and a core costs a few hundred bytes instead of a
 * heap object plus three std::function thunks. The `Core` class is a
 * copyable view (pool pointer + dense id) carrying the familiar
 * per-core API.
 *
 * Timer discipline: when the owning Simulator has a TimerWheel
 * installed, idle-governor demotions arm wheel timers (one kernel
 * event per occupied bucket, O(1) generation-stamped cancel);
 * otherwise each core keeps its own demotion event -- bit-identical
 * to the historical per-event behavior.
 */

#ifndef HOLDCSIM_SERVER_CORE_HH
#define HOLDCSIM_SERVER_CORE_HH

#include <deque>
#include <string>
#include <vector>

#include "power_profile.hh"
#include "power_state.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/timer_wheel.hh"
#include "task.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

class Core;

/**
 * The entity that owns a CorePool (a Server, or a test fixture).
 * Replaces the three per-core std::function hooks of the old
 * individually-allocated Core: one virtual dispatch per notification
 * instead of a type-erased call, and no per-dispatch allocation for
 * the completion callback.
 */
class CoreHost
{
  public:
    virtual ~CoreHost() = default;

    /** Called just before any power-relevant core state change. */
    virtual void coreAccrue() = 0;

    /** Called after a core C-state or P-state change. */
    virtual void coreStateChanged() = 0;

    /** Core @p core finished @p task (the core is already idle). */
    virtual void coreTaskDone(unsigned core, const TaskRef &task) = 0;
};

/**
 * Dense struct-of-arrays storage for all cores of one server.
 * Fixed-size: the core count is set at construction.
 */
class CorePool : public TimerClient
{
  public:
    /**
     * @param sim            owning simulation engine
     * @param host           owner notified of accrual/state/completion
     * @param profile        power/latency profile (not owned; must
     *                       outlive the pool)
     * @param base_freqs_ghz per-core P0 frequencies (heterogeneous
     *                       processors give cores different bases);
     *                       one entry per core, all positive
     */
    CorePool(Simulator &sim, CoreHost &host,
             const ServerPowerProfile &profile,
             std::vector<double> base_freqs_ghz);

    /** Deschedules pending events and cancels wheel timers. */
    ~CorePool() override;

    CorePool(const CorePool &) = delete;
    CorePool &operator=(const CorePool &) = delete;

    unsigned size() const { return static_cast<unsigned>(_cstate.size()); }

    Simulator &sim() const { return _sim; }

    /** TimerClient: a demotion deadline expired (token = core id). */
    void timerFired(std::uint64_t token, Tick deadline) override;

  private:
    friend class Core;

    bool busy(unsigned c) const
    {
        return _cstate[c] == CoreCState::c0Active;
    }
    double frequencyGhz(unsigned c) const;
    void setPState(unsigned c, std::size_t idx);
    void startTask(unsigned c, const TaskRef &task, Tick extra_wake);
    Tick processingTime(unsigned c, const TaskRef &task) const;
    Watts power(unsigned c) const;
    void forceDeepSleep(unsigned c);
    void setCState(unsigned c, CoreCState next);
    void traceCState(unsigned c);
    void armDemotion(unsigned c);
    void cancelDemotion(unsigned c);
    void demote(unsigned c);
    void complete(unsigned c);
    Tick exitLatency(CoreCState from) const;
    void setTraceLabel(unsigned c, std::string label);

    Simulator &_sim;
    CoreHost &_host;
    const ServerPowerProfile &_profile;
    /** Wheel latched at construction; nullptr = per-core events. */
    TimerWheel *_wheel;

    // Hot per-core state, indexed by dense core id.
    std::vector<CoreCState> _cstate;
    std::vector<std::size_t> _pstate;
    std::vector<double> _baseFreqGhz;
    std::vector<TaskRef> _current;
    std::vector<Tick> _startedAt;
    std::vector<std::uint64_t> _tasksExecuted;
    std::vector<StateResidency> _residency;
    std::vector<TimerWheel::Handle> _demotion;

    // Cold: events are address-stable in deques (Event is pinned).
    // _demotionEvents stays empty in wheel mode.
    std::deque<EventFunctionWrapper> _completionEvents;
    std::deque<EventFunctionWrapper> _demotionEvents;

    std::vector<std::string> _traceLabel;
    std::vector<TraceTrackId> _traceTrack;
};

/** Copyable view of one processing unit inside a server's pool. */
class Core
{
  public:
    Core(CorePool &pool, unsigned id) : _pool(&pool), _id(id) {}

    unsigned id() const { return _id; }

    /** Whether a task is currently executing (C0-active). */
    bool busy() const { return _pool->busy(_id); }

    CoreCState cstate() const { return _pool->_cstate[_id]; }

    /** Current operating frequency under the active P-state. */
    double frequencyGhz() const { return _pool->frequencyGhz(_id); }

    /** This core's base (P0) frequency. */
    double baseFrequencyGhz() const { return _pool->_baseFreqGhz[_id]; }

    /** Select DVFS operating point @p idx (0 = fastest). */
    void setPState(std::size_t idx) { _pool->setPState(_id, idx); }
    std::size_t pstate() const { return _pool->_pstate[_id]; }

    /**
     * Begin executing @p task. The start is delayed by this core's
     * C-state exit latency plus @p extra_wake (e.g. package C6
     * exit); the pool's host is notified when the task completes.
     * @pre !busy()
     */
    void startTask(const TaskRef &task, Tick extra_wake)
    {
        _pool->startTask(_id, task, extra_wake);
    }

    /**
     * Processing time for @p task on this core right now:
     * service * (intensity * fNominal/fCur + (1 - intensity)),
     * where fNominal is the profile's P0 frequency (the reference
     * the service time was specified at). Saturates at maxTick.
     */
    Tick processingTime(const TaskRef &task) const
    {
        return _pool->processingTime(_id, task);
    }

    /** Instantaneous power draw of this core. */
    Watts power() const { return _pool->power(_id); }

    /**
     * Force the deepest C-state immediately (server entering a
     * system sleep state). Cancels any pending demotion timer.
     * @pre !busy()
     */
    void forceDeepSleep() { _pool->forceDeepSleep(_id); }

    /** Outcome of abandoning an in-flight task. */
    struct AbortResult {
        /** The task that was killed. */
        TaskRef task;
        /** Energy burned on the partial (now discarded) execution. */
        Joules wasted;
        /** How long the task had been running. */
        Tick ran;
    };

    /**
     * Abandon the current task without completing it (the server
     * crashed or the global scheduler cancelled the task). The
     * completion event is descheduled, no completion notification
     * fires, and the core falls back to C0-idle. @pre busy()
     */
    AbortResult abortTask();

    /** The task currently executing. @pre busy() */
    const TaskRef &currentTask() const { return _pool->_current[_id]; }

    /** Per-C-state residency (states indexed by CoreCState). */
    const StateResidency &residency() const
    {
        return _pool->_residency[_id];
    }

    /** Close residency books at @p now. */
    void finishStats(Tick now) { _pool->_residency[_id].finish(now); }

    /** Zero residency and counters (end of warmup). */
    void
    resetStats(Tick now)
    {
        StateResidency &res = _pool->_residency[_id];
        res.reset();
        res.enter(static_cast<int>(cstate()), now);
        _pool->_tasksExecuted[_id] = 0;
    }

    std::uint64_t tasksExecuted() const
    {
        return _pool->_tasksExecuted[_id];
    }

    /**
     * Name this core on the timeline ("server3.core1"); assigned by
     * the owning server. Until set, the core emits no trace records.
     */
    void setTraceLabel(std::string label)
    {
        _pool->setTraceLabel(_id, std::move(label));
    }

  private:
    CorePool *_pool;
    unsigned _id;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_CORE_HH
