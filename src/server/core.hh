/**
 * @file
 * Processor core model (paper section III-A).
 *
 * Each core is a processing unit that serves one task at a time. The
 * task processing time is determined by the task's service time, the
 * core's operating frequency (P-state and per-core base frequency for
 * heterogeneous processors), and the task's computation
 * intensiveness. When idle, the built-in idle governor demotes the
 * core through progressively deeper C-states after the profile's
 * residency thresholds; starting a task pays the exit latency of the
 * state the core is found in.
 */

#ifndef HOLDCSIM_SERVER_CORE_HH
#define HOLDCSIM_SERVER_CORE_HH

#include <functional>

#include "power_profile.hh"
#include "power_state.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "task.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

/** One processing unit inside a server. */
class Core
{
  public:
    /** Called just before any power-relevant state change. */
    using AccrueFn = std::function<void()>;
    /** Called after a C-state change (package recompute etc.). */
    using StateChangedFn = std::function<void()>;
    /** Task-completion callback. */
    using TaskDoneFn = std::function<void(const TaskRef &)>;

    /**
     * @param sim           owning simulation engine
     * @param id            core index within the server
     * @param profile       power/latency profile (not owned; must
     *                      outlive the core)
     * @param base_freq_ghz this core's P0 frequency (heterogeneous
     *                      processors give different cores different
     *                      base frequencies)
     * @param accrue        energy-accrual hook, invoked before state
     *                      changes
     * @param state_changed post-change hook
     */
    Core(Simulator &sim, unsigned id, const ServerPowerProfile &profile,
         double base_freq_ghz, AccrueFn accrue,
         StateChangedFn state_changed);

    /** Deschedules any pending completion/demotion events. */
    ~Core();

    unsigned id() const { return _id; }

    /** Whether a task is currently executing (C0-active). */
    bool busy() const { return _cstate == CoreCState::c0Active; }

    CoreCState cstate() const { return _cstate; }

    /** Current operating frequency under the active P-state. */
    double frequencyGhz() const;

    /** This core's base (P0) frequency. */
    double baseFrequencyGhz() const { return _baseFreqGhz; }

    /** Select DVFS operating point @p idx (0 = fastest). */
    void setPState(std::size_t idx);
    std::size_t pstate() const { return _pstate; }

    /**
     * Begin executing @p task. The start is delayed by this core's
     * C-state exit latency plus @p extra_wake (e.g. package C6
     * exit); @p done fires when the task completes.
     * @pre !busy()
     */
    void startTask(const TaskRef &task, Tick extra_wake,
                   TaskDoneFn done);

    /**
     * Processing time for @p task on this core right now:
     * service * (intensity * fNominal/fCur + (1 - intensity)),
     * where fNominal is the profile's P0 frequency (the reference
     * the service time was specified at).
     */
    Tick processingTime(const TaskRef &task) const;

    /** Instantaneous power draw of this core. */
    Watts power() const;

    /**
     * Force the deepest C-state immediately (server entering a
     * system sleep state). @pre !busy()
     */
    void forceDeepSleep();

    /** Outcome of abandoning an in-flight task. */
    struct AbortResult {
        /** The task that was killed. */
        TaskRef task;
        /** Energy burned on the partial (now discarded) execution. */
        Joules wasted;
        /** How long the task had been running. */
        Tick ran;
    };

    /**
     * Abandon the current task without completing it (the server
     * crashed or the global scheduler cancelled the task). The
     * completion event is descheduled, no completion callback fires,
     * and the core falls back to C0-idle. @pre busy()
     */
    AbortResult abortTask();

    /** The task currently executing. @pre busy() */
    const TaskRef &currentTask() const { return _current; }

    /** Per-C-state residency (states indexed by CoreCState). */
    const StateResidency &residency() const { return _residency; }

    /** Close residency books at @p now. */
    void finishStats(Tick now) { _residency.finish(now); }

    /** Zero residency and counters (end of warmup). */
    void
    resetStats(Tick now)
    {
        _residency.reset();
        _residency.enter(static_cast<int>(_cstate), now);
        _tasksExecuted = 0;
    }

    std::uint64_t tasksExecuted() const { return _tasksExecuted; }

    /**
     * Name this core on the timeline ("server3.core1"); assigned by
     * the owning server. Until set, the core emits no trace records.
     */
    void setTraceLabel(std::string label);

  private:
    void setCState(CoreCState next);
    /** Emit the current C-state to the timeline tracer. */
    void traceCState();
    /** (Re)arm the idle-governor demotion event. */
    void armDemotion();
    void demote();
    Tick exitLatency(CoreCState from) const;

    Simulator &_sim;
    unsigned _id;
    const ServerPowerProfile &_profile;
    double _baseFreqGhz;
    AccrueFn _accrue;
    StateChangedFn _stateChanged;

    CoreCState _cstate = CoreCState::c0Idle;
    std::size_t _pstate = 0;

    TaskRef _current{};
    TaskDoneFn _done;
    Tick _startedAt = 0;
    EventFunctionWrapper _completionEvent;
    EventFunctionWrapper _demotionEvent;

    StateResidency _residency;
    std::uint64_t _tasksExecuted = 0;

    std::string _traceLabel;
    TraceTrackId _traceTrack = noTraceTrack;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_CORE_HH
