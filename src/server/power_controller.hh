/**
 * @file
 * Built-in server power controllers (paper sections III-F, IV-B and
 * IV-C).
 *
 * Controllers implement the local sleep-state transition policies the
 * case studies compare:
 *
 *  - AlwaysOnController: the "Active-Idle" baseline; the server never
 *    enters a system sleep state (cores still use C-states).
 *  - DelayTimerController: after tau of idleness, suspend to RAM --
 *    the single delay timer of case study IV-B. tau = 0 gives the
 *    aggressive on-off policy.
 *  - DeepSleepController: the WASP sleep-pool behavior of case study
 *    IV-C -- enter package C6 immediately on idle (via the core idle
 *    governor) and drop to system sleep after a short residency
 *    threshold.
 */

#ifndef HOLDCSIM_SERVER_POWER_CONTROLLER_HH
#define HOLDCSIM_SERVER_POWER_CONTROLLER_HH

#include <memory>
#include <optional>

#include "server.hh"
#include "sim/event.hh"

namespace holdcsim {

/** The Active-Idle baseline: never suspends the system. */
class AlwaysOnController : public ServerPowerController
{
  public:
    void becameBusy(Server &server) override { (void)server; }
    void becameIdle(Server &server) override { (void)server; }
};

/**
 * Single delay timer: when the server has been idle for tau, it is
 * suspended (default S3). New work cancels the timer; work arriving
 * during sleep triggers the server's wake path.
 */
class DelayTimerController : public ServerPowerController
{
  public:
    explicit DelayTimerController(Tick tau, SState target = SState::s3);
    ~DelayTimerController() override;

    void attach(Server &server) override;
    void becameBusy(Server &server) override;
    void becameIdle(Server &server) override;

    Tick tau() const { return _tau; }

    /**
     * Retune the timer. Takes effect immediately: a pending
     * countdown is re-armed from its start; maxTick disables the
     * timer entirely (the server then never self-suspends).
     */
    void setTau(Tick tau);

  private:
    Tick _tau;
    SState _target;
    Server *_server = nullptr;
    std::optional<EventFunctionWrapper> _timer;
};

/**
 * WASP-style sleep-pool controller: package C6 is reached through
 * the core idle governor as soon as the cores drain; after
 * @p s3_after of continued idleness the server suspends to RAM.
 * Equivalent to a DelayTimerController with a (typically short)
 * threshold, packaged separately so pool policies can identify and
 * retune it.
 */
class DeepSleepController : public ServerPowerController
{
  public:
    explicit DeepSleepController(Tick s3_after);
    ~DeepSleepController() override;

    void attach(Server &server) override;
    void becameBusy(Server &server) override;
    void becameIdle(Server &server) override;

    /** Retune the C6 -> S3 threshold (takes effect next idle). */
    void setS3After(Tick s3_after) { _s3After = s3_after; }
    Tick s3After() const { return _s3After; }

  private:
    Tick _s3After;
    Server *_server = nullptr;
    std::optional<EventFunctionWrapper> _timer;
};

} // namespace holdcsim

#endif // HOLDCSIM_SERVER_POWER_CONTROLLER_HH
