#include "metrics.hh"

#include <cmath>

#include "sim/logging.hh"

namespace holdcsim {

FleetEnergy
fleetEnergy(const std::vector<Server *> &servers)
{
    FleetEnergy out;
    for (Server *s : servers) {
        s->accrue();
        const EnergyBreakdown &e = s->energy();
        out.perServer.push_back(e);
        out.total.cpu += e.cpu;
        out.total.dram += e.dram;
        out.total.platform += e.platform;
    }
    return out;
}

std::vector<double>
fleetResidency(const std::vector<Server *> &servers)
{
    std::vector<double> fractions(5, 0.0);
    Tick total = 0;
    std::vector<Tick> per_state(5, 0);
    for (Server *s : servers) {
        s->finishStats();
        const StateResidency &r = s->residency();
        for (int st = 0; st < 5; ++st)
            per_state[st] += r.residency(st);
        total += r.totalTime();
    }
    if (total == 0)
        return fractions;
    for (int st = 0; st < 5; ++st) {
        fractions[st] = static_cast<double>(per_state[st]) /
                        static_cast<double>(total);
    }
    return fractions;
}

ReliabilitySummary
fleetReliability(const std::vector<Server *> &servers)
{
    ReliabilitySummary out;
    for (Server *s : servers) {
        s->accrue();
        out.serverFailures += s->failures();
        out.tasksKilled += s->tasksKilled();
        out.wastedJoules += s->wastedJoules();
        out.totalJoules += s->energy().total();
    }
    return out;
}

GaugeSampler::GaugeSampler(Simulator &sim, std::function<double()> fn,
                           Tick period, std::string name)
    : _sim(sim), _fn(std::move(fn)), _period(period),
      _event([this] { tick(); }, std::move(name),
             Event::statsPriority)
{
    if (period == 0)
        fatal("sampler period must be positive");
    if (!_fn)
        fatal("sampler needs a signal callback");
    // Samplers are observers: they must not keep the simulation
    // alive on their own.
    _event.setBackground(true);
}

GaugeSampler::~GaugeSampler()
{
    if (_event.scheduled())
        _sim.deschedule(_event);
}

void
GaugeSampler::start()
{
    _sim.reschedule(_event, _sim.curTick() + _period);
}

void
GaugeSampler::stop()
{
    if (_event.scheduled())
        _sim.deschedule(_event);
}

void
GaugeSampler::tick()
{
    _series.push_back(Sample{_sim.curTick(), _fn()});
    _sim.scheduleAfter(_event, _period);
}

double
GaugeSampler::mean() const
{
    if (_series.empty())
        return 0.0;
    double sum = 0.0;
    for (const Sample &s : _series)
        sum += s.value;
    return sum / static_cast<double>(_series.size());
}

TraceComparison
compareTraces(const std::vector<Sample> &a, const std::vector<Sample> &b)
{
    TraceComparison out;
    std::size_t n = std::min(a.size(), b.size());
    if (n == 0)
        return out;
    double sum = 0.0, sum_abs = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double d = a[i].value - b[i].value;
        sum += d;
        sum_abs += std::abs(d);
        sum_sq += d * d;
    }
    out.points = n;
    out.meanDiff = sum / static_cast<double>(n);
    out.meanAbsDiff = sum_abs / static_cast<double>(n);
    double var = sum_sq / static_cast<double>(n) -
                 out.meanDiff * out.meanDiff;
    out.stddevDiff = var > 0.0 ? std::sqrt(var) : 0.0;
    return out;
}

} // namespace holdcsim
