#include "pod_cluster.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <string>
#include <utility>

#include "network/topology.hh"
#include "sched/dispatch_policy.hh"
#include "server/power_controller.hh"
#include "sim/logging.hh"

namespace holdcsim {

namespace {

/** 4 web (type 1) + 4 app (type 2) + 4 db (type 3) per pod. */
constexpr unsigned kServersPerPod = 12;
constexpr unsigned kCoresPerServer = 2;
constexpr Bytes kStageTransfer = static_cast<Bytes>(64) << 10;

} // namespace

struct PodCluster::Pod {
    unsigned index;
    unsigned partition;
    Simulator *sim;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<Server *> serverPtrs;
    /** After the fleet and fabric: destroyed before both. */
    std::unique_ptr<GlobalScheduler> sched;
    std::vector<std::shared_ptr<ServiceModel>> services;
    std::unique_ptr<ChainJobGenerator> gen;
    std::unique_ptr<PoissonArrival> arrivals;
    std::unique_ptr<Rng> forwardRng;
    /** Remaining forward-chain budget of each live request. */
    std::map<JobId, unsigned> hops;
    std::uint64_t injected = 0;
    std::uint64_t nextJobSeq = 0;
    std::uint64_t forwardedOut = 0;
    std::uint64_t forwardedIn = 0;
    /** True inside a scripted outage episode. */
    bool down = false;
    /** Local, delivery-delayed view of peer health (index by pod). */
    std::vector<char> peerUp;
    std::uint64_t refusedInjections = 0;
    std::uint64_t forwardsDropped = 0;
    std::uint64_t forwardsRefused = 0;
    std::uint64_t healthUpdates = 0;
    PodStats stats;
    EventFunctionWrapper injectEvent;
    EventFunctionWrapper closeEvent;
    /** Down/up transition events of this pod's scripted episodes. */
    std::vector<std::unique_ptr<EventFunctionWrapper>> faultEvents;

    Pod(PodCluster &cluster, unsigned idx, unsigned part, Simulator &s)
        : index(idx), partition(part), sim(&s),
          injectEvent([&cluster, this] { cluster.injectOne(*this); },
                      "pod" + std::to_string(idx) + ".inject"),
          closeEvent([&cluster, this] { cluster.closeStats(*this); },
                     "pod" + std::to_string(idx) + ".close",
                     Event::statsPriority)
    {}

    /** An aborted run (audit violation, interrupt) leaves the pump
     *  and close events on the calendar; take them back off. */
    ~Pod()
    {
        if (injectEvent.scheduled())
            sim->deschedule(injectEvent);
        if (closeEvent.scheduled())
            sim->deschedule(closeEvent);
        for (auto &ev : faultEvents)
            if (ev->scheduled())
                sim->deschedule(*ev);
    }
};

PodCluster::PodCluster(const PodClusterConfig &cfg, unsigned n_partitions)
    : _cfg(cfg), _nPartitions(n_partitions)
{
    if (_cfg.pods < 2)
        fatal("pod cluster needs >= 2 pods (forwards need a peer)");
    if (_nPartitions > _cfg.pods)
        fatal("pod cluster: ", _nPartitions, " partitions but only ",
              _cfg.pods, " pods");
    if (_cfg.interPodLatency == 0)
        fatal("pod cluster: inter-pod latency is the lookahead and "
              "must be nonzero");
    // Scripted outages: in range, forward in time, per-pod disjoint.
    std::map<unsigned, std::vector<std::pair<Tick, Tick>>> episodes;
    for (const PodFaultEpisode &f : _cfg.podFaults) {
        if (f.pod >= _cfg.pods)
            fatal("pod fault targets pod ", f.pod, " but the cluster "
                  "has ", _cfg.pods, " pods");
        if (f.downAt >= f.upAt)
            fatal("pod fault on pod ", f.pod, " repairs at ", f.upAt,
                  " <= its failure at ", f.downAt);
        episodes[f.pod].emplace_back(f.downAt, f.upAt);
    }
    for (auto &[pod, spans] : episodes) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            if (spans[i].first < spans[i - 1].second)
                fatal("pod fault episodes overlap on pod ", pod,
                      " around tick ", spans[i].first);
    }

    const std::size_t shards = _nPartitions == 0 ? 1 : _nPartitions;
    for (std::size_t i = 0; i < shards; ++i)
        _sims.push_back(std::make_unique<Simulator>());
    if (_nPartitions >= 1)
        for (std::size_t i = 0; i < shards; ++i)
            _partitions.push_back(std::make_unique<pdes::Partition>(
                static_cast<std::uint32_t>(i), *_sims[i]));
    // Scheme B routing: with a single shard every cross-pod send is
    // scheduled directly at send time (chronological calendar
    // insertion); with several, every one goes through the outbox and
    // the barrier drain reproduces exactly that insertion order (see
    // the header's file comment). Both paths share mailboxPriority.
    if (shards == 1)
        _direct = std::make_unique<OneShotPool>(
            *_sims[0], "pdes.direct", Event::mailboxPriority);

    for (unsigned i = 0; i < _cfg.pods; ++i) {
        const unsigned part = partitionOf(i);
        Simulator &sim = *_sims[_nPartitions == 0 ? 0 : part];
        const std::string ps = "pod" + std::to_string(i);
        auto pod = std::make_unique<Pod>(*this, i, part, sim);

        pod->net = std::make_unique<Network>(
            sim,
            Topology::star(kServersPerPod, 1e9, _cfg.intraPodLatency),
            SwitchPowerProfile::cisco2960_24());
        for (unsigned s = 0; s < kServersPerPod; ++s) {
            ServerConfig sc;
            sc.id = s;
            sc.nCores = kCoresPerServer;
            sc.taskTypes = {1 + static_cast<int>(s / (kServersPerPod / 3))};
            auto server = std::make_unique<Server>(sim, sc,
                                                   ServerPowerProfile{});
            server->setController(std::make_unique<AlwaysOnController>());
            pod->serverPtrs.push_back(server.get());
            pod->servers.push_back(std::move(server));
        }
        pod->sched = std::make_unique<GlobalScheduler>(
            sim, pod->serverPtrs, std::make_unique<LeastLoadedPolicy>(),
            GlobalSchedulerConfig{}, pod->net.get());
        Pod *pp = pod.get();
        pod->sched->setJobDoneCallback(
            [this, pp](JobId id, Tick) { onJobDone(*pp, id); });

        pod->services = {
            std::make_shared<ExponentialService>(
                1 * msec, Rng(_cfg.seed, ps + ".web")),
            std::make_shared<ExponentialService>(
                4 * msec, Rng(_cfg.seed, ps + ".app")),
            std::make_shared<ExponentialService>(
                8 * msec, Rng(_cfg.seed, ps + ".db")),
        };
        pod->gen = std::make_unique<ChainJobGenerator>(
            pod->services, std::vector<int>{1, 2, 3}, kStageTransfer);
        pod->forwardRng = std::make_unique<Rng>(_cfg.seed,
                                                ps + ".forward");
        pod->arrivals = std::make_unique<PoissonArrival>(
            _cfg.arrivalRate, Rng(_cfg.seed, ps + ".arrivals"));

        pod->peerUp.assign(_cfg.pods, 1);

        if (_cfg.requestsPerPod > 0)
            sim.schedule(pod->injectEvent, pod->arrivals->nextArrival());
        sim.schedule(pod->closeEvent, _cfg.statsHorizon);

        _podv.push_back(std::move(pod));
    }

    for (const PodFaultEpisode &f : _cfg.podFaults) {
        Pod &pod = *_podv[f.pod];
        const std::string ps = "pod" + std::to_string(f.pod);
        auto downEv = std::make_unique<EventFunctionWrapper>(
            [this, &pod] { applyPodFault(pod, true); },
            ps + ".fault_down");
        auto upEv = std::make_unique<EventFunctionWrapper>(
            [this, &pod] { applyPodFault(pod, false); },
            ps + ".fault_up");
        pod.sim->schedule(*downEv, f.downAt);
        pod.sim->schedule(*upEv, f.upAt);
        pod.faultEvents.push_back(std::move(downEv));
        pod.faultEvents.push_back(std::move(upEv));
    }
}

PodCluster::~PodCluster() = default;

unsigned
PodCluster::partitionOf(unsigned pod) const
{
    if (_nPartitions <= 1)
        return 0;
    // Contiguous blocks, same convention as PartitionMap::partitionOfPod.
    return static_cast<unsigned>(
        static_cast<std::size_t>(pod) * _nPartitions / _cfg.pods);
}

void
PodCluster::injectOne(Pod &pod)
{
    // A down pod refuses the attempt but the attempt still consumes
    // its slot in the pump budget and its arrival draw, so the
    // injection timeline is identical whether or not faults fire.
    if (pod.down) {
        ++pod.refusedInjections;
    } else {
        // Per-pod id namespace: the process-global counter hands out
        // ids in wall-clock interleaving order, which would differ
        // run to run under the parallel kernel (ids key scheduler
        // maps).
        const JobId id = (static_cast<JobId>(pod.index) << 40)
                         | pod.nextJobSeq++;
        pod.hops.emplace(id, _cfg.maxForwards);
        pod.sched->submitJob(pod.gen->makeJob(pod.sim->curTick(), id));
    }
    ++pod.injected;
    if (pod.injected < _cfg.requestsPerPod)
        pod.sim->schedule(pod.injectEvent, pod.arrivals->nextArrival());
}

void
PodCluster::onJobDone(Pod &pod, JobId id)
{
    auto it = pod.hops.find(id);
    unsigned budget = 0;
    if (it != pod.hops.end()) {
        budget = it->second;
        pod.hops.erase(it);
    }
    // Drawn unconditionally so the stream's consumption sequence is a
    // pure function of the pod's completion order.
    const double u = pod.forwardRng->uniform();
    if (budget == 0 || u >= _cfg.forwardProbability)
        return;
    unsigned dst = static_cast<unsigned>(
        pod.forwardRng->uniformInt(0, _cfg.pods - 2));
    if (dst >= pod.index)
        ++dst; // skip self
    // Health gating happens after every draw above so the stream is
    // still a pure function of the completion order. The sender
    // consults only its *local* view of the peer: remote state is
    // reached exclusively through messages, never read across shards.
    if (pod.down || !pod.peerUp[dst]) {
        ++pod.forwardsDropped;
        return;
    }
    ++pod.forwardedOut;

    // The +index skew keeps (delivery, send) timestamp pairs unique
    // across source pods, which pins the cross-pod merge order.
    const Tick latency = _cfg.interPodLatency
                         + static_cast<Tick>(pod.index) * nsec;
    const unsigned hopsLeft = budget - 1;
    auto fn = [this, dst, hopsLeft] { deliverForward(dst, hopsLeft); };
    if (_sims.size() <= 1)
        _direct->scheduleAt(pod.sim->curTick() + latency, std::move(fn));
    else
        _partitions[pod.partition]->post(partitionOf(dst), latency,
                                         std::move(fn));
}

void
PodCluster::deliverForward(unsigned dst_pod, unsigned hops_left)
{
    Pod &pod = *_podv[dst_pod];
    // The sender's health view lags by the broadcast latency, so a
    // forward can still reach a pod that just went down; the refusal
    // happens here, on the destination's own timeline.
    if (pod.down) {
        ++pod.forwardsRefused;
        return;
    }
    const JobId id = (static_cast<JobId>(pod.index) << 40)
                     | pod.nextJobSeq++;
    pod.hops.emplace(id, hops_left);
    ++pod.forwardedIn;
    pod.sched->submitJob(pod.gen->makeJob(pod.sim->curTick(), id));
}

void
PodCluster::applyPodFault(Pod &pod, bool down)
{
    pod.down = down;
    // Announce the transition to every peer as a timestamped message
    // on the same mailbox path forwards use: the sequential build
    // schedules the delivery directly, the parallel build routes it
    // through the partition outbox, and the per-source +index skew
    // keeps the cross-pod merge order identical in both.
    const Tick latency = _cfg.interPodLatency
                         + static_cast<Tick>(pod.index) * nsec;
    for (unsigned dst = 0; dst < _cfg.pods; ++dst) {
        if (dst == pod.index)
            continue;
        auto fn = [this, dst, src = pod.index, down] {
            deliverHealth(dst, src, !down);
        };
        if (_sims.size() <= 1)
            _direct->scheduleAt(pod.sim->curTick() + latency,
                                std::move(fn));
        else
            _partitions[pod.partition]->post(partitionOf(dst), latency,
                                             std::move(fn));
    }
}

void
PodCluster::deliverHealth(unsigned dst_pod, unsigned src_pod, bool up)
{
    Pod &pod = *_podv[dst_pod];
    pod.peerUp[src_pod] = up ? 1 : 0;
    ++pod.healthUpdates;
}

void
PodCluster::closeStats(Pod &pod)
{
    for (auto &server : pod.servers)
        server->finishStats();
    pod.net->finishStats();

    PodStats &st = pod.stats;
    st.injected = pod.injected;
    st.forwardedOut = pod.forwardedOut;
    st.forwardedIn = pod.forwardedIn;
    st.jobsSubmitted = pod.sched->jobsSubmitted();
    st.jobsCompleted = pod.sched->jobsCompleted();
    st.tasksDispatched = pod.sched->tasksDispatched();
    st.transfersStarted = pod.sched->transfersStarted();
    const Percentile &lat = pod.sched->jobLatency();
    st.latencyCount = lat.count();
    if (st.latencyCount > 0) {
        st.latencyMean = lat.mean();
        st.latencyP50 = lat.p50();
        st.latencyP95 = lat.p95();
        st.latencyP99 = lat.p99();
    }
    for (auto &server : pod.servers) {
        st.tasksCompleted += server->tasksCompleted();
        st.serverEnergy += server->energy().total();
    }
    st.switchEnergy = pod.net->switchEnergy();
    st.census = pod.sched->taskCensus();
    st.refusedInjections = pod.refusedInjections;
    st.forwardsDropped = pod.forwardsDropped;
    st.forwardsRefused = pod.forwardsRefused;
    st.healthUpdates = pod.healthUpdates;
}

Tick
PodCluster::run()
{
    Tick end = 0;
    if (_nPartitions == 0) {
        end = _sims[0]->run();
    } else {
        std::vector<pdes::Partition *> parts;
        for (auto &p : _partitions)
            parts.push_back(p.get());
        pdes::WindowScheduler ws(parts, _cfg.interPodLatency);
        if (_interrupt)
            ws.setInterruptFlag(_interrupt);
        if (_boundaryAudits)
            ws.setBoundaryHook([this](Tick floor) {
                _auditFloor = floor;
                _auditor->auditNow();
            });
        end = ws.run();
        _pdesStats = ws.stats();
    }
    // Single-shard runs have no window barriers; audit once at the
    // end so sequential and pods:1 runs still exercise every check.
    if (_boundaryAudits && _sims.size() == 1)
        _auditor->auditNow();
    _eventsTotal = 0;
    for (auto &sim : _sims)
        _eventsTotal += sim->eventsProcessed();
    return end;
}

void
PodCluster::enableBoundaryAudits()
{
    if (_auditor)
        return;
    // Never start()ed: the auditor is driven manually from the window
    // boundary hook (or once at the end of a single-shard run), so it
    // schedules nothing and cannot perturb the event count.
    _auditor = std::make_unique<InvariantAuditor>(*_sims[0], 1 * sec);
    for (std::size_t i = 1; i < _sims.size(); ++i)
        _auditor->addEventQueueCheck(*_sims[i],
                                     "shard" + std::to_string(i));
    _auditor->addCheck("pdes.task_conservation",
                       [this] { return checkTaskConservation(); });
    _auditor->addCheck("pdes.mailbox_floor",
                       [this] { return checkMailboxFloor(); });
    _boundaryAudits = true;
}

std::string
PodCluster::checkTaskConservation() const
{
    // Within a window a task may be created in one shard while its
    // forward-parent's books are mid-update in another, but at a
    // barrier (and at the end of a run) every shard is quiescent, so
    // the global identity must hold exactly.
    std::uint64_t created = 0, finished = 0, aborted = 0, live = 0;
    for (const auto &pod : _podv) {
        const auto census = pod->sched->taskCensus();
        created += census.created;
        finished += census.finished;
        aborted += census.aborted;
        live += census.live;
    }
    if (created == finished + aborted + live)
        return {};
    return detail::format("task conservation: created ", created,
                          " != finished ", finished, " + aborted ",
                          aborted, " + live ", live);
}

std::string
PodCluster::checkMailboxFloor() const
{
    // Every undelivered message must land at or after the floor of
    // the window that just executed -- an earlier one would mean a
    // destination already simulated past its delivery tick.
    for (const auto &part : _partitions) {
        for (const auto &msg : part->outbox().pending()) {
            if (msg.when < _auditFloor)
                return detail::format(
                    "partition ", part->index(), " message for ",
                    msg.dst, " lands at ", msg.when,
                    " before the window floor ", _auditFloor);
            if (msg.when < msg.sentAt)
                return detail::format(
                    "partition ", part->index(),
                    " message travels backwards: sent ", msg.sentAt,
                    ", lands ", msg.when);
        }
    }
    return {};
}

const PodStats &
PodCluster::podStats(unsigned pod) const
{
    return _podv.at(pod)->stats;
}

GlobalScheduler &
PodCluster::scheduler(unsigned pod)
{
    return *_podv.at(pod)->sched;
}

void
PodCluster::dumpStats(std::ostream &os) const
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    // Hexfloat round-trips doubles exactly: the dump is a faithful
    // byte-comparable image of the statistics, not a rounding of it.
    os << std::hexfloat;

    std::uint64_t jobs = 0, tasks = 0, forwards = 0;
    for (const auto &podPtr : _podv) {
        const Pod &pod = *podPtr;
        const PodStats &st = pod.stats;
        const std::string p = "pod" + std::to_string(pod.index) + ".";
        os << p << "injected " << st.injected << '\n'
           << p << "forwarded_out " << st.forwardedOut << '\n'
           << p << "forwarded_in " << st.forwardedIn << '\n'
           << p << "jobs_submitted " << st.jobsSubmitted << '\n'
           << p << "jobs_completed " << st.jobsCompleted << '\n'
           << p << "tasks_dispatched " << st.tasksDispatched << '\n'
           << p << "transfers_started " << st.transfersStarted << '\n'
           << p << "tasks_completed " << st.tasksCompleted << '\n'
           << p << "latency_count " << st.latencyCount << '\n'
           << p << "latency_mean " << st.latencyMean << '\n'
           << p << "latency_p50 " << st.latencyP50 << '\n'
           << p << "latency_p95 " << st.latencyP95 << '\n'
           << p << "latency_p99 " << st.latencyP99 << '\n'
           << p << "server_energy_j " << st.serverEnergy << '\n'
           << p << "switch_energy_j " << st.switchEnergy << '\n'
           << p << "tasks_created " << st.census.created << '\n'
           << p << "tasks_finished " << st.census.finished << '\n'
           << p << "tasks_aborted " << st.census.aborted << '\n'
           << p << "tasks_live " << st.census.live << '\n';
        if (!_cfg.podFaults.empty())
            os << p << "refused_injections " << st.refusedInjections
               << '\n'
               << p << "forwards_dropped " << st.forwardsDropped << '\n'
               << p << "forwards_refused " << st.forwardsRefused << '\n'
               << p << "health_updates " << st.healthUpdates << '\n';
        jobs += st.jobsCompleted;
        tasks += st.tasksCompleted;
        forwards += st.forwardedOut;
    }
    os << "cluster.jobs_completed " << jobs << '\n'
       << "cluster.tasks_completed " << tasks << '\n'
       << "cluster.forwards " << forwards << '\n'
       << "cluster.events_total " << _eventsTotal << '\n';

    os.flags(flags);
    os.precision(precision);
}

void
PodCluster::setInterruptFlag(const std::atomic<bool> *flag)
{
    _interrupt = flag;
    if (_nPartitions == 0)
        _sims[0]->setInterruptFlag(flag);
}

} // namespace holdcsim
