#include "workload_config.hh"

#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

namespace holdcsim {

namespace {

Tick
msKey(const Config &cfg, const std::string &key, Tick fallback)
{
    if (!cfg.has(key))
        return fallback;
    return static_cast<Tick>(cfg.getDouble(key) *
                             static_cast<double>(msec));
}

std::shared_ptr<ServiceModel>
makeService(const Config &cfg, std::uint64_t seed)
{
    std::string kind = cfg.getString("workload.service", "exponential");
    Tick mean = msKey(cfg, "workload.service_mean_ms", 5 * msec);
    Tick hi = msKey(cfg, "workload.service_max_ms", 4 * mean);
    Rng rng(seed, "workload.service");
    if (kind == "exponential")
        return std::make_shared<ExponentialService>(mean, rng);
    if (kind == "fixed")
        return std::make_shared<FixedService>(mean);
    if (kind == "uniform")
        return std::make_shared<UniformService>(mean, hi, rng);
    if (kind == "pareto")
        return std::make_shared<BoundedParetoService>(1.5, mean, hi,
                                                      rng);
    fatal("unknown workload.service '", kind, "'");
}

std::unique_ptr<JobGenerator>
makeJobs(const Config &cfg, std::shared_ptr<ServiceModel> svc,
         std::uint64_t seed)
{
    std::string kind = cfg.getString("workload.job", "single");
    auto stages = static_cast<unsigned>(
        cfg.getInt("workload.stages", 2));
    Bytes transfer = static_cast<Bytes>(
        cfg.getInt("workload.transfer_kb", 0)) * 1024;
    if (kind == "single")
        return std::make_unique<SingleTaskGenerator>(svc);
    if (kind == "chain") {
        if (stages == 0)
            fatal("workload.stages must be positive");
        std::vector<std::shared_ptr<ServiceModel>> tiers(stages, svc);
        std::vector<int> types(stages, 0);
        return std::make_unique<ChainJobGenerator>(tiers, types,
                                                   transfer);
    }
    if (kind == "fanout") {
        return std::make_unique<FanOutInGenerator>(svc, svc, svc,
                                                   stages, transfer);
    }
    if (kind == "dag") {
        return std::make_unique<RandomDagGenerator>(
            svc, /*layers=*/3, /*width=*/stages,
            /*edge_probability=*/0.5, transfer,
            Rng(seed, "workload.dag"));
    }
    fatal("unknown workload.job '", kind, "'");
}

/** Mean tasks per job for rate derivation from utilization. */
double
tasksPerJob(const Config &cfg)
{
    std::string kind = cfg.getString("workload.job", "single");
    auto stages =
        static_cast<double>(cfg.getInt("workload.stages", 2));
    if (kind == "single")
        return 1.0;
    if (kind == "chain")
        return stages;
    if (kind == "fanout")
        return stages + 2.0;
    if (kind == "dag")
        return 1.0 + 2.0 * (1.0 + stages) / 2.0; // root + 2 layers
    return 1.0;
}

} // namespace

ConfiguredWorkload
makeWorkload(const Config &cfg, const DataCenterConfig &dc_cfg,
             std::uint64_t seed)
{
    ConfiguredWorkload out;
    auto svc = makeService(cfg, seed);
    double mean_service_sec = svc->meanSeconds();
    out.jobs = makeJobs(cfg, svc, seed);

    Tick duration = maxTick;
    if (cfg.has("workload.duration_s")) {
        duration = fromSeconds(cfg.getDouble("workload.duration_s"));
        out.until = duration;
    }
    if (std::int64_t n = cfg.getInt("workload.max_jobs", 0); n > 0)
        out.maxJobs = static_cast<std::size_t>(n);

    // Job arrival rate: explicit, or derived from utilization (rate
    // that keeps the configured fleet at rho given the per-task
    // service time and the job's task count).
    double rate;
    if (cfg.has("workload.rate")) {
        rate = cfg.getDouble("workload.rate");
    } else {
        double rho = cfg.getDouble("workload.utilization", 0.3);
        rate = PoissonArrival::rateForUtilization(
                   rho, dc_cfg.nServers, dc_cfg.nCores,
                   mean_service_sec) /
               tasksPerJob(cfg);
    }

    std::string kind = cfg.getString("workload.arrival", "poisson");
    if (kind == "poisson") {
        out.arrivals = std::make_unique<PoissonArrival>(
            rate, Rng(seed, "workload.arrivals"));
    } else if (kind == "mmpp") {
        double ratio = cfg.getDouble("workload.burst_ratio", 10.0);
        double p_high =
            cfg.getDouble("workload.burst_fraction", 0.2);
        if (p_high <= 0.0 || p_high >= 1.0)
            fatal("workload.burst_fraction must be in (0, 1)");
        double rate_low =
            rate / (p_high * ratio + (1.0 - p_high));
        out.arrivals = std::make_unique<Mmpp2Arrival>(
            ratio * rate_low, rate_low, 10.0 * p_high,
            10.0 * (1.0 - p_high), Rng(seed, "workload.arrivals"));
    } else if (kind == "wikipedia") {
        if (duration == maxTick)
            fatal("wikipedia arrivals need workload.duration_s");
        WikipediaTraceParams wp;
        wp.duration = duration;
        wp.baseRate = rate;
        wp.diurnalPeriod = duration / 2;
        out.arrivals = std::make_unique<TraceArrival>(
            makeWikipediaTrace(wp, Rng(seed, "workload.trace")));
    } else if (kind == "nlanr") {
        if (duration == maxTick)
            fatal("nlanr arrivals need workload.duration_s");
        NlanrTraceParams np;
        np.duration = duration;
        np.baseRate = rate;
        out.arrivals = std::make_unique<TraceArrival>(
            makeNlanrTrace(np, Rng(seed, "workload.trace")));
    } else if (kind == "trace") {
        out.arrivals = std::make_unique<TraceArrival>(
            loadArrivalTrace(cfg.getString("workload.trace_file")));
    } else {
        fatal("unknown workload.arrival '", kind, "'");
    }
    return out;
}

ServerPowerProfile
serverProfileFromConfig(const Config &cfg)
{
    ServerPowerProfile p;
    auto w = [&](const char *key, Watts &field) {
        field = cfg.getDouble(std::string("server_power.") + key,
                              field);
    };
    w("core_active_w", p.coreActive);
    w("core_c0_idle_w", p.coreC0Idle);
    w("core_c1_w", p.coreC1);
    w("core_c3_w", p.coreC3);
    w("core_c6_w", p.coreC6);
    w("pkg_pc0_w", p.pkgPc0);
    w("pkg_pc2_w", p.pkgPc2);
    w("pkg_pc6_w", p.pkgPc6);
    w("dram_active_w", p.dramActive);
    w("dram_idle_w", p.dramIdle);
    w("dram_self_refresh_w", p.dramSelfRefresh);
    w("platform_s0_w", p.platformS0);
    w("platform_s3_w", p.platformS3);
    w("platform_s5_w", p.platformS5);
    p.s3WakeLatency =
        msKey(cfg, "server_power.s3_wake_ms", p.s3WakeLatency);
    p.s3EntryLatency =
        msKey(cfg, "server_power.s3_entry_ms", p.s3EntryLatency);
    p.validate();
    return p;
}

SwitchPowerProfile
switchProfileFromConfig(const Config &cfg)
{
    SwitchPowerProfile p = SwitchPowerProfile::cisco2960_24();
    auto w = [&](const char *key, Watts &field) {
        field = cfg.getDouble(std::string("switch_power.") + key,
                              field);
    };
    w("chassis_base_w", p.chassisBase);
    w("switch_sleep_w", p.switchSleep);
    w("linecard_active_w", p.linecardActive);
    w("linecard_sleep_w", p.linecardSleep);
    w("port_active_w", p.portActive);
    w("port_lpi_w", p.portLpi);
    p.switchWakeLatency = msKey(cfg, "switch_power.switch_wake_ms",
                                p.switchWakeLatency);
    p.linecardWakeLatency =
        msKey(cfg, "switch_power.linecard_wake_ms",
              p.linecardWakeLatency);
    p.validate();
    return p;
}

} // namespace holdcsim
