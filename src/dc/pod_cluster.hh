/**
 * @file
 * Pod-partitioned data center: the execution harness for the
 * conservative parallel kernel (src/sim/pdes).
 *
 * The monolithic DataCenter owns a single Simulator, so it can only
 * validate a partition plan (see DataCenter::partitionPlan()). A
 * PodCluster actually executes one: it builds K identical pods --
 * each a star fabric, a 3-tier server group (web/app/db), a
 * least-loaded scheduler and a Poisson request pump -- and groups
 * them onto N partitions, one Simulator per partition, advanced in
 * lookahead windows by a WindowScheduler. Completed requests forward
 * to a random other pod with configurable probability, so pods
 * genuinely interact across partition boundaries.
 *
 * The central design property is statistics identity: for a fixed
 * seed, dumpStats() produces byte-identical output whether the
 * cluster runs on the sequential kernel (n_partitions = 0), on one
 * partition (exactly Simulator::run()) or on any partition count.
 * Three mechanisms make that hold:
 *
 *  - All cross-pod interactions are timestamped messages delivered
 *    at Event::mailboxPriority. The sequential build schedules them
 *    directly at send time; the parallel build routes them through
 *    the partition outbox and the barrier drain inserts them in
 *    (when, sentAt, src, seq) order -- the same total order the
 *    sequential calendar produces, because the per-source-pod
 *    latency skew (+pod ticks) makes cross-pod (when, sentAt) ties
 *    impossible and same-pod ties are FIFO in both builds.
 *  - Every random stream, job-id namespace and statistic is per-pod.
 *    Job ids are (pod << 40) | seq, not the process-global counter,
 *    whose handout order is wall-clock-dependent.
 *  - Measurement closes at a fixed simulated horizon via a per-pod
 *    close event, never at "end of run" (whose wall-clock shape
 *    differs between kernels). Wall-clock numbers (worker timings)
 *    live only in pdesStats(), outside the determinism-checked dump.
 */

#ifndef HOLDCSIM_DC_POD_CLUSTER_HH
#define HOLDCSIM_DC_POD_CLUSTER_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "network/network.hh"
#include "sched/global_scheduler.hh"
#include "server/server.hh"
#include "sim/auditor.hh"
#include "sim/event.hh"
#include "sim/one_shot.hh"
#include "sim/pdes/partition.hh"
#include "sim/pdes/window_scheduler.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/arrival.hh"
#include "workload/job_generator.hh"
#include "workload/service.hh"

namespace holdcsim {

/**
 * One scripted pod outage: the pod refuses new work in
 * [downAt, upAt) and announces both transitions to every peer.
 */
struct PodFaultEpisode {
    unsigned pod = 0;
    Tick downAt = 0;
    Tick upAt = 0;
};

/** Workload/plant shape of a PodCluster (all pods identical). */
struct PodClusterConfig {
    /** Pod count (>= 2; forwards need somewhere to go). */
    unsigned pods = 8;
    /** Requests injected per pod before its pump stops. */
    std::size_t requestsPerPod = 200;
    /** Poisson arrival rate per pod (requests/sec). */
    double arrivalRate = 600.0;
    /** P(completed request forwards to another pod). */
    double forwardProbability = 0.3;
    /** Forward-chain length cap per originating request. */
    unsigned maxForwards = 2;
    /**
     * Base inter-pod latency: the lookahead. The actual latency of a
     * forward from pod p is interPodLatency + p ticks -- the skew
     * that makes the cross-pod merge order seed-deterministic (see
     * file comment).
     */
    Tick interPodLatency = 20 * usec;
    /** Intra-pod (star) link latency. */
    Tick intraPodLatency = 5 * usec;
    /** Fixed simulated instant at which statistics close. */
    Tick statsHorizon = 2 * sec;
    /** Root seed; every stream is pod-scoped under it. */
    std::uint64_t seed = 1;
    /**
     * Scripted pod outages. A down pod drains in-flight work but
     * refuses new injections and incoming forwards, and every
     * transition is broadcast to the other pods as a timestamped
     * health message -- through the partition mailbox in parallel
     * mode, so remote peer-health state is never touched directly
     * from another shard's timeline. Senders consult their local
     * (delivery-delayed) view of peer health before forwarding.
     */
    std::vector<PodFaultEpisode> podFaults;
};

/** Per-pod statistics snapshot, taken at the horizon close event. */
struct PodStats {
    std::uint64_t injected = 0;
    std::uint64_t forwardedOut = 0;
    std::uint64_t forwardedIn = 0;
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t tasksDispatched = 0;
    std::uint64_t transfersStarted = 0;
    std::uint64_t tasksCompleted = 0;
    std::uint64_t latencyCount = 0;
    double latencyMean = 0.0;
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;
    Joules serverEnergy = 0.0;
    Joules switchEnergy = 0.0;
    GlobalScheduler::TaskCensus census;
    /** Injection attempts refused because the pod was down. */
    std::uint64_t refusedInjections = 0;
    /** Forwards dropped at the source (self or peer believed down). */
    std::uint64_t forwardsDropped = 0;
    /** Forwards refused on arrival (destination down at delivery). */
    std::uint64_t forwardsRefused = 0;
    /** Peer health broadcasts applied at this pod. */
    std::uint64_t healthUpdates = 0;
};

/** K interacting pods executable on 0 (sequential) or N partitions. */
class PodCluster
{
  public:
    /**
     * @param cfg          cluster shape
     * @param n_partitions 0 = sequential kernel (one Simulator, no
     *                     pdes involvement at all); 1 = one partition
     *                     (WindowScheduler fast path, still exactly
     *                     Simulator::run()); >= 2 = parallel windows.
     *                     Must be <= cfg.pods.
     */
    PodCluster(const PodClusterConfig &cfg, unsigned n_partitions);
    ~PodCluster();
    PodCluster(const PodCluster &) = delete;
    PodCluster &operator=(const PodCluster &) = delete;

    /** Run to completion. @return max final tick over partitions. */
    Tick run();

    /**
     * Register the cross-partition invariant checks (per-shard
     * event-queue audits, global task conservation, the mailbox
     * floor bound) on a manually-driven auditor and -- in parallel
     * mode -- arrange for auditNow() at every window boundary.
     * Sequential runs audit once at the end of run(). Call before
     * run().
     */
    void enableBoundaryAudits();

    /** Cooperative interrupt (forwarded to every shard). */
    void setInterruptFlag(const std::atomic<bool> *flag);

    /** Deterministic "component.stat value" dump (see file doc). */
    void dumpStats(std::ostream &os) const;

    unsigned pods() const { return _cfg.pods; }
    unsigned partitions() const { return _nPartitions; }
    const PodStats &podStats(unsigned pod) const;
    /** Scheduler of @p pod (tests: debugInjectTaskLeak). */
    GlobalScheduler &scheduler(unsigned pod);
    /** Null until enableBoundaryAudits(). */
    InvariantAuditor *auditor() { return _auditor.get(); }
    /** Window-protocol counters; zeroed until run(), and only
     *  populated by parallel runs (n_partitions >= 2). */
    const pdes::WindowScheduler::Stats &pdesStats() const
    {
        return _pdesStats;
    }
    /** Events processed, summed over shards (set by run()). */
    std::uint64_t eventsTotal() const { return _eventsTotal; }

  private:
    struct Pod;

    /** Partition index of @p pod (contiguous blocks). */
    unsigned partitionOf(unsigned pod) const;
    void injectOne(Pod &pod);
    void onJobDone(Pod &pod, JobId id);
    /** Runs at the destination, at the message delivery tick. */
    void deliverForward(unsigned dst_pod, unsigned hops_left);
    /** Flip @p pod's health locally and broadcast it to peers. */
    void applyPodFault(Pod &pod, bool down);
    /** Runs at @p dst_pod, at the broadcast delivery tick. */
    void deliverHealth(unsigned dst_pod, unsigned src_pod, bool up);
    void closeStats(Pod &pod);
    std::string checkTaskConservation() const;
    std::string checkMailboxFloor() const;

    PodClusterConfig _cfg;
    unsigned _nPartitions;

    // Engine state outlives everything scheduled into it: shards
    // first, then the adapters, then the plant, then the auditor.
    std::vector<std::unique_ptr<Simulator>> _sims;
    std::vector<std::unique_ptr<pdes::Partition>> _partitions;
    /** Sequential-mode delivery pool (single shard only). */
    std::unique_ptr<OneShotPool> _direct;
    std::vector<std::unique_ptr<Pod>> _podv;
    std::unique_ptr<InvariantAuditor> _auditor;

    /** Floor of the last executed window (mailbox-floor check). */
    Tick _auditFloor = 0;
    bool _boundaryAudits = false;
    const std::atomic<bool> *_interrupt = nullptr;

    pdes::WindowScheduler::Stats _pdesStats;
    std::uint64_t _eventsTotal = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_DC_POD_CLUSTER_HH
