/**
 * @file
 * Workload and power-profile configuration (paper Figure 1:
 * "HolDCSim takes a workload model, server and switch profile as
 * inputs to run experiments"; section III-F: "HolDCSim allows users
 * to input power profiles for various system components").
 *
 * Builds arrival processes, job generators and power profiles from
 * INI text, so a whole experiment is a config file plus the
 * `holdcsim` driver. Recognized keys:
 *
 *   [workload]
 *   arrival      = poisson | mmpp | wikipedia | nlanr | trace
 *   utilization  = 0.3        ; poisson/wikipedia/nlanr rate from rho
 *   rate         = 120        ; jobs/s (overrides utilization)
 *   duration_s   = 60         ; arrival horizon
 *   max_jobs     = 0          ; 0 = unlimited
 *   burst_ratio  = 10         ; mmpp: rate_high / rate_low
 *   burst_fraction = 0.2      ; mmpp: fraction of time bursty
 *   trace_file   = path.txt   ; arrival = trace
 *   service      = exponential | fixed | uniform | pareto
 *   service_mean_ms = 5
 *   service_max_ms  = 100     ; uniform hi / pareto hi
 *   job          = single | chain | fanout | dag
 *   stages       = 2          ; chain length / fanout width / dag
 *   transfer_kb  = 0          ; bytes shipped per DAG edge
 *
 *   [server_power]  / [switch_power]
 *   any field of ServerPowerProfile / SwitchPowerProfile by
 *   snake_case name (e.g. core_active_w = 6.5, s3_wake_ms = 1500,
 *   port_active_w = 0.23); unset keys keep the built-in defaults.
 */

#ifndef HOLDCSIM_DC_WORKLOAD_CONFIG_HH
#define HOLDCSIM_DC_WORKLOAD_CONFIG_HH

#include <memory>

#include "dc_config.hh"
#include "sim/config.hh"
#include "workload/arrival.hh"
#include "workload/job_generator.hh"

namespace holdcsim {

/** A fully constructed workload ready to pump into a DataCenter. */
struct ConfiguredWorkload {
    std::unique_ptr<ArrivalProcess> arrivals;
    std::unique_ptr<JobGenerator> jobs;
    /** Stop injecting after this tick. */
    Tick until = maxTick;
    /** Stop after this many jobs (SIZE_MAX = unlimited). */
    std::size_t maxJobs = static_cast<std::size_t>(-1);
};

/**
 * Build the workload described by @p cfg's [workload] section for a
 * data center shaped by @p dc_cfg (used to derive arrival rates from
 * a utilization target). @p seed seeds every random stream.
 */
ConfiguredWorkload makeWorkload(const Config &cfg,
                                const DataCenterConfig &dc_cfg,
                                std::uint64_t seed);

/** Server power profile with [server_power] overrides applied. */
ServerPowerProfile serverProfileFromConfig(const Config &cfg);

/** Switch power profile with [switch_power] overrides applied. */
SwitchPowerProfile switchProfileFromConfig(const Config &cfg);

} // namespace holdcsim

#endif // HOLDCSIM_DC_WORKLOAD_CONFIG_HH
