#include "validation.hh"

#include <cmath>

#include "sim/logging.hh"

namespace holdcsim {

PhysicalPowerModel::PhysicalPowerModel(std::function<Watts()> truth,
                                       MeasurementNoiseParams params,
                                       Rng rng)
    : _truth(std::move(truth)), _params(params), _rng(rng)
{
    if (!_truth)
        fatal("physical power model needs a ground-truth signal");
    if (_params.driftPersistence < 0.0 ||
        _params.driftPersistence >= 1.0) {
        fatal("drift persistence must be in [0, 1)");
    }
}

Watts
PhysicalPowerModel::sample()
{
    // AR(1) with stationary variance driftSigma^2.
    double innovation_sigma =
        _params.driftSigma *
        std::sqrt(1.0 - _params.driftPersistence *
                            _params.driftPersistence);
    _drift = _params.driftPersistence * _drift +
             _rng.normal(0.0, innovation_sigma);

    Watts value = _truth() + _params.offset + _drift +
                  _rng.normal(0.0, _params.jitterSigma);
    if (_rng.bernoulli(_params.spikeProbability))
        value += _rng.uniform(_params.spikeMin, _params.spikeMax);
    return value < 0.0 ? 0.0 : value;
}

MeasurementNoiseParams
serverMeasurementNoise()
{
    // Tuned so the residual statistics land near the paper's
    // Figure 12 numbers: ~0.22 W mean difference, ~1.5 W sigma.
    MeasurementNoiseParams p;
    p.offset = 0.05;
    p.jitterSigma = 0.8;
    p.driftPersistence = 0.9;
    p.driftSigma = 1.0;
    p.spikeProbability = 0.02;
    p.spikeMin = 1.0;
    p.spikeMax = 5.0;
    return p;
}

MeasurementNoiseParams
switchMeasurementNoise()
{
    // Figure 13/14: mean diff < 0.12 W, sigma ~= 0.04 W; Figure 14b
    // shows segments where the physical switch sits slightly above
    // the simulation, captured by the positive offset.
    MeasurementNoiseParams p;
    p.offset = 0.08;
    p.jitterSigma = 0.03;
    p.driftPersistence = 0.98;
    p.driftSigma = 0.02;
    p.spikeProbability = 0.002;
    p.spikeMin = 0.05;
    p.spikeMax = 0.3;
    return p;
}

} // namespace holdcsim
