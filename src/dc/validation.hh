/**
 * @file
 * Validation reference models (paper section V).
 *
 * The paper validates HolDCSim against a physical Xeon E5-2680
 * server (RAPL/IPMI measurements, Figure 12) and a physical Cisco
 * WS-C2960-24-S switch (power data logger, Figures 13/14). Those
 * machines are unavailable here, so the reference is modeled as the
 * same underlying power behavior plus a measurement/OS-residual
 * process: the paper itself attributes its residual error to "apache
 * management thread and other OS routines" (Gaussian jitter, slow
 * drift, occasional activity spikes, and segments where physical
 * power sits slightly above simulation -- Figure 14b). Comparing
 * simulator output to this reference reproduces the validation
 * methodology: mean difference and standard deviation of the
 * residual. See DESIGN.md section 3.
 */

#ifndef HOLDCSIM_DC_VALIDATION_HH
#define HOLDCSIM_DC_VALIDATION_HH

#include <functional>

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/** Parameters of the measured-residual process. */
struct MeasurementNoiseParams {
    /** Constant calibration offset (watts). */
    Watts offset = 0.0;
    /** Std-dev of the white measurement jitter (watts). */
    Watts jitterSigma = 0.1;
    /** AR(1) persistence of the slow OS-activity drift, in [0, 1). */
    double driftPersistence = 0.95;
    /** Std-dev of the stationary drift component (watts). */
    Watts driftSigma = 0.3;
    /** Probability per sample of a background-activity spike. */
    double spikeProbability = 0.01;
    /** Spike magnitude range (watts). */
    Watts spikeMin = 0.5;
    Watts spikeMax = 3.0;
};

/**
 * Wraps a ground-truth power signal and returns "measured" values:
 * truth + offset + drift + jitter + occasional spikes. Sample once
 * per measurement interval, like the paper's 1 Hz power logger.
 */
class PhysicalPowerModel
{
  public:
    /**
     * @param truth  ground-truth power callback (the simulated
     *               device's power)
     * @param params residual-process parameters
     * @param rng    dedicated random stream
     */
    PhysicalPowerModel(std::function<Watts()> truth,
                       MeasurementNoiseParams params, Rng rng);

    /** Next measured sample. */
    Watts sample();

  private:
    std::function<Watts()> _truth;
    MeasurementNoiseParams _params;
    Rng _rng;
    double _drift = 0.0;
};

/** Residual parameters fitted to the paper's server validation
 *  (sigma ~= 1.5 W, mean diff ~= 0.22 W on a 10-core server). */
MeasurementNoiseParams serverMeasurementNoise();

/** Residual parameters fitted to the paper's switch validation
 *  (mean diff < 0.12 W, sigma ~= 0.04 W). */
MeasurementNoiseParams switchMeasurementNoise();

} // namespace holdcsim

#endif // HOLDCSIM_DC_VALIDATION_HH
