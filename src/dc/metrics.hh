/**
 * @file
 * Fleet-level metrics: aggregated energy breakdowns, state-residency
 * summaries and periodic power/gauge samplers for time-series
 * figures (paper Figures 4, 12, 13).
 */

#ifndef HOLDCSIM_DC_METRICS_HH
#define HOLDCSIM_DC_METRICS_HH

#include <functional>
#include <vector>

#include "server/server.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"

namespace holdcsim {

/** Aggregate energy over a server fleet. */
struct FleetEnergy {
    EnergyBreakdown total;
    std::vector<EnergyBreakdown> perServer;
};

/** Sum component energies across @p servers (accrues first). */
FleetEnergy fleetEnergy(const std::vector<Server *> &servers);

/**
 * Time-weighted fraction each observable ServerState holds across
 * the fleet (the paper's Figure 8 bars). Index by ServerState cast
 * to int; fractions sum to ~1.
 */
std::vector<double>
fleetResidency(const std::vector<Server *> &servers);

/**
 * Fleet-wide reliability books: how often servers crashed, how much
 * work the crashes destroyed, and what fraction of the energy bill
 * paid for attempts that never completed (goodput vs waste).
 */
struct ReliabilitySummary {
    /** Crash episodes across the fleet. */
    std::uint64_t serverFailures = 0;
    /** In-flight tasks aborted by crashes or cancellation. */
    std::uint64_t tasksKilled = 0;
    /** Energy spent on those aborted attempts. */
    Joules wastedJoules = 0.0;
    /** Total fleet energy (accrued to the current tick). */
    Joules totalJoules = 0.0;

    /** Share of the energy bill that bought no finished work. */
    double
    wastedFraction() const
    {
        return totalJoules > 0.0 ? wastedJoules / totalJoules : 0.0;
    }

    /** Energy that paid for completed work. */
    Joules goodputJoules() const { return totalJoules - wastedJoules; }
};

/** Aggregate reliability counters across @p servers (accrues). */
ReliabilitySummary
fleetReliability(const std::vector<Server *> &servers);

/** One sample of a scalar signal. */
struct Sample {
    Tick when;
    double value;
};

/**
 * Samples a scalar callback at a fixed period and records the
 * series; used for power traces and active-server/job counts.
 */
class GaugeSampler
{
  public:
    /**
     * @param sim      engine
     * @param fn       signal to sample
     * @param period   sampling period
     * @param name     event name for diagnostics
     */
    GaugeSampler(Simulator &sim, std::function<double()> fn,
                 Tick period, std::string name = "sampler");
    ~GaugeSampler();
    GaugeSampler(const GaugeSampler &) = delete;
    GaugeSampler &operator=(const GaugeSampler &) = delete;

    /** Begin sampling (first sample after one period). */
    void start();
    void stop();

    const std::vector<Sample> &series() const { return _series; }

    /** Mean of the recorded samples (0 when empty). */
    double mean() const;

  private:
    void tick();

    Simulator &_sim;
    std::function<double()> _fn;
    Tick _period;
    EventFunctionWrapper _event;
    std::vector<Sample> _series;
};

/** Summary statistics of the pointwise difference of two series. */
struct TraceComparison {
    double meanAbsDiff = 0.0;
    double meanDiff = 0.0;
    double stddevDiff = 0.0;
    std::size_t points = 0;
};

/** Compare two equally-sampled series (extra tail points ignored). */
TraceComparison compareTraces(const std::vector<Sample> &a,
                              const std::vector<Sample> &b);

} // namespace holdcsim

#endif // HOLDCSIM_DC_METRICS_HH
