/**
 * @file
 * The assembled data center (paper Figure 1): workload in, servers +
 * network + global scheduler in the middle, runtime statistics out.
 *
 * DataCenter owns the Simulator, the server fleet (with their power
 * controllers), the optional network fabric and the global
 * scheduler, and provides workload pumps that inject jobs from an
 * arrival process / trace through a JobGenerator.
 */

#ifndef HOLDCSIM_DC_DATACENTER_HH
#define HOLDCSIM_DC_DATACENTER_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "dc_config.hh"
#include "fault/fault_manager.hh"
#include "metrics.hh"
#include "network/network.hh"
#include "network/partition_map.hh"
#include "orch/orchestrator.hh"
#include "sched/global_scheduler.hh"
#include "server/power_controller.hh"
#include "server/server.hh"
#include "sim/auditor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/timer_wheel.hh"
#include "telemetry/profiler.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_manager.hh"
#include "workload/arrival.hh"
#include "workload/job_generator.hh"

namespace holdcsim {

/** A complete simulated data center instance. */
class DataCenter
{
  public:
    explicit DataCenter(const DataCenterConfig &config);
    ~DataCenter();
    DataCenter(const DataCenter &) = delete;
    DataCenter &operator=(const DataCenter &) = delete;

    /** @name Component access */
    ///@{
    Simulator &sim() { return _sim; }
    GlobalScheduler &scheduler() { return *_sched; }
    std::size_t numServers() const { return _servers.size(); }
    Server &server(std::size_t i) { return *_servers.at(i); }
    const std::vector<Server *> &serverPtrs() const
    {
        return _serverPtrs;
    }
    /** Null when the config has no fabric. */
    Network *network() { return _net.get(); }
    /** Null unless config.fault.enabled. */
    FaultManager *faults() { return _faults.get(); }
    /** Null unless config.orch.enabled. */
    Orchestrator *orchestrator() { return _orch.get(); }
    /** Null unless telemetry tracing is configured. */
    TraceManager *tracer() { return _tracer.get(); }
    /** Null unless telemetry sampling is configured. */
    Sampler *sampler() { return _sampler.get(); }
    /** Null unless telemetry profiling is configured. */
    KernelProfiler *profiler() { return _profiler.get(); }
    /** Null unless config.audit.enabled. */
    InvariantAuditor *auditor() { return _auditor.get(); }
    /** Null unless config.timerMode == TimerMode::wheel. */
    TimerWheel *timerWheel() { return _wheel.get(); }
    /**
     * The pod cut derived from the fabric (null unless
     * config.pdes.enabled()). The monolithic DataCenter still
     * executes on the sequential kernel -- the plan is derived and
     * validated here so a mis-partitionable topology or an unsound
     * lookahead override fails at construction, and so harnesses
     * built on PodCluster (src/dc/pod_cluster.hh) can share it.
     */
    const PartitionMap *partitionPlan() const
    {
        return _partitionPlan.get();
    }
    const DataCenterConfig &config() const { return _config; }
    ///@}

    /** Derive a named random stream from the experiment seed. */
    Rng makeRng(const std::string &stream) const
    {
        return Rng(_config.seed, stream);
    }

    /** @name Workload pumps
     * The JobGenerator must outlive the simulation run. Several
     * pumps may be active at once (multi-workload experiments).
     */
    ///@{
    /**
     * Inject jobs at the arrival instants of @p process (which the
     * pump takes ownership of), at most @p max_jobs jobs, with no
     * arrivals after @p until.
     */
    void pump(std::unique_ptr<ArrivalProcess> process,
              JobGenerator &gen,
              std::size_t max_jobs = static_cast<std::size_t>(-1),
              Tick until = maxTick);

    /** Inject one job per trace timestamp. */
    void pumpTrace(std::vector<Tick> arrivals, JobGenerator &gen);
    ///@}

    /** @name Running */
    ///@{
    /** Run until all events drain (arrivals exhausted, jobs done). */
    Tick run() { return _sim.run(); }
    Tick runUntil(Tick limit) { return _sim.runUntil(limit); }
    ///@}

    /** @name Fleet metrics */
    ///@{
    /** Aggregate + per-server energy (accrued to the current tick). */
    FleetEnergy energy();
    /** Fleet residency fractions over the five observable states. */
    std::vector<double> residency();
    /** Total switch energy (0 without a fabric). */
    Joules switchEnergy();
    /** Instantaneous total server power. */
    Watts serverPower() const;
    /** Instantaneous total switch power (0 without a fabric). */
    Watts switchPower() const;
    /** Servers not in S3/S5 (awake or waking). */
    std::size_t awakeServers() const;
    /** Close all books (end of measurement). */
    void finishStats();
    /** Zero all statistics (end of warmup). */
    void resetStats();
    /**
     * Dump every runtime statistic the paper's Figure 1 lists
     * (power/energy, network delays, job latency, state
     * transitions) as gem5-style "component.stat value" lines.
     * Calls finishStats() first.
     */
    void dumpStats(std::ostream &os);
    ///@}

  private:
    struct Pump;

    DataCenterConfig _config;
    Simulator _sim;
    /**
     * Shared governor timer wheel (timer_mode=wheel only). Declared
     * directly after the engine: every pool/card/switch latches the
     * pointer at construction and cancels its handles before this
     * dtor runs.
     */
    std::unique_ptr<TimerWheel> _wheel;
    /**
     * Telemetry sits between the engine and the plant: constructed
     * before (destroyed after) every component that may emit trace
     * records in its state machinery.
     */
    std::unique_ptr<TraceManager> _tracer;
    std::unique_ptr<KernelProfiler> _profiler;
    std::unique_ptr<Sampler> _sampler;
    std::unique_ptr<Network> _net;
    std::unique_ptr<PartitionMap> _partitionPlan;
    std::vector<std::unique_ptr<Server>> _servers;
    std::vector<Server *> _serverPtrs;
    /** Jitter stream handed to the scheduler; must outlive it. */
    std::unique_ptr<Rng> _retryJitter;
    std::unique_ptr<GlobalScheduler> _sched;
    std::unique_ptr<FaultManager> _faults;
    /** Declared after the scheduler and fault manager: its dtor
     *  uninstalls the hooks it placed into both. */
    std::unique_ptr<Orchestrator> _orch;
    std::unique_ptr<InvariantAuditor> _auditor;
    std::vector<std::unique_ptr<Pump>> _pumps;
};

} // namespace holdcsim

#endif // HOLDCSIM_DC_DATACENTER_HH
