#include "dc_config.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

void
DataCenterConfig::validate() const
{
    if (fabric == Fabric::none && nServers == 0)
        fatal("data center needs at least one server");
    if (nCores == 0)
        fatal("servers need at least one core");
    if (dispatch == Dispatch::networkAware && fabric == Fabric::none)
        fatal("network-aware dispatch requires a fabric");
    if (fault.enabled) {
        if ((fault.faultSwitches || fault.faultLinecards ||
             fault.faultLinks) &&
            fabric == Fabric::none) {
            fatal("network faults require a fabric");
        }
        if (fault.faultTrace.empty() &&
            (fault.mttfHours <= 0.0 || fault.mttrMinutes <= 0.0)) {
            fatal("stochastic faults need positive MTTF and MTTR");
        }
        if (fault.distribution != "exponential" &&
            fault.distribution != "weibull") {
            fatal("unknown fault.distribution '", fault.distribution,
                  "'");
        }
        if (!fault.faultServers && !fault.faultSwitches &&
            !fault.faultLinecards && !fault.faultLinks) {
            fatal("fault injection enabled but no component class "
                  "selected");
        }
    }
    if (telemetry.enabled) {
        if (telemetry.traceFormat != "json" &&
            telemetry.traceFormat != "csv") {
            fatal("unknown telemetry.trace_format '",
                  telemetry.traceFormat, "'");
        }
        if (telemetry.samplePeriod == 0)
            fatal("telemetry.sample_period_ms must be positive");
        // Fail on bad category lists at config time, not mid-run.
        parseTraceCategories(telemetry.traceCategories);
    }
    if (orch.enabled) {
        if (orch.placement != "bin_pack" && orch.placement != "spread" &&
            orch.placement != "affinity") {
            fatal("unknown orch.placement '", orch.placement, "'");
        }
        if (orch.reconcilePeriod == 0)
            fatal("orch.reconcile_ms must be positive");
        if (orch.overcommit < 1.0)
            fatal("orch.overcommit must be >= 1");
        if (orch.interference < 0.0)
            fatal("orch.interference must be non-negative");
        if (orch.remoteMemPenaltyPerUs < 0.0)
            fatal("orch.remote_mem_penalty_per_us must be "
                  "non-negative");
        if (orch.autoscaleLow >= orch.autoscaleHigh)
            fatal("orch.autoscale_low must be below "
                  "orch.autoscale_high");
        if (orch.migrationDirtyFrac < 0.0 ||
            orch.migrationDirtyFrac >= 1.0) {
            fatal("orch.migration_dirty_frac must be in [0, 1)");
        }
        if (orch.migrationMaxRounds == 0)
            fatal("orch.migration_max_rounds must be positive");
        if (orch.replicas == 0 || orch.minReplicas == 0 ||
            orch.minReplicas > orch.maxReplicas) {
            fatal("orch needs 1 <= min_replicas <= max_replicas and "
                  "a positive replica count");
        }
        if (orch.containerCores <= 0.0)
            fatal("orch.container_cores must be positive");
        if (orch.remoteMemFrac < 0.0 || orch.remoteMemFrac > 1.0)
            fatal("orch.remote_mem_frac must be in [0, 1]");
        if (orch.remoteMemPenaltyPerUs > 0.0 &&
            orch.remoteMemFrac > 0.0 && fabric == Fabric::none) {
            fatal("remote-memory penalties require a fabric");
        }
    }
    if (audit.enabled) {
        if (audit.period == 0)
            fatal("audit.period_ms must be positive");
        if (audit.energyTolerance < 0.0)
            fatal("audit.energy_tolerance must be non-negative");
    }
    if (wheelGranularity == 0)
        fatal("datacenter.wheel_granularity_us must be positive");
    if (pdes.enabled()) {
        if (pdes.partitions == 0)
            fatal("datacenter.pdes_mode pods:N needs N >= 1");
        if (fabric == Fabric::none)
            fatal("datacenter.pdes_mode pods requires a fabric (the "
                  "partition cut is derived from the topology)");
    }
    if (mc.strategy != "boundary" && mc.strategy != "pairwise" &&
        mc.strategy != "exhaustive" && mc.strategy != "random") {
        fatal("unknown mc.strategy '", mc.strategy, "'");
    }
    if (mc.horizon == 0)
        fatal("mc.horizon_ms must be positive");
    if (mc.repair == 0)
        fatal("mc.repair_ms must be positive");
    if (mc.maxFaults == 0)
        fatal("mc.max_faults must be at least 1");
    if (campaign.maxAttempts == 0)
        fatal("campaign.max_attempts must be at least 1");
    if (campaign.watchdogSec < 0.0)
        fatal("campaign.watchdog_sec must be non-negative");
    serverProfile.validate();
    if (fabric != Fabric::none)
        switchProfile.validate();
}

DataCenterConfig
DataCenterConfig::fromConfig(const Config &cfg)
{
    DataCenterConfig out;
    out.nServers = static_cast<unsigned>(
        cfg.getInt("datacenter.servers", out.nServers));
    out.nCores = static_cast<unsigned>(
        cfg.getInt("datacenter.cores", out.nCores));
    out.seed = static_cast<std::uint64_t>(
        cfg.getInt("datacenter.seed", static_cast<std::int64_t>(out.seed)));

    std::string tm = cfg.getString("datacenter.timer_mode", "events");
    if (tm == "events")
        out.timerMode = TimerMode::events;
    else if (tm == "wheel")
        out.timerMode = TimerMode::wheel;
    else
        fatal("unknown datacenter.timer_mode '", tm, "'");
    if (cfg.has("datacenter.wheel_granularity_us")) {
        out.wheelGranularity = static_cast<Tick>(
            cfg.getDouble("datacenter.wheel_granularity_us") *
            static_cast<double>(usec));
    }

    std::string pm = cfg.getString("datacenter.pdes_mode", "off");
    if (pm == "off") {
        out.pdes.mode = PdesSettings::Mode::off;
    } else if (pm.rfind("pods:", 0) == 0) {
        out.pdes.mode = PdesSettings::Mode::pods;
        try {
            out.pdes.partitions =
                static_cast<unsigned>(std::stoul(pm.substr(5)));
        } catch (const std::exception &) {
            fatal("bad datacenter.pdes_mode '", pm,
                  "' (expected off or pods:N)");
        }
    } else {
        fatal("unknown datacenter.pdes_mode '", pm,
              "' (expected off or pods:N)");
    }
    if (cfg.has("datacenter.pdes_lookahead_us")) {
        out.pdes.lookahead = static_cast<Tick>(
            cfg.getDouble("datacenter.pdes_lookahead_us") *
            static_cast<double>(usec));
    }

    std::string qm = cfg.getString("server.queue_mode", "unified");
    if (qm == "unified")
        out.queueMode = LocalQueueMode::unified;
    else if (qm == "per_core")
        out.queueMode = LocalQueueMode::perCore;
    else
        fatal("unknown server.queue_mode '", qm, "'");

    std::string cp = cfg.getString("server.core_pick", "round_robin");
    if (cp == "round_robin")
        out.corePick = CorePickPolicy::roundRobin;
    else if (cp == "least_loaded")
        out.corePick = CorePickPolicy::leastLoaded;
    else
        fatal("unknown server.core_pick '", cp, "'");

    out.allowPkgC6 = cfg.getBool("server.allow_pkg_c6", out.allowPkgC6);

    std::string ctrl = cfg.getString("server.controller", "always_on");
    if (ctrl == "always_on")
        out.controller = Controller::alwaysOn;
    else if (ctrl == "delay_timer")
        out.controller = Controller::delayTimer;
    else
        fatal("unknown server.controller '", ctrl, "'");
    if (cfg.has("server.tau_ms")) {
        out.delayTimerTau = static_cast<Tick>(
            cfg.getDouble("server.tau_ms") * static_cast<double>(msec));
    }

    std::string pol = cfg.getString("scheduler.policy", "least_loaded");
    if (pol == "round_robin")
        out.dispatch = Dispatch::roundRobin;
    else if (pol == "least_loaded")
        out.dispatch = Dispatch::leastLoaded;
    else if (pol == "random")
        out.dispatch = Dispatch::random;
    else if (pol == "network_aware")
        out.dispatch = Dispatch::networkAware;
    else
        fatal("unknown scheduler.policy '", pol, "'");
    out.useGlobalQueue =
        cfg.getBool("scheduler.global_queue", out.useGlobalQueue);
    out.taskAntiAffinity =
        cfg.getBool("scheduler.anti_affinity", out.taskAntiAffinity);

    std::string fab = cfg.getString("network.fabric", "none");
    if (fab == "none")
        out.fabric = Fabric::none;
    else if (fab == "star")
        out.fabric = Fabric::star;
    else if (fab == "fat_tree")
        out.fabric = Fabric::fatTree;
    else if (fab == "flattened_butterfly")
        out.fabric = Fabric::flattenedButterfly;
    else if (fab == "bcube")
        out.fabric = Fabric::bcube;
    else if (fab == "camcube")
        out.fabric = Fabric::camCube;
    else
        fatal("unknown network.fabric '", fab, "'");
    out.fabricParam = static_cast<unsigned>(
        cfg.getInt("network.param", out.fabricParam));
    out.fabricParam2 = static_cast<unsigned>(
        cfg.getInt("network.param2", out.fabricParam2));
    if (cfg.has("network.link_rate_gbps"))
        out.linkRate = cfg.getDouble("network.link_rate_gbps") * 1e9;
    if (cfg.has("network.link_latency_us")) {
        out.linkLatency = static_cast<Tick>(
            cfg.getDouble("network.link_latency_us") *
            static_cast<double>(usec));
    }
    if (cfg.has("network.switch_sleep_ms")) {
        out.netConfig.switchSleepDelay = static_cast<Tick>(
            cfg.getDouble("network.switch_sleep_ms") *
            static_cast<double>(msec));
    }
    out.netConfig.netModel.kind = parseNetModelKind(
        cfg.getString("network.model", "exact"));
    if (cfg.has("network.fast_path_kb")) {
        double kb = cfg.getDouble("network.fast_path_kb");
        if (kb < 0.0)
            fatal("network.fast_path_kb must be non-negative");
        out.netConfig.netModel.fastPathBytes =
            static_cast<Bytes>(kb * 1024.0);
    }

    out.fault.enabled = cfg.getBool("fault.enabled", out.fault.enabled);
    out.fault.mttfHours =
        cfg.getDouble("fault.mttf_hours", out.fault.mttfHours);
    out.fault.mttrMinutes =
        cfg.getDouble("fault.mttr_minutes", out.fault.mttrMinutes);
    out.fault.distribution =
        cfg.getString("fault.distribution", out.fault.distribution);
    out.fault.weibullShape =
        cfg.getDouble("fault.weibull_shape", out.fault.weibullShape);
    out.fault.faultTrace =
        cfg.getString("fault.fault_trace", out.fault.faultTrace);
    out.fault.faultServers =
        cfg.getBool("fault.fault_servers", out.fault.faultServers);
    out.fault.faultSwitches =
        cfg.getBool("fault.fault_switches", out.fault.faultSwitches);
    out.fault.faultLinecards =
        cfg.getBool("fault.fault_linecards", out.fault.faultLinecards);
    out.fault.faultLinks =
        cfg.getBool("fault.fault_links", out.fault.faultLinks);
    out.fault.maxRetries = static_cast<unsigned>(cfg.getInt(
        "fault.max_retries",
        static_cast<std::int64_t>(out.fault.maxRetries)));
    if (cfg.has("fault.retry_backoff_base_ms")) {
        out.fault.retryBackoffBase = static_cast<Tick>(
            cfg.getDouble("fault.retry_backoff_base_ms") *
            static_cast<double>(msec));
    }
    if (cfg.has("fault.retry_backoff_max_ms")) {
        out.fault.retryBackoffMax = static_cast<Tick>(
            cfg.getDouble("fault.retry_backoff_max_ms") *
            static_cast<double>(msec));
    }
    if (cfg.has("fault.task_timeout_ms")) {
        out.fault.taskTimeout = static_cast<Tick>(
            cfg.getDouble("fault.task_timeout_ms") *
            static_cast<double>(msec));
    }

    out.orch.placement =
        cfg.getString("orch.placement", out.orch.placement);
    if (cfg.has("orch.reconcile_ms")) {
        out.orch.reconcilePeriod = static_cast<Tick>(
            cfg.getDouble("orch.reconcile_ms") *
            static_cast<double>(msec));
    }
    out.orch.overcommit =
        cfg.getDouble("orch.overcommit", out.orch.overcommit);
    out.orch.interference =
        cfg.getDouble("orch.interference", out.orch.interference);
    out.orch.remoteMemPenaltyPerUs =
        cfg.getDouble("orch.remote_mem_penalty_per_us",
                      out.orch.remoteMemPenaltyPerUs);
    if (cfg.has("orch.server_mem_mb")) {
        out.orch.serverMemBytes = static_cast<Bytes>(
            cfg.getDouble("orch.server_mem_mb") * 1024.0 * 1024.0);
    }
    out.orch.autoscale =
        cfg.getBool("orch.autoscale", out.orch.autoscale);
    out.orch.autoscaleHigh =
        cfg.getDouble("orch.autoscale_high", out.orch.autoscaleHigh);
    out.orch.autoscaleLow =
        cfg.getDouble("orch.autoscale_low", out.orch.autoscaleLow);
    out.orch.rebalance =
        cfg.getBool("orch.rebalance", out.orch.rebalance);
    out.orch.migrationDirtyFrac = cfg.getDouble(
        "orch.migration_dirty_frac", out.orch.migrationDirtyFrac);
    if (cfg.has("orch.migration_stop_copy_mb")) {
        out.orch.migrationStopCopyBytes = static_cast<Bytes>(
            cfg.getDouble("orch.migration_stop_copy_mb") * 1024.0 *
            1024.0);
    }
    out.orch.migrationMaxRounds = static_cast<unsigned>(cfg.getInt(
        "orch.migration_max_rounds",
        static_cast<std::int64_t>(out.orch.migrationMaxRounds)));
    out.orch.tagJobs = cfg.getBool("orch.tag_jobs", out.orch.tagJobs);
    out.orch.replicas = static_cast<unsigned>(cfg.getInt(
        "orch.replicas", static_cast<std::int64_t>(out.orch.replicas)));
    out.orch.minReplicas = static_cast<unsigned>(cfg.getInt(
        "orch.min_replicas",
        static_cast<std::int64_t>(out.orch.minReplicas)));
    out.orch.maxReplicas = static_cast<unsigned>(cfg.getInt(
        "orch.max_replicas",
        static_cast<std::int64_t>(out.orch.maxReplicas)));
    out.orch.containerCores = cfg.getDouble("orch.container_cores",
                                            out.orch.containerCores);
    if (cfg.has("orch.container_mem_mb")) {
        out.orch.containerMemBytes = static_cast<Bytes>(
            cfg.getDouble("orch.container_mem_mb") * 1024.0 * 1024.0);
    }
    out.orch.remoteMemFrac = cfg.getDouble("orch.remote_mem_frac",
                                           out.orch.remoteMemFrac);
    out.orch.antiAffinity =
        cfg.getBool("orch.anti_affinity", out.orch.antiAffinity);
    // Any orch.* key opts the layer in unless an explicit
    // enabled=false vetoes it; no section at all stays fully off
    // (and default behavior byte-identical).
    bool anyOrchKey = false;
    for (const std::string &key : cfg.keys()) {
        if (key.rfind("orch.", 0) == 0) {
            anyOrchKey = true;
            break;
        }
    }
    out.orch.enabled = cfg.getBool("orch.enabled", anyOrchKey);

    out.telemetry.traceOut =
        cfg.getString("telemetry.trace_out", out.telemetry.traceOut);
    out.telemetry.traceFormat = cfg.getString(
        "telemetry.trace_format", out.telemetry.traceFormat);
    out.telemetry.traceCategories = cfg.getString(
        "telemetry.trace_categories", out.telemetry.traceCategories);
    out.telemetry.sampleOut =
        cfg.getString("telemetry.sample_out", out.telemetry.sampleOut);
    if (cfg.has("telemetry.sample_period_ms")) {
        out.telemetry.samplePeriod = static_cast<Tick>(
            cfg.getDouble("telemetry.sample_period_ms") *
            static_cast<double>(msec));
    }
    out.telemetry.profile =
        cfg.getBool("telemetry.profile", out.telemetry.profile);
    // Any configured output turns telemetry on unless an explicit
    // enabled=false vetoes it; no section at all stays fully off.
    out.telemetry.enabled = cfg.getBool(
        "telemetry.enabled", !out.telemetry.traceOut.empty() ||
                                 !out.telemetry.sampleOut.empty() ||
                                 out.telemetry.profile);

    out.audit.enabled = cfg.getBool("audit.enabled", out.audit.enabled);
    if (cfg.has("audit.period_ms")) {
        out.audit.period = static_cast<Tick>(
            cfg.getDouble("audit.period_ms") *
            static_cast<double>(msec));
    }
    out.audit.fatal = cfg.getBool("audit.fatal", out.audit.fatal);
    out.audit.energyTolerance = cfg.getDouble(
        "audit.energy_tolerance", out.audit.energyTolerance);

    out.mc.strategy = cfg.getString("mc.strategy", out.mc.strategy);
    if (cfg.has("mc.horizon_ms")) {
        out.mc.horizon = static_cast<Tick>(
            cfg.getDouble("mc.horizon_ms") * static_cast<double>(msec));
    }
    out.mc.budget = static_cast<std::uint64_t>(cfg.getInt(
        "mc.budget", static_cast<std::int64_t>(out.mc.budget)));
    out.mc.eventBudget = static_cast<std::uint64_t>(cfg.getInt(
        "mc.event_budget",
        static_cast<std::int64_t>(out.mc.eventBudget)));
    if (cfg.has("mc.repair_ms")) {
        out.mc.repair = static_cast<Tick>(
            cfg.getDouble("mc.repair_ms") * static_cast<double>(msec));
    }
    out.mc.maxFaults = static_cast<unsigned>(cfg.getInt(
        "mc.max_faults", static_cast<std::int64_t>(out.mc.maxFaults)));
    out.mc.seedBug = cfg.getBool("mc.seed_bug", out.mc.seedBug);

    out.campaign.journal =
        cfg.getString("campaign.journal", out.campaign.journal);
    out.campaign.watchdogSec = cfg.getDouble(
        "campaign.watchdog_sec", out.campaign.watchdogSec);
    out.campaign.maxEvents = static_cast<std::uint64_t>(cfg.getInt(
        "campaign.max_events",
        static_cast<std::int64_t>(out.campaign.maxEvents)));
    out.campaign.maxAttempts = static_cast<unsigned>(cfg.getInt(
        "campaign.max_attempts",
        static_cast<std::int64_t>(out.campaign.maxAttempts)));
    if (cfg.has("campaign.retry_backoff_base_ms")) {
        out.campaign.retryBackoffBase = static_cast<Tick>(
            cfg.getDouble("campaign.retry_backoff_base_ms") *
            static_cast<double>(msec));
    }
    if (cfg.has("campaign.retry_backoff_max_ms")) {
        out.campaign.retryBackoffMax = static_cast<Tick>(
            cfg.getDouble("campaign.retry_backoff_max_ms") *
            static_cast<double>(msec));
    }

    out.validate();
    return out;
}

namespace {

/** Every key any HolDCSim config parser reads, by section. */
const char *const knownConfigKeys[] = {
    // clang-format off
    "datacenter.servers", "datacenter.cores", "datacenter.seed",
    "datacenter.timer_mode", "datacenter.wheel_granularity_us",
    "datacenter.pdes_mode", "datacenter.pdes_lookahead_us",
    "server.queue_mode", "server.core_pick", "server.allow_pkg_c6",
    "server.controller", "server.tau_ms",
    "scheduler.policy", "scheduler.global_queue",
    "scheduler.anti_affinity",
    "network.fabric", "network.param", "network.param2",
    "network.link_rate_gbps", "network.link_latency_us",
    "network.switch_sleep_ms", "network.model",
    "network.fast_path_kb",
    "fault.enabled", "fault.mttf_hours", "fault.mttr_minutes",
    "fault.distribution", "fault.weibull_shape", "fault.fault_trace",
    "fault.fault_servers", "fault.fault_switches",
    "fault.fault_linecards", "fault.fault_links", "fault.max_retries",
    "fault.retry_backoff_base_ms", "fault.retry_backoff_max_ms",
    "fault.task_timeout_ms",
    "orch.enabled", "orch.placement", "orch.reconcile_ms",
    "orch.overcommit", "orch.interference",
    "orch.remote_mem_penalty_per_us", "orch.server_mem_mb",
    "orch.autoscale", "orch.autoscale_high", "orch.autoscale_low",
    "orch.rebalance", "orch.migration_dirty_frac",
    "orch.migration_stop_copy_mb", "orch.migration_max_rounds",
    "orch.tag_jobs", "orch.replicas", "orch.min_replicas",
    "orch.max_replicas", "orch.container_cores",
    "orch.container_mem_mb", "orch.remote_mem_frac",
    "orch.anti_affinity",
    "telemetry.enabled", "telemetry.trace_out",
    "telemetry.trace_format", "telemetry.trace_categories",
    "telemetry.sample_out", "telemetry.sample_period_ms",
    "telemetry.profile",
    "audit.enabled", "audit.period_ms", "audit.fatal",
    "audit.energy_tolerance",
    "mc.strategy", "mc.horizon_ms", "mc.budget", "mc.event_budget",
    "mc.repair_ms", "mc.max_faults", "mc.seed_bug",
    "campaign.journal", "campaign.watchdog_sec",
    "campaign.max_events", "campaign.max_attempts",
    "campaign.retry_backoff_base_ms", "campaign.retry_backoff_max_ms",
    "workload.arrival", "workload.rate", "workload.utilization",
    "workload.duration_s", "workload.max_jobs", "workload.service",
    "workload.service_mean_ms", "workload.service_max_ms",
    "workload.job", "workload.stages", "workload.transfer_kb",
    "workload.burst_ratio", "workload.burst_fraction",
    "workload.trace_file",
    "server_power.core_active_w", "server_power.core_c0_idle_w",
    "server_power.core_c1_w", "server_power.core_c3_w",
    "server_power.core_c6_w", "server_power.pkg_pc0_w",
    "server_power.pkg_pc2_w", "server_power.pkg_pc6_w",
    "server_power.dram_active_w", "server_power.dram_idle_w",
    "server_power.dram_self_refresh_w", "server_power.platform_s0_w",
    "server_power.platform_s3_w", "server_power.platform_s5_w",
    "server_power.s3_wake_ms", "server_power.s3_entry_ms",
    "switch_power.chassis_base_w", "switch_power.switch_sleep_w",
    "switch_power.linecard_active_w", "switch_power.linecard_sleep_w",
    "switch_power.port_active_w", "switch_power.port_lpi_w",
    "switch_power.switch_wake_ms", "switch_power.linecard_wake_ms",
    // clang-format on
};

/**
 * Levenshtein distance of @p a and @p b, capped at @p limit + 1
 * (band-pruned: anything farther reports limit + 1).
 */
std::size_t
editDistance(const std::string &a, const std::string &b,
             std::size_t limit)
{
    if (a.size() > b.size())
        return editDistance(b, a, limit);
    if (b.size() - a.size() > limit)
        return limit + 1;
    std::vector<std::size_t> prev(a.size() + 1);
    std::vector<std::size_t> cur(a.size() + 1);
    for (std::size_t i = 0; i <= a.size(); ++i)
        prev[i] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
        cur[0] = j;
        std::size_t rowMin = cur[0];
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t sub = prev[i - 1] + (a[i - 1] != b[j - 1]);
            cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
            rowMin = std::min(rowMin, cur[i]);
        }
        if (rowMin > limit)
            return limit + 1;
        prev.swap(cur);
    }
    return prev[a.size()];
}

/** Closest known key within edit distance 2, or empty. */
std::string
nearestKnownKey(const std::string &key)
{
    constexpr std::size_t limit = 2;
    std::string best;
    std::size_t bestDist = limit + 1;
    for (const char *k : knownConfigKeys) {
        std::size_t d = editDistance(key, k, limit);
        if (d < bestDist) {
            bestDist = d;
            best = k;
        }
    }
    return best;
}

} // namespace

void
warnUnknownConfigKeys(const Config &cfg)
{
    for (const std::string &key : cfg.keys()) {
        // Sweep keys name other config keys; SweepSpec validates
        // them when the sweep is applied.
        if (key.rfind("sweep.", 0) == 0)
            continue;
        bool known = false;
        for (const char *k : knownConfigKeys) {
            if (key == k) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::string where = cfg.origin(key);
            std::string near = nearestKnownKey(key);
            warn("unknown config key '", key, "'",
                 where.empty() ? "" : " (" + where + ")", " ignored",
                 near.empty() ? "" : "; did you mean '" + near + "'?");
        }
    }
}

} // namespace holdcsim
