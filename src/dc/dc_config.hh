/**
 * @file
 * Top-level data center configuration: the "configurable user
 * script" (paper section III) that selects the server fleet,
 * per-server power management, global dispatch policy and network
 * fabric for an experiment, loadable from INI text.
 */

#ifndef HOLDCSIM_DC_DC_CONFIG_HH
#define HOLDCSIM_DC_DC_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_model.hh"
#include "network/network.hh"
#include "network/switch_power.hh"
#include "server/power_profile.hh"
#include "server/server.hh"
#include "sim/config.hh"

namespace holdcsim {

/** Everything needed to instantiate a DataCenter. */
struct DataCenterConfig {
    /** @name Server fleet */
    ///@{
    /** Number of servers (ignored when a fabric dictates it). */
    unsigned nServers = 50;
    unsigned nCores = 4;
    ServerPowerProfile serverProfile;
    LocalQueueMode queueMode = LocalQueueMode::unified;
    CorePickPolicy corePick = CorePickPolicy::roundRobin;
    bool allowPkgC6 = true;
    ///@}

    /** @name Per-server power controller */
    ///@{
    enum class Controller { alwaysOn, delayTimer };
    Controller controller = Controller::alwaysOn;
    /** Delay-timer tau (maxTick = never suspend). */
    Tick delayTimerTau = 1 * sec;
    ///@}

    /** @name Global dispatch */
    ///@{
    enum class Dispatch { roundRobin, leastLoaded, random,
                          networkAware };
    Dispatch dispatch = Dispatch::leastLoaded;
    bool useGlobalQueue = false;
    /** Never co-locate a task with its parent (forces flows). */
    bool taskAntiAffinity = false;
    ///@}

    /** @name Kernel timer discipline */
    ///@{
    /**
     * How power-state governor timeouts (core demotion, port LPI,
     * line card / switch sleep) are scheduled: one kernel event per
     * timeout (events), or coalesced onto a shared hierarchical
     * timer wheel (wheel). With wheelGranularity = 1 the wheel is
     * statistics-identical to events mode; coarser buckets trade
     * firing exactness (quantized up) for fewer kernel events.
     */
    enum class TimerMode { events, wheel };
    TimerMode timerMode = TimerMode::events;
    /** Wheel bucket width (default 1 ns = exact firing). */
    Tick wheelGranularity = 1;
    ///@}

    /** @name Parallel kernel (conservative PDES, src/sim/pdes) */
    ///@{
    struct PdesSettings {
        enum class Mode { off, pods };
        /** off = sequential kernel (bit-identical to older builds). */
        Mode mode = Mode::off;
        /** Worker/partition count for Mode::pods (>= 1). */
        unsigned partitions = 1;
        /**
         * Lookahead override; 0 derives it from the topology (the
         * minimum pod-to-core link latency, see PartitionMap). A
         * nonzero override must not exceed the derived value or the
         * conservative guarantee breaks; it is validated against the
         * topology at plant construction.
         */
        Tick lookahead = 0;

        bool enabled() const { return mode == Mode::pods; }
    };
    PdesSettings pdes;
    ///@}

    /** @name Network fabric */
    ///@{
    enum class Fabric { none, star, fatTree, flattenedButterfly,
                        bcube, camCube };
    Fabric fabric = Fabric::none;
    /** k (fat tree / butterfly / torus edge) or n (BCube). */
    unsigned fabricParam = 4;
    /** Concentration (butterfly) or levels (BCube). */
    unsigned fabricParam2 = 1;
    BitsPerSec linkRate = 1e9;
    Tick linkLatency = 5 * usec;
    SwitchPowerProfile switchProfile =
        SwitchPowerProfile::cisco2960_24();
    NetworkConfig netConfig;
    ///@}

    /** @name Fault injection and retry (strictly opt-in) */
    ///@{
    struct FaultSettings {
        /** Master switch; everything below is inert when false. */
        bool enabled = false;
        /** Mean time to failure per component. */
        double mttfHours = 100.0;
        /** Mean time to repair per component. */
        double mttrMinutes = 10.0;
        /** Time-to-failure distribution: exponential | weibull. */
        std::string distribution = "exponential";
        double weibullShape = 1.5;
        /** Deterministic trace file; overrides the distributions. */
        std::string faultTrace;
        /** Which component classes fail. */
        bool faultServers = true;
        bool faultSwitches = false;
        bool faultLinecards = false;
        bool faultLinks = false;
        /** Retries after the first attempt (maxAttempts - 1). */
        unsigned maxRetries = 2;
        Tick retryBackoffBase = 10 * msec;
        Tick retryBackoffMax = 10 * sec;
        /** Per-attempt timeout; 0 disables. */
        Tick taskTimeout = 0;
        /**
         * Explicit in-memory schedule (the src/mc explorer's
         * injection path). When useSchedule is true the episodes
         * below override both the trace file and the distributions
         * and are replayed through a ScheduleFaultModel, which
         * fatals on any drift instead of resynchronizing. Built
         * programmatically; not an INI key.
         */
        bool useSchedule = false;
        std::vector<ScheduledFault> schedule;
    };
    FaultSettings fault;
    ///@}

    /** @name Telemetry (strictly opt-in; default fully disabled) */
    ///@{
    struct TelemetrySettings {
        /**
         * Resolved master switch. fromConfig defaults it to "true
         * iff any output below is configured"; an explicit
         * telemetry.enabled=false forces everything off.
         */
        bool enabled = false;
        /** Timeline trace file; empty disables tracing. */
        std::string traceOut;
        /** Trace backend: json (Perfetto) | csv. */
        std::string traceFormat = "json";
        /** Category filter, e.g. "server,task,flow"; "all". */
        std::string traceCategories = "all";
        /** Time-series CSV file; empty disables sampling. */
        std::string sampleOut;
        /** Sampling period. */
        Tick samplePeriod = 100 * msec;
        /** Kernel profiling (profile.* stats + hot-events table). */
        bool profile = false;

        bool wantsTracing() const { return enabled && !traceOut.empty(); }
        bool wantsSampling() const
        {
            return enabled && !sampleOut.empty();
        }
        bool wantsProfiling() const { return enabled && profile; }
    };
    TelemetrySettings telemetry;
    ///@}

    /** @name Container orchestration (strictly opt-in) */
    ///@{
    struct OrchSettings {
        /**
         * Resolved master switch. fromConfig defaults it to "true iff
         * any orch.* key is present"; an explicit orch.enabled=false
         * forces the layer off. When off the DataCenter behaves
         * byte-identically to a build without the orchestrator.
         */
        bool enabled = false;
        /** Placement policy: bin_pack | spread | affinity. */
        std::string placement = "bin_pack";
        Tick reconcilePeriod = 1 * sec;
        /** Core overcommit cap (>= 1). */
        double overcommit = 1.0;
        /** Local memory capacity per server. */
        Bytes serverMemBytes = static_cast<Bytes>(64) << 30;
        /** Co-location interference coefficient (0 disables). */
        double interference = 0.0;
        /** Remote-memory penalty per us of fabric path latency. */
        double remoteMemPenaltyPerUs = 0.0;
        /** Threshold autoscaler. */
        bool autoscale = false;
        double autoscaleHigh = 0.75;
        double autoscaleLow = 0.25;
        /** Migrate off physically overcommitted servers. */
        bool rebalance = false;
        /** Dirty-page migration model (see OrchConfig). */
        double migrationDirtyFrac = 0.25;
        Bytes migrationStopCopyBytes = static_cast<Bytes>(4) << 20;
        unsigned migrationMaxRounds = 8;
        /** Tag every generated job with the default group. */
        bool tagJobs = true;
        /** @name Default deployment (created at construction) */
        ///@{
        unsigned replicas = 4;
        unsigned minReplicas = 1;
        unsigned maxReplicas = 16;
        double containerCores = 1.0;
        Bytes containerMemBytes = static_cast<Bytes>(512) << 20;
        double remoteMemFrac = 0.0;
        bool antiAffinity = false;
        ///@}
    };
    OrchSettings orch;
    ///@}

    /** @name Runtime invariant auditing (strictly opt-in) */
    ///@{
    struct AuditSettings {
        /** Master switch for the periodic invariant auditor. */
        bool enabled = false;
        /** Simulated time between audits. */
        Tick period = 100 * msec;
        /**
         * Violations abort the replica (structured abort dump +
         * SimAbortError, so campaigns quarantine it). When false the
         * auditor only warns and counts.
         */
        bool fatal = true;
        /** Relative tolerance of the energy-accounting check. */
        double energyTolerance = 1e-6;
    };
    AuditSettings audit;
    ///@}

    /** @name Fault-schedule exploration (src/mc; strictly opt-in) */
    ///@{
    struct McSettings {
        /**
         * Strategy lattice tier: boundary | pairwise | exhaustive |
         * random (see src/mc/strategy.hh for what each enumerates).
         */
        std::string strategy = "pairwise";
        /** Schedule horizon: episodes are injected within [0, this]. */
        Tick horizon = 2 * sec;
        /** Max schedules explored per campaign (0 = strategy's own). */
        std::uint64_t budget = 256;
        /**
         * Per-schedule simulated-event budget -- the hang oracle. A
         * run crossing it counts as a finding (livelock), not a
         * timeout.
         */
        std::uint64_t eventBudget = 5'000'000;
        /** Repair delay applied to generated episodes. */
        Tick repair = 50 * msec;
        /** Episodes per schedule cap (exhaustive/random tiers). */
        unsigned maxFaults = 2;
        /**
         * Arm the seeded pair-crash census bug
         * (GlobalScheduler::debugArmPairCrashBug(0, 1)) -- the
         * explorer's negative test and the mc-smoke CI job.
         */
        bool seedBug = false;
    };
    McSettings mc;
    ///@}

    /** @name Campaign crash tolerance (CLI defaults; flags override) */
    ///@{
    struct CampaignSettings {
        /** Journal file for completed cells ("" = no journal). */
        std::string journal;
        /** Wall-clock watchdog per replica attempt (0 = off). */
        double watchdogSec = 0.0;
        /** Simulated-event budget per replica attempt (0 = off). */
        std::uint64_t maxEvents = 0;
        /** Attempts per cell before quarantine. */
        unsigned maxAttempts = 3;
        /** Host-side backoff between attempts. */
        Tick retryBackoffBase = 200 * msec;
        Tick retryBackoffMax = 5 * sec;
    };
    CampaignSettings campaign;
    ///@}

    /** Root seed for every random stream in the experiment. */
    std::uint64_t seed = 1;

    /** Throw FatalError on inconsistent combinations. */
    void validate() const;

    /**
     * Load from parsed INI text. Recognized keys (all optional):
     *
     *   [datacenter] servers, cores, seed,
     *                timer_mode (events|wheel), wheel_granularity_us,
     *                pdes_mode (off|pods:N), pdes_lookahead_us
     *   [server]     queue_mode (unified|per_core),
     *                core_pick (round_robin|least_loaded),
     *                allow_pkg_c6,
     *                controller (always_on|delay_timer), tau_ms
     *   [scheduler]  policy (round_robin|least_loaded|random|
     *                network_aware), global_queue
     *   [network]    fabric (none|star|fat_tree|flattened_butterfly|
     *                bcube|camcube), param, param2, link_rate_gbps,
     *                link_latency_us, switch_sleep_ms,
     *                model (exact|fluid|hybrid), fast_path_kb
     *   [fault]      enabled, mttf_hours, mttr_minutes,
     *                distribution (exponential|weibull),
     *                weibull_shape, fault_trace, fault_servers,
     *                fault_switches, fault_linecards, fault_links,
     *                max_retries, retry_backoff_base_ms,
     *                retry_backoff_max_ms, task_timeout_ms
     *   [orch]       enabled, placement (bin_pack|spread|affinity),
     *                reconcile_ms, overcommit, interference,
     *                remote_mem_penalty_per_us, server_mem_mb,
     *                autoscale, autoscale_high, autoscale_low,
     *                rebalance, migration_dirty_frac,
     *                migration_stop_copy_mb, migration_max_rounds,
     *                tag_jobs, replicas, min_replicas, max_replicas,
     *                container_cores, container_mem_mb,
     *                remote_mem_frac, anti_affinity
     *   [telemetry]  enabled, trace_out, trace_format (json|csv),
     *                trace_categories, sample_out, sample_period_ms,
     *                profile
     *   [audit]      enabled, period_ms, fatal, energy_tolerance
     *   [mc]         strategy (boundary|pairwise|exhaustive|random),
     *                horizon_ms, budget, event_budget, repair_ms,
     *                max_faults, seed_bug
     *   [campaign]   journal, watchdog_sec, max_events, max_attempts,
     *                retry_backoff_base_ms, retry_backoff_max_ms
     */
    static DataCenterConfig fromConfig(const Config &cfg);
};

/**
 * Warn (with the offending key's file:line) about every key of
 * @p cfg no HolDCSim parser recognizes -- the typo'd key that would
 * otherwise silently fall back to a default. "[sweep]" keys are
 * exempt: they name other config keys and are validated when the
 * sweep is applied. Call once on the base config, not per replica.
 */
void warnUnknownConfigKeys(const Config &cfg);

} // namespace holdcsim

#endif // HOLDCSIM_DC_DC_CONFIG_HH
