#include "datacenter.hh"

#include <cmath>
#include <ostream>

#include "sched/dispatch_policy.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace holdcsim {

/** One workload source feeding the scheduler. */
struct DataCenter::Pump {
    Pump(DataCenter &dc, std::unique_ptr<ArrivalProcess> process,
         JobGenerator &gen, std::size_t max_jobs, Tick until)
        : dc(dc), process(std::move(process)), gen(gen),
          remaining(max_jobs), until(until),
          arriveEvent([this] { onArrival(); }, "pump.arrival")
    {
        scheduleNext();
    }

    ~Pump()
    {
        if (arriveEvent.scheduled())
            dc._sim.deschedule(arriveEvent);
    }

    void
    scheduleNext()
    {
        if (remaining == 0 || process->exhausted())
            return;
        Tick t = process->nextArrival();
        if (t > until)
            return;
        if (t < dc._sim.curTick())
            t = dc._sim.curTick();
        dc._sim.schedule(arriveEvent, t);
    }

    void
    onArrival()
    {
        --remaining;
        Job job = gen.makeJob(dc._sim.curTick());
        // With orchestration on, generated jobs route through the
        // default deployment unless the generator tagged them itself.
        if (dc._orch && dc._config.orch.tagJobs && job.orchGroup() < 0)
            job.setOrchGroup(0);
        dc._sched->submitJob(std::move(job));
        scheduleNext();
    }

    DataCenter &dc;
    std::unique_ptr<ArrivalProcess> process;
    JobGenerator &gen;
    std::size_t remaining;
    Tick until;
    EventFunctionWrapper arriveEvent;
};

DataCenter::DataCenter(const DataCenterConfig &config)
    : _config(config)
{
    _config.validate();

    // Record the experiment seed with the engine so a post-mortem
    // abort dump names the exact replica that died.
    _sim.setExperimentSeed(_config.seed);

    // Telemetry first so components see the tracer/probe from their
    // very first state transition. With the section absent (the
    // default), none of this runs and the engine carries two null
    // pointers -- the simulation is bit-identical to an untraced one.
    const auto &tel = _config.telemetry;
    if (tel.wantsTracing()) {
        std::unique_ptr<TraceSink> sink;
        if (tel.traceFormat == "csv")
            sink = std::make_unique<CsvTraceSink>(tel.traceOut);
        else
            sink = std::make_unique<JsonTraceSink>(tel.traceOut);
        _tracer = std::make_unique<TraceManager>(
            std::move(sink), parseTraceCategories(tel.traceCategories));
        _sim.setTracer(_tracer.get());
    }
    if (tel.wantsProfiling()) {
        _profiler = std::make_unique<KernelProfiler>();
        _sim.setProbe(_profiler.get());
    }

    // The shared governor timer wheel must be installed before any
    // entity that arms power-state timeouts is built: pools, line
    // cards and switches latch the wheel pointer at construction.
    if (_config.timerMode == DataCenterConfig::TimerMode::wheel) {
        _wheel = std::make_unique<TimerWheel>(_sim,
                                              _config.wheelGranularity);
        _sim.setTimerWheel(_wheel.get());
    }

    // Fabric first: topologies dictate the server count.
    if (_config.fabric != DataCenterConfig::Fabric::none) {
        Topology topo;
        switch (_config.fabric) {
          case DataCenterConfig::Fabric::star:
            topo = Topology::star(_config.nServers, _config.linkRate,
                                  _config.linkLatency);
            break;
          case DataCenterConfig::Fabric::fatTree:
            topo = Topology::fatTree(_config.fabricParam,
                                     _config.linkRate,
                                     _config.linkLatency);
            break;
          case DataCenterConfig::Fabric::flattenedButterfly:
            topo = Topology::flattenedButterfly(
                _config.fabricParam, _config.fabricParam2,
                _config.linkRate, _config.linkLatency);
            break;
          case DataCenterConfig::Fabric::bcube:
            topo = Topology::bcube(_config.fabricParam,
                                   _config.fabricParam2,
                                   _config.linkRate,
                                   _config.linkLatency);
            break;
          case DataCenterConfig::Fabric::camCube:
            topo = Topology::camCube(_config.fabricParam,
                                     _config.fabricParam,
                                     _config.fabricParam,
                                     _config.linkRate,
                                     _config.linkLatency);
            break;
          case DataCenterConfig::Fabric::none:
            break;
        }
        _config.nServers = static_cast<unsigned>(topo.numServers());
        _net = std::make_unique<Network>(_sim, std::move(topo),
                                         _config.switchProfile,
                                         _config.netConfig);
    }

    // Parallel-kernel partition plan. Derived and validated eagerly
    // so an unsplittable fabric or an unsound lookahead override
    // fails here, not deep inside a campaign; the monolithic
    // DataCenter itself keeps executing sequentially (the partitioned
    // execution path is PodCluster, which builds one Simulator per
    // partition -- see docs/DESIGN.md).
    if (_config.pdes.enabled()) {
        _partitionPlan = std::make_unique<PartitionMap>(
            PartitionMap::derive(_net->topology()));
        if (!_partitionPlan->splittable())
            fatal("pdes_mode=pods: ", _partitionPlan->reason());
        if (_config.pdes.partitions > _partitionPlan->pods())
            fatal("pdes_mode=pods:", _config.pdes.partitions,
                  " but the topology only has ",
                  _partitionPlan->pods(), " pods");
        if (_config.pdes.lookahead > _partitionPlan->lookahead())
            fatal("pdes_lookahead_us=", _config.pdes.lookahead / usec,
                  " exceeds the derived lookahead of ",
                  _partitionPlan->lookahead() / usec,
                  " us; a window wider than the minimum cross-pod "
                  "latency breaks the conservative guarantee");
        inform("pdes: ", _partitionPlan->pods(), " pods, lookahead ",
               _partitionPlan->lookahead() / usec,
               " us (plan only; this DataCenter runs sequentially)");
    }

    for (unsigned i = 0; i < _config.nServers; ++i) {
        ServerConfig sc;
        sc.id = i;
        sc.nCores = _config.nCores;
        sc.queueMode = _config.queueMode;
        sc.corePick = _config.corePick;
        sc.allowPkgC6 = _config.allowPkgC6;
        auto server = std::make_unique<Server>(_sim, sc,
                                               _config.serverProfile);
        switch (_config.controller) {
          case DataCenterConfig::Controller::alwaysOn:
            server->setController(
                std::make_unique<AlwaysOnController>());
            break;
          case DataCenterConfig::Controller::delayTimer:
            server->setController(
                std::make_unique<DelayTimerController>(
                    _config.delayTimerTau));
            break;
        }
        _serverPtrs.push_back(server.get());
        _servers.push_back(std::move(server));
    }

    std::unique_ptr<DispatchPolicy> policy;
    switch (_config.dispatch) {
      case DataCenterConfig::Dispatch::roundRobin:
        policy = std::make_unique<RoundRobinPolicy>();
        break;
      case DataCenterConfig::Dispatch::leastLoaded:
        policy = std::make_unique<LeastLoadedPolicy>();
        break;
      case DataCenterConfig::Dispatch::random:
        policy = std::make_unique<RandomPolicy>(
            makeRng("dispatch.random"));
        break;
      case DataCenterConfig::Dispatch::networkAware:
        policy = std::make_unique<NetworkAwarePolicy>(*_net);
        break;
    }
    GlobalSchedulerConfig gsc;
    gsc.useGlobalQueue = _config.useGlobalQueue;
    gsc.antiAffinity = _config.taskAntiAffinity;
    _sched = std::make_unique<GlobalScheduler>(
        _sim, _serverPtrs, std::move(policy), gsc, _net.get());
    if (_config.mc.seedBug && _servers.size() >= 2)
        _sched->debugArmPairCrashBug(0, 1);

    if (_config.fault.enabled) {
        RetryPolicy rp;
        rp.maxAttempts = _config.fault.maxRetries + 1;
        rp.backoffBase = _config.fault.retryBackoffBase;
        rp.backoffMax = _config.fault.retryBackoffMax;
        rp.taskTimeout = _config.fault.taskTimeout;
        _retryJitter = std::make_unique<Rng>(
            makeRng("fault.retry.jitter"));
        _sched->setRetryPolicy(rp, _retryJitter.get());

        std::unique_ptr<FaultModel> model;
        if (_config.fault.useSchedule) {
            model = std::make_unique<ScheduleFaultModel>(
                _config.fault.schedule);
        } else if (!_config.fault.faultTrace.empty()) {
            model = TraceFaultModel::fromFile(_config.fault.faultTrace);
        } else {
            auto dist = _config.fault.distribution == "weibull"
                ? StochasticFaultModel::Distribution::weibull
                : StochasticFaultModel::Distribution::exponential;
            model = std::make_unique<StochasticFaultModel>(
                _config.seed,
                fromSeconds(_config.fault.mttfHours * 3600.0),
                fromSeconds(_config.fault.mttrMinutes * 60.0),
                dist, _config.fault.weibullShape);
        }
        FaultManagerConfig fmc;
        fmc.faultServers = _config.fault.faultServers;
        fmc.faultSwitches = _config.fault.faultSwitches;
        fmc.faultLinecards = _config.fault.faultLinecards;
        fmc.faultLinks = _config.fault.faultLinks;
        _faults = std::make_unique<FaultManager>(
            _sim, std::move(model), _serverPtrs, _net.get(),
            _sched.get(), fmc);
    }

    // Orchestration layer: installs its task router into the
    // scheduler and (when faults run) a server up/down hook into the
    // fault manager. Absent the [orch] section nothing here runs and
    // the scheduler path is untouched.
    if (_config.orch.enabled) {
        const auto &oc = _config.orch;
        OrchConfig ocfg;
        ocfg.placement = oc.placement;
        ocfg.reconcilePeriod = oc.reconcilePeriod;
        ocfg.overcommit = oc.overcommit;
        ocfg.serverMemBytes = oc.serverMemBytes;
        ocfg.interference = oc.interference;
        ocfg.remoteMemPenaltyPerUs = oc.remoteMemPenaltyPerUs;
        ocfg.autoscale = oc.autoscale;
        ocfg.autoscaleHigh = oc.autoscaleHigh;
        ocfg.autoscaleLow = oc.autoscaleLow;
        ocfg.rebalance = oc.rebalance;
        ocfg.migrationDirtyFrac = oc.migrationDirtyFrac;
        ocfg.migrationStopCopyBytes = oc.migrationStopCopyBytes;
        ocfg.migrationMaxRounds = oc.migrationMaxRounds;
        _orch = std::make_unique<Orchestrator>(_sim, *_sched,
                                               _net.get(), ocfg);

        DeploymentSpec ds;
        ds.name = "default";
        ds.container.cores = oc.containerCores;
        ds.container.memBytes = oc.containerMemBytes;
        ds.container.remoteMemFrac = oc.remoteMemFrac;
        ds.replicas = oc.replicas;
        ds.minReplicas = oc.minReplicas;
        ds.maxReplicas = oc.maxReplicas;
        ds.antiAffinity = oc.antiAffinity;
        ds.group = 0;
        _orch->createDeployment(std::move(ds));

        if (_faults) {
            _faults->setServerEventHook(
                [this](std::size_t idx, bool down) {
                    if (down)
                        _orch->onServerDown(idx);
                    else
                        _orch->onServerUp(idx);
                });
        }
    }

    // Invariant auditor: re-derives conservation properties from live
    // state every audit period. The "event_queue" structural check is
    // built in; the model-level checks close over the finished plant.
    if (_config.audit.enabled) {
        _auditor = std::make_unique<InvariantAuditor>(
            _sim, _config.audit.period);
        _auditor->setFatal(_config.audit.fatal);

        _auditor->addCheck("task_conservation", [this] {
            GlobalScheduler::TaskCensus c = _sched->taskCensus();
            if (c.created != c.finished + c.aborted + c.live) {
                return detail::format(
                    "tasks created (", c.created, ") != finished (",
                    c.finished, ") + aborted (", c.aborted,
                    ") + live (", c.live, ")");
            }
            return std::string();
        });

        _auditor->addCheck("energy_accounting", [this] {
            FleetEnergy fe = fleetEnergy(_serverPtrs);
            double components = fe.total.total();
            double servers = 0.0;
            for (const EnergyBreakdown &e : fe.perServer) {
                if (!std::isfinite(e.total()) || e.total() < 0.0) {
                    return detail::format(
                        "non-finite or negative server energy ",
                        e.total(), " J");
                }
                servers += e.total();
            }
            double tol = _config.audit.energyTolerance *
                         std::max({std::abs(components),
                                   std::abs(servers), 1.0});
            if (std::abs(components - servers) > tol) {
                return detail::format(
                    "component energy sum ", components,
                    " J != per-server total ", servers,
                    " J (tolerance ", tol, " J)");
            }
            return std::string();
        });

        if (_tracer && _tracer->wants(TraceCategory::audit)) {
            TraceTrackId track = _tracer->track("audit", "invariants");
            _auditor->setViolationHook(
                [this, track](const std::string &name,
                              const std::string &msg) {
                    _tracer->instant(track, TraceCategory::audit,
                                     name + ": " + msg,
                                     _sim.curTick());
                });
        }
        _auditor->start();
    }

    // Sampler last: its probes read the finished plant. All probes
    // are read-only, and the sampling event is a background event at
    // stats priority, so an armed sampler perturbs neither event
    // ordering nor the model.
    if (tel.wantsSampling()) {
        _sampler = std::make_unique<Sampler>(_sim, tel.sampleOut,
                                             tel.samplePeriod);
        _sampler->addProbe("server_power_w",
                           [this] { return serverPower(); });
        _sampler->addProbe("awake_servers", [this] {
            return static_cast<double>(awakeServers());
        });
        _sampler->addProbe("global_queue_len", [this] {
            return static_cast<double>(_sched->globalQueueLength());
        });
        _sampler->addProbe("active_jobs", [this] {
            return static_cast<double>(_sched->activeJobs());
        });
        if (_net) {
            _sampler->addProbe("switch_power_w",
                               [this] { return switchPower(); });
            _sampler->addProbe("active_flows", [this] {
                return static_cast<double>(_net->flows().activeFlows());
            });
            // Solver cost over time: watch the bandwidth-share
            // solver's workload evolve with the traffic mix.
            _sampler->addProbe("solver_resolves", [this] {
                return static_cast<double>(
                    _net->flows().solverStats().resolves);
            });
            _sampler->addProbe("solver_resolved_flows", [this] {
                return static_cast<double>(
                    _net->flows().solverStats().resolvedFlows);
            });
            _sampler->addProbe("solver_dirty_links", [this] {
                return static_cast<double>(
                    _net->flows().solverStats().dirtyLinks);
            });
            _sampler->addProbe("solver_fast_path_hits", [this] {
                return static_cast<double>(
                    _net->flows().solverStats().fastPathHits);
            });
        }
        if (_orch) {
            _sampler->addProbe("containers_running", [this] {
                return static_cast<double>(
                    _orch->containersRunning());
            });
            _sampler->addProbe("orch_migrations_active", [this] {
                const Orchestrator::Stats &s = _orch->stats();
                return static_cast<double>(s.migrationsStarted -
                                           s.migrationsCompleted -
                                           s.migrationsAborted);
            });
            _sampler->addProbe("orch_tasks_deferred", [this] {
                return static_cast<double>(_sched->deferredTasks());
            });
        }
        if (_faults) {
            _sampler->addProbe("components_down", [this] {
                return static_cast<double>(_faults->currentlyDown());
            });
        }
        _sampler->start();
    }
}

DataCenter::~DataCenter()
{
    // Pumps hold events against the simulator; drop them first.
    _pumps.clear();
}

void
DataCenter::pump(std::unique_ptr<ArrivalProcess> process,
                 JobGenerator &gen, std::size_t max_jobs, Tick until)
{
    if (!process)
        fatal("pump needs an arrival process");
    _pumps.push_back(std::make_unique<Pump>(*this, std::move(process),
                                            gen, max_jobs, until));
}

void
DataCenter::pumpTrace(std::vector<Tick> arrivals, JobGenerator &gen)
{
    pump(std::make_unique<TraceArrival>(std::move(arrivals)), gen);
}

FleetEnergy
DataCenter::energy()
{
    return fleetEnergy(_serverPtrs);
}

std::vector<double>
DataCenter::residency()
{
    return fleetResidency(_serverPtrs);
}

Joules
DataCenter::switchEnergy()
{
    if (!_net)
        return 0.0;
    _net->accrue();
    return _net->switchEnergy();
}

Watts
DataCenter::serverPower() const
{
    Watts total = 0.0;
    for (const auto &s : _servers)
        total += s->power();
    return total;
}

Watts
DataCenter::switchPower() const
{
    return _net ? _net->switchPower() : 0.0;
}

std::size_t
DataCenter::awakeServers() const
{
    std::size_t count = 0;
    for (const auto &s : _servers)
        count += !s->isAsleep();
    return count;
}

void
DataCenter::finishStats()
{
    for (auto &s : _servers)
        s->finishStats();
    if (_net)
        _net->finishStats();
    if (_faults)
        _faults->finishStats();
    if (_sampler)
        _sampler->stop();
    if (_tracer)
        _tracer->flush(_sim.curTick());
}

void
DataCenter::dumpStats(std::ostream &os)
{
    finishStats();
    Tick now = _sim.curTick();

    StatGroup sim_group("sim");
    sim_group.add("seconds", toSeconds(now));
    sim_group.add("events", _sim.eventsProcessed());
    sim_group.dump(os);

    if (_profiler) {
        StatGroup profile_group("profile");
        _profiler->addStats(profile_group);
        KernelProfiler::addQueueStats(profile_group, _sim.eventQueue());
        if (_wheel)
            KernelProfiler::addWheelStats(profile_group, *_wheel);
        profile_group.dump(os);
        _profiler->dumpHotTable(os);
    }

    if (_auditor) {
        StatGroup g("audit");
        g.add("audits_passed", _auditor->auditsPassed());
        g.add("checks_run", _auditor->checksRun());
        g.add("violations", _auditor->violations());
        g.dump(os);
    }

    StatGroup sched_group("scheduler");
    sched_group.add("jobs_submitted", _sched->jobsSubmitted());
    sched_group.add("jobs_completed", _sched->jobsCompleted());
    sched_group.add("tasks_dispatched", _sched->tasksDispatched());
    sched_group.add("transfers_started", _sched->transfersStarted());
    sched_group.add("global_queue_len",
                    static_cast<std::uint64_t>(
                        _sched->globalQueueLength()));
    const auto &lat = _sched->jobLatency();
    sched_group.add("job_latency_mean_s", lat.mean());
    sched_group.add("job_latency_p50_s", lat.p50());
    sched_group.add("job_latency_p90_s", lat.p90());
    sched_group.add("job_latency_p95_s", lat.p95());
    sched_group.add("job_latency_p99_s", lat.p99());
    sched_group.dump(os);

    if (_orch) {
        StatGroup g("orch");
        _orch->addStats(g);
        g.dump(os);
    }

    if (_faults) {
        ReliabilitySummary rel = fleetReliability(_serverPtrs);
        StatGroup g("reliability");
        g.add("fleet_availability", _faults->fleetAvailability());
        g.add("faults_injected", _faults->faultsInjected());
        g.add("total_downtime_s", toSeconds(_faults->totalDowntime()));
        g.add("components_down",
              static_cast<std::uint64_t>(_faults->currentlyDown()));
        g.add("task_retries", _sched->taskRetries());
        g.add("task_timeouts", _sched->taskTimeouts());
        g.add("transfers_aborted", _sched->transfersAborted());
        g.add("jobs_failed", _sched->jobsFailed());
        g.add("server_failures", rel.serverFailures);
        g.add("tasks_killed", rel.tasksKilled);
        g.add("wasted_joules", rel.wastedJoules);
        g.add("wasted_energy_frac", rel.wastedFraction());
        if (_net)
            g.add("flows_aborted", _net->flows().flowsAborted());
        g.dump(os);
    }

    for (auto &srv : _servers) {
        StatGroup g("server" + std::to_string(srv->id()));
        const EnergyBreakdown &e = srv->energy();
        g.add("energy_cpu_j", e.cpu);
        g.add("energy_dram_j", e.dram);
        g.add("energy_platform_j", e.platform);
        g.add("energy_total_j", e.total());
        g.add("tasks_completed", srv->tasksCompleted());
        g.add("wake_transitions", srv->wakeTransitions());
        g.add("sleep_transitions", srv->sleepTransitions());
        const StateResidency &r = srv->residency();
        g.add("frac_active",
              r.fraction(static_cast<int>(ServerState::active)));
        g.add("frac_wakeup",
              r.fraction(static_cast<int>(ServerState::wakingUp)));
        g.add("frac_idle",
              r.fraction(static_cast<int>(ServerState::idle)));
        g.add("frac_pkg_c6",
              r.fraction(static_cast<int>(ServerState::pkgC6)));
        g.add("frac_sys_sleep",
              r.fraction(static_cast<int>(ServerState::sysSleep)));
        if (_faults) {
            g.add("frac_failed",
                  r.fraction(static_cast<int>(ServerState::failed)));
        }
        g.dump(os);
    }

    if (_net) {
        StatGroup n("network");
        n.add("switch_energy_j", _net->switchEnergy());
        n.add("packets_delivered", _net->packetsDelivered());
        n.add("packets_dropped", _net->packetsDropped());
        n.add("flows_completed", _net->flows().flowsCompleted());
        n.add("flow_latency_mean_s", _net->flows().flowLatency().mean());
        n.add("packet_latency_mean_s", _net->packetLatency().mean());
        n.add("sleeping_switches",
              static_cast<std::uint64_t>(_net->sleepingSwitches()));
        // Solver cost counters of the configured model tier
        // (exact/fluid/hybrid): how often the bandwidth-share
        // solver ran, how much of the fabric each run touched, and
        // how many transfers the analytic fast path absorbed.
        const NetSolverStats &ss = _net->flows().solverStats();
        n.add("solver_resolves", ss.resolves);
        n.add("solver_dirty_flows_mean", ss.meanDirtyFlows());
        n.add("solver_dirty_flows_max", ss.maxDirtyFlows);
        n.add("solver_dirty_links", ss.dirtyLinks);
        n.add("fast_path_hits", ss.fastPathHits);
        n.dump(os);
        for (std::size_t i = 0; i < _net->numSwitches(); ++i) {
            Switch &sw = _net->switchAt(i);
            StatGroup g("switch" + std::to_string(sw.id()));
            g.add("energy_j", sw.energy());
            g.add("packets_forwarded", sw.packetsForwarded());
            g.add("packets_dropped", sw.packetsDropped());
            g.add("sleep_transitions", sw.sleepTransitions());
            g.add("frac_asleep", sw.residency().fraction(1));
            g.dump(os);
        }
    }
}

void
DataCenter::resetStats()
{
    for (auto &s : _servers)
        s->resetStats();
    if (_net) {
        for (std::size_t i = 0; i < _net->numSwitches(); ++i)
            _net->switchAt(i).resetStats();
    }
    _sched->resetStats();
    if (_orch)
        _orch->resetStats();
    if (_faults)
        _faults->resetStats();
}

} // namespace holdcsim
