/**
 * @file
 * DES-kernel profiling.
 *
 * The KernelProfiler plugs into Simulator::setProbe() and observes
 * every event dispatch: per-event-type counts and host-side service
 * time, plus the queue-depth high-water mark. It answers "where does
 * the simulator itself spend its time" -- the engine-throughput
 * question behind the paper's scalability claims -- without touching
 * the simulated clock or event ordering.
 */

#ifndef HOLDCSIM_TELEMETRY_PROFILER_HH
#define HOLDCSIM_TELEMETRY_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/timer_wheel.hh"

namespace holdcsim {

/** Per-event-dispatch profiler (install via Simulator::setProbe). */
class KernelProfiler : public KernelProbe
{
  public:
    /** Accumulated cost of one event type. */
    struct TypeStats {
        std::uint64_t count = 0;
        /** Host (wall-clock) nanoseconds inside process(). */
        std::uint64_t hostNs = 0;
    };

    KernelProfiler() = default;

    void beginEvent(const Event &ev, std::size_t queued) override;
    void endEvent() override;

    /** Newest-last dump of the recent-event ring (abort post-mortem). */
    void dumpRecent(std::ostream &os) const override;

    /** Events observed; equals Simulator::eventsProcessed() gained
     *  while installed. */
    std::uint64_t eventsObserved() const { return _events; }

    /** Largest queue size seen at any pop (popped event included). */
    std::size_t peakQueueDepth() const { return _peakDepth; }

    /** Total host nanoseconds spent inside event process() calls. */
    std::uint64_t totalHostNs() const;

    /** Per-type totals, keyed by event name. */
    const std::map<std::string, TypeStats> &byType() const
    {
        return _byType;
    }

    /** Per-type rows sorted by host time, hottest first. */
    std::vector<std::pair<std::string, TypeStats>> hottest() const;

    /** Register profile.* scalars on @p group (name "profile"). */
    void addStats(StatGroup &group) const;

    /**
     * Register queue.* occupancy / bucket-spill counters of the
     * two-level event queue on @p group (pairs with addStats on the
     * same "profile" group).
     */
    static void addQueueStats(StatGroup &group, const EventQueue &queue);

    /**
     * Register wheel.* coalescing counters of the shared governor
     * timer wheel on @p group (pairs with addStats on the same
     * "profile" group; call only when a wheel is installed).
     */
    static void addWheelStats(StatGroup &group, const TimerWheel &wheel);

    /** Human-readable hot-events table, each line "# "-prefixed. */
    void dumpHotTable(std::ostream &os) const;

    /**
     * Machine-readable summary (BENCH_kernel.json shape). @p
     * wall_seconds is the harness-measured wall time of the run; pass
     * 0 if unknown (events_per_sec is then omitted). When @p queue is
     * non-null its occupancy / spill counters are emitted as an
     * "event_queue" object. When @p wheel is non-null its coalescing
     * counters are emitted as a "timer_wheel" object.
     */
    void dumpJson(std::ostream &os, double wall_seconds,
                  const EventQueue *queue = nullptr,
                  const TimerWheel *wheel = nullptr) const;

    void reset();

  private:
    using Clock = std::chrono::steady_clock;

    std::uint64_t _events = 0;
    std::size_t _peakDepth = 0;
    std::map<std::string, TypeStats> _byType;

    /** In-flight dispatch (name copied: one-shots self-delete). */
    std::string _currentName;
    Clock::time_point _currentStart;

    /** Recent-event ring for Simulator::abortDump() post-mortems. */
    struct RecentEvent {
        Tick tick = 0;
        std::size_t queued = 0;
        std::string name;
    };
    static constexpr std::size_t recentCapacity = 32;
    std::vector<RecentEvent> _recent;
    std::size_t _recentNext = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_TELEMETRY_PROFILER_HH
