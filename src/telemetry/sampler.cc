#include "sampler.hh"

#include "sim/logging.hh"

namespace holdcsim {

namespace {

std::unique_ptr<std::ofstream>
openFile(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file)
        fatal("cannot open sample output file '", path, "'");
    return file;
}

} // namespace

Sampler::Sampler(Simulator &sim, std::ostream &os, Tick period)
    : _sim(sim), _os(os), _period(period),
      _event([this] { sampleNow(); }, "sampler.tick",
             Event::statsPriority)
{
    if (_period == 0)
        fatal("sampler period must be positive");
    _event.setBackground(true);
}

Sampler::Sampler(Simulator &sim, const std::string &path, Tick period)
    : _sim(sim), _file(openFile(path)), _os(*_file), _period(period),
      _event([this] { sampleNow(); }, "sampler.tick",
             Event::statsPriority)
{
    if (_period == 0)
        fatal("sampler period must be positive");
    _event.setBackground(true);
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::addProbe(std::string name, ProbeFn fn)
{
    if (_started)
        fatal("cannot add probe '", name, "' to a running sampler");
    if (!fn)
        fatal("sampler probe '", name, "' has no function");
    _probes.emplace_back(std::move(name), std::move(fn));
}

void
Sampler::start()
{
    if (_started)
        return;
    _started = true;
    _os << "time_s,metric,value\n";
    sampleNow();
}

void
Sampler::stop()
{
    if (_event.scheduled())
        _sim.deschedule(_event);
    _os.flush();
}

void
Sampler::sampleNow()
{
    double t = toSeconds(_sim.curTick());
    for (const auto &[name, fn] : _probes) {
        _os << t << ',' << name << ',' << fn() << '\n';
        ++_rows;
    }
    ++_samples;
    _sim.schedule(_event, _sim.curTick() + _period);
}

} // namespace holdcsim
