/**
 * @file
 * Trace output backends for the telemetry subsystem.
 *
 * A TraceSink receives fully-resolved timeline records (slices,
 * instants, async spans, track metadata) from the TraceManager and
 * serializes them. Two backends ship: JsonTraceSink emits the Chrome
 * trace-event format (loadable in Perfetto / chrome://tracing) and
 * CsvTraceSink a compact long-format table for ad-hoc scripting.
 * Sinks either borrow a caller-owned stream (tests) or own a file.
 */

#ifndef HOLDCSIM_TELEMETRY_TRACE_SINK_HH
#define HOLDCSIM_TELEMETRY_TRACE_SINK_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace holdcsim {

/** Serialization backend for timeline trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Name the track group @p pid (Perfetto "process"). */
    virtual void processName(std::uint32_t pid,
                             const std::string &name) = 0;

    /** Name track @p tid within group @p pid (Perfetto "thread"). */
    virtual void trackName(std::uint32_t pid, std::uint32_t tid,
                           const std::string &name) = 0;

    /** A closed duration span [begin, end] on one track. */
    virtual void slice(std::uint32_t pid, std::uint32_t tid,
                       const std::string &name, const char *category,
                       Tick begin, Tick end) = 0;

    /** A zero-duration marker. */
    virtual void instant(std::uint32_t pid, std::uint32_t tid,
                         const std::string &name, const char *category,
                         Tick at) = 0;

    /**
     * Async span endpoints: overlapping operations (flows, task
     * attempts) matched by (category, id, name) rather than stack
     * nesting.
     */
    virtual void asyncBegin(std::uint32_t pid, std::uint32_t tid,
                            const std::string &name,
                            const char *category, std::uint64_t id,
                            Tick at) = 0;
    virtual void asyncEnd(std::uint32_t pid, std::uint32_t tid,
                          const std::string &name,
                          const char *category, std::uint64_t id,
                          Tick at) = 0;

    /** Finalize the output (close JSON arrays, flush buffers). */
    virtual void finish() = 0;

    /** Records emitted so far (metadata included). */
    std::uint64_t recordsWritten() const { return _records; }

  protected:
    std::uint64_t _records = 0;
};

/** Chrome trace-event JSON backend (chrome://tracing / Perfetto). */
class JsonTraceSink : public TraceSink
{
  public:
    /** Write to a caller-owned stream (kept alive by the caller). */
    explicit JsonTraceSink(std::ostream &os);

    /** Write to @p path; throws FatalError if unwritable. */
    explicit JsonTraceSink(const std::string &path);

    ~JsonTraceSink() override;

    void processName(std::uint32_t pid,
                     const std::string &name) override;
    void trackName(std::uint32_t pid, std::uint32_t tid,
                   const std::string &name) override;
    void slice(std::uint32_t pid, std::uint32_t tid,
               const std::string &name, const char *category,
               Tick begin, Tick end) override;
    void instant(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, const char *category,
                 Tick at) override;
    void asyncBegin(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name, const char *category,
                    std::uint64_t id, Tick at) override;
    void asyncEnd(std::uint32_t pid, std::uint32_t tid,
                  const std::string &name, const char *category,
                  std::uint64_t id, Tick at) override;
    void finish() override;

  private:
    /** Write the shared prefix of one event object. */
    void open(char phase, std::uint32_t pid, std::uint32_t tid,
              const std::string &name, const char *category, Tick ts);

    std::unique_ptr<std::ofstream> _file;
    std::ostream &_os;
    bool _finished = false;
};

/** Compact long-format CSV backend. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(std::ostream &os);
    explicit CsvTraceSink(const std::string &path);
    ~CsvTraceSink() override;

    void processName(std::uint32_t pid,
                     const std::string &name) override;
    void trackName(std::uint32_t pid, std::uint32_t tid,
                   const std::string &name) override;
    void slice(std::uint32_t pid, std::uint32_t tid,
               const std::string &name, const char *category,
               Tick begin, Tick end) override;
    void instant(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, const char *category,
                 Tick at) override;
    void asyncBegin(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name, const char *category,
                    std::uint64_t id, Tick at) override;
    void asyncEnd(std::uint32_t pid, std::uint32_t tid,
                  const std::string &name, const char *category,
                  std::uint64_t id, Tick at) override;
    void finish() override;

  private:
    void row(const char *type, std::uint32_t pid, std::uint32_t tid,
             const std::string &name, const char *category, Tick begin,
             Tick end, std::uint64_t id, bool has_id);

    std::unique_ptr<std::ofstream> _file;
    std::ostream &_os;
    bool _finished = false;
};

} // namespace holdcsim

#endif // HOLDCSIM_TELEMETRY_TRACE_SINK_HH
