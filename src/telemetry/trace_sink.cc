#include "trace_sink.hh"

#include "sim/logging.hh"

namespace holdcsim {

namespace {

/** Ticks (ns) to trace-event microseconds, exact to 1 ns. */
std::string
micros(Tick t)
{
    // Print as us with 3 decimals without float rounding drift.
    std::string out = std::to_string(t / 1000);
    out += '.';
    std::string frac = std::to_string(t % 1000);
    out.append(3 - frac.size(), '0');
    out += frac;
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::unique_ptr<std::ofstream>
openFile(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file)
        fatal("cannot open trace output file '", path, "'");
    return file;
}

} // namespace

// -------------------------------------------------------------- JsonTraceSink

JsonTraceSink::JsonTraceSink(std::ostream &os) : _os(os)
{
    _os << "{\"traceEvents\":[\n";
}

JsonTraceSink::JsonTraceSink(const std::string &path)
    : _file(openFile(path)), _os(*_file)
{
    _os << "{\"traceEvents\":[\n";
}

JsonTraceSink::~JsonTraceSink()
{
    finish();
}

void
JsonTraceSink::open(char phase, std::uint32_t pid, std::uint32_t tid,
                    const std::string &name, const char *category,
                    Tick ts)
{
    if (_records > 0)
        _os << ",\n";
    _os << "{\"ph\":\"" << phase << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"name\":\"" << jsonEscape(name)
        << "\",\"cat\":\"" << category << "\",\"ts\":" << micros(ts);
    ++_records;
}

void
JsonTraceSink::processName(std::uint32_t pid, const std::string &name)
{
    if (_records > 0)
        _os << ",\n";
    _os << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
    ++_records;
}

void
JsonTraceSink::trackName(std::uint32_t pid, std::uint32_t tid,
                         const std::string &name)
{
    if (_records > 0)
        _os << ",\n";
    _os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
    ++_records;
}

void
JsonTraceSink::slice(std::uint32_t pid, std::uint32_t tid,
                     const std::string &name, const char *category,
                     Tick begin, Tick end)
{
    open('X', pid, tid, name, category, begin);
    _os << ",\"dur\":" << micros(end - begin) << "}";
}

void
JsonTraceSink::instant(std::uint32_t pid, std::uint32_t tid,
                       const std::string &name, const char *category,
                       Tick at)
{
    open('i', pid, tid, name, category, at);
    _os << ",\"s\":\"t\"}";
}

void
JsonTraceSink::asyncBegin(std::uint32_t pid, std::uint32_t tid,
                          const std::string &name, const char *category,
                          std::uint64_t id, Tick at)
{
    open('b', pid, tid, name, category, at);
    _os << ",\"id\":\"" << id << "\"}";
}

void
JsonTraceSink::asyncEnd(std::uint32_t pid, std::uint32_t tid,
                        const std::string &name, const char *category,
                        std::uint64_t id, Tick at)
{
    open('e', pid, tid, name, category, at);
    _os << ",\"id\":\"" << id << "\"}";
}

void
JsonTraceSink::finish()
{
    if (_finished)
        return;
    _finished = true;
    _os << "\n]}\n";
    _os.flush();
}

// --------------------------------------------------------------- CsvTraceSink

CsvTraceSink::CsvTraceSink(std::ostream &os) : _os(os)
{
    _os << "type,pid,tid,name,category,begin_s,end_s,id\n";
}

CsvTraceSink::CsvTraceSink(const std::string &path)
    : _file(openFile(path)), _os(*_file)
{
    _os << "type,pid,tid,name,category,begin_s,end_s,id\n";
}

CsvTraceSink::~CsvTraceSink()
{
    finish();
}

void
CsvTraceSink::row(const char *type, std::uint32_t pid,
                  std::uint32_t tid, const std::string &name,
                  const char *category, Tick begin, Tick end,
                  std::uint64_t id, bool has_id)
{
    // Names never contain commas (component ids and state names).
    _os << type << ',' << pid << ',' << tid << ',' << name << ','
        << category << ',' << toSeconds(begin) << ','
        << toSeconds(end) << ',';
    if (has_id)
        _os << id;
    _os << '\n';
    ++_records;
}

void
CsvTraceSink::processName(std::uint32_t pid, const std::string &name)
{
    row("process", pid, 0, name, "meta", 0, 0, 0, false);
}

void
CsvTraceSink::trackName(std::uint32_t pid, std::uint32_t tid,
                        const std::string &name)
{
    row("track", pid, tid, name, "meta", 0, 0, 0, false);
}

void
CsvTraceSink::slice(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name, const char *category,
                    Tick begin, Tick end)
{
    row("slice", pid, tid, name, category, begin, end, 0, false);
}

void
CsvTraceSink::instant(std::uint32_t pid, std::uint32_t tid,
                      const std::string &name, const char *category,
                      Tick at)
{
    row("instant", pid, tid, name, category, at, at, 0, false);
}

void
CsvTraceSink::asyncBegin(std::uint32_t pid, std::uint32_t tid,
                         const std::string &name, const char *category,
                         std::uint64_t id, Tick at)
{
    row("async_begin", pid, tid, name, category, at, at, id, true);
}

void
CsvTraceSink::asyncEnd(std::uint32_t pid, std::uint32_t tid,
                       const std::string &name, const char *category,
                       std::uint64_t id, Tick at)
{
    row("async_end", pid, tid, name, category, at, at, id, true);
}

void
CsvTraceSink::finish()
{
    if (_finished)
        return;
    _finished = true;
    _os.flush();
}

} // namespace holdcsim
