/**
 * @file
 * Timeline tracing front end.
 *
 * The TraceManager is the single object model code talks to when it
 * wants to record what happened on a timeline: per-component state
 * machines report transitions (the manager turns consecutive
 * transitions into closed duration slices), schedulers report
 * instants, and overlapping operations (flows, task attempts) report
 * async begin/end pairs keyed by an id.
 *
 * Cost discipline: an experiment without tracing carries no
 * TraceManager at all (Simulator::tracer() is null), so the off path
 * is one pointer test and no allocation. When a manager is installed,
 * every emit site first checks wants(category) -- a mask test --
 * before building any strings.
 */

#ifndef HOLDCSIM_TELEMETRY_TRACE_MANAGER_HH
#define HOLDCSIM_TELEMETRY_TRACE_MANAGER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace_sink.hh"

namespace holdcsim {

/** Event categories, maskable for selective tracing. */
enum class TraceCategory : std::uint32_t {
    /** Server observable power states (Active/Idle/PC6/S3/...). */
    server = 1u << 0,
    /** Core C-state machine and task-execution spans. */
    core = 1u << 1,
    /** Task dispatch -> start -> finish lifecycle, job markers. */
    task = 1u << 2,
    /** Flow start/abort/complete spans. */
    flow = 1u << 3,
    /** Switch and line-card sleep (LPI) transitions. */
    network = 1u << 4,
    /** Fault crash/repair down-windows. */
    fault = 1u << 5,
    /** Invariant-audit violations and watchdog cancellations. */
    audit = 1u << 6,
    /** Container placements, migrations, downtime windows. */
    orch = 1u << 7,
};

/** Mask with every category enabled. */
constexpr std::uint32_t allTraceCategories = 0xff;

/** Stable lowercase name (trace "cat" field, config tokens). */
const char *toString(TraceCategory c);

/**
 * Parse a comma-separated category list ("server,task,flow") into a
 * mask; "all" or the empty string select every category. Throws
 * FatalError on unknown tokens.
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/** Handle to one timeline track (cheap, copyable). */
using TraceTrackId = std::uint32_t;

/** Track handle meaning "not resolved yet" (lazy caching). */
constexpr TraceTrackId noTraceTrack = ~static_cast<TraceTrackId>(0);

/** Timeline recording hub; owns the output sink. */
class TraceManager
{
  public:
    /**
     * @param sink output backend (owned)
     * @param mask category filter (see parseTraceCategories)
     */
    explicit TraceManager(std::unique_ptr<TraceSink> sink,
                          std::uint32_t mask = allTraceCategories);

    /** Flushes (closes open spans at the last seen tick). */
    ~TraceManager();

    TraceManager(const TraceManager &) = delete;
    TraceManager &operator=(const TraceManager &) = delete;

    /** Whether category @p c is being recorded. Cheap; check first. */
    bool
    wants(TraceCategory c) const
    {
        return (_mask & static_cast<std::uint32_t>(c)) != 0;
    }

    /**
     * Register (or look up) the track named @p track inside the
     * group @p process -- e.g. ("servers", "server3"). Call once and
     * cache the handle; lookups are map-based.
     */
    TraceTrackId track(const std::string &process,
                       const std::string &track);

    /**
     * The tracked state machine entered state @p state at @p now.
     * Closes the previous state's slice (if any) and opens a new one;
     * the final open slice is closed by flush().
     */
    void transition(TraceTrackId t, TraceCategory c, std::string state,
                    Tick now);

    /** Zero-duration marker on track @p t. */
    void instant(TraceTrackId t, TraceCategory c,
                 const std::string &name, Tick now);

    /** Open an async span (overlapping ops; match by @p id+name). */
    void asyncBegin(TraceTrackId t, TraceCategory c,
                    const std::string &name, std::uint64_t id,
                    Tick now);

    /** Close the async span opened with the same (@p id, name). */
    void asyncEnd(TraceTrackId t, TraceCategory c,
                  const std::string &name, std::uint64_t id, Tick now);

    /**
     * Close every open state slice at @p now and finalize the sink.
     * Further emits are ignored. Idempotent.
     */
    void flush(Tick now);

    /** Records handed to the sink so far. */
    std::uint64_t eventsEmitted() const;

    TraceSink &sink() { return *_sink; }

  private:
    struct Track {
        std::uint32_t pid;
        std::uint32_t tid;
        /** Open state slice (transition-driven tracks). */
        std::string openState;
        Tick openSince = 0;
        TraceCategory openCategory{};
        bool hasOpen = false;
    };

    std::unique_ptr<TraceSink> _sink;
    std::uint32_t _mask;
    bool _finished = false;
    Tick _lastTick = 0;

    /** process name -> pid. */
    std::map<std::string, std::uint32_t> _processes;
    /** (pid, track name) -> track index. */
    std::map<std::pair<std::uint32_t, std::string>, TraceTrackId>
        _byName;
    std::vector<Track> _tracks;
};

} // namespace holdcsim

#endif // HOLDCSIM_TELEMETRY_TRACE_MANAGER_HH
