#include "profiler.hh"

#include <algorithm>
#include <iomanip>

namespace holdcsim {

void
KernelProfiler::beginEvent(const Event &ev, std::size_t queued)
{
    if (queued > _peakDepth)
        _peakDepth = queued;
    _currentName = ev.name();
    if (_recent.size() < recentCapacity) {
        _recent.push_back(RecentEvent{ev.when(), queued, _currentName});
    } else {
        RecentEvent &slot = _recent[_recentNext];
        slot.tick = ev.when();
        slot.queued = queued;
        slot.name = _currentName;
        _recentNext = (_recentNext + 1) % recentCapacity;
    }
    _currentStart = Clock::now();
}

void
KernelProfiler::dumpRecent(std::ostream &os) const
{
    // _recentNext is the oldest slot once the ring has wrapped.
    std::size_t start = _recent.size() < recentCapacity ? 0 : _recentNext;
    for (std::size_t i = 0; i < _recent.size(); ++i) {
        const RecentEvent &r = _recent[(start + i) % _recent.size()];
        os << "  tick " << r.tick << "  depth " << r.queued << "  "
           << r.name << '\n';
    }
}

void
KernelProfiler::endEvent()
{
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - _currentStart)
                  .count();
    TypeStats &ts = _byType[_currentName];
    ++ts.count;
    ts.hostNs += static_cast<std::uint64_t>(ns);
    ++_events;
}

std::uint64_t
KernelProfiler::totalHostNs() const
{
    std::uint64_t total = 0;
    for (const auto &[name, ts] : _byType)
        total += ts.hostNs;
    return total;
}

std::vector<std::pair<std::string, KernelProfiler::TypeStats>>
KernelProfiler::hottest() const
{
    std::vector<std::pair<std::string, TypeStats>> rows(
        _byType.begin(), _byType.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.hostNs != b.second.hostNs)
                      return a.second.hostNs > b.second.hostNs;
                  if (a.second.count != b.second.count)
                      return a.second.count > b.second.count;
                  return a.first < b.first;
              });
    return rows;
}

void
KernelProfiler::addStats(StatGroup &group) const
{
    group.add("events_observed", _events);
    group.add("event_types", static_cast<std::uint64_t>(_byType.size()));
    group.add("peak_queue_depth",
              static_cast<std::uint64_t>(_peakDepth));
    group.add("host_seconds", static_cast<double>(totalHostNs()) * 1e-9);
    for (const auto &[name, ts] : _byType) {
        group.add("type." + name + ".count", ts.count);
        group.add("type." + name + ".host_us",
                  static_cast<double>(ts.hostNs) * 1e-3);
    }
}

void
KernelProfiler::addQueueStats(StatGroup &group, const EventQueue &queue)
{
    const EventQueue::Counters &c = queue.counters();
    group.add("queue.schedules", c.schedules);
    group.add("queue.bucket_schedules", c.bucketSchedules);
    group.add("queue.heap_spills", c.heapSchedules);
    group.add("queue.clamped_schedules", c.clampedSchedules);
    group.add("queue.pops", c.pops);
    group.add("queue.bucket_pops", c.bucketPops);
    group.add("queue.heap_pops", c.heapPops);
    group.add("queue.rebases", c.rebases);
    group.add("queue.migrated_entries", c.migratedEntries);
    group.add("queue.head_spills", c.headSpills);
    group.add("queue.spilled_entries", c.spilledEntries);
    group.add("queue.recalibrations", c.recalibrations);
    group.add("queue.peak_occupancy",
              static_cast<std::uint64_t>(c.peakSize));
    group.add("queue.bucket_width_ticks",
              static_cast<std::uint64_t>(queue.bucketWidth()));
}

void
KernelProfiler::addWheelStats(StatGroup &group, const TimerWheel &wheel)
{
    const TimerWheel::Stats &s = wheel.stats();
    group.add("wheel.granularity_ticks",
              static_cast<std::uint64_t>(wheel.granularity()));
    group.add("wheel.slots",
              static_cast<std::uint64_t>(wheel.numSlots()));
    group.add("wheel.armed", s.armed);
    group.add("wheel.cancelled", s.cancelled);
    group.add("wheel.fired", s.fired);
    group.add("wheel.tick_events", s.tickEvents);
    group.add("wheel.max_batch", s.maxBatch);
    group.add("wheel.overflow_migrations", s.overflowMigrations);
    group.add("wheel.max_live", s.maxLive);
}

void
KernelProfiler::dumpHotTable(std::ostream &os) const
{
    os << "# kernel hot events (by host time inside process())\n";
    os << "# " << std::left << std::setw(40) << "event" << std::right
       << std::setw(12) << "count" << std::setw(14) << "host_us"
       << std::setw(10) << "avg_ns" << '\n';
    for (const auto &[name, ts] : hottest()) {
        double avg =
            ts.count ? static_cast<double>(ts.hostNs) / ts.count : 0.0;
        os << "# " << std::left << std::setw(40) << name << std::right
           << std::setw(12) << ts.count << std::setw(14) << std::fixed
           << std::setprecision(1)
           << static_cast<double>(ts.hostNs) * 1e-3 << std::setw(10)
           << std::setprecision(0) << avg << '\n';
    }
    os.unsetf(std::ios::floatfield);
    os << std::setprecision(6);
}

void
KernelProfiler::dumpJson(std::ostream &os, double wall_seconds,
                         const EventQueue *queue,
                         const TimerWheel *wheel) const
{
    os << "{\n";
    os << "  \"events_total\": " << _events << ",\n";
    os << "  \"peak_queue_depth\": " << _peakDepth << ",\n";
    if (queue) {
        const EventQueue::Counters &c = queue->counters();
        os << "  \"event_queue\": {\n";
        os << "    \"backend\": \""
           << (queue->backend() == EventQueue::Backend::calendar
                   ? "calendar"
                   : "binary_heap")
           << "\",\n";
        os << "    \"schedules\": " << c.schedules << ",\n";
        os << "    \"bucket_schedules\": " << c.bucketSchedules << ",\n";
        os << "    \"heap_spills\": " << c.heapSchedules << ",\n";
        os << "    \"pops\": " << c.pops << ",\n";
        os << "    \"bucket_pops\": " << c.bucketPops << ",\n";
        os << "    \"heap_pops\": " << c.heapPops << ",\n";
        os << "    \"rebases\": " << c.rebases << ",\n";
        os << "    \"migrated_entries\": " << c.migratedEntries << ",\n";
        os << "    \"head_spills\": " << c.headSpills << ",\n";
        os << "    \"spilled_entries\": " << c.spilledEntries << ",\n";
        os << "    \"recalibrations\": " << c.recalibrations << ",\n";
        os << "    \"peak_occupancy\": " << c.peakSize << ",\n";
        os << "    \"bucket_width_ticks\": " << queue->bucketWidth()
           << "\n  },\n";
    }
    if (wheel) {
        const TimerWheel::Stats &s = wheel->stats();
        os << "  \"timer_wheel\": {\n";
        os << "    \"granularity_ticks\": " << wheel->granularity()
           << ",\n";
        os << "    \"slots\": " << wheel->numSlots() << ",\n";
        os << "    \"armed\": " << s.armed << ",\n";
        os << "    \"cancelled\": " << s.cancelled << ",\n";
        os << "    \"fired\": " << s.fired << ",\n";
        os << "    \"tick_events\": " << s.tickEvents << ",\n";
        os << "    \"max_batch\": " << s.maxBatch << ",\n";
        os << "    \"overflow_migrations\": " << s.overflowMigrations
           << ",\n";
        os << "    \"max_live\": " << s.maxLive << "\n  },\n";
    }
    os << "  \"host_seconds_in_events\": "
       << static_cast<double>(totalHostNs()) * 1e-9 << ",\n";
    if (wall_seconds > 0.0) {
        os << "  \"wall_seconds\": " << wall_seconds << ",\n";
        os << "  \"events_per_sec\": "
           << static_cast<double>(_events) / wall_seconds << ",\n";
    }
    os << "  \"events_by_type\": {";
    bool first = true;
    for (const auto &[name, ts] : hottest()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << name << "\": {\"count\": " << ts.count
           << ", \"host_us\": "
           << static_cast<double>(ts.hostNs) * 1e-3 << "}";
    }
    os << "\n  }\n}\n";
}

void
KernelProfiler::reset()
{
    _events = 0;
    _peakDepth = 0;
    _byType.clear();
    _currentName.clear();
    _recent.clear();
    _recentNext = 0;
}

} // namespace holdcsim
