/**
 * @file
 * Periodic time-series sampling.
 *
 * A Sampler snapshots a set of named scalar probes (lambdas over live
 * model state: fleet power draw, queue depths, active flows, ...)
 * every fixed period and appends them to a long-format CSV
 * (time_s,metric,value), the shape the paper's latency/power timeline
 * figures plot directly. The sampling event is a background event, so
 * an armed sampler never keeps the simulation alive after the
 * workload drains.
 */

#ifndef HOLDCSIM_TELEMETRY_SAMPLER_HH
#define HOLDCSIM_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"

namespace holdcsim {

/** Periodic multi-probe snapshot writer (long-format CSV). */
class Sampler
{
  public:
    /** Scalar probe over live model state. */
    using ProbeFn = std::function<double()>;

    /** Sample to a caller-owned stream every @p period. */
    Sampler(Simulator &sim, std::ostream &os, Tick period);

    /** Sample to file @p path; throws FatalError if unwritable. */
    Sampler(Simulator &sim, const std::string &path, Tick period);

    /** Deschedules the pending sample event. */
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register probe @p name. Must be called before start(). */
    void addProbe(std::string name, ProbeFn fn);

    /**
     * Write the CSV header, take a baseline sample now, and arm the
     * periodic event. One row per probe per period; a simulation
     * ending mid-period contributes no partial row (rollover-safe).
     */
    void start();

    /** Disarm; the series so far stays written. */
    void stop();

    /** Rows written so far (header excluded). */
    std::uint64_t rowsWritten() const { return _rows; }

    /** Snapshots taken so far (rows / probes). */
    std::uint64_t samplesTaken() const { return _samples; }

    Tick period() const { return _period; }

  private:
    void sampleNow();

    Simulator &_sim;
    std::unique_ptr<std::ofstream> _file;
    std::ostream &_os;
    Tick _period;
    std::vector<std::pair<std::string, ProbeFn>> _probes;
    EventFunctionWrapper _event;
    bool _started = false;
    std::uint64_t _rows = 0;
    std::uint64_t _samples = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_TELEMETRY_SAMPLER_HH
