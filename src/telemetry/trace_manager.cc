#include "trace_manager.hh"

#include <sstream>

#include "sim/logging.hh"

namespace holdcsim {

const char *
toString(TraceCategory c)
{
    switch (c) {
      case TraceCategory::server:
        return "server";
      case TraceCategory::core:
        return "core";
      case TraceCategory::task:
        return "task";
      case TraceCategory::flow:
        return "flow";
      case TraceCategory::network:
        return "network";
      case TraceCategory::fault:
        return "fault";
      case TraceCategory::audit:
        return "audit";
      case TraceCategory::orch:
        return "orch";
    }
    HOLDCSIM_PANIC("unknown TraceCategory");
}

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return allTraceCategories;
    std::uint32_t mask = 0;
    std::istringstream in(spec);
    std::string token;
    while (std::getline(in, token, ',')) {
        if (token.empty())
            continue;
        if (token == "server")
            mask |= static_cast<std::uint32_t>(TraceCategory::server);
        else if (token == "core")
            mask |= static_cast<std::uint32_t>(TraceCategory::core);
        else if (token == "task")
            mask |= static_cast<std::uint32_t>(TraceCategory::task);
        else if (token == "flow")
            mask |= static_cast<std::uint32_t>(TraceCategory::flow);
        else if (token == "network")
            mask |= static_cast<std::uint32_t>(TraceCategory::network);
        else if (token == "fault")
            mask |= static_cast<std::uint32_t>(TraceCategory::fault);
        else if (token == "audit")
            mask |= static_cast<std::uint32_t>(TraceCategory::audit);
        else if (token == "orch")
            mask |= static_cast<std::uint32_t>(TraceCategory::orch);
        else
            fatal("unknown trace category '", token, "'");
    }
    if (mask == 0)
        fatal("trace category list '", spec, "' selects nothing");
    return mask;
}

TraceManager::TraceManager(std::unique_ptr<TraceSink> sink,
                           std::uint32_t mask)
    : _sink(std::move(sink)), _mask(mask)
{
    if (!_sink)
        fatal("trace manager needs a sink");
}

TraceManager::~TraceManager()
{
    flush(_lastTick);
}

TraceTrackId
TraceManager::track(const std::string &process,
                    const std::string &track_name)
{
    auto [pit, pnew] = _processes.emplace(
        process, static_cast<std::uint32_t>(_processes.size() + 1));
    if (pnew)
        _sink->processName(pit->second, process);

    auto key = std::make_pair(pit->second, track_name);
    auto tit = _byName.find(key);
    if (tit != _byName.end())
        return tit->second;

    auto id = static_cast<TraceTrackId>(_tracks.size());
    Track t;
    t.pid = pit->second;
    t.tid = static_cast<std::uint32_t>(_byName.size() + 1);
    _tracks.push_back(std::move(t));
    _byName.emplace(std::move(key), id);
    _sink->trackName(_tracks[id].pid, _tracks[id].tid, track_name);
    return id;
}

void
TraceManager::transition(TraceTrackId t, TraceCategory c,
                         std::string state, Tick now)
{
    if (_finished || !wants(c))
        return;
    Track &tr = _tracks.at(t);
    if (tr.hasOpen) {
        _sink->slice(tr.pid, tr.tid, tr.openState,
                     toString(tr.openCategory), tr.openSince, now);
    }
    tr.openState = std::move(state);
    tr.openSince = now;
    tr.openCategory = c;
    tr.hasOpen = true;
    if (now > _lastTick)
        _lastTick = now;
}

void
TraceManager::instant(TraceTrackId t, TraceCategory c,
                      const std::string &name, Tick now)
{
    if (_finished || !wants(c))
        return;
    const Track &tr = _tracks.at(t);
    _sink->instant(tr.pid, tr.tid, name, toString(c), now);
    if (now > _lastTick)
        _lastTick = now;
}

void
TraceManager::asyncBegin(TraceTrackId t, TraceCategory c,
                         const std::string &name, std::uint64_t id,
                         Tick now)
{
    if (_finished || !wants(c))
        return;
    const Track &tr = _tracks.at(t);
    _sink->asyncBegin(tr.pid, tr.tid, name, toString(c), id, now);
    if (now > _lastTick)
        _lastTick = now;
}

void
TraceManager::asyncEnd(TraceTrackId t, TraceCategory c,
                       const std::string &name, std::uint64_t id,
                       Tick now)
{
    if (_finished || !wants(c))
        return;
    const Track &tr = _tracks.at(t);
    _sink->asyncEnd(tr.pid, tr.tid, name, toString(c), id, now);
    if (now > _lastTick)
        _lastTick = now;
}

void
TraceManager::flush(Tick now)
{
    if (_finished)
        return;
    if (now < _lastTick)
        now = _lastTick;
    for (Track &tr : _tracks) {
        if (!tr.hasOpen)
            continue;
        _sink->slice(tr.pid, tr.tid, tr.openState,
                     toString(tr.openCategory), tr.openSince, now);
        tr.hasOpen = false;
    }
    _finished = true;
    _sink->finish();
}

std::uint64_t
TraceManager::eventsEmitted() const
{
    return _sink->recordsWritten();
}

} // namespace holdcsim
