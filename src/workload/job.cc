#include "job.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace holdcsim {

TaskId
Job::addTask(const TaskSpec &spec)
{
    if (spec.serviceTime == 0)
        fatal("task service time must be positive");
    if (spec.computeIntensity < 0.0 || spec.computeIntensity > 1.0)
        fatal("task compute intensity must be in [0, 1]");
    _tasks.push_back(spec);
    return static_cast<TaskId>(_tasks.size() - 1);
}

void
Job::addEdge(TaskId from, TaskId to, Bytes bytes)
{
    _edges.push_back(TaskEdge{from, to, bytes});
}

Bytes
Job::edgeBytes(TaskId from, TaskId to) const
{
    for (const auto &e : _edges) {
        if (e.from == from && e.to == to)
            return e.bytes;
    }
    return 0;
}

Tick
Job::totalWork() const
{
    Tick total = 0;
    for (const auto &t : _tasks)
        total += t.serviceTime;
    return total;
}

void
Job::validate()
{
    const auto n = static_cast<TaskId>(_tasks.size());
    if (n == 0)
        fatal("job ", _id, " has no tasks");

    std::set<std::pair<TaskId, TaskId>> seen;
    for (const auto &e : _edges) {
        if (e.from >= n || e.to >= n)
            fatal("job ", _id, ": edge endpoint out of range");
        if (e.from == e.to)
            fatal("job ", _id, ": self-edge on task ", e.from);
        if (!seen.insert({e.from, e.to}).second)
            fatal("job ", _id, ": duplicate edge ", e.from, "->", e.to);
    }

    _parents.assign(n, {});
    _children.assign(n, {});
    for (const auto &e : _edges) {
        _parents[e.to].push_back(e.from);
        _children[e.from].push_back(e.to);
    }

    _roots.clear();
    for (TaskId t = 0; t < n; ++t) {
        if (_parents[t].empty())
            _roots.push_back(t);
    }

    // Acyclicity via Kahn's algorithm; a cycle leaves tasks unvisited.
    if (topologicalOrder().size() != n)
        fatal("job ", _id, ": task dependence graph has a cycle");
}

std::vector<TaskId>
Job::topologicalOrder() const
{
    const auto n = static_cast<TaskId>(_tasks.size());
    std::vector<std::size_t> indegree(n, 0);
    for (TaskId t = 0; t < n; ++t)
        indegree[t] = _parents[t].size();

    std::vector<TaskId> order;
    order.reserve(n);
    std::vector<TaskId> frontier = _roots;
    while (!frontier.empty()) {
        TaskId t = frontier.back();
        frontier.pop_back();
        order.push_back(t);
        for (TaskId c : _children[t]) {
            if (--indegree[c] == 0)
                frontier.push_back(c);
        }
    }
    return order;
}

} // namespace holdcsim
