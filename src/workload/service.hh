/**
 * @file
 * Task service-time models.
 *
 * The paper's case studies use exponential service (Poisson model),
 * fixed service times (web search 5 ms, web serving 120 ms), uniform
 * ranges (provisioning study, 3-10 ms) and, for validation traces,
 * heavy-tailed empirical mixes; all are provided here behind one
 * interface.
 */

#ifndef HOLDCSIM_WORKLOAD_SERVICE_HH
#define HOLDCSIM_WORKLOAD_SERVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/** Draws per-task service times (at nominal core frequency). */
class ServiceModel
{
  public:
    virtual ~ServiceModel() = default;

    /** Next service time in ticks (> 0). */
    virtual Tick sample() = 0;

    /** Long-run mean service time in seconds. */
    virtual double meanSeconds() const = 0;
};

/** Every task takes exactly the same time. */
class FixedService : public ServiceModel
{
  public:
    explicit FixedService(Tick service_time);
    Tick sample() override { return _serviceTime; }
    double meanSeconds() const override { return toSeconds(_serviceTime); }

  private:
    Tick _serviceTime;
};

/** Exponentially distributed service with a given mean. */
class ExponentialService : public ServiceModel
{
  public:
    ExponentialService(Tick mean, Rng rng);
    Tick sample() override;
    double meanSeconds() const override { return toSeconds(_mean); }

  private:
    Tick _mean;
    Rng _rng;
};

/** Uniformly distributed service over [lo, hi]. */
class UniformService : public ServiceModel
{
  public:
    UniformService(Tick lo, Tick hi, Rng rng);
    Tick sample() override;
    double meanSeconds() const override
    {
        return toSeconds(_lo + (_hi - _lo) / 2);
    }

  private:
    Tick _lo, _hi;
    Rng _rng;
};

/**
 * Bounded-Pareto service over [lo, hi] with shape alpha: the classic
 * heavy-tailed web workload model (most requests short, rare requests
 * very long).
 */
class BoundedParetoService : public ServiceModel
{
  public:
    BoundedParetoService(double alpha, Tick lo, Tick hi, Rng rng);
    Tick sample() override;
    double meanSeconds() const override;

  private:
    double _alpha;
    Tick _lo, _hi;
    Rng _rng;
};

/** Resamples uniformly from a recorded set of service times. */
class EmpiricalService : public ServiceModel
{
  public:
    EmpiricalService(std::vector<Tick> samples, Rng rng);
    Tick sample() override;
    double meanSeconds() const override { return _meanSec; }

  private:
    std::vector<Tick> _samples;
    Rng _rng;
    double _meanSec;
};

/**
 * Build a service model by name: "fixed", "exponential", "uniform",
 * "pareto". Used by the config-driven experiment layer.
 *
 * @param kind   model name
 * @param mean   mean service time (fixed/exponential) or low bound
 * @param spread high bound for uniform/pareto (ignored otherwise)
 * @param rng    dedicated random stream for the model
 */
std::unique_ptr<ServiceModel> makeServiceModel(const std::string &kind,
                                               Tick mean, Tick spread,
                                               Rng rng);

} // namespace holdcsim

#endif // HOLDCSIM_WORKLOAD_SERVICE_HH
