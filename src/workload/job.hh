/**
 * @file
 * Jobs and tasks (paper section III-C).
 *
 * Each job j is a directed acyclic graph G_j(V_j, E_j): vertices are
 * tasks with an execution-time requirement w_v; a link (i, r) means
 * task i must finish and communicate its result (D_l bytes) to the
 * server of task r before r may start. A job finishes when all of its
 * tasks finish.
 *
 * Job is pure structure -- runtime progress (which tasks have run,
 * where) lives with the scheduler so that one Job template could in
 * principle be shared.
 */

#ifndef HOLDCSIM_WORKLOAD_JOB_HH
#define HOLDCSIM_WORKLOAD_JOB_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace holdcsim {

/** Task index within its job. */
using TaskId = std::uint32_t;
/** Globally unique job identifier. */
using JobId = std::uint64_t;

/** Static description of one task. */
struct TaskSpec {
    /** Execution-time requirement w_v at nominal core frequency. */
    Tick serviceTime = 0;
    /**
     * Task type; servers can be configured to serve specific types
     * (e.g. application tier vs database tier). Type 0 = any.
     */
    int type = 0;
    /**
     * Computation intensiveness in [0, 1]: the fraction of the
     * service time that scales with core frequency (the rest is
     * memory/IO bound). 1.0 = fully compute bound.
     */
    double computeIntensity = 1.0;
};

/** A dependence edge: @p from must finish and ship @p bytes to @p to. */
struct TaskEdge {
    TaskId from;
    TaskId to;
    Bytes bytes;
};

/**
 * A user service request: a DAG of tasks. Build with addTask/addEdge,
 * then call validate() once; accessors assume a validated job.
 */
class Job
{
  public:
    Job(JobId id, Tick arrival) : _id(id), _arrival(arrival) {}

    JobId id() const { return _id; }
    Tick arrivalTick() const { return _arrival; }

    /** @name Container orchestration tag (src/orch)
     * Jobs may be tagged with an orchestration group: the id of the
     * container deployment whose replicas serve the job's tasks.
     * Untagged jobs (-1, the default) bypass the orchestrator
     * entirely and dispatch to bare servers as before.
     */
    ///@{
    void setOrchGroup(int group) { _orchGroup = group; }
    int orchGroup() const { return _orchGroup; }
    ///@}

    /** Append a task; returns its TaskId. */
    TaskId addTask(const TaskSpec &spec);

    /** Add a dependence edge with a result-transfer size. */
    void addEdge(TaskId from, TaskId to, Bytes bytes);

    std::size_t numTasks() const { return _tasks.size(); }
    std::size_t numEdges() const { return _edges.size(); }

    const TaskSpec &task(TaskId t) const { return _tasks[t]; }
    const std::vector<TaskEdge> &edges() const { return _edges; }

    /** Tasks with no incoming edges (runnable on arrival). */
    const std::vector<TaskId> &rootTasks() const { return _roots; }

    /** Parent tasks of @p t. */
    const std::vector<TaskId> &parents(TaskId t) const
    {
        return _parents[t];
    }

    /** Child tasks of @p t. */
    const std::vector<TaskId> &children(TaskId t) const
    {
        return _children[t];
    }

    /** Transfer size on edge (from, to); 0 when no such edge. */
    Bytes edgeBytes(TaskId from, TaskId to) const;

    /** Sum of all task service times (work content of the job). */
    Tick totalWork() const;

    /**
     * Check structural sanity: edge endpoints in range, no
     * self-edges, no duplicate edges, acyclic. Throws FatalError on
     * violation; also (re)builds the parent/child/root indexes.
     * Must be called after the last addTask/addEdge.
     */
    void validate();

    /** A topological order of the tasks. @pre validate() passed. */
    std::vector<TaskId> topologicalOrder() const;

  private:
    JobId _id;
    Tick _arrival;
    int _orchGroup = -1;
    std::vector<TaskSpec> _tasks;
    std::vector<TaskEdge> _edges;
    std::vector<std::vector<TaskId>> _parents;
    std::vector<std::vector<TaskId>> _children;
    std::vector<TaskId> _roots;
};

} // namespace holdcsim

#endif // HOLDCSIM_WORKLOAD_JOB_HH
