#include "arrival.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace holdcsim {

// ------------------------------------------------------------- PoissonArrival

PoissonArrival::PoissonArrival(double rate, Rng rng)
    : _rate(rate), _rng(rng)
{
    if (rate <= 0.0)
        fatal("Poisson arrival rate must be positive, got ", rate);
}

Tick
PoissonArrival::nextArrival()
{
    double gap_sec = _rng.exponential(1.0 / _rate);
    _now += fromSeconds(gap_sec);
    return _now;
}

double
PoissonArrival::rateForUtilization(double rho, unsigned n_servers,
                                   unsigned n_cores,
                                   double mean_service_sec)
{
    if (rho <= 0.0 || mean_service_sec <= 0.0 || n_servers == 0 ||
        n_cores == 0) {
        fatal("rateForUtilization: invalid parameters");
    }
    // rho = lambda / (mu * nServers * nCores), mu = 1/meanService.
    return rho * n_servers * n_cores / mean_service_sec;
}

// --------------------------------------------------------------- Mmpp2Arrival

Mmpp2Arrival::Mmpp2Arrival(double rate_high, double rate_low,
                           double mean_high_sojourn_sec,
                           double mean_low_sojourn_sec, Rng rng)
    : _rateHigh(rate_high), _rateLow(rate_low),
      _sojournHigh(mean_high_sojourn_sec),
      _sojournLow(mean_low_sojourn_sec), _rng(rng)
{
    if (rate_high <= 0.0 || rate_low <= 0.0)
        fatal("MMPP rates must be positive");
    if (rate_high < rate_low)
        fatal("MMPP bursty rate must be >= quiet rate");
    if (mean_high_sojourn_sec <= 0.0 || mean_low_sojourn_sec <= 0.0)
        fatal("MMPP sojourn times must be positive");
}

Tick
Mmpp2Arrival::nextArrival()
{
    // Competing exponentials: in the current state, the next arrival
    // and the next state switch race; whichever fires first wins.
    for (;;) {
        double to_arrival = _rng.exponential(1.0 / currentRate());
        double to_switch = _rng.exponential(currentSojourn());
        if (to_arrival <= to_switch) {
            _now += fromSeconds(to_arrival);
            return _now;
        }
        _now += fromSeconds(to_switch);
        _bursty = !_bursty;
    }
}

double
Mmpp2Arrival::averageRate()
const
{
    // Stationary fraction of time in each state is proportional to
    // its mean sojourn.
    double total = _sojournHigh + _sojournLow;
    double p_high = _sojournHigh / total;
    return p_high * _rateHigh + (1.0 - p_high) * _rateLow;
}

// --------------------------------------------------------------- TraceArrival

TraceArrival::TraceArrival(std::vector<Tick> arrivals)
    : _arrivals(std::move(arrivals))
{
    if (!std::is_sorted(_arrivals.begin(), _arrivals.end()))
        fatal("arrival trace timestamps must be nondecreasing");
}

Tick
TraceArrival::nextArrival()
{
    if (exhausted())
        HOLDCSIM_PANIC("nextArrival() on exhausted trace");
    return _arrivals[_next++];
}

} // namespace holdcsim
