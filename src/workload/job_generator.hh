/**
 * @file
 * Factories for common job DAG shapes.
 *
 * The paper's examples: a single-task job (resource provisioning and
 * delay-timer studies), a two-stage web request (application server
 * then database query -- "spatial inter-dependence"), fan-out/fan-in
 * jobs (partition/aggregate services such as web search), and random
 * layered DAGs with per-edge flow sizes (server-network study, 100 MB
 * flows).
 */

#ifndef HOLDCSIM_WORKLOAD_JOB_GENERATOR_HH
#define HOLDCSIM_WORKLOAD_JOB_GENERATOR_HH

#include <memory>

#include "job.hh"
#include "service.hh"
#include "sim/random.hh"

namespace holdcsim {

/**
 * Produces Jobs on demand. Job ids are drawn from a process-wide
 * counter so several generators can feed one scheduler (multi-
 * workload experiments) without id collisions.
 */
class JobGenerator
{
  public:
    virtual ~JobGenerator() = default;

    /** Build the next job, arriving at @p arrival. */
    Job makeJob(Tick arrival) { return buildJob(nextId(), arrival); }

    /**
     * Build a job with a caller-chosen id. Partitioned runs
     * (src/sim/pdes) use this with per-partition id namespaces: the
     * process-wide counter is thread-safe but hands out ids in
     * wall-clock interleaving order, which would differ run to run.
     */
    Job makeJob(Tick arrival, JobId id) { return buildJob(id, arrival); }

  protected:
    /** Construct the job DAG for (@p id, @p arrival). */
    virtual Job buildJob(JobId id, Tick arrival) = 0;

    /** Next process-globally-unique job id. */
    static JobId nextId();
};

/** One task per job (the paper's provisioning/delay-timer setup). */
class SingleTaskGenerator : public JobGenerator
{
  public:
    SingleTaskGenerator(std::shared_ptr<ServiceModel> service,
                        int task_type = 0);
    Job buildJob(JobId id, Tick arrival) override;

  private:
    std::shared_ptr<ServiceModel> _service;
    int _taskType;
};

/**
 * A sequential chain of @p length tasks (e.g. web tier -> database
 * tier), each stage with its own service model and type, and
 * @p transfer_bytes shipped between consecutive stages.
 */
class ChainJobGenerator : public JobGenerator
{
  public:
    ChainJobGenerator(std::vector<std::shared_ptr<ServiceModel>> stages,
                      std::vector<int> stage_types, Bytes transfer_bytes);
    Job buildJob(JobId id, Tick arrival) override;

  private:
    std::vector<std::shared_ptr<ServiceModel>> _stages;
    std::vector<int> _stageTypes;
    Bytes _transferBytes;
};

/**
 * Partition/aggregate: a root task fans out to @p width parallel
 * workers whose results feed one aggregator (the web-search shape).
 */
class FanOutInGenerator : public JobGenerator
{
  public:
    FanOutInGenerator(std::shared_ptr<ServiceModel> root_service,
                      std::shared_ptr<ServiceModel> worker_service,
                      std::shared_ptr<ServiceModel> agg_service,
                      unsigned width, Bytes transfer_bytes);
    Job buildJob(JobId id, Tick arrival) override;

  private:
    std::shared_ptr<ServiceModel> _rootService;
    std::shared_ptr<ServiceModel> _workerService;
    std::shared_ptr<ServiceModel> _aggService;
    unsigned _width;
    Bytes _transferBytes;
};

/**
 * Random layered DAG: @p layers layers of up to @p width tasks;
 * every task in layer k draws edges from random tasks in layer k-1
 * with probability @p edge_probability (at least one, so the graph
 * stays connected front-to-back). Used for the server-network joint
 * study with large per-edge flows.
 */
class RandomDagGenerator : public JobGenerator
{
  public:
    RandomDagGenerator(std::shared_ptr<ServiceModel> service,
                       unsigned layers, unsigned width,
                       double edge_probability, Bytes transfer_bytes,
                       Rng rng);
    Job buildJob(JobId id, Tick arrival) override;

  private:
    std::shared_ptr<ServiceModel> _service;
    unsigned _layers;
    unsigned _width;
    double _edgeProbability;
    Bytes _transferBytes;
    Rng _rng;
};

} // namespace holdcsim

#endif // HOLDCSIM_WORKLOAD_JOB_GENERATOR_HH
