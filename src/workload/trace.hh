/**
 * @file
 * Arrival-trace I/O and synthetic trace generators.
 *
 * The paper drives several experiments from recorded traces: the
 * Wikipedia request trace [59] (provisioning, WASP and switch
 * validation studies) and the NLANR web trace [2] (server power
 * validation). Those datasets are not redistributable, so this module
 * provides synthetic generators that reproduce the *characteristics*
 * the experiments depend on -- a diurnally fluctuating arrival rate
 * with short-term burstiness (Wikipedia) and piecewise-varying web
 * request load (NLANR). See DESIGN.md section 3 for the substitution
 * rationale.
 */

#ifndef HOLDCSIM_WORKLOAD_TRACE_HH
#define HOLDCSIM_WORKLOAD_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/**
 * Read an arrival trace: one arrival per line, the timestamp in
 * seconds (floating point) in the first column; extra columns are
 * ignored. Lines starting with '#' are comments. Timestamps must be
 * nondecreasing.
 */
std::vector<Tick> readArrivalTrace(std::istream &in);

/** Read an arrival trace from a file. Throws FatalError on error. */
std::vector<Tick> loadArrivalTrace(const std::string &path);

/** Write arrivals as seconds, one per line. */
void writeArrivalTrace(std::ostream &out,
                       const std::vector<Tick> &arrivals);

/** Parameters for the Wikipedia-like synthetic trace. */
struct WikipediaTraceParams {
    /** Total trace duration. */
    Tick duration = 3600 * sec;
    /** Long-run average arrival rate, jobs/s. */
    double baseRate = 100.0;
    /**
     * Relative amplitude of the diurnal swing, in [0, 2]. Values
     * above 1 clip the trough at zero rate, producing genuinely
     * quiet periods (deep-trough day/night patterns).
     */
    double diurnalAmplitude = 0.4;
    /** Period of the diurnal component (compressed "day"). */
    Tick diurnalPeriod = 3600 * sec;
    /** AR(1) coefficient of the short-term rate noise, in [0, 1). */
    double noisePersistence = 0.8;
    /** Std-dev of the rate noise relative to the base rate. */
    double noiseLevel = 0.15;
    /** Probability per second of a transient burst. */
    double burstProbability = 0.005;
    /** Rate multiplier while a burst lasts. */
    double burstMultiplier = 3.0;
    /** Burst duration. */
    Tick burstLength = 5 * sec;
};

/**
 * Generate a Wikipedia-like arrival trace: a sinusoidal diurnal
 * base rate modulated by persistent AR(1) noise with occasional
 * multiplicative bursts; arrivals are drawn per-second as an
 * inhomogeneous Poisson process.
 */
std::vector<Tick> makeWikipediaTrace(const WikipediaTraceParams &params,
                                     Rng rng);

/** Parameters for the NLANR-like synthetic web trace. */
struct NlanrTraceParams {
    Tick duration = 1000 * sec;
    /** Average arrival rate, jobs/s. */
    double baseRate = 50.0;
    /** Rate levels switch every this long on average. */
    Tick meanLevelLength = 30 * sec;
    /** Each level's rate is base * uniform[1-spread, 1+spread]. */
    double levelSpread = 0.6;
};

/**
 * Generate an NLANR-like arrival trace: piecewise-constant request
 * rate with exponentially distributed level durations, mimicking the
 * level shifts seen in wide-area web server logs.
 */
std::vector<Tick> makeNlanrTrace(const NlanrTraceParams &params, Rng rng);

/**
 * Scale a trace's arrival rate by dropping or duplicating arrivals so
 * that its mean rate becomes @p target_rate jobs/s (used to sweep
 * utilization with a fixed trace shape, as the case studies do).
 */
std::vector<Tick> rescaleTraceRate(const std::vector<Tick> &arrivals,
                                   double target_rate, Rng rng);

/** Mean arrival rate of a trace in jobs/s (0 for traces < 2 events). */
double traceRate(const std::vector<Tick> &arrivals);

} // namespace holdcsim

#endif // HOLDCSIM_WORKLOAD_TRACE_HH
