#include "job_generator.hh"

#include <atomic>

#include "sim/logging.hh"

namespace holdcsim {

JobId
JobGenerator::nextId()
{
    static std::atomic<JobId> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

// -------------------------------------------------------- SingleTaskGenerator

SingleTaskGenerator::SingleTaskGenerator(
    std::shared_ptr<ServiceModel> service, int task_type)
    : _service(std::move(service)), _taskType(task_type)
{
    if (!_service)
        fatal("SingleTaskGenerator needs a service model");
}

Job
SingleTaskGenerator::buildJob(JobId id, Tick arrival)
{
    Job job(id, arrival);
    job.addTask(TaskSpec{_service->sample(), _taskType, 1.0});
    job.validate();
    return job;
}

// --------------------------------------------------------- ChainJobGenerator

ChainJobGenerator::ChainJobGenerator(
    std::vector<std::shared_ptr<ServiceModel>> stages,
    std::vector<int> stage_types, Bytes transfer_bytes)
    : _stages(std::move(stages)), _stageTypes(std::move(stage_types)),
      _transferBytes(transfer_bytes)
{
    if (_stages.empty())
        fatal("ChainJobGenerator needs at least one stage");
    if (_stageTypes.size() != _stages.size())
        fatal("ChainJobGenerator: one type per stage required");
}

Job
ChainJobGenerator::buildJob(JobId id, Tick arrival)
{
    Job job(id, arrival);
    TaskId prev = 0;
    for (std::size_t s = 0; s < _stages.size(); ++s) {
        TaskId t = job.addTask(
            TaskSpec{_stages[s]->sample(), _stageTypes[s], 1.0});
        if (s > 0)
            job.addEdge(prev, t, _transferBytes);
        prev = t;
    }
    job.validate();
    return job;
}

// ---------------------------------------------------------- FanOutInGenerator

FanOutInGenerator::FanOutInGenerator(
    std::shared_ptr<ServiceModel> root_service,
    std::shared_ptr<ServiceModel> worker_service,
    std::shared_ptr<ServiceModel> agg_service, unsigned width,
    Bytes transfer_bytes)
    : _rootService(std::move(root_service)),
      _workerService(std::move(worker_service)),
      _aggService(std::move(agg_service)), _width(width),
      _transferBytes(transfer_bytes)
{
    if (!_rootService || !_workerService || !_aggService)
        fatal("FanOutInGenerator needs three service models");
    if (_width == 0)
        fatal("FanOutInGenerator needs width >= 1");
}

Job
FanOutInGenerator::buildJob(JobId id, Tick arrival)
{
    Job job(id, arrival);
    TaskId root = job.addTask(TaskSpec{_rootService->sample(), 0, 1.0});
    TaskId agg = job.addTask(TaskSpec{_aggService->sample(), 0, 1.0});
    for (unsigned w = 0; w < _width; ++w) {
        TaskId worker =
            job.addTask(TaskSpec{_workerService->sample(), 0, 1.0});
        job.addEdge(root, worker, _transferBytes);
        job.addEdge(worker, agg, _transferBytes);
    }
    job.validate();
    return job;
}

// --------------------------------------------------------- RandomDagGenerator

RandomDagGenerator::RandomDagGenerator(
    std::shared_ptr<ServiceModel> service, unsigned layers,
    unsigned width, double edge_probability, Bytes transfer_bytes,
    Rng rng)
    : _service(std::move(service)), _layers(layers), _width(width),
      _edgeProbability(edge_probability),
      _transferBytes(transfer_bytes), _rng(rng)
{
    if (!_service)
        fatal("RandomDagGenerator needs a service model");
    if (_layers == 0 || _width == 0)
        fatal("RandomDagGenerator needs layers >= 1, width >= 1");
    if (edge_probability < 0.0 || edge_probability > 1.0)
        fatal("edge probability must be in [0, 1]");
}

Job
RandomDagGenerator::buildJob(JobId id, Tick arrival)
{
    Job job(id, arrival);
    std::vector<std::vector<TaskId>> layer_tasks(_layers);
    for (unsigned l = 0; l < _layers; ++l) {
        unsigned count =
            l == 0 ? 1
                   : static_cast<unsigned>(_rng.uniformInt(1, _width));
        for (unsigned i = 0; i < count; ++i) {
            layer_tasks[l].push_back(
                job.addTask(TaskSpec{_service->sample(), 0, 1.0}));
        }
    }
    for (unsigned l = 1; l < _layers; ++l) {
        for (TaskId t : layer_tasks[l]) {
            bool connected = false;
            for (TaskId p : layer_tasks[l - 1]) {
                if (_rng.bernoulli(_edgeProbability)) {
                    job.addEdge(p, t, _transferBytes);
                    connected = true;
                }
            }
            if (!connected) {
                // Guarantee front-to-back connectivity.
                const auto &prev = layer_tasks[l - 1];
                TaskId p =
                    prev[_rng.uniformInt(0, prev.size() - 1)];
                job.addEdge(p, t, _transferBytes);
            }
        }
    }
    job.validate();
    return job;
}

} // namespace holdcsim
